#include "core/policy.h"

#include <array>

namespace tint::core {

namespace {
constexpr std::array<Policy, 7> kAll = {
    Policy::kBuddy,      Policy::kBpm,        Policy::kLlc,
    Policy::kMem,        Policy::kMemLlc,     Policy::kMemLlcPart,
    Policy::kLlcMemPart,
};
constexpr std::array<Policy, 5> kTint = {
    Policy::kLlc,        Policy::kMem,        Policy::kMemLlc,
    Policy::kMemLlcPart, Policy::kLlcMemPart,
};
}  // namespace

std::span<const Policy> all_policies() { return kAll; }
std::span<const Policy> tint_policies() { return kTint; }

std::string_view to_string(Policy p) {
  switch (p) {
    case Policy::kBuddy: return "buddy";
    case Policy::kBpm: return "BPM";
    case Policy::kLlc: return "LLC";
    case Policy::kMem: return "MEM";
    case Policy::kMemLlc: return "MEM+LLC";
    case Policy::kMemLlcPart: return "MEM+LLC(part)";
    case Policy::kLlcMemPart: return "LLC+MEM(part)";
  }
  return "?";
}

std::optional<Policy> parse_policy(std::string_view name) {
  for (Policy p : kAll)
    if (to_string(p) == name) return p;
  return std::nullopt;
}

}  // namespace tint::core

#include "core/tintmalloc.h"

#include <algorithm>

#include "util/assert.h"

namespace tint::core {

TintHeap::TintHeap(os::Kernel& kernel, os::TaskId task, HeapConfig cfg)
    : kernel_(kernel), task_(task), cfg_(cfg) {
  TINT_ASSERT(cfg_.chunk_pages >= 1);
  free_lists_.resize(std::size(kClasses));
}

TintHeap::~TintHeap() { release_all(); }

int TintHeap::class_of(uint64_t size) {
  for (size_t i = 0; i < std::size(kClasses); ++i)
    if (size <= kClasses[i]) return static_cast<int>(i);
  return -1;  // large allocation
}

VirtAddr TintHeap::fail_malloc(os::AllocError why) {
  last_error_ = why;
  ++stats_.failed_mallocs;
  return 0;
}

bool TintHeap::populate_range(VirtAddr va, uint64_t len, uint64_t stride) {
  const uint64_t page = kernel_.topology().page_bytes();
  if (stride == 0) stride = page;
  for (VirtAddr a = va & ~(page - 1); a < va + len; a += stride) {
    const auto tr = kernel_.touch(task_, a, /*write=*/true);
    if (tr.error != os::AllocError::kOk) {
      last_error_ = tr.error;
      return false;
    }
  }
  return true;
}

VirtAddr TintHeap::malloc(uint64_t size) {
  if (size == 0) size = 1;
  const int cls = class_of(size);
  VirtAddr va;
  if (cls < 0) {
    va = alloc_large(size);
    if (va == 0) return fail_malloc(last_error_);
  } else {
    const uint64_t block = kClasses[cls];
    auto& fl = free_lists_[static_cast<size_t>(cls)];
    if (!fl.empty()) {
      va = fl.back();
      fl.pop_back();
    } else {
      va = carve(block);
      if (va == 0) return fail_malloc(last_error_);
    }
    if (cfg_.populate && !populate_range(va, block)) {
      // The VA block stays on its free list for a later retry; no frame
      // was leaked (the partial faults stay mapped in the chunk's VMA).
      fl.push_back(va);
      return fail_malloc(last_error_);
    }
    block_size_.emplace(va, block);
  }
  ++stats_.mallocs;
  stats_.bytes_requested += size;
  stats_.bytes_live += size;
  last_error_ = os::AllocError::kOk;
  return va;
}

VirtAddr TintHeap::calloc(uint64_t nmemb, uint64_t size) {
  if (size != 0 && nmemb > ~uint64_t{0} / size)
    return fail_malloc(os::AllocError::kInvalidArgument);
  return malloc(nmemb * size);
}

VirtAddr TintHeap::carve(uint64_t size) {
  TINT_DASSERT(size <= kernel_.topology().page_bytes() *
                           static_cast<uint64_t>(cfg_.chunk_pages));
  if (chunk_cursor_ + size > chunk_end_) {
    const uint64_t len =
        kernel_.topology().page_bytes() * cfg_.chunk_pages;
    const VirtAddr base = kernel_.mmap(task_, 0, len, 0);
    if (base == os::kMmapFailed) {
      last_error_ = kernel_.last_error();
      return 0;
    }
    vmas_.emplace_back(base, len);
    ++stats_.chunks_reserved;
    chunk_cursor_ = base;
    chunk_end_ = base + len;
  }
  const VirtAddr va = chunk_cursor_;
  chunk_cursor_ += size;
  return va;
}

VirtAddr TintHeap::alloc_large(uint64_t size) {
  const uint64_t page = kernel_.topology().page_bytes();
  const uint64_t len = (size + page - 1) & ~(page - 1);
  const VirtAddr base = kernel_.mmap(task_, 0, len, 0);
  if (base == os::kMmapFailed) {
    last_error_ = kernel_.last_error();
    return 0;
  }
  if (cfg_.populate && !populate_range(base, len)) {
    // Unwind the frames the partial population did map.
    kernel_.munmap(task_, base, len);
    return 0;
  }
  ++stats_.large_allocs;
  vmas_.emplace_back(base, len);
  block_size_.emplace(base, len);
  return base;
}

VirtAddr TintHeap::malloc_huge(uint64_t size) {
  if (size == 0) size = 1;
  const uint64_t len =
      (size + os::Kernel::kHugeBytes - 1) & ~(os::Kernel::kHugeBytes - 1);
  const VirtAddr base = kernel_.mmap(task_, 0, len, 0, os::MAP_HUGE_2MB);
  if (base == os::kMmapFailed) return fail_malloc(kernel_.last_error());
  if (cfg_.populate &&
      !populate_range(base, len, os::Kernel::kHugeBytes)) {
    // Huge-pool exhaustion surfaces here as a 0 return (the paper's
    // "returns an error"), not an abort; already-mapped blocks unwind.
    kernel_.munmap(task_, base, len);
    return fail_malloc(last_error_);
  }
  ++stats_.mallocs;
  ++stats_.large_allocs;
  stats_.bytes_requested += size;
  stats_.bytes_live += size;
  vmas_.emplace_back(base, len);
  block_size_.emplace(base, len);
  last_error_ = os::AllocError::kOk;
  return base;
}

VirtAddr TintHeap::realloc(VirtAddr ptr, uint64_t size) {
  if (ptr == 0) return malloc(size);
  if (size == 0) {
    free(ptr);
    return 0;
  }
  const auto it = block_size_.find(ptr);
  if (it == block_size_.end()) {
    // Unknown pointer: no-op, report instead of aborting.
    last_error_ = os::AllocError::kInvalidArgument;
    ++stats_.invalid_frees;
    return 0;
  }
  const uint64_t old_size = it->second;
  if (size <= old_size && class_of(size) == class_of(old_size))
    return ptr;  // still fits the same block / class
  const VirtAddr fresh = malloc(size);
  if (fresh == 0) return 0;  // old block stays valid, like realloc(3)
  free(ptr);  // data copy is a no-op in the simulator
  return fresh;
}

VirtAddr TintHeap::aligned_alloc(uint64_t alignment, uint64_t size) {
  if (alignment < kAlign || (alignment & (alignment - 1)) != 0)
    return fail_malloc(os::AllocError::kInvalidArgument);
  if (alignment <= kAlign) return malloc(size);
  // Over-allocate and return the aligned address inside the block; the
  // bookkeeping keys on the returned pointer.
  const uint64_t padded = size + alignment;
  const int cls = class_of(padded);
  VirtAddr base;
  if (cls < 0) {
    base = alloc_large(padded);
    if (base == 0) return fail_malloc(last_error_);
    block_size_.erase(base);  // re-keyed on the aligned pointer below
  } else {
    auto& fl = free_lists_[static_cast<size_t>(cls)];
    if (!fl.empty()) {
      base = fl.back();
      fl.pop_back();
    } else {
      base = carve(kClasses[cls]);
      if (base == 0) return fail_malloc(last_error_);
    }
    if (cfg_.populate && !populate_range(base, kClasses[cls])) {
      fl.push_back(base);
      return fail_malloc(last_error_);
    }
  }
  const VirtAddr aligned = (base + alignment - 1) & ~(alignment - 1);
  // Remember the *block* under the aligned pointer so free() can return
  // it to the right size class.
  block_size_.emplace(aligned, cls < 0 ? padded : kClasses[cls]);
  aligned_offset_.emplace(aligned, aligned - base);
  ++stats_.mallocs;
  stats_.bytes_requested += size;
  stats_.bytes_live += size;
  last_error_ = os::AllocError::kOk;
  return aligned;
}

uint64_t TintHeap::usable_size(VirtAddr ptr) const {
  const auto it = block_size_.find(ptr);
  if (it == block_size_.end()) {
    last_error_ = os::AllocError::kInvalidArgument;
    return 0;
  }
  const auto off = aligned_offset_.find(ptr);
  return it->second - (off == aligned_offset_.end() ? 0 : off->second);
}

void TintHeap::free(VirtAddr ptr) {
  if (ptr == 0) return;
  const auto it = block_size_.find(ptr);
  if (it == block_size_.end()) {
    // Double free or foreign pointer: record it and carry on -- the
    // simulated heap equivalent of glibc's "invalid pointer" abort is a
    // diagnostic counter, so experiments keep running.
    last_error_ = os::AllocError::kInvalidArgument;
    ++stats_.invalid_frees;
    return;
  }
  const uint64_t size = it->second;
  block_size_.erase(it);
  ++stats_.frees;
  stats_.bytes_live -= std::min(stats_.bytes_live, size);

  // aligned_alloc pointers sit inside their block; recover the base.
  VirtAddr base = ptr;
  if (const auto off = aligned_offset_.find(ptr);
      off != aligned_offset_.end()) {
    base = ptr - off->second;
    aligned_offset_.erase(off);
  }

  const int cls = class_of(size);
  if (cls >= 0 && size == kClasses[cls]) {
    free_lists_[static_cast<size_t>(cls)].push_back(base);
    return;
  }
  // Large block: find and unmap its VMA, returning frames to the kernel.
  const auto vma = std::find_if(vmas_.begin(), vmas_.end(),
                                [&](const auto& v) { return v.first == base; });
  TINT_ASSERT_MSG(vma != vmas_.end(), "large free without matching VMA");
  kernel_.munmap(task_, vma->first, vma->second);
  vmas_.erase(vma);
}

void TintHeap::release_all() {
  for (const auto& [base, len] : vmas_) kernel_.munmap(task_, base, len);
  vmas_.clear();
  block_size_.clear();
  for (auto& fl : free_lists_) fl.clear();
  chunk_cursor_ = chunk_end_ = 0;
  stats_.bytes_live = 0;
}

unsigned apply_thread_colors(os::Kernel& kernel, os::TaskId task,
                             const ThreadColorPlan& plan) {
  unsigned calls = 0;
  for (const uint16_t c : plan.mem_colors) {
    const os::VirtAddr r = kernel.mmap(
        task, c | os::SET_MEM_COLOR, 0, os::PROT_COLOR_ALLOC);
    TINT_ASSERT_MSG(r != os::kMmapFailed, "SET_MEM_COLOR rejected");
    ++calls;
  }
  for (const uint8_t c : plan.llc_colors) {
    const os::VirtAddr r = kernel.mmap(
        task, c | os::SET_LLC_COLOR, 0, os::PROT_COLOR_ALLOC);
    TINT_ASSERT_MSG(r != os::kMmapFailed, "SET_LLC_COLOR rejected");
    ++calls;
  }
  return calls;
}

}  // namespace tint::core

#include "core/tintmalloc.h"

#include <algorithm>

#include "util/assert.h"

namespace tint::core {

namespace {
// Source of the per-instance generation stamp that keys the thread-local
// cache memo (a new heap constructed at a recycled address must not
// inherit the old memo).
std::atomic<uint64_t> g_heap_gen{0};
}  // namespace

using ArenaLock = util::RankedMutex<util::lock_rank::kHeapArena>;

TintHeap::TintHeap(os::Kernel& kernel, os::TaskId task, HeapConfig cfg)
    : kernel_(kernel),
      task_(task),
      cfg_(cfg),
      heap_gen_(g_heap_gen.fetch_add(1, std::memory_order_relaxed) + 1) {
  TINT_ASSERT(cfg_.chunk_pages >= 1);
  free_lists_.resize(std::size(kClasses));
  node_free_.assign(kernel_.topology().num_nodes(),
                    std::vector<std::vector<VirtAddr>>(std::size(kClasses)));
}

TintHeap::~TintHeap() { release_all(); }

int TintHeap::class_of(uint64_t size) {
  for (size_t i = 0; i < std::size(kClasses); ++i)
    if (size <= kClasses[i]) return static_cast<int>(i);
  return -1;  // large allocation
}

TintHeap::ThreadCache* TintHeap::this_cache() {
  if (cfg_.tcache_depth == 0) return nullptr;
  // One memo per thread covers the common one-heap-per-thread shape;
  // a thread alternating between heaps just re-resolves via the
  // registry. The generation check keeps a memo from surviving into a
  // different heap constructed at the same address.
  struct Memo {
    const void* heap;
    uint64_t gen;
    ThreadCache* tc;
  };
  static thread_local Memo memo{nullptr, 0, nullptr};
  if (memo.heap == this && memo.gen == heap_gen_) return memo.tc;
  std::lock_guard<ArenaLock> lk(arena_);
  auto& slot = caches_[std::this_thread::get_id()];
  if (!slot) {
    slot = std::make_unique<ThreadCache>(std::size(kClasses));
    if (cfg_.deferred_flush_depth > 0)
      slot->deferred = std::make_unique<os::SpscRing>(cfg_.deferred_flush_depth);
  }
  memo = {this, heap_gen_, slot.get()};
  return slot.get();
}

bool TintHeap::tcache_refill(ThreadCache& tc, int cls) {
  const uint64_t block = kClasses[cls];
  const size_t want = std::max<size_t>(1, cfg_.tcache_depth / 2);
  auto& bin = tc.bins[static_cast<size_t>(cls)];
  const unsigned local = kernel_.task(task_).local_node();
  std::lock_guard<ArenaLock> lk(arena_);
  auto& fl = free_lists_[static_cast<size_t>(cls)];
  auto& local_fl = node_free_[local][static_cast<size_t>(cls)];
  while (bin.size() < want) {
    VirtAddr va = 0;
    // Locality order: blocks whose frames already sit on the task's node
    // (routed there by a flush), then the generic list (slow-path frees
    // and pristine carve blocks that will fault onto the right colors),
    // then remote-node blocks, then a fresh carve.
    if (!local_fl.empty()) {
      va = local_fl.back();
      local_fl.pop_back();
      tc.local_refills.fetch_add(1, std::memory_order_relaxed);
    } else if (!fl.empty()) {
      va = fl.back();
      fl.pop_back();
    } else {
      for (auto& per_node : node_free_) {
        auto& nfl = per_node[static_cast<size_t>(cls)];
        if (!nfl.empty()) {
          va = nfl.back();
          nfl.pop_back();
          break;
        }
      }
      if (va == 0) {
        va = carve(block);
        if (va == 0) break;  // kernel dry; the caller falls to the slow path
      }
    }
    block_size_.emplace(va, block);
    tc.cls_of.emplace(va, cls);
    bin.push_back(va);
  }
  return !bin.empty();
}

void TintHeap::tcache_flush_bin(ThreadCache& tc, int cls, size_t keep) {
  auto& bin = tc.bins[static_cast<size_t>(cls)];
  if (bin.size() <= keep) return;
  const size_t n = bin.size() - keep;
  // Resolve each overflowing block's backing node *before* the flush so
  // the blocks land on their node's list: a flush used to be node-blind,
  // so a refill on another thread would inherit remote (and wrongly
  // colored) frames. Unfaulted blocks have no frame yet and stay
  // generic. Holding the arena while translating is fine -- kHeapArena
  // is below every kernel rank.
  uint64_t routed = 0;
  std::lock_guard<ArenaLock> lk(arena_);
  auto& fl = free_lists_[static_cast<size_t>(cls)];
  for (size_t i = 0; i < n; ++i) {
    block_size_.erase(bin[i]);
    if (const auto pa = kernel_.translate(bin[i])) {
      node_free_[kernel_.mapping().node_of(*pa)][static_cast<size_t>(cls)]
          .push_back(bin[i]);
      ++routed;
    } else {
      fl.push_back(bin[i]);
    }
  }
  bin.erase(bin.begin(), bin.begin() + static_cast<std::ptrdiff_t>(n));
  tc.flushes.fetch_add(n, std::memory_order_relaxed);
  if (routed) tc.node_flushes.fetch_add(routed, std::memory_order_relaxed);
}

bool TintHeap::tcache_defer_bin(ThreadCache& tc, int cls, size_t keep) {
  if (!tc.deferred) return false;
  auto& bin = tc.bins[static_cast<size_t>(cls)];
  const size_t n = bin.size() > keep ? bin.size() - keep : 0;
  // Evict oldest-first (the bin front), same order the inline flush
  // uses. Parked blocks keep their block_size_ entry -- the drain needs
  // it to recover the class -- so conservation-wise they are still
  // "cached", just invisible to this thread's bin scan.
  size_t pushed = 0;
  while (pushed < n && tc.deferred->push(bin[pushed])) ++pushed;
  if (pushed > 0) {
    bin.erase(bin.begin(), bin.begin() + static_cast<std::ptrdiff_t>(pushed));
    tc.deferred_blocks.fetch_add(pushed, std::memory_order_relaxed);
  }
  // Ring full (the drain is behind): flush the remainder inline so the
  // bin never grows unbounded.
  if (bin.size() > keep) tcache_flush_bin(tc, cls, keep);
  return true;
}

uint64_t TintHeap::drain_deferred_flushes() {
  if (cfg_.tcache_depth == 0 || cfg_.deferred_flush_depth == 0) return 0;
  std::lock_guard<ArenaLock> lk(arena_);
  uint64_t drained = 0;
  uint64_t routed = 0;
  for (auto& [tid, tc] : caches_) {
    if (!tc->deferred) continue;
    for (;;) {
      const VirtAddr va = tc->deferred->pop();
      if (va == os::SpscRing::kEmpty) break;
      const auto it = block_size_.find(va);
      if (it == block_size_.end()) continue;  // swept by release_all
      const int cls = class_of(it->second);
      TINT_DASSERT(cls >= 0);
      block_size_.erase(it);
      // Node-routed like the inline flush: the block's frame keeps the
      // coloring locality its fault gave it.
      if (const auto pa = kernel_.translate(va)) {
        node_free_[kernel_.mapping().node_of(*pa)][static_cast<size_t>(cls)]
            .push_back(va);
        ++routed;
      } else {
        free_lists_[static_cast<size_t>(cls)].push_back(va);
      }
      ++drained;
    }
  }
  stats_.tcache_bg_flushes += drained;
  stats_.tcache_flushes += drained;
  stats_.tcache_node_flushes += routed;
  return drained;
}

VirtAddr TintHeap::fail_malloc(os::AllocError why) {
  last_error_ = why;
  ++stats_.failed_mallocs;
  return 0;
}

bool TintHeap::populate_range(VirtAddr va, uint64_t len, uint64_t stride) {
  const uint64_t page = kernel_.topology().page_bytes();
  if (stride == 0) stride = page;
  for (VirtAddr a = va & ~(page - 1); a < va + len; a += stride) {
    const auto tr = kernel_.touch(task_, a, /*write=*/true);
    if (tr.error != os::AllocError::kOk) {
      last_error_ = tr.error;
      return false;
    }
  }
  return true;
}

VirtAddr TintHeap::malloc(uint64_t size) {
  if (size == 0) size = 1;
  const int cls = class_of(size);
  if (cls >= 0) {
    if (ThreadCache* tc = this_cache()) {
      auto& bin = tc->bins[static_cast<size_t>(cls)];
      if (bin.empty()) tcache_refill(*tc, cls);
      if (!bin.empty()) {
        const VirtAddr va = bin.back();
        bin.pop_back();
        if (cfg_.populate && !populate_range(va, kClasses[cls])) {
          bin.push_back(va);  // stays cached for a later retry
          std::lock_guard<ArenaLock> lk(arena_);
          return fail_malloc(last_error());
        }
        tc->hits.fetch_add(1, std::memory_order_relaxed);
        tc->mallocs.fetch_add(1, std::memory_order_relaxed);
        tc->bytes_requested.fetch_add(size, std::memory_order_relaxed);
        tc->live_delta.fetch_add(static_cast<int64_t>(size),
                                 std::memory_order_relaxed);
        last_error_.store(os::AllocError::kOk, std::memory_order_relaxed);
        return va;
      }
      // Arena and kernel both dry: fall through so the slow path records
      // the failure exactly like the uncached build.
    }
  }
  std::lock_guard<ArenaLock> lk(arena_);
  return malloc_locked(size, cls);
}

VirtAddr TintHeap::malloc_locked(uint64_t size, int cls) {
  VirtAddr va;
  if (cls < 0) {
    va = alloc_large(size);
    if (va == 0) return fail_malloc(last_error());
  } else {
    const uint64_t block = kClasses[cls];
    auto& fl = free_lists_[static_cast<size_t>(cls)];
    if (!fl.empty()) {
      va = fl.back();
      fl.pop_back();
    } else {
      // Node-routed blocks (tcache flushes) before a fresh carve, local
      // node first, so they never strand once the generic list is dry.
      va = 0;
      const unsigned nn = static_cast<unsigned>(node_free_.size());
      const unsigned local = kernel_.task(task_).local_node();
      for (unsigned i = 0; i < nn && va == 0; ++i) {
        auto& nfl = node_free_[(local + i) % nn][static_cast<size_t>(cls)];
        if (!nfl.empty()) {
          va = nfl.back();
          nfl.pop_back();
        }
      }
      if (va == 0) {
        va = carve(block);
        if (va == 0) return fail_malloc(last_error());
      }
    }
    if (cfg_.populate && !populate_range(va, block)) {
      // The VA block stays on its free list for a later retry; no frame
      // was leaked (the partial faults stay mapped in the chunk's VMA).
      fl.push_back(va);
      return fail_malloc(last_error());
    }
    block_size_.emplace(va, block);
  }
  ++stats_.mallocs;
  stats_.bytes_requested += size;
  stats_.bytes_live += size;
  last_error_ = os::AllocError::kOk;
  return va;
}

VirtAddr TintHeap::calloc(uint64_t nmemb, uint64_t size) {
  if (size != 0 && nmemb > ~uint64_t{0} / size) {
    std::lock_guard<ArenaLock> lk(arena_);
    return fail_malloc(os::AllocError::kInvalidArgument);
  }
  return malloc(nmemb * size);
}

VirtAddr TintHeap::carve(uint64_t size) {
  TINT_DASSERT(size <= kernel_.topology().page_bytes() *
                           static_cast<uint64_t>(cfg_.chunk_pages));
  if (chunk_cursor_ + size > chunk_end_) {
    const uint64_t len =
        kernel_.topology().page_bytes() * cfg_.chunk_pages;
    const VirtAddr base = kernel_.mmap(task_, 0, len, 0);
    if (base == os::kMmapFailed) {
      last_error_ = kernel_.last_error();
      return 0;
    }
    vmas_.emplace_back(base, len);
    ++stats_.chunks_reserved;
    chunk_cursor_ = base;
    chunk_end_ = base + len;
  }
  const VirtAddr va = chunk_cursor_;
  chunk_cursor_ += size;
  return va;
}

VirtAddr TintHeap::alloc_large(uint64_t size) {
  const uint64_t page = kernel_.topology().page_bytes();
  const uint64_t len = (size + page - 1) & ~(page - 1);
  const VirtAddr base = kernel_.mmap(task_, 0, len, 0);
  if (base == os::kMmapFailed) {
    last_error_ = kernel_.last_error();
    return 0;
  }
  if (cfg_.populate && !populate_range(base, len)) {
    // Unwind the frames the partial population did map.
    kernel_.munmap(task_, base, len);
    return 0;
  }
  ++stats_.large_allocs;
  vmas_.emplace_back(base, len);
  block_size_.emplace(base, len);
  return base;
}

VirtAddr TintHeap::malloc_huge(uint64_t size) {
  if (size == 0) size = 1;
  std::lock_guard<ArenaLock> lk(arena_);
  const uint64_t len =
      (size + os::Kernel::kHugeBytes - 1) & ~(os::Kernel::kHugeBytes - 1);
  const VirtAddr base = kernel_.mmap(task_, 0, len, 0, os::MAP_HUGE_2MB);
  if (base == os::kMmapFailed) return fail_malloc(kernel_.last_error());
  if (cfg_.populate &&
      !populate_range(base, len, os::Kernel::kHugeBytes)) {
    // Huge-pool exhaustion surfaces here as a 0 return (the paper's
    // "returns an error"), not an abort; already-mapped blocks unwind.
    kernel_.munmap(task_, base, len);
    return fail_malloc(last_error());
  }
  ++stats_.mallocs;
  ++stats_.large_allocs;
  stats_.bytes_requested += size;
  stats_.bytes_live += size;
  vmas_.emplace_back(base, len);
  block_size_.emplace(base, len);
  last_error_ = os::AllocError::kOk;
  return base;
}

VirtAddr TintHeap::realloc(VirtAddr ptr, uint64_t size) {
  if (ptr == 0) return malloc(size);
  if (size == 0) {
    free(ptr);
    return 0;
  }
  uint64_t old_size = 0;
  {
    std::lock_guard<ArenaLock> lk(arena_);
    const auto it = block_size_.find(ptr);
    if (it == block_size_.end()) {
      // Unknown pointer: no-op, report instead of aborting.
      last_error_ = os::AllocError::kInvalidArgument;
      ++stats_.invalid_frees;
      return 0;
    }
    old_size = it->second;
  }
  if (size <= old_size && class_of(size) == class_of(old_size))
    return ptr;  // still fits the same block / class
  const VirtAddr fresh = malloc(size);
  if (fresh == 0) return 0;  // old block stays valid, like realloc(3)
  free(ptr);  // data copy is a no-op in the simulator
  return fresh;
}

VirtAddr TintHeap::aligned_alloc(uint64_t alignment, uint64_t size) {
  if (alignment < kAlign || (alignment & (alignment - 1)) != 0) {
    std::lock_guard<ArenaLock> lk(arena_);
    return fail_malloc(os::AllocError::kInvalidArgument);
  }
  if (alignment <= kAlign) return malloc(size);
  std::lock_guard<ArenaLock> lk(arena_);
  // Over-allocate and return the aligned address inside the block; the
  // bookkeeping keys on the returned pointer.
  const uint64_t padded = size + alignment;
  const int cls = class_of(padded);
  VirtAddr base;
  if (cls < 0) {
    base = alloc_large(padded);
    if (base == 0) return fail_malloc(last_error());
    block_size_.erase(base);  // re-keyed on the aligned pointer below
  } else {
    auto& fl = free_lists_[static_cast<size_t>(cls)];
    if (!fl.empty()) {
      base = fl.back();
      fl.pop_back();
    } else {
      base = carve(kClasses[cls]);
      if (base == 0) return fail_malloc(last_error());
    }
    if (cfg_.populate && !populate_range(base, kClasses[cls])) {
      fl.push_back(base);
      return fail_malloc(last_error());
    }
  }
  const VirtAddr aligned = (base + alignment - 1) & ~(alignment - 1);
  // Remember the *block* under the aligned pointer so free() can return
  // it to the right size class.
  block_size_.emplace(aligned, cls < 0 ? padded : kClasses[cls]);
  if (aligned != base) aligned_offset_.emplace(aligned, aligned - base);
  ++stats_.mallocs;
  stats_.bytes_requested += size;
  stats_.bytes_live += size;
  last_error_ = os::AllocError::kOk;
  return aligned;
}

uint64_t TintHeap::usable_size(VirtAddr ptr) const {
  std::lock_guard<ArenaLock> lk(arena_);
  const auto it = block_size_.find(ptr);
  if (it == block_size_.end()) {
    last_error_ = os::AllocError::kInvalidArgument;
    return 0;
  }
  const auto off = aligned_offset_.find(ptr);
  return it->second - (off == aligned_offset_.end() ? 0 : off->second);
}

void TintHeap::free(VirtAddr ptr) {
  if (ptr == 0) return;
  if (ThreadCache* tc = this_cache()) {
    const auto cit = tc->cls_of.find(ptr);
    if (cit != tc->cls_of.end()) {
      const int cls = cit->second;
      auto& bin = tc->bins[static_cast<size_t>(cls)];
      if (std::find(bin.begin(), bin.end(), ptr) != bin.end()) {
        // Same-thread double free of a cached block; the depth-bounded
        // bin scan is all the detection the lock-free path can afford.
        last_error_.store(os::AllocError::kInvalidArgument,
                          std::memory_order_relaxed);
        tc->invalid_frees.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      if (bin.size() >= cfg_.tcache_depth &&
          !tcache_defer_bin(*tc, cls, cfg_.tcache_depth / 2))
        tcache_flush_bin(*tc, cls, cfg_.tcache_depth / 2);
      bin.push_back(ptr);
      tc->frees.fetch_add(1, std::memory_order_relaxed);
      tc->live_delta.fetch_sub(static_cast<int64_t>(kClasses[cls]),
                               std::memory_order_relaxed);
      return;
    }
  }
  std::lock_guard<ArenaLock> lk(arena_);
  const auto it = block_size_.find(ptr);
  if (it == block_size_.end()) {
    // Double free or foreign pointer: record it and carry on -- the
    // simulated heap equivalent of glibc's "invalid pointer" abort is a
    // diagnostic counter, so experiments keep running.
    last_error_ = os::AllocError::kInvalidArgument;
    ++stats_.invalid_frees;
    return;
  }
  const uint64_t size = it->second;
  block_size_.erase(it);
  ++stats_.frees;
  stats_.bytes_live -= std::min(stats_.bytes_live, size);

  // aligned_alloc pointers sit inside their block; recover the base.
  VirtAddr base = ptr;
  if (const auto off = aligned_offset_.find(ptr);
      off != aligned_offset_.end()) {
    base = ptr - off->second;
    aligned_offset_.erase(off);
  }

  const int cls = class_of(size);
  if (cls >= 0 && size == kClasses[cls]) {
    free_lists_[static_cast<size_t>(cls)].push_back(base);
    return;
  }
  // Large block: find and unmap its VMA, returning frames to the kernel.
  const auto vma = std::find_if(vmas_.begin(), vmas_.end(),
                                [&](const auto& v) { return v.first == base; });
  TINT_ASSERT_MSG(vma != vmas_.end(), "large free without matching VMA");
  kernel_.munmap(task_, vma->first, vma->second);
  vmas_.erase(vma);
}

void TintHeap::release_all() {
  // Like the destructor, this must not race with malloc/free on other
  // threads: the thread-cache fast paths read cls_of without the arena.
  std::lock_guard<ArenaLock> lk(arena_);
  for (auto& [tid, tc] : caches_) {
    for (auto& bin : tc->bins) bin.clear();
    if (tc->deferred) tc->deferred->drain_all();  // VAs die with the VMAs
    tc->cls_of.clear();
    tc->live_delta.store(0, std::memory_order_relaxed);
  }
  for (const auto& [base, len] : vmas_) kernel_.munmap(task_, base, len);
  vmas_.clear();
  block_size_.clear();
  aligned_offset_.clear();
  for (auto& fl : free_lists_) fl.clear();
  for (auto& per_node : node_free_)
    for (auto& fl : per_node) fl.clear();
  chunk_cursor_ = chunk_end_ = 0;
  stats_.bytes_live = 0;
}

HeapStats TintHeap::stats() const {
  std::lock_guard<ArenaLock> lk(arena_);
  HeapStats out = stats_;
  int64_t live = static_cast<int64_t>(out.bytes_live);
  for (const auto& [tid, tc] : caches_) {
    out.mallocs += tc->mallocs.load(std::memory_order_relaxed);
    out.frees += tc->frees.load(std::memory_order_relaxed);
    out.bytes_requested += tc->bytes_requested.load(std::memory_order_relaxed);
    out.invalid_frees += tc->invalid_frees.load(std::memory_order_relaxed);
    out.tcache_hits += tc->hits.load(std::memory_order_relaxed);
    out.tcache_flushes += tc->flushes.load(std::memory_order_relaxed);
    out.tcache_node_flushes +=
        tc->node_flushes.load(std::memory_order_relaxed);
    out.tcache_local_refills +=
        tc->local_refills.load(std::memory_order_relaxed);
    out.tcache_deferred += tc->deferred_blocks.load(std::memory_order_relaxed);
    live += tc->live_delta.load(std::memory_order_relaxed);
  }
  out.bytes_live = live > 0 ? static_cast<uint64_t>(live) : 0;
  return out;
}

unsigned apply_thread_colors(os::Kernel& kernel, os::TaskId task,
                             const ThreadColorPlan& plan) {
  unsigned calls = 0;
  for (const uint16_t c : plan.mem_colors) {
    const os::VirtAddr r = kernel.mmap(
        task, c | os::SET_MEM_COLOR, 0, os::PROT_COLOR_ALLOC);
    TINT_ASSERT_MSG(r != os::kMmapFailed, "SET_MEM_COLOR rejected");
    ++calls;
  }
  for (const uint8_t c : plan.llc_colors) {
    const os::VirtAddr r = kernel.mmap(
        task, c | os::SET_LLC_COLOR, 0, os::PROT_COLOR_ALLOC);
    TINT_ASSERT_MSG(r != os::kMmapFailed, "SET_LLC_COLOR rejected");
    ++calls;
  }
  return calls;
}

}  // namespace tint::core

// TintHeap: the user-level malloc that sits on top of the colored
// kernel path.
//
// The paper's headline usability claim is that "malloc() calls remain
// unchanged": an application opts in with one mmap() color-control call
// per color during initialization, and every subsequent heap allocation
// of that thread is automatically colored, because the kernel serves the
// heap's page faults from the task's color lists.
//
// TintHeap reproduces that division of labour. It is a conventional
// size-class allocator (think a minimal glibc arena): it reserves VMAs
// from the kernel in multi-page chunks and carves them into blocks. It
// knows *nothing* about colors -- coloring happens underneath it, at
// page-fault time, driven by the owning task's TCB. The same heap code
// therefore serves every policy, including the buddy baseline.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/color_planner.h"
#include "os/kernel.h"

namespace tint::core {

using os::VirtAddr;

struct HeapConfig {
  // VMA reservation granularity in pages (VA only; frames fault in).
  unsigned chunk_pages = 256;
  // Fault every page in at malloc() time (MAP_POPULATE semantics).
  // Allocation failure then surfaces as malloc() returning 0 with
  // last_error() set -- after the partially faulted frames are unwound
  // -- instead of as an error at first touch. The pressure harnesses
  // use this to exercise the kernel's degradation ladder through the
  // plain malloc API.
  bool populate = false;
};

struct HeapStats {
  uint64_t mallocs = 0;
  uint64_t frees = 0;
  uint64_t bytes_requested = 0;
  uint64_t bytes_live = 0;
  uint64_t chunks_reserved = 0;
  uint64_t large_allocs = 0;
  uint64_t failed_mallocs = 0;   // allocations rejected with last_error()
  uint64_t invalid_frees = 0;    // free/realloc of an unknown pointer
};

class TintHeap {
 public:
  TintHeap(os::Kernel& kernel, os::TaskId task, HeapConfig cfg = {});

  // Allocates `size` bytes of simulated heap, 16-byte aligned.
  // Returns the virtual address (never 0 on success). Returns 0 with
  // last_error() set (errno-style) when the allocation cannot be
  // served: bad arguments, or -- with HeapConfig::populate -- the
  // kernel's degradation ladder exhausted.
  VirtAddr malloc(uint64_t size);
  // malloc + the caller intends to zero it; identical placement-wise
  // (the simulator carries no data), provided for API fidelity.
  VirtAddr calloc(uint64_t nmemb, uint64_t size);
  // Grows/shrinks a block. Returns the (possibly moved) address; the
  // simulator carries no data, so "copying" is a size-bookkeeping move.
  // realloc(0, n) == malloc(n); realloc(p, 0) frees and returns 0.
  VirtAddr realloc(VirtAddr ptr, uint64_t size);
  // Allocation with alignment (power of two, >= 16).
  VirtAddr aligned_alloc(uint64_t alignment, uint64_t size);
  // Allocation backed by 2 MB huge pages (extension; see
  // os::MAP_HUGE_2MB). Huge frames cannot be bank/LLC colored but stay
  // node-local; trade color isolation for page-fault and row locality.
  VirtAddr malloc_huge(uint64_t size);
  void free(VirtAddr ptr);

  // Size the allocator reserved for `ptr` (like malloc_usable_size).
  uint64_t usable_size(VirtAddr ptr) const;

  // Releases every mapping this heap created (frames return to their
  // color lists / the buddy allocator).
  void release_all();

  os::TaskId task() const { return task_; }
  const HeapStats& stats() const { return stats_; }
  // Reason the most recent call returned 0 / was rejected (kOk after a
  // success) -- the heap-level errno.
  os::AllocError last_error() const { return last_error_; }

  ~TintHeap();
  TintHeap(const TintHeap&) = delete;
  TintHeap& operator=(const TintHeap&) = delete;

 private:
  static constexpr uint64_t kAlign = 16;
  // Size classes for sub-page blocks.
  static constexpr uint64_t kClasses[] = {16,  32,  48,  64,   96,   128, 192,
                                          256, 384, 512, 1024, 2048, 4096};
  static int class_of(uint64_t size);

  VirtAddr alloc_large(uint64_t size);
  VirtAddr carve(uint64_t size);
  // Records a failed allocation and returns the 0 the caller hands out.
  VirtAddr fail_malloc(os::AllocError why);
  // Faults in [va, va+len); false (with last_error_) on ladder failure.
  bool populate_range(VirtAddr va, uint64_t len, uint64_t stride = 0);

  os::Kernel& kernel_;
  os::TaskId task_;
  HeapConfig cfg_;
  HeapStats stats_;
  // Mutable so const observers (usable_size) can report lookup failures.
  mutable os::AllocError last_error_ = os::AllocError::kOk;

  std::vector<std::vector<VirtAddr>> free_lists_;  // per class
  VirtAddr chunk_cursor_ = 0;
  VirtAddr chunk_end_ = 0;
  std::vector<std::pair<VirtAddr, uint64_t>> vmas_;  // {base, length}
  // Size bookkeeping for free(); real malloc uses headers, the simulator
  // has no data memory to put them in.
  std::unordered_map<VirtAddr, uint64_t> block_size_;
  // aligned_alloc pointers -> offset from their block base.
  std::unordered_map<VirtAddr, uint64_t> aligned_offset_;
};

// Issues the paper's one-line opt-in for one thread: one color-control
// mmap() per color in the plan (SET_MEM_COLOR / SET_LLC_COLOR).
// Returns the number of mmap calls issued.
unsigned apply_thread_colors(os::Kernel& kernel, os::TaskId task,
                             const ThreadColorPlan& plan);

}  // namespace tint::core

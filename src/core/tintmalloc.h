// TintHeap: the user-level malloc that sits on top of the colored
// kernel path.
//
// The paper's headline usability claim is that "malloc() calls remain
// unchanged": an application opts in with one mmap() color-control call
// per color during initialization, and every subsequent heap allocation
// of that thread is automatically colored, because the kernel serves the
// heap's page faults from the task's color lists.
//
// TintHeap reproduces that division of labour. It is a conventional
// size-class allocator (think a minimal glibc arena): it reserves VMAs
// from the kernel in multi-page chunks and carves them into blocks. It
// knows *nothing* about colors -- coloring happens underneath it, at
// page-fault time, driven by the owning task's TCB. The same heap code
// therefore serves every policy, including the buddy baseline.
//
// Thread safety: the arena (free lists, block bookkeeping, chunk cursor,
// VMA list) is guarded by one mutex at rank kHeapArena -- the lowest
// rank in the system, because arena slow paths call into the kernel
// (mmap/munmap/touch) which takes its own higher-ranked locks. With
// HeapConfig::tcache_depth > 0, each thread additionally gets a
// per-thread size-class cache in front of the arena, so the steady-state
// malloc/free round-trip of one thread takes no lock at all (the
// user-level analogue of the kernel's per-task page magazines).
//
// The tcache trades one diagnostic for speed: a block parked in a
// thread's cache keeps its block_size_ entry, so a double free of such a
// block is only caught by scanning the (depth-bounded) bin it sits in --
// a cross-thread double free of a cached block goes undetected. With
// tcache_depth = 0 (the default) detection is exactly as strict as
// before.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/color_planner.h"
#include "os/kernel.h"
#include "os/offload_ring.h"
#include "util/lock_rank.h"

namespace tint::core {

using os::VirtAddr;

struct HeapConfig {
  // VMA reservation granularity in pages (VA only; frames fault in).
  unsigned chunk_pages = 256;
  // Fault every page in at malloc() time (MAP_POPULATE semantics).
  // Allocation failure then surfaces as malloc() returning 0 with
  // last_error() set -- after the partially faulted frames are unwound
  // -- instead of as an error at first touch. The pressure harnesses
  // use this to exercise the kernel's degradation ladder through the
  // plain malloc API.
  bool populate = false;
  // Per-class depth of the per-thread front-end cache (0 = no thread
  // caches; the serial determinism goldens pin the uncached behaviour).
  unsigned tcache_depth = 0;
  // Depth of the per-thread *deferred flush* ring (0 = off). With it
  // set, a tcache bin overflow parks the evicted block VAs on a
  // lock-free SPSC ring instead of flushing them to the arena inline;
  // the offload engine (runtime/offload.h) drains the rings in the
  // background via drain_deferred_flushes(), so free() stays lock-free
  // even at the flush watermark. Ring full -> the inline flush runs as
  // before (graceful degradation, never a stall).
  unsigned deferred_flush_depth = 0;
};

struct HeapStats {
  uint64_t mallocs = 0;
  uint64_t frees = 0;
  uint64_t bytes_requested = 0;
  uint64_t bytes_live = 0;
  uint64_t chunks_reserved = 0;
  uint64_t large_allocs = 0;
  uint64_t failed_mallocs = 0;   // allocations rejected with last_error()
  uint64_t invalid_frees = 0;    // free/realloc of an unknown pointer
  uint64_t tcache_hits = 0;      // mallocs served lock-free by a thread cache
  uint64_t tcache_flushes = 0;   // cached blocks flushed back to the arena
  // Flushed blocks whose backing frame was resolved and routed to its
  // node's free list (preserving the coloring locality the fault gave
  // the block) instead of the node-blind generic list.
  uint64_t tcache_node_flushes = 0;
  // Refill blocks served from the task-local node list (locality hits).
  uint64_t tcache_local_refills = 0;
  // Overflow blocks parked on a deferred-flush ring (lock-free eviction)
  // and blocks the background drain routed back to the arena. Deferred
  // blocks are *not* double-counted in tcache_flushes until drained.
  uint64_t tcache_deferred = 0;
  uint64_t tcache_bg_flushes = 0;
};

class TintHeap {
 public:
  TintHeap(os::Kernel& kernel, os::TaskId task, HeapConfig cfg = {});

  // Allocates `size` bytes of simulated heap, 16-byte aligned.
  // Returns the virtual address (never 0 on success). Returns 0 with
  // last_error() set (errno-style) when the allocation cannot be
  // served: bad arguments, or -- with HeapConfig::populate -- the
  // kernel's degradation ladder exhausted.
  VirtAddr malloc(uint64_t size);
  // malloc + the caller intends to zero it; identical placement-wise
  // (the simulator carries no data), provided for API fidelity.
  VirtAddr calloc(uint64_t nmemb, uint64_t size);
  // Grows/shrinks a block. Returns the (possibly moved) address; the
  // simulator carries no data, so "copying" is a size-bookkeeping move.
  // realloc(0, n) == malloc(n); realloc(p, 0) frees and returns 0.
  VirtAddr realloc(VirtAddr ptr, uint64_t size);
  // Allocation with alignment (power of two, >= 16).
  VirtAddr aligned_alloc(uint64_t alignment, uint64_t size);
  // Allocation backed by 2 MB huge pages (extension; see
  // os::MAP_HUGE_2MB). Huge frames cannot be bank/LLC colored but stay
  // node-local; trade color isolation for page-fault and row locality.
  VirtAddr malloc_huge(uint64_t size);
  void free(VirtAddr ptr);

  // Size the allocator reserved for `ptr` (like malloc_usable_size).
  uint64_t usable_size(VirtAddr ptr) const;

  // Releases every mapping this heap created (frames return to their
  // color lists / the buddy allocator) and empties every thread cache
  // (including the deferred-flush rings).
  void release_all();

  // Drains every thread's deferred-flush ring back to the arena free
  // lists (node-routed, like an inline flush). The offload engine calls
  // this once per service round; any thread may call it -- consumers
  // serialize on the arena lock. Returns the number of blocks drained.
  uint64_t drain_deferred_flushes();

  os::TaskId task() const { return task_; }
  // Merged snapshot: the arena's counters plus every thread cache's
  // (returned by value; per-thread counters are atomics merged here).
  HeapStats stats() const;
  // Reason the most recent call returned 0 / was rejected (kOk after a
  // success) -- the heap-level errno.
  os::AllocError last_error() const {
    return last_error_.load(std::memory_order_relaxed);
  }

  ~TintHeap();
  TintHeap(const TintHeap&) = delete;
  TintHeap& operator=(const TintHeap&) = delete;

 private:
  static constexpr uint64_t kAlign = 16;
  // Size classes for sub-page blocks.
  static constexpr uint64_t kClasses[] = {16,  32,  48,  64,   96,   128, 192,
                                          256, 384, 512, 1024, 2048, 4096};
  static int class_of(uint64_t size);

  // Per-thread front-end cache. The cls_of map is the key trick: a
  // block VA's size class is stable forever (VAs come from a monotonic
  // kernel-wide cursor and are never reused, and a block never changes
  // class), so once a thread has seen a block it can free it again
  // without consulting the arena. Counters are single-writer atomics
  // read cross-thread by stats().
  struct ThreadCache {
    explicit ThreadCache(size_t nclasses) : bins(nclasses) {}
    std::vector<std::vector<VirtAddr>> bins;  // per class, depth-bounded
    std::unordered_map<VirtAddr, int> cls_of;
    std::atomic<uint64_t> mallocs{0};
    std::atomic<uint64_t> frees{0};
    std::atomic<uint64_t> bytes_requested{0};
    std::atomic<uint64_t> invalid_frees{0};
    std::atomic<uint64_t> hits{0};
    std::atomic<uint64_t> flushes{0};
    std::atomic<uint64_t> node_flushes{0};
    std::atomic<uint64_t> local_refills{0};
    std::atomic<uint64_t> deferred_blocks{0};
    std::atomic<int64_t> live_delta{0};
    // Deferred-flush ring (HeapConfig::deferred_flush_depth > 0 only).
    // Producer: the owning thread's free() at the flush watermark.
    // Consumer: drain_deferred_flushes() under the arena lock. Blocks
    // parked here keep their block_size_ entry (the drain resolves the
    // class from it) and their cls_of memo (owned by the thread).
    std::unique_ptr<os::SpscRing> deferred;
  };
  // This thread's cache for this heap (created on first use); nullptr
  // when tcache_depth == 0. Must not be called with the arena held.
  ThreadCache* this_cache();
  // Moves up to tcache_depth/2 blocks arena -> bin under one arena
  // hold; false if arena and kernel are both dry.
  bool tcache_refill(ThreadCache& tc, int cls);
  // Flushes the bin down to `keep` blocks under one arena hold.
  void tcache_flush_bin(ThreadCache& tc, int cls, size_t keep);
  // Lock-free eviction: parks the bin's overflow (down to `keep`) on
  // the deferred ring for the background drain. False when deferral is
  // disabled; a full ring falls back to tcache_flush_bin internally.
  bool tcache_defer_bin(ThreadCache& tc, int cls, size_t keep);

  // Slow paths; callers hold arena_.
  VirtAddr malloc_locked(uint64_t size, int cls);
  VirtAddr alloc_large(uint64_t size);
  VirtAddr carve(uint64_t size);
  // Records a failed allocation and returns the 0 the caller hands out.
  // Caller holds arena_.
  VirtAddr fail_malloc(os::AllocError why);
  // Faults in [va, va+len); false (with last_error_) on ladder failure.
  // Takes no heap lock (the kernel synchronizes itself).
  bool populate_range(VirtAddr va, uint64_t len, uint64_t stride = 0);

  os::Kernel& kernel_;
  os::TaskId task_;
  HeapConfig cfg_;
  HeapStats stats_;  // arena-side counters; see stats() for the merge
  // Heap-level errno; atomic so the lock-free paths can publish kOk.
  mutable std::atomic<os::AllocError> last_error_{os::AllocError::kOk};

  // Arena lock: rank kHeapArena (the lowest rank -- slow paths call the
  // kernel while holding it). Guards everything below.
  mutable util::RankedMutex<util::lock_rank::kHeapArena> arena_;
  std::vector<std::vector<VirtAddr>> free_lists_;  // per class
  // Node-routed free lists [node][class]: tcache overflow flushes land
  // here when the block's backing frame could be resolved, so a later
  // refill hands node-local (and therefore correctly colored) blocks
  // back out instead of scattering frames across the machine. Blocks
  // freed through the slow path keep using free_lists_ (behaviour with
  // tcache_depth == 0 is unchanged -- the determinism goldens pin it).
  std::vector<std::vector<std::vector<VirtAddr>>> node_free_;
  VirtAddr chunk_cursor_ = 0;
  VirtAddr chunk_end_ = 0;
  std::vector<std::pair<VirtAddr, uint64_t>> vmas_;  // {base, length}
  // Size bookkeeping for free(); real malloc uses headers, the simulator
  // has no data memory to put them in. Blocks parked in a thread cache
  // keep their entry; blocks on free_lists_ have none.
  std::unordered_map<VirtAddr, uint64_t> block_size_;
  // aligned_alloc pointers -> offset from their block base (only when
  // the offset is non-zero; a zero offset needs no recovery).
  std::unordered_map<VirtAddr, uint64_t> aligned_offset_;
  // Thread-cache registry; ThreadCache objects live until the heap dies
  // (release_all empties them but keeps them, so the thread-local memo
  // in this_cache() never dangles).
  std::unordered_map<std::thread::id, std::unique_ptr<ThreadCache>> caches_;
  const uint64_t heap_gen_;  // unique per instance, validates the memo
};

// Issues the paper's one-line opt-in for one thread: one color-control
// mmap() per color in the plan (SET_MEM_COLOR / SET_LLC_COLOR).
// Returns the number of mmap calls issued.
unsigned apply_thread_colors(os::Kernel& kernel, os::TaskId task,
                             const ThreadColorPlan& plan);

}  // namespace tint::core

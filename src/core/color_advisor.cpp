#include "core/color_advisor.h"

#include <algorithm>
#include <cstdio>

#include "core/tintmalloc.h"
#include "util/assert.h"

namespace tint::core {

namespace {
std::string fmt_frac(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2f", v);
  return buf;
}
}  // namespace

ColorAdvisor::ColorAdvisor(const hw::AddressMapping& mapping,
                           const hw::Topology& topo)
    : mapping_(mapping), topo_(topo) {}

uint64_t ColorAdvisor::pool_capacity_pages(const os::Kernel& kernel,
                                           os::TaskId task) const {
  const os::Task& t = kernel.task(task);
  if (!t.using_bank() && !t.using_llc()) return topo_.total_pages();

  // Frames per (bank, LLC) combination on one node.
  const uint64_t per_combo =
      topo_.pages_per_node() /
      (mapping_.banks_per_node() * mapping_.num_llc_colors());
  const uint64_t banks = t.using_bank() ? t.mem_color_list().size()
                                        : mapping_.num_bank_colors();
  const uint64_t llcs = t.using_llc() ? t.llc_color_list().size()
                                      : mapping_.num_llc_colors();
  return banks * llcs * per_combo;
}

bool ColorAdvisor::pool_would_overflow(const os::Kernel& kernel,
                                       os::TaskId task,
                                       uint64_t needed_bytes) const {
  const uint64_t pages =
      (needed_bytes + topo_.page_bytes() - 1) / topo_.page_bytes();
  return pages > pool_capacity_pages(kernel, task);
}

std::vector<TaskAdvice> ColorAdvisor::analyze(
    const os::Kernel& kernel, double fallback_tolerance) const {
  // Collect machine-wide claims so suggestions stay disjoint.
  std::vector<unsigned> bank_claims(mapping_.num_bank_colors(), 0);
  // Per node: which tasks use which LLC colors.
  std::vector<std::vector<unsigned>> node_llc_claims(
      topo_.num_nodes(), std::vector<unsigned>(mapping_.num_llc_colors(), 0));
  for (os::TaskId id = 0; id < kernel.num_tasks(); ++id) {
    const os::Task& t = kernel.task(id);
    for (const uint16_t c : t.mem_color_list()) ++bank_claims[c];
    for (const uint8_t c : t.llc_color_list())
      ++node_llc_claims[t.local_node()][c];
  }

  // RAS-retired banks: never suggest them, and tell tasks still holding
  // them to swap in healthy replacements.
  std::vector<uint8_t> retired(mapping_.num_bank_colors(), 0);
  for (const unsigned c : kernel.retired_colors()) retired[c] = 1;

  std::vector<TaskAdvice> out;
  for (os::TaskId id = 0; id < kernel.num_tasks(); ++id) {
    const os::Task& t = kernel.task(id);
    const os::TaskAllocStats& as = t.alloc_stats();
    TaskAdvice advice;
    advice.task = id;

    // Retired colors outrank fallback pressure: a retired bank serves no
    // new frames, so the task's pool has silently shrunk even if its
    // fallback fraction still looks healthy.
    if (t.using_bank()) {
      for (const uint16_t c : t.mem_color_list())
        if (retired[c])
          advice.removals.mem_colors.push_back(c);
      if (!advice.removals.mem_colors.empty()) {
        for (unsigned b = 0; b < mapping_.banks_per_node() &&
                             advice.additions.mem_colors.size() <
                                 advice.removals.mem_colors.size();
             ++b) {
          const unsigned color = mapping_.make_bank_color(t.local_node(), b);
          if (!retired[color] && bank_claims[color] == 0 &&
              !t.has_mem_color(color))
            advice.additions.mem_colors.push_back(
                static_cast<uint16_t>(color));
        }
        advice.kind = TaskAdvice::Kind::kReplaceRetired;
        advice.reason =
            std::to_string(advice.removals.mem_colors.size()) +
            " bank color(s) retired by RAS" +
            (advice.additions.mem_colors.empty()
                 ? "; no unclaimed local replacement -- dropping only"
                 : "; replacing with unclaimed local banks");
        out.push_back(std::move(advice));
        continue;
      }
    }

    const double fb =
        as.page_faults ? static_cast<double>(as.fallback_pages) /
                             static_cast<double>(as.page_faults)
                       : 0.0;
    if (fb <= fallback_tolerance || (!t.using_bank() && !t.using_llc())) {
      advice.reason = "no fallback pressure";
      out.push_back(std::move(advice));
      continue;
    }

    // Prefer widening with unclaimed banks on the task's own node.
    if (t.using_bank()) {
      for (unsigned b = 0; b < mapping_.banks_per_node(); ++b) {
        const unsigned color = mapping_.make_bank_color(t.local_node(), b);
        if (bank_claims[color] == 0 && !retired[color] &&
            !t.has_mem_color(color))
          advice.additions.mem_colors.push_back(
              static_cast<uint16_t>(color));
      }
      if (!advice.additions.mem_colors.empty()) {
        advice.kind = TaskAdvice::Kind::kWidenBanks;
        advice.reason =
            "fallback fraction " + fmt_frac(fb) +
            ": unclaimed local banks available";
        out.push_back(std::move(advice));
        continue;
      }
    }

    // Node fully claimed: suggest sharing LLC colors with node siblings
    // (the MEM+LLC(part) escape hatch).
    if (t.using_llc()) {
      const auto& claims = node_llc_claims[t.local_node()];
      for (unsigned c = 0; c < mapping_.num_llc_colors(); ++c)
        if (claims[c] > 0 && !t.has_llc_color(c))
          advice.additions.llc_colors.push_back(static_cast<uint8_t>(c));
      if (!advice.additions.llc_colors.empty()) {
        advice.kind = TaskAdvice::Kind::kShareLlc;
        advice.reason = "fallback fraction " + fmt_frac(fb) +
                        ": node banks exhausted, share LLC colors "
                        "group-wise";
        out.push_back(std::move(advice));
        continue;
      }
    }

    advice.reason = "fallback pressure but no colors left to suggest";
    out.push_back(std::move(advice));
  }
  return out;
}

TaskAdvice ColorAdvisor::plan_recolor(const os::Kernel& kernel,
                                      os::TaskId task, unsigned hot_color,
                                      const std::vector<uint8_t>& avoid,
                                      ColorDim dim) const {
  TaskAdvice advice;
  advice.task = task;
  const os::Task& t = kernel.task(task);

  if (dim == ColorDim::kLlc) {
    if (!t.has_llc_color(hot_color)) {
      advice.reason = "task no longer holds the hot LLC color";
      return advice;
    }
    // The LLC palette is machine-global: one claims scan, lowest
    // unclaimed color wins. No retirement axis (RAS retires banks, not
    // cache slices) and no node preference (every node sees the LLC).
    std::vector<unsigned> llc_claims(mapping_.num_llc_colors(), 0);
    for (os::TaskId id = 0; id < kernel.num_tasks(); ++id)
      for (const uint8_t c : kernel.task(id).llc_color_list())
        ++llc_claims[c];
    for (unsigned c = 0; c < mapping_.num_llc_colors(); ++c) {
      if (llc_claims[c] != 0) continue;
      if (c < avoid.size() && avoid[c]) continue;
      if (t.has_llc_color(c)) continue;
      advice.kind = TaskAdvice::Kind::kRecolorHot;
      advice.removals.llc_colors.push_back(static_cast<uint8_t>(hot_color));
      advice.additions.llc_colors.push_back(static_cast<uint8_t>(c));
      advice.reason = "llc color " + std::to_string(hot_color) +
                      " interference-hot; replacing with unclaimed color " +
                      std::to_string(c);
      return advice;
    }
    advice.reason = "no unclaimed LLC color left to swap in";
    return advice;
  }

  if (!t.has_mem_color(hot_color)) {
    advice.reason = "task no longer holds the hot color";
    return advice;
  }

  // Machine-wide claims so the replacement stays disjoint from every
  // other tenant -- handing a second tenant's color out would just move
  // the collision.
  std::vector<unsigned> bank_claims(mapping_.num_bank_colors(), 0);
  for (os::TaskId id = 0; id < kernel.num_tasks(); ++id)
    for (const uint16_t c : kernel.task(id).mem_color_list())
      ++bank_claims[c];
  std::vector<uint8_t> retired(mapping_.num_bank_colors(), 0);
  for (const unsigned c : kernel.retired_colors()) retired[c] = 1;

  const auto usable = [&](unsigned color) {
    if (bank_claims[color] != 0 || retired[color]) return false;
    if (color < avoid.size() && avoid[color]) return false;
    if (!kernel.node_online(mapping_.node_of_bank_color(color))) return false;
    return !t.has_mem_color(color);
  };
  // Node preference order: the hot color's node (migration traffic stays
  // on one controller), the task's own node, then the rest.
  std::vector<unsigned> nodes;
  const auto add_node = [&](unsigned n) {
    if (std::find(nodes.begin(), nodes.end(), n) == nodes.end())
      nodes.push_back(n);
  };
  add_node(mapping_.node_of_bank_color(hot_color));
  add_node(t.local_node());
  for (unsigned n = 0; n < topo_.num_nodes(); ++n) add_node(n);

  for (const unsigned node : nodes) {
    if (!kernel.node_online(node)) continue;
    for (unsigned b = 0; b < mapping_.banks_per_node(); ++b) {
      const unsigned color = mapping_.make_bank_color(node, b);
      if (!usable(color)) continue;
      advice.kind = TaskAdvice::Kind::kRecolorHot;
      advice.removals.mem_colors.push_back(static_cast<uint16_t>(hot_color));
      advice.additions.mem_colors.push_back(static_cast<uint16_t>(color));
      advice.reason = "bank color " + std::to_string(hot_color) +
                      " contention-hot; replacing with unclaimed color " +
                      std::to_string(color);
      return advice;
    }
  }
  advice.reason = "no unclaimed healthy bank color left to swap in";
  return advice;
}

TaskAdvice ColorAdvisor::plan_shrink(const os::Kernel& kernel, os::TaskId task,
                                     unsigned drop_count, unsigned floor,
                                     const std::vector<double>& heat) const {
  TaskAdvice advice;
  advice.task = task;
  const os::Task& t = kernel.task(task);
  const std::vector<uint16_t> held = t.mem_color_list();
  if (floor == 0) floor = 1;  // a colored tenant never shrinks to nothing
  if (held.size() <= floor) {
    advice.reason = "task already at its color floor";
    return advice;
  }
  const unsigned drop = std::min<unsigned>(
      drop_count, static_cast<unsigned>(held.size()) - floor);
  if (drop == 0) {
    advice.reason = "nothing to drop";
    return advice;
  }

  // Coldest colors go first; among equally cold colors the one with the
  // fewest resident pages costs the least migration work.
  struct Scored {
    uint16_t color;
    double heat;
    size_t resident;
  };
  std::vector<Scored> scored;
  scored.reserve(held.size());
  for (const uint16_t c : held)
    scored.push_back({c, c < heat.size() ? heat[c] : 0.0,
                      kernel.pages_of_task_color(task, c).size()});
  std::sort(scored.begin(), scored.end(), [](const Scored& a, const Scored& b) {
    if (a.heat != b.heat) return a.heat < b.heat;
    if (a.resident != b.resident) return a.resident < b.resident;
    return a.color < b.color;
  });
  advice.kind = TaskAdvice::Kind::kShrink;
  for (unsigned i = 0; i < drop; ++i)
    advice.removals.mem_colors.push_back(scored[i].color);
  advice.reason = "releasing " + std::to_string(drop) +
                  " coldest bank color(s); " +
                  std::to_string(held.size() - drop) + " survive";
  return advice;
}

unsigned ColorAdvisor::apply(os::Kernel& kernel,
                             const TaskAdvice& advice) const {
  if (advice.kind == TaskAdvice::Kind::kOk) return 0;
  unsigned calls = 0;
  for (const uint16_t c : advice.removals.mem_colors) {
    const os::VirtAddr r = kernel.mmap(
        advice.task, c | os::CLEAR_MEM_COLOR, 0, os::PROT_COLOR_ALLOC);
    TINT_ASSERT_MSG(r != os::kMmapFailed, "CLEAR_MEM_COLOR rejected");
    ++calls;
  }
  for (const uint8_t c : advice.removals.llc_colors) {
    const os::VirtAddr r = kernel.mmap(
        advice.task, c | os::CLEAR_LLC_COLOR, 0, os::PROT_COLOR_ALLOC);
    TINT_ASSERT_MSG(r != os::kMmapFailed, "CLEAR_LLC_COLOR rejected");
    ++calls;
  }
  return calls + apply_thread_colors(kernel, advice.task, advice.additions);
}

}  // namespace tint::core

#include "core/session.h"

#include "util/assert.h"

namespace tint::core {

MachineConfig MachineConfig::opteron6128() {
  MachineConfig c;
  c.topo = hw::Topology::opteron6128();
  return c;
}

MachineConfig MachineConfig::tiny() {
  MachineConfig c;
  c.topo = hw::Topology::tiny();
  c.kernel.warmup_episodes = 64;
  return c;
}

Session::Session(const MachineConfig& cfg)
    : cfg_(cfg), pci_(hw::PciConfig::program_bios(cfg.topo)) {
  mapping_ = std::make_unique<hw::AddressMapping>(pci_, cfg_.topo);
  memsys_ = std::make_unique<sim::MemorySystem>(cfg_.topo, *mapping_,
                                                cfg_.timing);
  kernel_ = std::make_unique<os::Kernel>(cfg_.topo, *mapping_, cfg_.kernel,
                                         cfg_.seed);
  planner_ = std::make_unique<ColorPlanner>(*mapping_, cfg_.topo);
}

os::TaskId Session::create_task(unsigned pinned_core) {
  const os::TaskId id = kernel_->create_task(pinned_core);
  TINT_ASSERT(id == heaps_.size());
  heaps_.push_back(std::make_unique<TintHeap>(*kernel_, id, cfg_.heap));
  return id;
}

void Session::apply_colors(os::TaskId task, const ThreadColorPlan& plan) {
  apply_thread_colors(*kernel_, task, plan);
}

ColorPlan Session::apply_policy(Policy policy,
                                std::span<const os::TaskId> tasks) {
  std::vector<unsigned> cores;
  cores.reserve(tasks.size());
  for (const os::TaskId t : tasks) cores.push_back(kernel_->task(t).core());
  ColorPlan plan = planner_->plan(policy, cores);
  for (size_t i = 0; i < tasks.size(); ++i)
    apply_colors(tasks[i], plan.threads[i]);
  return plan;
}

TintHeap& Session::heap(os::TaskId task) {
  TINT_ASSERT(task < heaps_.size());
  return *heaps_[task];
}

hw::Cycles Session::touch_and_access(os::TaskId task, os::VirtAddr va,
                                     bool write, hw::Cycles now) {
  const os::Kernel::TouchResult tr = kernel_->touch(task, va, write);
  // Experiment workloads size themselves to fit memory; a fault the
  // kernel's degradation ladder cannot serve here is a harness bug, and
  // timing a pa=0 access would silently corrupt the measurement.
  TINT_ASSERT_MSG(tr.error == os::AllocError::kOk,
                  "unserviceable fault during a timed access");
  const unsigned core = kernel_->task(task).core();
  // The fault overhead is charged to the thread's clock but the timed
  // access is issued at `now`: shifting the access into the future would
  // let one thread's fault reserve memory-system resources ahead of
  // other threads' *earlier* accesses (the event engine processes ops in
  // start-time order, so reservations must stay near `now` for
  // causality).
  const hw::Cycles lat = memsys_->access(core, tr.pa, write, now);
  return tr.fault_cycles + lat;
}

}  // namespace tint::core

// Session: the one-stop facade tying the simulated machine together.
//
// A Session owns the topology, the boot-derived address mapping, the
// timing model (MemorySystem), the kernel, and one TintHeap per task.
// Examples and the experiment driver talk to a Session; tests may also
// use the lower layers directly.
//
// Typical use (this is the whole public API an application needs):
//
//   auto session = tint::core::Session(tint::core::MachineConfig::opteron6128());
//   auto task = session.create_task(/*core=*/0);
//   session.apply_colors(task, plan.threads[0]);      // the 1-line opt-in
//   auto ptr = session.heap(task).malloc(1 << 20);    // colored pages
//   session.touch_and_access(task, ptr, /*write=*/true, now);
#pragma once

#include <memory>
#include <vector>

#include "core/color_planner.h"
#include "core/tintmalloc.h"
#include "hw/address_mapping.h"
#include "hw/pci_config.h"
#include "hw/topology.h"
#include "os/kernel.h"
#include "sim/memory_system.h"

namespace tint::core {

struct MachineConfig {
  hw::Topology topo;
  hw::Timing timing;
  os::KernelConfig kernel;
  HeapConfig heap;
  uint64_t seed = 42;

  // The paper's evaluation platform.
  static MachineConfig opteron6128();
  // Small machine for fast tests.
  static MachineConfig tiny();
};

class Session {
 public:
  explicit Session(const MachineConfig& cfg);

  // --- construction of the experiment population ---
  os::TaskId create_task(unsigned pinned_core);
  // Issues the color-control mmap calls for one task.
  void apply_colors(os::TaskId task, const ThreadColorPlan& plan);
  // Plans and applies a policy across tasks (tasks[i] pinned to cores[i]).
  ColorPlan apply_policy(Policy policy, std::span<const os::TaskId> tasks);

  // --- access path ---
  // Touches `va` (faulting if needed) and performs the timed memory
  // access. Returns total cycles (fault overhead + hierarchy latency).
  hw::Cycles touch_and_access(os::TaskId task, os::VirtAddr va, bool write,
                              hw::Cycles now);

  // --- components ---
  const hw::Topology& topology() const { return cfg_.topo; }
  const hw::AddressMapping& mapping() const { return *mapping_; }
  os::Kernel& kernel() { return *kernel_; }
  const os::Kernel& kernel() const { return *kernel_; }
  sim::MemorySystem& memsys() { return *memsys_; }
  const sim::MemorySystem& memsys() const { return *memsys_; }
  TintHeap& heap(os::TaskId task);
  const ColorPlanner& planner() const { return *planner_; }
  const MachineConfig& config() const { return cfg_; }

 private:
  MachineConfig cfg_;
  hw::PciConfig pci_;
  std::unique_ptr<hw::AddressMapping> mapping_;
  std::unique_ptr<sim::MemorySystem> memsys_;
  std::unique_ptr<os::Kernel> kernel_;
  std::unique_ptr<ColorPlanner> planner_;
  std::vector<std::unique_ptr<TintHeap>> heaps_;  // indexed by TaskId
};

}  // namespace tint::core

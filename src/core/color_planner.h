// Computes per-thread color assignments for every policy of Section V.B.
//
// Given the threads' core pinnings and the machine geometry, the planner
// divides the 128 bank colors and 32 LLC colors exactly like the paper:
//
//   * LLC / MEM / MEM+LLC: colors are *private* -- the resource is split
//     evenly among the competing threads (e.g. 16 threads -> 2 private
//     LLC colors each; 8 threads -> 4 each).
//   * MEM+LLC(part): banks private; the LLC is split per *thread group*
//     (one group per memory node) and shared within the group
//     (16 threads / 4 nodes -> 4 groups x 8 LLC colors).
//   * LLC+MEM(part): LLC private; each thread may use *all* banks of its
//     local node (the group shares the node's banks).
//   * Bank colors always come from the thread's local node -- this is the
//     controller awareness that distinguishes TintMalloc.
//   * BPM (prior work): banks and LLC are partitioned but bank selection
//     ignores controller locality: thread i takes every T-th color of the
//     global (node-major) bank list, so most of its banks are remote.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/policy.h"
#include "hw/address_mapping.h"

namespace tint::core {

// Colors for one thread. Empty vectors mean "uncolored" on that axis.
struct ThreadColorPlan {
  std::vector<uint16_t> mem_colors;
  std::vector<uint8_t> llc_colors;
};

struct ColorPlan {
  Policy policy = Policy::kBuddy;
  std::vector<ThreadColorPlan> threads;
};

class ColorPlanner {
 public:
  ColorPlanner(const hw::AddressMapping& mapping, const hw::Topology& topo);

  // `cores[i]` is the core thread i is pinned to.
  ColorPlan plan(Policy policy, std::span<const unsigned> cores) const;

 private:
  // Balanced disjoint split of [0, total) among `count` claimants;
  // returns the half-open range of claimant `index`.
  static std::pair<unsigned, unsigned> split(unsigned total, unsigned count,
                                             unsigned index);

  void assign_private_llc(ColorPlan& plan) const;
  void assign_grouped_llc(ColorPlan& plan,
                          std::span<const unsigned> cores) const;
  void assign_private_banks(ColorPlan& plan,
                            std::span<const unsigned> cores) const;
  void assign_grouped_banks(ColorPlan& plan,
                            std::span<const unsigned> cores) const;
  void assign_bpm_banks(ColorPlan& plan) const;

  const hw::AddressMapping& mapping_;
  hw::Topology topo_;
};

}  // namespace tint::core

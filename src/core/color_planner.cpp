#include "core/color_planner.h"

#include <algorithm>
#include <map>

#include "util/assert.h"
#include "util/rng.h"

namespace tint::core {

ColorPlanner::ColorPlanner(const hw::AddressMapping& mapping,
                           const hw::Topology& topo)
    : mapping_(mapping), topo_(topo) {}

std::pair<unsigned, unsigned> ColorPlanner::split(unsigned total,
                                                  unsigned count,
                                                  unsigned index) {
  TINT_ASSERT_MSG(count > 0 && count <= total,
                  "more claimants than colors: cannot assign private colors");
  const unsigned lo = static_cast<unsigned>(
      (static_cast<uint64_t>(index) * total) / count);
  const unsigned hi = static_cast<unsigned>(
      (static_cast<uint64_t>(index + 1) * total) / count);
  return {lo, hi};
}

void ColorPlanner::assign_private_llc(ColorPlan& plan) const {
  const unsigned t = static_cast<unsigned>(plan.threads.size());
  const unsigned nl = mapping_.num_llc_colors();
  for (unsigned i = 0; i < t; ++i) {
    const auto [lo, hi] = split(nl, t, i);
    for (unsigned c = lo; c < hi; ++c)
      plan.threads[i].llc_colors.push_back(static_cast<uint8_t>(c));
  }
}

void ColorPlanner::assign_grouped_llc(ColorPlan& plan,
                                      std::span<const unsigned> cores) const {
  // One group per distinct memory node in use (Section V.B: 16 threads ->
  // 4 groups of 4, each group owning 8 LLC colors shared by its members).
  std::map<unsigned, unsigned> group_of_node;  // node -> dense group index
  for (unsigned core : cores) {
    const unsigned n = topo_.node_of_core(core);
    group_of_node.emplace(n, static_cast<unsigned>(group_of_node.size()));
  }
  const unsigned groups = static_cast<unsigned>(group_of_node.size());
  const unsigned nl = mapping_.num_llc_colors();
  for (size_t i = 0; i < cores.size(); ++i) {
    const unsigned g = group_of_node.at(topo_.node_of_core(cores[i]));
    const auto [lo, hi] = split(nl, groups, g);
    for (unsigned c = lo; c < hi; ++c)
      plan.threads[i].llc_colors.push_back(static_cast<uint8_t>(c));
  }
}

void ColorPlanner::assign_private_banks(ColorPlan& plan,
                                        std::span<const unsigned> cores) const {
  // Controller-aware: each thread's banks come from its local node; the
  // node's banks are split evenly among the threads pinned there.
  const unsigned bpn = mapping_.banks_per_node();
  std::map<unsigned, std::vector<size_t>> node_threads;
  for (size_t i = 0; i < cores.size(); ++i)
    node_threads[topo_.node_of_core(cores[i])].push_back(i);
  for (const auto& [node, threads] : node_threads) {
    const unsigned m = static_cast<unsigned>(threads.size());
    for (unsigned j = 0; j < m; ++j) {
      const auto [lo, hi] = split(bpn, m, j);
      for (unsigned b = lo; b < hi; ++b)
        plan.threads[threads[j]].mem_colors.push_back(
            static_cast<uint16_t>(mapping_.make_bank_color(node, b)));
    }
  }
}

void ColorPlanner::assign_grouped_banks(ColorPlan& plan,
                                        std::span<const unsigned> cores) const {
  // LLC+MEM(part): threads on one node share *all* of that node's banks.
  const unsigned bpn = mapping_.banks_per_node();
  for (size_t i = 0; i < cores.size(); ++i) {
    const unsigned node = topo_.node_of_core(cores[i]);
    for (unsigned b = 0; b < bpn; ++b)
      plan.threads[i].mem_colors.push_back(
          static_cast<uint16_t>(mapping_.make_bank_color(node, b)));
  }
}

void ColorPlanner::assign_bpm_banks(ColorPlan& plan) const {
  // Prior work (BPM, Liu et al.): disjoint banks per thread chosen from
  // the global bank list without regard to the memory controller, so
  // most of a thread's banks land on remote nodes. The partition uses a
  // fixed pseudo-random permutation rather than a stride: a stride-T
  // pick through the node-major Eq. 1 enumeration would give every
  // thread banks with *identical* low bank bits, and since those bits
  // are also LLC set-index bits the thread would be confined to a sliver
  // of its LLC colors -- an aliasing artifact, not a property of BPM.
  const unsigned t = static_cast<unsigned>(plan.threads.size());
  const unsigned nb = mapping_.num_bank_colors();
  TINT_ASSERT_MSG(t <= nb, "more threads than banks");
  std::vector<uint16_t> perm(nb);
  for (unsigned c = 0; c < nb; ++c) perm[c] = static_cast<uint16_t>(c);
  for (unsigned i = nb; i > 1; --i) {
    const unsigned j = static_cast<unsigned>(mix64(0xb93ULL + i) % i);
    std::swap(perm[i - 1], perm[j]);
  }
  for (unsigned i = 0; i < t; ++i) {
    const auto [lo, hi] = split(nb, t, i);
    for (unsigned k = lo; k < hi; ++k)
      plan.threads[i].mem_colors.push_back(perm[k]);
    std::sort(plan.threads[i].mem_colors.begin(),
              plan.threads[i].mem_colors.end());
  }
}

ColorPlan ColorPlanner::plan(Policy policy,
                             std::span<const unsigned> cores) const {
  TINT_ASSERT(!cores.empty());
  for (unsigned c : cores) TINT_ASSERT(c < topo_.num_cores());
  ColorPlan p;
  p.policy = policy;
  p.threads.resize(cores.size());
  switch (policy) {
    case Policy::kBuddy:
      break;
    case Policy::kBpm:
      assign_bpm_banks(p);
      assign_private_llc(p);
      break;
    case Policy::kLlc:
      assign_private_llc(p);
      break;
    case Policy::kMem:
      assign_private_banks(p, cores);
      break;
    case Policy::kMemLlc:
      assign_private_banks(p, cores);
      assign_private_llc(p);
      break;
    case Policy::kMemLlcPart:
      assign_private_banks(p, cores);
      assign_grouped_llc(p, cores);
      break;
    case Policy::kLlcMemPart:
      assign_grouped_banks(p, cores);
      assign_private_llc(p);
      break;
  }
  return p;
}

}  // namespace tint::core

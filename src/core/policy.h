// Coloring policies evaluated in the paper (Section V.B).
#pragma once

#include <optional>
#include <span>
#include <string_view>

namespace tint::core {

enum class Policy {
  kBuddy,       // standard Linux buddy allocation (no coloring)
  kBpm,         // prior work: bank+LLC partitioning, controller-oblivious
  kLlc,         // "LLC coloring": private LLC colors, uncolored memory
  kMem,         // "Memory coloring (MEM)": private banks, uncolored LLC
  kMemLlc,      // "MEM+LLC": private banks and private LLC colors
  kMemLlcPart,  // "MEM+LLC (part)": private banks, LLC shared per group
  kLlcMemPart,  // "LLC+MEM (part)": private LLC, banks shared per group
};

// All policies in the paper's comparison order.
std::span<const Policy> all_policies();
// The TintMalloc coloring modes (excludes buddy and BPM baselines).
std::span<const Policy> tint_policies();

std::string_view to_string(Policy p);
std::optional<Policy> parse_policy(std::string_view name);

}  // namespace tint::core

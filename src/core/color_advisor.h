// ColorAdvisor: capacity planning and live diagnosis for color sets.
//
// The paper's one sharp edge is over-constrained colorings: a task whose
// heap outgrows its colored pool starts taking fallback pages (uncolored,
// often remote -- the freqmine anomaly of Section V.B). The advisor
// makes that failure mode visible and actionable:
//
//   * `pool_capacity_pages()` -- how many frames a task's current color
//     set can ever supply (geometry-based, the planning-time check),
//   * `analyze()` -- post-run diagnosis from the TCB allocation stats:
//     which tasks fell back, and which *free* colors on their node could
//     be added to widen the pool (falling back to group-shared colors
//     when the node is fully claimed -- the "(part)" escape hatch),
//   * `apply()` -- issues the corresponding SET_* mmap calls.
#pragma once

#include <string>
#include <vector>

#include "core/color_planner.h"
#include "os/kernel.h"

namespace tint::core {

// Which color axis a live re-coloring plan operates on.
enum class ColorDim : uint8_t {
  kBank = 0,  // per-node bank colors (Eq. 1)
  kLlc,       // machine-global LLC colors
};

struct TaskAdvice {
  enum class Kind {
    kOk,              // no action needed
    kWidenBanks,      // add the suggested bank colors (free on local node)
    kShareLlc,        // add LLC colors already used by same-node tasks
    kReplaceRetired,  // drop RAS-retired bank colors, add healthy ones
    kRecolorHot,      // swap a contention-hot color for a quiet one
    kShrink,          // release the coldest colors (elastic shrink)
  };

  os::TaskId task = os::kNoTask;
  Kind kind = Kind::kOk;
  std::string reason;
  // Colors to add (empty for kOk).
  ThreadColorPlan additions;
  // Colors to drop first (kReplaceRetired only): banks the kernel's RAS
  // layer retired after repeated poisoning. alloc_colored() already skips
  // them, so they only shrink the task's pool -- clearing them makes the
  // plan honest and lets capacity checks see the real geometry.
  ThreadColorPlan removals;
};

class ColorAdvisor {
 public:
  ColorAdvisor(const hw::AddressMapping& mapping, const hw::Topology& topo);

  // Maximum number of frames the task's current color set can supply
  // (per-combo capacity times the number of combos; uncolored axes count
  // as "all colors"). Returns the machine page count for uncolored tasks.
  uint64_t pool_capacity_pages(const os::Kernel& kernel,
                               os::TaskId task) const;

  // True when `needed_bytes` of heap cannot fit the task's pool -- call
  // before running to catch freqmine-style overconstraint.
  bool pool_would_overflow(const os::Kernel& kernel, os::TaskId task,
                           uint64_t needed_bytes) const;

  // Diagnoses every task from its allocation statistics. `fallback_tolerance`
  // is the fraction of faults allowed to fall back before advice fires.
  std::vector<TaskAdvice> analyze(const os::Kernel& kernel,
                                  double fallback_tolerance = 0.02) const;

  // Applies one piece of advice through the mmap color protocol
  // (CLEAR_* for removals first, then SET_* for additions). Returns the
  // number of color-control calls issued.
  unsigned apply(os::Kernel& kernel, const TaskAdvice& advice) const;

  // Live re-coloring advice for the ColorGuard: pick a replacement for
  // `hot_color` in `task`'s bank set -- unclaimed by any task, not
  // RAS-retired, on an online node, and not itself flagged in `avoid`
  // (one entry per bank color; the guard passes its hot set so a heal
  // never lands on another hot bank). The search prefers the hot
  // color's own node (the migration stays controller-local), then the
  // task's node, then any online node. Returns kRecolorHot advice with
  // removals = {hot_color} and one addition, or kOk when no healthy
  // replacement exists (the guard then backs off rather than churn).
  // Unlike the rest of the advisor, this is *not* applied through the
  // mmap protocol: the guard feeds it to Kernel::recolor_task so the
  // swap publishes atomically.
  //
  // `dim` selects the color axis. For kLlc the palette is machine-global
  // (no node preference, no RAS retirement): the replacement is the
  // lowest LLC color unclaimed by any task and not flagged in `avoid`
  // (one entry per LLC color -- the guard passes its LLC hot set).
  TaskAdvice plan_recolor(const os::Kernel& kernel, os::TaskId task,
                          unsigned hot_color,
                          const std::vector<uint8_t>& avoid,
                          ColorDim dim = ColorDim::kBank) const;

  // Elastic shrink advice: pick up to `drop_count` of `task`'s bank
  // colors to release, coldest first -- `heat` holds one contention
  // weight per bank color (the guard passes its EWMAs); ties break on
  // fewest resident pages (the smallest migration bill), then the lower
  // color id. Never plans below `floor` surviving colors. Returns
  // kShrink advice with removals only (the survivors absorb the
  // migrated pages), or kOk when the task is already at or under the
  // floor. Like plan_recolor this is applied via Kernel::recolor_task,
  // not the mmap protocol.
  TaskAdvice plan_shrink(const os::Kernel& kernel, os::TaskId task,
                         unsigned drop_count, unsigned floor,
                         const std::vector<double>& heat) const;

 private:
  const hw::AddressMapping& mapping_;
  hw::Topology topo_;
};

}  // namespace tint::core

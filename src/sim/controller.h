// Memory controller model (Section II.B).
//
// One controller governs the banks and channels of a memory node. Its
// queueing behaviour is modeled with per-bank and per-channel
// availability times: a request must wait until its bank has finished
// the previous command and the channel is free for the data burst.
// When multiple cores hammer the same controller/channel/bank, requests
// serialize and the measured latency grows -- the contention the paper
// sets out to remove.
#pragma once

#include <algorithm>
#include <cstdint>

#include "hw/address_mapping.h"
#include "sim/dram.h"

namespace tint::sim {

class MemoryController {
 public:
  MemoryController(unsigned node_id, unsigned channels, unsigned ranks,
                   unsigned banks, const hw::Timing& timing);

  // Services a read or write that arrives at the controller at `arrival`
  // (interconnect latency already applied). Returns the time the data
  // burst completes on the channel.
  Cycles service(Cycles arrival, const hw::DramCoord& coord, bool write);

  // Queues a cache writeback: occupies bank + channel like a regular
  // write, but the caller does not wait for it.
  void enqueue_writeback(Cycles arrival, const hw::DramCoord& coord);

  unsigned node_id() const { return node_id_; }
  const DramStats& stats() const { return stats_; }
  void reset_stats() {
    stats_ = DramStats{};
    std::fill(bank_accesses_.begin(), bank_accesses_.end(), 0);
    std::fill(bank_conflicts_.begin(), bank_conflicts_.end(), 0);
  }

  // --- per-bank contention export (the ColorGuard's sampling source) ---
  // Counters are indexed by the *local bank index*
  // (channel * ranks + rank) * banks + bank, which is exactly the local
  // component of the paper's Eq. 1 dense bank color: local index i on
  // this controller is bank color make_bank_color(node_id, i). Cumulative
  // since the last reset_stats(); samplers diff successive readings.
  unsigned num_local_banks() const {
    return static_cast<unsigned>(bank_accesses_.size());
  }
  uint64_t bank_accesses(unsigned local_bank) const {
    return bank_accesses_[local_bank];
  }
  uint64_t bank_conflicts(unsigned local_bank) const {
    return bank_conflicts_[local_bank];
  }

 private:
  struct Channel {
    Cycles busy_until = 0;
  };

  unsigned node_id_;
  hw::Timing timing_;
  unsigned ranks_, banks_per_rank_;
  BankArray banks_;
  std::vector<Channel> channels_;
  DramStats stats_;
  std::vector<uint64_t> bank_accesses_;
  std::vector<uint64_t> bank_conflicts_;
};

}  // namespace tint::sim

// Set-associative cache model (used for private L1/L2 and the shared LLC).
//
// Physically indexed, physically tagged, true-LRU replacement, write-back
// + write-allocate. The model tracks tags only (no data); the simulator's
// workloads are address streams.
//
// The shared LLC instance additionally attributes hits/misses/evictions
// to the requesting core so the experiment driver can observe inter-task
// interference ("one task's reference may replace data in LLC of another
// task's prior references", Section II.A).
#pragma once

#include <cstdint>
#include <vector>

#include "hw/topology.h"

namespace tint::sim {

using hw::Cycles;
using hw::PhysAddr;

struct CacheStats {
  uint64_t accesses = 0;
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t dirty_evictions = 0;
  // Evictions where the victim line was inserted by a *different*
  // requester than the evictor (LLC interference metric).
  uint64_t cross_requester_evictions = 0;

  double hit_rate() const {
    return accesses ? static_cast<double>(hits) / static_cast<double>(accesses)
                    : 0.0;
  }
};

// Result of one cache lookup-with-fill.
struct CacheAccessResult {
  bool hit = false;
  bool evicted = false;
  bool evicted_dirty = false;
  PhysAddr evicted_line = 0;  // line-aligned address of the victim
};

class Cache {
 public:
  // `sets` must be a power of two. `requesters` > 1 enables per-requester
  // attribution (used by the shared LLC).
  Cache(unsigned sets, unsigned ways, unsigned line_bytes,
        unsigned requesters = 1);

  // Looks up `addr`; on miss, fills the line (evicting LRU). `write`
  // marks the line dirty. `requester` attributes the access.
  CacheAccessResult access(PhysAddr addr, bool write, unsigned requester = 0);

  // Inserts a line without counting an access (victim traffic from an
  // upper cache level). If the line is already present it is merely
  // marked dirty. Returns the eviction outcome so callers can cascade
  // victims further down the hierarchy.
  CacheAccessResult install(PhysAddr addr, bool dirty, unsigned requester = 0);

  // Lookup without fill or LRU update (for tests/inspection).
  bool contains(PhysAddr addr) const;

  // Removes a line if present (back-invalidation); returns whether the
  // line was present and dirty.
  bool invalidate(PhysAddr addr);

  // Drops all lines and (optionally) statistics.
  void clear(bool clear_stats = true);

  const CacheStats& stats() const { return stats_; }
  const CacheStats& requester_stats(unsigned r) const {
    return per_requester_.at(r);
  }
  // --- per-set interference export (shared-LLC instances only) ---
  // Cross-requester evictions attributed to the victim's set, kept only
  // when `requesters` > 1 so private L1/L2 levels pay nothing. The
  // ColorGuard folds sets onto LLC page colors (every set of one color
  // shares the page-bit slice AddressMapping::llc_color extracts).
  bool has_set_attribution() const { return !set_cross_evictions_.empty(); }
  uint64_t set_cross_evictions(unsigned set) const {
    return set_cross_evictions_[set];
  }
  unsigned sets() const { return sets_; }
  unsigned ways() const { return ways_; }
  unsigned line_bytes() const { return line_bytes_; }
  unsigned set_of(PhysAddr addr) const {
    return static_cast<unsigned>((addr / line_bytes_) & (sets_ - 1));
  }

 private:
  struct Line {
    uint64_t tag = 0;
    uint64_t lru = 0;       // global stamp; larger = more recent
    uint32_t owner = 0;     // requester that inserted the line
    bool valid = false;
    bool dirty = false;
  };

  uint64_t tag_of(PhysAddr addr) const { return addr / line_bytes_ / sets_; }
  PhysAddr line_base(uint64_t tag, unsigned set) const {
    return (tag * sets_ + set) * line_bytes_;
  }

  unsigned sets_, ways_, line_bytes_;
  std::vector<Line> lines_;  // sets_ * ways_, row-major by set
  uint64_t stamp_ = 0;
  CacheStats stats_;
  std::vector<CacheStats> per_requester_;
  std::vector<uint64_t> set_cross_evictions_;  // sized sets_ iff requesters > 1
};

}  // namespace tint::sim

// Interconnect model: HyperTransport-style hop latencies + cross-socket
// link contention (Sections I, II, IV).
//
// Distances follow the paper's platform: cores within a memory node are
// 1 hop from their controller, other controllers on the same socket are
// 2 hops (on-chip link), controllers on the other socket are 3 hops
// (off-chip link, "typically narrower, lower bandwidth"). The off-chip
// link is additionally a shared resource: each crossing transfer occupies
// it, so heavy remote traffic queues.
#pragma once

#include <cstdint>
#include <vector>

#include "hw/topology.h"

namespace tint::sim {

using hw::Cycles;

struct InterconnectStats {
  uint64_t local_transfers = 0;      // 1 hop
  uint64_t onchip_transfers = 0;     // 2 hops
  uint64_t offchip_transfers = 0;    // 3 hops
  Cycles link_wait = 0;              // queueing on the off-chip link
};

class Interconnect {
 public:
  Interconnect(const hw::Topology& topo, const hw::Timing& timing);

  // Time at which a request leaving `core` at `now` arrives at the
  // controller of `mem_node` (applies hop latency and, for cross-socket
  // traffic, link occupancy).
  Cycles deliver_request(Cycles now, unsigned core, unsigned mem_node);

  // Time at which the response issued by `mem_node` at `now` arrives back
  // at `core`.
  Cycles deliver_response(Cycles now, unsigned mem_node, unsigned core);

  const InterconnectStats& stats() const { return stats_; }
  void reset_stats() { stats_ = InterconnectStats{}; }

 private:
  Cycles traverse(Cycles now, unsigned src_socket, unsigned dst_socket,
                  unsigned hops);

  hw::Topology topo_;
  hw::Timing timing_;
  // Occupancy of the link between socket pairs (symmetric, one entry per
  // unordered pair; with 2 sockets there is exactly one).
  std::vector<Cycles> link_busy_until_;
  Cycles link_occupancy_;
  InterconnectStats stats_;
};

}  // namespace tint::sim

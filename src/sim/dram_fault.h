// DRAM fault model: which physical regions return corrupted data.
//
// Real DRAM fails along its own geometry -- a weak row, a dead bank, a
// flaky rank behind one controller -- not along OS-visible page ranges.
// The model therefore marks *coordinate* regions (node, channel, rank,
// bank, row range) as flaky or dead, and health queries decode a frame's
// physical address through the same PCI-derived `hw::AddressMapping` the
// coloring kernel uses. An injected bank fault thus lands exactly on the
// frames of one Eq. 1 bank color, which is what lets the RAS subsystem
// retire that color once enough of its frames are poisoned.
//
//   kFlaky  the region still returns data, but unreliably: frames are
//           soft-offlined (migrated away, then poisoned).
//   kDead   reads are lost: frames are hard-offlined (poisoned, mapping
//           dropped, the touch reports kEccUncorrected).
//
// Thread safety: inject/clear/frame_health may be called from any
// thread. Regions live behind a leaf-rank mutex (util/lock_rank.h,
// kDramFault) so health queries are legal while the kernel holds any of
// its allocation locks -- the scrubber evaluates health during the
// stop-the-world walk. The empty() fast path is one atomic load, so an
// attached-but-unused model costs the allocation path nothing.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "hw/address_mapping.h"
#include "util/lock_rank.h"

namespace tint::sim {

enum class FrameHealth : uint8_t {
  kHealthy = 0,
  kFlaky,  // unreliable but readable: migrate the data, then quarantine
  kDead,   // data already lost: quarantine, surface kEccUncorrected
};

constexpr const char* to_string(FrameHealth h) {
  switch (h) {
    case FrameHealth::kHealthy: return "healthy";
    case FrameHealth::kFlaky: return "flaky";
    case FrameHealth::kDead: return "dead";
  }
  return "?";
}

// One faulty region in DRAM coordinates. Negative fields are wildcards,
// so a whole bank ({node, channel, rank, bank}), a rank ({node, channel,
// rank}) or a single weak row ({..., row_lo == row_hi}) are all
// expressible. `row` uses the decode convention of hw::AddressMapping
// (every in-node bit at or above the row base), so a row region selects
// a physically contiguous stripe of frames within one node.
struct DramFaultRegion {
  unsigned node = 0;
  int channel = -1;   // -1 = every channel
  int rank = -1;      // -1 = every rank
  int bank = -1;      // -1 = every bank
  int64_t row_lo = -1;  // -1 = every row; else inclusive range
  int64_t row_hi = -1;
  FrameHealth severity = FrameHealth::kFlaky;

  bool matches(const hw::DramCoord& c) const {
    if (c.node != node) return false;
    if (channel >= 0 && c.channel != static_cast<unsigned>(channel))
      return false;
    if (rank >= 0 && c.rank != static_cast<unsigned>(rank)) return false;
    if (bank >= 0 && c.bank != static_cast<unsigned>(bank)) return false;
    if (row_lo >= 0 && (c.row < static_cast<uint64_t>(row_lo) ||
                        c.row > static_cast<uint64_t>(row_hi)))
      return false;
    return true;
  }
};

struct DramFaultStats {
  std::atomic<uint64_t> probes{0};  // health queries against >=1 region
  std::atomic<uint64_t> hits{0};    // queries that matched a region

  struct Snapshot {
    uint64_t probes = 0;
    uint64_t hits = 0;
  };
  Snapshot snapshot() const {
    return {probes.load(std::memory_order_relaxed),
            hits.load(std::memory_order_relaxed)};
  }
};

class DramFaultModel {
 public:
  explicit DramFaultModel(const hw::AddressMapping& mapping)
      : mapping_(mapping) {}

  // Marks a region faulty. Overlapping regions are legal; the worst
  // matching severity wins (kDead > kFlaky).
  void inject(const DramFaultRegion& region);

  // Convenience: the whole bank holding `frame_base` (so the fault
  // covers exactly one Eq. 1 bank color), or just that frame's row.
  void inject_bank_of(hw::PhysAddr frame_base, FrameHealth severity);
  void inject_row_of(hw::PhysAddr frame_base, FrameHealth severity);

  void clear();

  // Fast path: true while no region is injected (one atomic load).
  bool empty() const {
    return region_count_.load(std::memory_order_acquire) == 0;
  }

  // Health of the frame at `frame_base` (worst matching severity).
  FrameHealth frame_health(hw::PhysAddr frame_base) const;

  size_t num_regions() const {
    return region_count_.load(std::memory_order_acquire);
  }
  const DramFaultStats& stats() const { return stats_; }

 private:
  const hw::AddressMapping& mapping_;
  mutable util::RankedMutex<util::lock_rank::kDramFault> mu_;
  std::vector<DramFaultRegion> regions_;  // guarded by mu_
  std::atomic<size_t> region_count_{0};
  mutable DramFaultStats stats_;
};

}  // namespace tint::sim

// The full memory hierarchy: private L1/L2 per core, shared LLC, one
// memory controller per node, and the interconnect between them.
//
// `access()` is the single entry point the simulated threads use. It
// walks the hierarchy, applies all contention effects, and returns the
// end-to-end latency in CPU cycles. All state mutations happen in global
// time order because the discrete-event engine always advances the
// earliest thread first.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "hw/address_mapping.h"
#include "hw/topology.h"
#include "sim/cache.h"
#include "sim/controller.h"
#include "sim/interconnect.h"

namespace tint::sim {

// Per-core accounting exposed to the experiment driver.
struct CoreStats {
  uint64_t accesses = 0;
  uint64_t l1_hits = 0;
  uint64_t l2_hits = 0;
  uint64_t llc_hits = 0;
  uint64_t dram_accesses = 0;
  uint64_t remote_dram_accesses = 0;  // hops > 1
  Cycles total_latency = 0;

  double avg_latency() const {
    return accesses ? static_cast<double>(total_latency) /
                          static_cast<double>(accesses)
                    : 0.0;
  }
  double dram_remote_fraction() const {
    return dram_accesses ? static_cast<double>(remote_dram_accesses) /
                               static_cast<double>(dram_accesses)
                         : 0.0;
  }
};

class MemorySystem {
 public:
  MemorySystem(const hw::Topology& topo, const hw::AddressMapping& mapping,
               const hw::Timing& timing = hw::Timing{});

  // One memory reference by `core` to physical address `addr` starting at
  // absolute time `now`. Returns the latency in cycles.
  Cycles access(unsigned core, PhysAddr addr, bool write, Cycles now);

  // --- introspection ---
  const CoreStats& core_stats(unsigned core) const { return core_stats_[core]; }
  const Cache& l1(unsigned core) const { return *l1_[core]; }
  const Cache& l2(unsigned core) const { return *l2_[core]; }
  // The LLC serving `core` (socket-local when llc_per_socket).
  const Cache& llc(unsigned core = 0) const {
    return *llc_[topo_.llc_per_socket ? topo_.socket_of_core(core) : 0];
  }
  const MemoryController& controller(unsigned node) const {
    return *controllers_[node];
  }
  const Interconnect& interconnect() const { return interconnect_; }
  const hw::Topology& topology() const { return topo_; }
  const hw::AddressMapping& mapping() const { return mapping_; }

  // Drops all cached state and statistics (fresh machine).
  void reset();

 private:
  hw::Topology topo_;
  const hw::AddressMapping& mapping_;
  hw::Timing timing_;
  std::vector<std::unique_ptr<Cache>> l1_;
  std::vector<std::unique_ptr<Cache>> l2_;
  // One shared LLC, or one per socket (topology.llc_per_socket).
  std::vector<std::unique_ptr<Cache>> llc_;
  std::vector<std::unique_ptr<MemoryController>> controllers_;
  Interconnect interconnect_;
  std::vector<CoreStats> core_stats_;
};

}  // namespace tint::sim

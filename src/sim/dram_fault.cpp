#include "sim/dram_fault.h"

namespace tint::sim {

using FaultLock = util::RankedMutex<util::lock_rank::kDramFault>;

void DramFaultModel::inject(const DramFaultRegion& region) {
  TINT_ASSERT(region.node < mapping_.num_nodes());
  TINT_ASSERT((region.row_lo < 0) == (region.row_hi < 0));
  TINT_ASSERT(region.row_lo <= region.row_hi);
  std::lock_guard<FaultLock> lk(mu_);
  regions_.push_back(region);
  region_count_.store(regions_.size(), std::memory_order_release);
}

void DramFaultModel::inject_bank_of(hw::PhysAddr frame_base,
                                    FrameHealth severity) {
  const hw::DramCoord c = mapping_.decode(frame_base);
  DramFaultRegion r;
  r.node = c.node;
  r.channel = static_cast<int>(c.channel);
  r.rank = static_cast<int>(c.rank);
  r.bank = static_cast<int>(c.bank);
  r.severity = severity;
  inject(r);
}

void DramFaultModel::inject_row_of(hw::PhysAddr frame_base,
                                   FrameHealth severity) {
  const hw::DramCoord c = mapping_.decode(frame_base);
  DramFaultRegion r;
  r.node = c.node;
  r.channel = static_cast<int>(c.channel);
  r.rank = static_cast<int>(c.rank);
  r.bank = static_cast<int>(c.bank);
  r.row_lo = static_cast<int64_t>(c.row);
  r.row_hi = static_cast<int64_t>(c.row);
  r.severity = severity;
  inject(r);
}

void DramFaultModel::clear() {
  std::lock_guard<FaultLock> lk(mu_);
  regions_.clear();
  region_count_.store(0, std::memory_order_release);
}

FrameHealth DramFaultModel::frame_health(hw::PhysAddr frame_base) const {
  if (empty()) return FrameHealth::kHealthy;
  const hw::DramCoord c = mapping_.decode(frame_base);
  std::lock_guard<FaultLock> lk(mu_);
  stats_.probes.fetch_add(1, std::memory_order_relaxed);
  FrameHealth worst = FrameHealth::kHealthy;
  for (const DramFaultRegion& r : regions_) {
    if (!r.matches(c)) continue;
    if (r.severity > worst) worst = r.severity;
    if (worst == FrameHealth::kDead) break;
  }
  if (worst != FrameHealth::kHealthy)
    stats_.hits.fetch_add(1, std::memory_order_relaxed);
  return worst;
}

}  // namespace tint::sim

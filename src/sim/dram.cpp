#include "sim/dram.h"

#include "util/assert.h"

namespace tint::sim {

void Bank::maybe_refresh(Cycles now, const hw::Timing& t, DramStats& stats) {
  if (t.refresh_interval == 0) return;
  const Cycles epoch = now / t.refresh_interval;
  if (epoch != last_refresh_epoch_) {
    last_refresh_epoch_ = epoch;
    if (row_open_) {
      row_open_ = false;
      ++stats.refresh_closures;
    }
  }
}

Cycles Bank::access_row(uint64_t row, Cycles start, const hw::Timing& t,
                        DramStats& stats) {
  maybe_refresh(start, t, stats);
  ++stats.accesses;
  Cycles lat;
  if (!row_open_) {
    lat = t.row_empty;
    ++stats.row_empties;
  } else if (open_row_ == row) {
    lat = t.row_hit;
    ++stats.row_hits;
  } else {
    lat = t.row_conflict;
    ++stats.row_conflicts;
  }
  open_row_ = row;
  row_open_ = true;
  return lat;
}

BankArray::BankArray(unsigned channels, unsigned ranks, unsigned banks)
    : ranks_(ranks), banks_per_rank_(banks),
      banks_(static_cast<size_t>(channels) * ranks * banks) {
  TINT_ASSERT(channels >= 1 && ranks >= 1 && banks >= 1);
}

Bank& BankArray::bank(const hw::DramCoord& c) {
  const size_t i =
      (static_cast<size_t>(c.channel) * ranks_ + c.rank) * banks_per_rank_ +
      c.bank;
  TINT_DASSERT(i < banks_.size());
  return banks_[i];
}

const Bank& BankArray::bank(const hw::DramCoord& c) const {
  return const_cast<BankArray*>(this)->bank(c);
}

}  // namespace tint::sim

#include "sim/interconnect.h"

#include <algorithm>

#include "util/assert.h"

namespace tint::sim {

Interconnect::Interconnect(const hw::Topology& topo, const hw::Timing& timing)
    : topo_(topo), timing_(timing) {
  const unsigned s = topo.sockets;
  link_busy_until_.assign(static_cast<size_t>(s) * s, 0);
  // Each line crossing the off-chip link occupies it for roughly half a
  // burst (16 B/cycle HT lanes vs 128 B lines).
  link_occupancy_ = timing.burst / 2;
}

Cycles Interconnect::traverse(Cycles now, unsigned src_socket,
                              unsigned dst_socket, unsigned hops) {
  const Cycles t = now + timing_.interconnect_extra(hops);
  if (hops >= 3) {
    // Cross-socket transfers are accounted against the shared link for
    // utilization statistics, but the latency model is fixed-per-hop:
    // hard-serializing the link here would let response legs (which
    // complete far in the future) block *earlier* request legs, because
    // the event engine orders work by op start time, not by per-resource
    // arrival. Typical queueing is folded into hop3_extra instead.
    const size_t idx =
        static_cast<size_t>(std::min(src_socket, dst_socket)) * topo_.sockets +
        std::max(src_socket, dst_socket);
    Cycles& busy = link_busy_until_[idx];
    if (busy > t) stats_.link_wait += busy - t;  // would-have-waited metric
    busy = std::max(busy, t) + link_occupancy_;
  }
  return t;
}

Cycles Interconnect::deliver_request(Cycles now, unsigned core,
                                     unsigned mem_node) {
  const unsigned hops = topo_.hops(core, mem_node);
  switch (hops) {
    case 1: ++stats_.local_transfers; break;
    case 2: ++stats_.onchip_transfers; break;
    default: ++stats_.offchip_transfers; break;
  }
  return traverse(now, topo_.socket_of_core(core),
                  topo_.socket_of_node(mem_node), hops);
}

Cycles Interconnect::deliver_response(Cycles now, unsigned mem_node,
                                      unsigned core) {
  const unsigned hops = topo_.hops(core, mem_node);
  // Response legs are counted once (in deliver_request) but still pay
  // latency and link occupancy.
  return traverse(now, topo_.socket_of_node(mem_node),
                  topo_.socket_of_core(core), hops);
}

}  // namespace tint::sim

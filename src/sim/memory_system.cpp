#include "sim/memory_system.h"

#include "util/assert.h"

namespace tint::sim {

namespace {
unsigned sets_for(uint64_t bytes, unsigned ways, unsigned line) {
  return static_cast<unsigned>(bytes / (static_cast<uint64_t>(ways) * line));
}
}  // namespace

MemorySystem::MemorySystem(const hw::Topology& topo,
                           const hw::AddressMapping& mapping,
                           const hw::Timing& timing)
    : topo_(topo), mapping_(mapping), timing_(timing),
      interconnect_(topo, timing) {
  topo.validate();
  const unsigned cores = topo.num_cores();
  l1_.reserve(cores);
  l2_.reserve(cores);
  for (unsigned c = 0; c < cores; ++c) {
    l1_.push_back(std::make_unique<Cache>(
        sets_for(topo.l1_bytes, topo.l1_ways, topo.line_bytes), topo.l1_ways,
        topo.line_bytes));
    l2_.push_back(std::make_unique<Cache>(
        sets_for(topo.l2_bytes, topo.l2_ways, topo.line_bytes), topo.l2_ways,
        topo.line_bytes));
  }
  const unsigned llc_instances = topo.llc_per_socket ? topo.sockets : 1;
  for (unsigned i = 0; i < llc_instances; ++i)
    llc_.push_back(std::make_unique<Cache>(topo.llc_sets(), topo.llc_ways,
                                           topo.line_bytes, cores));
  for (unsigned n = 0; n < topo.num_nodes(); ++n) {
    controllers_.push_back(std::make_unique<MemoryController>(
        n, topo.channels_per_node, topo.ranks_per_channel,
        topo.banks_per_rank, timing));
  }
  core_stats_.resize(cores);
}

Cycles MemorySystem::access(unsigned core, PhysAddr addr, bool write,
                            Cycles now) {
  TINT_DASSERT(core < topo_.num_cores());
  const PhysAddr line = addr & ~static_cast<PhysAddr>(topo_.line_bytes - 1);
  CoreStats& cs = core_stats_[core];
  ++cs.accesses;

  // Dirty victims cascade down the hierarchy; a dirty line falling out of
  // the LLC becomes a posted DRAM write at the victim's *own* home node
  // (remote writeback traffic under buddy allocation is real traffic).
  Cache& llc = *llc_[topo_.llc_per_socket ? topo_.socket_of_core(core) : 0];
  const auto spill_from_llc = [&](const CacheAccessResult& r) {
    if (r.evicted && r.evicted_dirty) {
      const hw::DramCoord vc = mapping_.decode(r.evicted_line);
      controllers_[vc.node]->enqueue_writeback(now, vc);
    }
  };
  const auto spill_from_l2 = [&](const CacheAccessResult& r) {
    if (r.evicted && r.evicted_dirty)
      spill_from_llc(llc.install(r.evicted_line, /*dirty=*/true, core));
  };
  const auto spill_from_l1 = [&](const CacheAccessResult& r) {
    if (r.evicted && r.evicted_dirty)
      spill_from_l2(l2_[core]->install(r.evicted_line, /*dirty=*/true));
  };

  // L1.
  const CacheAccessResult l1_res = l1_[core]->access(line, write);
  if (l1_res.hit) {
    ++cs.l1_hits;
    cs.total_latency += timing_.l1_hit;
    return timing_.l1_hit;
  }
  spill_from_l1(l1_res);
  // L2.
  const CacheAccessResult l2_res = l2_[core]->access(line, write);
  if (l2_res.hit) {
    ++cs.l2_hits;
    cs.total_latency += timing_.l2_hit;
    return timing_.l2_hit;
  }
  spill_from_l2(l2_res);
  // Shared LLC, physically indexed: this is where inter-task eviction
  // interference and page-color isolation play out.
  const CacheAccessResult llc_res = llc.access(line, write, core);
  if (llc_res.hit) {
    ++cs.llc_hits;
    cs.total_latency += timing_.llc_hit;
    return timing_.llc_hit;
  }
  spill_from_llc(llc_res);

  const hw::DramCoord coord = mapping_.decode(line);
  ++cs.dram_accesses;
  if (topo_.hops(core, coord.node) > 1) ++cs.remote_dram_accesses;

  const Cycles at_controller = interconnect_.deliver_request(now, core,
                                                             coord.node);
  const Cycles data_ready =
      controllers_[coord.node]->service(at_controller, coord, write);
  const Cycles at_core = interconnect_.deliver_response(data_ready,
                                                        coord.node, core);
  // LLC lookup cost is paid on the way regardless of hit/miss.
  const Cycles done = at_core + timing_.llc_hit;

  const Cycles latency = done - now;
  cs.total_latency += latency;
  return latency;
}

void MemorySystem::reset() {
  for (auto& c : l1_) c->clear();
  for (auto& c : l2_) c->clear();
  for (auto& c : llc_) c->clear();
  for (auto& mc : controllers_) mc->reset_stats();
  interconnect_.reset_stats();
  for (auto& s : core_stats_) s = CoreStats{};
  // Bank/channel availability times persist inside the controllers; they
  // only ever move forward and a fresh experiment uses a fresh
  // MemorySystem, so this is acceptable for reset-between-phases use.
}

}  // namespace tint::sim

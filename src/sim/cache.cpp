#include "sim/cache.h"

#include <algorithm>
#include <bit>

#include "util/assert.h"

namespace tint::sim {

Cache::Cache(unsigned sets, unsigned ways, unsigned line_bytes,
             unsigned requesters)
    : sets_(sets), ways_(ways), line_bytes_(line_bytes),
      lines_(static_cast<size_t>(sets) * ways),
      per_requester_(requesters) {
  TINT_ASSERT_MSG(std::has_single_bit(sets), "set count must be power of two");
  TINT_ASSERT(ways >= 1 && line_bytes >= 16 && requesters >= 1);
  if (requesters > 1) set_cross_evictions_.assign(sets, 0);
}

CacheAccessResult Cache::access(PhysAddr addr, bool write, unsigned requester) {
  TINT_DASSERT(requester < per_requester_.size());
  const unsigned set = set_of(addr);
  const uint64_t tag = tag_of(addr);
  Line* const base = &lines_[static_cast<size_t>(set) * ways_];

  ++stats_.accesses;
  ++per_requester_[requester].accesses;
  ++stamp_;

  CacheAccessResult res;
  Line* victim = nullptr;
  for (unsigned w = 0; w < ways_; ++w) {
    Line& l = base[w];
    if (l.valid && l.tag == tag) {
      l.lru = stamp_;
      l.dirty = l.dirty || write;
      res.hit = true;
      ++stats_.hits;
      ++per_requester_[requester].hits;
      return res;
    }
    if (!victim || !l.valid || (victim->valid && l.lru < victim->lru))
      victim = &l;
  }

  ++stats_.misses;
  ++per_requester_[requester].misses;

  if (victim->valid) {
    res.evicted = true;
    res.evicted_dirty = victim->dirty;
    res.evicted_line = line_base(victim->tag, set);
    ++stats_.evictions;
    if (victim->dirty) ++stats_.dirty_evictions;
    if (victim->owner != requester) {
      ++stats_.cross_requester_evictions;
      ++per_requester_[requester].cross_requester_evictions;
      if (!set_cross_evictions_.empty()) ++set_cross_evictions_[set];
    }
  }
  victim->valid = true;
  victim->tag = tag;
  victim->lru = stamp_;
  victim->dirty = write;
  victim->owner = requester;
  return res;
}

CacheAccessResult Cache::install(PhysAddr addr, bool dirty,
                                 unsigned requester) {
  TINT_DASSERT(requester < per_requester_.size());
  const unsigned set = set_of(addr);
  const uint64_t tag = tag_of(addr);
  Line* const base = &lines_[static_cast<size_t>(set) * ways_];
  ++stamp_;

  CacheAccessResult res;
  Line* victim = nullptr;
  for (unsigned w = 0; w < ways_; ++w) {
    Line& l = base[w];
    if (l.valid && l.tag == tag) {
      l.dirty = l.dirty || dirty;
      res.hit = true;
      return res;
    }
    if (!victim || !l.valid || (victim->valid && l.lru < victim->lru))
      victim = &l;
  }
  if (victim->valid) {
    res.evicted = true;
    res.evicted_dirty = victim->dirty;
    res.evicted_line = line_base(victim->tag, set);
    ++stats_.evictions;
    if (victim->dirty) ++stats_.dirty_evictions;
  }
  victim->valid = true;
  victim->tag = tag;
  victim->lru = stamp_;
  victim->dirty = dirty;
  victim->owner = requester;
  return res;
}

bool Cache::contains(PhysAddr addr) const {
  const unsigned set = set_of(addr);
  const uint64_t tag = tag_of(addr);
  const Line* base = &lines_[static_cast<size_t>(set) * ways_];
  for (unsigned w = 0; w < ways_; ++w)
    if (base[w].valid && base[w].tag == tag) return true;
  return false;
}

bool Cache::invalidate(PhysAddr addr) {
  const unsigned set = set_of(addr);
  const uint64_t tag = tag_of(addr);
  Line* const base = &lines_[static_cast<size_t>(set) * ways_];
  for (unsigned w = 0; w < ways_; ++w) {
    Line& l = base[w];
    if (l.valid && l.tag == tag) {
      const bool dirty = l.dirty;
      l = Line{};
      return dirty;
    }
  }
  return false;
}

void Cache::clear(bool clear_stats) {
  for (auto& l : lines_) l = Line{};
  stamp_ = 0;
  if (clear_stats) {
    stats_ = CacheStats{};
    for (auto& s : per_requester_) s = CacheStats{};
    std::fill(set_cross_evictions_.begin(), set_cross_evictions_.end(), 0);
  }
}

}  // namespace tint::sim

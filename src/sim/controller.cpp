#include "sim/controller.h"

#include <algorithm>

#include "util/assert.h"

namespace tint::sim {

MemoryController::MemoryController(unsigned node_id, unsigned channels,
                                   unsigned ranks, unsigned banks,
                                   const hw::Timing& timing)
    : node_id_(node_id), timing_(timing), ranks_(ranks),
      banks_per_rank_(banks), banks_(channels, ranks, banks),
      channels_(channels),
      bank_accesses_(static_cast<size_t>(channels) * ranks * banks, 0),
      bank_conflicts_(static_cast<size_t>(channels) * ranks * banks, 0) {}

Cycles MemoryController::service(Cycles arrival, const hw::DramCoord& coord,
                                 bool write) {
  (void)write;  // reads and writes share the simplified timing
  TINT_DASSERT(coord.node == node_id_);
  Bank& bank = banks_.bank(coord);
  Channel& ch = channels_[coord.channel];

  // Wait for the bank to finish its previous command.
  const Cycles start = std::max(arrival, bank.ready_at());
  stats_.queue_wait += start - arrival;
  stats_.bank_wait += start - arrival;

  // Row buffer outcome determines the command latency. Conflicts are
  // attributed to the serving bank (Eq. 1 local index) for the per-color
  // contention export.
  const unsigned local =
      (coord.channel * ranks_ + coord.rank) * banks_per_rank_ + coord.bank;
  ++bank_accesses_[local];
  const uint64_t conflicts_before = stats_.row_conflicts;
  const Cycles cmd = bank.access_row(coord.row, start, timing_, stats_);
  if (stats_.row_conflicts != conflicts_before) ++bank_conflicts_[local];

  // The data burst needs the channel.
  const Cycles data_start = std::max(start + cmd, ch.busy_until);
  stats_.queue_wait += data_start - (start + cmd);
  stats_.channel_wait += data_start - (start + cmd);
  const Cycles done = data_start + timing_.burst;

  ch.busy_until = done;
  bank.set_ready_at(done);
  return done;
}

void MemoryController::enqueue_writeback(Cycles arrival,
                                         const hw::DramCoord& coord) {
  ++stats_.writebacks;
  // Posted write absorbed by the controller's write buffer and drained
  // opportunistically: it consumes channel *bandwidth* (delaying later
  // demand bursts) but does not disturb the open row -- modern
  // controllers batch write drains precisely to avoid that.
  Channel& ch = channels_[coord.channel];
  const Cycles start = std::max(arrival, ch.busy_until);
  ch.busy_until = start + timing_.burst;
}

}  // namespace tint::sim

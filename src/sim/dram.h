// DRAM bank model: row buffers and timing (Section II.B).
//
// Each bank owns one row buffer. An access to the open row costs only the
// column strobe (row hit); an access to a closed bank additionally pays
// row activation (row empty); replacing an open row pays precharge +
// activation + column strobe (row conflict). Periodic refresh closes the
// row buffer. These are exactly the effects the paper exploits: when two
// tasks interleave on one bank, each evicts the other's row and both pay
// the conflict penalty.
#pragma once

#include <cstdint>
#include <vector>

#include "hw/address_mapping.h"
#include "hw/topology.h"

namespace tint::sim {

using hw::Cycles;

struct DramStats {
  uint64_t accesses = 0;
  uint64_t row_hits = 0;
  uint64_t row_empties = 0;
  uint64_t row_conflicts = 0;
  uint64_t refresh_closures = 0;
  uint64_t writebacks = 0;
  Cycles queue_wait = 0;    // bank_wait + channel_wait
  Cycles bank_wait = 0;     // waiting for the bank to finish prior command
  Cycles channel_wait = 0;  // waiting for the data bus

  double row_hit_rate() const {
    return accesses
               ? static_cast<double>(row_hits) / static_cast<double>(accesses)
               : 0.0;
  }
};

// One DRAM bank.
class Bank {
 public:
  // Classifies the access, updates the row buffer, and returns the DRAM
  // command latency (excluding queueing and data burst).
  Cycles access_row(uint64_t row, Cycles start, const hw::Timing& t,
                    DramStats& stats);

  // Bank availability (busy with a previous command until this time).
  Cycles ready_at() const { return ready_at_; }
  void set_ready_at(Cycles c) { ready_at_ = c; }

  bool row_open() const { return row_open_; }
  uint64_t open_row() const { return open_row_; }
  void close_row() { row_open_ = false; }

 private:
  // Applies refresh: closes the row if a refresh boundary passed since
  // the last access.
  void maybe_refresh(Cycles now, const hw::Timing& t, DramStats& stats);

  uint64_t open_row_ = 0;
  bool row_open_ = false;
  Cycles ready_at_ = 0;
  Cycles last_refresh_epoch_ = 0;
};

// All banks of one memory node, indexed by (channel, rank, bank).
class BankArray {
 public:
  BankArray(unsigned channels, unsigned ranks, unsigned banks);

  Bank& bank(const hw::DramCoord& c);
  const Bank& bank(const hw::DramCoord& c) const;
  size_t size() const { return banks_.size(); }
  Bank& at(size_t i) { return banks_[i]; }

 private:
  unsigned ranks_, banks_per_rank_;
  std::vector<Bank> banks_;
};

}  // namespace tint::sim

// Experiment driver: the five thread/node configurations of Section V.B,
// repeated runs over seeds, and metric aggregation for the figures.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/policy.h"
#include "core/session.h"
#include "runtime/workload.h"
#include "util/stats.h"

namespace tint::runtime {

// One pinning configuration, e.g. "16_threads_4_nodes" = cores 0..15.
struct ThreadConfig {
  std::string name;
  std::vector<unsigned> cores;

  unsigned threads() const { return static_cast<unsigned>(cores.size()); }
};

// Builds a paper-style configuration: `threads` threads spread evenly
// over the first `nodes` memory nodes, lowest cores first (exactly the
// pinnings listed in Section V.B).
ThreadConfig make_config(const hw::Topology& topo, unsigned threads,
                         unsigned nodes);

// The paper's five configurations, in presentation order.
std::vector<ThreadConfig> standard_configs(const hw::Topology& topo);

// Aggregation of repeated runs of one (workload, policy, config) cell.
struct AggregateResult {
  std::string workload;
  core::Policy policy = core::Policy::kBuddy;
  std::string config;

  Summary runtime;        // benchmark runtime per rep (cycles)
  Summary total_idle;     // total idle per rep
  Summary max_thread_busy;
  Summary busy_spread;    // max - min thread busy per rep
  Summary max_thread_idle;
  Summary idle_spread;
  // Per-thread means over reps (Figs. 13/14 series).
  std::vector<double> thread_busy_mean;
  std::vector<double> thread_idle_mean;
  // Behaviour diagnostics (means over reps).
  double remote_fraction = 0;   // of DRAM accesses
  double fallback_fraction = 0; // of touched pages
  double llc_miss_rate = 0;
  double row_hit_rate = 0;
  double avg_access_latency = 0;
  // RAS counters, summed over reps (zero without injected DRAM faults).
  uint64_t frames_poisoned = 0;
  uint64_t pages_migrated = 0;
  uint64_t colors_retired = 0;
  // Fast-path cache counters, summed over reps (zero with caches off).
  uint64_t magazine_hits = 0;
  uint64_t magazine_misses = 0;
  uint64_t batch_refills = 0;
  uint64_t tcache_hits = 0;
  // Offload-engine counters, summed over reps (zero with offload off).
  uint64_t ring_alloc_hits = 0;
  uint64_t ring_full_stalls = 0;
  uint64_t prefault_pages = 0;
  uint64_t batches_drained = 0;
  // Live re-coloring swaps, summed over reps (zero without a ColorGuard).
  uint64_t recolor_calls = 0;
};

class ExperimentDriver {
 public:
  ExperimentDriver(const core::MachineConfig& machine, unsigned reps = 3,
                   uint64_t base_seed = 1234);

  AggregateResult run(const WorkloadSpec& spec, core::Policy policy,
                      const ThreadConfig& config);

  unsigned reps() const { return reps_; }

 private:
  core::MachineConfig machine_;
  unsigned reps_;
  uint64_t base_seed_;
};

// Of the non-baseline colorings (LLC, MEM, MEM+LLC(part), LLC+MEM(part)),
// the one with the smallest mean runtime -- the paper's "best result from
// MEM, LLC, MEM+LLC(part) and LLC+MEM(part)" bar.
struct BestOther {
  core::Policy policy;
  AggregateResult result;
};
BestOther best_other_coloring(ExperimentDriver& driver,
                              const WorkloadSpec& spec,
                              const ThreadConfig& config);

}  // namespace tint::runtime

// ChurnEngine: the colo-scale tenant lifecycle driver.
//
// Replays what a multi-tenant colo does to an allocator all day:
// thousands of short-lived colored tenants arriving, touching their
// working set, and leaving -- while the machine underneath misbehaves
// (failpoints, DRAM faults, node hotplug, a live ColorGuard). Every
// lifetime goes through the AdmissionController, so the engine is also
// the workload that exercises admission rejects, burstable downgrades
// and crash-consistent teardown at scale.
//
// The engine itself is deliberately error-transparent: mmap failures,
// touch SIGBUSes (kOutOfMemory and friends) and ECC losses are
// *counted*, never fatal -- surviving them with zero invariant
// violations is the point of the churn-chaos soak test.
//
// Determinism: with a fixed seed and threads == 1 the arrival sequence,
// class draws, page counts and departure order are reproducible.
// Multi-threaded runs keep per-worker determinism (each worker derives
// its own Rng from seed ^ worker) but interleave admissions freely.
#pragma once

#include <cstdint>

#include "os/kernel.h"
#include "runtime/admission.h"

namespace tint::runtime {

// How arrivals are spaced over engine steps. The engine advances in
// discrete steps; a step is the unit the observe cadence, lifetime
// expiries and waitlist polling all run on.
enum class ArrivalModel : uint8_t {
  kUniform = 0,   // legacy: exactly one arrival per step
  // Poisson(poisson_burst_mean) arrivals per step: bursty like real
  // colo traffic -- quiet steps and multi-tenant bursts both happen.
  kPoissonBurst = 1,
};

// How long an admitted tenant stays resident.
enum class LifetimeModel : uint8_t {
  kUniform = 0,   // legacy: lives until evicted by capacity (random victim)
  // Departs after ~LogNormal(lognormal_mu, lognormal_sigma) steps: most
  // tenants are short-lived, a heavy tail lingers -- the mix that makes
  // palette fragmentation and shrink pressure realistic.
  kLogNormal = 1,
};

struct ChurnConfig {
  uint64_t lifetimes = 2000;  // total tenant lifetimes across all workers
  unsigned threads = 4;
  // Max live tenants per worker; when full, one departs before the next
  // arrival (random victim: departures are not FIFO).
  unsigned concurrency = 8;
  // Working set per tenant, in pages (uniform draw, inclusive).
  unsigned min_pages = 2;
  unsigned max_pages = 16;
  // Class mix of arrivals; the remainder is best-effort.
  double pct_guaranteed = 0.25;
  double pct_burstable = 0.35;
  // Call AdmissionController::observe() every N steps per worker (keeps
  // the bandwidth-headroom model warm and, with the elastics on, drives
  // the palette scan + waitlist retry). 0 disables.
  unsigned observe_every = 8;
  uint64_t seed = 0xc01095eedULL;
  // Timing realism (defaults reproduce the legacy uniform engine
  // bit-for-bit: no extra RNG draws happen unless a model is switched).
  ArrivalModel arrival_model = ArrivalModel::kUniform;
  double poisson_burst_mean = 1.5;  // arrivals per step under kPoissonBurst
  LifetimeModel lifetime_model = LifetimeModel::kUniform;
  double lognormal_mu = 2.0;      // median lifetime ~ e^mu ~ 7 steps
  double lognormal_sigma = 0.75;  // tail heaviness
};

struct ChurnResult {
  uint64_t lifetimes = 0;  // arrivals attempted
  uint64_t admitted = 0;
  uint64_t rejected = 0;
  uint64_t downgraded = 0;
  uint64_t torn_down = 0;
  uint64_t pages_mapped = 0;
  uint64_t touches = 0;
  uint64_t touch_errors = 0;  // simulated SIGBUS / ECC loss, survived
  uint64_t mmap_failures = 0;
  // Sum of Kernel::ReapReport fields over every teardown: the leak
  // ledger the soak test audits against check_invariants().
  uint64_t vmas_unmapped = 0;
  uint64_t colors_cleared = 0;
  // Deadline-aware waitlist outcomes (nonzero only when the bound
  // AdmissionController runs with cfg.waitlist). wait_admitted also
  // counts in `admitted`; wait_expired also counts in `rejected`.
  uint64_t waitlisted = 0;      // arrivals parked with a deadline
  uint64_t wait_admitted = 0;   // parked arrivals later admitted + claimed
  uint64_t wait_expired = 0;    // parked arrivals whose deadline passed
  uint64_t wait_cancelled = 0;  // abandoned at drain (engine shutdown)
};

class ChurnEngine {
 public:
  ChurnEngine(os::Kernel& kernel, AdmissionController& admission,
              ChurnConfig cfg = {});

  // Runs the configured lifetimes to completion (all workers joined,
  // every surviving tenant torn down) and returns the tally. Safe to
  // run while chaos (failpoints, hotplug, fault injection, a started
  // ColorGuard) is active on the same kernel.
  ChurnResult run();

 private:
  struct Live {
    os::TaskId task = 0;
    os::VirtAddr base = 0;
    unsigned pages = 0;
    uint64_t expires_at = 0;  // step of departure (kLogNormal only)
    std::vector<double> latencies;  // successful touch cycles
  };
  void worker(unsigned index, uint64_t lifetimes, ChurnResult& out);
  void retire(Live& tenant, ChurnResult& out);

  os::Kernel& kernel_;
  AdmissionController& admission_;
  ChurnConfig cfg_;
};

}  // namespace tint::runtime

#include "runtime/churn.h"

#include <thread>
#include <vector>

#include "util/rng.h"

namespace tint::runtime {

ChurnEngine::ChurnEngine(os::Kernel& kernel, AdmissionController& admission,
                         ChurnConfig cfg)
    : kernel_(kernel), admission_(admission), cfg_(cfg) {}

void ChurnEngine::retire(Live& tenant, ChurnResult& out) {
  const AdmissionController::TeardownReport rep =
      admission_.teardown(tenant.task, tenant.latencies);
  if (!rep.known) return;  // already gone (cannot happen from this engine)
  ++out.torn_down;
  out.vmas_unmapped += rep.reap.vmas_unmapped;
  out.colors_cleared += rep.reap.colors_cleared;
}

void ChurnEngine::worker(unsigned index, uint64_t lifetimes,
                         ChurnResult& out) {
  tint::Rng rng(tint::mix64(cfg_.seed ^ (0x9e3779b97f4a7c15ULL * (index + 1))));
  const uint64_t page = kernel_.topology().page_bytes();
  std::vector<Live> live;

  for (uint64_t n = 0; n < lifetimes; ++n) {
    ++out.lifetimes;
    if (cfg_.observe_every && n % cfg_.observe_every == 0)
      admission_.observe();

    // Departure before arrival once the worker is at capacity. The
    // victim is a uniform draw, not the oldest: real churn is not FIFO,
    // and random departures interleave short and long lifetimes.
    while (live.size() >= cfg_.concurrency) {
      const size_t v = rng.next_below(live.size());
      retire(live[v], out);
      live.erase(live.begin() + static_cast<long>(v));
    }

    const double draw = rng.next_double();
    const TenantClass cls =
        draw < cfg_.pct_guaranteed ? TenantClass::kGuaranteed
        : draw < cfg_.pct_guaranteed + cfg_.pct_burstable
            ? TenantClass::kBurstable
            : TenantClass::kBestEffort;
    const AdmissionTicket ticket = admission_.admit(cls);
    if (!ticket.admitted) {
      ++out.rejected;
      continue;
    }
    ++out.admitted;
    if (ticket.downgraded) ++out.downgraded;

    Live t;
    t.task = ticket.task;
    t.pages = static_cast<unsigned>(
        rng.next_range(cfg_.min_pages, cfg_.max_pages));
    t.base = kernel_.mmap(t.task, 0, t.pages * page, 0);
    if (t.base == os::kMmapFailed) {
      // VA-space or argument failure: the tenant departs immediately --
      // still through teardown, so the accounting stays conserved.
      ++out.mmap_failures;
      retire(t, out);
      continue;
    }
    out.pages_mapped += t.pages;
    t.latencies.reserve(t.pages);
    for (unsigned p = 0; p < t.pages; ++p) {
      const os::Kernel::TouchResult r =
          kernel_.touch(t.task, t.base + p * page, rng.next_bool(0.5));
      ++out.touches;
      if (r.error != os::AllocError::kOk) {
        // Simulated SIGBUS (pool dry, node offline) or ECC data loss:
        // the tenant lives on with a smaller resident set.
        ++out.touch_errors;
        continue;
      }
      if (r.faulted)
        t.latencies.push_back(static_cast<double>(r.fault_cycles));
    }
    live.push_back(std::move(t));
  }

  for (Live& t : live) retire(t, out);
}

ChurnResult ChurnEngine::run() {
  const unsigned threads = std::max(1u, cfg_.threads);
  std::vector<ChurnResult> parts(threads);
  std::vector<std::thread> pool;
  pool.reserve(threads);
  // Split the lifetime budget; the first worker absorbs the remainder.
  const uint64_t base = cfg_.lifetimes / threads;
  const uint64_t rem = cfg_.lifetimes % threads;
  for (unsigned i = 0; i < threads; ++i) {
    const uint64_t n = base + (i == 0 ? rem : 0);
    pool.emplace_back(
        [this, i, n, &parts] { worker(i, n, parts[i]); });
  }
  for (std::thread& th : pool) th.join();

  ChurnResult total;
  for (const ChurnResult& p : parts) {
    total.lifetimes += p.lifetimes;
    total.admitted += p.admitted;
    total.rejected += p.rejected;
    total.downgraded += p.downgraded;
    total.torn_down += p.torn_down;
    total.pages_mapped += p.pages_mapped;
    total.touches += p.touches;
    total.touch_errors += p.touch_errors;
    total.mmap_failures += p.mmap_failures;
    total.vmas_unmapped += p.vmas_unmapped;
    total.colors_cleared += p.colors_cleared;
  }
  return total;
}

}  // namespace tint::runtime

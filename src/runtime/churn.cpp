#include "runtime/churn.h"

#include <algorithm>
#include <thread>
#include <vector>

#include "util/rng.h"

namespace tint::runtime {

ChurnEngine::ChurnEngine(os::Kernel& kernel, AdmissionController& admission,
                         ChurnConfig cfg)
    : kernel_(kernel), admission_(admission), cfg_(cfg) {}

void ChurnEngine::retire(Live& tenant, ChurnResult& out) {
  const AdmissionController::TeardownReport rep =
      admission_.teardown(tenant.task, tenant.latencies);
  if (!rep.known) return;  // already gone (cannot happen from this engine)
  ++out.torn_down;
  out.vmas_unmapped += rep.reap.vmas_unmapped;
  out.colors_cleared += rep.reap.colors_cleared;
}

void ChurnEngine::worker(unsigned index, uint64_t lifetimes,
                         ChurnResult& out) {
  tint::Rng rng(tint::mix64(cfg_.seed ^ (0x9e3779b97f4a7c15ULL * (index + 1))));
  const uint64_t page = kernel_.topology().page_bytes();
  std::vector<Live> live;
  std::vector<uint64_t> pending;  // waitlist ids this worker polls
  uint64_t step = 0;

  // Departure before arrival once the worker is at capacity. The
  // victim is a uniform draw, not the oldest: real churn is not FIFO,
  // and random departures interleave short and long lifetimes.
  const auto make_room = [&] {
    while (live.size() >= cfg_.concurrency) {
      const size_t v = rng.next_below(live.size());
      retire(live[v], out);
      live.erase(live.begin() + static_cast<long>(v));
    }
  };

  // Turn an admitted ticket into a resident tenant: map the working
  // set, touch it page by page, draw the departure step.
  const auto materialize = [&](const AdmissionTicket& ticket) {
    Live t;
    t.task = ticket.task;
    t.pages = static_cast<unsigned>(
        rng.next_range(cfg_.min_pages, cfg_.max_pages));
    t.base = kernel_.mmap(t.task, 0, t.pages * page, 0);
    if (t.base == os::kMmapFailed) {
      // VA-space or argument failure: the tenant departs immediately --
      // still through teardown, so the accounting stays conserved.
      ++out.mmap_failures;
      retire(t, out);
      return;
    }
    out.pages_mapped += t.pages;
    t.latencies.reserve(t.pages);
    for (unsigned p = 0; p < t.pages; ++p) {
      const os::Kernel::TouchResult r =
          kernel_.touch(t.task, t.base + p * page, rng.next_bool(0.5));
      ++out.touches;
      if (r.error != os::AllocError::kOk) {
        // Simulated SIGBUS (pool dry, node offline) or ECC data loss:
        // the tenant lives on with a smaller resident set.
        ++out.touch_errors;
        continue;
      }
      if (r.faulted)
        t.latencies.push_back(static_cast<double>(r.fault_cycles));
    }
    if (cfg_.lifetime_model == LifetimeModel::kLogNormal) {
      const double span =
          rng.next_lognormal(cfg_.lognormal_mu, cfg_.lognormal_sigma);
      t.expires_at = step + 1 +
                     static_cast<uint64_t>(std::min(span, 1.0e6));
    }
    live.push_back(std::move(t));
  };

  for (uint64_t n = 0; n < lifetimes; ++step) {
    if (cfg_.observe_every && step % cfg_.observe_every == 0)
      admission_.observe();

    // Poll parked arrivals first: an earlier departure (ours or another
    // worker's) may have admitted them from the waitlist.
    for (size_t i = 0; i < pending.size();) {
      const AdmissionController::WaitOutcome w = admission_.claim(pending[i]);
      if (w.state == AdmissionController::WaitOutcome::State::kPending) {
        ++i;
        continue;
      }
      pending.erase(pending.begin() + static_cast<long>(i));
      if (w.state == AdmissionController::WaitOutcome::State::kReady) {
        ++out.wait_admitted;
        ++out.admitted;
        if (w.ticket.downgraded) ++out.downgraded;
        make_room();
        materialize(w.ticket);
      } else {
        ++out.wait_expired;  // deadline passed: a reject, just deferred
        ++out.rejected;
      }
    }

    // Log-normal departures happen on schedule, not only under capacity
    // pressure -- the tail of long-lived tenants empties out naturally.
    if (cfg_.lifetime_model == LifetimeModel::kLogNormal) {
      for (size_t i = 0; i < live.size();) {
        if (live[i].expires_at <= step) {
          retire(live[i], out);
          live.erase(live.begin() + static_cast<long>(i));
        } else {
          ++i;
        }
      }
    }

    // Arrivals this step: exactly one (legacy) or a Poisson burst
    // (possibly zero -- the step still observes, expires and polls).
    uint64_t arrivals = 1;
    if (cfg_.arrival_model == ArrivalModel::kPoissonBurst)
      arrivals = std::min<uint64_t>(
          rng.next_poisson(cfg_.poisson_burst_mean), lifetimes - n);
    for (uint64_t a = 0; a < arrivals; ++a) {
      ++n;
      ++out.lifetimes;
      make_room();
      const double draw = rng.next_double();
      const TenantClass cls =
          draw < cfg_.pct_guaranteed ? TenantClass::kGuaranteed
          : draw < cfg_.pct_guaranteed + cfg_.pct_burstable
              ? TenantClass::kBurstable
              : TenantClass::kBestEffort;
      const AdmissionTicket ticket = admission_.admit(cls);
      if (ticket.waitlisted) {
        ++out.waitlisted;
        pending.push_back(ticket.wait_id);
        continue;
      }
      if (!ticket.admitted) {
        ++out.rejected;
        continue;
      }
      ++out.admitted;
      if (ticket.downgraded) ++out.downgraded;
      materialize(ticket);
    }
  }

  // Drain: everything resident departs; parked arrivals get one final
  // poll (our own teardowns may have just admitted them) and whatever
  // is still queued is cancelled so the controller holds no orphaned
  // tickets or live tasks for this worker.
  for (Live& t : live) retire(t, out);
  live.clear();
  for (const uint64_t id : pending) {
    const AdmissionController::WaitOutcome w = admission_.claim(id);
    if (w.state == AdmissionController::WaitOutcome::State::kReady) {
      ++out.wait_admitted;
      ++out.admitted;
      if (w.ticket.downgraded) ++out.downgraded;
      Live t;
      t.task = w.ticket.task;
      retire(t, out);  // admitted at the buzzer: departs immediately
    } else if (w.state == AdmissionController::WaitOutcome::State::kGone) {
      ++out.wait_expired;
      ++out.rejected;
    } else if (admission_.cancel_wait(id)) {
      ++out.wait_cancelled;
    }
  }
}

ChurnResult ChurnEngine::run() {
  const unsigned threads = std::max(1u, cfg_.threads);
  std::vector<ChurnResult> parts(threads);
  std::vector<std::thread> pool;
  pool.reserve(threads);
  // Split the lifetime budget; the first worker absorbs the remainder.
  const uint64_t base = cfg_.lifetimes / threads;
  const uint64_t rem = cfg_.lifetimes % threads;
  for (unsigned i = 0; i < threads; ++i) {
    const uint64_t n = base + (i == 0 ? rem : 0);
    pool.emplace_back(
        [this, i, n, &parts] { worker(i, n, parts[i]); });
  }
  for (std::thread& th : pool) th.join();

  ChurnResult total;
  for (const ChurnResult& p : parts) {
    total.lifetimes += p.lifetimes;
    total.admitted += p.admitted;
    total.rejected += p.rejected;
    total.downgraded += p.downgraded;
    total.torn_down += p.torn_down;
    total.pages_mapped += p.pages_mapped;
    total.touches += p.touches;
    total.touch_errors += p.touch_errors;
    total.mmap_failures += p.mmap_failures;
    total.vmas_unmapped += p.vmas_unmapped;
    total.colors_cleared += p.colors_cleared;
    total.waitlisted += p.waitlisted;
    total.wait_admitted += p.wait_admitted;
    total.wait_expired += p.wait_expired;
    total.wait_cancelled += p.wait_cancelled;
  }
  return total;
}

}  // namespace tint::runtime

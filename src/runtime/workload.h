// Workload generators: the synthetic stride benchmark of Section V.A and
// access-pattern proxies for the six SPEC/Parsec OpenMP codes of
// Section V.B.
//
// The proxies are not the benchmarks themselves (no SPEC/Parsec sources
// or inputs ship here); they are parameterised SPMD kernels that encode
// the traits the paper identifies as decisive for each code:
//
//   name          heap/thr  reuse   mem-int  serial  notes
//   lbm            large    stream  highest   none   streaming stencil sweeps
//   art            medium   high    high      none   repeated weight passes
//   equake         medium   medium  high      none   irregular + skewed work
//   bodytrack      medium   medium  medium    some   multiple sections/round
//   freqmine       large+   high    high      none   big tree, LLC-sensitive;
//                                                    overflows a fully
//                                                    partitioned color pool
//   blackscholes   small    low     low       large  input-bound, master-heavy
//
// Each spec's parameters are documented where it is defined.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/policy.h"
#include "core/session.h"
#include "runtime/barrier.h"
#include "runtime/sim_thread.h"
#include "util/rng.h"

namespace tint::runtime {

// ---------------------------------------------------------------------
// Op streams
// ---------------------------------------------------------------------

// The Fig. 10 pattern: starting from the middle M of the allocation,
// write M, M+1C, M-1C, M+2C, M-2C, ... (C = line size). Every line is
// touched exactly once, defeating all cache reuse.
class AlternatingStrideStream final : public OpStream {
 public:
  AlternatingStrideStream(os::VirtAddr base, uint64_t bytes, unsigned line,
                          bool write = true);
  bool next(Op& op) override;

 private:
  os::VirtAddr mid_;
  uint64_t half_lines_;
  unsigned line_;
  bool write_;
  uint64_t i_ = 0;
};

// Sequential line-granular pass over a region (used for first-touch
// initialization and streaming phases). Optional compute per access.
class StreamingPassStream final : public OpStream {
 public:
  StreamingPassStream(os::VirtAddr base, uint64_t bytes, unsigned line,
                      bool write, unsigned compute_per_access = 0);
  bool next(Op& op) override;

 private:
  os::VirtAddr base_;
  uint64_t lines_;
  unsigned line_;
  bool write_;
  unsigned compute_;
  uint64_t i_ = 0;
};

// Pointer-chase over a region: each access's address depends on the
// previous one (a seeded random permutation cycle), modeling dependent
// loads (linked lists, trees) that expose full memory latency with no
// bank-level parallelism within the thread.
class PointerChaseStream final : public OpStream {
 public:
  // Chases `accesses` hops through a permutation of `bytes / line` lines.
  PointerChaseStream(os::VirtAddr base, uint64_t bytes, unsigned line,
                     uint64_t accesses, uint64_t seed);
  bool next(Op& op) override;

 private:
  os::VirtAddr base_;
  uint64_t lines_;
  unsigned line_;
  uint64_t accesses_, issued_ = 0;
  uint64_t cursor_ = 0;  // current line index
  uint64_t a_, c_;       // affine permutation parameters (odd multiplier)
};

// Pure compute (serial sections of compute-bound phases).
class ComputeStream final : public OpStream {
 public:
  explicit ComputeStream(Cycles total, Cycles slice = 1000);
  bool next(Op& op) override;

 private:
  Cycles remaining_;
  Cycles slice_;
};

// The per-benchmark parallel-section kernel: a budget of accesses over a
// private region with a hot (reused) window, a shared read-mostly region,
// and interleaved compute. All randomness is deterministic per
// (seed, thread, round).
struct MixedKernelParams {
  os::VirtAddr private_base = 0;
  uint64_t private_bytes = 0;
  os::VirtAddr shared_base = 0;
  uint64_t shared_bytes = 0;
  uint64_t hot_bytes = 0;       // 0 => no hot window
  double hot_fraction = 0.0;    // P(access in hot window)
  double shared_fraction = 0.0; // P(access in shared region)
  double write_fraction = 0.3;  // P(private access is a store)
  unsigned compute_per_access = 0;
  uint64_t accesses = 0;
  unsigned line = 128;
};

class MixedKernelStream final : public OpStream {
 public:
  MixedKernelStream(const MixedKernelParams& p, uint64_t seed);
  bool next(Op& op) override;

 private:
  MixedKernelParams p_;
  Rng rng_;
  uint64_t issued_ = 0;
  uint64_t cursor_ = 0;  // streaming cursor (lines) within private region
};

// ---------------------------------------------------------------------
// Benchmark specs
// ---------------------------------------------------------------------

struct WorkloadSpec {
  std::string name;
  uint64_t private_bytes = 0;  // per-thread arrays (first-touched by owner)
  uint64_t shared_bytes = 0;   // globally shared data (mesh, input, ...)
  // How the shared region is first-touched. Master (default): the master
  // reads/creates it in a serial section, so all its pages carry the
  // *master's* colors and node (blackscholes-style input). Distributed:
  // an initialization parallel-for first-touches it slice-per-thread
  // (equake/lbm-style global arrays) -- the pattern the paper calls
  // "matches the per-thread first touch access allocation policy".
  bool shared_first_touch_distributed = false;
  uint64_t hot_bytes = 0;
  double hot_fraction = 0.0;
  double shared_fraction = 0.0;
  double write_fraction = 0.3;
  unsigned compute_per_access = 0;
  unsigned rounds = 4;                 // parallel sections
  uint64_t accesses_per_round = 0;     // per thread
  double imbalance = 0.0;              // intrinsic work skew across threads
  uint64_t serial_accesses_per_round = 0;  // master-only work between rounds
  unsigned serial_compute_per_access = 0;

  // Returns a copy with access counts/sizes scaled (tests use ~0.05).
  WorkloadSpec scaled(double factor) const;
};

// The paper's benchmarks (Section V.B) plus the synthetic of Section V.A.
WorkloadSpec lbm_spec();
WorkloadSpec art_spec();
WorkloadSpec equake_spec();
WorkloadSpec bodytrack_spec();
WorkloadSpec freqmine_spec();
WorkloadSpec blackscholes_spec();
// All six, in the paper's presentation order.
std::vector<WorkloadSpec> standard_suite();

// ---------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------

struct RunResult {
  std::string workload;
  core::Policy policy = core::Policy::kBuddy;
  unsigned threads = 0;
  Cycles total_runtime = 0;       // end-to-end, including init and serial
  Cycles total_idle = 0;          // sum over threads, parallel barriers
  std::vector<Cycles> thread_busy;
  std::vector<Cycles> thread_idle;
  // Allocation behaviour.
  uint64_t pages_touched = 0;
  uint64_t remote_pages = 0;
  uint64_t fallback_pages = 0;
  uint64_t colored_pages = 0;
  // Memory-system behaviour.
  double dram_remote_fraction = 0;  // of DRAM accesses
  double llc_miss_rate = 0;
  double avg_access_latency = 0;
  double row_hit_rate = 0;
  // RAS behaviour (all zero unless a DRAM fault model or ECC failpoints
  // were active during the run).
  uint64_t frames_poisoned = 0;
  uint64_t pages_migrated = 0;
  uint64_t colors_retired = 0;
  // Fast-path cache behaviour (all zero unless the kernel's page
  // magazines / batched refill or the heap's thread caches were on).
  uint64_t magazine_hits = 0;
  uint64_t magazine_misses = 0;
  uint64_t magazine_drains = 0;
  uint64_t batch_refills = 0;
  uint64_t tcache_hits = 0;
  uint64_t tcache_flushes = 0;
  uint64_t tcache_node_flushes = 0;  // flushes routed to the frame's node
  // Allocation offload engine behaviour (all zero unless offload.enabled
  // and an OffloadEngine serviced the run's tasks).
  uint64_t ring_alloc_hits = 0;   // colored allocs served by a ring pop
  uint64_t ring_full_stalls = 0;  // frees that found the request ring full
  uint64_t prefault_pages = 0;    // frames the engine stocked ahead
  uint64_t batches_drained = 0;   // service rounds that moved frames
  // Live re-coloring swaps applied during the run (Kernel::recolor_task;
  // non-zero only when a ColorGuard or advisor healed mid-run).
  uint64_t recolor_calls = 0;
};

// Executes one benchmark run: fresh machine, `cores[i]` hosts thread i,
// policy applied via the paper's mmap protocol, phases simulated, all
// metrics collected.
class WorkloadRunner {
 public:
  explicit WorkloadRunner(const core::MachineConfig& machine);

  RunResult run(const WorkloadSpec& spec, core::Policy policy,
                std::span<const unsigned> cores, uint64_t seed);

 private:
  core::MachineConfig machine_;
};

// Runs the synthetic benchmark of Section V.A (one thread per core in
// `cores`, `bytes` per thread).
struct SyntheticResult {
  Cycles cycles = 0;  // wall time of the parallel section
  double dram_remote_fraction = 0;
  double row_hit_rate = 0;
  double avg_access_latency = 0;
  double avg_queue_wait = 0;  // controller queue cycles per DRAM access
  double avg_link_wait = 0;   // cross-socket link cycles per DRAM access
};
SyntheticResult run_synthetic(const core::MachineConfig& machine,
                              core::Policy policy,
                              std::span<const unsigned> cores, uint64_t bytes,
                              uint64_t seed);

}  // namespace tint::runtime

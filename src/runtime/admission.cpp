#include "runtime/admission.h"

#include <algorithm>

#include "sim/controller.h"
#include "util/stats.h"

namespace tint::runtime {

namespace {
// Static storage for AdmissionTicket::reason -- tickets outlive the call.
constexpr const char* kReasonGranted = "granted";
constexpr const char* kReasonUncolored = "admitted uncolored";
constexpr const char* kReasonDowngraded = "bank colors exhausted: downgraded";
constexpr const char* kReasonBanksDry = "bank colors exhausted";
constexpr const char* kReasonLlcsDry = "llc colors exhausted";
constexpr const char* kReasonNoNode = "no node online";
constexpr const char* kReasonGrantFailed = "color grant rejected by kernel";
constexpr const char* kReasonWaitlisted = "waitlisted";
constexpr const char* kReasonPromoted = "promoted to full burstable grant";
}  // namespace

const char* to_string(TenantClass cls) {
  switch (cls) {
    case TenantClass::kGuaranteed: return "guaranteed";
    case TenantClass::kBurstable: return "burstable";
    case TenantClass::kBestEffort: return "best_effort";
  }
  return "?";
}

AdmissionController::AdmissionController(os::Kernel& kernel,
                                         const sim::MemorySystem& memsys,
                                         AdmissionConfig cfg)
    : kernel_(kernel),
      memsys_(memsys),
      topo_(kernel.topology()),
      cfg_(cfg),
      rng_(cfg.seed) {
  const unsigned nodes = topo_.num_nodes();
  prev_node_accesses_.assign(nodes, 0);
  node_ewma_.assign(nodes, 0.0);
  core_cursor_.assign(nodes, 0);
}

void AdmissionController::observe() {
  std::vector<ShrinkPlan> plans;
  {
    std::lock_guard lk(mu_);
    for (unsigned node = 0; node < topo_.num_nodes(); ++node) {
      const sim::MemoryController& mc = memsys_.controller(node);
      uint64_t total = 0;
      for (unsigned b = 0; b < mc.num_local_banks(); ++b)
        total += mc.bank_accesses(b);
      // Counters reset on MemorySystem::reset(): a reading below the
      // stored previous re-anchors with an idle delta.
      const uint64_t delta =
          total >= prev_node_accesses_[node] ? total - prev_node_accesses_[node]
                                             : 0;
      prev_node_accesses_[node] = total;
      node_ewma_[node] = cfg_.ewma_alpha * static_cast<double>(delta) +
                         (1.0 - cfg_.ewma_alpha) * node_ewma_[node];
    }
    tick_locked();
    if (cfg_.elastic_shrink && guard_ != nullptr) {
      // Palette-scan trigger (a): tenants over their class budget give
      // the excess back.
      plans = plan_overbudget_shrink_locked();
      // Trigger (b): the earliest-deadline waitlisted arrival, if any,
      // gets a shrink plan that would unblock it.
      if (cfg_.waitlist && !waitlist_.empty()) {
        const auto head = std::min_element(
            waitlist_.begin(), waitlist_.end(),
            [](const Waiting& a, const Waiting& b) {
              if (a.deadline != b.deadline) return a.deadline < b.deadline;
              return a.wait_id < b.wait_id;
            });
        if (head->cls != TenantClass::kBestEffort) {
          const std::vector<ShrinkPlan> more =
              plan_admit_shrink_locked(head->cls);
          plans.insert(plans.end(), more.begin(), more.end());
        }
      }
    }
  }
  // Guard calls happen outside mu_ (rank kGuard sits below kAdmission).
  if (!plans.empty()) execute_shrinks(plans);
  std::vector<AdmissionTicket> granted;
  {
    std::lock_guard lk(mu_);
    if (cfg_.waitlist) retry_waitlist_locked(granted);
    promote_locked(granted);
  }
  apply_guard_priorities(granted);
}

double AdmissionController::node_headroom(unsigned node) const {
  std::lock_guard lk(mu_);
  const double cap = static_cast<double>(cfg_.channel_capacity) *
                     static_cast<double>(topo_.channels_per_node);
  if (cap <= 0.0) return 1.0;
  return std::max(0.0, 1.0 - node_ewma_[node] / cap);
}

size_t AdmissionController::live_tenants() const {
  std::lock_guard lk(mu_);
  return tenants_.size();
}

std::vector<uint16_t> AdmissionController::free_banks_locked(
    unsigned node, const std::vector<uint8_t>& used_banks) const {
  const hw::AddressMapping& map = kernel_.mapping();
  std::vector<uint16_t> free;
  for (unsigned i = 0; i < topo_.banks_per_node(); ++i) {
    const unsigned c = map.make_bank_color(node, i);
    if (used_banks[c] || kernel_.color_retired(c)) continue;
    free.push_back(static_cast<uint16_t>(c));
  }
  return free;
}

std::vector<uint8_t> AdmissionController::free_llcs_locked(
    const std::vector<uint8_t>& used_llcs) const {
  std::vector<uint8_t> free;
  for (unsigned c = 0; c < kernel_.mapping().num_llc_colors(); ++c)
    if (!used_llcs[c]) free.push_back(static_cast<uint8_t>(c));
  return free;
}

std::vector<unsigned> AdmissionController::placement_order_locked(
    const std::vector<uint8_t>& used_banks) const {
  // Bandwidth-aware placement: score = headroom * (1 + free colors).
  // Headroom dominates when the palette is roughly balanced -- a node
  // whose controllers run near the modeled channel capacity stops
  // receiving tenants even while it still has free colors. Ties break
  // on the lower node id, keeping placement deterministic.
  const double cap = static_cast<double>(cfg_.channel_capacity) *
                     static_cast<double>(topo_.channels_per_node);
  struct Scored {
    unsigned node;
    double score;
  };
  std::vector<Scored> scored;
  for (unsigned node = 0; node < topo_.num_nodes(); ++node) {
    if (!kernel_.node_online(node)) continue;
    const double headroom =
        cap > 0.0 ? std::max(0.0, 1.0 - node_ewma_[node] / cap) : 1.0;
    const double free =
        static_cast<double>(free_banks_locked(node, used_banks).size());
    scored.push_back({node, headroom * (1.0 + free)});
  }
  std::sort(scored.begin(), scored.end(), [](const Scored& a, const Scored& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.node < b.node;
  });
  std::vector<unsigned> order;
  order.reserve(scored.size());
  for (const Scored& s : scored) order.push_back(s.node);
  return order;
}

os::TaskId AdmissionController::spawn_locked(unsigned node) {
  // Round-robin over the node's cores, so concurrent tenants on one
  // node spread across its simulated cores.
  const unsigned cores = topo_.num_cores();
  unsigned picked = 0, seen = 0;
  const unsigned want = core_cursor_[node];
  for (unsigned core = 0; core < cores; ++core) {
    if (topo_.node_of_core(core) != node) continue;
    if (seen == want) picked = core;
    ++seen;
  }
  if (seen == 0) picked = 0;  // cannot happen on a well-formed topology
  else core_cursor_[node] = (want + 1) % seen;
  return kernel_.create_task(picked);
}

AdmissionTicket AdmissionController::admit(TenantClass cls,
                                           uint64_t deadline_ticks) {
  AdmissionTicket t;
  std::vector<ShrinkPlan> plans;
  {
    std::lock_guard lk(mu_);
    tick_locked();
    t = attempt_locked(cls);
    if (!t.admitted && cfg_.elastic_shrink && guard_ != nullptr &&
        cls != TenantClass::kBestEffort)
      plans = plan_admit_shrink_locked(cls);
  }
  if (!t.admitted && !plans.empty()) {
    // The shrink swaps free the colors immediately (only the page
    // dribble is asynchronous), so one retry under the lock suffices.
    // Guard calls happen with mu_ released -- rank order.
    execute_shrinks(plans);
    std::lock_guard lk(mu_);
    t = attempt_locked(cls);
  }
  if (!t.admitted) {
    std::lock_guard lk(mu_);
    if (cfg_.waitlist) {
      t.waitlisted = true;
      t.wait_id = next_wait_id_++;
      t.deadline = clock_ + (deadline_ticks ? deadline_ticks
                                            : cfg_.waitlist_deadline_ticks);
      waitlist_.push_back({t.wait_id, cls, t.deadline});
      accum_[static_cast<unsigned>(cls)].slo.waitlisted++;
      stats_.waitlist_enqueued.fetch_add(1, std::memory_order_relaxed);
      t.reason = kReasonWaitlisted;
    } else {
      accum_[static_cast<unsigned>(cls)].slo.rejected++;
      stats_.rejects.fetch_add(1, std::memory_order_relaxed);
    }
  }
  // Guard priorities are set outside the registry lock: rank kGuard sits
  // below kAdmission and must never be acquired while it is held.
  if (t.admitted) apply_guard_priorities({t});
  return t;
}

AdmissionTicket AdmissionController::attempt_locked(TenantClass cls) {
  AdmissionTicket ticket;
  ticket.requested = cls;
  ticket.granted = cls;

  // One scan of the live tasks yields the claimed palette. Dead tasks
  // do not pin colors: reap_task clears the TCB claim, and a task that
  // exited but was not reaped yet is skipped via task_alive. Scanning
  // the kernel (not our registry) also counts colors claimed outside
  // this controller -- manual Session::apply_colors users coexist.
  const hw::AddressMapping& map = kernel_.mapping();
  std::vector<uint8_t> used_banks(map.num_bank_colors(), 0);
  std::vector<uint8_t> used_llcs(map.num_llc_colors(), 0);
  for (os::TaskId id = 0; id < kernel_.num_tasks(); ++id) {
    if (!kernel_.task_alive(id)) continue;
    const os::Task::ColorSet& cs = kernel_.task(id).colors();
    for (const uint16_t c : cs.mem_list) used_banks[c] = 1;
    for (const uint8_t c : cs.llc_list) used_llcs[c] = 1;
  }

  const std::vector<unsigned> order = placement_order_locked(used_banks);
  if (order.empty()) {
    ticket.reason = kReasonNoNode;
    return ticket;
  }

  const auto grant = [&](unsigned node, std::vector<uint16_t> banks,
                         std::vector<uint8_t> llcs,
                         const char* reason) -> AdmissionTicket& {
    ticket.task = spawn_locked(node);
    if (!banks.empty() || !llcs.empty()) {
      if (!kernel_.recolor_task(ticket.task, {}, banks, {}, llcs)) {
        // The kernel refused the claim (e.g. a color retired between the
        // scan and the swap). Reap the fresh task; fail cleanly (the
        // caller decides whether that means reject or waitlist).
        kernel_.reap_task(ticket.task);
        ticket.reason = kReasonGrantFailed;
        return ticket;
      }
    }
    ticket.admitted = true;
    ticket.node = node;
    ticket.banks = std::move(banks);
    ticket.llcs = std::move(llcs);
    ticket.reason = reason;
    tenants_[ticket.task] =
        Tenant{ticket.requested, ticket.granted, node, !ticket.banks.empty()};
    accum_[static_cast<unsigned>(ticket.granted)].slo.admitted++;
    stats_.admits.fetch_add(1, std::memory_order_relaxed);
    if (ticket.downgraded) {
      accum_[static_cast<unsigned>(ticket.requested)].slo.downgraded_away++;
      stats_.downgrades.fetch_add(1, std::memory_order_relaxed);
    }
    return ticket;
  };

  switch (cls) {
    case TenantClass::kGuaranteed: {
      const std::vector<uint8_t> llcs_all = free_llcs_locked(used_llcs);
      if (llcs_all.size() < cfg_.guaranteed.llcs) {
        ticket.reason = kReasonLlcsDry;
        return ticket;
      }
      for (const unsigned node : order) {
        std::vector<uint16_t> banks = free_banks_locked(node, used_banks);
        if (banks.size() < cfg_.guaranteed.banks) continue;
        banks.resize(cfg_.guaranteed.banks);
        std::vector<uint8_t> llcs(llcs_all.begin(),
                                  llcs_all.begin() + cfg_.guaranteed.llcs);
        return grant(node, std::move(banks), std::move(llcs), kReasonGranted);
      }
      // No single node can honor the full budget: fail, never split a
      // guaranteed tenant across nodes or hand it a partial palette.
      ticket.reason = kReasonBanksDry;
      return ticket;
    }
    case TenantClass::kBurstable: {
      for (const unsigned node : order) {
        std::vector<uint16_t> banks = free_banks_locked(node, used_banks);
        if (banks.empty()) continue;
        if (banks.size() > cfg_.burstable.banks)
          banks.resize(cfg_.burstable.banks);
        std::vector<uint8_t> llcs = free_llcs_locked(used_llcs);
        if (llcs.size() > cfg_.burstable.llcs) llcs.resize(cfg_.burstable.llcs);
        return grant(node, std::move(banks), std::move(llcs), kReasonGranted);
      }
      if (!cfg_.allow_downgrade) {
        ticket.reason = kReasonBanksDry;
        return ticket;
      }
      ticket.granted = TenantClass::kBestEffort;
      ticket.downgraded = true;
      return grant(order.front(), {}, {}, kReasonDowngraded);
    }
    case TenantClass::kBestEffort:
      return grant(order.front(), {}, {}, kReasonUncolored);
  }
  return ticket;  // unreachable
}

void AdmissionController::tick_locked() {
  ++clock_;
  auto it = waitlist_.begin();
  while (it != waitlist_.end()) {
    if (clock_ > it->deadline) {
      // The deadline passed before the palette freed: the arrival is a
      // miss *and* a reject -- both ledgers see it, on the requested
      // class.
      ClassSlo& slo = accum_[static_cast<unsigned>(it->cls)].slo;
      slo.deadline_missed++;
      slo.rejected++;
      stats_.waitlist_expired.fetch_add(1, std::memory_order_relaxed);
      stats_.rejects.fetch_add(1, std::memory_order_relaxed);
      it = waitlist_.erase(it);
    } else {
      ++it;
    }
  }
}

std::vector<AdmissionController::ShrinkPlan>
AdmissionController::plan_admit_shrink_locked(TenantClass cls) {
  std::vector<ShrinkPlan> plans;
  if (cls == TenantClass::kBestEffort) return plans;  // uncolored: nothing to free

  const hw::AddressMapping& map = kernel_.mapping();
  std::vector<uint8_t> used_banks(map.num_bank_colors(), 0);
  std::vector<uint8_t> used_llcs(map.num_llc_colors(), 0);
  for (os::TaskId id = 0; id < kernel_.num_tasks(); ++id) {
    if (!kernel_.task_alive(id)) continue;
    const os::Task::ColorSet& cs = kernel_.task(id).colors();
    for (const uint16_t c : cs.mem_list) used_banks[c] = 1;
    for (const uint8_t c : cs.llc_list) used_llcs[c] = 1;
  }
  // Shrinks free *bank* colors only: when the blocker is the LLC
  // palette no shrink unblocks the admit, so plan nothing.
  if (cls == TenantClass::kGuaranteed &&
      free_llcs_locked(used_llcs).size() < cfg_.guaranteed.llcs)
    return plans;

  // A guaranteed admit needs its full bank budget on one node; a
  // burstable admit unblocks with a single free bank anywhere.
  const unsigned need =
      cls == TenantClass::kGuaranteed ? cfg_.guaranteed.banks : 1;
  const unsigned floor = std::max(1u, cfg_.shrink_floor_banks);

  struct Victim {
    os::TaskId id;
    unsigned spare;   // held banks above the floor
    size_t resident;  // colored pages to migrate == measured shrink cost
  };
  for (const unsigned node : placement_order_locked(used_banks)) {
    const size_t free = free_banks_locked(node, used_banks).size();
    if (free >= need) continue;  // attempt_locked already failed here: stale
    const unsigned deficit = need - static_cast<unsigned>(free);

    // Candidate victims: live colored tenants on this node granted at a
    // *strictly lower* class (the priority shield) with spare banks.
    std::vector<Victim> victims;
    for (const auto& [id, tenant] : tenants_) {
      if (tenant.node != node || !tenant.colored) continue;
      if (static_cast<unsigned>(tenant.granted) <= static_cast<unsigned>(cls))
        continue;
      if (!kernel_.task_alive(id)) continue;
      const auto& held = kernel_.task(id).colors().mem_list;
      if (held.size() <= floor) continue;
      size_t resident = 0;
      for (const uint16_t c : held)
        resident += kernel_.pages_of_task_color(id, c).size();
      victims.push_back(
          {id, static_cast<unsigned>(held.size()) - floor, resident});
    }
    // Measured-cheapest first: fewest resident colored pages (least
    // migration debt); ties break on the lower task id -- deterministic.
    std::sort(victims.begin(), victims.end(),
              [](const Victim& a, const Victim& b) {
                if (a.resident != b.resident) return a.resident < b.resident;
                return a.id < b.id;
              });
    unsigned covered = 0;
    std::vector<ShrinkPlan> node_plans;
    for (const Victim& v : victims) {
      if (covered >= deficit) break;
      const unsigned drop = std::min(v.spare, deficit - covered);
      node_plans.push_back({v.id, drop, floor});
      covered += drop;
    }
    if (covered >= deficit) return node_plans;
  }
  return plans;  // infeasible everywhere: never shrink gratuitously
}

std::vector<AdmissionController::ShrinkPlan>
AdmissionController::plan_overbudget_shrink_locked() {
  std::vector<ShrinkPlan> plans;
  std::vector<os::TaskId> ids;
  ids.reserve(tenants_.size());
  for (const auto& [id, tenant] : tenants_)
    if (tenant.colored) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  for (const os::TaskId id : ids) {
    const Tenant& tenant = tenants_[id];
    if (!kernel_.task_alive(id)) continue;
    const unsigned budget = tenant.granted == TenantClass::kGuaranteed
                                ? cfg_.guaranteed.banks
                                : tenant.granted == TenantClass::kBurstable
                                      ? cfg_.burstable.banks
                                      : 0;
    // Shrink back to the class budget, never below the global floor --
    // a tenant's budget *is* its class minimum here.
    const unsigned floor = std::max({1u, cfg_.shrink_floor_banks, budget});
    const size_t held = kernel_.task(id).colors().mem_list.size();
    if (held <= floor) continue;
    plans.push_back({id, static_cast<unsigned>(held) - floor, floor});
  }
  return plans;
}

void AdmissionController::retry_waitlist_locked(
    std::vector<AdmissionTicket>& granted) {
  if (waitlist_.empty()) return;
  // Earliest deadline first; the enqueue id breaks ties so two entries
  // with one deadline retry in arrival order.
  std::stable_sort(waitlist_.begin(), waitlist_.end(),
                   [](const Waiting& a, const Waiting& b) {
                     if (a.deadline != b.deadline)
                       return a.deadline < b.deadline;
                     return a.wait_id < b.wait_id;
                   });
  auto it = waitlist_.begin();
  while (it != waitlist_.end()) {
    AdmissionTicket t = attempt_locked(it->cls);
    if (!t.admitted) {
      // Still blocked: keep the entry; a failed retry is not a reject.
      ++it;
      continue;
    }
    t.waitlisted = true;
    t.wait_id = it->wait_id;
    t.deadline = it->deadline;
    accum_[static_cast<unsigned>(it->cls)].slo.admitted_from_waitlist++;
    stats_.waitlist_admitted.fetch_add(1, std::memory_order_relaxed);
    ready_.emplace(it->wait_id, t);
    granted.push_back(std::move(t));
    it = waitlist_.erase(it);
  }
}

void AdmissionController::promote_locked(
    std::vector<AdmissionTicket>& granted) {
  if (!cfg_.promote_downgraded) return;
  std::vector<os::TaskId> ids;
  for (const auto& [id, tenant] : tenants_)
    if (tenant.requested == TenantClass::kBurstable &&
        tenant.granted == TenantClass::kBestEffort)
      ids.push_back(id);
  if (ids.empty()) return;
  std::sort(ids.begin(), ids.end());

  const hw::AddressMapping& map = kernel_.mapping();
  std::vector<uint8_t> used_banks(map.num_bank_colors(), 0);
  std::vector<uint8_t> used_llcs(map.num_llc_colors(), 0);
  for (os::TaskId id = 0; id < kernel_.num_tasks(); ++id) {
    if (!kernel_.task_alive(id)) continue;
    const os::Task::ColorSet& cs = kernel_.task(id).colors();
    for (const uint16_t c : cs.mem_list) used_banks[c] = 1;
    for (const uint8_t c : cs.llc_list) used_llcs[c] = 1;
  }
  for (const os::TaskId id : ids) {
    Tenant& tenant = tenants_[id];
    if (!kernel_.task_alive(id)) continue;
    std::vector<uint16_t> banks = free_banks_locked(tenant.node, used_banks);
    std::vector<uint8_t> llcs = free_llcs_locked(used_llcs);
    // Promotion is all-or-nothing: the *full* burstable grant must fit
    // on the node the tenant already runs on (no cross-node move).
    if (banks.size() < cfg_.burstable.banks ||
        llcs.size() < cfg_.burstable.llcs)
      continue;
    banks.resize(cfg_.burstable.banks);
    llcs.resize(cfg_.burstable.llcs);
    if (!kernel_.recolor_task(id, {}, banks, {}, llcs)) continue;
    for (const uint16_t c : banks) used_banks[c] = 1;
    for (const uint8_t c : llcs) used_llcs[c] = 1;
    tenant.granted = TenantClass::kBurstable;
    tenant.colored = true;
    accum_[static_cast<unsigned>(TenantClass::kBurstable)].slo.promoted++;
    stats_.promotions.fetch_add(1, std::memory_order_relaxed);
    AdmissionTicket t;
    t.admitted = true;
    t.task = id;
    t.requested = TenantClass::kBurstable;
    t.granted = TenantClass::kBurstable;
    t.node = tenant.node;
    t.banks = std::move(banks);
    t.llcs = std::move(llcs);
    t.reason = kReasonPromoted;
    granted.push_back(std::move(t));
  }
}

void AdmissionController::execute_shrinks(
    const std::vector<ShrinkPlan>& plans) {
  if (guard_ == nullptr) return;
  for (const ShrinkPlan& p : plans) {
    stats_.shrink_requests.fetch_add(1, std::memory_order_relaxed);
    // The guard may refuse (victim mid-heal, idle color, dead task):
    // freed == 0 then, and the caller's retry simply fails again.
    const unsigned freed = guard_->start_shrink(p.victim, p.drop, p.floor);
    stats_.shrink_banks_freed.fetch_add(freed, std::memory_order_relaxed);
  }
}

void AdmissionController::apply_guard_priorities(
    const std::vector<AdmissionTicket>& granted) {
  if (guard_ == nullptr) return;
  for (const AdmissionTicket& t : granted) {
    if (!t.admitted) continue;
    unsigned prio = cfg_.priority_best_effort;
    if (t.granted == TenantClass::kGuaranteed)
      prio = cfg_.priority_guaranteed;
    else if (t.granted == TenantClass::kBurstable)
      prio = cfg_.priority_burstable;
    guard_->set_tenant_priority(t.task, prio);
  }
}

AdmissionController::WaitOutcome AdmissionController::claim(uint64_t wait_id) {
  std::lock_guard lk(mu_);
  WaitOutcome out;
  const auto it = ready_.find(wait_id);
  if (it != ready_.end()) {
    out.state = WaitOutcome::State::kReady;
    out.ticket = it->second;
    ready_.erase(it);
    return out;
  }
  for (const Waiting& w : waitlist_) {
    if (w.wait_id == wait_id) {
      out.state = WaitOutcome::State::kPending;
      return out;
    }
  }
  return out;  // kGone: expired, cancelled, unknown or already claimed
}

bool AdmissionController::cancel_wait(uint64_t wait_id) {
  os::TaskId orphan = 0;
  bool tear = false;
  {
    std::lock_guard lk(mu_);
    for (auto it = waitlist_.begin(); it != waitlist_.end(); ++it) {
      if (it->wait_id != wait_id) continue;
      waitlist_.erase(it);
      stats_.waitlist_cancelled.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    const auto rit = ready_.find(wait_id);
    if (rit == ready_.end()) return false;
    orphan = rit->second.task;
    ready_.erase(rit);
    stats_.waitlist_cancelled.fetch_add(1, std::memory_order_relaxed);
    tear = true;
  }
  // Admitted-but-unclaimed: the tenant is live, so tear it down (the
  // caller never saw the ticket). teardown() re-acquires mu_.
  if (tear) teardown(orphan);
  return true;
}

unsigned AdmissionController::retry_waitlist() {
  std::vector<AdmissionTicket> granted;
  {
    std::lock_guard lk(mu_);
    retry_waitlist_locked(granted);
  }
  apply_guard_priorities(granted);
  return static_cast<unsigned>(granted.size());
}

size_t AdmissionController::waitlist_depth() const {
  std::lock_guard lk(mu_);
  return waitlist_.size();
}

AdmissionController::TeardownReport AdmissionController::teardown(
    os::TaskId task, std::span<const double> latency_samples) {
  TeardownReport rep;
  std::vector<AdmissionTicket> granted;
  {
    std::lock_guard lk(mu_);
    const auto it = tenants_.find(task);
    if (it == tenants_.end()) return rep;
    const Tenant tenant = it->second;
    tenants_.erase(it);
    rep.known = true;

    // The tenant was created by admit(), so its lifetime totals are its
    // alloc-stats snapshot -- fold them into the class SLO before the
    // reap (the Task object itself outlives this, but the rollup
    // belongs to the moment of departure).
    const os::TaskAllocStats::Snapshot s =
        kernel_.task(task).alloc_stats().snapshot();
    ClassAccum& acc = accum_[static_cast<unsigned>(tenant.granted)];
    acc.slo.completed++;
    acc.slo.page_faults += s.page_faults;
    acc.slo.colored_pages += s.colored_pages;
    acc.slo.default_pages += s.default_pages;
    acc.slo.widened_pages += s.widened_pages;
    acc.slo.scavenged_pages += s.scavenged_pages;
    acc.slo.failed_allocs += s.failed_allocs;
    if (tenant.colored) acc.slo.isolation_violations += s.fallback_pages;

    // Algorithm-R reservoir keeps the latency rollup O(1) per tenant.
    for (const double x : latency_samples) {
      const uint64_t seen = acc.slo.latency_samples++;
      if (acc.reservoir.size() < cfg_.latency_reservoir) {
        acc.reservoir.push_back(x);
      } else {
        const uint64_t j = rng_.next_below(seen + 1);
        if (j < acc.reservoir.size()) acc.reservoir[j] = x;
      }
    }

    // Crash-consistent departure: dead-first, then VMAs, magazine and
    // color claims -- all inside the registry lock so a concurrent
    // admit never sees a half-released palette as claimed.
    rep.reap = kernel_.reap_task(task);

    // The departure freed palette: advance the clock, hand the colors
    // to the earliest-deadline waiters, then to downgraded burstables.
    tick_locked();
    if (cfg_.waitlist) retry_waitlist_locked(granted);
    promote_locked(granted);
  }
  if (guard_ != nullptr) guard_->set_tenant_priority(task, 0);
  apply_guard_priorities(granted);
  return rep;
}

SloReport AdmissionController::report() const {
  std::lock_guard lk(mu_);
  SloReport rep;
  for (unsigned c = 0; c < kNumTenantClasses; ++c) {
    rep.cls[c] = accum_[c].slo;
    std::vector<double> sorted = accum_[c].reservoir;
    if (!sorted.empty()) {
      std::sort(sorted.begin(), sorted.end());
      rep.cls[c].p50_latency = tint::percentile(sorted, 50);
      rep.cls[c].p99_latency = tint::percentile(sorted, 99);
    }
    if (rep.cls[c].page_faults !=
        rep.cls[c].colored_pages + rep.cls[c].default_pages)
      rep.ladder_conserved = false;
  }
  return rep;
}

}  // namespace tint::runtime

#include "runtime/admission.h"

#include <algorithm>

#include "sim/controller.h"
#include "util/stats.h"

namespace tint::runtime {

namespace {
// Static storage for AdmissionTicket::reason -- tickets outlive the call.
constexpr const char* kReasonGranted = "granted";
constexpr const char* kReasonUncolored = "admitted uncolored";
constexpr const char* kReasonDowngraded = "bank colors exhausted: downgraded";
constexpr const char* kReasonBanksDry = "bank colors exhausted";
constexpr const char* kReasonLlcsDry = "llc colors exhausted";
constexpr const char* kReasonNoNode = "no node online";
constexpr const char* kReasonGrantFailed = "color grant rejected by kernel";
}  // namespace

const char* to_string(TenantClass cls) {
  switch (cls) {
    case TenantClass::kGuaranteed: return "guaranteed";
    case TenantClass::kBurstable: return "burstable";
    case TenantClass::kBestEffort: return "best_effort";
  }
  return "?";
}

AdmissionController::AdmissionController(os::Kernel& kernel,
                                         const sim::MemorySystem& memsys,
                                         AdmissionConfig cfg)
    : kernel_(kernel),
      memsys_(memsys),
      topo_(kernel.topology()),
      cfg_(cfg),
      rng_(cfg.seed) {
  const unsigned nodes = topo_.num_nodes();
  prev_node_accesses_.assign(nodes, 0);
  node_ewma_.assign(nodes, 0.0);
  core_cursor_.assign(nodes, 0);
}

void AdmissionController::observe() {
  std::lock_guard lk(mu_);
  for (unsigned node = 0; node < topo_.num_nodes(); ++node) {
    const sim::MemoryController& mc = memsys_.controller(node);
    uint64_t total = 0;
    for (unsigned b = 0; b < mc.num_local_banks(); ++b)
      total += mc.bank_accesses(b);
    // Counters reset on MemorySystem::reset(): a reading below the
    // stored previous re-anchors with an idle delta.
    const uint64_t delta =
        total >= prev_node_accesses_[node] ? total - prev_node_accesses_[node]
                                           : 0;
    prev_node_accesses_[node] = total;
    node_ewma_[node] = cfg_.ewma_alpha * static_cast<double>(delta) +
                       (1.0 - cfg_.ewma_alpha) * node_ewma_[node];
  }
}

double AdmissionController::node_headroom(unsigned node) const {
  std::lock_guard lk(mu_);
  const double cap = static_cast<double>(cfg_.channel_capacity) *
                     static_cast<double>(topo_.channels_per_node);
  if (cap <= 0.0) return 1.0;
  return std::max(0.0, 1.0 - node_ewma_[node] / cap);
}

size_t AdmissionController::live_tenants() const {
  std::lock_guard lk(mu_);
  return tenants_.size();
}

std::vector<uint16_t> AdmissionController::free_banks_locked(
    unsigned node, const std::vector<uint8_t>& used_banks) const {
  const hw::AddressMapping& map = kernel_.mapping();
  std::vector<uint16_t> free;
  for (unsigned i = 0; i < topo_.banks_per_node(); ++i) {
    const unsigned c = map.make_bank_color(node, i);
    if (used_banks[c] || kernel_.color_retired(c)) continue;
    free.push_back(static_cast<uint16_t>(c));
  }
  return free;
}

std::vector<uint8_t> AdmissionController::free_llcs_locked(
    const std::vector<uint8_t>& used_llcs) const {
  std::vector<uint8_t> free;
  for (unsigned c = 0; c < kernel_.mapping().num_llc_colors(); ++c)
    if (!used_llcs[c]) free.push_back(static_cast<uint8_t>(c));
  return free;
}

std::vector<unsigned> AdmissionController::placement_order_locked(
    const std::vector<uint8_t>& used_banks) const {
  // Bandwidth-aware placement: score = headroom * (1 + free colors).
  // Headroom dominates when the palette is roughly balanced -- a node
  // whose controllers run near the modeled channel capacity stops
  // receiving tenants even while it still has free colors. Ties break
  // on the lower node id, keeping placement deterministic.
  const double cap = static_cast<double>(cfg_.channel_capacity) *
                     static_cast<double>(topo_.channels_per_node);
  struct Scored {
    unsigned node;
    double score;
  };
  std::vector<Scored> scored;
  for (unsigned node = 0; node < topo_.num_nodes(); ++node) {
    if (!kernel_.node_online(node)) continue;
    const double headroom =
        cap > 0.0 ? std::max(0.0, 1.0 - node_ewma_[node] / cap) : 1.0;
    const double free =
        static_cast<double>(free_banks_locked(node, used_banks).size());
    scored.push_back({node, headroom * (1.0 + free)});
  }
  std::sort(scored.begin(), scored.end(), [](const Scored& a, const Scored& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.node < b.node;
  });
  std::vector<unsigned> order;
  order.reserve(scored.size());
  for (const Scored& s : scored) order.push_back(s.node);
  return order;
}

os::TaskId AdmissionController::spawn_locked(unsigned node) {
  // Round-robin over the node's cores, so concurrent tenants on one
  // node spread across its simulated cores.
  const unsigned cores = topo_.num_cores();
  unsigned picked = 0, seen = 0;
  const unsigned want = core_cursor_[node];
  for (unsigned core = 0; core < cores; ++core) {
    if (topo_.node_of_core(core) != node) continue;
    if (seen == want) picked = core;
    ++seen;
  }
  if (seen == 0) picked = 0;  // cannot happen on a well-formed topology
  else core_cursor_[node] = (want + 1) % seen;
  return kernel_.create_task(picked);
}

AdmissionTicket AdmissionController::admit(TenantClass cls) {
  AdmissionTicket t;
  {
    std::lock_guard lk(mu_);
    t = admit_locked(cls);
  }
  // Guard priorities are set outside the registry lock: rank kGuard sits
  // below kAdmission and must never be acquired while it is held.
  if (t.admitted && guard_ != nullptr) {
    unsigned pri = cfg_.priority_best_effort;
    if (t.granted == TenantClass::kGuaranteed) pri = cfg_.priority_guaranteed;
    else if (t.granted == TenantClass::kBurstable) pri = cfg_.priority_burstable;
    guard_->set_tenant_priority(t.task, pri);
  }
  return t;
}

AdmissionTicket AdmissionController::admit_locked(TenantClass cls) {
  AdmissionTicket ticket;
  ticket.requested = cls;
  ticket.granted = cls;

  // One scan of the live tasks yields the claimed palette. Dead tasks
  // do not pin colors: reap_task clears the TCB claim, and a task that
  // exited but was not reaped yet is skipped via task_alive. Scanning
  // the kernel (not our registry) also counts colors claimed outside
  // this controller -- manual Session::apply_colors users coexist.
  const hw::AddressMapping& map = kernel_.mapping();
  std::vector<uint8_t> used_banks(map.num_bank_colors(), 0);
  std::vector<uint8_t> used_llcs(map.num_llc_colors(), 0);
  for (os::TaskId id = 0; id < kernel_.num_tasks(); ++id) {
    if (!kernel_.task_alive(id)) continue;
    const os::Task::ColorSet& cs = kernel_.task(id).colors();
    for (const uint16_t c : cs.mem_list) used_banks[c] = 1;
    for (const uint8_t c : cs.llc_list) used_llcs[c] = 1;
  }

  const std::vector<unsigned> order = placement_order_locked(used_banks);
  if (order.empty()) {
    ticket.reason = kReasonNoNode;
    accum_[static_cast<unsigned>(cls)].slo.rejected++;
    return ticket;
  }

  const auto grant = [&](unsigned node, std::vector<uint16_t> banks,
                         std::vector<uint8_t> llcs,
                         const char* reason) -> AdmissionTicket& {
    ticket.task = spawn_locked(node);
    if (!banks.empty() || !llcs.empty()) {
      if (!kernel_.recolor_task(ticket.task, {}, banks, {}, llcs)) {
        // The kernel refused the claim (e.g. a color retired between the
        // scan and the swap). Reap the fresh task; reject cleanly.
        kernel_.reap_task(ticket.task);
        ticket.reason = kReasonGrantFailed;
        accum_[static_cast<unsigned>(cls)].slo.rejected++;
        return ticket;
      }
    }
    ticket.admitted = true;
    ticket.node = node;
    ticket.banks = std::move(banks);
    ticket.llcs = std::move(llcs);
    ticket.reason = reason;
    tenants_[ticket.task] =
        Tenant{ticket.requested, ticket.granted, node, !ticket.banks.empty()};
    accum_[static_cast<unsigned>(ticket.granted)].slo.admitted++;
    if (ticket.downgraded)
      accum_[static_cast<unsigned>(ticket.requested)].slo.downgraded_away++;
    return ticket;
  };

  switch (cls) {
    case TenantClass::kGuaranteed: {
      const std::vector<uint8_t> llcs_all = free_llcs_locked(used_llcs);
      if (llcs_all.size() < cfg_.guaranteed.llcs) {
        ticket.reason = kReasonLlcsDry;
        accum_[static_cast<unsigned>(cls)].slo.rejected++;
        return ticket;
      }
      for (const unsigned node : order) {
        std::vector<uint16_t> banks = free_banks_locked(node, used_banks);
        if (banks.size() < cfg_.guaranteed.banks) continue;
        banks.resize(cfg_.guaranteed.banks);
        std::vector<uint8_t> llcs(llcs_all.begin(),
                                  llcs_all.begin() + cfg_.guaranteed.llcs);
        return grant(node, std::move(banks), std::move(llcs), kReasonGranted);
      }
      // No single node can honor the full budget: reject, never split a
      // guaranteed tenant across nodes or hand it a partial palette.
      ticket.reason = kReasonBanksDry;
      accum_[static_cast<unsigned>(cls)].slo.rejected++;
      return ticket;
    }
    case TenantClass::kBurstable: {
      for (const unsigned node : order) {
        std::vector<uint16_t> banks = free_banks_locked(node, used_banks);
        if (banks.empty()) continue;
        if (banks.size() > cfg_.burstable.banks)
          banks.resize(cfg_.burstable.banks);
        std::vector<uint8_t> llcs = free_llcs_locked(used_llcs);
        if (llcs.size() > cfg_.burstable.llcs) llcs.resize(cfg_.burstable.llcs);
        return grant(node, std::move(banks), std::move(llcs), kReasonGranted);
      }
      if (!cfg_.allow_downgrade) {
        ticket.reason = kReasonBanksDry;
        accum_[static_cast<unsigned>(cls)].slo.rejected++;
        return ticket;
      }
      ticket.granted = TenantClass::kBestEffort;
      ticket.downgraded = true;
      return grant(order.front(), {}, {}, kReasonDowngraded);
    }
    case TenantClass::kBestEffort:
      return grant(order.front(), {}, {}, kReasonUncolored);
  }
  return ticket;  // unreachable
}

AdmissionController::TeardownReport AdmissionController::teardown(
    os::TaskId task, std::span<const double> latency_samples) {
  TeardownReport rep;
  {
    std::lock_guard lk(mu_);
    const auto it = tenants_.find(task);
    if (it == tenants_.end()) return rep;
    const Tenant tenant = it->second;
    tenants_.erase(it);
    rep.known = true;

    // The tenant was created by admit(), so its lifetime totals are its
    // alloc-stats snapshot -- fold them into the class SLO before the
    // reap (the Task object itself outlives this, but the rollup
    // belongs to the moment of departure).
    const os::TaskAllocStats::Snapshot s =
        kernel_.task(task).alloc_stats().snapshot();
    ClassAccum& acc = accum_[static_cast<unsigned>(tenant.granted)];
    acc.slo.completed++;
    acc.slo.page_faults += s.page_faults;
    acc.slo.colored_pages += s.colored_pages;
    acc.slo.default_pages += s.default_pages;
    acc.slo.widened_pages += s.widened_pages;
    acc.slo.scavenged_pages += s.scavenged_pages;
    acc.slo.failed_allocs += s.failed_allocs;
    if (tenant.colored) acc.slo.isolation_violations += s.fallback_pages;

    // Algorithm-R reservoir keeps the latency rollup O(1) per tenant.
    for (const double x : latency_samples) {
      const uint64_t seen = acc.slo.latency_samples++;
      if (acc.reservoir.size() < cfg_.latency_reservoir) {
        acc.reservoir.push_back(x);
      } else {
        const uint64_t j = rng_.next_below(seen + 1);
        if (j < acc.reservoir.size()) acc.reservoir[j] = x;
      }
    }

    // Crash-consistent departure: dead-first, then VMAs, magazine and
    // color claims -- all inside the registry lock so a concurrent
    // admit never sees a half-released palette as claimed.
    rep.reap = kernel_.reap_task(task);
  }
  if (guard_ != nullptr) guard_->set_tenant_priority(task, 0);
  return rep;
}

SloReport AdmissionController::report() const {
  std::lock_guard lk(mu_);
  SloReport rep;
  for (unsigned c = 0; c < kNumTenantClasses; ++c) {
    rep.cls[c] = accum_[c].slo;
    std::vector<double> sorted = accum_[c].reservoir;
    if (!sorted.empty()) {
      std::sort(sorted.begin(), sorted.end());
      rep.cls[c].p50_latency = tint::percentile(sorted, 50);
      rep.cls[c].p99_latency = tint::percentile(sorted, 99);
    }
    if (rep.cls[c].page_faults !=
        rep.cls[c].colored_pages + rep.cls[c].default_pages)
      rep.ladder_conserved = false;
  }
  return rep;
}

}  // namespace tint::runtime

#include "runtime/trace.h"

#include <sstream>

#include "util/assert.h"

namespace tint::runtime {

TraceRecorder::TraceRecorder(core::Session& session, size_t capacity)
    : session_(session), capacity_(capacity) {
  TINT_ASSERT(capacity > 0);
  records_.reserve(std::min<size_t>(capacity, 1 << 16));
}

Cycles TraceRecorder::access(os::TaskId task, os::VirtAddr va, bool write,
                             Cycles now) {
  // Held across touch + memsys access: rank kTrace sits below every
  // kernel lock, so faulting inside the critical section is safe.
  std::lock_guard<Mutex> lk(mu_);
  // Translate first (possibly faulting) so the record carries the frame.
  const os::Kernel::TouchResult tr = session_.kernel().touch(task, va, write);
  TINT_ASSERT_MSG(tr.error == os::AllocError::kOk,
                  "unserviceable fault during a traced access");
  const unsigned core = session_.kernel().task(task).core();
  const Cycles lat = session_.memsys().access(core, tr.pa, write, now);
  const Cycles total = tr.fault_cycles + lat;

  if (records_.size() < capacity_) {
    TraceRecord r;
    r.va = va;
    r.pa = tr.pa;
    r.start = now;
    r.latency = total;
    r.task = task;
    const os::PageInfo& pi = session_.kernel().pages()[tr.pa >> 12];
    r.node = pi.node;
    r.bank_color = pi.bank_color;
    r.llc_color = pi.llc_color;
    r.write = write;
    r.faulted = tr.faulted;
    records_.push_back(r);
  } else {
    ++dropped_;
  }
  return total;
}

void TraceRecorder::clear() {
  std::lock_guard<Mutex> lk(mu_);
  records_.clear();
  dropped_ = 0;
}

std::string TraceRecorder::to_csv() const {
  std::lock_guard<Mutex> lk(mu_);
  std::ostringstream os;
  os << "va,pa,start,latency,task,node,bank,llc,write,faulted\n";
  for (const TraceRecord& r : records_) {
    os << r.va << ',' << r.pa << ',' << r.start << ',' << r.latency << ','
       << r.task << ',' << unsigned(r.node) << ',' << r.bank_color << ','
       << unsigned(r.llc_color) << ',' << (r.write ? 1 : 0) << ','
       << (r.faulted ? 1 : 0) << '\n';
  }
  return os.str();
}

TraceAnalysis analyze_trace(const std::vector<TraceRecord>& records,
                            const core::Session& session) {
  TraceAnalysis a;
  a.accesses_per_node.assign(session.topology().num_nodes(), 0);
  a.accesses_per_bank.assign(session.mapping().num_bank_colors(), 0);
  a.accesses_per_llc.assign(session.mapping().num_llc_colors(), 0);
  for (const TraceRecord& r : records) {
    a.latency.add(static_cast<double>(r.latency));
    ++a.accesses_per_node[r.node];
    ++a.accesses_per_bank[r.bank_color];
    ++a.accesses_per_llc[r.llc_color];
    a.writes += r.write ? 1 : 0;
    a.faults += r.faulted ? 1 : 0;
    if (r.node != session.kernel().task(r.task).local_node()) ++a.remote;
  }
  return a;
}

TraceReplayStream::TraceReplayStream(const std::vector<TraceRecord>& records,
                                     os::TaskId task, os::VirtAddr old_base,
                                     os::VirtAddr new_base) {
  for (const TraceRecord& r : records) {
    if (r.task != task) continue;
    Op op;
    op.kind = Op::Kind::kAccess;
    op.write = r.write;
    TINT_ASSERT_MSG(r.va >= old_base, "record below the rebase window");
    op.va = new_base + (r.va - old_base);
    ops_.push_back(op);
  }
}

bool TraceReplayStream::next(Op& op) {
  if (i_ >= ops_.size()) return false;
  op = ops_[i_++];
  return true;
}

}  // namespace tint::runtime

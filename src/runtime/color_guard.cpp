#include "runtime/color_guard.h"

#include <algorithm>

#include "util/assert.h"

namespace tint::runtime {

ColorGuard::ColorGuard(os::Kernel& kernel, const sim::MemorySystem& memsys,
                       GuardConfig cfg)
    : kernel_(kernel),
      memsys_(memsys),
      mapping_(kernel.mapping()),
      advisor_(kernel.mapping(), kernel.topology()),
      cfg_(cfg) {
  const unsigned nb = mapping_.num_bank_colors();
  const unsigned nl = mapping_.num_llc_colors();
  prev_bank_accesses_.assign(nb, 0);
  prev_bank_conflicts_.assign(nb, 0);
  prev_llc_cross_.assign(nl, 0);
  prev_core_dram_.assign(kernel.topology().num_cores(), 0);
  core_dram_delta_.assign(kernel.topology().num_cores(), 0);
  prev_kernel_ = kernel_.stats().snapshot();
  bank_ewma_ = std::make_unique<std::atomic<double>[]>(nb);
  bank_hot_ = std::make_unique<std::atomic<uint8_t>[]>(nb);
  llc_ewma_ = std::make_unique<std::atomic<double>[]>(nl);
  llc_hot_ = std::make_unique<std::atomic<uint8_t>[]>(nl);
  for (unsigned c = 0; c < nb; ++c) {
    bank_ewma_[c].store(0.0, std::memory_order_relaxed);
    bank_hot_[c].store(0, std::memory_order_relaxed);
  }
  for (unsigned c = 0; c < nl; ++c) {
    llc_ewma_[c].store(0.0, std::memory_order_relaxed);
    llc_hot_[c].store(0, std::memory_order_relaxed);
  }
}

ColorGuard::~ColorGuard() { stop(); }

void ColorGuard::run_epoch() {
  std::lock_guard lk(mu_);
  const uint64_t epoch = epoch_++;
  stats_.epochs_run.fetch_add(1, std::memory_order_relaxed);

  // Sampling runs even when healing is disabled or suppressed: the
  // detector state must be warm the moment healing is allowed again.
  sample_locked();
  const bool pressured = under_pressure_locked();
  if (!cfg_.enabled) return;
  if (pressured) {
    // System-wide pressure: degrade to observe-only. Injecting migration
    // traffic while the ladder is already failing allocations (or a node
    // is down) would only deepen the hole.
    stats_.guard_suppressed_epochs.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  unsigned budget = cfg_.migration_budget;
  heal_locked(epoch, budget);
}

void ColorGuard::sample_locked() {
  const hw::Topology& topo = memsys_.topology();
  // Per-core DRAM traffic deltas (cheapest-victim cost input). A reading
  // below the stored previous means MemorySystem::reset() ran; treat the
  // epoch as idle and re-anchor, like the bank counters below.
  for (unsigned core = 0; core < topo.num_cores(); ++core) {
    const uint64_t acc = memsys_.core_stats(core).dram_accesses;
    core_dram_delta_[core] =
        acc >= prev_core_dram_[core] ? acc - prev_core_dram_[core] : 0;
    prev_core_dram_[core] = acc;
  }
  for (unsigned node = 0; node < topo.num_nodes(); ++node) {
    const sim::MemoryController& mc = memsys_.controller(node);
    const unsigned locals = mc.num_local_banks();
    for (unsigned i = 0; i < locals; ++i) {
      const unsigned color = mapping_.make_bank_color(node, i);
      const uint64_t acc = mc.bank_accesses(i);
      const uint64_t conf = mc.bank_conflicts(i);
      // Counters are cumulative but reset on MemorySystem::reset(); a
      // reading below the stored previous means a reset happened -- treat
      // the epoch as idle and re-anchor.
      const uint64_t da =
          acc >= prev_bank_accesses_[color] ? acc - prev_bank_accesses_[color]
                                            : 0;
      const uint64_t dc = conf >= prev_bank_conflicts_[color]
                              ? conf - prev_bank_conflicts_[color]
                              : 0;
      prev_bank_accesses_[color] = acc;
      prev_bank_conflicts_[color] = conf;
      const double rate = da >= cfg_.min_epoch_accesses
                              ? static_cast<double>(dc) / static_cast<double>(da)
                              : 0.0;
      double e = bank_ewma_[color].load(std::memory_order_relaxed);
      e = cfg_.ewma_alpha * rate + (1.0 - cfg_.ewma_alpha) * e;
      bank_ewma_[color].store(e, std::memory_order_relaxed);
      const uint8_t hot = bank_hot_[color].load(std::memory_order_relaxed);
      if (!hot && e >= cfg_.hot_enter) {
        bank_hot_[color].store(1, std::memory_order_relaxed);
        stats_.hot_colors_detected.fetch_add(1, std::memory_order_relaxed);
      } else if (hot && e <= cfg_.hot_exit) {
        bank_hot_[color].store(0, std::memory_order_relaxed);
      }
    }
  }

  // LLC colors: each color's share of the cross-requester evictions this
  // epoch (a color soaking up most of the thrash is "hot"). Hot LLC
  // colors are healed like banks when cfg_.heal_llc, and always feed
  // the avoid-set of LLC heals.
  const unsigned nl = mapping_.num_llc_colors();
  std::vector<uint64_t> per_color(nl, 0);
  const unsigned llc_instances = topo.llc_per_socket ? topo.sockets : 1;
  const unsigned cores_per_socket = topo.num_cores() / topo.sockets;
  for (unsigned s = 0; s < llc_instances; ++s) {
    const sim::Cache& llc = memsys_.llc(s * cores_per_socket);
    if (!llc.has_set_attribution()) continue;
    for (unsigned set = 0; set < llc.sets(); ++set) {
      const uint64_t v = llc.set_cross_evictions(set);
      if (!v) continue;
      const unsigned color = mapping_.llc_color(
          static_cast<hw::PhysAddr>(set) * llc.line_bytes());
      per_color[color] += v;
    }
  }
  uint64_t total_delta = 0;
  std::vector<uint64_t> delta(nl, 0);
  for (unsigned c = 0; c < nl; ++c) {
    delta[c] = per_color[c] >= prev_llc_cross_[c]
                   ? per_color[c] - prev_llc_cross_[c]
                   : 0;
    prev_llc_cross_[c] = per_color[c];
    total_delta += delta[c];
  }
  for (unsigned c = 0; c < nl; ++c) {
    const double rate = total_delta >= cfg_.min_epoch_accesses
                            ? static_cast<double>(delta[c]) /
                                  static_cast<double>(total_delta)
                            : 0.0;
    double e = llc_ewma_[c].load(std::memory_order_relaxed);
    e = cfg_.ewma_alpha * rate + (1.0 - cfg_.ewma_alpha) * e;
    llc_ewma_[c].store(e, std::memory_order_relaxed);
    const uint8_t hot = llc_hot_[c].load(std::memory_order_relaxed);
    if (!hot && e >= cfg_.hot_enter) {
      llc_hot_[c].store(1, std::memory_order_relaxed);
      stats_.llc_hot_colors_detected.fetch_add(1, std::memory_order_relaxed);
    } else if (hot && e <= cfg_.hot_exit) {
      llc_hot_[c].store(0, std::memory_order_relaxed);
    }
  }
}

bool ColorGuard::under_pressure_locked() {
  const os::KernelStats::Snapshot now = kernel_.stats().snapshot();
  bool pressured = false;
  if (now.alloc_failures - prev_kernel_.alloc_failures >=
      cfg_.suppress_alloc_failures)
    pressured = true;
  if (now.scavenged_pages - prev_kernel_.scavenged_pages >=
      cfg_.suppress_scavenges)
    pressured = true;
  prev_kernel_ = now;
  const unsigned nodes = kernel_.topology().num_nodes();
  for (unsigned n = 0; n < nodes; ++n)
    if (!kernel_.node_online(n)) pressured = true;
  return pressured;
}

std::vector<uint8_t> ColorGuard::hot_set_locked() const {
  const unsigned nb = mapping_.num_bank_colors();
  std::vector<uint8_t> hot(nb, 0);
  for (unsigned c = 0; c < nb; ++c)
    hot[c] = bank_hot_[c].load(std::memory_order_relaxed);
  return hot;
}

std::vector<uint8_t> ColorGuard::llc_hot_set_locked() const {
  const unsigned nl = mapping_.num_llc_colors();
  std::vector<uint8_t> hot(nl, 0);
  for (unsigned c = 0; c < nl; ++c)
    hot[c] = llc_hot_[c].load(std::memory_order_relaxed);
  return hot;
}

std::vector<os::VirtAddr> ColorGuard::resident_locked(
    os::TaskId task, unsigned color, core::ColorDim dim) const {
  return dim == core::ColorDim::kLlc
             ? kernel_.pages_of_task_llc_color(task, color)
             : kernel_.pages_of_task_color(task, color);
}

ColorGuard::TenantState& ColorGuard::tenant_locked(os::TaskId task) {
  if (tenants_.size() <= task) tenants_.resize(task + 1);
  return tenants_[task];
}

void ColorGuard::heal_locked(uint64_t epoch, unsigned& budget) {
  // 1. Advance in-flight heals first, in task order (deterministic), and
  //    expire cooldowns.
  const size_t known = std::min<size_t>(tenants_.size(), kernel_.num_tasks());
  for (os::TaskId id = 0; id < known; ++id) {
    TenantState& st = tenants_[id];
    if (st.phase == TenantPhase::kCooldown && epoch >= st.cooldown_until)
      st.phase = TenantPhase::kIdle;
    if (st.phase == TenantPhase::kMigrating) {
      if (!kernel_.task_alive(id)) {
        // The tenant exited mid-heal (reap_task already released its
        // pages). Cancel instead of migrating a corpse; keep the
        // priority across the reset (it belongs to the slot's owner,
        // and a dead slot is never consulted).
        const unsigned pri = st.priority;
        st = TenantState{};
        st.priority = pri;
        stats_.stale_tenant_skips.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      advance_locked(id, st, budget, epoch);
    }
  }
  if (!budget) return;

  // 2. Start at most one new heal per epoch (part of the oscillation
  //    damping: one swap, then watch the detector react). Hot colors on
  //    *both* axes compete in one hottest-first queue; a color that
  //    cannot be healed (single holder, every tenant cooling, no
  //    replacement) must not block the cooler ones behind it -- a
  //    just-healed color keeps a decaying EWMA for a few epochs and
  //    would otherwise stall the queue.
  struct HotColor {
    double ewma;
    unsigned color;
    core::ColorDim dim;
  };
  const unsigned nb = mapping_.num_bank_colors();
  std::vector<HotColor> hot;
  for (unsigned c = 0; c < nb; ++c)
    if (bank_hot_[c].load(std::memory_order_relaxed))
      hot.push_back({bank_ewma_[c].load(std::memory_order_relaxed), c,
                     core::ColorDim::kBank});
  if (cfg_.heal_llc) {
    const unsigned nl = mapping_.num_llc_colors();
    for (unsigned c = 0; c < nl; ++c)
      if (llc_hot_[c].load(std::memory_order_relaxed))
        hot.push_back({llc_ewma_[c].load(std::memory_order_relaxed), c,
                       core::ColorDim::kLlc});
  }
  std::sort(hot.begin(), hot.end(), [](const HotColor& a, const HotColor& b) {
    if (a.ewma != b.ewma) return a.ewma > b.ewma;
    if (a.dim != b.dim) return a.dim < b.dim;  // banks first on a tie
    return a.color < b.color;
  });

  for (const HotColor& h : hot) {
    // A color runs hot for two reasons: several tenants claimed the same
    // color (the collision the guard exists for), or one tenant's own
    // streams conflict with themselves (re-coloring cannot help -- the
    // traffic follows the tenant). Only heal collisions: >= 2 *live*
    // holders. A tenant that exited between the sample and this step is
    // skipped and counted -- its colors are mid-release and its TaskId
    // must never be healed.
    std::vector<os::TaskId> holders;
    for (os::TaskId id = 0; id < kernel_.num_tasks(); ++id) {
      const os::Task& t = kernel_.task(id);
      const bool holds = h.dim == core::ColorDim::kLlc
                             ? t.has_llc_color(h.color)
                             : t.has_mem_color(h.color);
      if (!holds) continue;
      if (!kernel_.task_alive(id)) {
        stats_.stale_tenant_skips.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      holders.push_back(id);
    }
    if (holders.size() < 2) continue;
    for (const os::TaskId victim :
         order_victims_locked(std::move(holders), h.color, h.dim)) {
      TenantState& st = tenant_locked(victim);
      if (st.phase == TenantPhase::kCooldown) {
        stats_.cooldown_skips.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      if (st.phase != TenantPhase::kIdle) continue;
      if (!start_heal_locked(victim, h.color, h.dim)) continue;
      // Begin migrating immediately with whatever budget the epoch has
      // left -- small collisions heal within a single epoch.
      advance_locked(victim, tenants_[victim], budget, epoch);
      return;
    }
  }
}

std::vector<os::TaskId> ColorGuard::order_victims_locked(
    std::vector<os::TaskId> holders, unsigned color, core::ColorDim dim) {
  if (cfg_.victim_policy == VictimPolicy::kNewest) {
    // Legacy: newest holder first (the earlier tenant keeps the layout
    // it was promised).
    std::sort(holders.begin(), holders.end(),
              [](os::TaskId a, os::TaskId b) { return a > b; });
    return holders;
  }
  // kCheapest: order by (priority, measured traffic cost, newest).
  // Cost = resident pages on the hot color, weighted by the DRAM-access
  // rate of the tenant's core this epoch: moving a tenant with few
  // resident pages and little live traffic both costs the least
  // migration work and perturbs the machine the least. Priority
  // dominates -- the admission layer maps QoS classes onto it so a
  // best-effort holder always moves before a guaranteed one.
  struct Scored {
    os::TaskId id;
    unsigned priority;
    double cost;
  };
  std::vector<Scored> scored;
  scored.reserve(holders.size());
  for (const os::TaskId id : holders) {
    const size_t resident = resident_locked(id, color, dim).size();
    const uint64_t traffic = core_dram_delta_[kernel_.task(id).core()];
    scored.push_back({id, tenant_locked(id).priority,
                      static_cast<double>(resident) *
                          (1.0 + static_cast<double>(traffic))});
  }
  std::sort(scored.begin(), scored.end(), [](const Scored& a, const Scored& b) {
    if (a.priority != b.priority) return a.priority < b.priority;
    if (a.cost != b.cost) return a.cost < b.cost;
    return a.id > b.id;  // tie-break: newest moves
  });
  std::vector<os::TaskId> out;
  out.reserve(scored.size());
  for (const Scored& s : scored) out.push_back(s.id);
  return out;
}

bool ColorGuard::start_heal_locked(os::TaskId task, unsigned hot_color,
                                   core::ColorDim dim) {
  if (!kernel_.task_alive(task)) {
    // Covers the public start_heal() path too: a caller holding a stale
    // TaskId gets a refusal, not a heal of a reaped tenant.
    stats_.stale_tenant_skips.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  TenantState& st = tenant_locked(task);
  if (st.phase != TenantPhase::kIdle) {
    if (st.phase == TenantPhase::kCooldown)
      stats_.cooldown_skips.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  const bool llc = dim == core::ColorDim::kLlc;
  const core::TaskAdvice advice = advisor_.plan_recolor(
      kernel_, task, hot_color, llc ? llc_hot_set_locked() : hot_set_locked(),
      dim);
  if (advice.kind != core::TaskAdvice::Kind::kRecolorHot) return false;
  if (llc) {
    if (advice.additions.llc_colors.empty()) return false;
    if (!kernel_.recolor_task(task, {}, {}, advice.removals.llc_colors,
                              advice.additions.llc_colors))
      return false;
  } else {
    if (advice.additions.mem_colors.empty()) return false;
    if (!kernel_.recolor_task(task, advice.removals.mem_colors,
                              advice.additions.mem_colors))
      return false;
  }
  st.phase = TenantPhase::kMigrating;
  st.op = TenantState::Op::kHeal;
  st.dim = dim;
  st.old_colors = {static_cast<uint16_t>(hot_color)};
  st.new_colors = {llc ? static_cast<uint16_t>(advice.additions.llc_colors.front())
                       : advice.additions.mem_colors.front()};
  st.failures = 0;
  st.next_attempt_epoch = 0;
  stats_.heals_started.fetch_add(1, std::memory_order_relaxed);
  if (llc) stats_.llc_heals_started.fetch_add(1, std::memory_order_relaxed);
  return true;
}

unsigned ColorGuard::start_shrink_locked(os::TaskId task, unsigned drop_count,
                                         unsigned floor) {
  if (!kernel_.task_alive(task)) {
    stats_.stale_tenant_skips.fetch_add(1, std::memory_order_relaxed);
    return 0;
  }
  TenantState& st = tenant_locked(task);
  if (st.phase != TenantPhase::kIdle) {
    if (st.phase == TenantPhase::kCooldown)
      stats_.cooldown_skips.fetch_add(1, std::memory_order_relaxed);
    return 0;
  }
  // Coldness comes from the live detector state: the guard's bank EWMAs
  // are exactly the "measured" heat plan_shrink ranks by.
  const unsigned nb = mapping_.num_bank_colors();
  std::vector<double> heat(nb, 0.0);
  for (unsigned c = 0; c < nb; ++c)
    heat[c] = bank_ewma_[c].load(std::memory_order_relaxed);
  const core::TaskAdvice advice =
      advisor_.plan_shrink(kernel_, task, drop_count, floor, heat);
  if (advice.kind != core::TaskAdvice::Kind::kShrink ||
      advice.removals.mem_colors.empty())
    return 0;
  if (!kernel_.recolor_task(task, advice.removals.mem_colors, {})) return 0;
  st.phase = TenantPhase::kMigrating;
  st.op = TenantState::Op::kShrink;
  st.dim = core::ColorDim::kBank;
  st.old_colors = advice.removals.mem_colors;
  st.new_colors.clear();
  st.failures = 0;
  st.next_attempt_epoch = 0;
  stats_.shrinks_started.fetch_add(1, std::memory_order_relaxed);
  stats_.shrink_colors_dropped.fetch_add(advice.removals.mem_colors.size(),
                                         std::memory_order_relaxed);
  return static_cast<unsigned>(advice.removals.mem_colors.size());
}

void ColorGuard::advance_locked(os::TaskId task, TenantState& st,
                                unsigned& budget, uint64_t epoch) {
  if (!kernel_.task_alive(task)) {
    // Exited since the caller's check (another thread can reap between
    // statements). Cancel the heal -- never roll back or migrate pages of
    // a tenant whose teardown owns them now.
    const unsigned pri = st.priority;
    st = TenantState{};
    st.priority = pri;
    stats_.stale_tenant_skips.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (epoch < st.next_attempt_epoch) return;  // backing off
  // Two passes max per epoch: enumeration shrinks monotonically as
  // migrations land, but concurrent faults can race pages away
  // (kMigrationRace) -- a bounded re-scan keeps the epoch from spinning.
  for (int pass = 0; pass < 2; ++pass) {
    std::vector<os::VirtAddr> vas;
    for (const uint16_t c : st.old_colors) {
      const std::vector<os::VirtAddr> part = resident_locked(task, c, st.dim);
      vas.insert(vas.end(), part.begin(), part.end());
    }
    if (vas.empty()) {
      // Every colored page left the dropped color(s): the operation is
      // complete.
      st.phase = TenantPhase::kCooldown;
      st.cooldown_until = epoch + cfg_.cooldown_epochs;
      st.failures = 0;
      if (st.op == TenantState::Op::kShrink) {
        stats_.shrinks_completed.fetch_add(1, std::memory_order_relaxed);
      } else {
        stats_.heals_completed.fetch_add(1, std::memory_order_relaxed);
        if (st.dim == core::ColorDim::kLlc)
          stats_.llc_heals_completed.fetch_add(1, std::memory_order_relaxed);
      }
      return;
    }
    bool progressed = false;
    for (const os::VirtAddr va : vas) {
      if (!budget) return;
      const os::Kernel::MigrateResult r = kernel_.migrate_page(va);
      if (r.ok) {
        --budget;
        progressed = true;
        stats_.pages_recolored.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      if (r.error == os::AllocError::kMigrationRace) {
        // Someone (a concurrent fault, the scrubber) moved the page from
        // under us; it is no longer where the enumeration saw it. Not a
        // failure -- the next enumeration re-resolves.
        stats_.migration_retries.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      // Hard failure (target pool exhausted, replacement frames all
      // faulty, ...): back off exponentially, capped; roll back once the
      // tenant has burned its failure allowance.
      stats_.migrations_failed.fetch_add(1, std::memory_order_relaxed);
      ++st.failures;
      if (st.failures > cfg_.max_heal_failures) {
        rollback_locked(task, st, budget, epoch);
        return;
      }
      const uint64_t wait = std::min<uint64_t>(
          cfg_.backoff_cap_epochs,
          static_cast<uint64_t>(cfg_.backoff_base_epochs)
              << (st.failures - 1));
      st.next_attempt_epoch = epoch + 1 + wait;
      return;
    }
    if (!progressed) return;  // all races this pass; try again next epoch
  }
}

void ColorGuard::rollback_locked(os::TaskId task, TenantState& st,
                                 unsigned& budget, uint64_t epoch) {
  if (st.op == TenantState::Op::kShrink) {
    // A shrink rollback re-adds the dropped colors -- but only those
    // still unclaimed: the whole point of a shrink is that the freed
    // colors become grantable immediately, so by the time migration
    // gives up a new tenant may hold them. Re-adding a granted-away
    // color would recreate the very collision the palette accounting
    // exists to prevent; such colors stay lost (counted) and the
    // tenant simply stays smaller. Pages already moved to survivors
    // are consistently colored and stay put.
    stats_.shrink_rollbacks.fetch_add(1, std::memory_order_relaxed);
    std::vector<uint8_t> claimed(mapping_.num_bank_colors(), 0);
    for (os::TaskId id = 0; id < kernel_.num_tasks(); ++id) {
      if (!kernel_.task_alive(id)) continue;
      for (const uint16_t c : kernel_.task(id).mem_color_list())
        claimed[c] = 1;
    }
    std::vector<uint16_t> readd;
    for (const uint16_t c : st.old_colors) {
      if (!claimed[c] && !kernel_.color_retired(c) &&
          kernel_.node_online(mapping_.node_of_bank_color(c)))
        readd.push_back(c);
      else
        stats_.shrink_colors_lost.fetch_add(1, std::memory_order_relaxed);
    }
    if (!readd.empty()) kernel_.recolor_task(task, {}, readd);
    st.phase = TenantPhase::kCooldown;
    st.cooldown_until = epoch + 2ULL * cfg_.cooldown_epochs;
    st.failures = 0;
    return;
  }

  // Heal rollback: restore the original color set in one published
  // swap, then migrate whatever already moved back toward the old color
  // -- best-effort: any page the return migration cannot move is still
  // *consistently* colored (the old color is in the set again), just
  // non-resident on its preferred bank until the tenant faults it back.
  stats_.rollbacks.fetch_add(1, std::memory_order_relaxed);
  const uint16_t old_c = st.old_colors.front();
  const uint16_t new_c = st.new_colors.front();
  if (st.dim == core::ColorDim::kLlc)
    kernel_.recolor_task(task, {}, {}, {static_cast<uint8_t>(new_c)},
                         {static_cast<uint8_t>(old_c)});
  else
    kernel_.recolor_task(task, {new_c}, {old_c});
  const std::vector<os::VirtAddr> vas = resident_locked(task, new_c, st.dim);
  for (const os::VirtAddr va : vas) {
    if (!budget) break;
    const os::Kernel::MigrateResult r = kernel_.migrate_page(va);
    if (r.ok) {
      --budget;
      stats_.rollback_pages.fetch_add(1, std::memory_order_relaxed);
    }
  }
  st.phase = TenantPhase::kCooldown;
  st.cooldown_until = epoch + 2ULL * cfg_.cooldown_epochs;
  st.failures = 0;
}

bool ColorGuard::start_heal(os::TaskId task, unsigned hot_color,
                            core::ColorDim dim) {
  std::lock_guard lk(mu_);
  return start_heal_locked(task, hot_color, dim);
}

unsigned ColorGuard::start_shrink(os::TaskId task, unsigned drop_count,
                                  unsigned floor) {
  std::lock_guard lk(mu_);
  return start_shrink_locked(task, drop_count, floor);
}

ColorGuard::TenantPhase ColorGuard::tenant_phase(os::TaskId task) const {
  std::lock_guard lk(mu_);
  if (task >= tenants_.size()) return TenantPhase::kIdle;
  return tenants_[task].phase;
}

void ColorGuard::set_tenant_priority(os::TaskId task, unsigned priority) {
  std::lock_guard lk(mu_);
  tenant_locked(task).priority = priority;
}

unsigned ColorGuard::tenant_priority(os::TaskId task) const {
  std::lock_guard lk(mu_);
  if (task >= tenants_.size()) return 0;
  return tenants_[task].priority;
}

void ColorGuard::start(std::chrono::milliseconds period) {
  TINT_ASSERT_MSG(!running_.load(std::memory_order_acquire),
                  "ColorGuard already running");
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this, period] {
    while (running_.load(std::memory_order_acquire)) {
      run_epoch();
      std::unique_lock lk(cv_mu_);
      cv_.wait_for(lk, period, [this] {
        return !running_.load(std::memory_order_acquire);
      });
    }
  });
}

void ColorGuard::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) {
    if (thread_.joinable()) thread_.join();
    return;
  }
  {
    std::lock_guard lk(cv_mu_);
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

}  // namespace tint::runtime

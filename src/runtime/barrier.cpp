#include "runtime/barrier.h"

#include <algorithm>

#include "util/assert.h"

namespace tint::runtime {

Cycles SectionTiming::max_end() const {
  TINT_ASSERT(!end.empty());
  return *std::max_element(end.begin(), end.end());
}

Cycles SectionTiming::min_end() const {
  TINT_ASSERT(!end.empty());
  return *std::min_element(end.begin(), end.end());
}

void BarrierLedger::add_section(const SectionTiming& s) {
  TINT_ASSERT(s.end.size() == busy_.size());
  const Cycles release = s.max_end();
  for (unsigned t = 0; t < busy_.size(); ++t) {
    TINT_ASSERT(s.end[t] >= s.start);
    busy_[t] += s.end[t] - s.start;
    idle_[t] += release - s.end[t];
  }
  parallel_time_ += release - s.start;
  ++sections_;
}

Cycles BarrierLedger::total_idle() const {
  Cycles sum = 0;
  for (const Cycles i : idle_) sum += i;
  return sum;
}

Cycles BarrierLedger::max_thread_busy() const {
  return *std::max_element(busy_.begin(), busy_.end());
}

Cycles BarrierLedger::min_thread_busy() const {
  return *std::min_element(busy_.begin(), busy_.end());
}

Cycles BarrierLedger::max_thread_idle() const {
  return *std::max_element(idle_.begin(), idle_.end());
}

}  // namespace tint::runtime

// OffloadEngine: the background allocator core (DESIGN.md section 16).
//
// SpeedMalloc-style allocation offload: instead of every application
// thread walking the coloring ladder (locks, buddy refills, magazine
// churn) on its own fault, a dedicated allocator thread keeps a
// per-task *completion ring* stocked with ready-to-use colored frames
// and absorbs frees parked on the matching *request ring*. The
// foreground path degenerates to "pop a pfn from a lock-free SPSC
// ring"; everything slow happens here, in the background.
//
// The engine is the pacing brain on top of the kernel mechanism
// (Kernel::offload_service does the actual frame work under the proper
// locks; os/offload_ring.h holds the rings):
//
//   * per watched task it tracks the completion ring's cumulative pop
//     counter, EWMA-smooths the per-round delta (the task's observed
//     drain rate, DReAM-style: decisions follow measured counters), and
//     restocks to `ewma * prefault_headroom` frames, clamped to
//     [offload.min_stock, ring capacity];
//   * rounds that move frames loop again immediately; idle rounds sleep
//     (start()/stop() background mode) so a quiet system costs nothing;
//   * tasks that exit are detected via the service report and dropped
//     from the watch list after a final drain;
//   * attached TintHeaps get their deferred tcache-overflow rings
//     drained once per round (HeapConfig::deferred_flush_depth), so
//     foreground free() never pays for a bin flush either.
//
// Default-off twice over: the kernel only builds rings when
// `KernelConfig::offload.enabled` is set, and the engine only touches
// tasks explicitly watch()ed -- the determinism goldens never see it.
// run_round() is the deterministic manual-drive entry (what the tests
// use); start() wraps it in a thread.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "os/kernel.h"

namespace tint::core {
class TintHeap;
}

namespace tint::runtime {

struct OffloadEngineConfig {
  // EWMA smoothing factor for the per-task drain rate (0..1; higher =
  // reacts faster to demand swings, forgets faster).
  double ewma_alpha = 0.3;
  // Background-thread sleep after a round in which no watched task
  // needed service. Busy rounds re-run immediately.
  std::chrono::microseconds idle_sleep{200};
};

struct OffloadEngineStats {
  std::atomic<uint64_t> rounds_run{0};
  std::atomic<uint64_t> busy_rounds{0};      // rounds that moved frames
  std::atomic<uint64_t> frees_absorbed{0};   // request-ring frames retired
  std::atomic<uint64_t> frames_recycled{0};  // request -> completion direct
  std::atomic<uint64_t> frames_restocked{0}; // ladder allocs pushed ahead
  std::atomic<uint64_t> dead_task_drops{0};  // watches removed post-exit
  std::atomic<uint64_t> heap_flushes{0};     // deferred tcache bins drained

  struct Snapshot {
    uint64_t rounds_run = 0;
    uint64_t busy_rounds = 0;
    uint64_t frees_absorbed = 0;
    uint64_t frames_recycled = 0;
    uint64_t frames_restocked = 0;
    uint64_t dead_task_drops = 0;
    uint64_t heap_flushes = 0;
  };
  Snapshot snapshot() const {
    const auto ld = [](const std::atomic<uint64_t>& a) {
      return a.load(std::memory_order_relaxed);
    };
    return {ld(rounds_run),       ld(busy_rounds),
            ld(frees_absorbed),   ld(frames_recycled),
            ld(frames_restocked), ld(dead_task_drops),
            ld(heap_flushes)};
  }
};

class OffloadEngine {
 public:
  // The kernel must outlive the engine. Constructing an engine against
  // a kernel with `offload.enabled == false` is allowed (watch() then
  // reports failure) so callers can wire it unconditionally.
  explicit OffloadEngine(os::Kernel& kernel, OffloadEngineConfig cfg = {});
  ~OffloadEngine();  // stop()s and drains every remaining watch
  OffloadEngine(const OffloadEngine&) = delete;
  OffloadEngine& operator=(const OffloadEngine&) = delete;

  // Registers `id` for background service: attaches its rings in the
  // kernel and starts pacing. Idempotent. False when offload is
  // disabled kernel-side.
  bool watch(os::TaskId id);
  // Stops servicing `id` and drains its rings back to the color lists.
  // The task keeps working -- faults just stop hitting the ring.
  void unwatch(os::TaskId id);

  // Registers a heap whose deferred tcache-overflow rings the engine
  // drains once per round. The heap must outlive the engine (or be
  // detached first). Pass nullptr to detach_heap for symmetry.
  void attach_heap(core::TintHeap* heap);
  void detach_heap(core::TintHeap* heap);

  // One service round over every watched task (and attached heap):
  // measure drain rate -> compute restock target -> offload_service.
  // Returns true when any frame moved (the background loop's
  // keep-going signal). Deterministic given quiescent rings; safe from
  // any thread, serialized internally.
  bool run_round();

  // Background mode: run_round() continuously, sleeping
  // cfg.idle_sleep after idle rounds, until stop().
  void start();
  void stop();

  const OffloadEngineStats& stats() const { return stats_; }
  size_t watched() const;

 private:
  struct Watch {
    os::TaskId id = 0;
    uint64_t last_pops = 0;
    double ewma = -1.0;  // < 0: no observation yet
  };

  bool run_round_locked();

  os::Kernel& kernel_;
  OffloadEngineConfig cfg_;
  OffloadEngineStats stats_;

  // Serializes rounds and guards the watch list. Deliberately a plain
  // mutex outside the rank order (control-plane only): the round body
  // enters the kernel at rank kMm and below, and nothing that holds a
  // kernel lock ever calls back into the engine.
  mutable std::mutex mu_;
  std::vector<Watch> watches_;
  std::vector<core::TintHeap*> heaps_;

  // Background thread plumbing (ColorGuard idiom): cv_mu_ is only held
  // around the wait, never across kernel calls.
  std::atomic<bool> running_{false};
  std::thread thread_;
  std::mutex cv_mu_;
  std::condition_variable cv_;
};

}  // namespace tint::runtime

// OffloadEngine: the background allocator core pool (DESIGN.md
// sections 16 and 17).
//
// SpeedMalloc-style allocation offload: instead of every application
// thread walking the coloring ladder (locks, buddy refills, magazine
// churn) on its own fault, dedicated allocator threads keep a per-task
// *completion ring* stocked with ready-to-use colored frames and absorb
// frees parked on the matching *request ring*. The foreground path
// degenerates to "pop a pfn from a lock-free SPSC ring"; everything
// slow happens here, in the background.
//
// Multi-core sharding (section 17): the engine runs one allocator
// *worker* per online NUMA node (`offload.workers` -- 0 = auto, 1 =
// the legacy single worker, N caps the pool with nodes distributed
// round-robin). Each worker services only the tasks homed on its
// node(s); the kernel serializes engine-side ring access per task
// through TaskRings::engine_guard, so two workers on two nodes never
// share a lock. A shared control plane owns watch/unwatch, hotplug
// rebalancing, stats rollup and stop.
//
// The engine is the pacing brain on top of the kernel mechanism
// (Kernel::offload_service does the actual frame work under the proper
// locks; os/offload_ring.h holds the rings):
//
//   * per watched task it tracks the completion ring's cumulative pop
//     counter, EWMA-smooths the per-round delta (the task's observed
//     drain rate, DReAM-style: decisions follow measured counters), and
//     restocks to `ewma * prefault_headroom` frames, clamped to
//     [offload.min_stock, ring capacity];
//   * with `offload.adaptive_ring` set it also EWMA-smooths the task's
//     ring stall counters and re-sizes the rings through the kernel's
//     freeze-swap resize: sustained full/empty stalls double the depth
//     (up to offload.ring_depth_max), a quiet task shrinks back toward
//     offload.ring_depth -- the magazine tuner's grow/shrink idiom
//     applied to ring geometry;
//   * a task watched while its home node is offline is *parked*, not
//     serviced cross-node; the control plane adopts it onto the right
//     worker when the node comes back (and parks live watches whose
//     node goes away, after draining their rings);
//   * rounds that move frames loop again immediately; idle rounds sleep
//     (start()/stop() background mode) so a quiet system costs nothing;
//   * after `scrub_idle_rounds` consecutive idle rounds the engine runs
//     one Kernel::scrub() pass -- RAS sweeps ride the allocator cores
//     for free when there is no allocation work;
//   * tasks that exit are detected via the service report and dropped
//     from the watch list after a final drain;
//   * attached TintHeaps get their deferred tcache-overflow rings
//     drained once per round (HeapConfig::deferred_flush_depth), so
//     foreground free() never pays for a bin flush either.
//
// Default-off twice over: the kernel only builds rings when
// `KernelConfig::offload.enabled` is set, and the engine only touches
// tasks explicitly watch()ed -- the determinism goldens never see it.
// run_round() is the deterministic manual-drive entry (what the tests
// use): it rebalances, then services every worker's watches on the
// calling thread in worker order. start() spawns one thread per
// worker.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "os/kernel.h"

namespace tint::core {
class TintHeap;
}

namespace tint::runtime {

struct OffloadEngineConfig {
  // EWMA smoothing factor for the per-task drain rate and the ring
  // stall rates (0..1; higher = reacts faster to demand swings,
  // forgets faster).
  double ewma_alpha = 0.3;
  // Background-thread sleep after a round in which no watched task
  // needed service. Busy rounds re-run immediately.
  std::chrono::microseconds idle_sleep{200};
  // --- adaptive ring-depth tuner (armed by offload.adaptive_ring) ---
  // Rounds between tuner decisions per task (every round still feeds
  // the EWMAs; decisions are rate-limited so a resize's freeze-swap is
  // amortized).
  unsigned ring_tune_interval = 8;
  // Stalls-per-round EWMA (full or empty) above which the task's ring
  // depth doubles, up to offload.ring_depth_max.
  double ring_grow_stalls = 1.0;
  // Both stall EWMAs below this (with depth above offload.ring_depth)
  // halves the depth back -- the shrink half of the magazine-tuner
  // idiom.
  double ring_shrink_stalls = 0.01;
  // --- idle-round scrub piggyback ---
  // Consecutive idle rounds after which the engine runs one
  // Kernel::scrub() pass (0 = never). Background mode ties the streak
  // to the first worker; manual run_round() keeps its own.
  unsigned scrub_idle_rounds = 0;
};

struct OffloadEngineStats {
  std::atomic<uint64_t> rounds_run{0};
  std::atomic<uint64_t> busy_rounds{0};      // rounds that moved frames
  std::atomic<uint64_t> frees_absorbed{0};   // request-ring frames retired
  std::atomic<uint64_t> frames_recycled{0};  // request -> completion direct
  std::atomic<uint64_t> frames_restocked{0}; // ladder allocs pushed ahead
  std::atomic<uint64_t> dead_task_drops{0};  // watches removed post-exit
  std::atomic<uint64_t> heap_flushes{0};     // deferred tcache bins drained
  std::atomic<uint64_t> tasks_parked{0};     // watches parked: node offline
  std::atomic<uint64_t> parked_adopts{0};    // parked watches adopted back
  std::atomic<uint64_t> ring_grows{0};       // tuner depth doublings
  std::atomic<uint64_t> ring_shrinks{0};     // tuner depth halvings
  std::atomic<uint64_t> scrub_passes{0};     // idle-round scrubs run

  struct Snapshot {
    uint64_t rounds_run = 0;
    uint64_t busy_rounds = 0;
    uint64_t frees_absorbed = 0;
    uint64_t frames_recycled = 0;
    uint64_t frames_restocked = 0;
    uint64_t dead_task_drops = 0;
    uint64_t heap_flushes = 0;
    uint64_t tasks_parked = 0;
    uint64_t parked_adopts = 0;
    uint64_t ring_grows = 0;
    uint64_t ring_shrinks = 0;
    uint64_t scrub_passes = 0;
  };
  Snapshot snapshot() const {
    const auto ld = [](const std::atomic<uint64_t>& a) {
      return a.load(std::memory_order_relaxed);
    };
    return {ld(rounds_run),       ld(busy_rounds),   ld(frees_absorbed),
            ld(frames_recycled),  ld(frames_restocked),
            ld(dead_task_drops),  ld(heap_flushes),  ld(tasks_parked),
            ld(parked_adopts),    ld(ring_grows),    ld(ring_shrinks),
            ld(scrub_passes)};
  }
};

class OffloadEngine {
 public:
  // The kernel must outlive the engine. Constructing an engine against
  // a kernel with `offload.enabled == false` is allowed (watch() then
  // reports failure) so callers can wire it unconditionally. The
  // worker count resolves from KernelConfig::offload.workers at
  // construction.
  explicit OffloadEngine(os::Kernel& kernel, OffloadEngineConfig cfg = {});
  ~OffloadEngine();  // stop()s and drains every remaining watch
  OffloadEngine(const OffloadEngine&) = delete;
  OffloadEngine& operator=(const OffloadEngine&) = delete;

  // Registers `id` for background service: attaches its rings in the
  // kernel and hands it to the worker owning its home node. A task
  // whose home node is currently offline is parked instead (it is
  // never serviced cross-node) and adopted when the node returns.
  // Idempotent. False when offload is disabled kernel-side.
  bool watch(os::TaskId id);
  // Stops servicing `id` (watched or parked) and drains its rings back
  // to the color lists. The task keeps working -- faults just stop
  // hitting the ring.
  void unwatch(os::TaskId id);

  // Registers a heap whose deferred tcache-overflow rings the engine
  // drains once per round. The heap must outlive the engine (or be
  // detached first). Pass nullptr to detach_heap for symmetry.
  void attach_heap(core::TintHeap* heap);
  void detach_heap(core::TintHeap* heap);

  // One engine round on the calling thread: rebalance (park watches of
  // offline nodes, adopt parked tasks of returned nodes), then every
  // worker's watches in worker order (measure drain rate -> compute
  // restock target -> offload_service -> depth tuner), then the
  // attached heaps. Returns true when any frame moved (the background
  // loop's keep-going signal). Deterministic given quiescent rings;
  // safe from any thread, serialized internally.
  bool run_round();

  // Background mode: one thread per worker running its slice of
  // run_round() continuously, sleeping cfg.idle_sleep after idle
  // rounds, until stop().
  void start();
  void stop();

  // Aggregate counters over every worker (the engine-wide rollup).
  const OffloadEngineStats& stats() const { return stats_; }
  // Per-worker rollups for per-node bench cells and tests.
  size_t num_workers() const { return workers_.size(); }
  OffloadEngineStats::Snapshot worker_snapshot(size_t w) const;
  // Nodes worker `w` services (ascending). In auto mode this is the
  // single node the worker is pinned to.
  std::vector<unsigned> worker_nodes(size_t w) const;

  // Watched tasks, including parked ones.
  size_t watched() const;
  // Tasks currently parked because their home node is offline.
  size_t parked() const;

 private:
  struct Watch {
    os::TaskId id = 0;
    uint64_t last_pops = 0;
    double ewma = -1.0;  // < 0: no observation yet
    // Adaptive-depth tuner state (offload.adaptive_ring).
    uint64_t last_full = 0;
    uint64_t last_empty = 0;
    double full_ewma = 0.0;
    double empty_ewma = 0.0;
    unsigned rounds_since_tune = 0;
  };
  struct Worker {
    unsigned index = 0;
    // Guards `watches` (the worker thread and the control plane both
    // touch it). Plain mutex outside the rank order, like the old
    // engine mutex: the service body enters the kernel at rank kMm and
    // below, and nothing holding a kernel lock calls back in.
    mutable std::mutex mu;
    std::vector<Watch> watches;
    OffloadEngineStats stats;  // this worker's slice of the rollup
    std::thread thread;
    unsigned idle_streak = 0;  // background-mode scrub trigger
  };

  // True when worker `w` owns node `n` under the round-robin split.
  bool worker_owns_node(size_t w, unsigned node) const {
    return workers_.size() <= 1 || node % workers_.size() == w;
  }
  size_t worker_of_node(unsigned node) const {
    return workers_.size() <= 1 ? 0 : node % workers_.size();
  }

  // Park/adopt pass for one worker (ctl_mu_ + the worker's mu inside).
  void rebalance_worker(size_t w);
  // Service every watch of one worker; returns true when frames moved.
  bool service_worker(size_t w);
  // Depth-tuner decision for one watch (worker mu held).
  void tune_ring(Worker& wk, Watch& w);
  bool drain_heaps();
  // One background-loop iteration for worker `w`.
  void worker_loop(size_t w);

  os::Kernel& kernel_;
  OffloadEngineConfig cfg_;
  OffloadEngineStats stats_;  // aggregate: every worker bumps it too

  std::vector<std::unique_ptr<Worker>> workers_;

  // Control plane: parked watches + attached heaps + manual-round
  // serialization. Plain mutexes outside the rank order (see Worker).
  mutable std::mutex ctl_mu_;
  std::vector<Watch> parked_;  // home node offline; adopted on return
  std::vector<core::TintHeap*> heaps_;
  mutable std::mutex round_mu_;   // serializes manual run_round()s
  unsigned manual_idle_streak_ = 0;  // run_round() scrub trigger (round_mu_)

  // Background thread plumbing (ColorGuard idiom): cv_mu_ is only held
  // around the wait, never across kernel calls.
  std::atomic<bool> running_{false};
  std::mutex cv_mu_;
  std::condition_variable cv_;
};

}  // namespace tint::runtime

#include "runtime/experiment.h"

#include <algorithm>

#include "util/assert.h"
#include "util/rng.h"

namespace tint::runtime {

ThreadConfig make_config(const hw::Topology& topo, unsigned threads,
                         unsigned nodes) {
  TINT_ASSERT(nodes >= 1 && nodes <= topo.num_nodes());
  TINT_ASSERT_MSG(threads % nodes == 0,
                  "threads must spread evenly over nodes");
  const unsigned per_node = threads / nodes;
  TINT_ASSERT(per_node <= topo.cores_per_node);
  ThreadConfig cfg;
  cfg.name = std::to_string(threads) + "_threads_" + std::to_string(nodes) +
             "_nodes";
  for (unsigned n = 0; n < nodes; ++n)
    for (unsigned c = 0; c < per_node; ++c)
      cfg.cores.push_back(n * topo.cores_per_node + c);
  return cfg;
}

std::vector<ThreadConfig> standard_configs(const hw::Topology& topo) {
  // Section V.B: 16_threads_4_nodes, 8_threads_4_nodes, 8_threads_2_nodes,
  // 4_threads_4_nodes, 4_threads_1_nodes.
  return {make_config(topo, 16, 4), make_config(topo, 8, 4),
          make_config(topo, 8, 2), make_config(topo, 4, 4),
          make_config(topo, 4, 1)};
}

ExperimentDriver::ExperimentDriver(const core::MachineConfig& machine,
                                   unsigned reps, uint64_t base_seed)
    : machine_(machine), reps_(reps), base_seed_(base_seed) {
  TINT_ASSERT(reps >= 1);
}

AggregateResult ExperimentDriver::run(const WorkloadSpec& spec,
                                      core::Policy policy,
                                      const ThreadConfig& config) {
  WorkloadRunner runner(machine_);
  AggregateResult agg;
  agg.workload = spec.name;
  agg.policy = policy;
  agg.config = config.name;
  const unsigned T = config.threads();
  agg.thread_busy_mean.assign(T, 0.0);
  agg.thread_idle_mean.assign(T, 0.0);

  for (unsigned rep = 0; rep < reps_; ++rep) {
    const uint64_t seed = mix64(base_seed_ + rep * 0x9e3779b9ULL);
    const RunResult r = runner.run(spec, policy, config.cores, seed);

    agg.runtime.add(static_cast<double>(r.total_runtime));
    agg.total_idle.add(static_cast<double>(r.total_idle));
    const auto [bmin, bmax] =
        std::minmax_element(r.thread_busy.begin(), r.thread_busy.end());
    agg.max_thread_busy.add(static_cast<double>(*bmax));
    agg.busy_spread.add(static_cast<double>(*bmax - *bmin));
    const auto [imin, imax] =
        std::minmax_element(r.thread_idle.begin(), r.thread_idle.end());
    agg.max_thread_idle.add(static_cast<double>(*imax));
    agg.idle_spread.add(static_cast<double>(*imax - *imin));
    for (unsigned t = 0; t < T; ++t) {
      agg.thread_busy_mean[t] += static_cast<double>(r.thread_busy[t]);
      agg.thread_idle_mean[t] += static_cast<double>(r.thread_idle[t]);
    }
    agg.remote_fraction += r.dram_remote_fraction;
    agg.fallback_fraction +=
        r.pages_touched ? static_cast<double>(r.fallback_pages) /
                              static_cast<double>(r.pages_touched)
                        : 0.0;
    agg.llc_miss_rate += r.llc_miss_rate;
    agg.row_hit_rate += r.row_hit_rate;
    agg.avg_access_latency += r.avg_access_latency;
    agg.frames_poisoned += r.frames_poisoned;
    agg.pages_migrated += r.pages_migrated;
    agg.colors_retired += r.colors_retired;
    agg.magazine_hits += r.magazine_hits;
    agg.magazine_misses += r.magazine_misses;
    agg.batch_refills += r.batch_refills;
    agg.tcache_hits += r.tcache_hits;
    agg.ring_alloc_hits += r.ring_alloc_hits;
    agg.ring_full_stalls += r.ring_full_stalls;
    agg.prefault_pages += r.prefault_pages;
    agg.batches_drained += r.batches_drained;
    agg.recolor_calls += r.recolor_calls;
  }
  const double n = static_cast<double>(reps_);
  for (unsigned t = 0; t < T; ++t) {
    agg.thread_busy_mean[t] /= n;
    agg.thread_idle_mean[t] /= n;
  }
  agg.remote_fraction /= n;
  agg.fallback_fraction /= n;
  agg.llc_miss_rate /= n;
  agg.row_hit_rate /= n;
  agg.avg_access_latency /= n;
  return agg;
}

BestOther best_other_coloring(ExperimentDriver& driver,
                              const WorkloadSpec& spec,
                              const ThreadConfig& config) {
  // The paper's fourth bar: best of the remaining coloring solutions.
  static constexpr core::Policy kOthers[] = {
      core::Policy::kLlc, core::Policy::kMem, core::Policy::kMemLlcPart,
      core::Policy::kLlcMemPart};
  BestOther best{kOthers[0], {}};
  bool first = true;
  for (const core::Policy p : kOthers) {
    AggregateResult r = driver.run(spec, p, config);
    if (first || r.runtime.mean() < best.result.runtime.mean()) {
      best = BestOther{p, std::move(r)};
      first = false;
    }
  }
  return best;
}

}  // namespace tint::runtime

#include "runtime/sim_thread.h"

#include "util/assert.h"

namespace tint::runtime {

Cycles ParallelEngine::execute(os::TaskId task, const Op& op, Cycles now) {
  ++ops_;
  switch (op.kind) {
    case Op::Kind::kAccess:
      return op.cycles +
             session_.touch_and_access(task, op.va, op.write, now + op.cycles);
    case Op::Kind::kCompute:
      return op.cycles;
  }
  return 0;
}

SectionTiming ParallelEngine::run_parallel(std::span<const os::TaskId> tasks,
                                           std::span<OpStream* const> streams,
                                           Cycles start) {
  TINT_ASSERT(tasks.size() == streams.size() && !tasks.empty());
  const size_t n = tasks.size();

  std::vector<Cycles> clock(n, start);
  std::vector<bool> done(n, false);
  size_t running = n;

  // Earliest-thread-first interleaving. With at most a few dozen threads
  // a linear argmin scan beats a heap and is trivially deterministic
  // (ties resolve to the lowest thread index).
  while (running > 0) {
    size_t pick = n;
    for (size_t i = 0; i < n; ++i) {
      if (done[i]) continue;
      if (pick == n || clock[i] < clock[pick]) pick = i;
    }
    Op op;
    if (!streams[pick]->next(op)) {
      done[pick] = true;
      --running;
      continue;
    }
    clock[pick] += execute(tasks[pick], op, clock[pick]);
  }

  SectionTiming timing;
  timing.start = start;
  timing.end = std::move(clock);
  return timing;
}

Cycles ParallelEngine::run_serial(os::TaskId task, OpStream& stream,
                                  Cycles start) {
  Cycles now = start;
  Op op;
  while (stream.next(op)) now += execute(task, op, now);
  return now;
}

}  // namespace tint::runtime

#include "runtime/workload.h"

#include <algorithm>

#include "util/assert.h"

namespace tint::runtime {

// ---------------------------------------------------------------------
// Op streams
// ---------------------------------------------------------------------

AlternatingStrideStream::AlternatingStrideStream(os::VirtAddr base,
                                                 uint64_t bytes, unsigned line,
                                                 bool write)
    : line_(line), write_(write) {
  TINT_ASSERT(bytes >= 2 * line);
  const uint64_t lines = bytes / line;
  half_lines_ = lines / 2;
  mid_ = base + half_lines_ * line;
}

bool AlternatingStrideStream::next(Op& op) {
  // Sequence: M, M+1C, M-1C, M+2C, M-2C, ... covering 2*half_lines_ - 1
  // distinct lines (each exactly once).
  if (i_ >= 2 * half_lines_ - 1) return false;
  const uint64_t k = (i_ + 1) / 2;  // magnitude of the offset
  const bool fwd = (i_ % 2) == 1;   // odd steps go forward
  op.kind = Op::Kind::kAccess;
  op.write = write_;
  op.cycles = 0;
  op.va = fwd ? mid_ + k * line_ : mid_ - k * line_;
  ++i_;
  return true;
}

StreamingPassStream::StreamingPassStream(os::VirtAddr base, uint64_t bytes,
                                         unsigned line, bool write,
                                         unsigned compute_per_access)
    : base_(base), lines_(bytes / line), line_(line), write_(write),
      compute_(compute_per_access) {
  TINT_ASSERT(lines_ > 0);
}

bool StreamingPassStream::next(Op& op) {
  if (i_ >= lines_) return false;
  op.kind = Op::Kind::kAccess;
  op.write = write_;
  op.cycles = compute_;
  op.va = base_ + i_ * line_;
  ++i_;
  return true;
}

PointerChaseStream::PointerChaseStream(os::VirtAddr base, uint64_t bytes,
                                       unsigned line, uint64_t accesses,
                                       uint64_t seed)
    : base_(base), lines_(bytes / line), line_(line), accesses_(accesses) {
  TINT_ASSERT(lines_ >= 2);
  // Affine LCG step x -> a*x + c (mod lines). With a % 4 == 1 and odd c
  // the orbit is the full line set when `lines` is a power of two
  // (Hull-Dobell); otherwise it is still a long cycle. Deterministic
  // per seed.
  a_ = ((mix64(seed) & ~uint64_t{3}) | 1) % lines_;
  if (a_ < 5) a_ = lines_ > 5 ? 5 : 1;
  c_ = (mix64(seed ^ 0x9e37) | 1) % lines_;
  cursor_ = mix64(seed ^ 0x51ed) % lines_;
}

bool PointerChaseStream::next(Op& op) {
  if (issued_ >= accesses_) return false;
  ++issued_;
  op.kind = Op::Kind::kAccess;
  op.write = false;
  op.cycles = 0;
  op.va = base_ + cursor_ * line_;
  cursor_ = (a_ * cursor_ + c_) % lines_;
  return true;
}

ComputeStream::ComputeStream(Cycles total, Cycles slice)
    : remaining_(total), slice_(slice) {
  TINT_ASSERT(slice > 0);
}

bool ComputeStream::next(Op& op) {
  if (remaining_ == 0) return false;
  op.kind = Op::Kind::kCompute;
  op.cycles = std::min(remaining_, slice_);
  remaining_ -= op.cycles;
  return true;
}

MixedKernelStream::MixedKernelStream(const MixedKernelParams& p, uint64_t seed)
    : p_(p), rng_(seed) {
  TINT_ASSERT(p_.private_bytes >= p_.line);
  TINT_ASSERT(p_.hot_bytes <= p_.private_bytes);
}

bool MixedKernelStream::next(Op& op) {
  if (issued_ >= p_.accesses) return false;
  ++issued_;
  op.kind = Op::Kind::kAccess;
  op.cycles = p_.compute_per_access;

  const uint64_t priv_lines = p_.private_bytes / p_.line;
  if (p_.shared_bytes > 0 && rng_.next_bool(p_.shared_fraction)) {
    // Read-mostly shared input (always a load).
    const uint64_t l = rng_.next_below(p_.shared_bytes / p_.line);
    op.va = p_.shared_base + l * p_.line;
    op.write = false;
    return true;
  }
  op.write = rng_.next_bool(p_.write_fraction);
  if (p_.hot_bytes > 0 && rng_.next_bool(p_.hot_fraction)) {
    // Reused hot window at the front of the private region.
    const uint64_t l = rng_.next_below(p_.hot_bytes / p_.line);
    op.va = p_.private_base + l * p_.line;
    return true;
  }
  // Streaming over the full private region (wrapping cursor).
  op.va = p_.private_base + (cursor_ % priv_lines) * p_.line;
  ++cursor_;
  return true;
}

// ---------------------------------------------------------------------
// Benchmark specs (traits per Section V.B; see workload.h table)
// ---------------------------------------------------------------------

WorkloadSpec WorkloadSpec::scaled(double factor) const {
  TINT_ASSERT(factor > 0);
  WorkloadSpec s = *this;
  const auto scale_sz = [&](uint64_t v) -> uint64_t {
    if (v == 0) return 0;
    const uint64_t scaled_v = static_cast<uint64_t>(
        static_cast<double>(v) * factor);
    return std::max<uint64_t>(scaled_v & ~uint64_t{4095}, 4096);
  };
  const auto scale_n = [&](uint64_t v) -> uint64_t {
    return v == 0 ? 0
                  : std::max<uint64_t>(
                        static_cast<uint64_t>(static_cast<double>(v) * factor),
                        64);
  };
  s.private_bytes = scale_sz(private_bytes);
  s.shared_bytes = scale_sz(shared_bytes);
  s.hot_bytes = scale_sz(hot_bytes);
  if (s.hot_bytes > s.private_bytes) s.hot_bytes = s.private_bytes;
  s.accesses_per_round = scale_n(accesses_per_round);
  s.serial_accesses_per_round = scale_n(serial_accesses_per_round);
  return s;
}

WorkloadSpec lbm_spec() {
  // Lattice-Boltzmann: the most memory-bound code in the set. Large
  // streaming grids swept every timestep; little reuse beyond the sweep
  // itself; negligible serial work. Paper: largest TintMalloc gain.
  WorkloadSpec s;
  s.name = "lbm";
  s.private_bytes = 20ULL << 20;
  s.shared_bytes = 4ULL << 20;
  s.hot_bytes = 0;
  s.hot_fraction = 0.0;
  s.shared_fraction = 0.02;
  s.write_fraction = 0.5;
  s.compute_per_access = 25;
  s.rounds = 5;
  s.accesses_per_round = 120000;
  s.imbalance = 0.0;
  return s;
}

WorkloadSpec art_spec() {
  // Adaptive resonance theory net: repeated passes over medium weight
  // arrays -> strong reuse, still memory-intensive.
  WorkloadSpec s;
  s.name = "art";
  s.private_bytes = 8ULL << 20;
  s.shared_bytes = 2ULL << 20;
  s.hot_bytes = 2ULL << 20;
  s.hot_fraction = 0.65;
  s.shared_fraction = 0.05;
  s.write_fraction = 0.25;
  s.compute_per_access = 25;
  s.rounds = 6;
  s.accesses_per_round = 100000;
  s.imbalance = 0.0;
  return s;
}

WorkloadSpec equake_spec() {
  // Earthquake FEM: sparse/irregular accesses over a shared mesh plus
  // skewed per-row work -> intrinsic thread imbalance that coloring
  // cannot remove (paper: runtime gain exceeds idle gain here).
  WorkloadSpec s;
  s.name = "equake";
  s.private_bytes = 8ULL << 20;
  s.shared_bytes = 8ULL << 20;
  s.hot_bytes = 1ULL << 20;
  s.hot_fraction = 0.3;
  s.shared_fraction = 0.3;
  s.shared_first_touch_distributed = true;  // parallel mesh init
  s.write_fraction = 0.2;
  s.compute_per_access = 30;
  s.rounds = 5;
  s.accesses_per_round = 90000;
  s.imbalance = 0.4;
  return s;
}

WorkloadSpec bodytrack_spec() {
  // Vision pipeline: alternating parallel kernels and a master-side
  // stage per frame; moderate memory intensity.
  WorkloadSpec s;
  s.name = "bodytrack";
  s.private_bytes = 6ULL << 20;
  s.shared_bytes = 4ULL << 20;
  s.hot_bytes = 1024ULL << 10;
  s.hot_fraction = 0.55;
  s.shared_fraction = 0.04;
  s.write_fraction = 0.3;
  s.compute_per_access = 35;
  s.rounds = 6;
  s.accesses_per_round = 70000;
  s.imbalance = 0.1;
  s.serial_accesses_per_round = 6000;
  s.serial_compute_per_access = 40;
  return s;
}

WorkloadSpec freqmine_spec() {
  // FP-growth mining: biggest heap of the set with heavy reuse. The
  // per-thread heap deliberately exceeds what a *full* MEM+LLC partition
  // can color at 16 threads (8 banks x 2 LLC colors), so the fully
  // partitioned policy must fall back to uncolored (often remote) pages
  // -- the mechanism behind the paper's observation that LLC+MEM(part)
  // beats MEM+LLC for freqmine at 16 threads.
  WorkloadSpec s;
  s.name = "freqmine";
  s.private_bytes = 40ULL << 20;
  s.shared_bytes = 4ULL << 20;
  s.hot_bytes = 2ULL << 20;
  s.hot_fraction = 0.6;
  s.shared_fraction = 0.05;
  s.write_fraction = 0.35;
  s.compute_per_access = 25;
  s.rounds = 5;
  s.accesses_per_round = 110000;
  s.imbalance = 0.15;
  return s;
}

WorkloadSpec blackscholes_spec() {
  // Option pricing: small per-thread state, big read-only input, high
  // compute per access, and a dominant master/serial share. Paper: least
  // improvement of the six.
  WorkloadSpec s;
  s.name = "blackscholes";
  s.private_bytes = 2ULL << 20;
  s.shared_bytes = 12ULL << 20;
  s.hot_bytes = 512ULL << 10;
  s.hot_fraction = 0.75;
  s.shared_fraction = 0.08;
  s.write_fraction = 0.15;
  s.compute_per_access = 150;
  s.rounds = 5;
  s.accesses_per_round = 40000;
  s.imbalance = 0.0;
  s.serial_accesses_per_round = 20000;
  s.serial_compute_per_access = 140;
  return s;
}

std::vector<WorkloadSpec> standard_suite() {
  return {bodytrack_spec(), freqmine_spec(), blackscholes_spec(),
          lbm_spec(),       art_spec(),      equake_spec()};
}

// ---------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------

WorkloadRunner::WorkloadRunner(const core::MachineConfig& machine)
    : machine_(machine) {}

RunResult WorkloadRunner::run(const WorkloadSpec& spec, core::Policy policy,
                              std::span<const unsigned> cores, uint64_t seed) {
  TINT_ASSERT(!cores.empty());
  core::MachineConfig mc = machine_;
  mc.seed = seed;
  core::Session session(mc);
  const unsigned line = session.topology().line_bytes;
  const unsigned T = static_cast<unsigned>(cores.size());

  std::vector<os::TaskId> tasks;
  tasks.reserve(T);
  for (const unsigned c : cores) tasks.push_back(session.create_task(c));
  session.apply_policy(policy, tasks);

  ParallelEngine engine(session);
  BarrierLedger ledger(T);
  Cycles now = 0;

  // Phase 1: the master allocates the shared region. Unless the spec
  // asks for distributed first touch, it also touches every page in a
  // serial section (pages land per the *master's* policy/node).
  os::VirtAddr shared = 0;
  if (spec.shared_bytes > 0) {
    shared = session.heap(tasks[0]).malloc(spec.shared_bytes);
    if (!spec.shared_first_touch_distributed) {
      StreamingPassStream init(shared, spec.shared_bytes, line,
                               /*write=*/true);
      now = engine.run_serial(tasks[0], init, now);
    }
  }

  // Phase 2: parallel init -- every thread allocates and first-touches
  // its own partition (the first-touch pattern the paper calls out).
  std::vector<os::VirtAddr> priv(T);
  for (unsigned i = 0; i < T; ++i)
    priv[i] = session.heap(tasks[i]).malloc(spec.private_bytes);
  {
    std::vector<std::unique_ptr<OpStream>> streams;
    std::vector<OpStream*> ptrs;
    for (unsigned i = 0; i < T; ++i) {
      streams.push_back(std::make_unique<StreamingPassStream>(
          priv[i], spec.private_bytes, line, /*write=*/true,
          spec.compute_per_access / 4));
      ptrs.push_back(streams.back().get());
    }
    const SectionTiming st = engine.run_parallel(tasks, ptrs, now);
    ledger.add_section(st);
    now = st.max_end();
  }
  if (spec.shared_bytes > 0 && spec.shared_first_touch_distributed) {
    // Initialization parallel-for over the shared region: thread i
    // first-touches slice i, so the mesh spreads over every thread's
    // colors and node.
    std::vector<std::unique_ptr<OpStream>> streams;
    std::vector<OpStream*> ptrs;
    const uint64_t slice =
        (spec.shared_bytes / T + line - 1) / line * line;
    for (unsigned i = 0; i < T; ++i) {
      const uint64_t lo = std::min<uint64_t>(i * slice, spec.shared_bytes);
      const uint64_t hi =
          std::min<uint64_t>(lo + slice, spec.shared_bytes);
      streams.push_back(std::make_unique<StreamingPassStream>(
          shared + lo, std::max<uint64_t>(hi - lo, line), line,
          /*write=*/true, spec.compute_per_access / 4));
      ptrs.push_back(streams.back().get());
    }
    const SectionTiming st = engine.run_parallel(tasks, ptrs, now);
    ledger.add_section(st);
    now = st.max_end();
  }

  // Phase 3: alternating serial/parallel rounds.
  for (unsigned r = 0; r < spec.rounds; ++r) {
    if (spec.serial_accesses_per_round > 0) {
      MixedKernelParams mp;
      mp.private_base = priv[0];
      mp.private_bytes = spec.private_bytes;
      mp.shared_base = shared;
      mp.shared_bytes = spec.shared_bytes;
      mp.hot_bytes = spec.hot_bytes;
      mp.hot_fraction = spec.hot_fraction;
      mp.shared_fraction = spec.shared_fraction;
      mp.write_fraction = spec.write_fraction;
      mp.compute_per_access = spec.serial_compute_per_access;
      mp.accesses = spec.serial_accesses_per_round;
      mp.line = line;
      MixedKernelStream serial(mp, mix64(seed ^ mix64(0x5e41a1 + r)));
      now = engine.run_serial(tasks[0], serial, now);
    }

    std::vector<std::unique_ptr<OpStream>> streams;
    std::vector<OpStream*> ptrs;
    for (unsigned i = 0; i < T; ++i) {
      MixedKernelParams mp;
      mp.private_base = priv[i];
      mp.private_bytes = spec.private_bytes;
      mp.shared_base = shared;
      mp.shared_bytes = spec.shared_bytes;
      mp.hot_bytes = spec.hot_bytes;
      mp.hot_fraction = spec.hot_fraction;
      mp.shared_fraction = spec.shared_fraction;
      mp.write_fraction = spec.write_fraction;
      mp.compute_per_access = spec.compute_per_access;
      // Intrinsic skew: later threads carry more work (equake-style).
      const double mult =
          T > 1 ? 1.0 + spec.imbalance * static_cast<double>(i) /
                            static_cast<double>(T - 1)
                : 1.0;
      mp.accesses = static_cast<uint64_t>(
          static_cast<double>(spec.accesses_per_round) * mult);
      mp.line = line;
      streams.push_back(std::make_unique<MixedKernelStream>(
          mp, mix64(seed ^ mix64((uint64_t{r} << 32) | i))));
      ptrs.push_back(streams.back().get());
    }
    const SectionTiming st = engine.run_parallel(tasks, ptrs, now);
    ledger.add_section(st);
    now = st.max_end();
  }

  // Collect metrics.
  RunResult res;
  res.workload = spec.name;
  res.policy = policy;
  res.threads = T;
  res.total_runtime = now;
  res.total_idle = ledger.total_idle();
  res.thread_busy.resize(T);
  res.thread_idle.resize(T);
  for (unsigned i = 0; i < T; ++i) {
    res.thread_busy[i] = ledger.thread_busy(i);
    res.thread_idle[i] = ledger.thread_idle(i);
  }
  for (const os::TaskId t : tasks) {
    const os::TaskAllocStats& as = session.kernel().task(t).alloc_stats();
    res.pages_touched += as.page_faults;
    res.remote_pages += as.remote_pages;
    res.fallback_pages += as.fallback_pages;
    res.colored_pages += as.colored_pages;
  }
  const sim::MemorySystem& ms = session.memsys();
  uint64_t dram = 0, remote = 0, acc = 0;
  double lat_sum = 0;
  for (unsigned c = 0; c < session.topology().num_cores(); ++c) {
    const sim::CoreStats& cs = ms.core_stats(c);
    dram += cs.dram_accesses;
    remote += cs.remote_dram_accesses;
    acc += cs.accesses;
    lat_sum += static_cast<double>(cs.total_latency);
  }
  res.dram_remote_fraction =
      dram ? static_cast<double>(remote) / static_cast<double>(dram) : 0.0;
  res.avg_access_latency = acc ? lat_sum / static_cast<double>(acc) : 0.0;
  res.llc_miss_rate = 1.0 - ms.llc(0).stats().hit_rate();
  uint64_t dram_acc = 0, row_hits = 0;
  for (unsigned n = 0; n < session.topology().num_nodes(); ++n) {
    const sim::DramStats& ds = ms.controller(n).stats();
    dram_acc += ds.accesses;
    row_hits += ds.row_hits;
  }
  res.row_hit_rate = dram_acc ? static_cast<double>(row_hits) /
                                    static_cast<double>(dram_acc)
                              : 0.0;
  const os::KernelStats::Snapshot ks = session.kernel().stats().snapshot();
  res.frames_poisoned = ks.frames_poisoned;
  res.pages_migrated = ks.pages_migrated;
  res.colors_retired = ks.colors_retired;
  res.magazine_hits = ks.magazine_hits;
  res.magazine_misses = ks.magazine_misses;
  res.magazine_drains = ks.magazine_drains;
  res.batch_refills = ks.batch_refills;
  res.ring_alloc_hits = ks.ring_alloc_hits;
  res.ring_full_stalls = ks.ring_full_stalls;
  res.prefault_pages = ks.prefault_pages;
  res.batches_drained = ks.batches_drained;
  res.recolor_calls = ks.recolor_calls;
  for (const os::TaskId t : tasks) {
    const core::HeapStats hs = session.heap(t).stats();
    res.tcache_hits += hs.tcache_hits;
    res.tcache_flushes += hs.tcache_flushes;
    res.tcache_node_flushes += hs.tcache_node_flushes;
  }
  return res;
}

SyntheticResult run_synthetic(const core::MachineConfig& machine,
                              core::Policy policy,
                              std::span<const unsigned> cores, uint64_t bytes,
                              uint64_t seed) {
  core::MachineConfig mc = machine;
  mc.seed = seed;
  core::Session session(mc);
  const unsigned line = session.topology().line_bytes;
  const unsigned T = static_cast<unsigned>(cores.size());

  std::vector<os::TaskId> tasks;
  for (const unsigned c : cores) tasks.push_back(session.create_task(c));
  session.apply_policy(policy, tasks);

  std::vector<std::unique_ptr<OpStream>> streams;
  std::vector<OpStream*> ptrs;
  for (unsigned i = 0; i < T; ++i) {
    const os::VirtAddr base = session.heap(tasks[i]).malloc(bytes);
    streams.push_back(
        std::make_unique<AlternatingStrideStream>(base, bytes, line));
    ptrs.push_back(streams.back().get());
  }
  ParallelEngine engine(session);
  const SectionTiming st = engine.run_parallel(tasks, ptrs, /*start=*/0);

  SyntheticResult res;
  res.cycles = st.duration();
  const sim::MemorySystem& ms = session.memsys();
  uint64_t dram = 0, remote = 0, acc = 0;
  double lat_sum = 0;
  for (unsigned c = 0; c < session.topology().num_cores(); ++c) {
    const sim::CoreStats& cs = ms.core_stats(c);
    dram += cs.dram_accesses;
    remote += cs.remote_dram_accesses;
    acc += cs.accesses;
    lat_sum += static_cast<double>(cs.total_latency);
  }
  res.dram_remote_fraction =
      dram ? static_cast<double>(remote) / static_cast<double>(dram) : 0.0;
  res.avg_access_latency = acc ? lat_sum / static_cast<double>(acc) : 0.0;
  uint64_t dram_acc = 0, row_hits = 0, queue_wait = 0;
  for (unsigned n = 0; n < session.topology().num_nodes(); ++n) {
    const sim::DramStats& ds = ms.controller(n).stats();
    dram_acc += ds.accesses;
    row_hits += ds.row_hits;
    queue_wait += ds.queue_wait;
  }
  res.row_hit_rate = dram_acc ? static_cast<double>(row_hits) /
                                    static_cast<double>(dram_acc)
                              : 0.0;
  if (dram_acc) {
    res.avg_queue_wait =
        static_cast<double>(queue_wait) / static_cast<double>(dram_acc);
    res.avg_link_wait =
        static_cast<double>(ms.interconnect().stats().link_wait) /
        static_cast<double>(dram_acc);
  }
  return res;
}

}  // namespace tint::runtime

// AdmissionController: the tenant lifecycle + QoS layer (DESIGN.md
// section 14).
//
// TintMalloc's coloring contract is only as strong as the process that
// hands colors out: once every (bank, LLC) combination is claimed, a
// new colored tenant either shares a bank with an existing one --
// silently voiding both isolation guarantees -- or must be told *no* up
// front. This layer sits between the workloads (examples, benches, the
// churn engine) and Kernel::create_task / exit_task and makes that
// decision explicit:
//
//   * Per-class color budgets. kGuaranteed tenants get their full
//     budget or an admission *reject* -- never a partial grant.
//     kBurstable tenants take what is free (at least one bank) and may
//     be *downgraded* to best-effort when the palette is dry.
//     kBestEffort tenants run uncolored on the default path.
//   * Bandwidth-aware placement: the target node is chosen by modeled
//     channel headroom (an EWMA of per-controller access deltas against
//     channels * capacity) weighted by free colors -- not by hop count.
//     The contended node stops receiving tenants *before* its
//     controllers saturate.
//   * SLO accounting: the degradation-ladder stages (colored, widened,
//     default, scavenged, failed) become per-class counters, latency
//     samples reservoir-sampled per class yield p50/p99, and
//     fallback_pages of color-granted tenants count as isolation
//     violations. The ladder identity (page_faults == colored_pages +
//     default_pages) is checked per class in every report.
//   * Crash-consistent teardown: teardown() routes through
//     Kernel::reap_task, which marks the task dead *first*, then
//     unmaps every VMA it created, drains its magazine, and clears its
//     color claims -- so a tenant dying mid-fault or mid-heal leaks no
//     frames, no magazine pages, and no color reservations.
//
// Lock order: the registry mutex (rank kAdmission) nests *inside*
// nothing and calls into the kernel (ranks kMm and up). It is never
// held while calling into the ColorGuard (rank kGuard is lower):
// guard priorities are set after the registry lock is released.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "os/kernel.h"
#include "runtime/color_guard.h"
#include "sim/memory_system.h"
#include "util/lock_rank.h"
#include "util/rng.h"

namespace tint::runtime {

enum class TenantClass : uint8_t {
  kGuaranteed = 0,  // full color budget or reject
  kBurstable = 1,   // partial grant, downgradeable
  kBestEffort = 2,  // uncolored, default path
};
inline constexpr unsigned kNumTenantClasses = 3;
const char* to_string(TenantClass cls);

struct ClassBudget {
  unsigned banks = 0;  // bank colors granted on the placement node
  unsigned llcs = 0;   // LLC colors granted (machine-global palette)
};

struct AdmissionConfig {
  ClassBudget guaranteed{4, 2};
  ClassBudget burstable{2, 1};
  // When a burstable tenant finds zero free bank colors, admit it as
  // best-effort (counted as a downgrade) instead of rejecting.
  bool allow_downgrade = true;
  // EWMA smoothing for the per-node controller access deltas behind the
  // bandwidth-headroom placement score.
  double ewma_alpha = 0.3;
  // Modeled per-channel access capacity per observe() interval. A
  // node's headroom is 1 - ewma / (capacity * channels_per_node),
  // clamped at 0.
  uint64_t channel_capacity = 4096;
  // Per-class latency reservoir size (algorithm R); bounds report()
  // memory regardless of how many lifetimes run.
  size_t latency_reservoir = 512;
  uint64_t seed = 0x7e9a57'c01075ULL;
  // Guard priorities assigned per granted class when a ColorGuard is
  // bound: under the kCheapest victim policy a best-effort holder
  // always moves before a burstable one, and that before a guaranteed
  // one.
  unsigned priority_guaranteed = 2;
  unsigned priority_burstable = 1;
  unsigned priority_best_effort = 0;
};

// The admission decision, returned to the workload. When admitted, the
// task exists, is pinned to a core on `node`, and -- for color grants --
// already carries `banks`/`llcs` in its TCB.
struct AdmissionTicket {
  bool admitted = false;
  os::TaskId task = 0;
  TenantClass requested = TenantClass::kBestEffort;
  TenantClass granted = TenantClass::kBestEffort;
  bool downgraded = false;  // requested != granted
  unsigned node = 0;
  std::vector<uint16_t> banks;
  std::vector<uint8_t> llcs;
  // Human-readable admission reason (static storage; never dangles).
  const char* reason = "";
};

// Per-class SLO rollup over *completed* (torn-down) tenants.
struct ClassSlo {
  uint64_t admitted = 0;
  uint64_t rejected = 0;
  uint64_t downgraded_away = 0;  // requested this class, granted lower
  uint64_t completed = 0;
  // Latency percentiles over the reservoir-sampled touch latencies
  // (cycles). Zero until a completed tenant contributed samples.
  double p50_latency = 0.0;
  double p99_latency = 0.0;
  uint64_t latency_samples = 0;  // samples *seen* (reservoir may be smaller)
  // Colored requests served off-color for tenants granted colors at
  // this class: each one is a page living outside the bank set the
  // tenant was promised.
  uint64_t isolation_violations = 0;
  // Degradation-ladder rollup (see os/errors.h). Satisfies
  // page_faults == colored_pages + default_pages per class.
  uint64_t page_faults = 0;
  uint64_t colored_pages = 0;
  uint64_t default_pages = 0;
  uint64_t widened_pages = 0;
  uint64_t scavenged_pages = 0;
  uint64_t failed_allocs = 0;
};

struct SloReport {
  ClassSlo cls[kNumTenantClasses];
  // True when every class satisfies the ladder identity.
  bool ladder_conserved = true;
};

class AdmissionController {
 public:
  // `memsys` feeds the bandwidth-headroom model; only its counters are
  // read. The caller keeps kernel and memsys alive for the controller's
  // lifetime.
  AdmissionController(os::Kernel& kernel, const sim::MemorySystem& memsys,
                      AdmissionConfig cfg = {});

  // Optional: register a ColorGuard so every admitted tenant's heal
  // priority reflects its granted class. Call before the first admit().
  void bind_guard(ColorGuard* guard) { guard_ = guard; }

  // Samples per-node controller access deltas into the headroom EWMAs.
  // Call periodically (the churn engine calls it every few lifetimes);
  // admit() works without it but then places on free colors alone.
  void observe();

  // Admit a tenant at `cls`. See AdmissionTicket. Deterministic given
  // the same kernel/tenant state: no randomness in placement.
  AdmissionTicket admit(TenantClass cls);

  struct TeardownReport {
    bool known = false;  // false: task was never admitted here
    os::Kernel::ReapReport reap;
  };
  // Tears the tenant down crash-consistently (Kernel::reap_task), folds
  // its ladder counters and `latency_samples` (touch latencies in
  // cycles) into its class SLO, and forgets it. Idempotent: a second
  // call returns known == false and touches nothing.
  TeardownReport teardown(os::TaskId task,
                          std::span<const double> latency_samples = {});

  // SLO rollup over completed tenants (p50/p99 computed on demand).
  SloReport report() const;

  size_t live_tenants() const;
  // Modeled bandwidth headroom of `node` in [0, 1] (1 = idle).
  double node_headroom(unsigned node) const;

 private:
  struct Tenant {
    TenantClass requested;
    TenantClass granted;
    unsigned node;
    bool colored;  // granted at least one bank color
  };
  struct ClassAccum {
    ClassSlo slo;                    // percentile fields unused here
    std::vector<double> reservoir;   // algorithm-R latency sample
  };

  AdmissionTicket admit_locked(TenantClass cls);
  // Bank colors of `node` (ascending) held by no live task and not
  // retired; `used_banks` is the live-holder scan done once per admit.
  std::vector<uint16_t> free_banks_locked(
      unsigned node, const std::vector<uint8_t>& used_banks) const;
  std::vector<uint8_t> free_llcs_locked(
      const std::vector<uint8_t>& used_llcs) const;
  // Online nodes ordered best placement first.
  std::vector<unsigned> placement_order_locked(
      const std::vector<uint8_t>& used_banks) const;
  os::TaskId spawn_locked(unsigned node);

  os::Kernel& kernel_;
  const sim::MemorySystem& memsys_;
  const hw::Topology& topo_;
  AdmissionConfig cfg_;
  ColorGuard* guard_ = nullptr;

  mutable util::RankedMutex<util::lock_rank::kAdmission> mu_;
  std::unordered_map<os::TaskId, Tenant> tenants_;
  ClassAccum accum_[kNumTenantClasses];
  tint::Rng rng_;  // reservoir sampling only
  // Bandwidth model state: cumulative per-node access totals at the
  // last observe(), and the EWMA'd deltas.
  std::vector<uint64_t> prev_node_accesses_;
  std::vector<double> node_ewma_;
  // Per-node round-robin core cursor for pinning.
  std::vector<unsigned> core_cursor_;
};

}  // namespace tint::runtime

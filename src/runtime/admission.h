// AdmissionController: the tenant lifecycle + QoS layer (DESIGN.md
// section 14).
//
// TintMalloc's coloring contract is only as strong as the process that
// hands colors out: once every (bank, LLC) combination is claimed, a
// new colored tenant either shares a bank with an existing one --
// silently voiding both isolation guarantees -- or must be told *no* up
// front. This layer sits between the workloads (examples, benches, the
// churn engine) and Kernel::create_task / exit_task and makes that
// decision explicit:
//
//   * Per-class color budgets. kGuaranteed tenants get their full
//     budget or an admission *reject* -- never a partial grant.
//     kBurstable tenants take what is free (at least one bank) and may
//     be *downgraded* to best-effort when the palette is dry.
//     kBestEffort tenants run uncolored on the default path.
//   * Bandwidth-aware placement: the target node is chosen by modeled
//     channel headroom (an EWMA of per-controller access deltas against
//     channels * capacity) weighted by free colors -- not by hop count.
//     The contended node stops receiving tenants *before* its
//     controllers saturate.
//   * SLO accounting: the degradation-ladder stages (colored, widened,
//     default, scavenged, failed) become per-class counters, latency
//     samples reservoir-sampled per class yield p50/p99, and
//     fallback_pages of color-granted tenants count as isolation
//     violations. The ladder identity (page_faults == colored_pages +
//     default_pages) is checked per class in every report.
//   * Crash-consistent teardown: teardown() routes through
//     Kernel::reap_task, which marks the task dead *first*, then
//     unmaps every VMA it created, drains its magazine, and clears its
//     color claims -- so a tenant dying mid-fault or mid-heal leaks no
//     frames, no magazine pages, and no color reservations.
//
// Lock order: the registry mutex (rank kAdmission) nests *inside*
// nothing and calls into the kernel (ranks kMm and up). It is never
// held while calling into the ColorGuard (rank kGuard is lower):
// guard priorities are set after the registry lock is released.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "os/kernel.h"
#include "runtime/color_guard.h"
#include "sim/memory_system.h"
#include "util/lock_rank.h"
#include "util/rng.h"

namespace tint::runtime {

enum class TenantClass : uint8_t {
  kGuaranteed = 0,  // full color budget or reject
  kBurstable = 1,   // partial grant, downgradeable
  kBestEffort = 2,  // uncolored, default path
};
inline constexpr unsigned kNumTenantClasses = 3;
const char* to_string(TenantClass cls);

struct ClassBudget {
  unsigned banks = 0;  // bank colors granted on the placement node
  unsigned llcs = 0;   // LLC colors granted (machine-global palette)
};

struct AdmissionConfig {
  ClassBudget guaranteed{4, 2};
  ClassBudget burstable{2, 1};
  // When a burstable tenant finds zero free bank colors, admit it as
  // best-effort (counted as a downgrade) instead of rejecting.
  bool allow_downgrade = true;
  // EWMA smoothing for the per-node controller access deltas behind the
  // bandwidth-headroom placement score.
  double ewma_alpha = 0.3;
  // Modeled per-channel access capacity per observe() interval. A
  // node's headroom is 1 - ewma / (capacity * channels_per_node),
  // clamped at 0.
  uint64_t channel_capacity = 4096;
  // Per-class latency reservoir size (algorithm R); bounds report()
  // memory regardless of how many lifetimes run.
  size_t latency_reservoir = 512;
  uint64_t seed = 0x7e9a57'c01075ULL;
  // Guard priorities assigned per granted class when a ColorGuard is
  // bound: under the kCheapest victim policy a best-effort holder
  // always moves before a burstable one, and that before a guaranteed
  // one.
  unsigned priority_guaranteed = 2;
  unsigned priority_burstable = 1;
  unsigned priority_best_effort = 0;

  // --- elastic color runtime (DESIGN.md section 15; default-off) ---
  // When a colored admit is blocked on bank scarcity, ask the bound
  // ColorGuard to shrink the measured-cheapest lower-class tenants on
  // the target node and retry once. Requires bind_guard(); a class can
  // only shrink tenants granted at a *strictly lower* class (the
  // priority shield), and never below shrink_floor_banks survivors.
  bool elastic_shrink = false;
  unsigned shrink_floor_banks = 1;
  // Deadline-aware waitlist: an arrival the palette cannot serve is
  // queued instead of rejected and retried -- earliest deadline first --
  // whenever the palette frees (teardown, shrink, observe). An entry
  // whose deadline passes is dropped and counted as a miss + reject.
  bool waitlist = false;
  // Default deadline in admission ticks. The controller keeps a logical
  // clock (one tick per admit/teardown/observe call) so deadlines are
  // deterministic -- no wall time.
  uint64_t waitlist_deadline_ticks = 64;
  // Re-promote a downgraded burstable to its full burstable grant when
  // the palette can serve it again (checked on teardown/observe).
  bool promote_downgraded = false;
};

// The admission decision, returned to the workload. When admitted, the
// task exists, is pinned to a core on `node`, and -- for color grants --
// already carries `banks`/`llcs` in its TCB.
struct AdmissionTicket {
  bool admitted = false;
  os::TaskId task = 0;
  TenantClass requested = TenantClass::kBestEffort;
  TenantClass granted = TenantClass::kBestEffort;
  bool downgraded = false;  // requested != granted
  unsigned node = 0;
  std::vector<uint16_t> banks;
  std::vector<uint8_t> llcs;
  // Human-readable admission reason (static storage; never dangles).
  const char* reason = "";
  // Waitlisted instead of admitted (cfg.waitlist): poll claim(wait_id)
  // until the entry is admitted from the waitlist or its deadline
  // (absolute admission tick) passes.
  bool waitlisted = false;
  uint64_t wait_id = 0;
  uint64_t deadline = 0;
};

// Per-class SLO rollup over *completed* (torn-down) tenants.
struct ClassSlo {
  uint64_t admitted = 0;
  uint64_t rejected = 0;
  uint64_t downgraded_away = 0;  // requested this class, granted lower
  uint64_t completed = 0;
  // Latency percentiles over the reservoir-sampled touch latencies
  // (cycles). Zero until a completed tenant contributed samples.
  double p50_latency = 0.0;
  double p99_latency = 0.0;
  uint64_t latency_samples = 0;  // samples *seen* (reservoir may be smaller)
  // Colored requests served off-color for tenants granted colors at
  // this class: each one is a page living outside the bank set the
  // tenant was promised.
  uint64_t isolation_violations = 0;
  // Degradation-ladder rollup (see os/errors.h). Satisfies
  // page_faults == colored_pages + default_pages per class.
  uint64_t page_faults = 0;
  uint64_t colored_pages = 0;
  uint64_t default_pages = 0;
  uint64_t widened_pages = 0;
  uint64_t scavenged_pages = 0;
  uint64_t failed_allocs = 0;
  // --- elastic lifecycle (accounted on the *requested* class) ---
  uint64_t waitlisted = 0;             // arrivals queued with a deadline
  uint64_t admitted_from_waitlist = 0; // queued arrivals later admitted
  uint64_t deadline_missed = 0;        // queued arrivals that expired
  uint64_t promoted = 0;               // downgraded burstables re-promoted
};

struct SloReport {
  ClassSlo cls[kNumTenantClasses];
  // True when every class satisfies the ladder identity.
  bool ladder_conserved = true;
};

// Lock-free lifecycle counters, readable from any thread without the
// registry mutex (the per-class SLO ledger stays under it). All fields
// are individually atomic; snapshot() takes a relaxed copy of each --
// like KernelStats/GuardStats, a snapshot is a consistent *set of
// loads*, not a cross-field transaction.
struct AdmissionStats {
  std::atomic<uint64_t> admits{0};     // tickets granted (any class)
  std::atomic<uint64_t> rejects{0};    // hard rejects (incl. expired waits)
  std::atomic<uint64_t> downgrades{0};
  std::atomic<uint64_t> waitlist_enqueued{0};
  std::atomic<uint64_t> waitlist_admitted{0};
  std::atomic<uint64_t> waitlist_expired{0};
  std::atomic<uint64_t> waitlist_cancelled{0};
  std::atomic<uint64_t> promotions{0};
  std::atomic<uint64_t> shrink_requests{0};    // start_shrink calls issued
  std::atomic<uint64_t> shrink_banks_freed{0}; // colors those calls dropped

  struct Snapshot {
    uint64_t admits = 0;
    uint64_t rejects = 0;
    uint64_t downgrades = 0;
    uint64_t waitlist_enqueued = 0;
    uint64_t waitlist_admitted = 0;
    uint64_t waitlist_expired = 0;
    uint64_t waitlist_cancelled = 0;
    uint64_t promotions = 0;
    uint64_t shrink_requests = 0;
    uint64_t shrink_banks_freed = 0;
  };
  Snapshot snapshot() const {
    const auto ld = [](const std::atomic<uint64_t>& a) {
      return a.load(std::memory_order_relaxed);
    };
    return {ld(admits),           ld(rejects),
            ld(downgrades),       ld(waitlist_enqueued),
            ld(waitlist_admitted), ld(waitlist_expired),
            ld(waitlist_cancelled), ld(promotions),
            ld(shrink_requests),  ld(shrink_banks_freed)};
  }
};

class AdmissionController {
 public:
  // `memsys` feeds the bandwidth-headroom model; only its counters are
  // read. The caller keeps kernel and memsys alive for the controller's
  // lifetime.
  AdmissionController(os::Kernel& kernel, const sim::MemorySystem& memsys,
                      AdmissionConfig cfg = {});

  // Optional: register a ColorGuard so every admitted tenant's heal
  // priority reflects its granted class. Call before the first admit().
  void bind_guard(ColorGuard* guard) { guard_ = guard; }

  // Samples per-node controller access deltas into the headroom EWMAs.
  // Call periodically (the churn engine calls it every few lifetimes);
  // admit() works without it but then places on free colors alone.
  // With the elastics on, observe() is also the palette-scan trigger:
  // it shrinks tenants holding more banks than their class budget back
  // to it, attempts shrinks for blocked waitlisted arrivals, and then
  // retries the waitlist in deadline order.
  void observe();

  // Admit a tenant at `cls`. See AdmissionTicket. Deterministic given
  // the same kernel/tenant state: no randomness in placement. With
  // cfg.elastic_shrink a blocked colored admit first asks the guard to
  // shrink cheaper lower-class tenants and retries once; with
  // cfg.waitlist a still-blocked arrival is queued (ticket.waitlisted)
  // with deadline now + deadline_ticks (0 = cfg default).
  AdmissionTicket admit(TenantClass cls, uint64_t deadline_ticks = 0);

  // Poll a waitlisted arrival. kReady hands over the admission ticket
  // exactly once (the tenant is live from the moment the retry admitted
  // it; the caller owns teardown from here). kGone covers expired,
  // cancelled, unknown and already-claimed ids.
  struct WaitOutcome {
    enum class State { kPending, kReady, kGone } state = State::kGone;
    AdmissionTicket ticket;
  };
  WaitOutcome claim(uint64_t wait_id);

  // Abandon a waitlisted arrival: a pending entry is dropped; an
  // already-admitted-but-unclaimed one is torn down (so callers that
  // stop polling leak nothing). Returns true when something was removed.
  bool cancel_wait(uint64_t wait_id);

  // Retry the waitlist now (deadline order), e.g. after an external
  // palette free such as a RAS retirement replacement. teardown() and
  // observe() call this internally. Returns entries admitted.
  unsigned retry_waitlist();

  size_t waitlist_depth() const;

  // Lock-free lifecycle counters (see AdmissionStats).
  const AdmissionStats& stats() const { return stats_; }

  struct TeardownReport {
    bool known = false;  // false: task was never admitted here
    os::Kernel::ReapReport reap;
  };
  // Tears the tenant down crash-consistently (Kernel::reap_task), folds
  // its ladder counters and `latency_samples` (touch latencies in
  // cycles) into its class SLO, and forgets it. Idempotent: a second
  // call returns known == false and touches nothing.
  TeardownReport teardown(os::TaskId task,
                          std::span<const double> latency_samples = {});

  // SLO rollup over completed tenants (p50/p99 computed on demand).
  SloReport report() const;

  size_t live_tenants() const;
  // Modeled bandwidth headroom of `node` in [0, 1] (1 = idle).
  double node_headroom(unsigned node) const;

 private:
  struct Tenant {
    TenantClass requested;
    TenantClass granted;
    unsigned node;
    bool colored;  // granted at least one bank color
  };
  struct ClassAccum {
    ClassSlo slo;                    // percentile fields unused here
    std::vector<double> reservoir;   // algorithm-R latency sample
  };
  struct Waiting {
    uint64_t wait_id;
    TenantClass cls;
    uint64_t deadline;  // absolute tick; dropped once clock_ passes it
  };
  // One guard shrink the elastic planner decided on (executed outside
  // mu_ -- rank kGuard sits below kAdmission).
  struct ShrinkPlan {
    os::TaskId victim;
    unsigned drop;
    unsigned floor;
  };

  // Pure admission attempt: grants + per-class admit accounting on
  // success, *no* reject/waitlist accounting on failure (the callers --
  // admit(), the waitlist retry -- decide what a failure means).
  AdmissionTicket attempt_locked(TenantClass cls);
  // Advances the logical clock and expires overdue waitlist entries.
  void tick_locked();
  // Plans shrinks that would unblock a colored admit at `cls`: scans
  // placement-ordered nodes for one whose deficit is coverable by
  // shrinking strictly-lower-class colored tenants (cheapest first,
  // cost = resident colored pages), and returns the plans for the first
  // such node. Empty when infeasible -- the planner never shrinks
  // gratuitously for an admit that would still fail.
  std::vector<ShrinkPlan> plan_admit_shrink_locked(TenantClass cls);
  // Plans shrinks for tenants holding more banks than their granted
  // class budget allows (the palette-scan trigger).
  std::vector<ShrinkPlan> plan_overbudget_shrink_locked();
  // Deadline-order retry of the waitlist; admitted tickets are parked in
  // ready_ for claim() and appended to `granted` so the caller can set
  // guard priorities after unlocking.
  void retry_waitlist_locked(std::vector<AdmissionTicket>& granted);
  // Re-promotes downgraded burstables whose full grant fits again.
  void promote_locked(std::vector<AdmissionTicket>& granted);
  // Executes plans against the guard. Caller must NOT hold mu_.
  void execute_shrinks(const std::vector<ShrinkPlan>& plans);
  void apply_guard_priorities(const std::vector<AdmissionTicket>& granted);
  // Bank colors of `node` (ascending) held by no live task and not
  // retired; `used_banks` is the live-holder scan done once per admit.
  std::vector<uint16_t> free_banks_locked(
      unsigned node, const std::vector<uint8_t>& used_banks) const;
  std::vector<uint8_t> free_llcs_locked(
      const std::vector<uint8_t>& used_llcs) const;
  // Online nodes ordered best placement first.
  std::vector<unsigned> placement_order_locked(
      const std::vector<uint8_t>& used_banks) const;
  os::TaskId spawn_locked(unsigned node);

  os::Kernel& kernel_;
  const sim::MemorySystem& memsys_;
  const hw::Topology& topo_;
  AdmissionConfig cfg_;
  ColorGuard* guard_ = nullptr;

  mutable util::RankedMutex<util::lock_rank::kAdmission> mu_;
  std::unordered_map<os::TaskId, Tenant> tenants_;
  ClassAccum accum_[kNumTenantClasses];
  AdmissionStats stats_;
  // Waitlist state (all under mu_): pending entries, tickets admitted
  // from the waitlist awaiting claim(), the logical clock and id source.
  std::vector<Waiting> waitlist_;
  std::unordered_map<uint64_t, AdmissionTicket> ready_;
  uint64_t clock_ = 0;
  uint64_t next_wait_id_ = 1;
  tint::Rng rng_;  // reservoir sampling only
  // Bandwidth model state: cumulative per-node access totals at the
  // last observe(), and the EWMA'd deltas.
  std::vector<uint64_t> prev_node_accesses_;
  std::vector<double> node_ewma_;
  // Per-node round-robin core cursor for pinning.
  std::vector<unsigned> core_cursor_;
};

}  // namespace tint::runtime

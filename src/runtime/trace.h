// Access-trace capture, analysis and replay.
//
// `TraceRecorder` wraps a Session's access path and logs every memory
// reference with its translation and measured latency. The trace can be
//   * analyzed (`TraceAnalysis`): latency histogram, per-node traffic,
//     bank touch counts, color conformance -- the data behind Figs. 7-9,
//   * replayed (`TraceReplayStream`) as an OpStream against a different
//     machine or policy: record once under buddy, replay under MEM+LLC
//     to compare placements on an *identical* reference stream,
//   * exported as CSV for external tooling.
#pragma once

#include <mutex>
#include <string>
#include <vector>

#include "core/session.h"
#include "runtime/sim_thread.h"
#include "util/lock_rank.h"
#include "util/stats.h"

namespace tint::runtime {

struct TraceRecord {
  os::VirtAddr va = 0;
  uint64_t pa = 0;
  Cycles start = 0;
  Cycles latency = 0;
  os::TaskId task = os::kNoTask;
  uint8_t node = 0;        // home node of the physical line
  uint16_t bank_color = 0;
  uint8_t llc_color = 0;
  bool write = false;
  bool faulted = false;
};

class TraceRecorder {
 public:
  // `capacity` bounds memory use; older records are kept (head of run)
  // and later ones dropped once full (dropped count is reported).
  explicit TraceRecorder(core::Session& session, size_t capacity = 1 << 20);

  // Timed access through the session, recorded. Safe to call from
  // concurrent threads: the recorder mutex (rank kTrace, below every
  // kernel lock) is held across the whole access so the record sequence
  // stays a coherent interleaving and the memory-system model is never
  // entered concurrently. Every over-capacity access is counted in
  // dropped() -- the count cannot under-report under contention.
  Cycles access(os::TaskId task, os::VirtAddr va, bool write, Cycles now);

  // The records vector is only safe to read once concurrent access()
  // callers have quiesced (joined); the accessors below do not copy.
  const std::vector<TraceRecord>& records() const { return records_; }
  uint64_t dropped() const {
    std::lock_guard<Mutex> lk(mu_);
    return dropped_;
  }
  void clear();

  // Writes "va,pa,start,latency,task,node,bank,llc,write,faulted" rows.
  std::string to_csv() const;

 private:
  using Mutex = util::RankedMutex<util::lock_rank::kTrace>;

  core::Session& session_;
  size_t capacity_;
  mutable Mutex mu_;
  std::vector<TraceRecord> records_;  // guarded by mu_
  uint64_t dropped_ = 0;              // guarded by mu_
};

// Aggregate view of a trace.
struct TraceAnalysis {
  Summary latency;
  std::vector<uint64_t> accesses_per_node;     // by home node
  std::vector<uint64_t> accesses_per_bank;     // by bank color
  std::vector<uint64_t> accesses_per_llc;      // by LLC color
  uint64_t writes = 0;
  uint64_t faults = 0;
  uint64_t remote = 0;  // line's node != task's node at record time

  double remote_fraction() const {
    return latency.count()
               ? static_cast<double>(remote) /
                     static_cast<double>(latency.count())
               : 0.0;
  }
};

// Analyzes records; `task_node(task)` maps a task to its local node.
TraceAnalysis analyze_trace(const std::vector<TraceRecord>& records,
                            const core::Session& session);

// Replays a recorded trace (of one task) as an op stream: same virtual
// addresses and read/write mix, timing re-simulated.
class TraceReplayStream final : public OpStream {
 public:
  // Replays the subset of `records` belonging to `task`; addresses are
  // rebased so the replay target may have a different heap base.
  TraceReplayStream(const std::vector<TraceRecord>& records, os::TaskId task,
                    os::VirtAddr old_base, os::VirtAddr new_base);
  bool next(Op& op) override;
  size_t length() const { return ops_.size(); }

 private:
  std::vector<Op> ops_;
  size_t i_ = 0;
};

}  // namespace tint::runtime

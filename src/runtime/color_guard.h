// ColorGuard: the self-healing color runtime (DESIGN.md section 13).
//
// TintMalloc colors tasks once, at start. When tenants arrive later and
// collide on a bank, or RAS retires a color, the layout silently
// degrades until a restart. The ColorGuard closes that loop at runtime:
// it periodically samples per-bank-color contention from the memory
// controllers (and per-LLC-color interference from the shared LLC),
// detects *hot* colors with an EWMA filtered through hysteresis bands,
// and heals live tenants -- swapping the hot color for a quiet one via
// ColorAdvisor::plan_recolor + Kernel::recolor_task, then migrating the
// tenant's affected pages with migrate_page under a per-epoch budget.
//
// The robustness core is the failure envelope, not the happy path:
//
//   * failed migrations (target exhaustion, poisoned frames, races with
//     STW / offlining) retry with capped exponential backoff;
//   * a tenant whose heal keeps failing rolls back to its original
//     color set (one atomic swap back + best-effort return migration),
//     so partial migrations never strand a tenant between two sets;
//   * oscillation is damped by per-tenant cool-down epochs after every
//     heal or rollback;
//   * under system-wide pressure (the ladder reports allocation
//     failures or scavenging, or a node is offline) the guard degrades
//     to observe-only for the epoch -- sampling continues, healing
//     pauses, and guard_suppressed_epochs counts it. The guard never
//     makes a bad situation worse.
//
// Default-off (`GuardConfig::enabled = false`): a constructed guard
// only observes, mutates nothing, and leaves the serial determinism
// goldens bit-identical. Epochs are driven either manually
// (`run_epoch()`, deterministic -- what the tests and the serial demo
// use) or by a background thread (`start()`/`stop()`), which is safe
// against concurrent faults, STW invariant walks and node hotplug (the
// guard torture test runs all three at once under TSan).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/color_advisor.h"
#include "os/kernel.h"
#include "sim/memory_system.h"
#include "util/lock_rank.h"

namespace tint::runtime {

// How the guard picks which holder of a collided color moves.
enum class VictimPolicy : uint8_t {
  // Move the *cheapest* tenant: order holders by priority (see
  // set_tenant_priority -- higher-priority tenants move last), then by
  // measured traffic cost (resident pages on the hot color weighted by
  // the DRAM-access rate of the tenant's core this epoch), then newest
  // first as the tie-break. This is the DReAM-style policy: decisions
  // follow observed counters, not arrival order.
  kCheapest = 0,
  // Legacy PR-5 policy: the newest holder moves, unconditionally (the
  // earlier tenant keeps the layout it was promised).
  kNewest,
};

struct GuardConfig {
  // Master switch. Off (the default): run_epoch() samples and updates
  // the EWMAs but never touches a task -- the determinism goldens pin
  // this. Healing requires an explicit opt-in.
  bool enabled = false;
  // Victim selection for collision heals.
  VictimPolicy victim_policy = VictimPolicy::kCheapest;
  // EWMA smoothing factor for the per-color conflict rate (0..1; higher
  // = reacts faster, forgets faster).
  double ewma_alpha = 0.4;
  // Hysteresis band: a color turns hot when its EWMA conflict rate
  // crosses hot_enter, and cools only once it falls below hot_exit.
  double hot_enter = 0.35;
  double hot_exit = 0.15;
  // Banks with fewer accesses than this in an epoch contribute a zero
  // sample (decay) instead of a noisy ratio.
  uint64_t min_epoch_accesses = 64;
  // Pages migrated per epoch, across all tenants (the heal's dribble
  // rate -- bounds the migration burst a heal may inject).
  unsigned migration_budget = 32;
  // Capped exponential backoff after a failed migration: the tenant
  // waits 1 + min(cap, base << (failures-1)) epochs before retrying.
  unsigned backoff_base_epochs = 1;
  unsigned backoff_cap_epochs = 8;
  // Consecutive failed attempts before the tenant rolls back to its
  // original color set.
  unsigned max_heal_failures = 3;
  // Heal hot *LLC* colors through the same swap+migrate pipeline as
  // banks (still gated by `enabled`). On by default because a disabled
  // guard never mutates anyway; turn off to restrict healing to the
  // bank axis.
  bool heal_llc = true;
  // Epochs a tenant is untouchable after a completed heal (doubled
  // after a rollback) -- the oscillation damper.
  unsigned cooldown_epochs = 4;
  // Observe-only triggers: epoch deltas of ladder pressure counters at
  // or above these thresholds suppress healing for the epoch.
  uint64_t suppress_alloc_failures = 1;
  uint64_t suppress_scavenges = 1;
};

struct GuardStats {
  std::atomic<uint64_t> epochs_run{0};
  // Epochs that degraded to observe-only under system-wide pressure.
  std::atomic<uint64_t> guard_suppressed_epochs{0};
  std::atomic<uint64_t> hot_colors_detected{0};  // cold->hot transitions
  std::atomic<uint64_t> heals_started{0};        // recolor swaps issued
  std::atomic<uint64_t> heals_completed{0};      // tenants fully migrated
  std::atomic<uint64_t> pages_recolored{0};      // successful migrations
  std::atomic<uint64_t> migrations_failed{0};    // hard failures (backoff)
  std::atomic<uint64_t> migration_retries{0};    // races skipped + re-tries
  std::atomic<uint64_t> rollbacks{0};            // heals undone
  std::atomic<uint64_t> rollback_pages{0};       // pages migrated back
  std::atomic<uint64_t> cooldown_skips{0};       // heals damped by cooldown
  // Stored TaskIds whose tenant exited between the sample and the heal
  // step: skipped (and in-flight heals cancelled), never dereferenced.
  std::atomic<uint64_t> stale_tenant_skips{0};
  // --- LLC healing (the bank counters above include both axes) ---
  std::atomic<uint64_t> llc_hot_colors_detected{0};  // cold->hot, LLC axis
  std::atomic<uint64_t> llc_heals_started{0};
  std::atomic<uint64_t> llc_heals_completed{0};
  // --- elastic shrink ---
  std::atomic<uint64_t> shrinks_started{0};        // shrink swaps issued
  std::atomic<uint64_t> shrinks_completed{0};      // all pages on survivors
  std::atomic<uint64_t> shrink_colors_dropped{0};  // colors released
  std::atomic<uint64_t> shrink_rollbacks{0};       // dropped colors re-added
  // Dropped colors a rollback could *not* re-add (granted away meanwhile).
  std::atomic<uint64_t> shrink_colors_lost{0};

  struct Snapshot {
    uint64_t epochs_run = 0;
    uint64_t guard_suppressed_epochs = 0;
    uint64_t hot_colors_detected = 0;
    uint64_t heals_started = 0;
    uint64_t heals_completed = 0;
    uint64_t pages_recolored = 0;
    uint64_t migrations_failed = 0;
    uint64_t migration_retries = 0;
    uint64_t rollbacks = 0;
    uint64_t rollback_pages = 0;
    uint64_t cooldown_skips = 0;
    uint64_t stale_tenant_skips = 0;
    uint64_t llc_hot_colors_detected = 0;
    uint64_t llc_heals_started = 0;
    uint64_t llc_heals_completed = 0;
    uint64_t shrinks_started = 0;
    uint64_t shrinks_completed = 0;
    uint64_t shrink_colors_dropped = 0;
    uint64_t shrink_rollbacks = 0;
    uint64_t shrink_colors_lost = 0;
  };
  Snapshot snapshot() const {
    const auto ld = [](const std::atomic<uint64_t>& a) {
      return a.load(std::memory_order_relaxed);
    };
    return {ld(epochs_run),       ld(guard_suppressed_epochs),
            ld(hot_colors_detected), ld(heals_started),
            ld(heals_completed),  ld(pages_recolored),
            ld(migrations_failed), ld(migration_retries),
            ld(rollbacks),        ld(rollback_pages),
            ld(cooldown_skips),   ld(stale_tenant_skips),
            ld(llc_hot_colors_detected), ld(llc_heals_started),
            ld(llc_heals_completed), ld(shrinks_started),
            ld(shrinks_completed), ld(shrink_colors_dropped),
            ld(shrink_rollbacks), ld(shrink_colors_lost)};
  }
};

class ColorGuard {
 public:
  // `memsys` is the sampling source; the guard only reads its counters.
  // The caller keeps both alive for the guard's lifetime. Sampling must
  // not race with a thread *advancing* the simulation (the engine is
  // single-threaded; interleave run_epoch() between sections, as the
  // mixed_tenants demo does) -- everything the guard does against the
  // *kernel* is safe from any thread.
  ColorGuard(os::Kernel& kernel, const sim::MemorySystem& memsys,
             GuardConfig cfg = {});
  ~ColorGuard();
  ColorGuard(const ColorGuard&) = delete;
  ColorGuard& operator=(const ColorGuard&) = delete;

  // One watchdog epoch: sample -> detect -> (unless disabled, suppressed
  // or cooling) heal. Serialized internally; safe from any thread.
  void run_epoch();

  // Background mode: run_epoch() every `period` until stop(). The guard
  // thread acquires kernel locks only through public kernel APIs, always
  // from rank kGuard (outermost) -- see DESIGN.md section 13.
  void start(std::chrono::milliseconds period);
  void stop();

  // Manually begin a heal (the deterministic path tests use): swaps
  // `hot_color` out of `task` on the given axis and queues its pages
  // for migration in the following epochs. Returns false when the
  // tenant is mid-heal or cooling down, or no healthy replacement color
  // exists.
  bool start_heal(os::TaskId task, unsigned hot_color,
                  core::ColorDim dim = core::ColorDim::kBank);

  // Elastic shrink (DESIGN.md section 15): drop up to `drop_count` of
  // `task`'s coldest bank colors -- never below `floor` survivors --
  // releasing them for re-admission. The color-set swap is immediate
  // (the freed colors are grantable the moment this returns); the
  // tenant's resident pages on the dropped colors dribble onto the
  // survivors over the following epochs under the usual budget, with
  // the same backoff/rollback/cooldown envelope as a heal (a shrink
  // rollback re-adds only colors still unclaimed -- colors granted away
  // meanwhile stay lost and are counted). Returns the number of colors
  // actually dropped (0 when the tenant is unknown, dead, mid-heal,
  // cooling, or already at the floor).
  unsigned start_shrink(os::TaskId task, unsigned drop_count,
                        unsigned floor = 1);

  // --- observability ---
  const GuardStats& stats() const { return stats_; }
  double bank_ewma(unsigned bank_color) const {
    return bank_ewma_[bank_color].load(std::memory_order_relaxed);
  }
  bool bank_hot(unsigned bank_color) const {
    return bank_hot_[bank_color].load(std::memory_order_relaxed) != 0;
  }
  // LLC colors: EWMA over each color's share of cross-requester
  // evictions; hot flags both select LLC heal targets (cfg.heal_llc)
  // and feed the avoid-set so an LLC heal never lands on another
  // thrashing slice.
  double llc_ewma(unsigned llc_color) const {
    return llc_ewma_[llc_color].load(std::memory_order_relaxed);
  }
  bool llc_hot(unsigned llc_color) const {
    return llc_hot_[llc_color].load(std::memory_order_relaxed) != 0;
  }

  enum class TenantPhase { kIdle, kMigrating, kCooldown };
  TenantPhase tenant_phase(os::TaskId task) const;

  // Per-tenant heal priority for the kCheapest victim policy: when a
  // collision must be broken, lower-priority holders move first, and a
  // higher-priority tenant moves only when every lower holder is
  // ineligible (cooling, mid-heal, dead). The admission controller sets
  // this from the tenant's QoS class; unset tenants default to 0. Safe
  // from any thread.
  void set_tenant_priority(os::TaskId task, unsigned priority);
  unsigned tenant_priority(os::TaskId task) const;

 private:
  struct TenantState {
    TenantPhase phase = TenantPhase::kIdle;
    // What the in-flight operation is. A heal swaps one color on one
    // axis (old_colors/new_colors each hold one entry); a shrink drops
    // several bank colors with no replacements (new_colors empty).
    enum class Op : uint8_t { kHeal, kShrink } op = Op::kHeal;
    core::ColorDim dim = core::ColorDim::kBank;
    std::vector<uint16_t> old_colors;
    std::vector<uint16_t> new_colors;
    unsigned failures = 0;            // consecutive failed attempts
    uint64_t next_attempt_epoch = 0;  // backoff gate
    uint64_t cooldown_until = 0;
    unsigned priority = 0;            // kCheapest policy: higher moves later
  };

  void sample_locked();
  bool under_pressure_locked();
  void heal_locked(uint64_t epoch, unsigned& budget);
  // Orders the holders of a collided color so the preferred victim comes
  // first, per cfg_.victim_policy.
  std::vector<os::TaskId> order_victims_locked(
      std::vector<os::TaskId> holders, unsigned color, core::ColorDim dim);
  bool start_heal_locked(os::TaskId task, unsigned hot_color,
                         core::ColorDim dim);
  unsigned start_shrink_locked(os::TaskId task, unsigned drop_count,
                               unsigned floor);
  void advance_locked(os::TaskId task, TenantState& st, unsigned& budget,
                      uint64_t epoch);
  void rollback_locked(os::TaskId task, TenantState& st, unsigned& budget,
                       uint64_t epoch);
  // Pages of `task` still resident on `color` along `dim`.
  std::vector<os::VirtAddr> resident_locked(os::TaskId task, unsigned color,
                                            core::ColorDim dim) const;
  std::vector<uint8_t> hot_set_locked() const;
  std::vector<uint8_t> llc_hot_set_locked() const;
  TenantState& tenant_locked(os::TaskId task);

  os::Kernel& kernel_;
  const sim::MemorySystem& memsys_;
  const hw::AddressMapping& mapping_;
  core::ColorAdvisor advisor_;
  GuardConfig cfg_;
  GuardStats stats_;

  // Serializes epochs and guards the sampling/tenant state below.
  // Outermost rank: the epoch body calls into the kernel (kMm and up).
  mutable util::RankedMutex<util::lock_rank::kGuard> mu_;
  uint64_t epoch_ = 0;
  // Cumulative controller counters at the last sample (per bank color),
  // so each epoch works on deltas.
  std::vector<uint64_t> prev_bank_accesses_;
  std::vector<uint64_t> prev_bank_conflicts_;
  std::vector<uint64_t> prev_llc_cross_;  // per LLC color
  // Per-core DRAM-access deltas this epoch: the measured traffic the
  // kCheapest victim policy weighs a tenant's resident pages by.
  std::vector<uint64_t> prev_core_dram_;
  std::vector<uint64_t> core_dram_delta_;
  os::KernelStats::Snapshot prev_kernel_;
  std::vector<TenantState> tenants_;  // indexed by TaskId, grown on demand
  // Atomic mirrors so observers (tests, the demo's printout) read the
  // detector state without taking mu_.
  std::unique_ptr<std::atomic<double>[]> bank_ewma_;
  std::unique_ptr<std::atomic<uint8_t>[]> bank_hot_;
  std::unique_ptr<std::atomic<double>[]> llc_ewma_;
  std::unique_ptr<std::atomic<uint8_t>[]> llc_hot_;

  // Background thread plumbing. cv_mu_ is deliberately a plain mutex
  // outside the rank order: it is only held around the wait, never
  // while calling into the kernel.
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::mutex cv_mu_;
  std::condition_variable cv_;
};

}  // namespace tint::runtime

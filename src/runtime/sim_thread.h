// Simulated threads and the discrete-event parallel engine.
//
// Each simulated thread is an in-order core pinned to one hardware core,
// executing an `OpStream` (memory accesses interleaved with compute).
// The engine always advances the thread with the smallest local clock,
// so all shared-state mutations (caches, row buffers, channel queues)
// happen in global time order and contention between threads emerges
// naturally -- exactly like interleaved execution on the real machine,
// but deterministic.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/session.h"
#include "runtime/barrier.h"

namespace tint::runtime {

// One operation of a thread's instruction stream.
struct Op {
  enum class Kind : uint8_t { kAccess, kCompute };
  Kind kind = Kind::kCompute;
  bool write = false;
  os::VirtAddr va = 0;
  // kCompute: the op's duration. kAccess: compute cycles *preceding* the
  // access (folding ALU work into the access op halves the op count).
  Cycles cycles = 0;
};

// A lazily generated operation stream (one per thread per section).
class OpStream {
 public:
  virtual ~OpStream() = default;
  // Produces the next op; returns false at end of stream.
  virtual bool next(Op& op) = 0;
};

// Executes parallel and serial sections against a Session.
class ParallelEngine {
 public:
  explicit ParallelEngine(core::Session& session) : session_(session) {}

  // Runs one parallel section: thread i executes streams[i] on task
  // tasks[i], all starting at `start`. Returns per-thread arrival times
  // (the implicit barrier releases at the max).
  SectionTiming run_parallel(std::span<const os::TaskId> tasks,
                             std::span<OpStream* const> streams, Cycles start);

  // Runs a serial section on one task; returns its end time.
  Cycles run_serial(os::TaskId task, OpStream& stream, Cycles start);

  // Total ops executed since construction (sanity/progress metric).
  uint64_t ops_executed() const { return ops_; }

 private:
  // Advances one thread by a single op at its current time.
  Cycles execute(os::TaskId task, const Op& op, Cycles now);

  core::Session& session_;
  uint64_t ops_ = 0;
};

}  // namespace tint::runtime

// Barrier idle-time accounting (Algorithm 3).
//
// The paper instruments each OpenMP parallel section: every thread
// records its own end time; the implicit barrier releases at the maximum;
// idle[tid] = max - end[tid]. `SectionTiming` holds the arrival times of
// one section, and `BarrierLedger` accumulates per-thread busy and idle
// time across the sections of one benchmark run.
#pragma once

#include <cstdint>
#include <vector>

#include "hw/topology.h"

namespace tint::runtime {

using hw::Cycles;

// Timing of a single parallel section.
struct SectionTiming {
  Cycles start = 0;
  std::vector<Cycles> end;  // absolute arrival time per thread

  Cycles max_end() const;
  Cycles min_end() const;
  // Wall time of the section: release - start.
  Cycles duration() const { return max_end() - start; }
  // Busy time of thread `t` inside the section.
  Cycles busy(unsigned t) const { return end[t] - start; }
  // Wait time of thread `t` at the closing barrier (Algorithm 3 line 10).
  Cycles idle(unsigned t) const { return max_end() - end[t]; }
};

// Accumulates sections for one run.
class BarrierLedger {
 public:
  explicit BarrierLedger(unsigned threads) : busy_(threads), idle_(threads) {}

  void add_section(const SectionTiming& s);

  unsigned threads() const { return static_cast<unsigned>(busy_.size()); }
  unsigned sections() const { return sections_; }
  // Per-thread totals over all recorded sections.
  Cycles thread_busy(unsigned t) const { return busy_[t]; }
  Cycles thread_idle(unsigned t) const { return idle_[t]; }
  // Sum of idle over all threads ("total idle time" of Fig. 12).
  Cycles total_idle() const;
  // Sum of parallel-section wall durations.
  Cycles total_parallel_time() const { return parallel_time_; }

  Cycles max_thread_busy() const;
  Cycles min_thread_busy() const;
  Cycles max_thread_idle() const;

 private:
  std::vector<Cycles> busy_;
  std::vector<Cycles> idle_;
  Cycles parallel_time_ = 0;
  unsigned sections_ = 0;
};

}  // namespace tint::runtime

#include "runtime/offload.h"

#include <algorithm>
#include <cmath>

#include "core/tintmalloc.h"
#include "util/assert.h"

namespace tint::runtime {

OffloadEngine::OffloadEngine(os::Kernel& kernel, OffloadEngineConfig cfg)
    : kernel_(kernel), cfg_(cfg) {}

OffloadEngine::~OffloadEngine() {
  stop();
  std::lock_guard lk(mu_);
  for (const Watch& w : watches_) kernel_.offload_drain_task(w.id);
  watches_.clear();
}

bool OffloadEngine::watch(os::TaskId id) {
  if (!kernel_.offload_enabled()) return false;
  if (!kernel_.offload_attach(id)) return false;
  std::lock_guard lk(mu_);
  for (const Watch& w : watches_)
    if (w.id == id) return true;  // idempotent
  // Seed last_pops from the live counter so the first round measures a
  // real delta, not the task's whole history.
  watches_.push_back({id, kernel_.offload_ring_pops(id), -1.0});
  return true;
}

void OffloadEngine::unwatch(os::TaskId id) {
  {
    std::lock_guard lk(mu_);
    const auto it = std::find_if(watches_.begin(), watches_.end(),
                                 [id](const Watch& w) { return w.id == id; });
    if (it == watches_.end()) return;
    watches_.erase(it);
  }
  kernel_.offload_drain_task(id);
}

void OffloadEngine::attach_heap(core::TintHeap* heap) {
  if (heap == nullptr) return;
  std::lock_guard lk(mu_);
  if (std::find(heaps_.begin(), heaps_.end(), heap) == heaps_.end())
    heaps_.push_back(heap);
}

void OffloadEngine::detach_heap(core::TintHeap* heap) {
  std::lock_guard lk(mu_);
  heaps_.erase(std::remove(heaps_.begin(), heaps_.end(), heap), heaps_.end());
}

size_t OffloadEngine::watched() const {
  std::lock_guard lk(mu_);
  return watches_.size();
}

bool OffloadEngine::run_round() {
  std::lock_guard lk(mu_);
  return run_round_locked();
}

bool OffloadEngine::run_round_locked() {
  const os::KernelConfig::OffloadConfig& oc = kernel_.config().offload;
  bool did_work = false;

  for (size_t i = 0; i < watches_.size();) {
    Watch& w = watches_[i];
    // Observed drain rate: completion-ring pops since the last round,
    // EWMA-smoothed. This is what "pre-faulting ahead of demand" keys
    // off -- the restock target follows the measured burn, not a guess.
    const uint64_t pops = kernel_.offload_ring_pops(w.id);
    const uint64_t delta = pops - w.last_pops;
    w.last_pops = pops;
    const double d = static_cast<double>(delta);
    w.ewma = w.ewma < 0.0 ? d : cfg_.ewma_alpha * d +
                                    (1.0 - cfg_.ewma_alpha) * w.ewma;

    const double want = std::ceil(w.ewma * oc.prefault_headroom);
    const unsigned target = std::max<unsigned>(
        oc.min_stock,
        static_cast<unsigned>(std::min(want, 1e9)));  // kernel clamps to ring

    const os::Kernel::OffloadServiceReport rep =
        kernel_.offload_service(w.id, target);
    stats_.frees_absorbed.fetch_add(rep.frees_absorbed,
                                    std::memory_order_relaxed);
    stats_.frames_recycled.fetch_add(rep.recycled, std::memory_order_relaxed);
    stats_.frames_restocked.fetch_add(rep.restocked,
                                      std::memory_order_relaxed);
    if (rep.frees_absorbed || rep.recycled || rep.restocked) did_work = true;

    if (rep.task_dead) {
      // Final drain returns any still-parked frames to the color lists;
      // later frees of the dead task's frames keep landing in the
      // request ring and are swept by scavenge pressure, exactly like
      // a dead task's magazine.
      const os::TaskId dead = w.id;
      watches_.erase(watches_.begin() + static_cast<ptrdiff_t>(i));
      kernel_.offload_drain_task(dead);
      stats_.dead_task_drops.fetch_add(1, std::memory_order_relaxed);
      continue;  // i now names the next watch
    }
    ++i;
  }

  for (core::TintHeap* heap : heaps_) {
    const uint64_t flushed = heap->drain_deferred_flushes();
    if (flushed > 0) {
      did_work = true;
      stats_.heap_flushes.fetch_add(flushed, std::memory_order_relaxed);
    }
  }

  stats_.rounds_run.fetch_add(1, std::memory_order_relaxed);
  if (did_work) stats_.busy_rounds.fetch_add(1, std::memory_order_relaxed);
  return did_work;
}

void OffloadEngine::start() {
  TINT_ASSERT_MSG(!running_.load(std::memory_order_acquire),
                  "OffloadEngine already running");
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] {
    while (running_.load(std::memory_order_acquire)) {
      const bool busy = run_round();
      if (busy) continue;  // demand present: service again immediately
      std::unique_lock lk(cv_mu_);
      cv_.wait_for(lk, cfg_.idle_sleep, [this] {
        return !running_.load(std::memory_order_acquire);
      });
    }
  });
}

void OffloadEngine::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) {
    if (thread_.joinable()) thread_.join();
    return;
  }
  {
    std::lock_guard lk(cv_mu_);
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

}  // namespace tint::runtime

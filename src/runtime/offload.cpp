#include "runtime/offload.h"

#include <algorithm>
#include <cmath>

#include "core/tintmalloc.h"
#include "util/assert.h"

namespace tint::runtime {

OffloadEngine::OffloadEngine(os::Kernel& kernel, OffloadEngineConfig cfg)
    : kernel_(kernel), cfg_(cfg) {
  // Worker pool: 0 = auto (one per node), otherwise capped at the node
  // count; nodes are distributed round-robin across the pool.
  const unsigned nodes = kernel_.topology().num_nodes();
  unsigned w = kernel_.config().offload.workers;
  if (w == 0) w = nodes;
  w = std::max(1u, std::min(w, nodes));
  workers_.reserve(w);
  for (unsigned i = 0; i < w; ++i) {
    workers_.push_back(std::make_unique<Worker>());
    workers_.back()->index = i;
  }
}

OffloadEngine::~OffloadEngine() {
  stop();
  std::vector<os::TaskId> ids;
  {
    std::lock_guard ctl(ctl_mu_);
    for (const Watch& w : parked_) ids.push_back(w.id);
    parked_.clear();
  }
  for (auto& wk : workers_) {
    std::lock_guard lk(wk->mu);
    for (const Watch& w : wk->watches) ids.push_back(w.id);
    wk->watches.clear();
  }
  for (const os::TaskId id : ids) kernel_.offload_drain_task(id);
}

bool OffloadEngine::watch(os::TaskId id) {
  if (!kernel_.offload_enabled()) return false;
  // Membership changes serialize on the control mutex (worker mutexes
  // guard the vectors against concurrent service iteration).
  std::lock_guard ctl(ctl_mu_);
  for (const Watch& w : parked_)
    if (w.id == id) return true;  // idempotent (still parked)
  for (auto& wk : workers_) {
    std::lock_guard lk(wk->mu);
    for (const Watch& w : wk->watches)
      if (w.id == id) return true;  // idempotent
  }
  const unsigned node = kernel_.task(id).local_node();
  if (!kernel_.node_online(node)) {
    // Home node offline: park, never service cross-node. The rings
    // attach at adoption time, so until the node returns the task's
    // fast paths simply fall through to the magazine tier.
    Watch w;
    w.id = id;
    parked_.push_back(w);
    stats_.tasks_parked.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  if (!kernel_.offload_attach(id)) return false;
  Worker& wk = *workers_[worker_of_node(node)];
  Watch w;
  w.id = id;
  w.last_pops = kernel_.offload_ring_pops(id);
  const os::Kernel::RingStallSnapshot st = kernel_.offload_ring_stalls(id);
  w.last_full = st.full;
  w.last_empty = st.empty;
  std::lock_guard lk(wk.mu);
  wk.watches.push_back(w);
  return true;
}

void OffloadEngine::unwatch(os::TaskId id) {
  bool found = false;
  {
    std::lock_guard ctl(ctl_mu_);
    const auto pit = std::find_if(parked_.begin(), parked_.end(),
                                  [id](const Watch& w) { return w.id == id; });
    if (pit != parked_.end()) {
      parked_.erase(pit);
      found = true;
    }
    if (!found) {
      for (auto& wk : workers_) {
        std::lock_guard lk(wk->mu);
        const auto it =
            std::find_if(wk->watches.begin(), wk->watches.end(),
                         [id](const Watch& w) { return w.id == id; });
        if (it != wk->watches.end()) {
          wk->watches.erase(it);
          found = true;
          break;
        }
      }
    }
  }
  if (found) kernel_.offload_drain_task(id);
}

void OffloadEngine::attach_heap(core::TintHeap* heap) {
  if (heap == nullptr) return;
  std::lock_guard ctl(ctl_mu_);
  if (std::find(heaps_.begin(), heaps_.end(), heap) == heaps_.end())
    heaps_.push_back(heap);
}

void OffloadEngine::detach_heap(core::TintHeap* heap) {
  std::lock_guard ctl(ctl_mu_);
  heaps_.erase(std::remove(heaps_.begin(), heaps_.end(), heap), heaps_.end());
}

size_t OffloadEngine::watched() const {
  size_t n = 0;
  {
    std::lock_guard ctl(ctl_mu_);
    n += parked_.size();
  }
  for (const auto& wk : workers_) {
    std::lock_guard lk(wk->mu);
    n += wk->watches.size();
  }
  return n;
}

size_t OffloadEngine::parked() const {
  std::lock_guard ctl(ctl_mu_);
  return parked_.size();
}

OffloadEngineStats::Snapshot OffloadEngine::worker_snapshot(size_t w) const {
  TINT_ASSERT(w < workers_.size());
  return workers_[w]->stats.snapshot();
}

std::vector<unsigned> OffloadEngine::worker_nodes(size_t w) const {
  TINT_ASSERT(w < workers_.size());
  std::vector<unsigned> nodes;
  for (unsigned n = 0; n < kernel_.topology().num_nodes(); ++n)
    if (worker_owns_node(w, n)) nodes.push_back(n);
  return nodes;
}

void OffloadEngine::rebalance_worker(size_t w) {
  Worker& wk = *workers_[w];
  std::vector<os::TaskId> parked_now;
  {
    std::lock_guard ctl(ctl_mu_);
    {
      // Park live watches whose home node went offline. Their rings
      // were already drained by set_node_online; the drain below only
      // catches frames a racing service round stocked afterwards.
      std::lock_guard lk(wk.mu);
      for (size_t i = 0; i < wk.watches.size();) {
        const os::TaskId id = wk.watches[i].id;
        if (kernel_.node_online(kernel_.task(id).local_node())) {
          ++i;
          continue;
        }
        parked_now.push_back(id);
        Watch p;
        p.id = id;
        parked_.push_back(p);
        wk.watches.erase(wk.watches.begin() + static_cast<ptrdiff_t>(i));
      }
    }
    // Adopt parked tasks whose home node returned and belongs to this
    // worker. Baselines re-seed from the live counters: the parked
    // interval must not read as a burst of demand.
    for (size_t i = 0; i < parked_.size();) {
      const os::TaskId id = parked_[i].id;
      if (!kernel_.task_alive(id)) {
        // Died while parked: nothing attached, nothing to drain.
        parked_.erase(parked_.begin() + static_cast<ptrdiff_t>(i));
        stats_.dead_task_drops.fetch_add(1, std::memory_order_relaxed);
        wk.stats.dead_task_drops.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      const unsigned node = kernel_.task(id).local_node();
      if (!kernel_.node_online(node) || worker_of_node(node) != w) {
        ++i;
        continue;
      }
      if (kernel_.offload_attach(id)) {
        Watch a;
        a.id = id;
        a.last_pops = kernel_.offload_ring_pops(id);
        const os::Kernel::RingStallSnapshot st =
            kernel_.offload_ring_stalls(id);
        a.last_full = st.full;
        a.last_empty = st.empty;
        std::lock_guard lk(wk.mu);
        wk.watches.push_back(a);
        stats_.parked_adopts.fetch_add(1, std::memory_order_relaxed);
        wk.stats.parked_adopts.fetch_add(1, std::memory_order_relaxed);
      }
      parked_.erase(parked_.begin() + static_cast<ptrdiff_t>(i));
    }
  }
  if (!parked_now.empty()) {
    stats_.tasks_parked.fetch_add(parked_now.size(),
                                  std::memory_order_relaxed);
    wk.stats.tasks_parked.fetch_add(parked_now.size(),
                                    std::memory_order_relaxed);
    for (const os::TaskId id : parked_now) kernel_.offload_drain_task(id);
  }
}

bool OffloadEngine::service_worker(size_t w) {
  Worker& wk = *workers_[w];
  const os::KernelConfig::OffloadConfig& oc = kernel_.config().offload;
  bool did_work = false;

  std::lock_guard lk(wk.mu);
  for (size_t i = 0; i < wk.watches.size();) {
    Watch& wt = wk.watches[i];
    // Observed drain rate: completion-ring pops since the last round,
    // EWMA-smoothed. This is what "pre-faulting ahead of demand" keys
    // off -- the restock target follows the measured burn, not a guess.
    const uint64_t pops = kernel_.offload_ring_pops(wt.id);
    const uint64_t delta = pops - wt.last_pops;
    wt.last_pops = pops;
    const double d = static_cast<double>(delta);
    wt.ewma = wt.ewma < 0.0
                  ? d
                  : cfg_.ewma_alpha * d + (1.0 - cfg_.ewma_alpha) * wt.ewma;

    const double want = std::ceil(wt.ewma * oc.prefault_headroom);
    const unsigned target = std::max<unsigned>(
        oc.min_stock,
        static_cast<unsigned>(std::min(want, 1e9)));  // kernel clamps to ring

    const os::Kernel::OffloadServiceReport rep =
        kernel_.offload_service(wt.id, target);
    const auto bump = [&](std::atomic<uint64_t> OffloadEngineStats::*m,
                          uint64_t v) {
      if (v == 0) return;
      (stats_.*m).fetch_add(v, std::memory_order_relaxed);
      (wk.stats.*m).fetch_add(v, std::memory_order_relaxed);
    };
    bump(&OffloadEngineStats::frees_absorbed, rep.frees_absorbed);
    bump(&OffloadEngineStats::frames_recycled, rep.recycled);
    bump(&OffloadEngineStats::frames_restocked, rep.restocked);
    if (rep.frees_absorbed || rep.recycled || rep.restocked) did_work = true;

    if (rep.task_dead) {
      // Final drain returns any still-parked frames to the color lists;
      // later frees of the dead task's frames keep landing in the
      // request ring and are swept by scavenge pressure, exactly like
      // a dead task's magazine.
      const os::TaskId dead = wt.id;
      wk.watches.erase(wk.watches.begin() + static_cast<ptrdiff_t>(i));
      kernel_.offload_drain_task(dead);
      bump(&OffloadEngineStats::dead_task_drops, 1);
      continue;  // i now names the next watch
    }
    if (oc.adaptive_ring) tune_ring(wk, wt);
    ++i;
  }

  stats_.rounds_run.fetch_add(1, std::memory_order_relaxed);
  wk.stats.rounds_run.fetch_add(1, std::memory_order_relaxed);
  if (did_work) {
    stats_.busy_rounds.fetch_add(1, std::memory_order_relaxed);
    wk.stats.busy_rounds.fetch_add(1, std::memory_order_relaxed);
  }
  return did_work;
}

void OffloadEngine::tune_ring(Worker& wk, Watch& w) {
  // Feed the stall EWMAs every round; act only every tune interval so
  // the freeze-swap resize is amortized over many rounds (the magazine
  // tuner's grow/shrink idiom on ring geometry).
  const os::Kernel::RingStallSnapshot st = kernel_.offload_ring_stalls(w.id);
  const double df = static_cast<double>(st.full - w.last_full);
  const double de = static_cast<double>(st.empty - w.last_empty);
  w.last_full = st.full;
  w.last_empty = st.empty;
  w.full_ewma = cfg_.ewma_alpha * df + (1.0 - cfg_.ewma_alpha) * w.full_ewma;
  w.empty_ewma = cfg_.ewma_alpha * de + (1.0 - cfg_.ewma_alpha) * w.empty_ewma;
  if (++w.rounds_since_tune < cfg_.ring_tune_interval) return;
  w.rounds_since_tune = 0;

  const os::KernelConfig::OffloadConfig& oc = kernel_.config().offload;
  // capacity() reports usable slots (one sacrificed); +1 recovers the
  // configured power-of-two depth for the resize arithmetic.
  const unsigned depth = kernel_.offload_ring_capacity(w.id) + 1;
  if (depth <= 1) return;  // never attached (parked): nothing to tune
  if ((w.full_ewma > cfg_.ring_grow_stalls ||
       w.empty_ewma > cfg_.ring_grow_stalls) &&
      depth < oc.ring_depth_max) {
    // Sustained overflow (frees bouncing off a full request ring) or
    // underrun (faults draining the stock faster than one round
    // restocks): more buffer absorbs the burst.
    if (kernel_.offload_resize_task(w.id, depth * 2)) {
      stats_.ring_grows.fetch_add(1, std::memory_order_relaxed);
      wk.stats.ring_grows.fetch_add(1, std::memory_order_relaxed);
    }
  } else if (w.full_ewma < cfg_.ring_shrink_stalls &&
             w.empty_ewma < cfg_.ring_shrink_stalls &&
             depth > oc.ring_depth) {
    // Quiet on both sides: give the frames back toward the configured
    // floor.
    const unsigned target = std::max(oc.ring_depth, depth / 2);
    if (target < depth && kernel_.offload_resize_task(w.id, target)) {
      stats_.ring_shrinks.fetch_add(1, std::memory_order_relaxed);
      wk.stats.ring_shrinks.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

bool OffloadEngine::drain_heaps() {
  bool did_work = false;
  std::lock_guard ctl(ctl_mu_);
  for (core::TintHeap* heap : heaps_) {
    const uint64_t flushed = heap->drain_deferred_flushes();
    if (flushed > 0) {
      did_work = true;
      stats_.heap_flushes.fetch_add(flushed, std::memory_order_relaxed);
    }
  }
  return did_work;
}

bool OffloadEngine::run_round() {
  // Manual drive: every worker's slice on the calling thread, worker
  // (== node, in auto mode) order, so serial callers stay
  // deterministic.
  std::lock_guard round(round_mu_);
  bool did_work = false;
  for (size_t w = 0; w < workers_.size(); ++w) {
    rebalance_worker(w);
    if (service_worker(w)) did_work = true;
  }
  if (drain_heaps()) did_work = true;
  if (did_work) {
    manual_idle_streak_ = 0;
  } else if (cfg_.scrub_idle_rounds > 0 &&
             ++manual_idle_streak_ >= cfg_.scrub_idle_rounds) {
    // Idle long enough: spend the quiet round on a RAS scrub pass.
    manual_idle_streak_ = 0;
    kernel_.scrub();
    stats_.scrub_passes.fetch_add(1, std::memory_order_relaxed);
  }
  return did_work;
}

void OffloadEngine::worker_loop(size_t w) {
  Worker& wk = *workers_[w];
  while (running_.load(std::memory_order_acquire)) {
    rebalance_worker(w);
    bool busy = service_worker(w);
    // The first worker doubles as the control-plane core: heap flushes
    // and idle scrubs ride it so the others stay pure allocators.
    if (w == 0 && drain_heaps()) busy = true;
    if (busy) {
      wk.idle_streak = 0;
      continue;  // demand present: service again immediately
    }
    if (w == 0 && cfg_.scrub_idle_rounds > 0 &&
        ++wk.idle_streak >= cfg_.scrub_idle_rounds) {
      wk.idle_streak = 0;
      kernel_.scrub();
      stats_.scrub_passes.fetch_add(1, std::memory_order_relaxed);
      wk.stats.scrub_passes.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    std::unique_lock lk(cv_mu_);
    cv_.wait_for(lk, cfg_.idle_sleep, [this] {
      return !running_.load(std::memory_order_acquire);
    });
  }
}

void OffloadEngine::start() {
  TINT_ASSERT_MSG(!running_.load(std::memory_order_acquire),
                  "OffloadEngine already running");
  running_.store(true, std::memory_order_release);
  for (size_t w = 0; w < workers_.size(); ++w)
    workers_[w]->thread = std::thread([this, w] { worker_loop(w); });
}

void OffloadEngine::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) {
    for (auto& wk : workers_)
      if (wk->thread.joinable()) wk->thread.join();
    return;
  }
  {
    std::lock_guard lk(cv_mu_);
  }
  cv_.notify_all();
  for (auto& wk : workers_)
    if (wk->thread.joinable()) wk->thread.join();
}

}  // namespace tint::runtime

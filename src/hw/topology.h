// Machine topology description for the simulated NUMA platform.
//
// The default profile mirrors the paper's evaluation platform, a dual
// socket AMD Opteron 6128 (Section IV):
//   * 2 sockets x 8 cores = 16 cores
//   * 2 memory nodes (controllers) per socket = 4 nodes, 4 cores each
//   * per node: 2 channels, 2 ranks/channel, 8 banks/rank
//     => 4*2*2*8 = 128 bank colors machine-wide (2^7, as in Section III.A)
//   * private L1 (128 KB) and L2 (512 KB) per core, 12 MB shared LLC,
//     128 B cache lines, 32 LLC page colors (5 bits)
//   * HyperTransport-style hop distances: same node = 1 hop,
//     other node on same socket = 2 hops, other socket = 3 hops.
//
// Everything is a runtime parameter so tests can build tiny machines and
// the ablation benches can vary geometry.
#pragma once

#include <cstdint>
#include <string>

#include "util/assert.h"

namespace tint::hw {

using PhysAddr = uint64_t;
using Cycles = uint64_t;

// Geometry of the DRAM behind one controller and the machine layout.
struct Topology {
  // --- layout ---
  unsigned sockets = 2;
  unsigned nodes_per_socket = 2;   // memory controllers per socket
  unsigned cores_per_node = 4;
  // --- DRAM geometry per node ---
  unsigned channels_per_node = 2;
  unsigned ranks_per_channel = 2;
  unsigned banks_per_rank = 8;
  uint64_t dram_bytes_per_node = 2ULL << 30;  // 2 GB/node default
  // --- caches ---
  unsigned line_bytes = 128;
  uint64_t l1_bytes = 128 << 10;
  unsigned l1_ways = 2;
  uint64_t l2_bytes = 512 << 10;
  unsigned l2_ways = 8;
  uint64_t llc_bytes = 12 << 20;
  unsigned llc_ways = 12;   // 12 MB = 8192 sets x 12 ways x 128 B
  unsigned page_bits = 12;  // 4 KB pages
  // Organize the LLC as one cache per socket instead of a single cache
  // shared by every core. The paper's text treats the 12 MB L3 as shared
  // by all 16 cores (Section IV), but its Fig. 1/2 draw one LLC per
  // socket; this switch lets both be modeled. llc_bytes is the size of
  // EACH instance.
  bool llc_per_socket = false;
  // Number of page-color bits for the LLC. The paper's platform colors
  // physical address bits 12..16, i.e. 5 bits => 32 colors (Section III.A).
  // A color confines a page to a disjoint 1/2^llc_color_bits slice of the
  // LLC sets; index bits above the colored range (if any) are free.
  unsigned llc_color_bits = 5;

  // --- derived quantities ---
  unsigned num_nodes() const { return sockets * nodes_per_socket; }
  unsigned num_cores() const { return num_nodes() * cores_per_node; }
  unsigned banks_per_node() const {
    return channels_per_node * ranks_per_channel * banks_per_rank;
  }
  // Total bank colors machine-wide (Eq. 1 color space).
  unsigned num_bank_colors() const { return num_nodes() * banks_per_node(); }
  uint64_t page_bytes() const { return 1ULL << page_bits; }
  uint64_t total_dram_bytes() const {
    return dram_bytes_per_node * num_nodes();
  }
  uint64_t pages_per_node() const { return dram_bytes_per_node >> page_bits; }
  uint64_t total_pages() const { return total_dram_bytes() >> page_bits; }
  unsigned llc_sets() const {
    return static_cast<unsigned>(llc_bytes / (llc_ways * line_bytes));
  }
  unsigned num_llc_colors() const { return 1u << llc_color_bits; }

  unsigned node_of_core(unsigned core) const {
    TINT_DASSERT(core < num_cores());
    return core / cores_per_node;
  }
  unsigned socket_of_node(unsigned node) const {
    TINT_DASSERT(node < num_nodes());
    return node / nodes_per_socket;
  }
  unsigned socket_of_core(unsigned core) const {
    return socket_of_node(node_of_core(core));
  }

  // Hop count between a core's node and a memory node, per Section IV:
  // 1 hop within a node, 2 hops across nodes of one socket, 3 hops across
  // sockets.
  unsigned hops(unsigned core, unsigned mem_node) const {
    const unsigned cn = node_of_core(core);
    if (cn == mem_node) return 1;
    if (socket_of_node(cn) == socket_of_node(mem_node)) return 2;
    return 3;
  }

  // Aborts with a message if the configuration is inconsistent (non
  // power-of-two geometry, cache too small, ...).
  void validate() const;

  std::string describe() const;

  // The paper's evaluation platform.
  static Topology opteron6128();
  // A small machine for fast unit tests: 2 nodes x 2 cores, 16 MB/node.
  static Topology tiny();
};

// Per-access timing constants in CPU cycles (2 GHz core clock).
// Values are representative of the Opteron generation; the figures the
// paper reports are ratios, which depend on the *ordering* of these
// costs, not their exact magnitudes.
struct Timing {
  Cycles l1_hit = 3;
  Cycles l2_hit = 15;
  Cycles llc_hit = 40;
  // DRAM command latencies (CPU cycles).
  Cycles row_hit = 60;       // CAS only
  Cycles row_empty = 110;    // ACT + CAS
  Cycles row_conflict = 160; // PRE + ACT + CAS
  Cycles burst = 30;         // data transfer occupying the channel
  // Interconnect latency added per hop beyond the first (local) hop,
  // one way. Cross-socket links are slower than on-chip links.
  Cycles hop2_extra = 50;    // remote node, same socket (one way)
  Cycles hop3_extra = 120;   // remote socket (one way)
  // Refresh: every refresh_interval cycles a bank's row buffer is closed.
  Cycles refresh_interval = 15600;

  Cycles interconnect_extra(unsigned hops) const {
    switch (hops) {
      case 1: return 0;
      case 2: return hop2_extra;
      default: return hop3_extra;
    }
  }
};

}  // namespace tint::hw

#include "hw/pci_config.h"

#include <bit>

namespace tint::hw {

PciConfig PciConfig::program_bios(const Topology& topo) {
  topo.validate();
  PciConfig cfg;
  cfg.node_bytes_ = topo.dram_bytes_per_node;

  // Contiguous node ranges, exactly how DRAM base/limit registers carve
  // the physical space when node interleaving is disabled (the paper's
  // platform: coloring requires the node of a frame to be stable).
  for (unsigned n = 0; n < topo.num_nodes(); ++n) {
    DramRangeReg r;
    const uint64_t base = static_cast<uint64_t>(n) * topo.dram_bytes_per_node;
    r.base_64k = base >> 16;
    r.limit_64k = (base + topo.dram_bytes_per_node - 1) >> 16;
    r.enabled = true;
    r.dst_node = static_cast<uint8_t>(n);
    cfg.ranges_.push_back(r);
  }

  // Geometry bit fields. All fields sit at or above the page offset so
  // each 4 KB frame has one (channel, rank, bank, LLC color):
  //   [page offset | bank | LLC color | channel | rank | row ...]
  // On the default platform: bank bits 12..14, LLC color bits 15..19,
  // channel bit 20, rank bit 21, row bits 22+.
  //
  // The *bank* field sits directly above the page offset so that
  // consecutive frames interleave across banks -- like the physical
  // Opteron mapping, whose bank-select bits (15, 16, 18) are the lowest
  // frame-number bits. (Our layout is a permutation of the hardware's
  // exact bits: it keeps the fine-grained bank interleave but removes the
  // bank/LLC bit *overlap* of the raw mapping so that every combination
  // of the 128 bank colors x 32 LLC colors is realizable -- the dense
  // color_list matrix the paper's Algorithm 1 assumes.)
  const auto width_of = [](unsigned count) {
    return static_cast<uint8_t>(std::countr_zero(std::bit_ceil(count)));
  };
  uint8_t cursor = static_cast<uint8_t>(topo.page_bits);
  cfg.bank_ = BitField{cursor, width_of(topo.banks_per_rank)};
  cursor = static_cast<uint8_t>(cursor + cfg.bank_.width);
  cfg.llc_ = BitField{cursor, static_cast<uint8_t>(topo.llc_color_bits)};
  cursor = static_cast<uint8_t>(cursor + topo.llc_color_bits);
  cfg.channel_ = BitField{cursor, width_of(topo.channels_per_node)};
  cursor = static_cast<uint8_t>(cursor + cfg.channel_.width);
  cfg.rank_ = BitField{cursor, width_of(topo.ranks_per_channel)};
  cursor = static_cast<uint8_t>(cursor + cfg.rank_.width);
  cfg.row_lo_ = cursor;

  TINT_ASSERT_MSG(topo.dram_bytes_per_node > (1ULL << cfg.row_lo_),
                  "node DRAM too small: no row bits left above rank bits");
  // Every colored LLC bit must be a real set-index bit of the LLC.
  const uint64_t index_span =
      static_cast<uint64_t>(topo.llc_sets()) * topo.line_bytes;
  TINT_ASSERT_MSG((1ULL << (cfg.llc_.lo + cfg.llc_.width)) <= index_span,
                  "LLC color bits exceed the cache's set-index range");
  return cfg;
}

}  // namespace tint::hw

#include "hw/topology.h"

#include <bit>
#include <sstream>

namespace tint::hw {

namespace {
bool pow2(uint64_t v) { return v != 0 && std::has_single_bit(v); }
}  // namespace

void Topology::validate() const {
  TINT_ASSERT_MSG(sockets >= 1 && nodes_per_socket >= 1 && cores_per_node >= 1,
                  "layout must be non-empty");
  TINT_ASSERT_MSG(pow2(channels_per_node) && pow2(ranks_per_channel) &&
                      pow2(banks_per_rank),
                  "DRAM geometry must be powers of two (bit-field decode)");
  TINT_ASSERT_MSG(pow2(line_bytes) && line_bytes >= 16,
                  "cache line size must be a power of two");
  TINT_ASSERT_MSG(pow2(page_bytes()) && page_bits >= 12,
                  "page size must be a power of two >= 4 KB");
  TINT_ASSERT_MSG(dram_bytes_per_node % page_bytes() == 0,
                  "node DRAM must be page-aligned");
  TINT_ASSERT_MSG(pow2(dram_bytes_per_node),
                  "node DRAM must be a power of two (contiguous decode)");
  TINT_ASSERT_MSG(l1_bytes % (l1_ways * line_bytes) == 0,
                  "L1 geometry inconsistent");
  TINT_ASSERT_MSG(l2_bytes % (l2_ways * line_bytes) == 0,
                  "L2 geometry inconsistent");
  TINT_ASSERT_MSG(llc_bytes % (llc_ways * line_bytes) == 0,
                  "LLC geometry inconsistent");
  TINT_ASSERT_MSG(pow2(llc_sets()), "LLC set count must be a power of two");
  // LLC page coloring requires the set index to cover all colored bits:
  // the index must span at least page_bits + llc_color_bits address bits.
  // With 8192 sets and 128 B lines the index covers bits 7..19, so the
  // colored bits 12..16 (5 bits => 32 colors) are all index bits.
  TINT_ASSERT_MSG(
      static_cast<uint64_t>(llc_sets()) * line_bytes >=
          (page_bytes() << llc_color_bits),
      "LLC too small for the configured number of page colors");
}

std::string Topology::describe() const {
  std::ostringstream os;
  os << sockets << " socket(s) x " << nodes_per_socket << " node(s) x "
     << cores_per_node << " core(s); " << num_bank_colors()
     << " bank colors (" << channels_per_node << " ch x " << ranks_per_channel
     << " rk x " << banks_per_rank << " bk per node), "
     << (dram_bytes_per_node >> 20) << " MB/node; LLC "
     << (llc_bytes >> 20) << " MB " << llc_ways << "-way, "
     << llc_sets() << " sets";
  return os.str();
}

Topology Topology::opteron6128() {
  Topology t;  // defaults are the Opteron profile
  t.validate();
  return t;
}

Topology Topology::tiny() {
  Topology t;
  t.sockets = 1;
  t.nodes_per_socket = 2;
  t.cores_per_node = 2;
  t.channels_per_node = 2;
  t.ranks_per_channel = 1;
  t.banks_per_rank = 4;
  t.dram_bytes_per_node = 16ULL << 20;  // 16 MB/node
  t.l1_bytes = 16 << 10;
  t.l2_bytes = 64 << 10;
  t.llc_bytes = 2 << 20;
  t.llc_ways = 8;        // 2 MB = 2048 sets x 8 ways x 128 B
  t.llc_color_bits = 4;  // 16 colors; the small LLC has fewer index bits
  t.validate();
  return t;
}

}  // namespace tint::hw

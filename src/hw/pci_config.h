// Simulated PCI configuration space for the DRAM controllers.
//
// On the real platform TintMalloc derives the physical-address bit
// mapping "in the late phase of booting Linux ... from PCI registers"
// (Section III.A): DRAM base/limit registers give the node ranges, the
// controller-select-low register gives the channel bit, the CS base
// address registers give rank/bank bits, and the bank-address-mapping
// register gives the row/column split.
//
// We reproduce that flow: a `PciConfig` is a register file that the
// simulated BIOS programs from the machine `Topology` at "boot"
// (`PciConfig::program_bios`), and `AddressMapping` *parses the
// registers* -- it never peeks at the Topology directly. This keeps the
// derivation step of the paper a real, testable piece of code.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "hw/topology.h"

namespace tint::hw {

// One DRAM base/limit register pair (function 1 of the AMD northbridge).
// Base/limit are in 64 KB granularity like the hardware registers; the
// enable bit mirrors DRAM Base[RE]/DRAM Limit[WE].
struct DramRangeReg {
  uint64_t base_64k = 0;   // bits [47:16] of the range base
  uint64_t limit_64k = 0;  // bits [47:16] of the range limit (inclusive)
  bool enabled = false;
  uint8_t dst_node = 0;    // destination node id
};

// Encodes which physical-address bit selects each DRAM sub-resource.
// A width of zero means the resource has a single instance (e.g. one
// rank per channel) and consumes no address bits.
struct BitField {
  uint8_t lo = 0;     // least-significant address bit of the field
  uint8_t width = 0;  // number of bits

  uint64_t extract(uint64_t addr) const {
    return (addr >> lo) & ((1ULL << width) - 1);
  }
  uint64_t insert(uint64_t value) const {
    TINT_DASSERT(value < (1ULL << width) || width == 0);
    return value << lo;
  }
};

// The register file. Field names follow the AMD BKDG registers the paper
// cites; contents are the simulator's encoding.
class PciConfig {
 public:
  // "BIOS" programming at boot: lay out node ranges contiguously and
  // choose interleave bits compatible with page coloring (all geometry
  // bits at or above the page offset so that every 4 KB frame has a
  // single well-defined color, as required by Eq. 1 / Algorithm 2).
  static PciConfig program_bios(const Topology& topo);

  // --- raw register access (what AddressMapping reads) ---
  const std::vector<DramRangeReg>& dram_ranges() const { return ranges_; }
  // F2x110 DRAM Controller Select Low: channel select bit.
  BitField controller_select_low() const { return channel_; }
  // F2x[40..5C] DRAM CS Base Address: rank select bit(s).
  BitField cs_base_rank() const { return rank_; }
  // Bank address bits (derived from DRAM Bank Address Mapping, F2x80).
  BitField bank_address_mapping() const { return bank_; }
  // First address bit of the row number (everything above bank).
  uint8_t row_lo_bit() const { return row_lo_; }
  // LLC color field (bits 12..16 on the paper's platform). On real
  // hardware this comes from the cache geometry rather than PCI, but we
  // keep it with the rest of the boot-derived mapping data.
  BitField llc_color_field() const { return llc_; }

  unsigned num_nodes() const { return static_cast<unsigned>(ranges_.size()); }
  uint64_t node_bytes() const { return node_bytes_; }

 private:
  std::vector<DramRangeReg> ranges_;
  BitField channel_, rank_, bank_, llc_;
  uint8_t row_lo_ = 0;
  uint64_t node_bytes_ = 0;
};

}  // namespace tint::hw

#include "hw/address_mapping.h"

namespace tint::hw {

AddressMapping::AddressMapping(const PciConfig& pci, const Topology& geometry)
    : ranges_(pci.dram_ranges()),
      channel_(pci.controller_select_low()),
      rank_(pci.cs_base_rank()),
      bank_(pci.bank_address_mapping()),
      llc_(pci.llc_color_field()),
      row_lo_(pci.row_lo_bit()),
      node_bytes_(pci.node_bytes()),
      page_bytes_(geometry.page_bytes()),
      nn_(geometry.num_nodes()),
      nc_(geometry.channels_per_node),
      nr_(geometry.ranks_per_channel),
      nb_(geometry.banks_per_rank) {
  TINT_ASSERT_MSG(ranges_.size() == nn_,
                  "register file and geometry disagree on node count");
  // Coloring precondition: every color-determining field must lie at or
  // above the page offset, otherwise a frame has no single color.
  TINT_ASSERT(llc_.lo >= geometry.page_bits);
  TINT_ASSERT(channel_.lo >= geometry.page_bits);
  TINT_ASSERT(rank_.lo >= geometry.page_bits);
  TINT_ASSERT(bank_.lo >= geometry.page_bits);
  TINT_ASSERT(node_bytes_ % page_bytes_ == 0);
}

unsigned AddressMapping::node_of(PhysAddr addr) const {
  // Walk the DRAM base/limit registers like the northbridge does.
  const uint64_t a64k = addr >> 16;
  for (const DramRangeReg& r : ranges_) {
    if (r.enabled && a64k >= r.base_64k && a64k <= r.limit_64k)
      return r.dst_node;
  }
  // Fine-grained fallback for sub-64 KB machines used in unit tests.
  const unsigned n = static_cast<unsigned>(addr / node_bytes_);
  TINT_ASSERT_MSG(n < nn_, "physical address beyond installed DRAM");
  return n;
}

DramCoord AddressMapping::decode(PhysAddr addr) const {
  DramCoord c;
  c.node = node_of(addr);
  c.channel = static_cast<unsigned>(channel_.extract(addr));
  c.rank = static_cast<unsigned>(rank_.extract(addr));
  c.bank = static_cast<unsigned>(bank_.extract(addr));
  const uint64_t in_node = addr - static_cast<uint64_t>(c.node) * node_bytes_;
  c.row = in_node >> row_lo_;
  c.column = addr & (page_bytes_ - 1);  // page-offset bits
  c.llc_color = static_cast<unsigned>(llc_.extract(addr));
  return c;
}

unsigned AddressMapping::bank_color(PhysAddr addr) const {
  const DramCoord c = decode(addr);
  // Dense Eq. 1 (see header for the note on the paper's typo).
  return ((c.node * nc_ + c.channel) * nr_ + c.rank) * nb_ + c.bank;
}

unsigned AddressMapping::llc_color(PhysAddr addr) const {
  return static_cast<unsigned>(llc_.extract(addr));
}

unsigned AddressMapping::llc_set(PhysAddr addr, unsigned llc_sets,
                                 unsigned line_bytes) const {
  return static_cast<unsigned>((addr / line_bytes) % llc_sets);
}

FrameColors AddressMapping::frame_colors(PhysAddr frame_base) const {
  TINT_ASSERT_MSG(frame_base % page_bytes_ == 0,
                  "frame_colors requires a page-aligned address");
  FrameColors fc;
  fc.node = static_cast<uint8_t>(node_of(frame_base));
  fc.bank_color = static_cast<uint16_t>(bank_color(frame_base));
  fc.llc_color = static_cast<uint8_t>(llc_color(frame_base));
  TINT_DASSERT(bank_color(frame_base + page_bytes_ - 1) == fc.bank_color);
  TINT_DASSERT(llc_color(frame_base + page_bytes_ - 1) == fc.llc_color);
  return fc;
}

FrameColors AddressMapping::frame_colors_of_pfn(uint64_t pfn) const {
  return frame_colors(pfn * page_bytes_);
}

PhysAddr AddressMapping::compose(const DramCoord& c) const {
  TINT_ASSERT(c.node < nn_ && c.channel < nc_ && c.rank < nr_ && c.bank < nb_);
  PhysAddr addr = static_cast<uint64_t>(c.node) * node_bytes_;
  addr |= channel_.insert(c.channel);
  addr |= rank_.insert(c.rank);
  addr |= bank_.insert(c.bank);
  addr |= llc_.insert(c.llc_color);
  addr |= c.row << row_lo_;
  addr |= c.column;
  TINT_ASSERT_MSG(node_of(addr) == c.node,
                  "row overflows the node range; address escapes the node");
  return addr;
}

}  // namespace tint::hw

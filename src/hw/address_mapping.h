// Physical address <-> DRAM/LLC coordinate translation (Section III.A).
//
// This is the heart of any page-coloring scheme: given a physical frame,
// which memory controller (node), channel, rank, bank and LLC set slice
// does it land in? `AddressMapping` derives the answer exclusively from
// the simulated PCI register file, mirroring the paper's boot-time
// derivation, and exposes:
//
//   * full coordinate decode of an address,
//   * the bank color of Eq. 1:
//       bc = ((node*NC + channel)*NR + rank)*NB + bank
//     (the paper prints `node*NN*NC + channel`, which double-counts the
//     node stride and does not produce the dense 0..127 color space the
//     rest of the paper uses; we implement the dense form), and
//   * the LLC page color (bits 12..16 on the paper's platform).
//
// All color-determining bits sit at or above the page offset, so colors
// are per-frame constants; `frame_colors()` asserts this.
#pragma once

#include <cstdint>

#include "hw/pci_config.h"
#include "hw/topology.h"

namespace tint::hw {

// Full decode of one physical address.
struct DramCoord {
  unsigned node = 0;
  unsigned channel = 0;
  unsigned rank = 0;
  unsigned bank = 0;
  uint64_t row = 0;
  uint64_t column = 0;   // byte offset within the page
  unsigned llc_color = 0;  // not a DRAM coordinate, carried for convenience
};

// Colors of one 4 KB frame.
struct FrameColors {
  uint16_t bank_color = 0;  // 0 .. num_bank_colors()-1 (node-qualified)
  uint8_t llc_color = 0;    // 0 .. num_llc_colors()-1
  uint8_t node = 0;         // memory controller id
};

class AddressMapping {
 public:
  // Parses the register file. `geometry` supplies the counts (NN, NC,
  // NR, NB of Eq. 1) that on hardware come from the same registers.
  AddressMapping(const PciConfig& pci, const Topology& geometry);

  // --- decode ---
  DramCoord decode(PhysAddr addr) const;
  unsigned node_of(PhysAddr addr) const;
  // Dense Eq. 1 bank color in [0, num_bank_colors).
  unsigned bank_color(PhysAddr addr) const;
  unsigned llc_color(PhysAddr addr) const;
  // LLC set index (for the cache model): line-granular index modulo the
  // configured set count.
  unsigned llc_set(PhysAddr addr, unsigned llc_sets, unsigned line_bytes) const;

  // Colors of the frame holding `addr` (assert-checked to be uniform
  // across the frame).
  FrameColors frame_colors(PhysAddr frame_base) const;
  FrameColors frame_colors_of_pfn(uint64_t pfn) const;

  // --- compose (tests, workload placement validation) ---
  // Builds a physical address with the given coordinates; row/column fill
  // the remaining bits.
  PhysAddr compose(const DramCoord& c) const;

  // --- geometry ---
  unsigned num_nodes() const { return nn_; }
  unsigned num_bank_colors() const { return nn_ * nc_ * nr_ * nb_; }
  unsigned banks_per_node() const { return nc_ * nr_ * nb_; }
  unsigned num_llc_colors() const { return 1u << llc_.width; }
  uint64_t node_bytes() const { return node_bytes_; }
  uint64_t page_bytes() const { return page_bytes_; }
  // Number of distinct row indices within one node.
  uint64_t rows_per_node() const { return node_bytes_ >> row_lo_; }

  // Bank color restricted to the node-local component: Eq. 1 without the
  // node term, in [0, banks_per_node()). Color planners use this to walk
  // the banks belonging to one controller.
  unsigned local_bank_index(unsigned bank_color) const {
    return bank_color % banks_per_node();
  }
  unsigned node_of_bank_color(unsigned bank_color) const {
    return bank_color / banks_per_node();
  }
  unsigned make_bank_color(unsigned node, unsigned local_index) const {
    TINT_DASSERT(node < nn_ && local_index < banks_per_node());
    return node * banks_per_node() + local_index;
  }

 private:
  std::vector<DramRangeReg> ranges_;
  BitField channel_, rank_, bank_, llc_;
  uint8_t row_lo_;
  uint64_t node_bytes_;
  uint64_t page_bytes_;
  unsigned nn_, nc_, nr_, nb_;
};

}  // namespace tint::hw

// Process page table: virtual page number -> physical frame.
//
// The simulated SPMD process has a single address space shared by all
// tasks (threads). Mappings are created lazily by the page-fault path --
// Linux/TintMalloc first-touch semantics: the *faulting* task's policy
// decides the frame, no matter which task created the VMA.
//
// The table itself is an unlocked data structure; the kernel guards all
// access with its page-table lock (rank kPageTable, see util/lock_rank.h
// and DESIGN.md section 10), shared for translation, exclusive for
// map/unmap.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "os/page.h"

namespace tint::os {

using VirtAddr = uint64_t;

class PageTable {
 public:
  explicit PageTable(unsigned page_bits) : page_bits_(page_bits) {
    map_.reserve(1 << 16);
  }

  uint64_t vpn_of(VirtAddr va) const { return va >> page_bits_; }

  // Returns the mapped pfn for the page containing `va`, if any.
  std::optional<Pfn> lookup(VirtAddr va) const {
    const auto it = map_.find(vpn_of(va));
    if (it == map_.end()) return std::nullopt;
    return it->second;
  }

  // Full translation including the page offset.
  std::optional<uint64_t> translate(VirtAddr va) const {
    const auto it = map_.find(vpn_of(va));
    if (it == map_.end()) return std::nullopt;
    return (static_cast<uint64_t>(it->second) << page_bits_) |
           (va & ((1ULL << page_bits_) - 1));
  }

  void map(uint64_t vpn, Pfn pfn) {
    const bool inserted = map_.emplace(vpn, pfn).second;
    TINT_ASSERT_MSG(inserted, "double mapping of a virtual page");
  }

  // Maps vpn -> pfn unless vpn is already mapped; returns the winning
  // pfn either way. The fault path uses this to resolve two threads
  // faulting the same page concurrently: the loser frees its frame and
  // adopts the winner's mapping instead of aborting.
  Pfn map_or_get(uint64_t vpn, Pfn pfn) {
    return map_.emplace(vpn, pfn).first->second;
  }

  // Swaps vpn's frame from `expected` to `replacement` -- the live-
  // migration commit point. Returns false (and changes nothing) when vpn
  // is unmapped or maps a different frame: the caller lost the race to a
  // concurrent migration or munmap and must discard its replacement.
  bool remap(uint64_t vpn, Pfn expected, Pfn replacement) {
    const auto it = map_.find(vpn);
    if (it == map_.end() || it->second != expected) return false;
    it->second = replacement;
    return true;
  }

  // Removes vpn's mapping only while it still maps `expected` -- the
  // hard-offline commit point (the conditional twin of remap()).
  bool unmap_if(uint64_t vpn, Pfn expected) {
    const auto it = map_.find(vpn);
    if (it == map_.end() || it->second != expected) return false;
    map_.erase(it);
    return true;
  }

  // Removes a mapping; returns the pfn that was mapped, if any.
  std::optional<Pfn> unmap(uint64_t vpn) {
    const auto it = map_.find(vpn);
    if (it == map_.end()) return std::nullopt;
    const Pfn pfn = it->second;
    map_.erase(it);
    return pfn;
  }

  size_t mapped_pages() const { return map_.size(); }

  // Read-only view of every live vpn -> pfn mapping (invariant checker).
  const std::unordered_map<uint64_t, Pfn>& mappings() const { return map_; }

 private:
  unsigned page_bits_;
  std::unordered_map<uint64_t, Pfn> map_;
};

}  // namespace tint::os

#include "os/page.h"

namespace tint::os {

std::vector<PageInfo> build_page_table_metadata(const hw::AddressMapping& map,
                                                uint64_t total_pages) {
  std::vector<PageInfo> pages(total_pages);
  for (uint64_t pfn = 0; pfn < total_pages; ++pfn) {
    const hw::FrameColors fc = map.frame_colors_of_pfn(pfn);
    pages[pfn].bank_color = fc.bank_color;
    pages[pfn].llc_color = fc.llc_color;
    pages[pfn].node = fc.node;
  }
  return pages;
}

}  // namespace tint::os

#include "os/task.h"

#include "util/assert.h"
#include "util/rng.h"

namespace tint::os {

Task::Task(TaskId id, unsigned core, unsigned local_node,
           unsigned num_bank_colors, unsigned num_llc_colors,
           unsigned magazine_capacity)
    : id_(id), core_(core), local_node_(local_node),
      mem_colors_(num_bank_colors, false), llc_colors_(num_llc_colors, false),
      combo_cursor_(mix64(id) & 0xFFFF), magazine_(magazine_capacity) {}

void Task::set_mem_color(unsigned color) {
  TINT_ASSERT_MSG(color < mem_colors_.size(), "bank color out of range");
  mem_colors_[color] = true;
  using_bank_ = true;
  rebuild_lists();
}

void Task::clear_mem_color(unsigned color) {
  TINT_ASSERT_MSG(color < mem_colors_.size(), "bank color out of range");
  mem_colors_[color] = false;
  rebuild_lists();
  using_bank_ = !mem_list_.empty();
}

void Task::set_llc_color(unsigned color) {
  TINT_ASSERT_MSG(color < llc_colors_.size(), "LLC color out of range");
  llc_colors_[color] = true;
  using_llc_ = true;
  rebuild_lists();
}

void Task::clear_llc_color(unsigned color) {
  TINT_ASSERT_MSG(color < llc_colors_.size(), "LLC color out of range");
  llc_colors_[color] = false;
  rebuild_lists();
  using_llc_ = !llc_list_.empty();
}

void Task::clear_all_colors() {
  mem_colors_.assign(mem_colors_.size(), false);
  llc_colors_.assign(llc_colors_.size(), false);
  using_bank_ = using_llc_ = false;
  rebuild_lists();
}

void Task::rebuild_lists() {
  mem_list_.clear();
  for (size_t i = 0; i < mem_colors_.size(); ++i)
    if (mem_colors_[i]) mem_list_.push_back(static_cast<uint16_t>(i));
  llc_list_.clear();
  for (size_t i = 0; i < llc_colors_.size(); ++i)
    if (llc_colors_[i]) llc_list_.push_back(static_cast<uint8_t>(i));
}

TaskTable::TaskTable()
    : chunks_(std::make_unique<std::atomic<Chunk*>[]>(kMaxChunks)) {
  for (unsigned i = 0; i < kMaxChunks; ++i)
    chunks_[i].store(nullptr, std::memory_order_relaxed);
}

TaskTable::~TaskTable() {
  for (unsigned i = 0; i < kMaxChunks; ++i)
    delete chunks_[i].load(std::memory_order_relaxed);
}

TaskId TaskTable::create(unsigned core, unsigned local_node,
                         unsigned num_bank_colors, unsigned num_llc_colors,
                         unsigned magazine_capacity) {
  std::unique_lock lk(mu_);
  const uint32_t id = size_.load(std::memory_order_relaxed);
  TINT_ASSERT_MSG(id < kMaxChunks * kChunkSize, "task table full");
  auto& slot = chunks_[id >> kChunkBits];
  Chunk* c = slot.load(std::memory_order_relaxed);
  if (!c) {
    c = new Chunk();
    // Published before size_ below; readers load the chunk pointer with
    // acquire, so they always see the constructed chunk.
    slot.store(c, std::memory_order_release);
  }
  c->slots[id & (kChunkSize - 1)] =
      std::make_unique<Task>(id, core, local_node, num_bank_colors,
                             num_llc_colors, magazine_capacity);
  // The slot write happens-before this release; at() checks the bound
  // with acquire, so a visible id implies a visible Task.
  size_.store(id + 1, std::memory_order_release);
  return id;
}

}  // namespace tint::os

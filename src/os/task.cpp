#include "os/task.h"

#include "util/assert.h"
#include "util/rng.h"

namespace tint::os {

Task::Task(TaskId id, unsigned core, unsigned local_node,
           unsigned num_bank_colors, unsigned num_llc_colors,
           unsigned magazine_capacity)
    : id_(id), core_(core), local_node_(local_node),
      combo_cursor_(mix64(id) & 0xFFFF), magazine_(magazine_capacity) {
  auto init = std::make_unique<ColorSet>();
  init->mem_colors.assign(num_bank_colors, false);
  init->llc_colors.assign(num_llc_colors, false);
  colors_.store(init.get(), std::memory_order_release);
  color_history_.push_back(std::move(init));
}

void Task::publish(std::unique_ptr<const ColorSet> next) {
  colors_.store(next.get(), std::memory_order_release);
  color_history_.push_back(std::move(next));
}

void Task::set_mem_color(unsigned color) {
  std::lock_guard lk(color_mu_);
  auto next = std::make_unique<ColorSet>(colors());
  TINT_ASSERT_MSG(color < next->mem_colors.size(), "bank color out of range");
  next->mem_colors[color] = true;
  rebuild_lists(*next);
  publish(std::move(next));
}

void Task::clear_mem_color(unsigned color) {
  std::lock_guard lk(color_mu_);
  auto next = std::make_unique<ColorSet>(colors());
  TINT_ASSERT_MSG(color < next->mem_colors.size(), "bank color out of range");
  next->mem_colors[color] = false;
  rebuild_lists(*next);
  publish(std::move(next));
}

void Task::set_llc_color(unsigned color) {
  std::lock_guard lk(color_mu_);
  auto next = std::make_unique<ColorSet>(colors());
  TINT_ASSERT_MSG(color < next->llc_colors.size(), "LLC color out of range");
  next->llc_colors[color] = true;
  rebuild_lists(*next);
  publish(std::move(next));
}

void Task::clear_llc_color(unsigned color) {
  std::lock_guard lk(color_mu_);
  auto next = std::make_unique<ColorSet>(colors());
  TINT_ASSERT_MSG(color < next->llc_colors.size(), "LLC color out of range");
  next->llc_colors[color] = false;
  rebuild_lists(*next);
  publish(std::move(next));
}

void Task::clear_all_colors() {
  std::lock_guard lk(color_mu_);
  auto next = std::make_unique<ColorSet>(colors());
  next->mem_colors.assign(next->mem_colors.size(), false);
  next->llc_colors.assign(next->llc_colors.size(), false);
  rebuild_lists(*next);
  publish(std::move(next));
}

void Task::replace_colors(const std::vector<uint16_t>& drop_mem,
                          const std::vector<uint16_t>& add_mem,
                          const std::vector<uint8_t>& drop_llc,
                          const std::vector<uint8_t>& add_llc) {
  std::lock_guard lk(color_mu_);
  auto next = std::make_unique<ColorSet>(colors());
  for (const uint16_t c : drop_mem) {
    TINT_ASSERT_MSG(c < next->mem_colors.size(), "bank color out of range");
    next->mem_colors[c] = false;
  }
  for (const uint16_t c : add_mem) {
    TINT_ASSERT_MSG(c < next->mem_colors.size(), "bank color out of range");
    next->mem_colors[c] = true;
  }
  for (const uint8_t c : drop_llc) {
    TINT_ASSERT_MSG(c < next->llc_colors.size(), "LLC color out of range");
    next->llc_colors[c] = false;
  }
  for (const uint8_t c : add_llc) {
    TINT_ASSERT_MSG(c < next->llc_colors.size(), "LLC color out of range");
    next->llc_colors[c] = true;
  }
  rebuild_lists(*next);
  publish(std::move(next));
}

void Task::rebuild_lists(ColorSet& cs) {
  cs.mem_list.clear();
  for (size_t i = 0; i < cs.mem_colors.size(); ++i)
    if (cs.mem_colors[i]) cs.mem_list.push_back(static_cast<uint16_t>(i));
  cs.llc_list.clear();
  for (size_t i = 0; i < cs.llc_colors.size(); ++i)
    if (cs.llc_colors[i]) cs.llc_list.push_back(static_cast<uint8_t>(i));
  cs.using_bank = !cs.mem_list.empty();
  cs.using_llc = !cs.llc_list.empty();
}

TaskTable::TaskTable()
    : chunks_(std::make_unique<std::atomic<Chunk*>[]>(kMaxChunks)) {
  for (unsigned i = 0; i < kMaxChunks; ++i)
    chunks_[i].store(nullptr, std::memory_order_relaxed);
}

TaskTable::~TaskTable() {
  for (unsigned i = 0; i < kMaxChunks; ++i)
    delete chunks_[i].load(std::memory_order_relaxed);
}

TaskId TaskTable::create(unsigned core, unsigned local_node,
                         unsigned num_bank_colors, unsigned num_llc_colors,
                         unsigned magazine_capacity) {
  std::unique_lock lk(mu_);
  const uint32_t id = size_.load(std::memory_order_relaxed);
  TINT_ASSERT_MSG(id < kMaxChunks * kChunkSize, "task table full");
  auto& slot = chunks_[id >> kChunkBits];
  Chunk* c = slot.load(std::memory_order_relaxed);
  if (!c) {
    c = new Chunk();
    // Published before size_ below; readers load the chunk pointer with
    // acquire, so they always see the constructed chunk.
    slot.store(c, std::memory_order_release);
  }
  c->slots[id & (kChunkSize - 1)] =
      std::make_unique<Task>(id, core, local_node, num_bank_colors,
                             num_llc_colors, magazine_capacity);
  // The slot write happens-before this release; at() checks the bound
  // with acquire, so a visible id implies a visible Task.
  size_.store(id + 1, std::memory_order_release);
  return id;
}

}  // namespace tint::os

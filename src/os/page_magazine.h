// Per-task colored page magazine: the fast-path cache in front of the
// color lists.
//
// Every order-0 colored allocation in the base system pays one color-
// shard lock plus the combo scan; every free pays another shard lock.
// A magazine caches up to `capacity` frames per (MEM_ID, LLC_ID) combo
// the task actually uses, so the steady-state alloc/free round-trip of
// one task touches only this task's own lock -- the page-allocator
// analogue of Linux's per-CPU pagesets (the task is the unit here
// because the paper pins tasks to cores and colors live in the TCB).
//
// Magazines are a *first-class frame pool*: a cached frame is in
// PageState::kMagazine with its owner still set, the stop-the-world
// invariant walk counts it, and RAS poisoning can reach in and steal a
// frame (remove), so faulty frames cannot hide here. Frames drain back
// to the color shards on task exit, color-set changes, memory pressure,
// node offlining and color retirement (see Kernel for the triggers).
//
// Thread safety: one RankedMutex per magazine at rank kMagazine --
// above kRas (poisoning holds the ras lock while reaching in) and below
// kColorShard (drains push to the shards while holding it). `cached()`
// is an atomic read so the empty-magazine probe costs no lock.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "os/page.h"
#include "util/lock_rank.h"

namespace tint::os {

class PageMagazine {
 public:
  // capacity = max cached frames per (bank, llc) combo; 0 disables the
  // magazine entirely (push refuses, pop never finds anything).
  explicit PageMagazine(unsigned capacity) : cap_(capacity) {}

  bool enabled() const { return capacity() > 0; }
  unsigned capacity() const { return cap_.load(std::memory_order_relaxed); }

  // Re-sizes the per-combo cap live (the adaptive tuner,
  // Kernel::adapt_magazines). Takes effect against concurrent pushes
  // immediately; shrinking does not evict already-cached frames -- they
  // drain through the normal triggers (pops, exits, pressure).
  void set_capacity(unsigned cap) {
    cap_.store(cap, std::memory_order_relaxed);
  }

  // Total cached frames; lock-free, so an empty magazine costs one
  // relaxed load on the allocation path.
  uint64_t cached() const { return total_.load(std::memory_order_relaxed); }

  // Pops any cached frame, rotating over the combo bins by `cursor` so
  // consecutive faults keep striping across the task's banks like the
  // shard path does. Returns kNoPage when empty. The frame is returned
  // still in kMagazine state; the caller transitions it.
  Pfn pop(uint64_t cursor);

  // Parks a frame. Returns false when disabled or when the frame's
  // combo bin is full (the caller then frees to the color lists).
  // Sets kMagazine state under the magazine lock; the frame's owner
  // field is left untouched (it keeps pointing at the caching task).
  bool push(Pfn pfn, std::vector<PageInfo>& pages);

  // Unlinks one specific cached frame -- the RAS reach-in. Returns
  // false if the frame is not currently cached here (it moved first).
  // On success the caller exclusively holds the frame (still in
  // kMagazine state) and transitions it.
  bool remove(Pfn pfn);

  // Removes every cached frame (task exit, color-set change, memory
  // pressure). Frames come back in kMagazine state; the caller re-homes
  // them (color lists or buddy).
  std::vector<Pfn> drain_all();

  // Removes every cached frame whose bank color lies in [mem_lo,
  // mem_hi) -- the node-offline drain.
  std::vector<Pfn> drain_bank_range(unsigned mem_lo, unsigned mem_hi);

  // Removes every cached frame of one bank color -- the color-
  // retirement drain.
  std::vector<Pfn> drain_bank_color(unsigned bank_color);

  // Every cached pfn, by walking the bins. Callers must hold the
  // magazine lock (stop-the-world) or otherwise guarantee quiescence.
  std::vector<Pfn> snapshot() const;

  // Stop-the-world support (rank kMagazine; the invariant walk holds
  // every magazine between the ras lock and the color shards).
  void lock() const { mu_.lock(); }
  void unlock() const { mu_.unlock(); }

 private:
  // One bin per (bank, llc) combo the task has actually touched; tasks
  // use a handful of combos, so a flat vector beats a hash map.
  struct Bin {
    uint32_t key;
    std::vector<Pfn> frames;
  };
  static uint32_t key_of(const PageInfo& pi) {
    return (static_cast<uint32_t>(pi.bank_color) << 8) | pi.llc_color;
  }
  std::vector<Pfn> drain_matching_locked(uint32_t key_lo, uint32_t key_hi);

  std::atomic<unsigned> cap_;
  std::vector<Bin> bins_;  // guarded by mu_
  std::atomic<uint64_t> total_{0};
  mutable util::RankedMutex<util::lock_rank::kMagazine> mu_;
};

}  // namespace tint::os

#include "os/page_magazine.h"

#include <algorithm>

#include "util/assert.h"

namespace tint::os {

using Mu = util::RankedMutex<util::lock_rank::kMagazine>;

Pfn PageMagazine::pop(uint64_t cursor) {
  if (cached() == 0) return kNoPage;  // lock-free empty probe
  std::lock_guard<Mu> lk(mu_);
  const size_t n = bins_.size();
  for (size_t k = 0; k < n; ++k) {
    Bin& bin = bins_[(cursor + k) % n];
    if (bin.frames.empty()) continue;
    const Pfn pfn = bin.frames.back();
    bin.frames.pop_back();
    total_.fetch_sub(1, std::memory_order_relaxed);
    return pfn;
  }
  return kNoPage;
}

bool PageMagazine::push(Pfn pfn, std::vector<PageInfo>& pages) {
  // One capacity read per push: a concurrent set_capacity lands on the
  // next push, never mid-decision.
  const unsigned cap = capacity();
  if (cap == 0) return false;
  PageInfo& pi = pages[pfn];
  const uint32_t key = key_of(pi);
  std::lock_guard<Mu> lk(mu_);
  Bin* bin = nullptr;
  for (Bin& b : bins_)
    if (b.key == key) {
      bin = &b;
      break;
    }
  if (!bin) {
    bins_.push_back({key, {}});
    bin = &bins_.back();
    bin->frames.reserve(cap);
  }
  if (bin->frames.size() >= cap) return false;
  TINT_DASSERT(pi.state != PageState::kMagazine);
  bin->frames.push_back(pfn);
  pi.state = PageState::kMagazine;
  total_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool PageMagazine::remove(Pfn pfn) {
  if (cached() == 0) return false;
  std::lock_guard<Mu> lk(mu_);
  for (Bin& bin : bins_) {
    const auto it = std::find(bin.frames.begin(), bin.frames.end(), pfn);
    if (it == bin.frames.end()) continue;
    bin.frames.erase(it);
    total_.fetch_sub(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

std::vector<Pfn> PageMagazine::drain_all() {
  std::vector<Pfn> drained;
  if (cached() == 0) return drained;
  std::lock_guard<Mu> lk(mu_);
  for (Bin& bin : bins_) {
    drained.insert(drained.end(), bin.frames.begin(), bin.frames.end());
    bin.frames.clear();
  }
  total_.fetch_sub(drained.size(), std::memory_order_relaxed);
  return drained;
}

std::vector<Pfn> PageMagazine::drain_matching_locked(uint32_t key_lo,
                                                     uint32_t key_hi) {
  std::vector<Pfn> drained;
  for (Bin& bin : bins_) {
    if (bin.key < key_lo || bin.key >= key_hi) continue;
    drained.insert(drained.end(), bin.frames.begin(), bin.frames.end());
    bin.frames.clear();
  }
  total_.fetch_sub(drained.size(), std::memory_order_relaxed);
  return drained;
}

std::vector<Pfn> PageMagazine::drain_bank_range(unsigned mem_lo,
                                                unsigned mem_hi) {
  if (cached() == 0) return {};
  std::lock_guard<Mu> lk(mu_);
  return drain_matching_locked(mem_lo << 8, mem_hi << 8);
}

std::vector<Pfn> PageMagazine::drain_bank_color(unsigned bank_color) {
  if (cached() == 0) return {};
  std::lock_guard<Mu> lk(mu_);
  return drain_matching_locked(bank_color << 8, (bank_color + 1) << 8);
}

std::vector<Pfn> PageMagazine::snapshot() const {
  std::vector<Pfn> out;
  out.reserve(cached());
  for (const Bin& bin : bins_)
    out.insert(out.end(), bin.frames.begin(), bin.frames.end());
  return out;
}

}  // namespace tint::os

// Typed error results and the degradation ladder of the allocation path.
//
// The paper's kernel returns an error from mmap() on pool exhaustion and
// the freqmine anomaly (Section V.B) hinges on over-constrained colorings
// degrading gracefully. Recoverable conditions therefore surface as
// `AllocError` codes instead of aborting: the simulated kernel only aborts
// on programming errors (true invariant violations), never on resource
// exhaustion or bad user arguments.
//
// Every order-0 allocation walks an explicit, observable ladder:
//
//   kColored    page from the task's own color_list combos (Algorithm 1)
//   kWidened    color constraint relaxed, node locality kept: any parked
//               page on the task's nodes (the in-kernel analogue of
//               ColorAdvisor's "widen the color set" advice)
//   kDefault    stock buddy path, preferred node first
//   kScavenged  stranded colorized pages reclaimed from any online node
//   kFailed     ladder exhausted; the fault reports kOutOfMemory
//
// Per-stage counters live in KernelStats (machine-wide) and
// TaskAllocStats (per task).
#pragma once

#include <cstdint>

namespace tint::os {

enum class AllocError : uint8_t {
  kOk = 0,
  kInvalidArgument,  // bad mmap/munmap/heap arguments (EINVAL)
  kPoolExhausted,    // colored pool dry and fallback disabled (paper mode)
  kOutOfMemory,      // degradation ladder fully exhausted (ENOMEM)
  kHugeExhausted,    // huge pool dry and every zone fragmented/offline
  kNodeOffline,      // no online node could serve the request
  // An uncorrectable DRAM error consumed the page's data: the frame was
  // hard-offlined (poisoned, mapping dropped). The next touch of the
  // same virtual page faults in a fresh zeroed frame (the simulated
  // SIGBUS + MCE recovery contract; see DESIGN.md section 11).
  kEccUncorrected,
  // Live migration lost its race: the translation changed between the
  // replacement allocation and the swap (another thread migrated or
  // unmapped the page first). Nothing was corrupted; the page simply no
  // longer needed this migration.
  kMigrationRace,
};

enum class AllocStage : uint8_t {
  kColored = 0,
  kWidened,
  kDefault,
  kScavenged,
  kFailed,
};

constexpr const char* to_string(AllocError e) {
  switch (e) {
    case AllocError::kOk: return "ok";
    case AllocError::kInvalidArgument: return "invalid-argument";
    case AllocError::kPoolExhausted: return "pool-exhausted";
    case AllocError::kOutOfMemory: return "out-of-memory";
    case AllocError::kHugeExhausted: return "huge-exhausted";
    case AllocError::kNodeOffline: return "node-offline";
    case AllocError::kEccUncorrected: return "ecc-uncorrected";
    case AllocError::kMigrationRace: return "migration-race";
  }
  return "?";
}

constexpr const char* to_string(AllocStage s) {
  switch (s) {
    case AllocStage::kColored: return "colored";
    case AllocStage::kWidened: return "widened";
    case AllocStage::kDefault: return "default";
    case AllocStage::kScavenged: return "scavenged";
    case AllocStage::kFailed: return "failed";
  }
  return "?";
}

}  // namespace tint::os

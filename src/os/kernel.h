// The simulated OS kernel: mmap() coloring protocol (Section III.B),
// colored page selection (Algorithm 1), page-fault handling and the
// default buddy path.
//
// mmap() protocol, following Fig. 6: a *zero-length* mmap whose `prot`
// carries PROT_COLOR_ALLOC (bit 30) is a color-control call. The first
// argument then encodes the operation in its most significant bits and
// the color id in its low bits:
//
//   kernel.mmap(task, color | SET_LLC_COLOR, 0, prot | PROT_COLOR_ALLOC, 0)
//
// exactly mirroring the paper's one-line opt-in. Colors land in the
// task's TCB; every later page fault of that task is served by
// Algorithm 1 from color_list[MEM_ID][LLC_ID].
//
// Default path ("normal_buddy_alloc"): Linux prefers the faulting core's
// node, but on a warmed-up machine a sizeable fraction of heap pages is
// recycled from whatever node freed them (shared glibc arenas, page
// cache). `KernelConfig::reuse_probability` models that fraction; it is
// the knob that gives the buddy baseline its remote accesses (Fig. 7)
// and its run-to-run variance (error bars in Fig. 11).
//
// Thread safety: the whole allocation path -- mmap/munmap, page faults,
// alloc_pages/free_pages, color control, failpoint arming and node
// hotplug -- is safe under concurrent callers from real threads. The
// lock-ordering contract (what each lock protects and the rank each one
// carries) is documented in DESIGN.md section 10 and enforced in debug
// builds by util/lock_rank.h. The single-threaded discrete-event engine
// takes exactly the same code path in the same order, so serial results
// stay bit-for-bit identical (determinism_test pins this).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "hw/address_mapping.h"
#include "hw/topology.h"
#include "os/buddy.h"
#include "os/color_lists.h"
#include "os/errors.h"
#include "os/failpoints.h"
#include "os/offload_ring.h"
#include "os/page.h"
#include "os/page_table.h"
#include "os/task.h"
#include "sim/dram_fault.h"
#include "util/lock_rank.h"
#include "util/rng.h"

namespace tint::os {

using hw::Cycles;

// --- mmap color-control encoding (Fig. 6) ---
inline constexpr uint32_t PROT_COLOR_ALLOC = 1u << 30;
inline constexpr uint64_t kColorOpShift = 60;
inline constexpr uint64_t SET_MEM_COLOR = 1ULL << kColorOpShift;
inline constexpr uint64_t CLEAR_MEM_COLOR = 2ULL << kColorOpShift;
inline constexpr uint64_t SET_LLC_COLOR = 3ULL << kColorOpShift;
inline constexpr uint64_t CLEAR_LLC_COLOR = 4ULL << kColorOpShift;
inline constexpr uint64_t kColorMask = (1ULL << 32) - 1;

inline constexpr VirtAddr kMmapFailed = ~0ULL;  // MAP_FAILED

// mmap flag requesting 2 MB huge pages. The paper restricts TintMalloc
// to order-0 requests ("none [of our programs] use so-called huge pages
// (2MB)", Section III.C); this extension adds *controller-aware* huge
// pages: a huge mapping cannot be bank/LLC colored (one 2 MB frame spans
// every color) but it is still placed on the task's local node / the
// node of its bank colors.
inline constexpr uint32_t MAP_HUGE_2MB = 1u << 26;

struct KernelConfig {
  // Probability that a default-path page comes from the recycled pool
  // (arbitrary node) instead of the local node. 0 = ideal first touch.
  double reuse_probability = 0.35;
  // The recycle decision is drawn once per virtual *region* of this many
  // pages, not per page: user-level allocators recycle memory in
  // arena-sized chunks, so physically remote memory arrives in runs.
  // This is what differentiates threads from one another under buddy
  // (per-page draws would average out over thousands of pages and no
  // barrier imbalance would remain).
  unsigned reuse_region_pages = 128;  // 512 KB regions
  // When a colored request exhausts its color pool, fall back to the
  // default path (and count it) instead of failing the fault. The paper
  // returns an error from mmap; real applications need the fallback, and
  // it is what makes over-constrained colorings (the freqmine case,
  // Section V.B) gracefully degrade instead of crash.
  bool colored_fallback_to_default = true;
  // Buddy warm-up episodes (0 = pristine boot state).
  unsigned warmup_episodes = 512;
  // Warm-up fragmentation intensity: pins ~zone/2^shift pages (0 = no
  // fragmentation; see BuddyAllocator::warm_up).
  unsigned warmup_frag_shift = 6;
  // 2 MB blocks reserved per node at boot for MAP_HUGE_2MB mappings --
  // the hugetlbfs pattern: after warm-up fragmentation no contiguous
  // order-9 block survives, so huge pages must be set aside up front.
  // Like Linux's nr_hugepages, the default is 0: huge mappings require
  // an explicit reservation. Clamped to a quarter of the zone.
  unsigned huge_pool_blocks_per_node = 0;
  // --- fast-path caches (defaults off: the serial determinism goldens
  // pin the pre-caching behaviour) ---
  // Frames cached per (MEM_ID, LLC_ID) combo in each task's page
  // magazine (see os/page_magazine.h). 0 disables magazines entirely.
  unsigned magazine_capacity = 0;
  // Upper bound for the *adaptive* magazine tuner (adapt_magazines):
  // each alive task's per-combo capacity grows toward this cap while its
  // observed hit fraction is poor and shrinks back toward
  // magazine_capacity when the cache is saturated. 0 disables adaptation
  // (capacity stays fixed at magazine_capacity).
  unsigned magazine_capacity_max = 0;
  // Color-list shard count. 0 derives it from topology at boot: the
  // number of (bank, LLC) combos clamped to a power of two in [16, 512]
  // (see Kernel ctor). Explicit values are rounded up to a power of two.
  // Shards only affect locking granularity -- never list contents or pop
  // order -- so this knob is determinism-safe.
  unsigned color_shards = 0;
  // Buddy blocks colorized per refill round. 1 keeps the legacy
  // one-block-per-shard-lock path; larger values batch several blocks
  // through ColorLists::refill_batch under one shard acquisition per
  // combo bucket.
  unsigned refill_batch_blocks = 1;
  // --- page-fault cost model (CPU cycles) ---
  Cycles fault_base_cycles = 1500;
  Cycles refill_block_cycles = 60;  // per buddy block colorized (Algo 2)
  Cycles refill_page_cycles = 4;    // per page scattered into color lists
  // Failpoints armed at boot (after the huge-pool reservation and buddy
  // warm-up, so boot itself cannot be failed). More can be armed at
  // runtime through Kernel::failpoints().
  std::vector<std::pair<FailPoint, FailSpec>> failpoints;
  // --- RAS: poisoning, migration, offlining (DESIGN.md section 11) ---
  struct RasConfig {
    // Master switch. Off: poison/offline/scrub are no-ops and the touch
    // path performs no error detection, even with a fault model attached.
    bool enabled = true;
    // Poisoned frames of one bank color before that color is retired
    // from colored placement (0 = never retire).
    unsigned retire_threshold = 32;
    // Faulty replacement frames the fault/migration paths will
    // quarantine-and-retry before failing the request.
    unsigned max_screen_retries = 4;
    // Cost model: copying one 4 KB page during live migration.
    Cycles migrate_copy_cycles = 2000;
  };
  RasConfig ras;
  // --- allocation offload engine (DESIGN.md section 16) ---
  struct OffloadConfig {
    // Master switch. Off (default): no rings exist, the fast paths cost
    // one predicted-false branch, and determinism goldens stay
    // bit-identical.
    bool enabled = false;
    // Usable slots per ring (rounded up to a power of two). Both the
    // completion and the request ring of each task use this depth.
    unsigned ring_depth = 256;
    // Max frames absorbed from one task's request ring per service
    // round.
    unsigned drain_batch = 64;
    // Completion-ring stock floor: the engine restocks at least this
    // many frames even for a task it has not yet observed draining.
    unsigned min_stock = 16;
    // Restock target = observed drain rate per round x this headroom
    // (clamped to [min_stock, ring capacity - 1]) -- DReAM-style
    // observed-counter pacing.
    double prefault_headroom = 2.0;
    // Allocator workers for the background engine. 0 = auto (one per
    // online NUMA node, each servicing only tasks homed on its node);
    // 1 = the legacy single worker servicing every node; N > 1 caps the
    // pool at N, nodes distributed round-robin. Pure engine-side
    // parallelism -- the knob never changes which frames a task gets.
    unsigned workers = 1;
    // Adaptive ring depth: the engine grows a task's rings when its
    // full/empty-stall EWMAs stay high (free bursts overflowing the
    // request ring, faults outrunning restock) and shrinks them back
    // toward ring_depth when the stalls die down. Off (default): depths
    // stay pinned at ring_depth and goldens are untouched.
    bool adaptive_ring = false;
    // Upper bound for adaptive growth (rounded up to a power of two);
    // ring_depth is the shrink floor.
    unsigned ring_depth_max = 4096;
  };
  OffloadConfig offload;
};

struct KernelStats {
  std::atomic<uint64_t> color_control_calls{0};
  std::atomic<uint64_t> huge_faults{0};
  std::atomic<uint64_t> mmap_calls{0};
  std::atomic<uint64_t> munmap_calls{0};
  std::atomic<uint64_t> page_faults{0};
  std::atomic<uint64_t> refill_blocks{0};
  std::atomic<uint64_t> refill_pages{0};
  // --- degradation-ladder counters (one per served order-0 request;
  // see os/errors.h for stage semantics) ---
  std::atomic<uint64_t> ladder_colored{0};  // served from the task's combos
  std::atomic<uint64_t> ladder_widened{0};  // constraint relaxed, node kept
  std::atomic<uint64_t> ladder_default{0};  // stock buddy path (any order)
  // Pages reclaimed from the color lists under memory pressure -- the
  // ladder's last resort before failing.
  std::atomic<uint64_t> scavenged_pages{0};
  std::atomic<uint64_t> alloc_failures{0};  // requests the ladder rejected
  // --- error/robustness bookkeeping ---
  std::atomic<uint64_t> failed_mmaps{0};    // mmap calls that kMmapFailed
  std::atomic<uint64_t> failed_munmaps{0};  // munmap calls rejected
  std::atomic<uint64_t> offline_node_skips{0};  // alloc loops skipping a node
  std::atomic<uint64_t> tlb_invalidations{0};   // software-TLB epoch bumps
  // Page faults that lost a same-page race: the frame was freed back and
  // the winner's mapping adopted (concurrent callers only; always 0 in
  // the serial engine).
  std::atomic<uint64_t> fault_races_lost{0};
  // --- RAS counters (DESIGN.md section 11). The extended conservation
  // law: every ladder-served order-0 allocation is consumed by exactly
  // one of page_faults-huge_faults, fault_races_lost, pages_migrated,
  // migration_races, ras_screened_frames, or a raw alloc_pages caller.
  std::atomic<uint64_t> frames_poisoned{0};     // quarantined frames (total)
  std::atomic<uint64_t> pages_migrated{0};      // successful live migrations
  std::atomic<uint64_t> migration_failures{0};  // no replacement frame
  std::atomic<uint64_t> migration_races{0};     // translation changed mid-swap
  std::atomic<uint64_t> soft_offlines{0};       // migrate-then-poison
  std::atomic<uint64_t> hard_offlines{0};       // poison + mapping dropped
  std::atomic<uint64_t> colors_retired{0};      // bank colors over threshold
  std::atomic<uint64_t> scrub_passes{0};
  std::atomic<uint64_t> scrub_frames_flagged{0};
  std::atomic<uint64_t> ecc_corrected{0};       // flaky-frame touch events
  std::atomic<uint64_t> ecc_uncorrected{0};     // dead-frame touch events
  // Faulty frames the ladder handed out and RAS rejected on the spot.
  std::atomic<uint64_t> ras_screened_frames{0};
  // Color-parked frames returned to the buddy when their node went offline.
  std::atomic<uint64_t> offline_drained_pages{0};
  // --- fast-path cache counters ---
  std::atomic<uint64_t> magazine_hits{0};    // colored allocs a magazine served
  std::atomic<uint64_t> magazine_misses{0};  // magazine probed empty / bypassed
  std::atomic<uint64_t> magazine_drains{0};  // cached frames returned to pools
  std::atomic<uint64_t> batch_refills{0};    // multi-block refill rounds
  // --- live re-coloring (Kernel::recolor_task; used by the ColorGuard) ---
  std::atomic<uint64_t> recolor_calls{0};    // atomic color-set swaps applied
  // --- allocation offload counters (DESIGN.md section 16) ---
  std::atomic<uint64_t> ring_alloc_hits{0};    // colored allocs a ring served
  std::atomic<uint64_t> ring_empty_stalls{0};  // ring probed empty / guard busy
  std::atomic<uint64_t> ring_full_stalls{0};   // frees that found the ring full
  std::atomic<uint64_t> ring_frees_absorbed{0};  // frames the engine drained
  std::atomic<uint64_t> ring_recycled{0};   // frees recycled straight to stock
  std::atomic<uint64_t> ring_fg_recycles{0};  // frees recycled inline by the app
  std::atomic<uint64_t> ring_drained_frames{0};  // teardown/recolor drains
  std::atomic<uint64_t> prefault_pages{0};  // frames the engine stocked ahead
  std::atomic<uint64_t> batches_drained{0};  // service rounds that did work
  // --- adaptive magazine tuner (Kernel::adapt_magazines) ---
  std::atomic<uint64_t> magazine_grows{0};
  std::atomic<uint64_t> magazine_shrinks{0};
  // --- adaptive ring depth + shard count (DESIGN.md section 17) ---
  std::atomic<uint64_t> ring_grows{0};      // per-task ring depth doublings
  std::atomic<uint64_t> ring_shrinks{0};    // per-task ring depth halvings
  std::atomic<uint64_t> ring_resize_drained{0};  // frames re-homed by resizes
  std::atomic<uint64_t> color_reshards{0};  // online shard-count swaps

  struct Snapshot {
    uint64_t color_control_calls = 0;
    uint64_t huge_faults = 0;
    uint64_t mmap_calls = 0;
    uint64_t munmap_calls = 0;
    uint64_t page_faults = 0;
    uint64_t refill_blocks = 0;
    uint64_t refill_pages = 0;
    uint64_t ladder_colored = 0;
    uint64_t ladder_widened = 0;
    uint64_t ladder_default = 0;
    uint64_t scavenged_pages = 0;
    uint64_t alloc_failures = 0;
    uint64_t failed_mmaps = 0;
    uint64_t failed_munmaps = 0;
    uint64_t offline_node_skips = 0;
    uint64_t tlb_invalidations = 0;
    uint64_t fault_races_lost = 0;
    uint64_t frames_poisoned = 0;
    uint64_t pages_migrated = 0;
    uint64_t migration_failures = 0;
    uint64_t migration_races = 0;
    uint64_t soft_offlines = 0;
    uint64_t hard_offlines = 0;
    uint64_t colors_retired = 0;
    uint64_t scrub_passes = 0;
    uint64_t scrub_frames_flagged = 0;
    uint64_t ecc_corrected = 0;
    uint64_t ecc_uncorrected = 0;
    uint64_t ras_screened_frames = 0;
    uint64_t offline_drained_pages = 0;
    uint64_t magazine_hits = 0;
    uint64_t magazine_misses = 0;
    uint64_t magazine_drains = 0;
    uint64_t batch_refills = 0;
    uint64_t recolor_calls = 0;
    uint64_t ring_alloc_hits = 0;
    uint64_t ring_empty_stalls = 0;
    uint64_t ring_full_stalls = 0;
    uint64_t ring_frees_absorbed = 0;
    uint64_t ring_recycled = 0;
    uint64_t ring_fg_recycles = 0;
    uint64_t ring_drained_frames = 0;
    uint64_t prefault_pages = 0;
    uint64_t batches_drained = 0;
    uint64_t magazine_grows = 0;
    uint64_t magazine_shrinks = 0;
    uint64_t ring_grows = 0;
    uint64_t ring_shrinks = 0;
    uint64_t ring_resize_drained = 0;
    uint64_t color_reshards = 0;
  };
  Snapshot snapshot() const {
    const auto ld = [](const std::atomic<uint64_t>& a) {
      return a.load(std::memory_order_relaxed);
    };
    return {ld(color_control_calls), ld(huge_faults),    ld(mmap_calls),
            ld(munmap_calls),        ld(page_faults),    ld(refill_blocks),
            ld(refill_pages),        ld(ladder_colored), ld(ladder_widened),
            ld(ladder_default),      ld(scavenged_pages), ld(alloc_failures),
            ld(failed_mmaps),        ld(failed_munmaps),
            ld(offline_node_skips),  ld(tlb_invalidations),
            ld(fault_races_lost),    ld(frames_poisoned),
            ld(pages_migrated),      ld(migration_failures),
            ld(migration_races),     ld(soft_offlines),  ld(hard_offlines),
            ld(colors_retired),      ld(scrub_passes),
            ld(scrub_frames_flagged), ld(ecc_corrected),
            ld(ecc_uncorrected),     ld(ras_screened_frames),
            ld(offline_drained_pages), ld(magazine_hits),
            ld(magazine_misses),     ld(magazine_drains),
            ld(batch_refills),       ld(recolor_calls),
            ld(ring_alloc_hits),     ld(ring_empty_stalls),
            ld(ring_full_stalls),    ld(ring_frees_absorbed),
            ld(ring_recycled),       ld(ring_fg_recycles),
            ld(ring_drained_frames),
            ld(prefault_pages),      ld(batches_drained),
            ld(magazine_grows),      ld(magazine_shrinks),
            ld(ring_grows),          ld(ring_shrinks),
            ld(ring_resize_drained), ld(color_reshards)};
  }
};

class Kernel {
 public:
  // 2 MB huge pages = buddy order 9 with 4 KB base pages.
  static constexpr uint64_t kHugeBytes = 2ULL << 20;
  static constexpr unsigned kHugeOrder = 9;

  Kernel(const hw::Topology& topo, const hw::AddressMapping& mapping,
         KernelConfig cfg = {}, uint64_t seed = 42);

  // --- tasks ---
  TaskId create_task(unsigned pinned_core);
  Task& task(TaskId id) { return tasks_.at(id); }
  const Task& task(TaskId id) const { return tasks_.at(id); }
  size_t num_tasks() const { return tasks_.size(); }
  // Task-exit hook: marks the task dead (control-plane observers like
  // the ColorGuard and the admission controller skip dead tenants) and
  // drains its page magazine back to the shared pools (the Task object
  // itself lives for the kernel's lifetime, so only the cached frames
  // need returning). Idempotent. Does NOT release the task's VMAs or
  // colors -- callers that own the whole tenant lifecycle use
  // reap_task() instead.
  void exit_task(TaskId id);
  // Liveness of a stored TaskId. Unknown / never-created ids report
  // dead rather than aborting, so observers may probe ids cached across
  // a teardown window.
  bool task_alive(TaskId id) const {
    return id < tasks_.size() && tasks_.at(id).alive();
  }

  // Crash-consistent tenant teardown: the full exit path a colo-scale
  // lifecycle needs, safe to run while the tenant is mid-fault (the
  // per-VMA munmap's exclusive mm hold drains in-flight faults first)
  // or mid-heal (the task is marked dead *first*, so the ColorGuard
  // cancels instead of migrating a corpse; any migration already in
  // flight resolves through the usual kMigrationRace/kInvalidArgument
  // envelope). Order: mark dead -> unmap every VMA the task created
  // (freeing its frames) -> drain its magazine -> clear its colors (so
  // a free-color scan over TCBs sees them released). Idempotent; a
  // second reap finds nothing to release.
  struct ReapReport {
    bool was_alive = false;        // false on a repeated reap
    uint64_t vmas_unmapped = 0;    // VMAs this call released
    uint64_t magazine_drained = 0; // cached frames returned to the pools
    unsigned colors_cleared = 0;   // bank + LLC colors dropped from the TCB
  };
  ReapReport reap_task(TaskId id);

  // --- system calls ---
  // See file comment for the color-control encoding. For length > 0,
  // reserves a fresh VMA (addr_or_color must be 0: no fixed mappings)
  // and returns its base address. Returns kMmapFailed on bad arguments;
  // last_error() carries the reason.
  VirtAddr mmap(TaskId task, uint64_t addr_or_color, uint64_t length,
                uint32_t prot, uint32_t flags = 0);
  // Unmaps a VMA previously returned by mmap and frees its frames.
  // Returns false (with last_error() set) on an unknown base or a
  // partial-length unmap instead of aborting.
  bool munmap(TaskId task, VirtAddr base, uint64_t length);
  // Reason for the most recent failed mmap/munmap (kOk after a success).
  // Kernel-wide, like a shared errno: under concurrent callers prefer
  // the per-call results (TouchResult::error, AllocOutcome::error).
  AllocError last_error() const {
    return last_error_.load(std::memory_order_relaxed);
  }

  // --- memory access path ---
  struct TouchResult {
    uint64_t pa = 0;
    bool faulted = false;
    Cycles fault_cycles = 0;
    // kOk on success. kOutOfMemory / kPoolExhausted / kHugeExhausted /
    // kNodeOffline when the fault could not be served: pa is 0 and no
    // mapping was created (the simulated SIGBUS). kEccUncorrected when
    // the touched frame was dead and has been hard-offlined: the data is
    // lost, pa is 0, and the *next* touch faults in a fresh zeroed
    // frame. Touching outside any VMA is a genuine segfault and still
    // aborts.
    AllocError error = AllocError::kOk;
  };
  // Translates `va`, faulting in a frame on first touch using the
  // *calling* task's policy.
  TouchResult touch(TaskId task, VirtAddr va, bool write);
  std::optional<uint64_t> translate(VirtAddr va) const;

  // --- Algorithm 1 (exposed for tests and the allocator bench) ---
  struct AllocOutcome {
    Pfn pfn = kNoPage;
    bool colored = false;     // served from the task's own combos
    bool fell_back = false;   // colored request served below kColored
    AllocStage stage = AllocStage::kFailed;  // ladder stage that served it
    AllocError error = AllocError::kOk;      // set when pfn == kNoPage
    unsigned refill_blocks = 0;
    unsigned refill_pages = 0;
  };
  // `vpn_hint` identifies the faulting virtual page so default-path node
  // decisions can be made per region (see KernelConfig); pass ~0 for
  // hint-less allocations.
  AllocOutcome alloc_pages(TaskId task, unsigned order,
                           uint64_t vpn_hint = ~0ULL);
  void free_pages(Pfn pfn, unsigned order);

  // --- fault injection & node hotplug ---
  FailPoints& failpoints() { return fail_; }
  const FailPoints& failpoints() const { return fail_; }
  // Offlines/onlines a node at runtime: allocation paths skip offline
  // zones (counted in KernelStats::offline_node_skips); frees to an
  // offline zone still land in its free lists, ready for re-onlining.
  // Safe to call concurrently with allocations (node hotplug torture).
  void set_node_online(unsigned node, bool online);
  bool node_online(unsigned node) const {
    TINT_DASSERT(node < topo_.num_nodes());
    return node_online_[node].load(std::memory_order_acquire) != 0;
  }

  // --- RAS: error injection, poisoning, migration, retirement (DESIGN.md
  // section 11) ---
  // Attaches (or detaches, with nullptr) a DRAM fault model. The model
  // is consulted by the touch path (is this mapped frame flaky/dead?),
  // by allocation screening (is this fresh frame faulty?) and by the
  // scrubber. The caller keeps the model alive for the kernel's
  // lifetime; an empty model costs one atomic load per check.
  void attach_fault_model(const sim::DramFaultModel* model) {
    fault_model_.store(model, std::memory_order_release);
  }
  const sim::DramFaultModel* fault_model() const {
    return fault_model_.load(std::memory_order_acquire);
  }

  // Quarantines a currently *free* frame (buddy or color-parked): pulls
  // it out of its free pool so it can never be handed out again, and
  // counts it toward its bank color's retirement threshold. Returns
  // false when the frame is already poisoned, allocated (mapped frames
  // go through soft/hard offline instead), part of a huge mapping, or
  // RAS is disabled. Safe from any thread.
  bool poison_frame(Pfn pfn);

  struct MigrateResult {
    bool ok = false;
    Pfn old_pfn = kNoPage;
    Pfn new_pfn = kNoPage;
    AllocStage stage = AllocStage::kFailed;  // ladder stage of the replacement
    AllocError error = AllocError::kOk;      // set when !ok
    Cycles cycles = 0;                       // simulated copy cost
  };
  // Live migration: allocates a replacement frame under the *owner's*
  // color constraints (falling down the usual ladder when the colored
  // pool is dry), copies the page, swaps the translation, and frees the
  // old frame. Fails gracefully (kMigrationRace) when a concurrent
  // migration/munmap changed the translation mid-swap.
  MigrateResult migrate_page(VirtAddr va);
  // Soft offline (flaky frame): migrate, then poison the old frame
  // instead of freeing it. With RAS disabled this degrades to a plain
  // migration.
  MigrateResult soft_offline_page(VirtAddr va);
  // Hard offline (dead frame): poison the frame and drop its mapping.
  // The data is lost; the next touch of the page faults in a fresh
  // zeroed frame. Returns kOk on success, kMigrationRace when the
  // translation changed first.
  AllocError hard_offline_page(VirtAddr va);

  // --- live re-coloring (the ColorGuard's kernel hooks) ---
  // Atomically swaps colors in a task's TCB: all drops and adds land in
  // one published snapshot, so a concurrent fault of that task sees
  // either the old or the new color set -- never the in-between states
  // that a CLEAR_*/SET_* mmap sequence would expose. Validates every
  // color id (returns false + kInvalidArgument without touching the TCB
  // on any out-of-range id) and drains the task's page magazine, whose
  // cached frames were chosen under the old constraints. Safe from any
  // thread, including concurrently with the task's own faults.
  bool recolor_task(TaskId task, const std::vector<uint16_t>& drop_mem,
                    const std::vector<uint16_t>& add_mem,
                    const std::vector<uint8_t>& drop_llc = {},
                    const std::vector<uint8_t>& add_llc = {});
  // Enumerates the virtual pages of `task` currently backed by frames of
  // `bank_color` (ascending VA, so callers process them in a stable
  // order). `colored_only` restricts the walk to frames served by the
  // colored ladder stage -- the set a re-coloring must migrate, and one
  // that only shrinks once the task stops faulting on the color. Huge
  // mappings are skipped (a 2 MB frame spans every color).
  std::vector<VirtAddr> pages_of_task_color(TaskId task, unsigned bank_color,
                                            bool colored_only = true) const;
  // LLC-dimension analogue: the virtual pages of `task` backed by frames
  // of `llc_color` (ascending VA). Same colored_only/huge semantics --
  // this is the set an LLC heal must migrate after an LLC color swap.
  std::vector<VirtAddr> pages_of_task_llc_color(TaskId task,
                                                unsigned llc_color,
                                                bool colored_only = true) const;

  // Background scrubber: one stop-the-world sweep (same freeze order as
  // check_invariants) collecting every frame the fault model flags, then
  // a repair phase -- free faulty frames are poisoned, mapped flaky
  // frames soft-offlined, mapped dead frames hard-offlined. Frames that
  // move between sweep and repair are skipped (the next pass sees them).
  struct ScrubReport {
    uint64_t frames_flagged = 0;
    uint64_t poisoned_free = 0;
    uint64_t soft_offlined = 0;
    uint64_t hard_offlined = 0;
    uint64_t skipped = 0;  // moved/failed between sweep and repair
  };
  ScrubReport scrub();

  // --- allocation offload (per-task SPSC rings; DESIGN.md section 16) ---
  // Attaches request/completion rings to a task so its order-0 colored
  // faults pop from the completion ring and its frees push to the
  // request ring (both app sides lock-free + try-guard, falling back to
  // the magazine path whenever the ring cannot serve). Idempotent.
  // Returns false when offload is disabled or the id is beyond the
  // ring registry's direct-map bound.
  bool offload_attach(TaskId id);
  bool offload_attached(TaskId id) const {
    return offload_rings_ && offload_rings_->rings_of(id) != nullptr;
  }
  bool offload_enabled() const { return cfg_.offload.enabled; }

  // One service round for one task, called from the engine thread:
  // absorbs up to offload.drain_batch frames from the request ring
  // (recycling still-valid ones straight back into the completion ring,
  // re-homing the rest to magazine/colors/buddy), then restocks the
  // completion ring to `target_stock` colored frames via the usual
  // refill ladder. Holds the mm lock shared for the whole round, so a
  // stop-the-world freeze drains the engine mid-batch exactly like an
  // in-flight fault. Safe to call for a dead task (absorb-only).
  struct OffloadServiceReport {
    uint64_t frees_absorbed = 0;  // request-ring frames consumed
    uint64_t recycled = 0;        // of those, moved straight to stock
    uint64_t restocked = 0;       // fresh frames pushed to the completion ring
    bool task_dead = false;       // restock skipped: task exited
  };
  OffloadServiceReport offload_service(TaskId id, unsigned target_stock);

  // Cumulative completion-ring pops of a task -- the engine's
  // drain-rate observation point for prefault pacing. 0 when never
  // attached.
  uint64_t offload_ring_pops(TaskId id) const;

  // Per-task ring stall observation points for the adaptive depth
  // tuner: full = frees that found the request ring full, empty =
  // colored faults that found the completion ring empty / guard busy.
  // Both zero when never attached.
  struct RingStallSnapshot {
    uint64_t full = 0;
    uint64_t empty = 0;
  };
  RingStallSnapshot offload_ring_stalls(TaskId id) const;
  // Usable slots per ring of a task (0 when never attached).
  unsigned offload_ring_capacity(TaskId id) const;

  // Freeze-swap ring resize (the adaptive-depth mechanism): freezes the
  // task's rings (engine guard + app guards), drains both through the
  // frozen-side machinery, re-sizes them in place to `new_depth`
  // (rounded up to a power of two, clamped to [4, ring_depth_max]),
  // then re-pushes the drained frames up to the new capacity --
  // completion-ring stock first, then pending frees back to the request
  // ring; overflow re-homes to the color lists (or the buddy behind an
  // offline node). Frame conservation holds across the whole swap: the
  // re-homing happens inside the freeze hold, so the STW walk never
  // sees a frame outside every pool. Cumulative pop counters survive
  // the resize (the engine paces off their deltas). Returns false when
  // offload is off or the task was never attached.
  bool offload_resize_task(TaskId id, unsigned new_depth);

  // Drains both rings of a task back to the shared pools (teardown,
  // re-coloring, color-control changes, node offlining). Returns frames
  // drained. Safe from any thread; no-op when never attached.
  uint64_t offload_drain_task(TaskId id);

  // --- adaptive magazine tuner (control-plane pass; DESIGN.md §13) ---
  // Re-sizes each alive task's magazine capacity from the task's
  // observed hit/miss deltas since the previous pass: poor hit fraction
  // doubles the per-combo capacity (up to magazine_capacity_max),
  // saturated caches halve it back toward the magazine_capacity floor.
  // No-op unless magazine_capacity_max > magazine_capacity > 0.
  struct MagazineAdaptReport {
    unsigned grown = 0;    // tasks whose capacity doubled
    unsigned shrunk = 0;   // tasks whose capacity halved
    unsigned observed = 0; // alive tasks with magazine traffic this pass
  };
  MagazineAdaptReport adapt_magazines();

  // --- adaptive color-shard count (control-plane; DESIGN.md §17) ---
  // Online re-shard of the color matrix: swaps the shard-lock array to
  // `shards` (rounded up to a power of two, clamped to [16, 512])
  // without touching list contents -- sharding is pure lock
  // granularity, so the swap is invisible to determinism. Quiesces
  // every internal shard user by taking the mm lock exclusively (drains
  // faults, engine rounds and drains) plus the ras lock (excludes
  // poison reach-ins); raw alloc_pages/free_pages callers must be
  // quiesced by the caller, exactly like the stop-the-world invariant
  // walk. Returns false when the clamped count already matches.
  bool reshard_colors(unsigned shards);

  // One observation window + decision pass of the shard advisor: opens
  // the ColorLists contention probe, lets the caller's workload run
  // (the probe stays open between begin_shard_probe and adapt_shards),
  // then folds the observed contention fraction and the current
  // freeze-cost (shard count) into a ShardAdvisor recommendation,
  // re-sharding online when it differs. No-op unless the probe was
  // opened and saw traffic.
  void begin_shard_probe();
  struct ShardAdaptReport {
    unsigned old_shards = 0;
    unsigned new_shards = 0;
    bool resharded = false;
    uint64_t acquisitions = 0;   // probed shard-lock acquisitions
    uint64_t contended = 0;      // of those, found the shard held
  };
  ShardAdaptReport adapt_shards();

  // A bank color whose poisoned-frame count crossed the retirement
  // threshold: colored placement (ladder stage 1) skips it; parked
  // frames of that color remain reachable through widening/scavenging.
  bool color_retired(unsigned bank_color) const {
    TINT_DASSERT(bank_color < mapping_.num_bank_colors());
    return color_retired_[bank_color].load(std::memory_order_acquire) != 0;
  }
  std::vector<uint16_t> retired_colors() const;
  uint64_t poisoned_frames() const;

  // --- frame-accounting invariants ---
  // Cross-checks every frame pool against its counters by walking the
  // actual lists: buddy free + color-parked + mapped + huge pool +
  // warm-up pins (+ `expected_loose` frames handed out through the raw
  // alloc_pages API without being mapped) must equal total frames, and
  // no frame may appear in two pools at once.
  struct InvariantReport {
    bool ok = false;
    uint64_t total = 0;
    uint64_t buddy_free = 0;
    uint64_t color_parked = 0;
    uint64_t magazine_cached = 0;  // frames parked in task page magazines
    uint64_t ring_owned = 0;       // frames parked in task offload rings
    uint64_t mapped = 0;
    uint64_t huge_pool_pages = 0;
    uint64_t pinned = 0;          // warm-up reserved pages
    uint64_t poisoned = 0;        // RAS-quarantined frames
    uint64_t loose = 0;           // allocated but unmapped frames
    uint64_t double_counted = 0;  // frames found in more than one pool
    std::string detail;           // first inconsistency, for diagnostics
  };
  // `stop_the_world` freezes every allocation-path lock (in rank order)
  // for the duration of the walk, so the check stays sound while real
  // threads keep faulting through the VMA path: in-flight faults hold
  // the mm lock shared, so the exclusive acquisition drains them first.
  // Raw alloc_pages/free_pages callers bypass the mm lock; they must be
  // quiesced (or accounted via expected_loose) by the caller.
  InvariantReport check_invariants(uint64_t expected_loose = 0,
                                   bool stop_the_world = false) const;

  // --- introspection ---
  // The subsystem references are safe to *read* concurrently through
  // their own APIs; structural walks (snapshot_*) require quiescence or
  // the stop-the-world invariant checker.
  BuddyAllocator& buddy() { return *buddy_; }
  ColorLists& color_lists() { return *colors_; }
  const std::vector<PageInfo>& pages() const { return pages_; }
  const PageTable& page_table() const { return page_table_; }
  const hw::AddressMapping& mapping() const { return mapping_; }
  const hw::Topology& topology() const { return topo_; }
  const KernelStats& stats() const { return stats_; }
  const KernelConfig& config() const { return cfg_; }
  // Unused blocks remaining in the boot-reserved huge pool.
  uint64_t huge_pool_blocks_free() const;
  // Cached per-region default-path node decisions currently held; kept
  // bounded by erasing a VMA's regions on munmap.
  size_t region_cache_entries() const;

 private:
  // Colored path of Algorithm 1. Returns kNoPage when every candidate
  // color pool and its backing zones are exhausted. `transient_offline`
  // is the per-allocation node injected by the kNodeOffline failpoint
  // (-1 = none); it is threaded through by value so concurrent
  // allocations cannot observe each other's injected outages. `cs` is
  // the one color snapshot the whole allocation works from, loaded by
  // the caller so a concurrent re-coloring cannot tear the view mid-scan.
  AllocOutcome alloc_colored(Task& t, const Task::ColorSet& cs,
                             uint64_t vpn_hint, int64_t transient_offline);
  // Ladder stage 2: any parked page on the task's own nodes, relaxing
  // the color constraint but keeping node locality (the in-kernel
  // analogue of ColorAdvisor's widening advice).
  Pfn widen_from_node_lists(const Task& t, const Task::ColorSet& cs,
                            int64_t transient_offline);
  // Huge-page fault: maps an aligned 2 MB block at once (node-aware).
  // Caller holds the mm lock shared.
  TouchResult fault_huge(Task& t, VirtAddr va, VirtAddr vma_base);
  unsigned pick_default_node(const Task& t, uint64_t vpn_hint);
  // --- RAS internals ---
  hw::PhysAddr frame_base(Pfn pfn) const {
    return static_cast<hw::PhysAddr>(pfn) * topo_.page_bytes();
  }
  // alloc_pages + fault-model screening: faulty candidates are
  // quarantined on the spot and the ladder is asked again (bounded by
  // max_screen_retries). The returned frame is in kAllocated state.
  AllocOutcome alloc_screened(TaskId task, uint64_t vpn_hint);
  // Quarantines a frame the caller exclusively holds (allocated but not
  // mapped) -- the old frame of a soft/hard offline, or a faulty frame
  // rejected by screening.
  void quarantine_loose_frame(Pfn pfn);
  // Bookkeeping common to every poisoning path: per-color count +
  // retirement threshold; on retirement, drains the retired color out of
  // every task's magazine (ranks kRas -> kMagazine -> kColorShard,
  // ascending). Caller holds ras_lock_.
  void note_poisoned_locked(Pfn pfn);
  // Magazine drain paths (see os/page_magazine.h for the triggers).
  // Frames go back to their color lists; returns the count drained.
  uint64_t drain_magazine_to_colors(Task& t);
  uint64_t drain_all_magazines_to_colors();
  // Ring drain body: freezes the task's rings (engine lock + app
  // guards), pops everything from both, and re-homes the frames to
  // colors/buddy. Caller may hold the mm lock (either mode) or nothing;
  // must NOT hold ranks >= kOffloadRing.
  uint64_t offload_drain_task_locked(TaskId id);
  // Fast-path helpers (called from alloc_pages/free_pages). `try_ring_pop`
  // returns kNoPage when offload is off / unattached / guard busy / ring
  // empty / every parked frame invalid; a popped-but-stale frame is
  // re-homed inline. `try_ring_push` returns false when the free could
  // not be parked (caller falls through to the magazine path).
  Pfn try_ring_pop(Task& t, const Task::ColorSet& cs,
                   int64_t transient_offline);
  bool try_ring_push(PageInfo& pi, Pfn pfn);
  // Direct recycle: a freed frame that is still valid for its owner is
  // pushed straight back into the owner's completion ring (producer
  // side shared with the engine via recycle_guard), closing the SPSC
  // round trip without the engine on the critical path. False when the
  // frame is stale / guard busy / ring full (caller falls through).
  bool try_ring_recycle(PageInfo& pi, Pfn pfn);
  // Shared validation for ring/magazine-cached frames: the pool the
  // frame was chosen from may have gone stale (node offlined, color
  // retired or swapped out of the task's set).
  bool cached_frame_valid(const PageInfo& pi, const Task::ColorSet& cs) const {
    return node_online(pi.node) && !color_retired(pi.bank_color) &&
           (!cs.using_bank || cs.mem_colors[pi.bank_color]) &&
           (!cs.using_llc || cs.llc_colors[pi.llc_color]);
  }
  // Migration/offline bodies; caller holds the mm lock shared (they are
  // reached from inside the fault/touch path, which already does).
  // `expected` != kNoPage pins the migration to a specific old frame:
  // if the page no longer maps it, the call fails with kMigrationRace
  // instead of migrating whatever frame took its place (scrubber).
  MigrateResult migrate_locked(VirtAddr va, bool poison_old,
                               Pfn expected = kNoPage);
  bool hard_offline_locked(uint64_t vpn, Pfn expected);
  // Online and not transiently failed for the current allocation.
  bool node_usable(unsigned node, int64_t transient_offline) const {
    return node_online(node) &&
           static_cast<int64_t>(node) != transient_offline;
  }
  // Invalidates the whole software TLB in O(1) via the generation
  // counter (any frame may have been reclaimed).
  void invalidate_tlb() {
    tlb_epoch_.fetch_add(1, std::memory_order_release);
    ++stats_.tlb_invalidations;
  }
  VirtAddr fail_mmap(AllocError why) {
    last_error_.store(why, std::memory_order_relaxed);
    ++stats_.failed_mmaps;
    return kMmapFailed;
  }
  void set_last_error(AllocError why) {
    last_error_.store(why, std::memory_order_relaxed);
  }

  hw::Topology topo_;
  const hw::AddressMapping& mapping_;
  KernelConfig cfg_;
  std::vector<PageInfo> pages_;
  std::unique_ptr<BuddyAllocator> buddy_;
  std::unique_ptr<ColorLists> colors_;
  PageTable page_table_;
  TaskTable tasks_;

  // --- locks (ranks from util/lock_rank.h; full contract in DESIGN.md
  // section 10) ---
  // mm lock: VMA table + VA cursor. Faults hold it shared end-to-end
  // (like Linux's mmap_lock), mmap/munmap hold it exclusive -- which is
  // also what lets the stop-the-world invariant walk drain in-flight
  // faults.
  mutable util::RankedSharedMutex<util::lock_rank::kMm> mm_lock_;
  // Default-path state: kernel rng + per-region node cache.
  mutable util::RankedMutex<util::lock_rank::kDefaultPath> default_lock_;
  // Page-table lock: shared for translation, exclusive for map/unmap.
  mutable util::RankedSharedMutex<util::lock_rank::kPageTable> pt_lock_;
  // Huge-pool lock: the per-node reserved 2 MB block stacks.
  mutable util::RankedMutex<util::lock_rank::kHugePool> huge_lock_;
  // RAS lock: the poisoned-frame set and per-color poison counts. Held
  // across a whole quarantine transition (set insert + pool carve), so
  // the stop-the-world freeze -- which acquires it between the huge pool
  // and the color shards -- excludes half-finished poisonings.
  mutable util::RankedMutex<util::lock_rank::kRas> ras_lock_;

  Rng rng_;  // guarded by default_lock_ after boot

  struct Vma {
    uint64_t length = 0;
    TaskId creator = kNoTask;
    bool huge = false;  // 2 MB frames (MAP_HUGE_2MB)
  };
  std::map<VirtAddr, Vma> vmas_;            // guarded by mm_lock_
  VirtAddr va_cursor_ = 0x100000000000ULL;  // heap VA bump pointer (mm_lock_)
  // Software translation cache in front of the page table (performance
  // of the simulator only -- the TLB itself is not timed). Entries are
  // stamped with a generation counter; free_pages/munmap bump the
  // counter, invalidating every entry in O(1) so a reclaimed frame can
  // never be returned through a stale translation. Each slot is a tiny
  // seqlock (sequence count + relaxed-atomic payload) so concurrent
  // readers never observe a torn (vpn, pfn, epoch) triple; fills are
  // best-effort and skip the slot if another thread is mid-write.
  struct TlbSlot {
    std::atomic<uint32_t> seq{0};  // odd = write in progress
    std::atomic<uint64_t> vpn{~0ULL};
    std::atomic<uint64_t> pfn{kNoPage};
    std::atomic<uint64_t> epoch{0};
  };
  static constexpr size_t kTlbSize = 4096;  // power of two
  std::vector<TlbSlot> tlb_ = std::vector<TlbSlot>(kTlbSize);
  std::atomic<uint64_t> tlb_epoch_{1};  // slots default to epoch 0 == invalid
  std::optional<uint64_t> tlb_lookup(uint64_t vpn) const;
  // `epoch` must have been loaded *before* the translation that produced
  // `pfn` was read, so a concurrent invalidation can never be stamped
  // over (the stale fill lands with an already-dead epoch instead).
  void tlb_fill(uint64_t vpn, Pfn pfn, uint64_t epoch);
  // Default-path node decision per virtual region (see KernelConfig).
  // Entries covering a VMA are erased on munmap so long experiment
  // sweeps do not grow the map without bound. Guarded by default_lock_.
  std::unordered_map<uint64_t, unsigned> region_node_;
  // Boot-reserved huge blocks (hugetlbfs-style), one stack per node.
  // Guarded by huge_lock_ after boot.
  std::vector<std::vector<Pfn>> huge_pool_;
  // Node hotplug state (1 = online).
  std::unique_ptr<std::atomic<uint8_t>[]> node_online_;
  // --- RAS state ---
  // Quarantined frames + per-bank-color poison counts (ras_lock_).
  std::unordered_set<Pfn> poisoned_;
  std::vector<uint32_t> poison_per_color_;
  // Retirement flags, one per bank color: lock-free reads so the colored
  // allocation path can skip retired colors without taking ras_lock_.
  std::unique_ptr<std::atomic<uint8_t>[]> color_retired_;
  std::atomic<const sim::DramFaultModel*> fault_model_{nullptr};
  // Per-task offload ring registry; null when offload.enabled is false
  // (the fast paths then cost exactly one predicted-false branch).
  std::unique_ptr<OffloadRings> offload_rings_;
  FailPoints fail_;
  std::atomic<AllocError> last_error_{AllocError::kOk};
  KernelStats stats_;
};

}  // namespace tint::os

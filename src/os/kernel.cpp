#include "os/kernel.h"

#include <algorithm>

#include "os/shard_advisor.h"
#include "util/assert.h"

namespace tint::os {

namespace {
using MmLock = util::RankedSharedMutex<util::lock_rank::kMm>;
using DefaultLock = util::RankedMutex<util::lock_rank::kDefaultPath>;
using PtLock = util::RankedSharedMutex<util::lock_rank::kPageTable>;
using HugeLock = util::RankedMutex<util::lock_rank::kHugePool>;
using RasLock = util::RankedMutex<util::lock_rank::kRas>;
}  // namespace

Kernel::Kernel(const hw::Topology& topo, const hw::AddressMapping& mapping,
               KernelConfig cfg, uint64_t seed)
    : topo_(topo), mapping_(mapping), cfg_(cfg),
      pages_(build_page_table_metadata(mapping, topo.total_pages())),
      page_table_(topo.page_bits), rng_(seed),
      fail_(mix64(seed ^ 0xfa11fa11ULL)) {
  // Boot runs strictly single-threaded; no locks are taken here.
  buddy_ = std::make_unique<BuddyAllocator>(topo, pages_);
  // Shard count for the color matrix: pinned by the knob, else derived
  // from topology by the shard advisor (enough shards that the
  // (bank, LLC) combos in flight across all cores rarely collide,
  // clamped so the stop-the-world freeze stays bounded --
  // bench/concurrent_alloc reports the freeze cost vs. this count, and
  // adapt_shards() can re-shard online from observed contention).
  unsigned shards = cfg_.color_shards;
  if (shards == 0)
    shards = ShardAdvisor::boot_shards(topo, mapping.num_bank_colors(),
                                       mapping.num_llc_colors());
  colors_ = std::make_unique<ColorLists>(mapping.num_bank_colors(),
                                         mapping.num_llc_colors(),
                                         topo.total_pages(), shards);
  node_online_ = std::make_unique<std::atomic<uint8_t>[]>(topo.num_nodes());
  for (unsigned n = 0; n < topo.num_nodes(); ++n)
    node_online_[n].store(1, std::memory_order_relaxed);
  poison_per_color_.assign(mapping.num_bank_colors(), 0);
  color_retired_ =
      std::make_unique<std::atomic<uint8_t>[]>(mapping.num_bank_colors());
  for (unsigned c = 0; c < mapping.num_bank_colors(); ++c)
    color_retired_[c].store(0, std::memory_order_relaxed);
  // Reserve the huge-page pool while the zones are still pristine
  // (hugetlbfs-style boot reservation); warm-up fragmentation would
  // otherwise leave no contiguous 2 MB block behind.
  huge_pool_.resize(topo.num_nodes());
  const uint64_t max_blocks =
      (topo.pages_per_node() >> kHugeOrder) / 4;
  const unsigned pool = static_cast<unsigned>(
      std::min<uint64_t>(cfg_.huge_pool_blocks_per_node, max_blocks));
  for (unsigned n = 0; n < topo.num_nodes(); ++n)
    for (unsigned b = 0; b < pool; ++b) {
      const Pfn head = buddy_->alloc_block(n, kHugeOrder);
      TINT_ASSERT(head != kNoPage);
      huge_pool_[n].push_back(head);
    }
  // Offload ring registry: built at boot iff enabled, so the disabled
  // fast paths pay exactly one predicted-false null check.
  if (cfg_.offload.enabled)
    offload_rings_ = std::make_unique<OffloadRings>(cfg_.offload.ring_depth);
  buddy_->warm_up(rng_, cfg_.warmup_episodes, cfg_.warmup_frag_shift);
  // Fault injection arms only after boot: the reservation and warm-up
  // above are part of the machine model, not of any scenario under test.
  buddy_->set_failpoints(&fail_);
  for (const auto& [point, spec] : cfg_.failpoints) fail_.arm(point, spec);
}

void Kernel::set_node_online(unsigned node, bool online) {
  TINT_ASSERT(node < topo_.num_nodes());
  node_online_[node].store(online ? 1 : 0, std::memory_order_release);
  if (online) return;
  // Shared, like a fault: the two drains below hold frames in local
  // vectors between pools, and a concurrent stop-the-world walk
  // (exclusive mm) must wait for those windows to close.
  std::shared_lock mm(mm_lock_);
  // Going offline: nothing may stay parked behind a dead controller.
  // Return the node's colored free pages to its buddy zones in one
  // drain, so re-onlining starts from coalesced blocks and the zone
  // counters keep reflecting the node's real free capacity. Allocations
  // racing with the drain either grabbed their page first (they already
  // skipped the online check) or find the lists empty.
  const unsigned bpn = mapping_.banks_per_node();
  const std::vector<Pfn> drained =
      colors_->drain_bank_range(node * bpn, (node + 1) * bpn);
  for (const Pfn pfn : drained) buddy_->free_block(pfn, 0);
  stats_.offline_drained_pages.fetch_add(drained.size(),
                                         std::memory_order_relaxed);
  // Task magazines may cache frames of the dead controller too; nothing
  // may stay parked there either (a magazine hit would hand out memory
  // behind an offline node). Magazine frames still carry an owner, so
  // clear it before returning them to the buddy.
  uint64_t mag_drained = 0;
  const size_t ntasks = tasks_.size();
  for (size_t i = 0; i < ntasks; ++i) {
    const std::vector<Pfn> frames =
        tasks_.at(static_cast<TaskId>(i))
            .magazine()
            .drain_bank_range(node * bpn, (node + 1) * bpn);
    for (const Pfn pfn : frames) {
      pages_[pfn].owner = kNoTask;
      buddy_->free_block(pfn, 0);
    }
    mag_drained += frames.size();
  }
  if (mag_drained > 0) {
    stats_.offline_drained_pages.fetch_add(mag_drained,
                                           std::memory_order_relaxed);
    stats_.magazine_drains.fetch_add(mag_drained, std::memory_order_relaxed);
  }
  // Offload rings may stock frames of the dead controller too. Rings
  // hold a mix of nodes, so drain them whole (the drain routes each
  // frame by its own node) -- simple, and offlining is rare.
  if (offload_rings_) {
    std::vector<TaskId> ids;
    {
      offload_rings_->lock();
      ids = offload_rings_->attached_unsafe();
      offload_rings_->unlock();
    }
    for (const TaskId id : ids) offload_drain_task_locked(id);
  }
}

TaskId Kernel::create_task(unsigned pinned_core) {
  TINT_ASSERT(pinned_core < topo_.num_cores());
  return tasks_.create(pinned_core, topo_.node_of_core(pinned_core),
                       mapping_.num_bank_colors(), mapping_.num_llc_colors(),
                       cfg_.magazine_capacity);
}

uint64_t Kernel::drain_magazine_to_colors(Task& t) {
  const std::vector<Pfn> frames = t.magazine().drain_all();
  for (const Pfn pfn : frames) colors_->push(pfn, pages_);
  if (!frames.empty())
    stats_.magazine_drains.fetch_add(frames.size(),
                                     std::memory_order_relaxed);
  return frames.size();
}

uint64_t Kernel::drain_all_magazines_to_colors() {
  uint64_t drained = 0;
  const size_t ntasks = tasks_.size();
  for (size_t i = 0; i < ntasks; ++i)
    drained += drain_magazine_to_colors(tasks_.at(static_cast<TaskId>(i)));
  return drained;
}

void Kernel::exit_task(TaskId id) {
  // Shared, like a fault: frames travel magazine -> colors/buddy through
  // a local vector here, and the stop-the-world walk (exclusive mm) must
  // never observe that window as loose frames.
  std::shared_lock mm(mm_lock_);
  Task& t = tasks_.at(id);
  // Dead first: control-plane observers (ColorGuard, admission) that
  // probe task_alive() stop acting on the id from this point on.
  t.set_alive(false);
  const std::vector<Pfn> frames = t.magazine().drain_all();
  uint64_t to_buddy = 0;
  for (const Pfn pfn : frames) {
    // Frames behind a controller that went offline while cached cannot
    // be re-parked on its color lists; coalesce them in the buddy like
    // the offline drain does.
    if (node_online(pages_[pfn].node)) {
      colors_->push(pfn, pages_);
    } else {
      pages_[pfn].owner = kNoTask;
      buddy_->free_block(pfn, 0);
      ++to_buddy;
    }
  }
  if (!frames.empty())
    stats_.magazine_drains.fetch_add(frames.size(),
                                     std::memory_order_relaxed);
  if (to_buddy > 0)
    stats_.offline_drained_pages.fetch_add(to_buddy,
                                           std::memory_order_relaxed);
  // The offload rings are a frame pool of this task too; nothing may
  // stay parked in them once the task is gone. (A free that lands in
  // the request ring *after* this drain is absorbed by the engine's
  // dead-task service rounds.)
  offload_drain_task_locked(id);
}

Kernel::ReapReport Kernel::reap_task(TaskId id) {
  ReapReport rep;
  Task& t = tasks_.at(id);
  rep.was_alive = t.alive();
  // 1. Mark dead before touching any resource: a ColorGuard epoch that
  //    sampled this id before we got here skips it instead of healing a
  //    corpse, and the admission layer stops counting its colors as
  //    claimed.
  t.set_alive(false);

  // 2. Release every VMA the task created. The bases are collected under
  //    a shared hold and unmapped one by one through the public munmap
  //    path (exclusive per call), which drains the tenant's in-flight
  //    faults -- a tenant that "died" mid-fault cannot leak the frame the
  //    fault was installing, because the fault either completed before
  //    munmap took the lock (frame freed here) or lost the VMA lookup.
  //    New VMAs cannot appear in between: the task is dead and mmap is
  //    only called by the tenant's own (stopped) driver.
  std::vector<std::pair<VirtAddr, uint64_t>> doomed;
  {
    std::shared_lock mm(mm_lock_);
    for (const auto& [base, vma] : vmas_)
      if (vma.creator == id) doomed.emplace_back(base, vma.length);
  }
  for (const auto& [base, len] : doomed)
    if (munmap(id, base, len)) ++rep.vmas_unmapped;

  // 3. Drain the magazine (idempotent; also re-marks dead, harmless).
  const uint64_t drains_before =
      stats_.magazine_drains.load(std::memory_order_relaxed);
  exit_task(id);
  rep.magazine_drained =
      stats_.magazine_drains.load(std::memory_order_relaxed) - drains_before;

  // 4. Clear the TCB colors so any scan over task color sets observes
  //    them released. Shared mm hold like the color-control mmap path:
  //    the clear itself publishes atomically, but a magazine refill
  //    racing between drain and clear must stay excluded from the
  //    stop-the-world walk's window.
  {
    std::shared_lock mm(mm_lock_);
    const Task::ColorSet& cs = t.colors();
    rep.colors_cleared =
        static_cast<unsigned>(cs.mem_list.size() + cs.llc_list.size());
    if (rep.colors_cleared > 0) t.clear_all_colors();
    drain_magazine_to_colors(t);
    offload_drain_task_locked(id);
  }
  return rep;
}

VirtAddr Kernel::mmap(TaskId task_id, uint64_t addr_or_color, uint64_t length,
                      uint32_t prot, uint32_t flags) {
  (void)flags;

  // Zero-length + PROT_COLOR_ALLOC: color-control call (Fig. 6). Color
  // sets are immutable snapshots behind an atomic pointer (see
  // os/task.h), so this is safe even concurrently with the task's own
  // faults and with live re-colorings (Kernel::recolor_task).
  if (length == 0 && (prot & PROT_COLOR_ALLOC)) {
    // Held shared end-to-end like a fault: the drain below moves frames
    // magazine -> shards through a local vector, and the stop-the-world
    // walk must not observe that in-between window (it acquires mm
    // exclusively, which waits us out).
    std::shared_lock mm(mm_lock_);
    Task& t = tasks_.at(task_id);
    ++stats_.color_control_calls;
    const uint64_t op = addr_or_color & ~kColorMask;
    const unsigned color = static_cast<unsigned>(addr_or_color & kColorMask);
    switch (op) {
      case SET_MEM_COLOR:
        if (color >= mapping_.num_bank_colors())
          return fail_mmap(AllocError::kInvalidArgument);
        t.set_mem_color(color);
        break;
      case CLEAR_MEM_COLOR:
        if (color >= mapping_.num_bank_colors())
          return fail_mmap(AllocError::kInvalidArgument);
        t.clear_mem_color(color);
        break;
      case SET_LLC_COLOR:
        if (color >= mapping_.num_llc_colors())
          return fail_mmap(AllocError::kInvalidArgument);
        t.set_llc_color(color);
        break;
      case CLEAR_LLC_COLOR:
        if (color >= mapping_.num_llc_colors())
          return fail_mmap(AllocError::kInvalidArgument);
        t.clear_llc_color(color);
        break;
      default:
        return fail_mmap(AllocError::kInvalidArgument);
    }
    // A color-set change invalidates the magazine's contents: its cached
    // frames were chosen under the old constraints, and a later hit
    // would hand out a frame the task no longer wants. Drain them back
    // to the shards (they stay colorized and reachable for everyone).
    // Same for the offload rings: stocked frames were chosen under the
    // old constraints.
    drain_magazine_to_colors(t);
    offload_drain_task_locked(task_id);
    set_last_error(AllocError::kOk);
    return 0;
  }

  if (length == 0) return fail_mmap(AllocError::kInvalidArgument);
  // Fixed mappings are not supported; reject instead of aborting.
  if (addr_or_color != 0) return fail_mmap(AllocError::kInvalidArgument);

  // Reserve a fresh VMA; frames arrive lazily at first touch.
  ++stats_.mmap_calls;
  set_last_error(AllocError::kOk);
  const bool huge = (flags & MAP_HUGE_2MB) != 0;
  const uint64_t gran = huge ? kHugeBytes : topo_.page_bytes();
  const uint64_t len = (length + gran - 1) & ~(gran - 1);
  std::unique_lock mm(mm_lock_);
  va_cursor_ = (va_cursor_ + gran - 1) & ~(gran - 1);
  const VirtAddr base = va_cursor_;
  va_cursor_ += len + gran;  // one guard gap
  vmas_.emplace(base, Vma{len, task_id, huge});
  return base;
}

bool Kernel::munmap(TaskId task_id, VirtAddr base, uint64_t length) {
  (void)task_id;  // any task of the process may unmap
  ++stats_.munmap_calls;
  // Exclusive mm hold for the whole teardown: in-flight faults hold the
  // mm lock shared end-to-end, so by the time we own it exclusively no
  // fault can still be installing frames into this VMA.
  std::unique_lock mm(mm_lock_);
  const auto it = vmas_.find(base);
  if (it == vmas_.end()) {
    // Unknown base: reject like EINVAL instead of aborting.
    set_last_error(AllocError::kInvalidArgument);
    ++stats_.failed_munmaps;
    return false;
  }
  const uint64_t gran = it->second.huge ? kHugeBytes : topo_.page_bytes();
  const uint64_t len = (length + gran - 1) & ~(gran - 1);
  if (len != it->second.length) {
    // Partial unmaps are not supported; reject instead of aborting.
    set_last_error(AllocError::kInvalidArgument);
    ++stats_.failed_munmaps;
    return false;
  }
  if (it->second.huge) {
    // Free whole 2 MB blocks (all-or-nothing mappings).
    const uint64_t pages_per_huge = kHugeBytes / topo_.page_bytes();
    std::vector<Pfn> heads;
    {
      std::unique_lock pt(pt_lock_);
      for (VirtAddr va = base; va < base + len; va += kHugeBytes) {
        const auto head = page_table_.unmap(page_table_.vpn_of(va));
        if (!head) continue;
        for (uint64_t i = 1; i < pages_per_huge; ++i)
          page_table_.unmap(page_table_.vpn_of(va + i * topo_.page_bytes()));
        heads.push_back(*head);
      }
    }
    const uint64_t pph = kHugeBytes / topo_.page_bytes();
    for (const Pfn head : heads) {
      for (uint64_t i = 0; i < pph; ++i) {
        pages_[head + i].owner = kNoTask;
        pages_[head + i].state = PageState::kBuddyFree;
        pages_[head + i].huge = false;
      }
      // Huge frames return to the reserved pool, not the 4 KB buddy.
      std::lock_guard<HugeLock> hl(huge_lock_);
      huge_pool_[head / topo_.pages_per_node()].push_back(head);
    }
  } else {
    std::vector<Pfn> freed;
    {
      std::unique_lock pt(pt_lock_);
      for (VirtAddr va = base; va < base + len; va += gran)
        if (const auto pfn = page_table_.unmap(page_table_.vpn_of(va)))
          freed.push_back(*pfn);
    }
    for (const Pfn pfn : freed) free_pages(pfn, 0);
  }
  // Drop the cached default-path node decisions for the unmapped region
  // range so the cache stays bounded by the live VMA footprint (and a
  // future VMA at a reused region index draws afresh).
  if (cfg_.reuse_region_pages > 0) {
    const uint64_t first = page_table_.vpn_of(base) / cfg_.reuse_region_pages;
    const uint64_t last =
        page_table_.vpn_of(base + len - 1) / cfg_.reuse_region_pages;
    std::lock_guard<DefaultLock> dl(default_lock_);
    for (uint64_t r = first; r <= last; ++r) region_node_.erase(r);
  }
  vmas_.erase(it);
  invalidate_tlb();
  set_last_error(AllocError::kOk);
  return true;
}

std::optional<uint64_t> Kernel::tlb_lookup(uint64_t vpn) const {
  const TlbSlot& s = tlb_[vpn & (kTlbSize - 1)];
  const uint32_t seq = s.seq.load(std::memory_order_acquire);
  if (seq & 1) return std::nullopt;  // fill in progress
  const uint64_t e = s.epoch.load(std::memory_order_relaxed);
  const uint64_t v = s.vpn.load(std::memory_order_relaxed);
  const uint64_t p = s.pfn.load(std::memory_order_relaxed);
  // Validate the sequence to reject a torn read across a concurrent
  // fill; the epoch check then rejects entries from before the last
  // invalidation.
  if (s.seq.load(std::memory_order_acquire) != seq) return std::nullopt;
  if (v != vpn || e != tlb_epoch_.load(std::memory_order_acquire))
    return std::nullopt;
  return p;
}

void Kernel::tlb_fill(uint64_t vpn, Pfn pfn, uint64_t epoch) {
  TlbSlot& s = tlb_[vpn & (kTlbSize - 1)];
  uint32_t seq = s.seq.load(std::memory_order_relaxed);
  if (seq & 1) return;  // another thread is filling this slot: skip
  // Claim the slot by moving the sequence to odd; fills are best-effort,
  // so losing the CAS just skips the cache update.
  if (!s.seq.compare_exchange_strong(seq, seq + 1,
                                     std::memory_order_acquire,
                                     std::memory_order_relaxed))
    return;
  s.vpn.store(vpn, std::memory_order_relaxed);
  s.pfn.store(pfn, std::memory_order_relaxed);
  s.epoch.store(epoch, std::memory_order_relaxed);
  s.seq.store(seq + 2, std::memory_order_release);
}

std::optional<uint64_t> Kernel::translate(VirtAddr va) const {
  std::shared_lock pt(pt_lock_);
  return page_table_.translate(va);
}

Kernel::TouchResult Kernel::touch(TaskId task_id, VirtAddr va, bool write) {
  (void)write;
  TouchResult res;
  const uint64_t want_vpn = page_table_.vpn_of(va);
  const uint64_t page_off = va & (topo_.page_bytes() - 1);
  if (const auto pfn = tlb_lookup(want_vpn)) {
    res.pa = (*pfn << topo_.page_bits) | page_off;
    return res;
  }
  // Epoch for any TLB fill below: loaded before the translation it
  // caches is read (see tlb_fill).
  const uint64_t epoch = tlb_epoch_.load(std::memory_order_acquire);
  std::optional<uint64_t> translated;
  {
    std::shared_lock pt(pt_lock_);
    translated = page_table_.translate(va);
  }
  if (translated) {
    const Pfn pfn = static_cast<Pfn>(*translated >> topo_.page_bits);
    // RAS detection point: does this mapped frame report a DRAM error?
    // Failpoints give deterministic injection; the fault model ties
    // errors to real (node, channel, rank, bank, row) coordinates. Huge
    // frames are exempt (a 2 MB frame cannot be re-colored page-wise).
    // The TLB-hit path above is deliberately unchecked -- like real ECC,
    // errors surface on the slower path, and offlining invalidates the
    // TLB so the very next touch of the page comes back through here.
    if (cfg_.ras.enabled && !pages_[pfn].huge) {
      sim::FrameHealth health = sim::FrameHealth::kHealthy;
      if (fail_.should_fail(FailPoint::kEccUncorrected)) {
        health = sim::FrameHealth::kDead;
      } else if (fail_.should_fail(FailPoint::kEccCorrected)) {
        health = sim::FrameHealth::kFlaky;
      } else if (const auto* model =
                     fault_model_.load(std::memory_order_acquire);
                 model && !model->empty()) {
        health = model->frame_health(frame_base(pfn));
      }
      if (health == sim::FrameHealth::kDead) {
        // Uncorrectable: the data is gone. Hard-offline and report; the
        // next touch faults in a fresh zeroed frame.
        ++stats_.ecc_uncorrected;
        std::shared_lock mm(mm_lock_);
        hard_offline_locked(want_vpn, pfn);
        res.error = AllocError::kEccUncorrected;
        return res;
      }
      if (health == sim::FrameHealth::kFlaky) {
        // Corrected error: the data is still readable, so move it off
        // the weak frame before it degrades further (soft offline).
        ++stats_.ecc_corrected;
        std::shared_lock mm(mm_lock_);
        const MigrateResult mig = migrate_locked(va, /*poison_old=*/true);
        if (mig.ok) {
          res.faulted = false;
          res.fault_cycles = mig.cycles;
          res.pa = (static_cast<uint64_t>(mig.new_pfn) << topo_.page_bits) |
                   page_off;
          return res;
        }
        // Migration unavailable (ladder dry or raced): the frame is
        // flaky, not dead -- keep serving it rather than killing the
        // task. migration_failures/migration_races carry the evidence.
      }
    }
    res.pa = *translated;
    tlb_fill(want_vpn, pfn, epoch);
    return res;
  }

  // Page fault. Held shared across the whole fault, like Linux's
  // mmap_lock: keeps the VMA alive and lets munmap / the stop-the-world
  // invariant walk drain in-flight faults by acquiring it exclusively.
  std::shared_lock mm(mm_lock_);
  // The faulting VA must belong to a VMA; touching unmapped address
  // space is a genuine segfault (programming error), not a recoverable
  // condition, so it still aborts.
  auto it = vmas_.upper_bound(va);
  TINT_ASSERT_MSG(it != vmas_.begin(), "fault outside any VMA (segfault)");
  --it;
  TINT_ASSERT_MSG(va < it->first + it->second.length,
                  "fault outside any VMA (segfault)");

  Task& t = tasks_.at(task_id);
  if (it->second.huge) return fault_huge(t, va, it->first);
  const AllocOutcome out = alloc_screened(task_id, want_vpn);
  if (out.pfn == kNoPage) {
    // Ladder exhausted: report instead of aborting (simulated SIGBUS /
    // mmap error, Section III.B "returns an error").
    ++t.alloc_stats().failed_allocs;
    res.error = out.error;
    return res;
  }
  // Frame metadata is written *before* the mapping is published: any
  // thread that can observe the translation (under the page-table lock)
  // then also observes an initialized PageInfo.
  PageInfo& pi = pages_[out.pfn];
  pi.state = PageState::kAllocated;
  pi.owner = task_id;
  pi.colored_alloc = out.colored;
  Pfn winner;
  {
    std::unique_lock pt(pt_lock_);
    winner = page_table_.map_or_get(want_vpn, out.pfn);
  }
  if (winner != out.pfn) {
    // Another thread faulted the same page first: undo our allocation
    // and adopt the winner's translation. Never taken serially.
    free_pages(out.pfn, 0);
    ++stats_.fault_races_lost;
    res.pa = (static_cast<uint64_t>(winner) << topo_.page_bits) | page_off;
    return res;
  }

  ++stats_.page_faults;
  TaskAllocStats& as = t.alloc_stats();
  ++as.page_faults;
  // Ladder accounting. Widened/scavenged pages also count as default
  // pages, preserving page_faults == colored_pages + default_pages.
  switch (out.stage) {
    case AllocStage::kColored:
      ++as.colored_pages;
      break;
    case AllocStage::kWidened:
      ++as.default_pages;
      ++as.widened_pages;
      break;
    case AllocStage::kScavenged:
      ++as.default_pages;
      ++as.scavenged_pages;
      break;
    default:
      ++as.default_pages;
      break;
  }
  if (out.fell_back) ++as.fallback_pages;
  as.refill_blocks += out.refill_blocks;
  as.refill_pages += out.refill_pages;
  if (pi.node != t.local_node()) ++as.remote_pages;

  res.faulted = true;
  res.fault_cycles = cfg_.fault_base_cycles +
                     cfg_.refill_block_cycles * out.refill_blocks +
                     cfg_.refill_page_cycles * out.refill_pages;
  res.pa = (static_cast<uint64_t>(out.pfn) << topo_.page_bits) | page_off;
  return res;
}

Kernel::TouchResult Kernel::fault_huge(Task& t, VirtAddr va,
                                       VirtAddr vma_base) {
  // Map the whole aligned 2 MB block containing `va` with one fault.
  const uint64_t pages_per_huge = kHugeBytes / topo_.page_bytes();
  const VirtAddr huge_base = vma_base + ((va - vma_base) & ~(kHugeBytes - 1));

  // Transient controller loss injected for just this allocation; a local
  // so concurrent faults cannot observe each other's injected outages.
  const int64_t transient_offline =
      fail_.should_fail(FailPoint::kNodeOffline)
          ? static_cast<int64_t>(t.local_node())
          : -1;

  // Controller-aware placement: the node of the task's bank colors if it
  // has any, else the default policy's choice. One snapshot load -- a
  // concurrent re-coloring must not tear the flag/list pair.
  const Task::ColorSet& cs = t.colors();
  unsigned preferred;
  if (cs.using_bank) {
    preferred = mapping_.node_of_bank_color(cs.mem_list.front());
  } else {
    preferred = pick_default_node(t, page_table_.vpn_of(huge_base));
  }
  Pfn head = kNoPage;
  bool from_pool = false;
  const unsigned nn = mapping_.num_nodes();
  // An armed kHugePool failpoint makes the boot reservation look empty,
  // forcing the (usually fruitless) buddy attempt below.
  if (!fail_.should_fail(FailPoint::kHugePool)) {
    std::lock_guard<HugeLock> hl(huge_lock_);
    for (unsigned k = 0; k < nn && head == kNoPage; ++k) {
      const unsigned node = (preferred + k) % nn;
      if (!node_usable(node, transient_offline)) {
        ++stats_.offline_node_skips;
        continue;
      }
      auto& pool = huge_pool_[node];
      if (!pool.empty()) {
        head = pool.back();
        pool.pop_back();
        from_pool = true;
      }
    }
  }
  // Pool dry: try the buddy directly (succeeds only on unfragmented
  // zones -- real kernels would have to compact here).
  for (unsigned k = 0; k < nn && head == kNoPage; ++k) {
    const unsigned node = (preferred + k) % nn;
    if (!node_usable(node, transient_offline)) {
      ++stats_.offline_node_skips;
      continue;
    }
    head = buddy_->alloc_block(node, kHugeOrder);
  }
  if (head == kNoPage) {
    // Pool dry and zones fragmented: report the simulated SIGBUS that a
    // hugetlbfs mapping takes when its reservation is gone.
    ++stats_.alloc_failures;
    ++t.alloc_stats().failed_allocs;
    set_last_error(AllocError::kHugeExhausted);
    TouchResult res;
    res.error = AllocError::kHugeExhausted;
    return res;
  }

  // Frame metadata before the mapping is published (as in touch()).
  for (uint64_t i = 0; i < pages_per_huge; ++i) {
    pages_[head + i].state = PageState::kAllocated;
    pages_[head + i].owner = t.id();
    pages_[head + i].colored_alloc = false;
    pages_[head + i].huge = true;  // exempts the frame from RAS handling
  }
  const uint64_t head_vpn = page_table_.vpn_of(huge_base);
  Pfn winner;
  {
    std::unique_lock pt(pt_lock_);
    winner = page_table_.map_or_get(head_vpn, head);
    if (winner == head)
      for (uint64_t i = 1; i < pages_per_huge; ++i)
        page_table_.map(head_vpn + i, head + static_cast<Pfn>(i));
  }
  if (winner != head) {
    // Another thread faulted this 2 MB block first: return our block
    // whence it came and adopt the winner's frames. Never taken serially.
    for (uint64_t i = 0; i < pages_per_huge; ++i) {
      pages_[head + i].owner = kNoTask;
      pages_[head + i].state = PageState::kBuddyFree;
      pages_[head + i].huge = false;
    }
    if (from_pool) {
      std::lock_guard<HugeLock> hl(huge_lock_);
      huge_pool_[head / topo_.pages_per_node()].push_back(head);
    } else {
      buddy_->free_block(head, kHugeOrder);
    }
    ++stats_.fault_races_lost;
    TouchResult res;
    res.pa = (static_cast<uint64_t>(winner) << topo_.page_bits) +
             (va - huge_base);
    return res;
  }
  ++stats_.page_faults;
  ++stats_.huge_faults;
  TaskAllocStats& as = t.alloc_stats();
  ++as.page_faults;
  ++as.default_pages;
  if (pages_[head].node != t.local_node()) ++as.remote_pages;

  TouchResult res;
  res.faulted = true;
  res.fault_cycles = cfg_.fault_base_cycles;  // one fault for 2 MB
  res.pa = (static_cast<uint64_t>(head) << topo_.page_bits) +
           (va - huge_base);
  return res;
}

Kernel::AllocOutcome Kernel::alloc_pages(TaskId task_id, unsigned order,
                                         uint64_t vpn_hint) {
  Task& t = tasks_.at(task_id);
  AllocOutcome out;

  // Transient controller loss injected for just this allocation: the
  // ladder below must route around the task's own node and still serve
  // (or fail with kNodeOffline when nothing is left). Threaded through
  // by value -- concurrent allocations never see each other's outage.
  const int64_t transient_offline =
      fail_.should_fail(FailPoint::kNodeOffline)
          ? static_cast<int64_t>(t.local_node())
          : -1;

  // One color snapshot for the whole allocation: a live re-coloring
  // (Kernel::recolor_task) may publish a new set mid-fault, and every
  // stage below must work from the same consistent view.
  const Task::ColorSet& cs = t.colors();

  // Stage 1 -- colored pool (Algorithm 1, line 3: only order-0 requests
  // of coloring tasks take the colored path).
  if (order == 0 && (cs.using_bank || cs.using_llc)) {
    // Stage -1 -- the offload completion ring: when the engine keeps it
    // stocked, the whole allocation is one try-CAS guard plus one SPSC
    // pop -- no mutex, no shard, no bin scan. Misses (guard busy, ring
    // empty, offload off) fall through to the magazine.
    if (offload_rings_) {
      const Pfn pfn = try_ring_pop(t, cs, transient_offline);
      if (pfn != kNoPage) {
        ++stats_.ladder_colored;
        out.pfn = pfn;
        out.colored = true;
        out.stage = AllocStage::kColored;
        return out;
      }
    }
    // Stage 0 -- the task's own page magazine: a hit touches only this
    // task's lock, no shard. Bypassed under an injected transient outage
    // (the cached frame might be behind the failed controller), and
    // frames whose bank went away while cached are re-homed to the
    // shards instead of handed out. A re-coloring drains the magazine,
    // but a frame freed back under the *old* colors after the swap could
    // still be cached here -- the membership check below refuses it.
    if (cfg_.magazine_capacity > 0) {
      PageMagazine& mag = t.magazine();
      if (transient_offline < 0) {
        while (mag.cached() > 0) {
          const Pfn pfn = mag.pop(t.next_combo_cursor());
          if (pfn == kNoPage) break;
          PageInfo& pi = pages_[pfn];
          if (!cached_frame_valid(pi, cs)) {
            colors_->push(pfn, pages_);
            stats_.magazine_drains.fetch_add(1, std::memory_order_relaxed);
            continue;
          }
          pi.state = PageState::kAllocated;
          ++stats_.ladder_colored;
          ++stats_.magazine_hits;
          ++t.alloc_stats().magazine_hits;
          out.pfn = pfn;
          out.colored = true;
          out.stage = AllocStage::kColored;
          return out;
        }
      }
      ++stats_.magazine_misses;
      ++t.alloc_stats().magazine_misses;
    }
    out = alloc_colored(t, cs, vpn_hint, transient_offline);
    if (out.pfn != kNoPage) {
      out.stage = AllocStage::kColored;
      ++stats_.ladder_colored;
      return out;
    }
    if (!cfg_.colored_fallback_to_default) {
      // The paper's strict mode: "no more page of this color" is an
      // error, not a fallback.
      out.stage = AllocStage::kFailed;
      out.error = AllocError::kPoolExhausted;
      ++stats_.alloc_failures;
      set_last_error(out.error);
      return out;
    }
    const AllocOutcome colored_attempt = out;
    out = AllocOutcome{};
    out.fell_back = true;
    out.refill_blocks = colored_attempt.refill_blocks;
    out.refill_pages = colored_attempt.refill_pages;

    // Stage 2 -- widen: relax the color constraint but keep the node
    // placement, reclaiming pages parked under other colors on the
    // task's own nodes.
    const Pfn widened = widen_from_node_lists(t, cs, transient_offline);
    if (widened != kNoPage) {
      out.pfn = widened;
      out.stage = AllocStage::kWidened;
      ++stats_.ladder_widened;
      return out;
    }
  }

  // Stage 3 -- stock buddy path ("normal_buddy_alloc").
  const unsigned preferred = pick_default_node(t, vpn_hint);
  const unsigned nn = mapping_.num_nodes();
  unsigned usable_nodes = 0;
  for (unsigned k = 0; k < nn; ++k) {
    const unsigned node = (preferred + k) % nn;
    if (!node_usable(node, transient_offline)) {
      ++stats_.offline_node_skips;
      continue;
    }
    ++usable_nodes;
    const Pfn pfn = buddy_->alloc_block(node, order);
    if (pfn != kNoPage) {
      out.pfn = pfn;
      out.stage = AllocStage::kDefault;
      ++stats_.ladder_default;
      return out;
    }
  }

  // Stage 4 -- scavenge. Buddy zones are empty, but colorized-but-
  // unclaimed pages may be stranded in the color lists (Algorithm 2
  // never returns pages to the buddy): reclaim them for order-0
  // requests, like the memory-pressure reclaim a real kernel performs.
  if (order == 0) {
    const unsigned bpn = mapping_.banks_per_node();
    const auto scavenge = [&]() -> Pfn {
      for (unsigned k = 0; k < nn; ++k) {
        const unsigned node = (preferred + k) % nn;
        if (!node_usable(node, transient_offline)) continue;
        const Pfn pfn =
            colors_->pop_any_in_bank_range(node * bpn, (node + 1) * bpn, pages_);
        if (pfn != kNoPage) return pfn;
      }
      return kNoPage;
    };
    Pfn pfn = scavenge();
    // Memory pressure: frames idling in task magazines and offload
    // rings are free memory too. Flush them back to the shards and
    // scavenge once more before declaring the system out of memory.
    if (pfn == kNoPage && offload_rings_) {
      uint64_t ring_drained = 0;
      std::vector<TaskId> ids;
      {
        offload_rings_->lock();
        ids = offload_rings_->attached_unsafe();
        offload_rings_->unlock();
      }
      for (const TaskId id : ids) ring_drained += offload_drain_task_locked(id);
      if (ring_drained > 0) pfn = scavenge();
    }
    if (pfn == kNoPage && cfg_.magazine_capacity > 0 &&
        drain_all_magazines_to_colors() > 0)
      pfn = scavenge();
    if (pfn != kNoPage) {
      ++stats_.scavenged_pages;
      out.pfn = pfn;
      out.stage = AllocStage::kScavenged;
      return out;
    }
  }

  // Stage 5 -- fail, with the reason the caller can act on.
  out.stage = AllocStage::kFailed;
  out.error = usable_nodes == 0 ? AllocError::kNodeOffline
                                : AllocError::kOutOfMemory;
  ++stats_.alloc_failures;
  set_last_error(out.error);
  return out;
}

Pfn Kernel::widen_from_node_lists(const Task& t, const Task::ColorSet& cs,
                                  int64_t transient_offline) {
  const unsigned bpn = mapping_.banks_per_node();
  if (cs.using_bank) {
    // Any parked page on a node the task's bank colors live on.
    for (const uint16_t m : cs.mem_list) {
      const unsigned node = mapping_.node_of_bank_color(m);
      if (!node_usable(node, transient_offline)) continue;
      const Pfn pfn =
          colors_->pop_any_in_bank_range(node * bpn, (node + 1) * bpn, pages_);
      if (pfn != kNoPage) return pfn;
    }
    return kNoPage;
  }
  // LLC-only task: widen on the local node only -- alloc_colored already
  // visited every node for the task's LLC colors, so all that is left to
  // relax is the LLC constraint itself.
  const unsigned node = t.local_node();
  if (!node_usable(node, transient_offline)) return kNoPage;
  return colors_->pop_any_in_bank_range(node * bpn, (node + 1) * bpn, pages_);
}

Kernel::AllocOutcome Kernel::alloc_colored(Task& t, const Task::ColorSet& cs,
                                           uint64_t vpn_hint,
                                           int64_t transient_offline) {
  AllocOutcome out;
  // Candidate (MEM_ID, LLC_ID) combinations per the TCB flags
  // (Algorithm 1 lines 5-13).
  //   using_bank & using_llc : the cross product of both color sets.
  //   using_bank only        : any LLC_ID behind the task's bank colors.
  //   using_llc only         : any bank; banks are visited node by node
  //                            starting at a default-policy node, so node
  //                            placement matches the uncolored-memory
  //                            behaviour the paper describes for LLC-only
  //                            coloring.
  const unsigned nl = mapping_.num_llc_colors();
  const unsigned bpn = mapping_.banks_per_node();

  std::vector<uint8_t> llcs;
  if (cs.using_llc) {
    llcs = cs.llc_list;
  } else {
    llcs.reserve(nl);
    for (unsigned c = 0; c < nl; ++c) llcs.push_back(static_cast<uint8_t>(c));
  }
  TINT_DASSERT(!llcs.empty());
  const size_t n_llc = llcs.size();
  const uint64_t cursor = t.next_combo_cursor();

  // Records a page handed out by the colored path.
  const auto found = [&](Pfn pfn) {
    out.pfn = pfn;
    out.colored = true;
  };
  // Algorithm 2 refill from one node; false when the zone is empty.
  // An armed kColorRefill failpoint makes every refill attempt see a dry
  // zone, exercising the pool-exhaustion ladder without actually
  // draining memory. (The zone lock and the shard locks are never held
  // together: the pop releases the zone before the pages are parked.)
  //
  // With refill_batch_blocks > 1, several blocks are colorized per round
  // through ColorLists::refill_batch -- one zone-lock hold for all the
  // blocks and one shard acquisition per combo *bucket* instead of per
  // page -- and `taken` diverts up to `take_max` pages of one target
  // combo straight to the caller (the magazine prefill) without ever
  // entering the shards. batch == 1 with no take keeps the legacy
  // single-block path bit-for-bit (same locking, same counter order),
  // which is what holds the serial determinism goldens at the default
  // config.
  const unsigned batch = std::max(1u, cfg_.refill_batch_blocks);
  const auto refill_from = [&](unsigned node, std::vector<Pfn>* taken,
                               unsigned take_mem, unsigned take_llc,
                               unsigned take_max) {
    if (fail_.should_fail(FailPoint::kColorRefill)) return false;
    if (batch == 1 && take_max == 0) {
      const auto blk = buddy_->pop_any_block(node, 0);
      if (!blk) return false;
      colors_->create_color_list(blk->first, blk->second, pages_);
      ++out.refill_blocks;
      out.refill_pages += 1u << blk->second;
      ++stats_.refill_blocks;
      stats_.refill_pages += 1u << blk->second;
      return true;
    }
    const auto blocks = buddy_->pop_blocks(node, 0, batch);
    if (blocks.empty()) return false;
    colors_->refill_batch(blocks, pages_, taken, take_mem, take_llc,
                          take_max);
    uint64_t refilled = 0;
    for (const auto& [head, o] : blocks) refilled += uint64_t{1} << o;
    out.refill_blocks += static_cast<unsigned>(blocks.size());
    out.refill_pages += static_cast<unsigned>(refilled);
    stats_.refill_blocks.fetch_add(blocks.size(), std::memory_order_relaxed);
    stats_.refill_pages.fetch_add(refilled, std::memory_order_relaxed);
    ++stats_.batch_refills;
    return true;
  };

  if (cs.using_bank) {
    // Combos are iterated bank-fastest with a rotating cursor so that
    // consecutive faults stripe across the task's banks (intra-task bank
    // parallelism, like the hardware's own interleaving would give an
    // uncolored stream). Banks behind an offline controller are skipped.
    std::vector<uint16_t> mems;
    mems.reserve(cs.mem_list.size());
    for (const uint16_t m : cs.mem_list) {
      if (color_retired(m)) continue;  // RAS pulled this bank from service
      if (node_usable(mapping_.node_of_bank_color(m), transient_offline))
        mems.push_back(m);
      else
        ++stats_.offline_node_skips;
    }
    if (mems.empty()) return out;  // every bank color is unreachable
    const size_t n_mem = mems.size();
    const size_t ncombo = n_mem * n_llc;
    const auto scan = [&]() -> Pfn {
      for (size_t k = 0; k < ncombo; ++k) {
        const size_t i = (cursor + k) % ncombo;
        const Pfn pfn = colors_->pop(mems[i % n_mem], llcs[i / n_mem], pages_);
        if (pfn != kNoPage) return pfn;
      }
      return kNoPage;
    };
    Pfn pfn = scan();
    if (pfn != kNoPage) {
      found(pfn);
      return out;
    }
    // Refill the task's nodes round-robin (even striping) until a
    // matching page appears or every zone is dry (Algorithm 1 line 26).
    std::vector<unsigned> nodes;
    for (const uint16_t m : mems) {
      const unsigned n = mapping_.node_of_bank_color(m);
      if (std::find(nodes.begin(), nodes.end(), n) == nodes.end())
        nodes.push_back(n);
    }
    // Magazine prefill target: the combo the rotating cursor tries
    // first. Disabled under a transient outage (nothing gets cached
    // from a round that is routing around a failed controller).
    const unsigned take_mem = mems[cursor % n_mem];
    const unsigned take_llc = llcs[(cursor % ncombo) / n_mem];
    // Uses the magazine's *live* capacity, which the adaptive tuner may
    // have grown past the configured baseline.
    const unsigned take_max =
        (cfg_.magazine_capacity > 0 && transient_offline < 0)
            ? t.magazine().capacity() + 1  // +1 serves the current fault
            : 0;
    std::vector<Pfn> taken;
    size_t node_cursor = 0;
    while (!nodes.empty()) {
      const size_t i = node_cursor % nodes.size();
      if (!refill_from(nodes[i], take_max > 0 ? &taken : nullptr, take_mem,
                       take_llc, take_max)) {
        nodes.erase(nodes.begin() + static_cast<long>(i));
        continue;
      }
      ++node_cursor;
      if (!taken.empty()) {
        // Direct handoff: the first taken frame serves this fault; the
        // rest prefill the task's magazine so the next faults of this
        // combo skip the shards entirely.
        for (size_t j = 1; j < taken.size(); ++j) {
          PageInfo& pi = pages_[taken[j]];
          pi.owner = t.id();
          pi.colored_alloc = true;
          if (!t.magazine().push(taken[j], pages_))
            colors_->push(taken[j], pages_);
        }
        found(taken[0]);
        return out;
      }
      pfn = scan();
      if (pfn != kNoPage) {
        found(pfn);
        return out;
      }
    }
    return out;  // kNoPage: "no more page of this color"
  }

  // No bank coloring: visit nodes in preference order. For each node,
  // alternate scanning its lists with refilling *from that node*, so a
  // nearer node's free memory is always preferred over remote pages that
  // happen to be parked in the color lists already.
  const unsigned start_node = pick_default_node(t, vpn_hint);
  const unsigned nn = mapping_.num_nodes();
  for (unsigned step = 0; step < nn; ++step) {
    const unsigned node = (start_node + step) % nn;
    if (!node_usable(node, transient_offline)) {
      ++stats_.offline_node_skips;
      continue;
    }
    for (;;) {
      for (size_t k = 0; k < bpn * n_llc; ++k) {
        const size_t i = (cursor + k) % (bpn * n_llc);
        const unsigned mem = mapping_.make_bank_color(
            node, static_cast<unsigned>(i % bpn));
        if (color_retired(mem)) continue;
        const Pfn pfn = colors_->pop(mem, llcs[i / bpn], pages_);
        if (pfn != kNoPage) {
          found(pfn);
          return out;
        }
      }
      if (!refill_from(node, nullptr, 0, 0, 0)) break;  // zone dry: next node
    }
  }
  return out;  // kNoPage: "no more page of this color"
}

uint64_t Kernel::huge_pool_blocks_free() const {
  std::lock_guard<HugeLock> hl(huge_lock_);
  uint64_t n = 0;
  for (const auto& pool : huge_pool_) n += pool.size();
  return n;
}

size_t Kernel::region_cache_entries() const {
  std::lock_guard<DefaultLock> dl(default_lock_);
  return region_node_.size();
}

unsigned Kernel::pick_default_node(const Task& t, uint64_t vpn_hint) {
  const unsigned nn = mapping_.num_nodes();
  if (nn == 1) return 0;

  // One lock guards the kernel rng and the region cache: default-path
  // node decisions are serialized, which also keeps the rng stream
  // well-defined (and, serially, identical to the unlocked original).
  std::lock_guard<DefaultLock> dl(default_lock_);

  // The recycle decision is cached per virtual region so that remote
  // memory arrives in arena-sized runs (see KernelConfig).
  const bool use_region = vpn_hint != ~0ULL && cfg_.reuse_region_pages > 0;
  const uint64_t region = use_region ? vpn_hint / cfg_.reuse_region_pages : 0;
  if (use_region) {
    const auto it = region_node_.find(region);
    if (it != region_node_.end()) return it->second;
  }

  unsigned chosen = t.local_node();
  if (rng_.next_bool(cfg_.reuse_probability)) {
    // Recycled region: weighted by zone free pages so drained zones fade.
    const uint64_t total = buddy_->total_free_pages();
    if (total > 0) {
      uint64_t pick = rng_.next_below(total);
      for (unsigned n = 0; n < nn; ++n) {
        const uint64_t f = buddy_->free_pages(n);
        if (pick < f) {
          chosen = n;
          break;
        }
        pick -= f;
      }
    }
  }
  if (use_region) region_node_.emplace(region, chosen);
  return chosen;
}

void Kernel::free_pages(Pfn pfn, unsigned order) {
  // The freed frame may sit in the software TLB under whatever virtual
  // page last mapped it; bump the generation so no stale translation can
  // resurface once the frame is handed to a new owner.
  invalidate_tlb();
  PageInfo& pi = pages_[pfn];
  if (order == 0 && pi.colored_alloc) {
    // Fastest path: recycle the frame straight into its owner's
    // completion ring, where the owner's next colored fault pops it --
    // one try-CAS guard plus one SPSC push, closing the alloc/free
    // round trip without any background actor on the critical path.
    // Reading pi.owner here is safe: the caller exclusively holds the
    // frame (it is coming out of a mapping or a raw allocation), so no
    // one else writes it.
    if (offload_rings_ && try_ring_recycle(pi, pfn))
      return;  // owner stays set; state is kRingOwned
    // Park the frame in its owner's magazine so the owner's next
    // colored fault takes no shard lock. Stale frames are refused up
    // front -- a retired color or an offline node must not hide in a
    // magazine.
    if (cfg_.magazine_capacity > 0 && pi.owner != kNoTask &&
        !color_retired(pi.bank_color) && node_online(pi.node) &&
        tasks_.at(pi.owner).magazine().push(pfn, pages_))
      return;  // owner stays set; state is kMagazine
    // Overflow path: completion ring and magazine are both full (or
    // off) -- instead of paying a shard push on the critical path, hand
    // the frame to the offload engine over the owner's request ring;
    // the engine absorbs it in the background. Full ring / busy guard /
    // offload off fall through to the shards.
    if (offload_rings_ && try_ring_push(pi, pfn))
      return;  // owner stays set; state is kRingOwned
    // Colored frames go back to their color list (Section III.C).
    pi.owner = kNoTask;
    colors_->push(pfn, pages_);
    return;
  }
  pi.owner = kNoTask;
  pi.state = PageState::kBuddyFree;
  buddy_->free_block(pfn, order);
}

// --- allocation offload: per-task SPSC rings + engine service rounds
// (DESIGN.md section 16) ---

Pfn Kernel::try_ring_pop(Task& t, const Task::ColorSet& cs,
                         int64_t transient_offline) {
  // Bypassed under an injected transient outage, exactly like the
  // magazine: a stocked frame might be behind the failed controller.
  if (transient_offline >= 0) return kNoPage;
  TaskRings* r = offload_rings_->rings_of(t.id());
  if (r == nullptr) return kNoPage;
  if (!r->alloc_guard.try_lock()) {
    stats_.ring_empty_stalls.fetch_add(1, std::memory_order_relaxed);
    r->empty_stalls.fetch_add(1, std::memory_order_relaxed);
    return kNoPage;
  }
  Pfn got = kNoPage;
  for (;;) {
    const uint64_t v = r->completion.pop();
    if (v == SpscRing::kEmpty) break;
    const Pfn pfn = static_cast<Pfn>(v);
    PageInfo& pi = pages_[pfn];
    // The acquire on the ring tail ordered the engine's kRingOwned
    // stamp before this read.
    TINT_DASSERT(pi.state == PageState::kRingOwned);
    if (!cached_frame_valid(pi, cs)) {
      // Stocked under constraints that no longer hold (node offlined,
      // color retired or swapped away): back to the shards, like a
      // stale magazine frame.
      colors_->push(pfn, pages_);
      stats_.ring_drained_frames.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    pi.state = PageState::kAllocated;
    got = pfn;
    break;
  }
  r->alloc_guard.unlock();
  if (got == kNoPage) {
    stats_.ring_empty_stalls.fetch_add(1, std::memory_order_relaxed);
    r->empty_stalls.fetch_add(1, std::memory_order_relaxed);
  } else {
    stats_.ring_alloc_hits.fetch_add(1, std::memory_order_relaxed);
  }
  return got;
}

bool Kernel::try_ring_push(PageInfo& pi, Pfn pfn) {
  // Stale frames are refused up front, like the magazine path: a
  // retired color or an offline node must not hide in a ring.
  if (pi.owner == kNoTask || color_retired(pi.bank_color) ||
      !node_online(pi.node))
    return false;
  TaskRings* r = offload_rings_->rings_of(pi.owner);
  if (r == nullptr) return false;
  if (!r->free_guard.try_lock()) return false;
  // State before push: the release store of the ring tail publishes
  // this write to the engine together with the slot.
  pi.state = PageState::kRingOwned;
  const bool ok = r->request.push(pfn);
  if (!ok) {
    pi.state = PageState::kAllocated;  // caller falls through, state restored
    stats_.ring_full_stalls.fetch_add(1, std::memory_order_relaxed);
    r->full_stalls.fetch_add(1, std::memory_order_relaxed);
  }
  r->free_guard.unlock();
  return ok;
}

bool Kernel::try_ring_recycle(PageInfo& pi, Pfn pfn) {
  // Same staleness screen as the other cached tiers; the pop side
  // additionally revalidates against the owner's *current* color set
  // (cached_frame_valid), so a basic screen suffices here.
  if (pi.owner == kNoTask || color_retired(pi.bank_color) ||
      !node_online(pi.node))
    return false;
  TaskRings* r = offload_rings_->rings_of(pi.owner);
  if (r == nullptr) return false;
  // The completion ring's producer side is shared with the engine
  // (restock + absorb-recycle); the guard keeps it single-producer.
  // Busy means the engine is mid-push -- fall through, never spin.
  if (!r->recycle_guard.try_lock()) return false;
  // State before push: the release store of the ring tail publishes
  // this write to the consumer together with the slot.
  pi.state = PageState::kRingOwned;
  const bool ok = r->completion.push(pfn);
  if (!ok) pi.state = PageState::kAllocated;  // full: caller falls through
  r->recycle_guard.unlock();
  if (ok) stats_.ring_fg_recycles.fetch_add(1, std::memory_order_relaxed);
  return ok;
}

bool Kernel::offload_attach(TaskId id) {
  if (!offload_rings_) return false;
  TINT_ASSERT(id < tasks_.size());
  return offload_rings_->attach(id) != nullptr;
}

uint64_t Kernel::offload_ring_pops(TaskId id) const {
  if (!offload_rings_) return 0;
  const TaskRings* r = offload_rings_->rings_of(id);
  return r ? r->completion.pops() : 0;
}

Kernel::RingStallSnapshot Kernel::offload_ring_stalls(TaskId id) const {
  RingStallSnapshot s;
  if (!offload_rings_) return s;
  const TaskRings* r = offload_rings_->rings_of(id);
  if (r == nullptr) return s;
  s.full = r->full_stalls.load(std::memory_order_relaxed);
  s.empty = r->empty_stalls.load(std::memory_order_relaxed);
  return s;
}

unsigned Kernel::offload_ring_capacity(TaskId id) const {
  if (!offload_rings_) return 0;
  const TaskRings* r = offload_rings_->rings_of(id);
  return r ? r->completion.capacity() : 0;
}

bool Kernel::offload_resize_task(TaskId id, unsigned new_depth) {
  if (!offload_rings_) return false;
  TaskRings* r = offload_rings_->rings_of(id);
  if (r == nullptr) return false;
  new_depth = std::max(4u, std::min(new_depth,
                                    std::max(4u, cfg_.offload.ring_depth_max)));
  // Shared like a fault: frames move between pools inside the freeze
  // hold below, and a stop-the-world walk (exclusive mm) must wait for
  // the window to close.
  std::shared_lock mm(mm_lock_);
  // Freeze-swap: this task's engine side plus both app sides. With all
  // three frozen the drains below see every parked frame and nothing
  // slips in mid-swap; the engine_guard also excludes a worker's
  // service round and a concurrent drain/resize of the same task.
  r->engine_guard.lock();
  r->freeze_app_sides();
  const unsigned old_cap = r->completion.capacity();
  // Keep the two rings' contents apart so stock returns to stock and
  // pending frees stay pending frees. snapshot(), not drain_all():
  // frozen-side reads that leave the consumer pop counters untouched
  // (the engine paces off pop deltas; a drain here would spike them).
  const std::vector<uint64_t> stock = r->completion.snapshot();
  const std::vector<uint64_t> freed = r->request.snapshot();
  r->completion.resize(new_depth);
  r->request.resize(new_depth);
  const unsigned new_cap = r->completion.capacity();
  // Re-push up to the new capacity; overflow (a shrink with a full
  // ring) re-homes to the color lists -- or the buddy behind an offline
  // node -- inside the freeze hold, so conservation never sees a frame
  // outside every pool.
  uint64_t rehomed = 0, to_buddy = 0;
  const auto repush = [&](SpscRing& ring, const std::vector<uint64_t>& frames) {
    for (const uint64_t v : frames) {
      const Pfn pfn = static_cast<Pfn>(v);
      PageInfo& pi = pages_[pfn];
      TINT_DASSERT(pi.state == PageState::kRingOwned);
      if (node_online(pi.node) && ring.push(v)) continue;  // stays kRingOwned
      if (node_online(pi.node)) {
        colors_->push(pfn, pages_);
        ++rehomed;
      } else {
        pi.owner = kNoTask;
        pi.state = PageState::kBuddyFree;
        buddy_->free_block(pfn, 0);
        ++rehomed;
        ++to_buddy;
      }
    }
  };
  repush(r->completion, stock);
  repush(r->request, freed);
  r->thaw_app_sides();
  r->engine_guard.unlock();

  if (new_cap > old_cap)
    stats_.ring_grows.fetch_add(1, std::memory_order_relaxed);
  else if (new_cap < old_cap)
    stats_.ring_shrinks.fetch_add(1, std::memory_order_relaxed);
  if (rehomed > 0)
    stats_.ring_resize_drained.fetch_add(rehomed, std::memory_order_relaxed);
  if (to_buddy > 0)
    stats_.offline_drained_pages.fetch_add(to_buddy,
                                           std::memory_order_relaxed);
  return true;
}

Kernel::OffloadServiceReport Kernel::offload_service(TaskId id,
                                                     unsigned target_stock) {
  OffloadServiceReport rep;
  if (!offload_rings_) return rep;
  TaskRings* r = offload_rings_->rings_of(id);
  if (r == nullptr) return rep;
  // Shared like a fault, for the whole round: frames travel between
  // pools through engine-local state here, and a stop-the-world freeze
  // (exclusive mm) drains the engine mid-batch exactly like an
  // in-flight fault before it walks the pools.
  std::shared_lock mm(mm_lock_);
  // This task's engine side only -- NOT the registry lock. Per-node
  // workers service disjoint task sets concurrently; the one engine-
  // side actor per task is all SPSC discipline needs. Full freezes
  // (STW walk, scrub, RAS steal) take the registry lock first and then
  // every engine guard, so they still drain a round in flight.
  r->engine_guard.lock();
  // The completion ring's producer side is shared with the foreground
  // direct-recycle path; spin-own it for the round so both the phase-1
  // recycle pushes and the phase-2 restock stay single-producer. A
  // concurrent free simply try-fails its recycle and falls through to
  // the magazine/request-ring tiers -- including the free_pages call on
  // the restock failure path below, which runs with this guard held.
  r->recycle_guard.lock();
  Task& t = tasks_.at(id);
  const Task::ColorSet& cs = t.colors();
  const bool colored = cs.using_bank || cs.using_llc;
  rep.task_dead = !t.alive();

  // Phase 1 -- absorb frees from the request ring. Still-valid frames
  // of a live task recycle straight into the completion ring (one
  // pointer move, no shard); the rest re-home to the magazine, the
  // shards, or -- behind an offline node -- the buddy.
  for (unsigned i = 0; i < cfg_.offload.drain_batch; ++i) {
    const uint64_t v = r->request.pop();
    if (v == SpscRing::kEmpty) break;
    const Pfn pfn = static_cast<Pfn>(v);
    PageInfo& pi = pages_[pfn];
    TINT_DASSERT(pi.state == PageState::kRingOwned);
    ++rep.frees_absorbed;
    if (!rep.task_dead && colored && cached_frame_valid(pi, cs) &&
        r->completion.push(v)) {
      ++rep.recycled;  // stays kRingOwned, owner unchanged
      continue;
    }
    if (!rep.task_dead && cfg_.magazine_capacity > 0 &&
        !color_retired(pi.bank_color) && node_online(pi.node) &&
        t.magazine().push(pfn, pages_))
      continue;  // kRingOwned -> kMagazine, owner kept
    if (node_online(pi.node)) {
      colors_->push(pfn, pages_);
    } else {
      pi.owner = kNoTask;
      pi.state = PageState::kBuddyFree;
      buddy_->free_block(pfn, 0);
    }
  }

  // Phase 2 -- restock the completion ring to the pacing target through
  // the normal colored refill ladder (which also prefills the task's
  // magazine via the batched direct handoff). The engine is the ring's
  // only producer, so size() can only shrink under us and every push
  // below the clamp succeeds.
  if (!rep.task_dead && colored) {
    const unsigned target =
        std::min(target_stock, r->completion.capacity());
    while (r->completion.size() < target) {
      const AllocOutcome out = alloc_colored(t, cs, ~0ULL, -1);
      if (out.pfn == kNoPage) break;  // colored pools dry: stop, no fallback
      PageInfo& pi = pages_[out.pfn];
      pi.owner = id;
      pi.colored_alloc = true;
      pi.state = PageState::kRingOwned;
      if (!r->completion.push(out.pfn)) {
        pi.state = PageState::kAllocated;
        free_pages(out.pfn, 0);
        break;
      }
      ++rep.restocked;
    }
  }
  r->recycle_guard.unlock();
  r->engine_guard.unlock();

  if (rep.frees_absorbed > 0)
    stats_.ring_frees_absorbed.fetch_add(rep.frees_absorbed,
                                         std::memory_order_relaxed);
  if (rep.recycled > 0)
    stats_.ring_recycled.fetch_add(rep.recycled, std::memory_order_relaxed);
  if (rep.restocked > 0)
    stats_.prefault_pages.fetch_add(rep.restocked, std::memory_order_relaxed);
  if (rep.frees_absorbed > 0 || rep.restocked > 0)
    stats_.batches_drained.fetch_add(1, std::memory_order_relaxed);
  return rep;
}

uint64_t Kernel::offload_drain_task_locked(TaskId id) {
  if (!offload_rings_) return 0;
  TaskRings* r = offload_rings_->rings_of(id);
  if (r == nullptr) return 0;
  // Engine guard + both app guards: with all three sides frozen the two
  // drains see every parked frame and no new one can slip in. The
  // re-homing happens inside the hold, so a frame is never outside
  // every pool while the rings are already thawed. (The registry lock
  // is not needed: the guard alone excludes workers, resizes and other
  // drains of this task, and full freezes take every engine guard.)
  r->engine_guard.lock();
  r->freeze_app_sides();
  std::vector<uint64_t> frames = r->completion.drain_all();
  {
    const std::vector<uint64_t> freed = r->request.drain_all();
    frames.insert(frames.end(), freed.begin(), freed.end());
  }
  uint64_t to_buddy = 0;
  for (const uint64_t v : frames) {
    const Pfn pfn = static_cast<Pfn>(v);
    PageInfo& pi = pages_[pfn];
    TINT_DASSERT(pi.state == PageState::kRingOwned);
    if (node_online(pi.node)) {
      colors_->push(pfn, pages_);
    } else {
      pi.owner = kNoTask;
      pi.state = PageState::kBuddyFree;
      buddy_->free_block(pfn, 0);
      ++to_buddy;
    }
  }
  r->thaw_app_sides();
  r->engine_guard.unlock();
  if (!frames.empty())
    stats_.ring_drained_frames.fetch_add(frames.size(),
                                         std::memory_order_relaxed);
  if (to_buddy > 0)
    stats_.offline_drained_pages.fetch_add(to_buddy,
                                           std::memory_order_relaxed);
  return frames.size();
}

uint64_t Kernel::offload_drain_task(TaskId id) {
  if (!offload_rings_) return 0;
  // Shared like a fault: the drain moves frames between pools, and the
  // stop-the-world walk must not observe the in-between window.
  std::shared_lock mm(mm_lock_);
  return offload_drain_task_locked(id);
}

// --- adaptive magazine tuner (control-plane pass) ---

Kernel::MagazineAdaptReport Kernel::adapt_magazines() {
  MagazineAdaptReport rep;
  if (cfg_.magazine_capacity == 0 ||
      cfg_.magazine_capacity_max <= cfg_.magazine_capacity)
    return rep;
  // Shared like a fault: set_capacity takes effect against concurrent
  // pushes immediately, and the stop-the-world walk must not interleave.
  std::shared_lock mm(mm_lock_);
  const size_t ntasks = tasks_.size();
  for (size_t i = 0; i < ntasks; ++i) {
    Task& t = tasks_.at(static_cast<TaskId>(i));
    if (!t.alive()) continue;
    Task::MagTune& tune = t.mag_tune();
    const uint64_t hits =
        t.alloc_stats().magazine_hits.load(std::memory_order_relaxed);
    const uint64_t misses =
        t.alloc_stats().magazine_misses.load(std::memory_order_relaxed);
    const uint64_t dh = hits - tune.hits_seen;
    const uint64_t dm = misses - tune.misses_seen;
    tune.hits_seen = hits;
    tune.misses_seen = misses;
    // Too few observations this pass to act on.
    if (dh + dm < 16) continue;
    ++rep.observed;
    const double frac =
        static_cast<double>(dh) / static_cast<double>(dh + dm);
    tune.ewma = tune.ewma < 0.0 ? frac : 0.3 * frac + 0.7 * tune.ewma;
    const unsigned cap = t.magazine().capacity();
    if (tune.ewma < 0.6 && cap < cfg_.magazine_capacity_max) {
      // Missing often: the per-combo bins are too shallow for this
      // task's churn. Double, bounded by the cap knob.
      t.magazine().set_capacity(
          std::min(cap * 2, cfg_.magazine_capacity_max));
      ++rep.grown;
      stats_.magazine_grows.fetch_add(1, std::memory_order_relaxed);
    } else if (tune.ewma > 0.95 && cap > cfg_.magazine_capacity &&
               t.magazine().cached() <= cap) {
      // Saturated hit rate with a mostly-idle cache: give the frames
      // back. Halve, bounded below by the configured floor. (Shrinking
      // only changes what future pushes accept; already-cached frames
      // drain through the normal triggers.)
      t.magazine().set_capacity(
          std::max(cap / 2, cfg_.magazine_capacity));
      ++rep.shrunk;
      stats_.magazine_shrinks.fetch_add(1, std::memory_order_relaxed);
    }
  }
  return rep;
}

// --- adaptive color-shard count (control-plane; DESIGN.md section 17) ---

bool Kernel::reshard_colors(unsigned shards) {
  shards = std::max(16u, std::min(shards, 512u));
  // Exclusive mm drains every internal shard user that runs under the
  // mm lock (faults, engine service rounds, ring/magazine drains); the
  // ras lock excludes poison reach-ins, which take shard locks with
  // only the ras lock held. Raw alloc_pages/free_pages callers bypass
  // both and must be quiesced by the caller, exactly like the
  // stop-the-world invariant walk.
  std::unique_lock<MmLock> mm(mm_lock_);
  std::lock_guard<RasLock> rl(ras_lock_);
  if (colors_->reshard(shards) == 0) return false;
  stats_.color_reshards.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void Kernel::begin_shard_probe() { colors_->probe_begin(); }

Kernel::ShardAdaptReport Kernel::adapt_shards() {
  ShardAdaptReport rep;
  rep.old_shards = colors_->num_shards();
  rep.new_shards = rep.old_shards;
  const ColorLists::ProbeReport probe = colors_->probe_end();
  rep.acquisitions = probe.acquisitions;
  rep.contended = probe.contended;
  const ShardAdvisor::Advice adv =
      ShardAdvisor().recommend(rep.old_shards, probe.acquisitions,
                               probe.contended);
  rep.new_shards = adv.shards;
  if (adv.shards != rep.old_shards)
    rep.resharded = reshard_colors(adv.shards);
  rep.new_shards = colors_->num_shards();
  return rep;
}

// --- RAS: poisoning, migration, offlining, scrubbing (DESIGN.md
// section 11) ---

void Kernel::note_poisoned_locked(Pfn pfn) {
  ++stats_.frames_poisoned;
  const uint16_t bc = pages_[pfn].bank_color;
  const uint32_t count = ++poison_per_color_[bc];
  if (cfg_.ras.retire_threshold > 0 && count >= cfg_.ras.retire_threshold &&
      color_retired_[bc].load(std::memory_order_relaxed) == 0) {
    color_retired_[bc].store(1, std::memory_order_release);
    ++stats_.colors_retired;
    // Retirement must reach into the magazines too: frames of the
    // retired color cached before the flag flipped would otherwise keep
    // being handed out by magazine hits. Back to the shards they go
    // (still reachable through widening/scavenging, like the rest of
    // the color's parked frames). Ranks ascend: kRas (held by the
    // caller) -> kMagazine -> kColorShard.
    uint64_t drained = 0;
    const size_t ntasks = tasks_.size();
    for (size_t i = 0; i < ntasks; ++i) {
      const std::vector<Pfn> frames =
          tasks_.at(static_cast<TaskId>(i)).magazine().drain_bank_color(bc);
      for (const Pfn p : frames) colors_->push(p, pages_);
      drained += frames.size();
    }
    if (drained > 0)
      stats_.magazine_drains.fetch_add(drained, std::memory_order_relaxed);
  }
}

bool Kernel::poison_frame(Pfn pfn) {
  TINT_ASSERT(pfn < topo_.total_pages());
  if (!cfg_.ras.enabled || pages_[pfn].huge) return false;
  std::lock_guard<RasLock> ras(ras_lock_);
  if (!poisoned_.insert(pfn).second) return false;  // already quarantined
  // Pull the frame out of whichever free pool holds it. Membership is
  // validated under the pool's own lock (never by peeking at the frame
  // state from here, which would race with the owner's writes), so a
  // frame that is allocated -- or mid-flight between pools -- is simply
  // not captured. Its current holder must route it through soft/hard
  // offline instead.
  if (buddy_->carve_page(pfn) || colors_->remove(pfn, pages_)) {
    pages_[pfn].state = PageState::kPoisoned;
    pages_[pfn].owner = kNoTask;
    note_poisoned_locked(pfn);
    return true;
  }
  // Magazine reach-in: a faulty frame must not hide in a task's page
  // magazine. Membership is validated under each magazine's own lock
  // (scanning every task instead of trusting a racy pi.owner read --
  // the owner field of a cached frame is written by free/alloc paths we
  // do not hold). Ranks ascend: kRas -> kMagazine.
  if (cfg_.magazine_capacity > 0) {
    const size_t ntasks = tasks_.size();
    for (size_t i = 0; i < ntasks; ++i) {
      if (tasks_.at(static_cast<TaskId>(i)).magazine().remove(pfn)) {
        pages_[pfn].state = PageState::kPoisoned;
        pages_[pfn].owner = kNoTask;
        note_poisoned_locked(pfn);
        return true;
      }
    }
  }
  // Offload-ring reach-in: a faulty frame must not ride out quarantine
  // stocked in a ring either. Steal requires all three sides frozen
  // (engine lock + both app guards); ranks ascend kRas -> kOffloadRing.
  if (offload_rings_) {
    bool stolen = false;
    offload_rings_->freeze();
    for (const TaskId id : offload_rings_->attached_unsafe()) {
      TaskRings* r = offload_rings_->rings_of(id);
      if (r->completion.steal(pfn) || r->request.steal(pfn)) {
        stolen = true;
        break;
      }
    }
    offload_rings_->thaw();
    if (stolen) {
      pages_[pfn].state = PageState::kPoisoned;
      pages_[pfn].owner = kNoTask;
      note_poisoned_locked(pfn);
      return true;
    }
  }
  poisoned_.erase(pfn);
  return false;
}

void Kernel::quarantine_loose_frame(Pfn pfn) {
  // The caller exclusively holds this frame (allocated, no mapping
  // published), so unlike poison_frame there is no pool to race with.
  TINT_DASSERT(pages_[pfn].state == PageState::kAllocated);
  std::lock_guard<RasLock> ras(ras_lock_);
  const bool fresh = poisoned_.insert(pfn).second;
  TINT_ASSERT_MSG(fresh, "frame quarantined twice");
  pages_[pfn].state = PageState::kPoisoned;
  pages_[pfn].owner = kNoTask;
  note_poisoned_locked(pfn);
}

Kernel::AllocOutcome Kernel::alloc_screened(TaskId task, uint64_t vpn_hint) {
  const sim::DramFaultModel* model =
      cfg_.ras.enabled ? fault_model_.load(std::memory_order_acquire)
                       : nullptr;
  for (unsigned attempt = 0;; ++attempt) {
    AllocOutcome out = alloc_pages(task, 0, vpn_hint);
    if (out.pfn == kNoPage) return out;
    pages_[out.pfn].state = PageState::kAllocated;
    if (!model || model->empty() ||
        model->frame_health(frame_base(out.pfn)) ==
            sim::FrameHealth::kHealthy)
      return out;
    // The ladder handed us a frame the fault model says is faulty:
    // quarantine it on the spot and ask again, bounded so a large faulty
    // region cannot spin the fault path forever.
    ++stats_.ras_screened_frames;
    quarantine_loose_frame(out.pfn);
    if (attempt + 1 >= cfg_.ras.max_screen_retries) {
      AllocOutcome fail;
      fail.stage = AllocStage::kFailed;
      fail.error = AllocError::kOutOfMemory;
      ++stats_.alloc_failures;
      set_last_error(fail.error);
      return fail;
    }
  }
}

Kernel::MigrateResult Kernel::migrate_page(VirtAddr va) {
  std::shared_lock mm(mm_lock_);
  return migrate_locked(va, /*poison_old=*/false);
}

bool Kernel::recolor_task(TaskId task_id,
                          const std::vector<uint16_t>& drop_mem,
                          const std::vector<uint16_t>& add_mem,
                          const std::vector<uint8_t>& drop_llc,
                          const std::vector<uint8_t>& add_llc) {
  // Validate everything up front: the swap is all-or-nothing, so a bad
  // id must not leave a half-validated set behind.
  for (const uint16_t c : drop_mem)
    if (c >= mapping_.num_bank_colors()) {
      set_last_error(AllocError::kInvalidArgument);
      return false;
    }
  for (const uint16_t c : add_mem)
    if (c >= mapping_.num_bank_colors()) {
      set_last_error(AllocError::kInvalidArgument);
      return false;
    }
  for (const uint8_t c : drop_llc)
    if (c >= mapping_.num_llc_colors()) {
      set_last_error(AllocError::kInvalidArgument);
      return false;
    }
  for (const uint8_t c : add_llc)
    if (c >= mapping_.num_llc_colors()) {
      set_last_error(AllocError::kInvalidArgument);
      return false;
    }
  // Held shared end-to-end like a fault (and like the color-control mmap
  // path): the magazine drain below moves frames through a local vector,
  // and the stop-the-world invariant walk must not observe that window.
  std::shared_lock mm(mm_lock_);
  Task& t = tasks_.at(task_id);
  t.replace_colors(drop_mem, add_mem, drop_llc, add_llc);
  // Cached frames were chosen under the old constraints; back to the
  // shards with them (the post-swap membership check in alloc_pages
  // covers frames that sneak in afterwards via a racing free; the ring
  // pop and the engine's recycle run the same check).
  drain_magazine_to_colors(t);
  offload_drain_task_locked(task_id);
  ++stats_.recolor_calls;
  set_last_error(AllocError::kOk);
  return true;
}

std::vector<VirtAddr> Kernel::pages_of_task_color(TaskId task,
                                                  unsigned bank_color,
                                                  bool colored_only) const {
  std::vector<VirtAddr> out;
  // The page-table lock pins the mapping set; a mapped frame's metadata
  // is stable while we hold it (map/remap/unmap all take it exclusive,
  // and PageInfo is written before a mapping is published).
  std::shared_lock pt(pt_lock_);
  for (const auto& [vpn, pfn] : page_table_.mappings()) {
    const PageInfo& pi = pages_[pfn];
    if (pi.huge) continue;
    if (pi.owner != task || pi.bank_color != bank_color) continue;
    if (colored_only && !pi.colored_alloc) continue;
    out.push_back(static_cast<VirtAddr>(vpn) << topo_.page_bits);
  }
  // mappings() iterates in hash order; sort so callers migrate in a
  // stable, deterministic sequence.
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<VirtAddr> Kernel::pages_of_task_llc_color(TaskId task,
                                                      unsigned llc_color,
                                                      bool colored_only) const {
  std::vector<VirtAddr> out;
  std::shared_lock pt(pt_lock_);
  for (const auto& [vpn, pfn] : page_table_.mappings()) {
    const PageInfo& pi = pages_[pfn];
    if (pi.huge) continue;
    if (pi.owner != task || pi.llc_color != llc_color) continue;
    if (colored_only && !pi.colored_alloc) continue;
    out.push_back(static_cast<VirtAddr>(vpn) << topo_.page_bits);
  }
  std::sort(out.begin(), out.end());
  return out;
}

Kernel::MigrateResult Kernel::soft_offline_page(VirtAddr va) {
  std::shared_lock mm(mm_lock_);
  // With RAS disabled this degrades to a plain migration (nothing may
  // enter the quarantine).
  return migrate_locked(va, /*poison_old=*/cfg_.ras.enabled);
}

AllocError Kernel::hard_offline_page(VirtAddr va) {
  if (!cfg_.ras.enabled) return AllocError::kInvalidArgument;
  std::shared_lock mm(mm_lock_);
  const uint64_t vpn = page_table_.vpn_of(va);
  Pfn pfn = kNoPage;
  {
    std::shared_lock pt(pt_lock_);
    if (const auto p = page_table_.lookup(va)) pfn = *p;
  }
  if (pfn == kNoPage || pages_[pfn].huge) return AllocError::kInvalidArgument;
  return hard_offline_locked(vpn, pfn) ? AllocError::kOk
                                       : AllocError::kMigrationRace;
}

Kernel::MigrateResult Kernel::migrate_locked(VirtAddr va, bool poison_old,
                                             Pfn expected) {
  MigrateResult res;
  const uint64_t vpn = page_table_.vpn_of(va);
  Pfn old_pfn = kNoPage;
  {
    std::shared_lock pt(pt_lock_);
    if (const auto p = page_table_.lookup(va)) old_pfn = *p;
  }
  if (old_pfn == kNoPage || pages_[old_pfn].huge) {
    res.error = AllocError::kInvalidArgument;
    return res;
  }
  if (expected != kNoPage && old_pfn != expected) {
    ++stats_.migration_races;
    res.error = AllocError::kMigrationRace;
    return res;
  }
  res.old_pfn = old_pfn;
  const TaskId owner = pages_[old_pfn].owner;
  if (owner == kNoTask) {
    res.error = AllocError::kInvalidArgument;
    return res;
  }

  // Replacement frame under the *owner's* color constraints -- a colored
  // task's page stays on its banks if at all possible, and otherwise
  // falls down the same ladder as a fresh fault (stage recorded in the
  // result). An armed kMigrateTarget failpoint fails the allocation
  // outright, exercising the flaky-frame-kept path.
  if (fail_.should_fail(FailPoint::kMigrateTarget)) {
    ++stats_.migration_failures;
    res.error = AllocError::kOutOfMemory;
    return res;
  }
  const AllocOutcome out = alloc_screened(owner, vpn);
  if (out.pfn == kNoPage) {
    ++stats_.migration_failures;
    res.error = out.error;
    return res;
  }
  res.stage = out.stage;

  // Frame metadata before the mapping is published (as in touch()).
  PageInfo& npi = pages_[out.pfn];
  npi.state = PageState::kAllocated;
  npi.owner = owner;
  npi.colored_alloc = out.colored;
  // The commit point: swap the translation iff it still maps the frame
  // we read above. A concurrent migration or munmap makes this fail --
  // discard the replacement and report instead of corrupting the swap.
  bool swapped;
  {
    std::unique_lock pt(pt_lock_);
    swapped = page_table_.remap(vpn, old_pfn, out.pfn);
  }
  if (!swapped) {
    ++stats_.migration_races;
    free_pages(out.pfn, 0);
    res.error = AllocError::kMigrationRace;
    return res;
  }
  // No stale translation of the old frame may survive the swap.
  invalidate_tlb();
  ++stats_.pages_migrated;
  ++tasks_.at(owner).alloc_stats().migrated_pages;
  res.new_pfn = out.pfn;
  res.cycles = cfg_.ras.migrate_copy_cycles;
  res.ok = true;
  if (poison_old) {
    ++stats_.soft_offlines;
    quarantine_loose_frame(old_pfn);
  } else {
    free_pages(old_pfn, 0);
  }
  return res;
}

bool Kernel::hard_offline_locked(uint64_t vpn, Pfn expected) {
  // Drop the mapping iff it still points at the dead frame; a concurrent
  // migration/munmap got there first otherwise and the frame is no
  // longer ours to quarantine.
  bool unmapped;
  {
    std::unique_lock pt(pt_lock_);
    unmapped = page_table_.unmap_if(vpn, expected);
  }
  if (!unmapped) {
    ++stats_.migration_races;
    return false;
  }
  invalidate_tlb();
  ++stats_.hard_offlines;
  quarantine_loose_frame(expected);
  return true;
}

Kernel::ScrubReport Kernel::scrub() {
  ScrubReport rep;
  const sim::DramFaultModel* model =
      fault_model_.load(std::memory_order_acquire);
  if (!cfg_.ras.enabled || !model || model->empty()) return rep;
  ++stats_.scrub_passes;

  // Sweep phase: freeze the allocation path (same order as
  // check_invariants) and collect every frame the fault model flags.
  // Only the model is consulted -- probability failpoints would fire
  // thousands of independent events in one pass, which is not what a
  // scrubber is for.
  struct FreeVictim {
    Pfn pfn;
  };
  struct MappedVictim {
    uint64_t vpn;
    Pfn pfn;
    sim::FrameHealth health;
  };
  std::vector<FreeVictim> free_victims;
  std::vector<MappedVictim> mapped_victims;
  {
    std::unique_lock<MmLock> mm(mm_lock_);
    std::unique_lock<DefaultLock> dl(default_lock_);
    std::unique_lock<PtLock> pt(pt_lock_);
    std::unique_lock<HugeLock> hl(huge_lock_);
    // Offload rings are a frame pool too (rank kOffloadRing, below the
    // magazines): a faulty frame must not ride out every pass stocked
    // in a ring.
    if (offload_rings_) offload_rings_->freeze();
    // Magazines are a frame pool too: the scrubber must see cached
    // frames or a faulty frame could ride out every pass inside one.
    // Locked in task-id order (equal rank kMagazine), between the huge
    // pool and the color shards.
    const size_t ntasks = tasks_.size();
    for (size_t i = 0; i < ntasks; ++i)
      tasks_.at(static_cast<TaskId>(i)).magazine().lock();
    colors_->freeze();
    buddy_->freeze();
    for (const auto& [head, order] : buddy_->snapshot_free_blocks()) {
      const uint64_t n = uint64_t{1} << order;
      for (uint64_t i = 0; i < n; ++i) {
        const Pfn pfn = head + static_cast<Pfn>(i);
        if (model->frame_health(frame_base(pfn)) !=
            sim::FrameHealth::kHealthy)
          free_victims.push_back({pfn});
      }
    }
    for (const Pfn pfn : colors_->snapshot_parked())
      if (model->frame_health(frame_base(pfn)) != sim::FrameHealth::kHealthy)
        free_victims.push_back({pfn});
    for (size_t i = 0; i < ntasks; ++i)
      for (const Pfn pfn :
           tasks_.at(static_cast<TaskId>(i)).magazine().snapshot())
        if (model->frame_health(frame_base(pfn)) !=
            sim::FrameHealth::kHealthy)
          free_victims.push_back({pfn});  // poison_frame reaches in later
    if (offload_rings_)
      for (const TaskId id : offload_rings_->attached_unsafe()) {
        const TaskRings* r = offload_rings_->rings_of(id);
        for (const SpscRing* ring : {&r->completion, &r->request})
          for (const uint64_t v : ring->snapshot())
            if (model->frame_health(frame_base(static_cast<Pfn>(v))) !=
                sim::FrameHealth::kHealthy)
              free_victims.push_back(
                  {static_cast<Pfn>(v)});  // ring steal reaches in later
      }
    for (const auto& [vpn, pfn] : page_table_.mappings()) {
      if (pages_[pfn].huge) continue;  // 2 MB frames are exempt
      const sim::FrameHealth h = model->frame_health(frame_base(pfn));
      if (h != sim::FrameHealth::kHealthy)
        mapped_victims.push_back({vpn, pfn, h});
    }
    buddy_->thaw();
    colors_->thaw();
    for (size_t i = ntasks; i-- > 0;)
      tasks_.at(static_cast<TaskId>(i)).magazine().unlock();
    if (offload_rings_) offload_rings_->thaw();
  }
  rep.frames_flagged = free_victims.size() + mapped_victims.size();
  stats_.scrub_frames_flagged.fetch_add(rep.frames_flagged,
                                        std::memory_order_relaxed);

  // Repair phase, unfrozen: each victim is re-validated by its repair
  // primitive (carve/remove/remap/unmap_if), so frames that moved since
  // the sweep are skipped and the next pass sees them.
  for (const FreeVictim& v : free_victims) {
    if (poison_frame(v.pfn))
      ++rep.poisoned_free;
    else
      ++rep.skipped;
  }
  for (const MappedVictim& v : mapped_victims) {
    const VirtAddr va = v.vpn << topo_.page_bits;
    if (v.health == sim::FrameHealth::kDead) {
      std::shared_lock mm(mm_lock_);
      if (hard_offline_locked(v.vpn, v.pfn))
        ++rep.hard_offlined;
      else
        ++rep.skipped;
    } else {
      std::shared_lock mm(mm_lock_);
      const MigrateResult mig =
          migrate_locked(va, /*poison_old=*/true, /*expected=*/v.pfn);
      if (mig.ok)
        ++rep.soft_offlined;
      else
        ++rep.skipped;
    }
  }
  return rep;
}

std::vector<uint16_t> Kernel::retired_colors() const {
  std::vector<uint16_t> out;
  for (unsigned c = 0; c < mapping_.num_bank_colors(); ++c)
    if (color_retired_[c].load(std::memory_order_acquire) != 0)
      out.push_back(static_cast<uint16_t>(c));
  return out;
}

uint64_t Kernel::poisoned_frames() const {
  std::lock_guard<RasLock> ras(ras_lock_);
  return poisoned_.size();
}

Kernel::InvariantReport Kernel::check_invariants(uint64_t expected_loose,
                                                 bool stop_the_world) const {
  // Stop-the-world mode freezes the entire allocation path in ascending
  // rank order (mm -> default -> page table -> huge pool -> color shards
  // -> buddy zones), so the structural walk below is sound while real
  // threads keep running: faults hold the mm lock shared end-to-end, so
  // the exclusive acquisition drains every in-flight fault first. Raw
  // alloc_pages/free_pages callers are not covered by the mm lock; the
  // caller quiesces them (or passes their frames as expected_loose).
  std::unique_lock<MmLock> mm(mm_lock_, std::defer_lock);
  std::unique_lock<DefaultLock> dl(default_lock_, std::defer_lock);
  std::unique_lock<PtLock> pt(pt_lock_, std::defer_lock);
  std::unique_lock<HugeLock> hl(huge_lock_, std::defer_lock);
  std::unique_lock<RasLock> rl(ras_lock_, std::defer_lock);
  size_t ntasks = 0;
  if (stop_the_world) {
    mm.lock();
    dl.lock();
    pt.lock();
    hl.lock();
    // The ras lock sits between the huge pool and the color shards in
    // rank order; holding it excludes half-finished quarantines (a
    // frame inserted into the poisoned set but not yet carved out of
    // its pool would double-count below).
    rl.lock();
    // Offload rings freeze between the ras lock and the magazines
    // (rank kOffloadRing = 56 sits between kRas and kMagazine): the
    // ring walk below counts kRingOwned frames, so the engine and the
    // app-side guards must be excluded for the bracket.
    if (offload_rings_) offload_rings_->freeze();
    // The task count is read only now, with mm held exclusively: a task
    // created before this point may already hold magazine frames (its
    // creator's faults and frees ran under mm shared, which we just
    // drained), so the walk must cover it. A task created *after* this
    // point cannot gain a frame while we hold mm -- every frame movement
    // runs under the mm lock -- so its empty magazine is safely out of
    // scope.
    ntasks = tasks_.size();
    // Every task magazine (rank kMagazine, between kRas and the color
    // shards; equal-rank acquisitions in task-id order): cached frames
    // are a first-class pool and the walk below counts them, so a
    // concurrent push/pop mid-walk would corrupt the bracket.
    for (size_t i = 0; i < ntasks; ++i)
      tasks_.at(static_cast<TaskId>(i)).magazine().lock();
    colors_->freeze();
    buddy_->freeze();
  } else {
    rl.lock();  // the poisoned set still needs its own lock to walk
    ntasks = tasks_.size();
  }

  InvariantReport rep;
  rep.total = topo_.total_pages();
  rep.pinned = buddy_->reserved_pages();

  // Walk every pool's actual data structure (not its counters) and mark
  // which pool claims each frame; a frame claimed twice or a counter
  // that disagrees with its walk is a corruption.
  enum : uint8_t { kBuddy = 1, kColor = 2, kMapped = 4, kHuge = 8,
                   kPoison = 16, kMagazineBit = 32, kRing = 64 };
  std::vector<uint8_t> claimed(rep.total, 0);
  const auto claim = [&](Pfn pfn, uint8_t who) {
    if (claimed[pfn]) ++rep.double_counted;
    claimed[pfn] |= who;
  };

  for (const auto& [head, order] : buddy_->snapshot_free_blocks()) {
    const uint64_t n = uint64_t{1} << order;
    rep.buddy_free += n;
    for (uint64_t i = 0; i < n; ++i) claim(head + static_cast<Pfn>(i), kBuddy);
  }
  for (const Pfn pfn : colors_->snapshot_parked()) {
    ++rep.color_parked;
    claim(pfn, kColor);
  }
  uint64_t magazine_counters = 0;
  bool magazine_state_ok = true;
  for (size_t i = 0; i < ntasks; ++i) {
    const Task& t = tasks_.at(static_cast<TaskId>(i));
    magazine_counters += t.magazine().cached();
    for (const Pfn pfn : t.magazine().snapshot()) {
      ++rep.magazine_cached;
      claim(pfn, kMagazineBit);
      // A cached frame belongs to the task caching it and is in the
      // dedicated state -- anything else means a drain or a RAS reach-in
      // left a frame behind.
      if (pages_[pfn].state != PageState::kMagazine ||
          pages_[pfn].owner != t.id())
        magazine_state_ok = false;
    }
  }
  // Offload rings: every parked frame belongs to the task whose ring
  // holds it and is in the dedicated kRingOwned state -- the frame-
  // conservation law must see ring-parked frames or the engine could
  // leak through a teardown. (Non-stop-the-world mode reads the rings
  // unfrozen; the caller guarantees quiescence, as with the magazines.)
  bool ring_state_ok = true;
  if (offload_rings_) {
    for (const TaskId id : offload_rings_->attached_unsafe()) {
      const TaskRings* r = offload_rings_->rings_of(id);
      for (const SpscRing* ring : {&r->completion, &r->request}) {
        for (const uint64_t v : ring->snapshot()) {
          const Pfn pfn = static_cast<Pfn>(v);
          ++rep.ring_owned;
          claim(pfn, kRing);
          if (pages_[pfn].state != PageState::kRingOwned ||
              pages_[pfn].owner != id)
            ring_state_ok = false;
        }
      }
    }
  }
  for (const auto& [vpn, pfn] : page_table_.mappings()) {
    ++rep.mapped;
    claim(pfn, kMapped);
  }
  const uint64_t pages_per_huge = kHugeBytes / topo_.page_bytes();
  for (const auto& pool : huge_pool_)
    for (const Pfn head : pool) {
      rep.huge_pool_pages += pages_per_huge;
      for (uint64_t i = 0; i < pages_per_huge; ++i)
        claim(head + static_cast<Pfn>(i), kHuge);
    }
  bool poison_state_ok = true;
  for (const Pfn pfn : poisoned_) {
    ++rep.poisoned;
    claim(pfn, kPoison);
    if (pages_[pfn].state != PageState::kPoisoned) poison_state_ok = false;
  }

  // Whatever no pool claims is either a warm-up pin or a frame handed
  // out through the raw alloc_pages API without a mapping ("loose").
  uint64_t unclaimed = 0;
  for (const uint8_t c : claimed)
    if (c == 0) ++unclaimed;
  rep.loose = unclaimed >= rep.pinned ? unclaimed - rep.pinned : 0;

  const uint64_t accounted = rep.buddy_free + rep.color_parked +
                             rep.magazine_cached + rep.ring_owned +
                             rep.mapped + rep.huge_pool_pages +
                             rep.poisoned + rep.pinned + rep.loose;
  rep.ok = true;
  if (rep.double_counted != 0) {
    rep.ok = false;
    rep.detail = "frame present in more than one pool";
  } else if (!poison_state_ok) {
    rep.ok = false;
    rep.detail = "quarantined frame not in kPoisoned state";
  } else if (!ring_state_ok) {
    rep.ok = false;
    rep.detail = "ring-parked frame with wrong state or owner";
  } else if (!magazine_state_ok) {
    rep.ok = false;
    rep.detail = "magazine frame with wrong state or owner";
  } else if (rep.magazine_cached != magazine_counters) {
    rep.ok = false;
    rep.detail = "magazine walk disagrees with its counters";
  } else if (unclaimed < rep.pinned) {
    rep.ok = false;
    rep.detail = "warm-up pinned frames reappeared in a pool";
  } else if (accounted != rep.total) {
    rep.ok = false;
    rep.detail = "pools do not sum to total frames (leak or corruption)";
  } else if (rep.loose != expected_loose) {
    rep.ok = false;
    rep.detail = "unexpected loose (allocated-but-unmapped) frame count: " +
                 std::to_string(rep.loose) + " vs expected " +
                 std::to_string(expected_loose);
    // Name the stragglers: which frames no pool claims, and what their
    // metadata says they were last doing.
    unsigned listed = 0;
    for (Pfn pfn = 0; pfn < rep.total && listed < 4; ++pfn) {
      if (claimed[pfn] != 0) continue;
      const PageInfo& pi = pages_[pfn];
      rep.detail += "; pfn " + std::to_string(pfn) + " state " +
                    std::to_string(static_cast<int>(pi.state)) + " owner " +
                    std::to_string(pi.owner) + " node " +
                    std::to_string(pi.node);
      ++listed;
    }
  } else if (rep.buddy_free != buddy_->total_free_pages()) {
    rep.ok = false;
    rep.detail = "buddy free-list walk disagrees with zone counters";
  } else if (rep.color_parked != colors_->total_parked()) {
    rep.ok = false;
    rep.detail = "color-list walk disagrees with its counter";
  }

  if (stop_the_world) {
    buddy_->thaw();
    colors_->thaw();
    for (size_t i = ntasks; i-- > 0;)
      tasks_.at(static_cast<TaskId>(i)).magazine().unlock();
    if (offload_rings_) offload_rings_->thaw();
  }
  // rl/hl/pt/dl/mm release in reverse declaration order (descending rank).
  return rep;
}

}  // namespace tint::os

// Deterministic fault injection for the allocation stack.
//
// A *failpoint* is a named site in the kernel where a fault can be forced
// on demand: the buddy allocator pretends a zone is empty, a color-list
// refill fails, the reserved huge pool is unavailable, or a node briefly
// drops off the fabric. Tests and the pressure harness arm failpoints --
// from `KernelConfig::failpoints` at boot or through
// `Kernel::failpoints()` at runtime -- to drive the graceful-degradation
// ladder (see errors.h) without needing to construct a genuinely
// exhausted machine first.
//
// Triggers are deterministic and seedable. Each point owns its own
// xoshiro stream, seeded from the registry seed and the point's index
// and reseeded on every arm(), so a given (seed, point, hit sequence)
// always fires the same way no matter what the *other* points do -- the
// repository-wide reproducibility rule applies to injected faults too.
//
// Thread safety: should_fail/arm/disarm may be called concurrently from
// any thread. Each point carries its own leaf-rank mutex (see
// util/lock_rank.h) guarding its spec and rng; hit/fire counters are
// atomic so stats() reads never tear. Under concurrent hits the per-hit
// *ordering* across threads is whatever the race resolves to, but every
// hit draws from the point's own deterministic stream position.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string_view>

#include "util/lock_rank.h"
#include "util/rng.h"

namespace tint::os {

enum class FailPoint : uint8_t {
  kBuddyAlloc = 0,  // BuddyAllocator::alloc_block / pop_any_block fails
  kColorRefill,     // Algorithm 2 refill (create_color_list feed) fails
  kHugePool,        // reserved 2 MB pool treated as dry for one fault
  kNodeOffline,     // faulting task's local node unreachable for one alloc
  // --- RAS family (see DESIGN.md section 11) ---
  kEccCorrected,    // a touched frame reports a corrected (flaky) DRAM
                    // error: the kernel soft-offlines it (migrate+poison)
  kEccUncorrected,  // a touched frame reports an uncorrectable error:
                    // hard offline (poison, drop mapping, kEccUncorrected)
  kMigrateTarget,   // the replacement allocation inside migrate_page fails
  kCount,
};

constexpr const char* to_string(FailPoint p) {
  switch (p) {
    case FailPoint::kBuddyAlloc: return "buddy_alloc";
    case FailPoint::kColorRefill: return "color_refill";
    case FailPoint::kHugePool: return "huge_pool";
    case FailPoint::kNodeOffline: return "node_offline";
    case FailPoint::kEccCorrected: return "ecc_corrected";
    case FailPoint::kEccUncorrected: return "ecc_uncorrected";
    case FailPoint::kMigrateTarget: return "migrate_target";
    case FailPoint::kCount: break;
  }
  return "?";
}

std::optional<FailPoint> failpoint_from_name(std::string_view name);

// How an armed failpoint decides to fire.
struct FailSpec {
  enum class Mode : uint8_t {
    kOff,          // never fires
    kAlways,       // fires on every hit
    kProbability,  // fires with probability `p` per hit (seeded stream)
    kEveryNth,     // fires on hits n, 2n, 3n, ...
    kOneShot,      // fires exactly once, on hit number `n` (1-based)
  };

  Mode mode = Mode::kOff;
  double p = 0.0;
  uint64_t n = 0;

  static FailSpec off() { return {}; }
  static FailSpec always() { return {Mode::kAlways, 0.0, 0}; }
  static FailSpec probability(double p) { return {Mode::kProbability, p, 0}; }
  static FailSpec every_nth(uint64_t n) { return {Mode::kEveryNth, 0.0, n}; }
  static FailSpec one_shot(uint64_t nth_hit = 1) {
    return {Mode::kOneShot, 0.0, nth_hit};
  }
};

struct FailPointStats {
  std::atomic<uint64_t> hits{0};   // times the site was evaluated while armed
  std::atomic<uint64_t> fires{0};  // times the fault was actually injected

  struct Snapshot {
    uint64_t hits = 0;
    uint64_t fires = 0;
  };
  Snapshot snapshot() const {
    return {hits.load(std::memory_order_relaxed),
            fires.load(std::memory_order_relaxed)};
  }
};

class FailPoints {
 public:
  explicit FailPoints(uint64_t seed = 0xfa11fa11ULL) : seed_(seed) {
    for (size_t i = 0; i < kN; ++i) points_[i].rng.reseed(stream_seed(i));
  }

  // Arms (or re-arms) a point; resets its hit/fire counters and reseeds
  // its stream so every-Nth, one-shot and probability triggers count
  // (and draw) from "now".
  void arm(FailPoint p, FailSpec spec) {
    Point& pt = points_[index(p)];
    std::lock_guard<util::RankedMutex<util::lock_rank::kFailPoint>> lk(pt.mu);
    pt.spec = spec;
    pt.stats.hits.store(0, std::memory_order_relaxed);
    pt.stats.fires.store(0, std::memory_order_relaxed);
    pt.rng.reseed(stream_seed(index(p)));
    pt.armed.store(spec.mode != FailSpec::Mode::kOff,
                   std::memory_order_release);
  }
  void disarm(FailPoint p) { arm(p, FailSpec::off()); }
  void disarm_all() {
    for (size_t i = 0; i < kN; ++i)
      arm(static_cast<FailPoint>(i), FailSpec::off());
  }

  bool armed(FailPoint p) const {
    return points_[index(p)].armed.load(std::memory_order_acquire);
  }
  // By value: the spec can be re-armed concurrently.
  FailSpec spec(FailPoint p) const {
    const Point& pt = points_[index(p)];
    std::lock_guard<util::RankedMutex<util::lock_rank::kFailPoint>> lk(pt.mu);
    return pt.spec;
  }
  const FailPointStats& stats(FailPoint p) const {
    return points_[index(p)].stats;
  }

  // Evaluated at the failpoint site: counts a hit and reports whether the
  // fault should be injected now. The unarmed fast path is a single
  // atomic load -- hot allocation paths pay nothing while no fault
  // scenario is active.
  bool should_fail(FailPoint p) {
    Point& pt = points_[index(p)];
    if (!pt.armed.load(std::memory_order_acquire)) return false;
    std::lock_guard<util::RankedMutex<util::lock_rank::kFailPoint>> lk(pt.mu);
    if (pt.spec.mode == FailSpec::Mode::kOff) return false;  // lost a disarm
    const uint64_t hit = pt.stats.hits.fetch_add(1, std::memory_order_relaxed) + 1;
    bool fire = false;
    switch (pt.spec.mode) {
      case FailSpec::Mode::kOff:
        break;
      case FailSpec::Mode::kAlways:
        fire = true;
        break;
      case FailSpec::Mode::kProbability:
        fire = pt.rng.next_bool(pt.spec.p);
        break;
      case FailSpec::Mode::kEveryNth:
        fire = pt.spec.n > 0 && hit % pt.spec.n == 0;
        break;
      case FailSpec::Mode::kOneShot:
        fire = hit == pt.spec.n;
        break;
    }
    if (fire) pt.stats.fires.fetch_add(1, std::memory_order_relaxed);
    return fire;
  }

 private:
  static constexpr size_t kN = static_cast<size_t>(FailPoint::kCount);
  static size_t index(FailPoint p) { return static_cast<size_t>(p); }
  uint64_t stream_seed(size_t i) const {
    return mix64(seed_ ^ (0x9e3779b97f4a7c15ULL * (i + 1)));
  }

  struct Point {
    mutable util::RankedMutex<util::lock_rank::kFailPoint> mu;
    std::atomic<bool> armed{false};
    FailSpec spec;
    Rng rng{0};  // reseeded per-point from the table seed before use
    FailPointStats stats;
  };

  uint64_t seed_;
  std::array<Point, kN> points_{};
};

}  // namespace tint::os

// Deterministic fault injection for the allocation stack.
//
// A *failpoint* is a named site in the kernel where a fault can be forced
// on demand: the buddy allocator pretends a zone is empty, a color-list
// refill fails, the reserved huge pool is unavailable, or a node briefly
// drops off the fabric. Tests and the pressure harness arm failpoints --
// from `KernelConfig::failpoints` at boot or through
// `Kernel::failpoints()` at runtime -- to drive the graceful-degradation
// ladder (see errors.h) without needing to construct a genuinely
// exhausted machine first.
//
// Triggers are deterministic and seedable: the probabilistic mode draws
// from its own xoshiro stream, so a given (seed, call sequence) always
// fires the same way -- the repository-wide reproducibility rule applies
// to injected faults too.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string_view>

#include "util/rng.h"

namespace tint::os {

enum class FailPoint : uint8_t {
  kBuddyAlloc = 0,  // BuddyAllocator::alloc_block / pop_any_block fails
  kColorRefill,     // Algorithm 2 refill (create_color_list feed) fails
  kHugePool,        // reserved 2 MB pool treated as dry for one fault
  kNodeOffline,     // faulting task's local node unreachable for one alloc
  kCount,
};

constexpr const char* to_string(FailPoint p) {
  switch (p) {
    case FailPoint::kBuddyAlloc: return "buddy_alloc";
    case FailPoint::kColorRefill: return "color_refill";
    case FailPoint::kHugePool: return "huge_pool";
    case FailPoint::kNodeOffline: return "node_offline";
    case FailPoint::kCount: break;
  }
  return "?";
}

std::optional<FailPoint> failpoint_from_name(std::string_view name);

// How an armed failpoint decides to fire.
struct FailSpec {
  enum class Mode : uint8_t {
    kOff,          // never fires
    kAlways,       // fires on every hit
    kProbability,  // fires with probability `p` per hit (seeded stream)
    kEveryNth,     // fires on hits n, 2n, 3n, ...
    kOneShot,      // fires exactly once, on hit number `n` (1-based)
  };

  Mode mode = Mode::kOff;
  double p = 0.0;
  uint64_t n = 0;

  static FailSpec off() { return {}; }
  static FailSpec always() { return {Mode::kAlways, 0.0, 0}; }
  static FailSpec probability(double p) { return {Mode::kProbability, p, 0}; }
  static FailSpec every_nth(uint64_t n) { return {Mode::kEveryNth, 0.0, n}; }
  static FailSpec one_shot(uint64_t nth_hit = 1) {
    return {Mode::kOneShot, 0.0, nth_hit};
  }
};

struct FailPointStats {
  uint64_t hits = 0;   // times the site was evaluated while armed or not
  uint64_t fires = 0;  // times the fault was actually injected
};

class FailPoints {
 public:
  explicit FailPoints(uint64_t seed = 0xfa11fa11ULL) : rng_(seed) {}

  // Arms (or re-arms) a point; resets its hit/fire counters so every-Nth
  // and one-shot triggers count from "now".
  void arm(FailPoint p, FailSpec spec) {
    specs_[index(p)] = spec;
    stats_[index(p)] = FailPointStats{};
  }
  void disarm(FailPoint p) { arm(p, FailSpec::off()); }
  void disarm_all() {
    for (auto& s : specs_) s = FailSpec::off();
    for (auto& s : stats_) s = FailPointStats{};
  }

  bool armed(FailPoint p) const {
    return specs_[index(p)].mode != FailSpec::Mode::kOff;
  }
  const FailSpec& spec(FailPoint p) const { return specs_[index(p)]; }
  const FailPointStats& stats(FailPoint p) const { return stats_[index(p)]; }

  // Evaluated at the failpoint site: counts a hit and reports whether the
  // fault should be injected now.
  bool should_fail(FailPoint p) {
    FailSpec& spec = specs_[index(p)];
    if (spec.mode == FailSpec::Mode::kOff) return false;
    FailPointStats& st = stats_[index(p)];
    ++st.hits;
    bool fire = false;
    switch (spec.mode) {
      case FailSpec::Mode::kOff:
        break;
      case FailSpec::Mode::kAlways:
        fire = true;
        break;
      case FailSpec::Mode::kProbability:
        fire = rng_.next_bool(spec.p);
        break;
      case FailSpec::Mode::kEveryNth:
        fire = spec.n > 0 && st.hits % spec.n == 0;
        break;
      case FailSpec::Mode::kOneShot:
        fire = st.hits == spec.n;
        break;
    }
    if (fire) ++st.fires;
    return fire;
  }

 private:
  static constexpr size_t kN = static_cast<size_t>(FailPoint::kCount);
  static size_t index(FailPoint p) { return static_cast<size_t>(p); }

  Rng rng_;
  std::array<FailSpec, kN> specs_{};
  std::array<FailPointStats, kN> stats_{};
};

}  // namespace tint::os

// ShardAdvisor: picks color-list shard counts per machine, at boot and
// at runtime (DESIGN.md section 17).
//
// The shard count trades two measured costs against each other:
//
//   * too few shards and concurrent tasks popping different (bank, LLC)
//     combos collide on the same lock -- the ColorLists contention
//     probe observes exactly this as the fraction of shard acquisitions
//     that found the shard already held;
//   * too many shards and the stop-the-world freeze (which takes every
//     shard lock in ascending order) gets linearly more expensive --
//     the BM_StwFreeze cells in bench/concurrent_alloc measure this
//     per-shard cost, and the advisor's freeze budget encodes it.
//
// Boot derivation (boot_shards) seeds from topology alone: enough
// shards that the combos in flight across all cores rarely collide.
// Runtime adaptation (recommend) follows the DReAM idiom -- observed
// counters, not guesses, drive the re-arrangement: a sampling window of
// the contention probe doubles the count while the contended fraction
// stays high (until the projected freeze cost exhausts the budget) and
// halves it back when contention disappears.
#pragma once

#include <cstdint>

#include "hw/topology.h"

namespace tint::os {

struct ShardAdvisorConfig {
  unsigned min_shards = 16;
  unsigned max_shards = 512;
  // Contended fraction of probed acquisitions above which the count
  // doubles; below shrink_threshold (with room above the floor) it
  // halves. The dead band between them gives hysteresis.
  double grow_threshold = 0.02;
  double shrink_threshold = 0.002;
  // Windows with fewer probed acquisitions than this are ignored (the
  // fraction would be noise).
  uint64_t min_observations = 256;
  // Freeze-cost weighting (the BM_StwFreeze measurement, folded in):
  // each shard adds roughly this many nanoseconds to a stop-the-world
  // freeze, and growth stops once the projected freeze cost of the
  // *doubled* count would exceed the budget -- contention relief is
  // never bought with an unbounded STW pause.
  double freeze_ns_per_shard = 60.0;
  double freeze_budget_ns = 50000.0;
};

class ShardAdvisor {
 public:
  explicit ShardAdvisor(ShardAdvisorConfig cfg = {}) : cfg_(cfg) {}

  struct Advice {
    unsigned shards = 0;          // recommended count (== current: keep)
    double contention = 0.0;      // observed contended fraction
    bool capped_by_freeze = false;  // growth wanted but budget exhausted
  };
  // One decision from one probe window. Pure function of its inputs, so
  // decisions are reproducible from logged counters.
  Advice recommend(unsigned current_shards, uint64_t acquisitions,
                   uint64_t contended) const;

  // Boot-time derivation (previously inlined in the Kernel ctor): the
  // number of (bank, LLC) combos, clamped to cores x 16 and then to
  // [min_shards, max_shards].
  static unsigned boot_shards(const hw::Topology& topo, unsigned bank_colors,
                              unsigned llc_colors,
                              const ShardAdvisorConfig& cfg = {});

  const ShardAdvisorConfig& config() const { return cfg_; }

 private:
  ShardAdvisorConfig cfg_;
};

}  // namespace tint::os

// Physical page-frame metadata.
//
// The simulated kernel keeps one `PageInfo` per 4 KB frame, mirroring the
// fields TintMalloc adds to `struct page` in the real patch: the frame's
// bank color and LLC color (computed once at boot from the PCI-derived
// address mapping, Section III.A) plus allocation bookkeeping.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "hw/address_mapping.h"

namespace tint::os {

using Pfn = uint32_t;  // page frame number; 32 bits cover 16 TB of 4 KB pages
inline constexpr Pfn kNoPage = std::numeric_limits<Pfn>::max();

using TaskId = uint32_t;
inline constexpr TaskId kNoTask = std::numeric_limits<TaskId>::max();

enum class PageState : uint8_t {
  kBuddyFree,   // inside a buddy free block
  kColorFree,   // parked on a color_list[MEM_ID][LLC_ID]
  kAllocated,   // mapped into some task
  kPoisoned,    // quarantined by the RAS subsystem (hwpoison analogue):
                // in no free pool and never handed out again
  kMagazine,    // cached in the owning task's page magazine (a first-class
                // free pool: the invariant checker counts it, RAS can
                // reach in, and drains return frames to the color lists)
  kRingOwned,   // parked in one of the owning task's offload rings (see
                // os/offload_ring.h): either stocked in the completion
                // ring awaiting the task's next colored fault, or freed
                // into the request ring awaiting background absorption.
                // A first-class free pool like kMagazine: counted by the
                // invariant walk, stealable by RAS poisoning, drained on
                // teardown
};

struct PageInfo {
  uint16_t bank_color = 0;  // Eq. 1 color, node-qualified
  uint8_t llc_color = 0;
  uint8_t node = 0;
  PageState state = PageState::kBuddyFree;
  // Allocated through the colored path (and therefore returned to the
  // color lists on free, per Section III.C).
  bool colored_alloc = false;
  // Part of a mapped 2 MB huge block. RAS detection/migration covers
  // order-0 frames only; huge frames are skipped (one 2 MB frame cannot
  // be re-colored page-wise).
  bool huge = false;
  TaskId owner = kNoTask;
};

// Boot-time construction of the frame metadata table ("TintMalloc is
// activated in the late phase of booting Linux at which time the
// bit-level information is derived from PCI registers").
std::vector<PageInfo> build_page_table_metadata(const hw::AddressMapping& map,
                                                uint64_t total_pages);

}  // namespace tint::os

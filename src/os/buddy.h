// Linux-style buddy allocator over the simulated physical memory
// (Section III.C, "Heap Policies: Linux Buddy Allocations vs. TintMalloc").
//
// Memory is carved into per-node zones (the node of a frame is fixed by
// the DRAM base/limit ranges). Each zone keeps free lists for block
// orders 0..kMaxOrder; allocation splits larger blocks, freeing coalesces
// with the buddy block. Intrusive doubly-linked lists over the pfn space
// make all operations O(1) apart from the order scan.
//
// Thread safety: one lock per zone, exactly like the Linux per-zone
// `zone->lock`. The intrusive link arrays are indexed by pfn and a
// frame's node never changes, so each zone lock guards a disjoint slice
// of them; `zone_free_pages_` counters are atomics readable without the
// lock (the kernel's default path uses them for its free-page-weighted
// node choice). `warm_up` is boot-time only and must run before any
// concurrent caller exists.
//
// `warm_up()` emulates a long-running system: the pristine
// every-block-is-maximal state of a fresh boot would make "default buddy"
// placement unrealistically regular, whereas on the paper's testbed the
// free lists are well mixed by prior activity. Warming shuffles insertion
// order and runs a seeded allocate/free episode, which (a) randomizes the
// physical placement the default policy hands out and (b) produces the
// run-to-run variance visible in the paper's error bars.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "hw/address_mapping.h"
#include "hw/topology.h"
#include "os/failpoints.h"
#include "os/page.h"
#include "util/lock_rank.h"
#include "util/rng.h"

namespace tint::os {

struct BuddyStats {
  std::atomic<uint64_t> allocs{0};
  std::atomic<uint64_t> frees{0};
  std::atomic<uint64_t> splits{0};
  std::atomic<uint64_t> merges{0};

  struct Snapshot {
    uint64_t allocs = 0;
    uint64_t frees = 0;
    uint64_t splits = 0;
    uint64_t merges = 0;
  };
  Snapshot snapshot() const {
    return {allocs.load(std::memory_order_relaxed),
            frees.load(std::memory_order_relaxed),
            splits.load(std::memory_order_relaxed),
            merges.load(std::memory_order_relaxed)};
  }
};

class BuddyAllocator {
 public:
  static constexpr unsigned kMaxOrder = 10;  // 2^10 pages = 4 MB blocks

  BuddyAllocator(const hw::Topology& topo, std::vector<PageInfo>& pages);

  // Allocates a block of exactly 2^order pages from `node`.
  // Returns the head pfn or kNoPage if the zone cannot satisfy it.
  Pfn alloc_block(unsigned node, unsigned order);

  // Pops the smallest free block of order >= min_order from `node`
  // without splitting it -- the refill primitive of Algorithm 1
  // ("if free_list[i] is empty, continue // try next order").
  // Returns {pfn, order}.
  std::optional<std::pair<Pfn, unsigned>> pop_any_block(unsigned node,
                                                        unsigned min_order);

  // Batched pop_any_block: pops up to `max_blocks` blocks of order >=
  // min_order under ONE zone-lock acquisition (the batched Algorithm-2
  // refill primitive). Stops early when the zone runs dry. An armed
  // kBuddyAlloc failpoint fails the whole batch, like pop_any_block.
  std::vector<std::pair<Pfn, unsigned>> pop_blocks(unsigned node,
                                                   unsigned min_order,
                                                   unsigned max_blocks);

  // Frees a block of 2^order pages, coalescing with free buddies.
  void free_block(Pfn pfn, unsigned order);

  // Carves a specific page out of whatever free block contains it
  // (splitting as needed) and marks it allocated. Returns false if the
  // page is not currently free. The RAS path uses this to pull a faulty
  // frame out of the free lists for quarantine.
  bool carve_page(Pfn pfn);

  // carve_page + counts the page as permanently pinned. Used by warm-up
  // to emulate pinned kernel/page-cache pages that keep the free lists
  // fragmented.
  bool reserve_page(Pfn pfn);

  // Emulates a warmed-up system (see file comment): shuffles block
  // order, runs `episodes` random alloc/free rounds, and pins
  // ~zone/2^frag_shift pages at random positions so free memory stays
  // fragmented into small, shuffled runs (a fresh-boot buddy would hand
  // out long physically contiguous runs, which no long-running system
  // does). Pass episodes = 0 to leave the zones pristine.
  // Boot-time only: not safe against concurrent alloc/free.
  void warm_up(Rng& rng, unsigned episodes = 256, unsigned frag_shift = 6);

  // Pages pinned by warm-up fragmentation (never returned).
  uint64_t reserved_pages() const {
    return reserved_.load(std::memory_order_relaxed);
  }

  // Wires the kernel's fault-injection registry into the allocation
  // entry points: an armed kBuddyAlloc failpoint makes alloc_block /
  // pop_any_block report an empty zone. nullptr disables injection.
  void set_failpoints(FailPoints* fp) { fail_ = fp; }

  // Snapshot of every free block as {head pfn, order}, by walking the
  // intrusive lists -- the invariant checker cross-checks this against
  // the per-zone page counters. Callers must hold the freeze (or
  // otherwise guarantee quiescence).
  std::vector<std::pair<Pfn, unsigned>> snapshot_free_blocks() const;

  // Stop-the-world support: acquires/releases every zone lock in
  // ascending node order (equal-rank acquisitions, see lock_rank.h).
  void freeze() const;
  void thaw() const;

  uint64_t free_pages(unsigned node) const {
    return zone_free_pages_[node].load(std::memory_order_relaxed);
  }
  uint64_t total_free_pages() const;
  unsigned num_nodes() const { return num_nodes_; }
  const BuddyStats& stats() const { return stats_; }

  // Test hook: is `pfn` the head of a free block of `order`?
  bool is_free_head(Pfn pfn, unsigned order) const;

 private:
  struct FreeList {
    Pfn head = kNoPage;
  };

  unsigned node_of(Pfn pfn) const {
    return static_cast<unsigned>(pfn / pages_per_node_);
  }
  FreeList& list(unsigned node, unsigned order) {
    return lists_[node * (kMaxOrder + 1) + order];
  }
  const FreeList& list(unsigned node, unsigned order) const {
    return lists_[node * (kMaxOrder + 1) + order];
  }
  // The push/remove/pop primitives require the zone's lock to be held
  // (or boot-time quiescence, for the constructor and warm_up).
  void push(unsigned node, unsigned order, Pfn pfn);
  void remove(unsigned node, unsigned order, Pfn pfn);
  Pfn pop(unsigned node, unsigned order);

  std::vector<PageInfo>& pages_;
  uint64_t pages_per_node_;
  uint64_t total_pages_;
  unsigned num_nodes_;
  std::vector<FreeList> lists_;          // [node][order]
  std::vector<Pfn> next_, prev_;         // intrusive links, indexed by pfn
  std::vector<uint8_t> free_order_;      // order if free head, kNotFree else
  std::unique_ptr<std::atomic<uint64_t>[]> zone_free_pages_;
  std::atomic<uint64_t> reserved_{0};
  FailPoints* fail_ = nullptr;
  BuddyStats stats_;
  mutable std::unique_ptr<util::RankedMutex<util::lock_rank::kBuddyZone>[]>
      zone_locks_;

  static constexpr uint8_t kNotFreeHead = 0xFF;
};

}  // namespace tint::os

#include "os/buddy.h"

#include <algorithm>

#include "util/assert.h"

namespace tint::os {

using ZoneLock = util::RankedMutex<util::lock_rank::kBuddyZone>;

BuddyAllocator::BuddyAllocator(const hw::Topology& topo,
                               std::vector<PageInfo>& pages)
    : pages_(pages),
      pages_per_node_(topo.pages_per_node()),
      total_pages_(topo.total_pages()),
      num_nodes_(topo.num_nodes()) {
  TINT_ASSERT(pages_.size() == total_pages_);
  TINT_ASSERT_MSG(total_pages_ <= kNoPage, "pfn space exceeds 32 bits");
  TINT_ASSERT_MSG(pages_per_node_ % (1ULL << kMaxOrder) == 0,
                  "node zone must be a multiple of the maximal block");
  lists_.assign(static_cast<size_t>(num_nodes_) * (kMaxOrder + 1), {});
  next_.assign(total_pages_, kNoPage);
  prev_.assign(total_pages_, kNoPage);
  free_order_.assign(total_pages_, kNotFreeHead);
  zone_free_pages_ = std::make_unique<std::atomic<uint64_t>[]>(num_nodes_);
  zone_locks_ = std::make_unique<ZoneLock[]>(num_nodes_);

  // Fresh boot: every zone is a run of maximal blocks.
  for (unsigned n = 0; n < num_nodes_; ++n) {
    const Pfn base = static_cast<Pfn>(n * pages_per_node_);
    for (uint64_t b = 0; b < pages_per_node_ >> kMaxOrder; ++b)
      push(n, kMaxOrder, base + static_cast<Pfn>(b << kMaxOrder));
  }
}

void BuddyAllocator::push(unsigned node, unsigned order, Pfn pfn) {
  TINT_DASSERT(free_order_[pfn] == kNotFreeHead);
  FreeList& fl = list(node, order);
  next_[pfn] = fl.head;
  prev_[pfn] = kNoPage;
  if (fl.head != kNoPage) prev_[fl.head] = pfn;
  fl.head = pfn;
  free_order_[pfn] = static_cast<uint8_t>(order);
  zone_free_pages_[node].fetch_add(1ULL << order, std::memory_order_relaxed);
  pages_[pfn].state = PageState::kBuddyFree;
}

void BuddyAllocator::remove(unsigned node, unsigned order, Pfn pfn) {
  TINT_DASSERT(free_order_[pfn] == order);
  FreeList& fl = list(node, order);
  if (prev_[pfn] != kNoPage)
    next_[prev_[pfn]] = next_[pfn];
  else
    fl.head = next_[pfn];
  if (next_[pfn] != kNoPage) prev_[next_[pfn]] = prev_[pfn];
  free_order_[pfn] = kNotFreeHead;
  zone_free_pages_[node].fetch_sub(1ULL << order, std::memory_order_relaxed);
}

Pfn BuddyAllocator::pop(unsigned node, unsigned order) {
  FreeList& fl = list(node, order);
  if (fl.head == kNoPage) return kNoPage;
  const Pfn pfn = fl.head;
  remove(node, order, pfn);
  return pfn;
}

Pfn BuddyAllocator::alloc_block(unsigned node, unsigned order) {
  TINT_ASSERT(order <= kMaxOrder && node < num_nodes_);
  if (fail_ && fail_->should_fail(FailPoint::kBuddyAlloc)) return kNoPage;
  std::lock_guard<ZoneLock> lk(zone_locks_[node]);
  unsigned o = order;
  Pfn pfn = kNoPage;
  for (; o <= kMaxOrder; ++o) {
    pfn = pop(node, o);
    if (pfn != kNoPage) break;
  }
  if (pfn == kNoPage) return kNoPage;
  // Split down, returning upper halves to the free lists.
  while (o > order) {
    --o;
    stats_.splits.fetch_add(1, std::memory_order_relaxed);
    push(node, o, pfn + (Pfn{1} << o));
  }
  stats_.allocs.fetch_add(1, std::memory_order_relaxed);
  pages_[pfn].state = PageState::kAllocated;
  return pfn;
}

std::optional<std::pair<Pfn, unsigned>> BuddyAllocator::pop_any_block(
    unsigned node, unsigned min_order) {
  if (fail_ && fail_->should_fail(FailPoint::kBuddyAlloc)) return std::nullopt;
  std::lock_guard<ZoneLock> lk(zone_locks_[node]);
  for (unsigned o = min_order; o <= kMaxOrder; ++o) {
    const Pfn pfn = pop(node, o);
    if (pfn != kNoPage) {
      stats_.allocs.fetch_add(1, std::memory_order_relaxed);
      pages_[pfn].state = PageState::kAllocated;
      return std::make_pair(pfn, o);
    }
  }
  return std::nullopt;
}

std::vector<std::pair<Pfn, unsigned>> BuddyAllocator::pop_blocks(
    unsigned node, unsigned min_order, unsigned max_blocks) {
  std::vector<std::pair<Pfn, unsigned>> blocks;
  if (fail_ && fail_->should_fail(FailPoint::kBuddyAlloc)) return blocks;
  blocks.reserve(max_blocks);
  std::lock_guard<ZoneLock> lk(zone_locks_[node]);
  for (unsigned b = 0; b < max_blocks; ++b) {
    Pfn pfn = kNoPage;
    unsigned o = min_order;
    for (; o <= kMaxOrder; ++o) {
      pfn = pop(node, o);
      if (pfn != kNoPage) break;
    }
    if (pfn == kNoPage) break;
    stats_.allocs.fetch_add(1, std::memory_order_relaxed);
    pages_[pfn].state = PageState::kAllocated;
    blocks.emplace_back(pfn, o);
  }
  return blocks;
}

void BuddyAllocator::free_block(Pfn pfn, unsigned order) {
  TINT_ASSERT(order <= kMaxOrder && pfn < total_pages_);
  const unsigned node = node_of(pfn);
  std::lock_guard<ZoneLock> lk(zone_locks_[node]);
  TINT_DASSERT(free_order_[pfn] == kNotFreeHead);
  stats_.frees.fetch_add(1, std::memory_order_relaxed);
  // Coalesce while the buddy block is free at the same order and in the
  // same zone (zones are block-aligned so the node check is redundant but
  // cheap insurance).
  while (order < kMaxOrder) {
    const Pfn buddy = pfn ^ (Pfn{1} << order);
    if (node_of(buddy) != node || free_order_[buddy] != order) break;
    remove(node, order, buddy);
    stats_.merges.fetch_add(1, std::memory_order_relaxed);
    pfn = std::min(pfn, buddy);
    ++order;
  }
  push(node, order, pfn);
}

bool BuddyAllocator::carve_page(Pfn pfn) {
  TINT_ASSERT(pfn < total_pages_);
  const unsigned node = node_of(pfn);
  std::lock_guard<ZoneLock> lk(zone_locks_[node]);
  // Find the free block containing pfn: its head is pfn with the low
  // `order` bits cleared, for some order at which that head is free.
  for (unsigned o = 0; o <= kMaxOrder; ++o) {
    const Pfn head = pfn & ~((Pfn{1} << o) - 1);
    if (free_order_[head] != o) continue;
    remove(node, o, head);
    // Split until only `pfn` remains allocated; every split returns the
    // half not containing pfn to the free lists.
    unsigned order = o;
    Pfn cur = head;
    while (order > 0) {
      --order;
      stats_.splits.fetch_add(1, std::memory_order_relaxed);
      const Pfn lower = cur;
      const Pfn upper = cur + (Pfn{1} << order);
      if (pfn >= upper) {
        push(node, order, lower);
        cur = upper;
      } else {
        push(node, order, upper);
        cur = lower;
      }
    }
    TINT_DASSERT(cur == pfn);
    pages_[pfn].state = PageState::kAllocated;
    return true;
  }
  return false;
}

bool BuddyAllocator::reserve_page(Pfn pfn) {
  if (!carve_page(pfn)) return false;
  reserved_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void BuddyAllocator::warm_up(Rng& rng, unsigned episodes, unsigned frag_shift) {
  if (episodes == 0) return;
  const unsigned nodes = num_nodes();
  // Permute each zone's maximal-block list (fresh boot inserts them in
  // descending pfn order, which is far too regular). Boot-time only:
  // pop/push run without the zone lock here.
  for (unsigned n = 0; n < nodes; ++n) {
    std::vector<Pfn> blocks;
    for (Pfn p = pop(n, kMaxOrder); p != kNoPage; p = pop(n, kMaxOrder))
      blocks.push_back(p);
    for (size_t i = blocks.size(); i > 1; --i)
      std::swap(blocks[i - 1], blocks[rng.next_below(i)]);
    for (Pfn p : blocks) push(n, kMaxOrder, p);
  }
  // Seeded allocate/free episode: fragments and re-coalesces the lists in
  // a random order, leaving a realistic mixture.
  std::vector<std::pair<Pfn, unsigned>> held;
  for (unsigned e = 0; e < episodes; ++e) {
    const unsigned node = static_cast<unsigned>(rng.next_below(nodes));
    const unsigned order = static_cast<unsigned>(rng.next_below(7));
    const Pfn p = alloc_block(node, order);
    if (p != kNoPage) held.emplace_back(p, order);
    // Randomly release some of what we hold.
    while (!held.empty() && rng.next_bool(0.4)) {
      const size_t i = rng.next_below(held.size());
      free_block(held[i].first, held[i].second);
      held[i] = held.back();
      held.pop_back();
    }
  }
  for (auto [p, o] : held) free_block(p, o);

  // Pin random pages so free memory stays fragmented into small shuffled
  // runs (frag_shift = 6 pins ~1.6% of each zone, splitting essentially
  // every maximal block into fragments of a few dozen pages).
  if (frag_shift > 0) {
    for (unsigned n = 0; n < nodes; ++n) {
      const uint64_t base = static_cast<uint64_t>(n) * pages_per_node_;
      const uint64_t pins = pages_per_node_ >> frag_shift;
      for (uint64_t i = 0; i < pins; ++i)
        reserve_page(static_cast<Pfn>(base + rng.next_below(pages_per_node_)));
    }
  }
  // Warm-up traffic is not part of any experiment.
  stats_.allocs.store(0, std::memory_order_relaxed);
  stats_.frees.store(0, std::memory_order_relaxed);
  stats_.splits.store(0, std::memory_order_relaxed);
  stats_.merges.store(0, std::memory_order_relaxed);
}

std::vector<std::pair<Pfn, unsigned>> BuddyAllocator::snapshot_free_blocks()
    const {
  std::vector<std::pair<Pfn, unsigned>> blocks;
  for (unsigned n = 0; n < num_nodes(); ++n)
    for (unsigned o = 0; o <= kMaxOrder; ++o)
      for (Pfn p = list(n, o).head; p != kNoPage; p = next_[p])
        blocks.emplace_back(p, o);
  return blocks;
}

void BuddyAllocator::freeze() const {
  for (unsigned n = 0; n < num_nodes_; ++n) zone_locks_[n].lock();
}

void BuddyAllocator::thaw() const {
  for (unsigned n = num_nodes_; n-- > 0;) zone_locks_[n].unlock();
}

uint64_t BuddyAllocator::total_free_pages() const {
  uint64_t total = 0;
  for (unsigned n = 0; n < num_nodes_; ++n)
    total += zone_free_pages_[n].load(std::memory_order_relaxed);
  return total;
}

bool BuddyAllocator::is_free_head(Pfn pfn, unsigned order) const {
  return pfn < total_pages_ && free_order_[pfn] == order;
}

}  // namespace tint::os

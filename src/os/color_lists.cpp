#include "os/color_lists.h"

#include "util/assert.h"

namespace tint::os {

using Shard = util::RankedMutex<util::lock_rank::kColorShard>;

namespace {
unsigned pow2_shards(unsigned shards) {
  unsigned n = 1;
  while (n < (shards == 0 ? 64u : shards)) n <<= 1;
  return n;
}
}  // namespace

// Probe-aware shard acquisition: when the contention probe is open,
// count the acquisition and whether the shard was already held (the
// per-shard flag is set strictly inside the mutex hold, so a set flag
// means a concurrent holder). Closed probe: one predicted-false branch.
class ColorLists::ShardGuard {
 public:
  ShardGuard(const ColorLists& cl, size_t k)
      : cl_(cl), k_(k & (cl.nshards_ - 1)),
        probed_(cl.probe_open_.load(std::memory_order_relaxed)) {
    if (probed_) {
      cl_.probe_acq_.fetch_add(1, std::memory_order_relaxed);
      if (cl_.held_[k_].load(std::memory_order_relaxed) != 0)
        cl_.probe_cont_.fetch_add(1, std::memory_order_relaxed);
    }
    cl_.shards_[k_].lock();
    if (probed_) cl_.held_[k_].store(1, std::memory_order_relaxed);
  }
  ~ShardGuard() {
    if (probed_) cl_.held_[k_].store(0, std::memory_order_relaxed);
    cl_.shards_[k_].unlock();
  }
  ShardGuard(const ShardGuard&) = delete;
  ShardGuard& operator=(const ShardGuard&) = delete;

 private:
  const ColorLists& cl_;
  size_t k_;
  bool probed_;
};

ColorLists::ColorLists(unsigned num_bank_colors, unsigned num_llc_colors,
                       uint64_t total_pages, unsigned shards)
    : nb_(num_bank_colors), nl_(num_llc_colors) {
  nshards_ = pow2_shards(shards);
  heads_.assign(static_cast<size_t>(nb_) * nl_, kNoPage);
  counts_ = std::make_unique<std::atomic<uint64_t>[]>(
      static_cast<size_t>(nb_) * nl_);
  next_.assign(total_pages, kNoPage);
  shards_ = std::make_unique<Shard[]>(nshards_);
  held_ = std::make_unique<std::atomic<uint8_t>[]>(nshards_);
  for (unsigned s = 0; s < nshards_; ++s)
    held_[s].store(0, std::memory_order_relaxed);
}

void ColorLists::probe_begin() {
  probe_acq_.store(0, std::memory_order_relaxed);
  probe_cont_.store(0, std::memory_order_relaxed);
  for (unsigned s = 0; s < nshards_; ++s)
    held_[s].store(0, std::memory_order_relaxed);
  probe_open_.store(true, std::memory_order_release);
}

ColorLists::ProbeReport ColorLists::probe_end() {
  probe_open_.store(false, std::memory_order_release);
  return {probe_acq_.load(std::memory_order_relaxed),
          probe_cont_.load(std::memory_order_relaxed)};
}

unsigned ColorLists::reshard(unsigned shards) {
  const unsigned n = pow2_shards(shards);
  if (n == nshards_) return 0;
  // The caller holds every locker quiesced, so no thread is inside (or
  // spinning toward) the old array when it dies.
  nshards_ = n;
  shards_ = std::make_unique<Shard[]>(n);
  held_ = std::make_unique<std::atomic<uint8_t>[]>(n);
  for (unsigned s = 0; s < n; ++s) held_[s].store(0, std::memory_order_relaxed);
  return n;
}

void ColorLists::create_color_list(Pfn head, unsigned order,
                                   std::vector<PageInfo>& pages) {
  const Pfn count = Pfn{1} << order;
  for (Pfn i = 0; i < count; ++i) {
    const Pfn pfn = head + i;
    PageInfo& pi = pages[pfn];
    const size_t k = idx(pi.bank_color, pi.llc_color);
    ShardGuard lk(*this, k);
    next_[pfn] = heads_[k];
    heads_[k] = pfn;
    counts_[k].fetch_add(1, std::memory_order_relaxed);
    total_.fetch_add(1, std::memory_order_relaxed);
    pi.state = PageState::kColorFree;
  }
}

uint64_t ColorLists::refill_batch(
    const std::vector<std::pair<Pfn, unsigned>>& blocks,
    std::vector<PageInfo>& pages, std::vector<Pfn>* taken, unsigned take_mem,
    unsigned take_llc, unsigned take_max) {
  // Bucket every page of every block by combo index first, so the lock
  // phase below can splice whole per-combo chains in one acquisition.
  struct Bucket {
    size_t k;
    std::vector<Pfn> pfns;
  };
  std::vector<Bucket> buckets;
  const size_t take_k =
      take_max > 0 ? idx(take_mem, take_llc) : static_cast<size_t>(-1);
  unsigned took = 0;
  for (const auto& [head, order] : blocks) {
    const Pfn count = Pfn{1} << order;
    for (Pfn i = 0; i < count; ++i) {
      const Pfn pfn = head + i;
      const PageInfo& pi = pages[pfn];
      const size_t k = idx(pi.bank_color, pi.llc_color);
      if (k == take_k && took < take_max) {
        taken->push_back(pfn);  // stays kAllocated; the caller owns it
        ++took;
        continue;
      }
      Bucket* b = nullptr;
      for (Bucket& cand : buckets)
        if (cand.k == k) {
          b = &cand;
          break;
        }
      if (!b) {
        buckets.push_back({k, {}});
        b = &buckets.back();
      }
      b->pfns.push_back(pfn);
    }
  }
  uint64_t scattered = 0;
  for (Bucket& b : buckets) {
    ShardGuard lk(*this, b.k);
    for (const Pfn pfn : b.pfns) {
      next_[pfn] = heads_[b.k];
      heads_[b.k] = pfn;
      pages[pfn].state = PageState::kColorFree;
      pages[pfn].owner = kNoTask;
    }
    counts_[b.k].fetch_add(b.pfns.size(), std::memory_order_relaxed);
    total_.fetch_add(b.pfns.size(), std::memory_order_relaxed);
    scattered += b.pfns.size();
  }
  return scattered;
}

Pfn ColorLists::pop(unsigned mem_id, unsigned llc_id,
                    std::vector<PageInfo>& pages) {
  const size_t k = idx(mem_id, llc_id);
  ShardGuard lk(*this, k);
  const Pfn pfn = heads_[k];
  if (pfn == kNoPage) return kNoPage;
  heads_[k] = next_[pfn];
  next_[pfn] = kNoPage;
  counts_[k].fetch_sub(1, std::memory_order_relaxed);
  total_.fetch_sub(1, std::memory_order_relaxed);
  pages[pfn].state = PageState::kAllocated;
  return pfn;
}

Pfn ColorLists::pop_any_in_bank_range(unsigned mem_lo, unsigned mem_hi,
                                      std::vector<PageInfo>& pages) {
  TINT_DASSERT(mem_lo < mem_hi && mem_hi <= nb_);
  for (unsigned m = mem_lo; m < mem_hi; ++m) {
    for (unsigned l = 0; l < nl_; ++l) {
      // Unlocked population peek; pop() re-checks under the shard lock,
      // so a concurrent drain just makes us scan on.
      if (counts_[idx(m, l)].load(std::memory_order_relaxed) == 0) continue;
      const Pfn pfn = pop(m, l, pages);
      if (pfn != kNoPage) return pfn;
    }
  }
  return kNoPage;
}

bool ColorLists::remove(Pfn pfn, const std::vector<PageInfo>& pages) {
  const PageInfo& pi = pages[pfn];
  const size_t k = idx(pi.bank_color, pi.llc_color);
  ShardGuard lk(*this, k);
  Pfn prev = kNoPage;
  for (Pfn p = heads_[k]; p != kNoPage; prev = p, p = next_[p]) {
    if (p != pfn) continue;
    if (prev == kNoPage)
      heads_[k] = next_[p];
    else
      next_[prev] = next_[p];
    next_[p] = kNoPage;
    counts_[k].fetch_sub(1, std::memory_order_relaxed);
    total_.fetch_sub(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

std::vector<Pfn> ColorLists::drain_bank_range(unsigned mem_lo,
                                              unsigned mem_hi) {
  TINT_DASSERT(mem_lo < mem_hi && mem_hi <= nb_);
  std::vector<Pfn> drained;
  for (unsigned m = mem_lo; m < mem_hi; ++m) {
    for (unsigned l = 0; l < nl_; ++l) {
      const size_t k = idx(m, l);
      if (counts_[k].load(std::memory_order_relaxed) == 0) continue;
      ShardGuard lk(*this, k);
      uint64_t taken = 0;
      for (Pfn p = heads_[k]; p != kNoPage; ++taken) {
        const Pfn nxt = next_[p];
        next_[p] = kNoPage;
        drained.push_back(p);
        p = nxt;
      }
      heads_[k] = kNoPage;
      counts_[k].fetch_sub(taken, std::memory_order_relaxed);
      total_.fetch_sub(taken, std::memory_order_relaxed);
    }
  }
  return drained;
}

std::vector<Pfn> ColorLists::snapshot_parked() const {
  std::vector<Pfn> parked;
  parked.reserve(total_parked());
  for (const Pfn head : heads_)
    for (Pfn p = head; p != kNoPage; p = next_[p]) parked.push_back(p);
  return parked;
}

void ColorLists::freeze() const {
  for (unsigned s = 0; s < nshards_; ++s) shards_[s].lock();
}

void ColorLists::thaw() const {
  for (unsigned s = nshards_; s-- > 0;) shards_[s].unlock();
}

void ColorLists::push(Pfn pfn, std::vector<PageInfo>& pages) {
  PageInfo& pi = pages[pfn];
  TINT_DASSERT(pi.state != PageState::kColorFree);
  const size_t k = idx(pi.bank_color, pi.llc_color);
  ShardGuard lk(*this, k);
  next_[pfn] = heads_[k];
  heads_[k] = pfn;
  counts_[k].fetch_add(1, std::memory_order_relaxed);
  total_.fetch_add(1, std::memory_order_relaxed);
  pi.state = PageState::kColorFree;
  pi.owner = kNoTask;
}

}  // namespace tint::os

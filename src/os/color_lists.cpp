#include "os/color_lists.h"

#include "util/assert.h"

namespace tint::os {

ColorLists::ColorLists(unsigned num_bank_colors, unsigned num_llc_colors,
                       uint64_t total_pages)
    : nb_(num_bank_colors), nl_(num_llc_colors) {
  heads_.assign(static_cast<size_t>(nb_) * nl_, kNoPage);
  counts_.assign(static_cast<size_t>(nb_) * nl_, 0);
  next_.assign(total_pages, kNoPage);
}

void ColorLists::create_color_list(Pfn head, unsigned order,
                                   std::vector<PageInfo>& pages) {
  const Pfn count = Pfn{1} << order;
  for (Pfn i = 0; i < count; ++i) {
    const Pfn pfn = head + i;
    PageInfo& pi = pages[pfn];
    const size_t k = idx(pi.bank_color, pi.llc_color);
    next_[pfn] = heads_[k];
    heads_[k] = pfn;
    ++counts_[k];
    ++total_;
    pi.state = PageState::kColorFree;
  }
}

Pfn ColorLists::pop(unsigned mem_id, unsigned llc_id) {
  const size_t k = idx(mem_id, llc_id);
  const Pfn pfn = heads_[k];
  if (pfn == kNoPage) return kNoPage;
  heads_[k] = next_[pfn];
  next_[pfn] = kNoPage;
  --counts_[k];
  --total_;
  return pfn;
}

Pfn ColorLists::pop_any_in_bank_range(unsigned mem_lo, unsigned mem_hi) {
  TINT_DASSERT(mem_lo < mem_hi && mem_hi <= nb_);
  for (unsigned m = mem_lo; m < mem_hi; ++m) {
    for (unsigned l = 0; l < nl_; ++l) {
      if (counts_[idx(m, l)] > 0) return pop(m, l);
    }
  }
  return kNoPage;
}

std::vector<Pfn> ColorLists::snapshot_parked() const {
  std::vector<Pfn> parked;
  parked.reserve(total_);
  for (const Pfn head : heads_)
    for (Pfn p = head; p != kNoPage; p = next_[p]) parked.push_back(p);
  return parked;
}

void ColorLists::push(Pfn pfn, std::vector<PageInfo>& pages) {
  PageInfo& pi = pages[pfn];
  TINT_DASSERT(pi.state != PageState::kColorFree);
  const size_t k = idx(pi.bank_color, pi.llc_color);
  next_[pfn] = heads_[k];
  heads_[k] = pfn;
  ++counts_[k];
  ++total_;
  pi.state = PageState::kColorFree;
  pi.owner = kNoTask;
}

}  // namespace tint::os

// The colored free lists of TintMalloc (Section III.C).
//
// "TintMalloc maintains a free list and 128*32 color lists simultaneously
// inside the Linux kernel. Those color lists are defined as a matrix of
// color_list[MEM_ID][cache_ID]."
//
// Pages migrate from the buddy free lists into this matrix when
// `create_color_list` (Algorithm 2) splits a buddy block into single
// 4 KB pages; they are handed out by Algorithm 1 (in kernel.cpp) and
// returned here by free(). Pages never migrate back to the buddy
// allocator (as in the paper: once colorized, a frame stays colorized).
#pragma once

#include <cstdint>
#include <vector>

#include "os/page.h"

namespace tint::os {

class ColorLists {
 public:
  ColorLists(unsigned num_bank_colors, unsigned num_llc_colors,
             uint64_t total_pages);

  // Algorithm 2: scatter the 2^order pages of a buddy block into the
  // matrix according to each page's own colors.
  void create_color_list(Pfn head, unsigned order, std::vector<PageInfo>& pages);

  // Pops one page of the exact (MEM_ID, LLC_ID) combination; kNoPage if
  // the list is empty.
  Pfn pop(unsigned mem_id, unsigned llc_id);

  // Scavenges any parked page whose bank color lies in
  // [mem_lo, mem_hi): the default path's last resort once the buddy
  // zones are empty but colorized-but-unclaimed pages remain (a real
  // kernel would reclaim them under memory pressure).
  Pfn pop_any_in_bank_range(unsigned mem_lo, unsigned mem_hi);

  // Returns a previously popped page (free of colored heap space).
  void push(Pfn pfn, std::vector<PageInfo>& pages);

  uint64_t size(unsigned mem_id, unsigned llc_id) const {
    return counts_[idx(mem_id, llc_id)];
  }
  uint64_t total_parked() const { return total_; }
  unsigned num_bank_colors() const { return nb_; }
  unsigned num_llc_colors() const { return nl_; }

  // Every parked pfn, by walking the matrix lists -- the invariant
  // checker cross-checks this against the per-list counters.
  std::vector<Pfn> snapshot_parked() const;

 private:
  size_t idx(unsigned mem_id, unsigned llc_id) const {
    TINT_DASSERT(mem_id < nb_ && llc_id < nl_);
    return static_cast<size_t>(mem_id) * nl_ + llc_id;
  }

  unsigned nb_, nl_;
  std::vector<Pfn> heads_;        // matrix of singly-linked stacks
  std::vector<uint64_t> counts_;  // per-list population
  std::vector<Pfn> next_;         // intrusive links by pfn
  uint64_t total_ = 0;
};

}  // namespace tint::os

// The colored free lists of TintMalloc (Section III.C).
//
// "TintMalloc maintains a free list and 128*32 color lists simultaneously
// inside the Linux kernel. Those color lists are defined as a matrix of
// color_list[MEM_ID][cache_ID]."
//
// Pages migrate from the buddy free lists into this matrix when
// `create_color_list` (Algorithm 2) splits a buddy block into single
// 4 KB pages; they are handed out by Algorithm 1 (in kernel.cpp) and
// returned here by free(). Pages never migrate back to the buddy
// allocator (as in the paper: once colorized, a frame stays colorized).
//
// Thread safety: the matrix is guarded by a power-of-two shard array of mutexes, keyed by the
// (MEM_ID, LLC_ID) combo index, so concurrent tasks popping different
// combos never contend (per-task color sets exist precisely so parallel
// allocations don't collide -- the sharding mirrors that). Per-list and
// total populations are atomics, readable without a lock. A frame's
// intrusive `next_` link is owned by whichever list currently parks it;
// ownership handoffs synchronize through the shard mutexes.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "os/page.h"
#include "util/lock_rank.h"

namespace tint::os {

class ColorLists {
 public:
  // `shards`: lock-shard count (rounded up to a power of two; 0 picks
  // the legacy 64). More shards cut combo contention; fewer make the
  // stop-the-world freeze cheaper -- the Kernel derives a topology-
  // aware value (combos x cores, clamped) unless KernelConfig pins one.
  // Sharding only affects locking granularity, never list contents or
  // pop order, so any value is determinism-safe.
  ColorLists(unsigned num_bank_colors, unsigned num_llc_colors,
             uint64_t total_pages, unsigned shards = 0);

  unsigned num_shards() const { return nshards_; }

  // Algorithm 2: scatter the 2^order pages of a buddy block into the
  // matrix according to each page's own colors.
  void create_color_list(Pfn head, unsigned order, std::vector<PageInfo>& pages);

  // Batched Algorithm 2: scatters several buddy blocks at once, taking
  // each shard lock once per combo *bucket* instead of once per page
  // (create_color_list locks per page; with 10-page blocks and a hot
  // shard that is 1024 acquisitions where one will do). If `taken` is
  // non-null, up to `take_max` pages whose colors equal (take_mem,
  // take_llc) bypass the matrix entirely and are appended to `taken`
  // still in kAllocated state -- the magazine-refill direct handoff.
  // Returns the number of pages scattered into the matrix.
  uint64_t refill_batch(const std::vector<std::pair<Pfn, unsigned>>& blocks,
                        std::vector<PageInfo>& pages,
                        std::vector<Pfn>* taken = nullptr,
                        unsigned take_mem = 0, unsigned take_llc = 0,
                        unsigned take_max = 0);

  // Pops one page of the exact (MEM_ID, LLC_ID) combination; kNoPage if
  // the list is empty. The popped frame is stamped kAllocated under the
  // shard lock (like the buddy's pop paths): the caller exclusively
  // holds a frame whose state never reads as still-parked, so a later
  // free_pages can route it without seeing stale pool state.
  Pfn pop(unsigned mem_id, unsigned llc_id, std::vector<PageInfo>& pages);

  // Scavenges any parked page whose bank color lies in
  // [mem_lo, mem_hi): the default path's last resort once the buddy
  // zones are empty but colorized-but-unclaimed pages remain (a real
  // kernel would reclaim them under memory pressure).
  Pfn pop_any_in_bank_range(unsigned mem_lo, unsigned mem_hi,
                            std::vector<PageInfo>& pages);

  // Returns a previously popped page (free of colored heap space).
  void push(Pfn pfn, std::vector<PageInfo>& pages);

  // Unlinks one specific parked page (the frame's own colors name its
  // list). Returns false if the page is not currently parked there --
  // e.g. a concurrent pop claimed it first. The RAS path uses this to
  // quarantine a faulty frame in place.
  bool remove(Pfn pfn, const std::vector<PageInfo>& pages);

  // Takes *every* parked page whose bank color lies in [mem_lo, mem_hi)
  // in one pass (whole chains per combo, not repeated scans) -- the
  // node-offline drain. The frames are returned still in kColorFree
  // state, like pop(); the caller re-homes them.
  std::vector<Pfn> drain_bank_range(unsigned mem_lo, unsigned mem_hi);

  uint64_t size(unsigned mem_id, unsigned llc_id) const {
    return counts_[idx(mem_id, llc_id)].load(std::memory_order_relaxed);
  }
  uint64_t total_parked() const {
    return total_.load(std::memory_order_relaxed);
  }
  unsigned num_bank_colors() const { return nb_; }
  unsigned num_llc_colors() const { return nl_; }

  // Every parked pfn, by walking the matrix lists -- the invariant
  // checker cross-checks this against the per-list counters. Callers
  // must hold the freeze (or otherwise guarantee quiescence).
  std::vector<Pfn> snapshot_parked() const;

  // Stop-the-world support: acquires/releases every shard lock in
  // ascending index order (equal-rank acquisitions, see lock_rank.h).
  void freeze() const;
  void thaw() const;

  // --- contention probe (the ShardAdvisor's observation point) ---
  // While open, every shard acquisition in pop/push/remove/refill/drain
  // also checks a per-shard "held" flag: finding it set counts as a
  // contended acquisition (someone was already inside the shard). The
  // probe costs two relaxed atomic ops per acquisition while open and
  // one predicted-false branch while closed, so it can stay wired into
  // the hot path permanently and only be opened for sampling windows.
  // Counts are heuristic (a holder that predates probe_begin is not
  // flagged) -- exactly what a re-shard decision needs, no more.
  void probe_begin();
  struct ProbeReport {
    uint64_t acquisitions = 0;  // probed shard acquisitions
    uint64_t contended = 0;     // of those, the shard was already held
  };
  ProbeReport probe_end();

  // Online re-shard: swaps the shard-lock array to `shards` (rounded up
  // to a power of two; 0 picks the legacy 64). List contents, counts
  // and pop order are untouched -- sharding is pure lock granularity --
  // so the swap is invisible to determinism. The caller guarantees full
  // quiescence of every locker (the Kernel holds the mm lock exclusive
  // plus the ras lock). Returns the new count, 0 when it already
  // matches.
  unsigned reshard(unsigned shards);

 private:
  class ShardGuard;  // probe-aware RAII shard acquisition (in the .cpp)
  size_t idx(unsigned mem_id, unsigned llc_id) const {
    TINT_DASSERT(mem_id < nb_ && llc_id < nl_);
    return static_cast<size_t>(mem_id) * nl_ + llc_id;
  }
  util::RankedMutex<util::lock_rank::kColorShard>& shard(size_t k) const {
    return shards_[k & (nshards_ - 1)];  // nshards_ is a power of two
  }

  unsigned nb_, nl_;
  unsigned nshards_;
  std::vector<Pfn> heads_;        // matrix of singly-linked stacks
  std::unique_ptr<std::atomic<uint64_t>[]> counts_;  // per-list population
  std::vector<Pfn> next_;         // intrusive links by pfn
  std::atomic<uint64_t> total_{0};
  mutable std::unique_ptr<util::RankedMutex<util::lock_rank::kColorShard>[]>
      shards_;
  // Contention-probe state (all mutable: the probe observes, never
  // steers, so const paths may bump it).
  mutable std::atomic<bool> probe_open_{false};
  mutable std::atomic<uint64_t> probe_acq_{0};
  mutable std::atomic<uint64_t> probe_cont_{0};
  mutable std::unique_ptr<std::atomic<uint8_t>[]> held_;  // one per shard
};

}  // namespace tint::os

// Per-task SPSC rings for the allocation offload engine (SpeedMalloc
// style: a dedicated allocator core services requests over message
// rings, so the application's fast path never takes a shard or zone
// lock).
//
// Each offloaded task owns a pair of rings:
//
//   * completion ring -- engine -> task. The engine keeps it stocked
//     with frames allocated under the task's color constraints; the
//     task's colored fault pops one ("pop from a ring the engine keeps
//     full"). Producer: the engine thread. Consumer: the faulting task.
//   * request ring -- task -> engine. free_pages pushes the task's
//     colored frames here instead of taking the magazine/shard locks;
//     the engine absorbs them in batches in the background (recycling
//     still-valid frames straight back into the completion ring).
//     Producer: the freeing task. Consumer: the engine thread.
//
// SPSC discipline: each ring has exactly one producer side and one
// consumer side at a time. The engine's side is serialized by the
// task's engine_guard (one allocator worker services a task at a time;
// the registry lock, rank kOffloadRing, covers only attach, iteration
// and full freezes). The application's side is
// guarded by a tiny try-acquire spin guard per side: the hot path
// *tries* it and falls back to the magazine/shard path on failure (so
// it never blocks), while freezers -- the stop-the-world invariant
// walk, RAS poisoning's steal, teardown drains -- spin until they own
// it, which excludes the application deterministically. In the common
// case the guard is uncontended and costs one CAS + one store, less
// than the magazine's mutex + bin scan.
//
// Frames parked in either ring are in PageState::kRingOwned with their
// owner still set: a first-class free pool that the invariant checker
// counts, RAS can reach into (steal), and teardown drains back to the
// shared pools -- no frame is ever "in flight" in a place the
// conservation law cannot see.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "os/page.h"
#include "util/lock_rank.h"

namespace tint::os {

// Fixed-capacity single-producer/single-consumer ring of 64-bit values
// (Pfns on the kernel side; the heap reuses it for deferred tcache
// flush VAs). Cache-line-padded slots and indices, acquire/release
// publication, no locks on either side. Capacity is rounded up to a
// power of two; one slot is sacrificed to distinguish full from empty.
class SpscRing {
 public:
  static constexpr uint64_t kEmpty = ~0ULL;

  explicit SpscRing(unsigned depth);

  // Usable slots. Safe to query lock-free concurrently with a
  // freeze-swap resize() (the only writer of mask_): the load is
  // relaxed and a stale answer merely delays one tuner decision.
  unsigned capacity() const {
    return mask_.load(std::memory_order_relaxed);
  }

  // Producer side. False when full (the caller falls back).
  bool push(uint64_t v);

  // Consumer side. kEmpty when the ring is empty.
  uint64_t pop();

  // Approximate unless one side is externally frozen.
  unsigned size() const {
    const uint32_t t = tail_.load(std::memory_order_acquire);
    const uint32_t h = head_.load(std::memory_order_acquire);
    return t - h;
  }
  bool empty() const { return size() == 0; }

  // Cumulative successful pops -- the engine's drain-rate observation
  // point (DReAM-style observed-counter pacing reads the delta).
  uint64_t pops() const { return pops_.load(std::memory_order_relaxed); }

  // Re-sizes the ring in place to `depth` usable slots (rounded up to a
  // power of two, min 4), DISCARDING the slot contents -- the caller
  // must hold both sides frozen and have captured every parked value
  // via snapshot() first, re-pushing (or re-homing) them afterwards so
  // frame conservation holds across the swap. snapshot() rather than
  // drain_all() keeps the cumulative pops_ counter honest: pops_ counts
  // *consumer-side* pops and deliberately survives the resize -- the
  // engine paces off its deltas, and either resetting or inflating it
  // mid-watch would corrupt the next delta.
  void resize(unsigned depth);

  // Pops everything (consumer side). Teardown/exit drains use this with
  // both sides frozen, acting as the consumer.
  std::vector<uint64_t> drain_all();

  // Every parked value, oldest first. Requires both sides frozen (or
  // quiescence): the walk reads the indices unsynchronized.
  std::vector<uint64_t> snapshot() const;

  // Removes one specific value, compacting the occupied span. Requires
  // both sides frozen -- the RAS steal path owns the freeze. False when
  // the value is not currently parked here.
  bool steal(uint64_t v);

 private:
  struct alignas(64) Slot {
    std::atomic<uint64_t> v{0};
  };
  alignas(64) std::atomic<uint32_t> head_{0};  // consumer index
  alignas(64) std::atomic<uint32_t> tail_{0};  // producer index
  alignas(64) std::atomic<uint64_t> pops_{0};
  // Atomic only for the unguarded capacity() query racing a resize;
  // push/pop/snapshot/steal are serialized against resize by the ring
  // guards (resize requires both sides frozen), so they load relaxed.
  std::atomic<uint32_t> mask_;
  std::unique_ptr<Slot[]> slots_;
};

// Try-acquire spin guard for one application side of a ring (see the
// file comment). Not a ranked mutex: holders never block inside the
// critical section on anything that could wait on this guard (ring ops
// plus re-homing pushes to the shards, which never touch guards), so
// the effective global order stays acyclic: kOffloadRing < guard <
// kMagazine/kColorShard.
class RingSideGuard {
 public:
  bool try_lock() {
    uint32_t expected = 0;
    return v_.compare_exchange_strong(expected, 1, std::memory_order_acquire,
                                      std::memory_order_relaxed);
  }
  void lock() {
    while (!try_lock()) std::this_thread::yield();
  }
  void unlock() { v_.store(0, std::memory_order_release); }

 private:
  std::atomic<uint32_t> v_{0};
};

// The ring pair of one offloaded task.
struct TaskRings {
  explicit TaskRings(unsigned depth) : completion(depth), request(depth) {}
  SpscRing completion;       // engine -> task: stocked colored frames
  SpscRing request;          // task -> engine: frees awaiting absorption
  RingSideGuard alloc_guard; // app consumer side of `completion`
  RingSideGuard free_guard;  // app producer side of `request`
  // Engine side of *both* rings. One allocator worker at a time may
  // service, drain or resize this task; per-node workers each spin-own
  // the guard of the tasks homed on their node, so two workers on two
  // nodes never serialize on a shared lock (the registry's mu_ shrinks
  // to attach + freeze + registry iteration). Acquisition order for
  // full freezes: registry mu_ -> engine_guard -> app guards.
  RingSideGuard engine_guard;
  // Per-task stall observation points for the adaptive depth tuner
  // (DReAM-style: the tuner reads deltas and EWMA-smooths them).
  // full_stalls: frees that found the request ring full (ring too
  // shallow for the task's free burst). empty_stalls: colored faults
  // that found the completion ring empty or the guard busy (demand
  // outrunning restock).
  std::atomic<uint64_t> full_stalls{0};
  std::atomic<uint64_t> empty_stalls{0};
  // Producer side of `completion`. Normally the engine's (restock +
  // absorb-recycle, under the engine lock), but the *direct recycle*
  // fast path lets free_pages push a still-valid frame straight back
  // into the owner's completion ring -- the steady-state round trip is
  // then one SPSC pop + one SPSC push with the engine idle. The guard
  // keeps the ring single-producer: the engine spin-acquires it for
  // its pushes, the app try-acquires and falls back.
  RingSideGuard recycle_guard;

  // Freezes/thaws every application side (the engine side is excluded
  // by engine_guard, which every freezer/drainer already holds).
  void freeze_app_sides() {
    alloc_guard.lock();
    free_guard.lock();
    recycle_guard.lock();
  }
  void thaw_app_sides() {
    recycle_guard.unlock();
    free_guard.unlock();
    alloc_guard.unlock();
  }
};

// Registry of per-task ring pairs. Lookup is lock-free (one atomic
// pointer load on the fault/free fast path); attachment and every
// engine-side ring operation serialize on the engine lock (rank
// kOffloadRing -- above kRas so poisoning can steal while holding the
// ras lock, below kMagazine/kColorShard/kBuddyZone so the engine can
// re-home frames while holding it).
class OffloadRings {
 public:
  explicit OffloadRings(unsigned depth);

  // Lock-free; nullptr when the task was never attached (or its id is
  // beyond the direct-map bound).
  TaskRings* rings_of(TaskId id) const {
    if (id >= kMaxTasks) return nullptr;
    return slots_[id].load(std::memory_order_acquire);
  }

  // Idempotent; serializes on the engine lock. Returns the task's rings
  // (freshly built or pre-existing), or nullptr beyond the bound.
  TaskRings* attach(TaskId id);

  // Registry lock: attach, registry iteration and full freezes hold
  // it. Per-task engine-side ring operations (restock, absorb, drains,
  // resizes) serialize on the task's own engine_guard instead, so
  // per-node allocator workers never contend here.
  void lock() const { mu_.lock(); }
  void unlock() const { mu_.unlock(); }

  // Full freeze: registry lock + the engine guard + both app guards of
  // every attached ring pair (in that order). The stop-the-world
  // invariant walk and the scrub sweep hold this across their
  // structural walks; holding every engine guard drains in-flight
  // service rounds of all workers first.
  void freeze() const;
  void thaw() const;

  // Attached ids in attach order. Callers hold the engine lock or the
  // freeze (or otherwise guarantee quiescence): the vector only grows,
  // under the engine lock.
  const std::vector<TaskId>& attached_unsafe() const { return ids_; }

  unsigned depth() const { return depth_; }

 private:
  // Direct-map bound on offloadable task ids: one atomic pointer per
  // slot, allocated once at boot (512 KB). Ids beyond it simply do not
  // offload -- colo-scale churn creates tasks far past any realistic
  // offload working set, and the fast path must not pay a lookup that
  // chases chunks.
  static constexpr TaskId kMaxTasks = 65536;

  unsigned depth_;
  std::unique_ptr<std::atomic<TaskRings*>[]> slots_;
  std::vector<std::unique_ptr<TaskRings>> owned_;  // engine lock
  std::vector<TaskId> ids_;                        // engine lock
  mutable util::RankedMutex<util::lock_rank::kOffloadRing> mu_;
};

}  // namespace tint::os

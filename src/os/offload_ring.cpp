#include "os/offload_ring.h"

#include "util/assert.h"

namespace tint::os {

namespace {
unsigned round_up_pow2(unsigned v) {
  unsigned p = 1;
  while (p < v) p <<= 1;
  return p;
}
}  // namespace

SpscRing::SpscRing(unsigned depth) {
  // One extra slot so `tail - head == mask_` means full without
  // conflating it with empty; keep at least a handful of usable slots.
  unsigned cap = round_up_pow2(depth < 4 ? 4 : depth);
  mask_.store(cap - 1, std::memory_order_relaxed);
  slots_ = std::make_unique<Slot[]>(cap);
}

bool SpscRing::push(uint64_t v) {
  const uint32_t mask = mask_.load(std::memory_order_relaxed);
  const uint32_t t = tail_.load(std::memory_order_relaxed);
  const uint32_t h = head_.load(std::memory_order_acquire);
  if (t - h >= mask) return false;  // full (one slot sacrificed)
  // Relaxed slot store is fine: the release store of tail_ below orders
  // it (and the caller's PageInfo state write) before any consumer that
  // acquires the new tail.
  slots_[t & mask].v.store(v, std::memory_order_relaxed);
  tail_.store(t + 1, std::memory_order_release);
  return true;
}

uint64_t SpscRing::pop() {
  const uint32_t h = head_.load(std::memory_order_relaxed);
  const uint32_t t = tail_.load(std::memory_order_acquire);
  if (t == h) return kEmpty;
  const uint32_t mask = mask_.load(std::memory_order_relaxed);
  const uint64_t v = slots_[h & mask].v.load(std::memory_order_relaxed);
  head_.store(h + 1, std::memory_order_release);
  pops_.fetch_add(1, std::memory_order_relaxed);
  return v;
}

void SpscRing::resize(unsigned depth) {
  const unsigned cap = round_up_pow2(depth < 4 ? 4 : depth);
  if (cap == mask_.load(std::memory_order_relaxed) + 1) return;
  mask_.store(cap - 1, std::memory_order_relaxed);
  slots_ = std::make_unique<Slot[]>(cap);
  // Fresh indices; pops_ survives (see header).
  head_.store(0, std::memory_order_relaxed);
  tail_.store(0, std::memory_order_relaxed);
}

std::vector<uint64_t> SpscRing::drain_all() {
  std::vector<uint64_t> out;
  for (uint64_t v = pop(); v != kEmpty; v = pop()) out.push_back(v);
  return out;
}

std::vector<uint64_t> SpscRing::snapshot() const {
  const uint32_t h = head_.load(std::memory_order_acquire);
  const uint32_t t = tail_.load(std::memory_order_acquire);
  const uint32_t mask = mask_.load(std::memory_order_relaxed);
  std::vector<uint64_t> out;
  out.reserve(t - h);
  for (uint32_t i = h; i != t; ++i)
    out.push_back(slots_[i & mask].v.load(std::memory_order_relaxed));
  return out;
}

bool SpscRing::steal(uint64_t v) {
  const uint32_t h = head_.load(std::memory_order_acquire);
  const uint32_t t = tail_.load(std::memory_order_acquire);
  const uint32_t mask = mask_.load(std::memory_order_relaxed);
  for (uint32_t i = h; i != t; ++i) {
    if (slots_[i & mask].v.load(std::memory_order_relaxed) != v) continue;
    // Compact the occupied span toward the tail: shift everything after
    // the hole down by one, then retract the tail. Both sides are
    // frozen, so plain index arithmetic is safe.
    for (uint32_t j = i + 1; j != t; ++j) {
      slots_[(j - 1) & mask].v.store(
          slots_[j & mask].v.load(std::memory_order_relaxed),
          std::memory_order_relaxed);
    }
    tail_.store(t - 1, std::memory_order_release);
    return true;
  }
  return false;
}

OffloadRings::OffloadRings(unsigned depth)
    : depth_(depth),
      slots_(std::make_unique<std::atomic<TaskRings*>[]>(kMaxTasks)) {
  for (TaskId i = 0; i < kMaxTasks; ++i)
    slots_[i].store(nullptr, std::memory_order_relaxed);
}

TaskRings* OffloadRings::attach(TaskId id) {
  if (id >= kMaxTasks) return nullptr;
  std::lock_guard<util::RankedMutex<util::lock_rank::kOffloadRing>> lk(mu_);
  if (TaskRings* existing = slots_[id].load(std::memory_order_acquire))
    return existing;
  owned_.push_back(std::make_unique<TaskRings>(depth_));
  TaskRings* r = owned_.back().get();
  ids_.push_back(id);
  slots_[id].store(r, std::memory_order_release);
  return r;
}

void OffloadRings::freeze() const {
  mu_.lock();
  for (TaskId id : ids_) {
    TaskRings* r = slots_[id].load(std::memory_order_acquire);
    // Engine guard first: waits out any worker mid-service-round on
    // this task (workers never take mu_, so this cannot deadlock), then
    // the app sides.
    r->engine_guard.lock();
    r->freeze_app_sides();
  }
}

void OffloadRings::thaw() const {
  for (size_t i = ids_.size(); i-- > 0;) {
    TaskRings* r = slots_[ids_[i]].load(std::memory_order_acquire);
    r->thaw_app_sides();
    r->engine_guard.unlock();
  }
  mu_.unlock();
}

}  // namespace tint::os

// Task control block (TCB) state, mirroring the fields TintMalloc adds
// to Linux's task_struct (Section III.B):
//
//   "zero-sized mmap() calls result in memory controller/bank and LLC
//    colors to be saved in the task_struct ... In addition, two coloring
//    flags using_bank and using_llc are set in task_struct by kernel."
//
// A task also records its core pinning (the paper assumes task-to-core
// assignment is static) and allocation statistics.
//
// Thread safety: allocation statistics and the combo cursor are atomics
// -- any thread's fault may bump them. The color sets are published as
// *immutable snapshots* behind an atomic pointer: a reader (a fault, the
// advisor, the ColorGuard's page walk) loads one `ColorSet` and sees an
// internally consistent view no matter how many color-control calls or
// live re-colorings race with it. Writers (SET_*/CLEAR_* color control,
// `replace_colors` used by Kernel::recolor_task) serialize on a small
// ranked mutex, build the next snapshot aside, and publish it with one
// release store. Old snapshots are retained for the task's lifetime
// (color changes are rare control-plane events), so references handed
// out by the accessors below never dangle. The `TaskTable` below makes
// creation and lookup safe from any thread; lookups are lock-free (see
// the class comment).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "os/page.h"
#include "os/page_magazine.h"
#include "util/lock_rank.h"

namespace tint::os {

struct TaskAllocStats {
  std::atomic<uint64_t> page_faults{0};
  std::atomic<uint64_t> colored_pages{0};   // pages served from color lists
  std::atomic<uint64_t> default_pages{0};   // pages served by the default path
  std::atomic<uint64_t> fallback_pages{0};  // colored request fell back (dry)
  std::atomic<uint64_t> refill_blocks{0};   // buddy blocks colorized for us
  std::atomic<uint64_t> refill_pages{0};    // pages scattered by those refills
  std::atomic<uint64_t> remote_pages{0};    // pages not on the local node
  // Degradation-ladder detail (see os/errors.h). Widened and scavenged
  // pages are *also* counted in default_pages/fallback_pages, preserving
  // the page_faults == colored_pages + default_pages identity.
  std::atomic<uint64_t> widened_pages{0};   // constraint relaxed, node kept
  std::atomic<uint64_t> scavenged_pages{0}; // reclaimed stranded frames
  std::atomic<uint64_t> failed_allocs{0};   // faults the ladder rejected
  // Pages the RAS subsystem moved off a faulty frame on our behalf.
  // Counted on top of the fault-time counters above: a migrated page was
  // already attributed to a ladder stage when it first faulted in.
  std::atomic<uint64_t> migrated_pages{0};
  // Fast-path cache detail: colored allocations served from this task's
  // page magazine (magazine hits are *also* counted in colored_pages)
  // and colored allocations that found the magazine empty or bypassed.
  std::atomic<uint64_t> magazine_hits{0};
  std::atomic<uint64_t> magazine_misses{0};

  struct Snapshot {
    uint64_t page_faults = 0;
    uint64_t colored_pages = 0;
    uint64_t default_pages = 0;
    uint64_t fallback_pages = 0;
    uint64_t refill_blocks = 0;
    uint64_t refill_pages = 0;
    uint64_t remote_pages = 0;
    uint64_t widened_pages = 0;
    uint64_t scavenged_pages = 0;
    uint64_t failed_allocs = 0;
    uint64_t migrated_pages = 0;
    uint64_t magazine_hits = 0;
    uint64_t magazine_misses = 0;
  };
  Snapshot snapshot() const {
    const auto ld = [](const std::atomic<uint64_t>& a) {
      return a.load(std::memory_order_relaxed);
    };
    return {ld(page_faults),  ld(colored_pages),   ld(default_pages),
            ld(fallback_pages), ld(refill_blocks), ld(refill_pages),
            ld(remote_pages), ld(widened_pages),   ld(scavenged_pages),
            ld(failed_allocs), ld(migrated_pages), ld(magazine_hits),
            ld(magazine_misses)};
  }
};

class Task {
 public:
  // One immutable view of the TCB color payload. Never mutated after
  // publication; readers that need a consistent multi-field view load it
  // once via colors() and keep using the same snapshot.
  struct ColorSet {
    bool using_bank = false;
    bool using_llc = false;
    std::vector<bool> mem_colors;
    std::vector<bool> llc_colors;
    // Materialized color id lists (ascending), for the allocator's scan.
    std::vector<uint16_t> mem_list;
    std::vector<uint8_t> llc_list;
  };

  Task(TaskId id, unsigned core, unsigned local_node, unsigned num_bank_colors,
       unsigned num_llc_colors, unsigned magazine_capacity = 0);

  TaskId id() const { return id_; }
  unsigned core() const { return core_; }
  unsigned local_node() const { return local_node_; }

  // Lifecycle flag. Task objects live for the kernel's lifetime (the
  // TaskTable never frees a slot), so "exit" is a state, not a
  // destruction: exit_task/reap_task clear the flag, and control-plane
  // observers that cache TaskIds across a time window (the ColorGuard's
  // sample->heal gap, the admission controller's registry) must check it
  // before acting on a stored id. The *allocation* path deliberately
  // does not: a racing fault of an exiting task is resolved by the
  // teardown's exclusive mm hold, not by this flag.
  bool alive() const { return alive_.load(std::memory_order_acquire) != 0; }
  void set_alive(bool alive) {
    alive_.store(alive ? 1 : 0, std::memory_order_release);
  }

  // --- coloring flags & sets (the TCB payload) ---
  // The current snapshot. Valid for the task's lifetime (superseded
  // snapshots are retained), but a later load may return a newer set.
  const ColorSet& colors() const {
    return *colors_.load(std::memory_order_acquire);
  }

  bool using_bank() const { return colors().using_bank; }
  bool using_llc() const { return colors().using_llc; }

  void set_mem_color(unsigned color);
  void clear_mem_color(unsigned color);
  void set_llc_color(unsigned color);
  void clear_llc_color(unsigned color);
  void clear_all_colors();
  // Atomic whole-set swap for live re-coloring: drops and adds are
  // applied to one new snapshot and published with a single store, so no
  // concurrent fault can observe the half-re-colored state two separate
  // CLEAR+SET calls would expose.
  void replace_colors(const std::vector<uint16_t>& drop_mem,
                      const std::vector<uint16_t>& add_mem,
                      const std::vector<uint8_t>& drop_llc,
                      const std::vector<uint8_t>& add_llc);

  bool has_mem_color(unsigned color) const {
    return colors().mem_colors[color];
  }
  bool has_llc_color(unsigned color) const {
    return colors().llc_colors[color];
  }
  const std::vector<uint16_t>& mem_color_list() const {
    return colors().mem_list;
  }
  const std::vector<uint8_t>& llc_color_list() const {
    return colors().llc_list;
  }

  // Round-robin cursor so consecutive faults spread over the task's
  // (MEM_ID, LLC_ID) combinations -- keeps a task's heap striped across
  // its own banks/LLC slices for intra-task bank parallelism.
  uint64_t next_combo_cursor() {
    return combo_cursor_.fetch_add(1, std::memory_order_relaxed);
  }

  TaskAllocStats& alloc_stats() { return stats_; }
  const TaskAllocStats& alloc_stats() const { return stats_; }

  // This task's colored page cache (capacity 0 = disabled; see
  // os/page_magazine.h).
  PageMagazine& magazine() { return magazine_; }
  const PageMagazine& magazine() const { return magazine_; }

  // Adaptive-magazine tuner scratch (Kernel::adapt_magazines): the
  // hit/miss totals last observed and the hit-fraction EWMA built from
  // the deltas. Written by the single control-plane tuner only --
  // deliberately unsynchronized, like the guard/admission per-tenant
  // bookkeeping.
  struct MagTune {
    uint64_t hits_seen = 0;
    uint64_t misses_seen = 0;
    double ewma = -1.0;  // < 0: no observation yet
  };
  MagTune& mag_tune() { return mag_tune_; }

 private:
  // Builds the materialized lists and flags of `cs` from its bitmaps.
  static void rebuild_lists(ColorSet& cs);
  // Publishes `next` as the current snapshot. Caller holds color_mu_.
  void publish(std::unique_ptr<const ColorSet> next);

  TaskId id_;
  unsigned core_;
  unsigned local_node_;
  // Writers only; readers go through the atomic pointer. Acquired while
  // the caller holds the mm lock shared (rank kMm < kTaskColors).
  util::RankedMutex<util::lock_rank::kTaskColors> color_mu_;
  std::atomic<const ColorSet*> colors_;
  // Superseded snapshots, retained so outstanding references stay valid
  // (guarded by color_mu_; bounded by the number of color-control calls).
  std::vector<std::unique_ptr<const ColorSet>> color_history_;
  // Starts at a per-task phase so tasks sharing a bank pool do not walk
  // the banks in lockstep (which would make them collide persistently).
  std::atomic<uint64_t> combo_cursor_;
  std::atomic<uint8_t> alive_{1};
  TaskAllocStats stats_;
  PageMagazine magazine_;
  MagTune mag_tune_;
};

// Growable task registry safe for concurrent create + lookup (the
// simulated analogue of the kernel's pid table). Task objects live
// behind unique_ptrs, so a Task& stays valid while other threads keep
// creating tasks; tasks are never destroyed before the kernel itself.
//
// Lookups are *lock-free*: tasks live in fixed-size chunks that are
// published once and never reallocated, and `size_` is released after
// the slot write, so a reader that passes the bounds check always sees
// a fully constructed Task. This matters twice over: `at()` sits on the
// page-fault fast path of every thread (a shared rwlock there is a
// contended atomic RMW on one cache line), and the RAS subsystem must
// walk tasks' magazines while holding the ras lock, which ranks *above*
// the old table lock. Only creation takes the (writer-only) mutex.
class TaskTable {
 public:
  TaskTable();
  ~TaskTable();
  TaskTable(const TaskTable&) = delete;
  TaskTable& operator=(const TaskTable&) = delete;

  // Appends a task and returns its id.
  TaskId create(unsigned core, unsigned local_node, unsigned num_bank_colors,
                unsigned num_llc_colors, unsigned magazine_capacity = 0);

  Task& at(TaskId id) {
    TINT_ASSERT_MSG(id < size_.load(std::memory_order_acquire),
                    "unknown task id");
    Chunk* c = chunks_[id >> kChunkBits].load(std::memory_order_acquire);
    return *c->slots[id & (kChunkSize - 1)];
  }
  const Task& at(TaskId id) const {
    return const_cast<TaskTable*>(this)->at(id);
  }

  size_t size() const { return size_.load(std::memory_order_acquire); }

 private:
  static constexpr unsigned kChunkBits = 6;
  static constexpr unsigned kChunkSize = 1u << kChunkBits;
  static constexpr unsigned kMaxChunks = 4096;  // 256 K tasks
  struct Chunk {
    std::unique_ptr<Task> slots[kChunkSize];
  };

  util::RankedMutex<util::lock_rank::kTaskTable> mu_;  // writers only
  std::unique_ptr<std::atomic<Chunk*>[]> chunks_;
  std::atomic<uint32_t> size_{0};
};

}  // namespace tint::os

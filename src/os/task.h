// Task control block (TCB) state, mirroring the fields TintMalloc adds
// to Linux's task_struct (Section III.B):
//
//   "zero-sized mmap() calls result in memory controller/bank and LLC
//    colors to be saved in the task_struct ... In addition, two coloring
//    flags using_bank and using_llc are set in task_struct by kernel."
//
// A task also records its core pinning (the paper assumes task-to-core
// assignment is static) and allocation statistics.
//
// Thread safety: allocation statistics and the combo cursor are atomics
// -- any thread's fault may bump them. The color sets themselves follow
// the task_struct ownership rule: they are written by the task's own
// thread (the paper's opt-in happens during that thread's init), so
// color-control calls for a task must not race with that same task's
// faults. The `TaskTable` below makes creation and lookup safe from any
// thread.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <vector>

#include "os/page.h"
#include "util/lock_rank.h"

namespace tint::os {

struct TaskAllocStats {
  std::atomic<uint64_t> page_faults{0};
  std::atomic<uint64_t> colored_pages{0};   // pages served from color lists
  std::atomic<uint64_t> default_pages{0};   // pages served by the default path
  std::atomic<uint64_t> fallback_pages{0};  // colored request fell back (dry)
  std::atomic<uint64_t> refill_blocks{0};   // buddy blocks colorized for us
  std::atomic<uint64_t> refill_pages{0};    // pages scattered by those refills
  std::atomic<uint64_t> remote_pages{0};    // pages not on the local node
  // Degradation-ladder detail (see os/errors.h). Widened and scavenged
  // pages are *also* counted in default_pages/fallback_pages, preserving
  // the page_faults == colored_pages + default_pages identity.
  std::atomic<uint64_t> widened_pages{0};   // constraint relaxed, node kept
  std::atomic<uint64_t> scavenged_pages{0}; // reclaimed stranded frames
  std::atomic<uint64_t> failed_allocs{0};   // faults the ladder rejected
  // Pages the RAS subsystem moved off a faulty frame on our behalf.
  // Counted on top of the fault-time counters above: a migrated page was
  // already attributed to a ladder stage when it first faulted in.
  std::atomic<uint64_t> migrated_pages{0};

  struct Snapshot {
    uint64_t page_faults = 0;
    uint64_t colored_pages = 0;
    uint64_t default_pages = 0;
    uint64_t fallback_pages = 0;
    uint64_t refill_blocks = 0;
    uint64_t refill_pages = 0;
    uint64_t remote_pages = 0;
    uint64_t widened_pages = 0;
    uint64_t scavenged_pages = 0;
    uint64_t failed_allocs = 0;
    uint64_t migrated_pages = 0;
  };
  Snapshot snapshot() const {
    const auto ld = [](const std::atomic<uint64_t>& a) {
      return a.load(std::memory_order_relaxed);
    };
    return {ld(page_faults),  ld(colored_pages),   ld(default_pages),
            ld(fallback_pages), ld(refill_blocks), ld(refill_pages),
            ld(remote_pages), ld(widened_pages),   ld(scavenged_pages),
            ld(failed_allocs), ld(migrated_pages)};
  }
};

class Task {
 public:
  Task(TaskId id, unsigned core, unsigned local_node, unsigned num_bank_colors,
       unsigned num_llc_colors);

  TaskId id() const { return id_; }
  unsigned core() const { return core_; }
  unsigned local_node() const { return local_node_; }

  // --- coloring flags & sets (the TCB payload) ---
  bool using_bank() const { return using_bank_; }
  bool using_llc() const { return using_llc_; }

  void set_mem_color(unsigned color);
  void clear_mem_color(unsigned color);
  void set_llc_color(unsigned color);
  void clear_llc_color(unsigned color);
  void clear_all_colors();

  bool has_mem_color(unsigned color) const { return mem_colors_[color]; }
  bool has_llc_color(unsigned color) const { return llc_colors_[color]; }
  // Materialized color id lists (ascending), for the allocator's scan.
  const std::vector<uint16_t>& mem_color_list() const { return mem_list_; }
  const std::vector<uint8_t>& llc_color_list() const { return llc_list_; }

  // Round-robin cursor so consecutive faults spread over the task's
  // (MEM_ID, LLC_ID) combinations -- keeps a task's heap striped across
  // its own banks/LLC slices for intra-task bank parallelism.
  uint64_t next_combo_cursor() {
    return combo_cursor_.fetch_add(1, std::memory_order_relaxed);
  }

  TaskAllocStats& alloc_stats() { return stats_; }
  const TaskAllocStats& alloc_stats() const { return stats_; }

 private:
  void rebuild_lists();

  TaskId id_;
  unsigned core_;
  unsigned local_node_;
  bool using_bank_ = false;
  bool using_llc_ = false;
  std::vector<bool> mem_colors_;
  std::vector<bool> llc_colors_;
  std::vector<uint16_t> mem_list_;
  std::vector<uint8_t> llc_list_;
  // Starts at a per-task phase so tasks sharing a bank pool do not walk
  // the banks in lockstep (which would make them collide persistently).
  std::atomic<uint64_t> combo_cursor_;
  TaskAllocStats stats_;
};

// Growable task registry safe for concurrent create + lookup (the
// simulated analogue of the kernel's pid table). Task objects live
// behind unique_ptrs, so a Task& stays valid while other threads keep
// creating tasks; tasks are never destroyed before the kernel itself.
class TaskTable {
 public:
  // Appends a task and returns its id.
  TaskId create(unsigned core, unsigned local_node, unsigned num_bank_colors,
                unsigned num_llc_colors);

  Task& at(TaskId id) {
    std::shared_lock lk(mu_);
    TINT_ASSERT_MSG(id < tasks_.size(), "unknown task id");
    return *tasks_[id];
  }
  const Task& at(TaskId id) const {
    std::shared_lock lk(mu_);
    TINT_ASSERT_MSG(id < tasks_.size(), "unknown task id");
    return *tasks_[id];
  }

  size_t size() const {
    std::shared_lock lk(mu_);
    return tasks_.size();
  }

 private:
  mutable util::RankedSharedMutex<util::lock_rank::kTaskTable> mu_;
  std::vector<std::unique_ptr<Task>> tasks_;
};

}  // namespace tint::os

#include "os/failpoints.h"

namespace tint::os {

std::optional<FailPoint> failpoint_from_name(std::string_view name) {
  for (size_t i = 0; i < static_cast<size_t>(FailPoint::kCount); ++i) {
    const FailPoint p = static_cast<FailPoint>(i);
    if (name == to_string(p)) return p;
  }
  return std::nullopt;
}

}  // namespace tint::os

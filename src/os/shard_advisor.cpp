#include "os/shard_advisor.h"

#include <algorithm>

namespace tint::os {

namespace {
unsigned clamp_pow2(uint64_t v, unsigned lo, unsigned hi) {
  unsigned n = 1;
  while (n < v && n < hi) n <<= 1;
  return std::max(lo, std::min(n, hi));
}
}  // namespace

ShardAdvisor::Advice ShardAdvisor::recommend(unsigned current_shards,
                                             uint64_t acquisitions,
                                             uint64_t contended) const {
  Advice adv;
  adv.shards = current_shards;
  if (acquisitions < cfg_.min_observations) return adv;  // noise window
  adv.contention =
      static_cast<double>(contended) / static_cast<double>(acquisitions);
  if (adv.contention > cfg_.grow_threshold &&
      current_shards < cfg_.max_shards) {
    const unsigned doubled = current_shards * 2;
    // Freeze-cost weighting: growth is refused once the doubled count's
    // projected stop-the-world freeze would blow the budget.
    if (static_cast<double>(doubled) * cfg_.freeze_ns_per_shard <=
        cfg_.freeze_budget_ns) {
      adv.shards = doubled;
    } else {
      adv.capped_by_freeze = true;
    }
  } else if (adv.contention < cfg_.shrink_threshold &&
             current_shards > cfg_.min_shards) {
    // Contention gone: give the freeze its time back.
    adv.shards = std::max(cfg_.min_shards, current_shards / 2);
  }
  return adv;
}

unsigned ShardAdvisor::boot_shards(const hw::Topology& topo,
                                   unsigned bank_colors, unsigned llc_colors,
                                   const ShardAdvisorConfig& cfg) {
  const uint64_t combos =
      static_cast<uint64_t>(bank_colors) * llc_colors;
  const uint64_t in_flight =
      std::min<uint64_t>(combos, topo.num_cores() * 16ULL);
  return clamp_pow2(in_flight, cfg.min_shards, cfg.max_shards);
}

}  // namespace tint::os

// Plain-text table rendering for bench output.
//
// Every bench binary prints the rows/series of the paper figure it
// reproduces; this helper keeps the formatting consistent and diffable.
#pragma once

#include <string>
#include <vector>

namespace tint {

class Table {
 public:
  explicit Table(std::string title = {});

  // Sets the header row. Must be called before add_row.
  void set_header(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  // Convenience for mixed string/number rows.
  static std::string fmt(double v, int precision = 3);

  // Renders with aligned columns; includes title and header rule.
  std::string render() const;

  // Renders as CSV (header + rows; the title is omitted). Cells
  // containing commas or quotes are quoted per RFC 4180.
  std::string to_csv() const;

  // Renders as a JSON object {"title": ..., "header": [...],
  // "rows": [[...], ...]} with all cells as strings.
  std::string to_json() const;

  // Renders and writes to stdout.
  void print() const;

  size_t row_count() const { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace tint

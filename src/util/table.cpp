#include "util/table.h"

#include <cstdio>
#include <sstream>

#include "util/assert.h"

namespace tint {

Table::Table(std::string title) : title_(std::move(title)) {}

void Table::set_header(std::vector<std::string> header) {
  TINT_ASSERT_MSG(rows_.empty(), "set_header must precede add_row");
  header_ = std::move(header);
}

void Table::add_row(std::vector<std::string> row) {
  TINT_ASSERT_MSG(header_.empty() || row.size() == header_.size(),
                  "row width must match header width");
  rows_.push_back(std::move(row));
}

std::string Table::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string Table::render() const {
  std::vector<size_t> widths;
  auto widen = [&widths](const std::vector<std::string>& row) {
    if (widths.size() < row.size()) widths.resize(row.size(), 0);
    for (size_t i = 0; i < row.size(); ++i)
      widths[i] = std::max(widths[i], row[i].size());
  };
  if (!header_.empty()) widen(header_);
  for (const auto& r : rows_) widen(r);

  std::ostringstream out;
  if (!title_.empty()) out << "== " << title_ << " ==\n";
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i) out << "  ";
      out << row[i];
      for (size_t p = row[i].size(); p < widths[i]; ++p) out << ' ';
    }
    out << '\n';
  };
  if (!header_.empty()) {
    emit(header_);
    size_t total = 0;
    for (size_t i = 0; i < widths.size(); ++i) total += widths[i] + (i ? 2 : 0);
    out << std::string(total, '-') << '\n';
  }
  for (const auto& r : rows_) emit(r);
  return out.str();
}

std::string Table::to_csv() const {
  std::ostringstream out;
  const auto emit = [&out](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i) out << ',';
      const std::string& cell = row[i];
      if (cell.find_first_of(",\"\n") != std::string::npos) {
        out << '"';
        for (const char ch : cell) {
          if (ch == '"') out << '"';
          out << ch;
        }
        out << '"';
      } else {
        out << cell;
      }
    }
    out << '\n';
  };
  if (!header_.empty()) emit(header_);
  for (const auto& r : rows_) emit(r);
  return out.str();
}

std::string Table::to_json() const {
  std::ostringstream out;
  const auto quote = [&out](const std::string& s) {
    out << '"';
    for (const char ch : s) {
      switch (ch) {
        case '"': out << "\\\""; break;
        case '\\': out << "\\\\"; break;
        case '\n': out << "\\n"; break;
        case '\t': out << "\\t"; break;
        default: out << ch;
      }
    }
    out << '"';
  };
  const auto emit_row = [&](const std::vector<std::string>& row) {
    out << '[';
    for (size_t i = 0; i < row.size(); ++i) {
      if (i) out << ',';
      quote(row[i]);
    }
    out << ']';
  };
  out << "{\"title\":";
  quote(title_);
  out << ",\"header\":";
  emit_row(header_);
  out << ",\"rows\":[";
  for (size_t r = 0; r < rows_.size(); ++r) {
    if (r) out << ',';
    emit_row(rows_[r]);
  }
  out << "]}";
  return out.str();
}

void Table::print() const {
  const std::string s = render();
  std::fwrite(s.data(), 1, s.size(), stdout);
  std::fflush(stdout);
}

}  // namespace tint

// Lock-rank discipline for the concurrent allocation stack.
//
// Every mutex in the allocation path carries a compile-time *rank*; a
// thread may only acquire a lock whose rank is >= the highest rank it
// already holds. Ranks therefore form a global acquisition order and
// make lock-ordering deadlocks structurally impossible. Locks of equal
// rank may be held together only when acquired in ascending index order
// (the stop-the-world freeze in Kernel::check_invariants is the one
// place that does this, over the color-list shards and buddy zones).
//
// The full ordering contract is documented in DESIGN.md section 10
// ("Concurrency & lock ordering"); the constants below are the single
// source of truth for the ranks themselves.
//
// In TINT_DEBUG_CHECKS builds every acquisition is checked against a
// thread-local stack of held ranks and a violation aborts with both
// ranks named; release builds compile the checker away, leaving plain
// std::mutex / std::shared_mutex behaviour.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <shared_mutex>
#include <vector>

#include "util/assert.h"

namespace tint::util {

namespace lock_rank {
// Outermost first. Gaps leave room for future subsystems.
inline constexpr int kGuard = 1;        // ColorGuard epoch (calls into kernel)
inline constexpr int kHeapArena = 2;    // TintHeap arena (calls into kernel)
inline constexpr int kAdmission = 3;    // AdmissionController registry (calls
                                        // into kernel; never held together
                                        // with kGuard or kHeapArena)
inline constexpr int kTrace = 5;        // TraceRecorder (held across touch)
inline constexpr int kMm = 10;          // Kernel VMA table + VA cursor
inline constexpr int kTaskTable = 20;   // task-table growth (writers only)
inline constexpr int kTaskColors = 25;  // one task's color-set writers
inline constexpr int kDefaultPath = 30; // kernel rng + region-node cache
inline constexpr int kPageTable = 40;   // vpn -> pfn map
inline constexpr int kHugePool = 50;    // boot-reserved 2 MB block stacks
inline constexpr int kRas = 55;         // poisoned-frame set + retirement
inline constexpr int kOffloadRing = 56; // offload ring registry (engine side):
                                        // above kRas so poisoning can steal a
                                        // ring-owned frame, below kMagazine /
                                        // kColorShard / kBuddyZone so the
                                        // engine's drain can re-home frames
                                        // while holding it
inline constexpr int kMagazine = 57;    // one task's page magazine: above
                                        // kRas so poisoning can reach in,
                                        // below kColorShard so drains can
                                        // push to the shards
inline constexpr int kColorShard = 60;  // one color-list shard
inline constexpr int kBuddyZone = 70;   // one buddy per-node zone
inline constexpr int kFailPoint = 80;   // one failpoint's spec/rng (leaf)
inline constexpr int kDramFault = 85;   // DRAM fault-model regions (leaf)
}  // namespace lock_rank

#ifdef TINT_DEBUG_CHECKS

namespace detail {
inline thread_local std::vector<int> held_ranks;
}  // namespace detail

inline void note_lock(int rank) {
  auto& held = detail::held_ranks;
  if (!held.empty() && rank < held.back()) {
    std::fprintf(stderr,
                 "TINT lock-rank violation: acquiring rank %d while holding "
                 "rank %d\n",
                 rank, held.back());
    std::abort();
  }
  held.push_back(rank);
}

inline void note_unlock(int rank) {
  auto& held = detail::held_ranks;
  for (size_t i = held.size(); i-- > 0;) {
    if (held[i] == rank) {
      held.erase(held.begin() + static_cast<long>(i));
      return;
    }
  }
  std::fprintf(stderr, "TINT lock-rank violation: releasing rank %d that is "
                       "not held\n", rank);
  std::abort();
}

#else

inline void note_lock(int) {}
inline void note_unlock(int) {}

#endif  // TINT_DEBUG_CHECKS

// std::mutex with a compile-time rank. Satisfies *Lockable* (minus
// try_lock, which the allocation stack deliberately never uses: a
// failed try_lock would make control flow timing-dependent and break
// serial determinism).
template <int Rank>
class RankedMutex {
 public:
  static constexpr int kRank = Rank;
  void lock() {
    note_lock(Rank);
    mu_.lock();
  }
  void unlock() {
    // Checked before the underlying unlock: releasing a rank this thread
    // does not hold would already be UB on the raw mutex.
    note_unlock(Rank);
    mu_.unlock();
  }

 private:
  std::mutex mu_;
};

// std::shared_mutex with a compile-time rank. Shared (reader) holds
// participate in the rank order exactly like exclusive holds.
template <int Rank>
class RankedSharedMutex {
 public:
  static constexpr int kRank = Rank;
  void lock() {
    note_lock(Rank);
    mu_.lock();
  }
  void unlock() {
    note_unlock(Rank);
    mu_.unlock();
  }
  void lock_shared() {
    note_lock(Rank);
    mu_.lock_shared();
  }
  void unlock_shared() {
    note_unlock(Rank);
    mu_.unlock_shared();
  }

 private:
  std::shared_mutex mu_;
};

}  // namespace tint::util

#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/assert.h"

namespace tint {

void Summary::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void Summary::merge(const Summary& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  sum_ += other.sum_;
  n_ += other.n_;
}

double Summary::min() const { return n_ ? min_ : 0.0; }
double Summary::max() const { return n_ ? max_ : 0.0; }
double Summary::mean() const { return n_ ? mean_ : 0.0; }

double Summary::variance() const {
  return n_ ? m2_ / static_cast<double>(n_) : 0.0;
}

double Summary::stddev() const { return std::sqrt(variance()); }

double Summary::spread() const { return n_ ? max_ - min_ : 0.0; }

double percentile(std::span<const double> sorted, double p) {
  if (sorted.empty()) return 0.0;
  TINT_ASSERT(p >= 0.0 && p <= 100.0);
  TINT_DASSERT(std::is_sorted(sorted.begin(), sorted.end()));
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double mean_of(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

Histogram::Histogram(double lo, double hi, size_t buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(buckets)),
      counts_(buckets, 0) {
  TINT_ASSERT(hi > lo && buckets > 0);
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
  } else if (x >= hi_) {
    ++overflow_;
  } else {
    const size_t i = static_cast<size_t>((x - lo_) / width_);
    ++counts_[std::min(i, counts_.size() - 1)];
  }
}

double Histogram::bucket_lo(size_t i) const {
  return lo_ + width_ * static_cast<double>(i);
}

double Histogram::bucket_hi(size_t i) const {
  return lo_ + width_ * static_cast<double>(i + 1);
}

}  // namespace tint

// Deterministic pseudo-random number generation for the simulator.
//
// Everything in this repository must be bit-for-bit reproducible across
// runs and platforms, so we ship our own small generators instead of
// relying on std::mt19937 distributions (whose results are only specified
// for the raw engine, not for std::uniform_*_distribution).
//
// SplitMix64 is used for seeding; Xoshiro256** is the workhorse generator.
// Both are public-domain algorithms (Blackman & Vigna).
#pragma once

#include <cmath>
#include <cstdint>

#include "util/assert.h"

namespace tint {

// SplitMix64: used to expand a single 64-bit seed into a full generator
// state. Also useful as a cheap stateless hash.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(uint64_t seed) : state_(seed) {}

  constexpr uint64_t next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

// Stateless 64-bit mix, handy for hashing (seed, index) pairs.
constexpr uint64_t mix64(uint64_t x) {
  SplitMix64 s(x);
  return s.next();
}

// Xoshiro256**: fast, high-quality, 256-bit state.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5eed5eed5eedULL) { reseed(seed); }

  void reseed(uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& w : s_) w = sm.next();
  }

  uint64_t next_u64() {
    const uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  // Uniform in [0, bound). Uses Lemire's multiply-shift reduction; the
  // tiny modulo bias is irrelevant for workload generation.
  uint64_t next_below(uint64_t bound) {
    TINT_DASSERT(bound > 0);
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(next_u64()) * bound) >> 64);
  }

  // Uniform in [lo, hi] inclusive.
  uint64_t next_range(uint64_t lo, uint64_t hi) {
    TINT_DASSERT(lo <= hi);
    return lo + next_below(hi - lo + 1);
  }

  // Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  // True with probability p.
  bool next_bool(double p) { return next_double() < p; }

  // Standard normal via Box-Muller. Two next_double() draws per call --
  // deterministic across platforms (no cached spare, no std::
  // distribution whose output is implementation-defined).
  double next_normal() {
    double u1 = next_double();
    const double u2 = next_double();
    // next_double() can return exactly 0; log(0) must not happen.
    if (u1 <= 0.0) u1 = 0x1.0p-53;
    constexpr double kTwoPi = 6.283185307179586476925286766559;
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(kTwoPi * u2);
  }

  // Log-normal: exp(mu + sigma * N(0,1)). Median is exp(mu).
  double next_lognormal(double mu, double sigma) {
    return std::exp(mu + sigma * next_normal());
  }

  // Poisson(mean) via Knuth's product method -- O(mean) uniform draws,
  // fine for the small burst means workload generators use.
  uint64_t next_poisson(double mean) {
    if (mean <= 0.0) return 0;
    const double limit = std::exp(-mean);
    uint64_t k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= next_double();
    } while (p > limit);
    return k - 1;
  }

 private:
  static constexpr uint64_t rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  uint64_t s_[4];
};

}  // namespace tint

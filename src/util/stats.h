// Small statistics helpers used by the experiment driver and benches.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace tint {

// Running summary of a stream of samples: count/min/max/mean/variance
// (Welford). Used for per-thread runtimes, idle times, latencies, ...
class Summary {
 public:
  void add(double x);
  void merge(const Summary& other);

  size_t count() const { return n_; }
  double min() const;
  double max() const;
  double mean() const;
  double variance() const;  // population variance
  double stddev() const;
  double sum() const { return sum_; }
  // max - min; 0 when fewer than one sample.
  double spread() const;

 private:
  size_t n_ = 0;
  double min_ = 0, max_ = 0;
  double mean_ = 0, m2_ = 0;
  double sum_ = 0;
};

// Exact percentile over a stored sample set (nearest-rank).
double percentile(std::span<const double> sorted_samples, double p);

// Convenience: mean of a vector (0 when empty).
double mean_of(std::span<const double> xs);

// Fixed-width histogram for latency distributions.
class Histogram {
 public:
  Histogram(double lo, double hi, size_t buckets);

  void add(double x);
  size_t bucket_count() const { return counts_.size(); }
  uint64_t count_at(size_t i) const { return counts_[i]; }
  uint64_t underflow() const { return underflow_; }
  uint64_t overflow() const { return overflow_; }
  uint64_t total() const { return total_; }
  double bucket_lo(size_t i) const;
  double bucket_hi(size_t i) const;

 private:
  double lo_, hi_, width_;
  std::vector<uint64_t> counts_;
  uint64_t underflow_ = 0, overflow_ = 0, total_ = 0;
};

}  // namespace tint

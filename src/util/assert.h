// Lightweight always-on invariant checking for the TintMalloc simulator.
//
// The simulator is deterministic; any invariant violation is a programming
// error, so we abort with a readable message rather than limping on.
// TINT_ASSERT stays enabled in release builds (the checks are cheap and the
// simulator's credibility rests on them); TINT_DASSERT compiles out unless
// TINT_DEBUG_CHECKS is defined.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace tint {

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "TINT_ASSERT failed: %s\n  at %s:%d\n  %s\n", expr,
               file, line, msg ? msg : "");
  std::abort();
}

}  // namespace tint

#define TINT_ASSERT(expr)                                          \
  do {                                                             \
    if (!(expr)) ::tint::assert_fail(#expr, __FILE__, __LINE__, nullptr); \
  } while (0)

#define TINT_ASSERT_MSG(expr, msg)                                 \
  do {                                                             \
    if (!(expr)) ::tint::assert_fail(#expr, __FILE__, __LINE__, (msg)); \
  } while (0)

#ifdef TINT_DEBUG_CHECKS
#define TINT_DASSERT(expr) TINT_ASSERT(expr)
#else
#define TINT_DASSERT(expr) \
  do {                     \
  } while (0)
#endif

// policy_explorer: command-line sweep tool over the public API.
//
//   policy_explorer [workload] [threads] [nodes] [scale] [reps]
//
// Runs every allocation policy for one benchmark proxy and thread/node
// configuration and prints the four metrics of Section V (runtime, total
// idle, per-thread runtime spread, per-thread idle max) plus allocation
// diagnostics. Defaults: lbm 16 4 0.25 2.
#include <cstdio>
#include <string>

#include "runtime/experiment.h"
#include "runtime/workload.h"
#include "util/table.h"

using namespace tint;

namespace {

runtime::WorkloadSpec find_spec(const std::string& name) {
  for (const auto& s : runtime::standard_suite())
    if (s.name == name) return s;
  std::fprintf(stderr, "unknown workload '%s'; available:", name.c_str());
  for (const auto& s : runtime::standard_suite())
    std::fprintf(stderr, " %s", s.name.c_str());
  std::fprintf(stderr, "\n");
  std::exit(1);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string workload = argc > 1 ? argv[1] : "lbm";
  const unsigned threads = argc > 2 ? std::stoul(argv[2]) : 16;
  const unsigned nodes = argc > 3 ? std::stoul(argv[3]) : 4;
  const double scale = argc > 4 ? std::stod(argv[4]) : 0.25;
  const unsigned reps = argc > 5 ? std::stoul(argv[5]) : 2;

  const auto machine = core::MachineConfig::opteron6128();
  const auto config = runtime::make_config(machine.topo, threads, nodes);
  const auto spec = find_spec(workload).scaled(scale);
  runtime::ExperimentDriver driver(machine, reps, 7);

  Table table(spec.name + " @ " + config.name + " (scale " +
              Table::fmt(scale, 2) + ", " + std::to_string(reps) + " reps)");
  table.set_header({"policy", "runtime", "norm", "idle", "norm", "spread",
                    "maxidle", "remote%", "fallback%", "llcmiss%", "poisoned",
                    "migrated", "retired"});

  double base_rt = 0, base_idle = 0;
  for (const core::Policy p : core::all_policies()) {
    const auto r = driver.run(spec, p, config);
    if (p == core::Policy::kBuddy) {
      base_rt = r.runtime.mean();
      base_idle = r.total_idle.mean();
    }
    table.add_row(
        {std::string(core::to_string(p)), Table::fmt(r.runtime.mean() / 1e6, 1),
         Table::fmt(r.runtime.mean() / base_rt, 3),
         Table::fmt(r.total_idle.mean() / 1e6, 1),
         Table::fmt(base_idle > 0 ? r.total_idle.mean() / base_idle : 0, 3),
         Table::fmt(r.busy_spread.mean() / 1e6, 2),
         Table::fmt(r.max_thread_idle.mean() / 1e6, 2),
         Table::fmt(100 * r.remote_fraction, 1),
         Table::fmt(100 * r.fallback_fraction, 2),
         Table::fmt(100 * r.llc_miss_rate, 1),
         // RAS columns: nonzero only when a DRAM fault model or ECC
         // failpoints were injected into the run.
         std::to_string(r.frames_poisoned), std::to_string(r.pages_migrated),
         std::to_string(r.colors_retired)});
  }
  table.print();
  return 0;
}

// Quickstart: the paper's one-line opt-in, end to end.
//
// Builds the simulated Opteron machine, creates one task pinned to core
// 0, claims a bank color and an LLC color through the mmap() protocol
// (exactly the call shown in Section III.B), allocates heap memory with
// plain malloc, and shows that every faulted page matches the claimed
// colors while a second, uncolored task gets arbitrary pages.
#include <cstdio>

#include "core/session.h"

using namespace tint;

int main() {
  core::Session session(core::MachineConfig::opteron6128());
  std::printf("machine: %s\n\n", session.topology().describe().c_str());

  os::Kernel& kernel = session.kernel();
  const os::TaskId tinted = session.create_task(/*core=*/0);
  const os::TaskId plain = session.create_task(/*core=*/1);

  // --- the paper's one-line opt-in (Section III.B, Fig. 6) ---
  // int length = 0;
  // mmap(c | SET_MEM_COLOR, length, prot | COLOR_ALLOC, ...)
  kernel.mmap(tinted, 3 | os::SET_MEM_COLOR, 0, os::PROT_COLOR_ALLOC);
  kernel.mmap(tinted, 7 | os::SET_LLC_COLOR, 0, os::PROT_COLOR_ALLOC);
  std::printf("task %u claimed bank color 3 and LLC color 7 via mmap()\n\n",
              tinted);

  // --- ordinary malloc calls, unchanged ---
  const os::VirtAddr a = session.heap(tinted).malloc(64 << 10);
  const os::VirtAddr b = session.heap(plain).malloc(64 << 10);

  hw::Cycles now = 0;
  std::printf("%-8s %-12s %-10s %-9s %-6s\n", "task", "va", "bank", "llc",
              "node");
  for (unsigned i = 0; i < 4; ++i) {
    for (const auto& [task, base] : {std::pair{tinted, a}, {plain, b}}) {
      const os::VirtAddr va = base + i * 4096ULL;
      now += session.touch_and_access(task, va, /*write=*/true, now);
      const auto pa = kernel.translate(va);
      const os::PageInfo& pi = kernel.pages()[*pa >> 12];
      std::printf("%-8s 0x%-10llx bank=%-5u llc=%-5u node=%u\n",
                  task == tinted ? "tinted" : "plain",
                  static_cast<unsigned long long>(va), pi.bank_color,
                  pi.llc_color, pi.node);
    }
  }

  const auto& stats = kernel.task(tinted).alloc_stats();
  std::printf("\ntinted task: %llu faults, %llu colored, %llu remote\n",
              static_cast<unsigned long long>(stats.page_faults),
              static_cast<unsigned long long>(stats.colored_pages),
              static_cast<unsigned long long>(stats.remote_pages));
  return 0;
}

// lbm_stencil: an SPMD streaming-stencil application (the lbm-like
// workload that motivates the paper) run once per allocation policy.
//
// Sixteen threads sweep private lattice partitions every timestep with
// an implicit barrier between steps -- the fork-join pattern of
// Section I. The example prints runtime, barrier idle time, per-thread
// balance, and the memory-system behaviour that explains the gap
// between default buddy allocation and TintMalloc's MEM+LLC coloring.
#include <cstdio>
#include <string>

#include "runtime/experiment.h"
#include "runtime/workload.h"
#include "util/table.h"

using namespace tint;

int main(int argc, char** argv) {
  const double scale = argc > 1 ? std::stod(argv[1]) : 0.3;
  const auto machine = core::MachineConfig::opteron6128();
  const auto config = runtime::make_config(machine.topo, 16, 4);
  const auto spec = runtime::lbm_spec().scaled(scale);

  runtime::ExperimentDriver driver(machine, /*reps=*/2, /*base_seed=*/2024);

  Table table("lbm-like stencil, 16 threads / 4 nodes (scale " +
              std::to_string(scale) + ")");
  table.set_header({"policy", "runtime[Mcyc]", "idle[Mcyc]", "thr spread",
                    "remote%", "rowhit%", "avg lat"});
  for (const core::Policy p :
       {core::Policy::kBuddy, core::Policy::kBpm, core::Policy::kMem,
        core::Policy::kLlc, core::Policy::kMemLlc}) {
    const auto r = driver.run(spec, p, config);
    table.add_row({std::string(core::to_string(p)),
                   Table::fmt(r.runtime.mean() / 1e6, 1),
                   Table::fmt(r.total_idle.mean() / 1e6, 1),
                   Table::fmt(r.busy_spread.mean() / 1e6, 2),
                   Table::fmt(100 * r.remote_fraction, 1),
                   Table::fmt(100 * r.row_hit_rate, 1),
                   Table::fmt(r.avg_access_latency, 0)});
  }
  table.print();
  std::printf(
      "\nMEM+LLC keeps every access on the local controller in private\n"
      "banks and LLC colors; buddy pays remote hops and interference,\n"
      "BPM partitions banks without controller awareness and loses to\n"
      "both (Section V.B).\n");
  return 0;
}

// mixed_tenants: isolation between co-running applications.
//
// A latency-sensitive "service" task shares the machine with three
// streaming "bully" tasks on the same memory node. Without coloring the
// bullies evict the service's LLC lines and thrash its DRAM banks; with
// TintMalloc colors each tenant owns private banks and LLC colors and
// the service's latency distribution collapses back to its solo profile.
// This is the paper's interference argument (Figs. 8/9) expressed as a
// multi-tenant scenario.
#include <cstdio>
#include <memory>
#include <vector>

#include "core/session.h"
#include "runtime/sim_thread.h"
#include "runtime/workload.h"
#include "util/stats.h"

using namespace tint;

namespace {

struct Scenario {
  const char* name;
  bool colored;
  bool with_bullies;
};

double run_scenario(const Scenario& sc) {
  core::Session session(core::MachineConfig::opteron6128());
  os::Kernel& kernel = session.kernel();

  // All tenants on node 0 (cores 0..3): worst-case sharing.
  const os::TaskId service = session.create_task(0);
  std::vector<os::TaskId> bullies;
  if (sc.with_bullies)
    for (unsigned c = 1; c <= 3; ++c) bullies.push_back(session.create_task(c));

  if (sc.colored) {
    // Service: banks 0..7, LLC colors 0..7. Bullies: the rest, split.
    core::ThreadColorPlan sp;
    for (uint16_t b = 0; b < 8; ++b) sp.mem_colors.push_back(b);
    for (uint8_t l = 0; l < 8; ++l) sp.llc_colors.push_back(l);
    session.apply_colors(service, sp);
    for (size_t i = 0; i < bullies.size(); ++i) {
      core::ThreadColorPlan bp;
      for (uint16_t b = 0; b < 8; ++b)
        bp.mem_colors.push_back(static_cast<uint16_t>(8 * (i + 1) + b));
      for (uint8_t l = 0; l < 8; ++l)
        bp.llc_colors.push_back(static_cast<uint8_t>(8 * (i + 1) + l));
      session.apply_colors(bullies[i], bp);
    }
  }

  // Service: small hot working set, read-mostly (cache friendly).
  const os::VirtAddr svc_heap = session.heap(service).malloc(2 << 20);
  runtime::MixedKernelParams svc;
  svc.private_base = svc_heap;
  svc.private_bytes = 2 << 20;
  svc.hot_bytes = 1 << 20;
  svc.hot_fraction = 0.9;
  svc.write_fraction = 0.1;
  svc.compute_per_access = 50;
  svc.accesses = 60000;

  // Bullies: large streaming writes.
  std::vector<std::unique_ptr<runtime::OpStream>> streams;
  std::vector<runtime::OpStream*> ptrs;
  std::vector<os::TaskId> tasks = {service};
  streams.push_back(std::make_unique<runtime::MixedKernelStream>(svc, 1));
  ptrs.push_back(streams.back().get());
  for (const os::TaskId b : bullies) {
    const os::VirtAddr heap = session.heap(b).malloc(16 << 20);
    runtime::MixedKernelParams bp;
    bp.private_base = heap;
    bp.private_bytes = 16 << 20;
    bp.write_fraction = 0.8;
    bp.compute_per_access = 5;
    bp.accesses = 200000;
    tasks.push_back(b);
    streams.push_back(
        std::make_unique<runtime::MixedKernelStream>(bp, 100 + b));
    ptrs.push_back(streams.back().get());
  }

  runtime::ParallelEngine engine(session);
  engine.run_parallel(tasks, ptrs, 0);

  const sim::CoreStats& cs = session.memsys().core_stats(0);
  std::printf(
      "%-24s service avg latency %7.1f cyc  (l1 %4.1f%%, llc miss of "
      "lookups %4.1f%%)\n",
      sc.name, cs.avg_latency(),
      100.0 * static_cast<double>(cs.l1_hits) /
          static_cast<double>(cs.accesses),
      100.0 * static_cast<double>(cs.dram_accesses) /
          static_cast<double>(cs.accesses));
  (void)kernel;
  return cs.avg_latency();
}

}  // namespace

int main() {
  std::printf("latency-sensitive service vs. streaming bullies, node 0\n\n");
  const double solo = run_scenario({"solo (no bullies)", false, false});
  const double shared = run_scenario({"shared, buddy", false, true});
  const double tinted = run_scenario({"shared, TintMalloc", true, true});
  std::printf(
      "\ninterference slowdown: buddy %.2fx -> TintMalloc %.2fx of solo\n",
      shared / solo, tinted / solo);
  return 0;
}

// mixed_tenants: isolation between co-running applications.
//
// A latency-sensitive "service" task shares the machine with three
// streaming "bully" tasks on the same memory node. Without coloring the
// bullies evict the service's LLC lines and thrash its DRAM banks; with
// TintMalloc colors each tenant owns private banks and LLC colors and
// the service's latency distribution collapses back to its solo profile.
// This is the paper's interference argument (Figs. 8/9) expressed as a
// multi-tenant scenario.
//
// The second half of the demo breaks the isolation on purpose: an
// intruder tenant arrives mid-run claiming the *same* banks as the
// service, and the ColorGuard watchdog (runtime/color_guard.h) detects
// the hot banks from controller counters and heals the collision live --
// re-coloring the intruder onto quiet banks and migrating its pages,
// without restarting anything.
//
// The final act scales the tenancy story out: the AdmissionController
// (runtime/admission.h) streams a thousand short-lived tenants in three
// QoS classes through a small machine with failpoints armed and the
// guard healing live, then prints the per-class SLO ledger a colo
// operator would alert on -- admits, rejects, downgrades, p50/p99
// latency and isolation violations.
#include <chrono>
#include <cstdio>
#include <memory>
#include <vector>

#include "core/session.h"
#include "hw/pci_config.h"
#include "runtime/admission.h"
#include "runtime/churn.h"
#include "runtime/color_guard.h"
#include "runtime/sim_thread.h"
#include "runtime/workload.h"
#include "util/stats.h"

using namespace tint;

namespace {

struct Scenario {
  const char* name;
  bool colored;
  bool with_bullies;
};

double run_scenario(const Scenario& sc) {
  core::Session session(core::MachineConfig::opteron6128());
  os::Kernel& kernel = session.kernel();

  // All tenants on node 0 (cores 0..3): worst-case sharing.
  const os::TaskId service = session.create_task(0);
  std::vector<os::TaskId> bullies;
  if (sc.with_bullies)
    for (unsigned c = 1; c <= 3; ++c) bullies.push_back(session.create_task(c));

  if (sc.colored) {
    // Service: banks 0..7, LLC colors 0..7. Bullies: the rest, split.
    core::ThreadColorPlan sp;
    for (uint16_t b = 0; b < 8; ++b) sp.mem_colors.push_back(b);
    for (uint8_t l = 0; l < 8; ++l) sp.llc_colors.push_back(l);
    session.apply_colors(service, sp);
    for (size_t i = 0; i < bullies.size(); ++i) {
      core::ThreadColorPlan bp;
      for (uint16_t b = 0; b < 8; ++b)
        bp.mem_colors.push_back(static_cast<uint16_t>(8 * (i + 1) + b));
      for (uint8_t l = 0; l < 8; ++l)
        bp.llc_colors.push_back(static_cast<uint8_t>(8 * (i + 1) + l));
      session.apply_colors(bullies[i], bp);
    }
  }

  // Service: small hot working set, read-mostly (cache friendly).
  const os::VirtAddr svc_heap = session.heap(service).malloc(2 << 20);
  runtime::MixedKernelParams svc;
  svc.private_base = svc_heap;
  svc.private_bytes = 2 << 20;
  svc.hot_bytes = 1 << 20;
  svc.hot_fraction = 0.9;
  svc.write_fraction = 0.1;
  svc.compute_per_access = 50;
  svc.accesses = 60000;

  // Bullies: large streaming writes.
  std::vector<std::unique_ptr<runtime::OpStream>> streams;
  std::vector<runtime::OpStream*> ptrs;
  std::vector<os::TaskId> tasks = {service};
  streams.push_back(std::make_unique<runtime::MixedKernelStream>(svc, 1));
  ptrs.push_back(streams.back().get());
  for (const os::TaskId b : bullies) {
    const os::VirtAddr heap = session.heap(b).malloc(16 << 20);
    runtime::MixedKernelParams bp;
    bp.private_base = heap;
    bp.private_bytes = 16 << 20;
    bp.write_fraction = 0.8;
    bp.compute_per_access = 5;
    bp.accesses = 200000;
    tasks.push_back(b);
    streams.push_back(
        std::make_unique<runtime::MixedKernelStream>(bp, 100 + b));
    ptrs.push_back(streams.back().get());
  }

  runtime::ParallelEngine engine(session);
  engine.run_parallel(tasks, ptrs, 0);

  const sim::CoreStats& cs = session.memsys().core_stats(0);
  std::printf(
      "%-24s service avg latency %7.1f cyc  (l1 %4.1f%%, llc miss of "
      "lookups %4.1f%%)\n",
      sc.name, cs.avg_latency(),
      100.0 * static_cast<double>(cs.l1_hits) /
          static_cast<double>(cs.accesses),
      100.0 * static_cast<double>(cs.dram_accesses) /
          static_cast<double>(cs.accesses));
  (void)kernel;
  return cs.avg_latency();
}

// Row conflicts suffered on the service's banks (colors 0..7 on node 0)
// since the previous call -- the absolute interference the intruder adds.
uint64_t service_bank_conflicts(const sim::MemorySystem& memsys,
                                uint64_t& prev_conf) {
  const sim::MemoryController& mc = memsys.controller(0);
  uint64_t conf = 0;
  for (unsigned b = 0; b < 8; ++b) conf += mc.bank_conflicts(b);
  const uint64_t dc = conf - prev_conf;
  prev_conf = conf;
  return dc;
}

// Service-core average access latency since the previous call.
double service_latency(const sim::MemorySystem& memsys, uint64_t& prev_acc,
                       uint64_t& prev_cyc) {
  const sim::CoreStats& cs = memsys.core_stats(0);
  const uint64_t da = cs.accesses - prev_acc;
  const uint64_t dcyc = cs.total_latency - prev_cyc;
  prev_acc = cs.accesses;
  prev_cyc = cs.total_latency;
  return da ? static_cast<double>(dcyc) / static_cast<double>(da) : 0.0;
}

void run_heal_demo() {
  std::printf(
      "\n--- self-healing: intruder collides with the service's banks ---\n");
  core::Session session(core::MachineConfig::opteron6128());
  os::Kernel& kernel = session.kernel();

  const os::TaskId service = session.create_task(0);
  core::ThreadColorPlan sp;
  for (uint16_t b = 0; b < 8; ++b) sp.mem_colors.push_back(b);
  for (uint8_t l = 0; l < 8; ++l) sp.llc_colors.push_back(l);
  session.apply_colors(service, sp);

  // Thresholds tuned to this workload's signal: with row-local streams
  // the absolute conflict-per-access numbers are small, so the bands sit
  // low; the collision still separates cleanly from the solo baseline.
  // One heal per epoch is the guard's own damping; the short cooldown
  // lets an 8-color collision resolve within the demo's epochs.
  runtime::GuardConfig gcfg;
  gcfg.enabled = true;
  gcfg.min_epoch_accesses = 256;
  gcfg.migration_budget = 512;
  gcfg.hot_enter = 0.03;
  gcfg.hot_exit = 0.01;
  gcfg.cooldown_epochs = 1;
  runtime::ColorGuard guard(kernel, session.memsys(), gcfg);
  // The service is the protected tenant: under the measured-cheapest
  // victim policy its small hot set would otherwise make it the cheapest
  // page set to move. Priority pins it; the intruder pays the migration.
  guard.set_tenant_priority(service, 2);

  const os::VirtAddr svc_heap = session.heap(service).malloc(2 << 20);
  runtime::MixedKernelParams svc;
  svc.private_base = svc_heap;
  svc.private_bytes = 2 << 20;
  svc.hot_bytes = 1 << 20;
  svc.hot_fraction = 0.9;
  svc.write_fraction = 0.1;
  svc.compute_per_access = 50;
  svc.accesses = 30000;

  // The intruder claims the service's exact banks -- the collision the
  // static planner would never produce, injected deliberately.
  const os::TaskId intruder = session.create_task(1);
  session.apply_colors(intruder, core::ThreadColorPlan{sp.mem_colors, {}});
  const os::VirtAddr intr_heap = session.heap(intruder).malloc(8 << 20);
  runtime::MixedKernelParams intr;
  intr.private_base = intr_heap;
  intr.private_bytes = 8 << 20;
  intr.write_fraction = 0.8;
  intr.compute_per_access = 5;
  intr.accesses = 60000;

  runtime::ParallelEngine engine(session);
  hw::Cycles clock = 0;  // the simulated time line spans all epochs
  uint64_t prev_conf = 0, prev_lat_acc = 0, prev_lat_cyc = 0;
  uint64_t collided_conf = 0, healed_conf = 0;
  double collided_lat = 0, healed_lat = 0;
  std::printf(
      " epoch  svc-bank-conflicts  svc-latency  heals  pages-migrated  "
      "intruder-colors\n");
  for (unsigned epoch = 0; epoch < 14; ++epoch) {
    std::vector<os::TaskId> tasks = {service, intruder};
    runtime::MixedKernelStream s1(svc, 1 + epoch);
    runtime::MixedKernelStream s2(intr, 100 + epoch);
    std::vector<runtime::OpStream*> ptrs = {&s1, &s2};
    clock = engine.run_parallel(tasks, ptrs, clock).max_end();

    const uint64_t conf = service_bank_conflicts(session.memsys(), prev_conf);
    const double lat =
        service_latency(session.memsys(), prev_lat_acc, prev_lat_cyc);
    if (epoch == 0) {
      collided_conf = conf;
      collided_lat = lat;
    }
    healed_conf = conf;
    healed_lat = lat;
    guard.run_epoch();  // sample -> detect -> heal

    const auto gs = guard.stats().snapshot();
    const auto colors = kernel.task(intruder).mem_color_list();
    std::printf(
        "   %2u        %8llu        %7.1f     %3llu      %6llu        "
        "[%u..%u]\n",
        epoch, static_cast<unsigned long long>(conf), lat,
        static_cast<unsigned long long>(gs.heals_started),
        static_cast<unsigned long long>(gs.pages_recolored),
        colors.empty() ? 0u : static_cast<unsigned>(colors.front()),
        colors.empty() ? 0u : static_cast<unsigned>(colors.back()));
  }

  const auto gs = guard.stats().snapshot();
  std::printf(
      "\nhealed without restart: %llu -> %llu conflicts/epoch and "
      "%.1f -> %.1f cyc/access for the service\n(%llu heal(s), %llu "
      "page(s) migrated, %llu rollback(s), %llu suppressed epoch(s))\n",
      static_cast<unsigned long long>(collided_conf),
      static_cast<unsigned long long>(healed_conf), collided_lat, healed_lat,
      static_cast<unsigned long long>(gs.heals_completed),
      static_cast<unsigned long long>(gs.pages_recolored),
      static_cast<unsigned long long>(gs.rollbacks),
      static_cast<unsigned long long>(gs.guard_suppressed_epochs));
}

void run_colo_demo() {
  std::printf(
      "\n--- colo scale: admission control under churn and chaos ---\n");
  const hw::Topology topo = hw::Topology::tiny();
  const hw::PciConfig pci = hw::PciConfig::program_bios(topo);
  const hw::AddressMapping map(pci, topo);
  os::KernelConfig kcfg;
  kcfg.failpoints.emplace_back(os::FailPoint::kBuddyAlloc,
                               os::FailSpec::probability(0.01));
  os::Kernel kernel(topo, map, kcfg, /*seed=*/7);
  sim::MemorySystem memsys(topo, map);

  runtime::GuardConfig gcfg;
  gcfg.enabled = true;
  gcfg.migration_budget = 64;
  gcfg.cooldown_epochs = 1;
  runtime::ColorGuard guard(kernel, memsys, gcfg);

  // A small machine on purpose: 16 bank colors total means guaranteed
  // tenants (3 banks + 2 LLC colors each) exhaust the palette fast and
  // the admission decisions become visible in the ledger below.
  runtime::AdmissionConfig acfg;
  acfg.guaranteed = {3, 2};
  acfg.burstable = {2, 1};
  runtime::AdmissionController adm(kernel, memsys, acfg);
  adm.bind_guard(&guard);

  runtime::ChurnConfig ccfg;
  ccfg.lifetimes = 1200;
  ccfg.threads = 2;
  ccfg.concurrency = 6;
  runtime::ChurnEngine churn(kernel, adm, ccfg);

  guard.start(std::chrono::milliseconds(1));
  const runtime::ChurnResult r = churn.run();
  guard.stop();

  std::printf(
      "%llu tenant lifetimes (%llu admitted, %llu rejected, %llu "
      "downgraded), %llu pages mapped\n\n",
      static_cast<unsigned long long>(r.lifetimes),
      static_cast<unsigned long long>(r.admitted),
      static_cast<unsigned long long>(r.rejected),
      static_cast<unsigned long long>(r.downgraded),
      static_cast<unsigned long long>(r.pages_mapped));

  const runtime::SloReport slo = adm.report();
  std::printf(
      " class        admits  rejects  downgrades  p50-cyc  p99-cyc  "
      "violations\n");
  for (unsigned c = 0; c < runtime::kNumTenantClasses; ++c) {
    const runtime::ClassSlo& s = slo.cls[c];
    std::printf("  %-11s %6llu   %6llu      %6llu  %7.1f  %7.1f      %6llu\n",
                to_string(static_cast<runtime::TenantClass>(c)),
                static_cast<unsigned long long>(s.admitted),
                static_cast<unsigned long long>(s.rejected),
                static_cast<unsigned long long>(s.downgraded_away),
                s.p50_latency, s.p99_latency,
                static_cast<unsigned long long>(s.isolation_violations));
  }

  const auto inv = kernel.check_invariants(0, /*stop_the_world=*/true);
  std::printf(
      "\nafter the last tenant departs: invariants %s, %llu mapped / %llu "
      "cached / %llu loose frames (all must be 0), ladder %s\n",
      inv.ok ? "OK" : "VIOLATED", static_cast<unsigned long long>(inv.mapped),
      static_cast<unsigned long long>(inv.magazine_cached),
      static_cast<unsigned long long>(inv.loose),
      slo.ladder_conserved ? "conserved" : "BROKEN");
}

}  // namespace

int main() {
  std::printf("latency-sensitive service vs. streaming bullies, node 0\n\n");
  const double solo = run_scenario({"solo (no bullies)", false, false});
  const double shared = run_scenario({"shared, buddy", false, true});
  const double tinted = run_scenario({"shared, TintMalloc", true, true});
  std::printf(
      "\ninterference slowdown: buddy %.2fx -> TintMalloc %.2fx of solo\n",
      shared / solo, tinted / solo);
  run_heal_demo();
  run_colo_demo();
  return 0;
}

// huge_pages: the extension beyond the paper (Section III.C leaves huge
// pages as future work) -- controller-aware 2 MB mappings.
//
// A 2 MB frame spans every bank and LLC color, so it cannot be colored;
// what TintMalloc *can* still give it is node locality. This example
// contrasts three backings for a streaming kernel and for a cache-
// resident kernel:
//   1. default 4 KB pages (buddy),
//   2. colored 4 KB pages (MEM+LLC),
//   3. node-local 2 MB huge pages (hugetlbfs-style boot reservation).
#include <cstdio>
#include <memory>
#include <vector>

#include "core/session.h"
#include "runtime/sim_thread.h"
#include "runtime/experiment.h"
#include "runtime/workload.h"

using namespace tint;

namespace {

struct Result {
  double stream_mcycles;
  double reuse_mcycles;
  uint64_t faults;
};

Result run(bool colored, bool huge) {
  core::MachineConfig mc = core::MachineConfig::opteron6128();
  mc.kernel.huge_pool_blocks_per_node = huge ? 32 : 0;
  mc.seed = 11;
  core::Session session(mc);

  const auto cfg = runtime::make_config(mc.topo, 4, 4);  // 1 thread/node
  std::vector<os::TaskId> tasks;
  for (const unsigned c : cfg.cores) tasks.push_back(session.create_task(c));
  if (colored) session.apply_policy(core::Policy::kMemLlc, tasks);

  constexpr uint64_t kBytes = 16ULL << 20;
  std::vector<os::VirtAddr> bases;
  for (const os::TaskId t : tasks)
    bases.push_back(huge ? session.heap(t).malloc_huge(kBytes)
                         : session.heap(t).malloc(kBytes));

  runtime::ParallelEngine engine(session);
  Result res{};
  hw::Cycles now = 0;
  {
    std::vector<std::unique_ptr<runtime::OpStream>> ss;
    std::vector<runtime::OpStream*> ps;
    for (const os::VirtAddr b : bases) {
      ss.push_back(std::make_unique<runtime::StreamingPassStream>(
          b, kBytes, 128, /*write=*/true, 0));
      ps.push_back(ss.back().get());
    }
    const auto st = engine.run_parallel(tasks, ps, now);
    res.stream_mcycles = static_cast<double>(st.duration()) / 1e6;
    now = st.max_end();
  }
  {
    std::vector<std::unique_ptr<runtime::OpStream>> ss;
    std::vector<runtime::OpStream*> ps;
    for (size_t i = 0; i < tasks.size(); ++i) {
      runtime::MixedKernelParams mp;
      mp.private_base = bases[i];
      mp.private_bytes = kBytes;
      mp.hot_bytes = 2ULL << 20;
      mp.hot_fraction = 0.9;
      mp.accesses = 120000;
      ss.push_back(std::make_unique<runtime::MixedKernelStream>(mp, 40 + i));
      ps.push_back(ss.back().get());
    }
    const auto st = engine.run_parallel(tasks, ps, now);
    res.reuse_mcycles = static_cast<double>(st.duration()) / 1e6;
  }
  res.faults = session.kernel().stats().page_faults;
  return res;
}

}  // namespace

int main() {
  std::printf("4 threads (1/node), 16 MB/thread; stream pass + hot reuse\n\n");
  std::printf("%-24s %14s %14s %10s\n", "backing", "stream[Mcyc]",
              "reuse[Mcyc]", "faults");
  const auto p = [&](const char* name, const Result& r) {
    std::printf("%-24s %14.1f %14.1f %10llu\n", name, r.stream_mcycles,
                r.reuse_mcycles, static_cast<unsigned long long>(r.faults));
  };
  p("4K buddy", run(false, false));
  p("4K colored (MEM+LLC)", run(true, false));
  p("2MB huge, node-local", run(false, true));
  std::printf(
      "\nhuge pages: ~1/512 the faults and contiguous DRAM rows for the\n"
      "stream; colored 4K keeps bank/LLC isolation for the reuse phase.\n");
  return 0;
}

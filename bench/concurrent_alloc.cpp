// Multi-threaded allocation throughput of the locked kernel path:
// real std::threads hammer mmap/touch/munmap (and the raw colored
// alloc/free API) on one shared kernel, sweeping 1..32 threads with and
// without coloring.
//
// Reported counters:
//   * ops/sec (items_per_second) -- one op = one page faulted or freed,
//   * ladder stage mix (colored/widened/default/scavenged per op) --
//     under contention threads steal refilled pages from each other's
//     combos, so the stage mix is itself a contention signal,
//   * fault_races_lost/op -- how often two threads collided on a page.
//
// Thread counts beyond the host's cores still measure something real:
// lock hand-off under oversubscription, which is exactly the regime a
// CI container exposes.
#include <benchmark/benchmark.h>

#include <atomic>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "bench/common.h"
#include "core/session.h"
#include "util/rng.h"

using namespace tint;

namespace {

core::MachineConfig machine() {
  auto mc = core::MachineConfig::opteron6128();
  // Enough DRAM that 32 threads never exhaust a node, small enough that
  // kernel construction stays cheap.
  mc.topo.dram_bytes_per_node = 256ULL << 20;
  return mc;
}

// Shared per-benchmark state: one kernel + one pre-created task per
// bench thread. Benchmark threads only synchronize at the state loop's
// entry/exit barriers, so code before and after the loop races across
// threads -- setup is first-arrival-wins under a mutex, and teardown
// waits until every thread has checked in.
struct Shared {
  std::unique_ptr<core::Session> session;
  std::vector<os::TaskId> tasks;
};
Shared g;
std::mutex g_mu;
std::atomic<int> g_done{0};

void setup(benchmark::State& state, bool colored, unsigned magazine_cap = 0,
           unsigned refill_batch = 1) {
  std::lock_guard<std::mutex> lk(g_mu);
  if (g.session) return;  // another thread already built this run's state
  core::MachineConfig mc = machine();
  mc.kernel.magazine_capacity = magazine_cap;
  mc.kernel.refill_batch_blocks = refill_batch;
  g.session = std::make_unique<core::Session>(mc);
  g.tasks.clear();
  const unsigned ncores = g.session->topology().num_cores();
  const unsigned nb = g.session->mapping().num_bank_colors();
  const unsigned nl = g.session->mapping().num_llc_colors();
  for (int t = 0; t < state.threads(); ++t) {
    const os::TaskId id =
        g.session->create_task(static_cast<unsigned>(t) % ncores);
    if (colored) {
      // Two banks + one LLC color per thread, disjoint where possible --
      // the paper's per-thread partitioning, scaled to the thread count.
      const unsigned b0 = (2 * t) % nb;
      core::ThreadColorPlan plan{{static_cast<uint16_t>(b0),
                                  static_cast<uint16_t>((b0 + 1) % nb)},
                                 {static_cast<uint8_t>(t % nl)}};
      g.session->apply_colors(id, plan);
    }
    g.tasks.push_back(id);
  }
}

void report(benchmark::State& state, uint64_t thread_ops) {
  state.SetItemsProcessed(static_cast<int64_t>(thread_ops));
  g_done.fetch_add(1, std::memory_order_acq_rel);
  if (state.thread_index() != 0) return;
  // Wait for every thread's post-loop cleanup before tearing down.
  while (g_done.load(std::memory_order_acquire) < state.threads())
    std::this_thread::yield();
  const auto s = g.session->kernel().stats().snapshot();
  const double served =
      static_cast<double>(s.ladder_colored + s.ladder_widened +
                          s.ladder_default + s.scavenged_pages);
  if (served > 0) {
    state.counters["colored_frac"] =
        static_cast<double>(s.ladder_colored) / served;
    state.counters["widened_frac"] =
        static_cast<double>(s.ladder_widened) / served;
    state.counters["default_frac"] =
        static_cast<double>(s.ladder_default) / served;
    state.counters["scavenged_frac"] =
        static_cast<double>(s.scavenged_pages) / served;
    state.counters["races_lost_frac"] =
        static_cast<double>(s.fault_races_lost) / served;
  }
  const double mag_lookups =
      static_cast<double>(s.magazine_hits + s.magazine_misses);
  if (mag_lookups > 0)
    state.counters["magazine_hit_frac"] =
        static_cast<double>(s.magazine_hits) / mag_lookups;
  if (s.batch_refills > 0)
    state.counters["batch_refills"] = static_cast<double>(s.batch_refills);
  g.session.reset();
  g_done.store(0, std::memory_order_release);
}

// Full VMA lifecycle: mmap a small region, fault every page, munmap.
// The dominant costs are the mm lock (shared fault vs exclusive
// mmap/munmap) and the buddy zone locks.
void BM_VmaChurn(benchmark::State& state, bool colored) {
  setup(state, colored);
  os::Kernel& k = g.session->kernel();
  const os::TaskId task = g.tasks[static_cast<size_t>(state.thread_index())];
  constexpr uint64_t kPages = 64;
  uint64_t ops = 0;
  for (auto _ : state) {
    const os::VirtAddr base = k.mmap(task, 0, kPages * 4096, 0);
    for (uint64_t p = 0; p < kPages; ++p) {
      benchmark::DoNotOptimize(k.touch(task, base + p * 4096, true).pa);
      ++ops;
    }
    k.munmap(task, base, kPages * 4096);
  }
  report(state, ops);
}

// Raw colored allocate/free churn: no VMAs, just Algorithm 1 against
// the color shards and the buddy zones -- the pure allocator hot path.
// With a magazine capacity, the steady-state round-trip becomes a pop
// and push on the task's own magazine instead of the shared shards.
void BM_RawAllocFree(benchmark::State& state, bool colored,
                     unsigned magazine_cap = 0, unsigned refill_batch = 1) {
  setup(state, colored, magazine_cap, refill_batch);
  os::Kernel& k = g.session->kernel();
  const os::TaskId task = g.tasks[static_cast<size_t>(state.thread_index())];
  Rng rng(1234 + static_cast<uint64_t>(state.thread_index()));
  // Held set below the per-task colored-combo capacity (~128 pages for
  // two banks x one LLC color on this machine), so the steady state
  // measures the colored round-trip, not combo exhaustion.
  std::vector<os::Pfn> held;
  held.reserve(96);
  uint64_t ops = 0;
  for (auto _ : state) {
    if (held.size() < 96 && (held.empty() || rng.next_bool(0.55))) {
      const auto out = k.alloc_pages(task, 0);
      if (out.pfn != os::kNoPage) held.push_back(out.pfn);
    } else {
      k.free_pages(held.back(), 0);
      held.pop_back();
    }
    ++ops;
  }
  for (const os::Pfn p : held) k.free_pages(p, 0);
  report(state, ops);
}

// Stop-the-world freeze cost vs. color-shard count: one thread hammers
// full STW invariant walks (freeze every shard + zone + magazine, walk
// all frames, thaw) while 8 background threads churn the colored hot
// path. More shards cut allocation contention but make every freeze
// acquire more locks -- this cell makes that trade-off visible. Arg 0
// is the topology-derived default; the resolved count is reported as
// the `shards` counter, so `--json` records the derivation too.
void BM_StwFreeze(benchmark::State& state) {
  core::MachineConfig mc = machine();
  mc.kernel.color_shards = static_cast<unsigned>(state.range(0));
  mc.kernel.magazine_capacity = 16;
  mc.kernel.refill_batch_blocks = 8;
  core::Session session(mc);
  os::Kernel& k = session.kernel();
  constexpr unsigned kChurn = 8;
  const unsigned ncores = session.topology().num_cores();
  const unsigned nb = session.mapping().num_bank_colors();
  const unsigned nl = session.mapping().num_llc_colors();

  std::vector<os::TaskId> tasks;
  for (unsigned t = 0; t < kChurn; ++t) {
    const os::TaskId id = session.create_task(t % ncores);
    const unsigned b0 = (2 * t) % nb;
    core::ThreadColorPlan plan{{static_cast<uint16_t>(b0),
                                static_cast<uint16_t>((b0 + 1) % nb)},
                               {static_cast<uint8_t>(t % nl)}};
    session.apply_colors(id, plan);
    tasks.push_back(id);
  }

  // Churn through the VMA path (not raw alloc_pages): in-flight faults
  // hold the mm lock shared, so the walk's exclusive acquisition drains
  // them and every frame is accounted -- each iteration is a sound
  // zero-leak audit, not just a lock-cost probe.
  std::atomic<bool> stop{false};
  std::vector<std::thread> churn;
  for (unsigned t = 0; t < kChurn; ++t) {
    churn.emplace_back([&k, &stop, task = tasks[t]] {
      constexpr uint64_t kPages = 16;
      while (!stop.load(std::memory_order_acquire)) {
        const os::VirtAddr base = k.mmap(task, 0, kPages * 4096, 0);
        if (base == os::kMmapFailed) continue;
        for (uint64_t p = 0; p < kPages; ++p)
          benchmark::DoNotOptimize(k.touch(task, base + p * 4096, true).pa);
        k.munmap(task, base, kPages * 4096);
      }
    });
  }

  for (auto _ : state) {
    const auto rep =
        k.check_invariants(/*expected_loose=*/0, /*stop_the_world=*/true);
    if (!rep.ok) state.SkipWithError(rep.detail.c_str());
    benchmark::DoNotOptimize(rep.total);
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : churn) t.join();
  state.counters["shards"] =
      static_cast<double>(k.color_lists().num_shards());
}

void BM_VmaChurn_Buddy(benchmark::State& s) { BM_VmaChurn(s, false); }
void BM_VmaChurn_Colored(benchmark::State& s) { BM_VmaChurn(s, true); }
void BM_RawAllocFree_Buddy(benchmark::State& s) { BM_RawAllocFree(s, false); }
void BM_RawAllocFree_Colored(benchmark::State& s) { BM_RawAllocFree(s, true); }
void BM_RawAllocFree_Magazine(benchmark::State& s) {
  BM_RawAllocFree(s, true, /*magazine_cap=*/64, /*refill_batch=*/8);
}

}  // namespace

BENCHMARK(BM_VmaChurn_Buddy)->ThreadRange(1, 32)->UseRealTime();
BENCHMARK(BM_VmaChurn_Colored)->ThreadRange(1, 32)->UseRealTime();
BENCHMARK(BM_RawAllocFree_Buddy)->ThreadRange(1, 32)->UseRealTime();
BENCHMARK(BM_RawAllocFree_Colored)->ThreadRange(1, 32)->UseRealTime();
BENCHMARK(BM_RawAllocFree_Magazine)->ThreadRange(1, 32)->UseRealTime();
// Arg = color_shards knob (0 = derive from topology); the resolved
// count lands in the `shards` counter.
BENCHMARK(BM_StwFreeze)->Arg(0)->Arg(16)->Arg(64)->Arg(256)->UseRealTime();

int main(int argc, char** argv) {
  return tint::bench::run_gbench_main(argc, argv);
}

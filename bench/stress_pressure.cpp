// Robustness soak bench: allocation churn near capacity with failpoints
// injecting buddy hiccups at a configurable rate (the benchmark Arg is
// the fault probability in per-mille). Two questions:
//   * what does the degradation ladder cost? -- the per-op time and the
//     ladder-stage counters show how much work moves from the colored
//     fast path to widening/default/scavenge as faults increase;
//   * does the kernel stay consistent? -- every iteration ends with a
//     full check_invariants() walk and the run aborts if frame
//     accounting is off by a single page.
#include <benchmark/benchmark.h>

#include <vector>

#include "bench/common.h"
#include "core/tintmalloc.h"
#include "hw/pci_config.h"

using namespace tint;

namespace {

void BM_PressureSoak(benchmark::State& state) {
  const double fault_prob =
      static_cast<double>(state.range(0)) / 1000.0;
  const auto topo = hw::Topology::tiny();
  const auto pci = hw::PciConfig::program_bios(topo);
  const hw::AddressMapping map(pci, topo);

  uint64_t mallocs = 0, failed = 0, fires = 0;
  uint64_t colored = 0, widened = 0, defaulted = 0, scavenged = 0;
  for (auto _ : state) {
    state.PauseTiming();
    os::KernelConfig kcfg;
    if (fault_prob > 0)
      kcfg.failpoints.emplace_back(os::FailPoint::kBuddyAlloc,
                                   os::FailSpec::probability(fault_prob));
    os::Kernel kernel(topo, map, kcfg, /*seed=*/state.range(0) + 1);
    const os::TaskId t0 = kernel.create_task(0);
    const os::TaskId t1 = kernel.create_task(2);
    kernel.mmap(t0, map.make_bank_color(0, 0) | os::SET_MEM_COLOR, 0,
                os::PROT_COLOR_ALLOC);
    core::HeapConfig hcfg;
    hcfg.populate = true;
    core::TintHeap h0(kernel, t0, hcfg);
    core::TintHeap h1(kernel, t1, hcfg);
    state.ResumeTiming();

    // Fill to ~3/4 of the machine, then churn at that level.
    std::vector<std::pair<core::TintHeap*, os::VirtAddr>> live;
    const uint64_t target = topo.total_pages() * 3 / 4;
    uint64_t pages = 0;
    while (pages < target) {
      core::TintHeap& h = (pages % 3 == 0) ? h1 : h0;
      const os::VirtAddr p = h.malloc(4096);
      ++mallocs;
      if (p == 0) {
        ++failed;
        break;  // ladder dry earlier than expected; stop filling
      }
      live.emplace_back(&h, p);
      ++pages;
    }
    for (int i = 0; i < 2000 && !live.empty(); ++i) {
      auto [h, p] = live[static_cast<size_t>(i * 37) % live.size()];
      h->free(p);
      live.erase(live.begin() +
                 static_cast<long>(static_cast<size_t>(i * 37) % live.size()));
      const os::VirtAddr q = h->malloc(4096);
      ++mallocs;
      if (q == 0)
        ++failed;
      else
        live.emplace_back(h, q);
    }

    state.PauseTiming();
    fires += kernel.failpoints().stats(os::FailPoint::kBuddyAlloc).fires;
    colored += kernel.stats().ladder_colored;
    widened += kernel.stats().ladder_widened;
    defaulted += kernel.stats().ladder_default;
    scavenged += kernel.stats().scavenged_pages;
    h0.release_all();
    h1.release_all();
    const auto rep = kernel.check_invariants();
    if (!rep.ok) {
      state.SkipWithError(rep.detail.c_str());
      return;
    }
    if (rep.mapped != 0) {
      state.SkipWithError("teardown leaked mapped pages");
      return;
    }
    state.ResumeTiming();
  }
  const double n = static_cast<double>(mallocs ? mallocs : 1);
  state.counters["fault_fires"] = static_cast<double>(fires);
  state.counters["failed_frac"] = static_cast<double>(failed) / n;
  state.counters["ladder_colored"] = static_cast<double>(colored);
  state.counters["ladder_widened"] = static_cast<double>(widened);
  state.counters["ladder_default"] = static_cast<double>(defaulted);
  state.counters["ladder_scavenged"] = static_cast<double>(scavenged);
  state.SetItemsProcessed(static_cast<int64_t>(mallocs));
}
BENCHMARK(BM_PressureSoak)
    ->Arg(0)     // no faults: baseline ladder behaviour near capacity
    ->Arg(10)    // 1% buddy hiccups
    ->Arg(50)    // 5% buddy hiccups
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return tint::bench::run_gbench_main(argc, argv);
}

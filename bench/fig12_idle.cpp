// Fig. 12: normalized total idle time at barriers (Algorithm 3),
// summed over all threads, for the same sweep as Fig. 11.
//
// Paper results reproduced in shape:
//   * MEM+LLC reduces total idle time (up to ~74.3% at 16t/4n),
//   * idle reduction exceeds runtime reduction for most benchmarks,
//   * equake is the exception (runtime gain > idle gain: its imbalance
//     is intrinsic to the work division, not to memory placement).
#include "bench/common.h"

using namespace tint;

int main(int argc, char** argv) {
  bench::print_banner("Fig. 12", "normalized total idle time at barriers");
  bench::JsonSink json(argc, argv);

  const double scale_env = bench::env_scale();
  const auto machine = bench::machine_for_scale(scale_env);
  runtime::ExperimentDriver driver(machine, bench::env_reps(), 2026);
  const auto configs = runtime::standard_configs(machine.topo);
  const auto suite = runtime::standard_suite();
  const double scale = scale_env;

  for (const auto& config : configs) {
    Table table("total idle normalized to buddy -- " + config.name);
    table.set_header({"benchmark", "buddy", "BPM", "MEM+LLC", "best other",
                      "(which)", "idle gain", "runtime gain"});
    for (const auto& spec : suite) {
      const auto cell = bench::run_cell(driver, spec.scaled(scale), config);
      const double base = cell.buddy.total_idle.mean();
      const double idle_gain =
          1.0 - cell.memllc.total_idle.mean() / std::max(base, 1.0);
      const double rt_gain = 1.0 - cell.memllc.runtime.mean() /
                                       cell.buddy.runtime.mean();
      table.add_row({spec.name, "1.000",
                     bench::norm(cell.bpm.total_idle.mean(), base),
                     bench::norm(cell.memllc.total_idle.mean(), base),
                     bench::norm(cell.best_other.result.total_idle.mean(),
                                 base),
                     std::string(core::to_string(cell.best_other.policy)),
                     Table::fmt(100 * idle_gain, 1) + "%",
                     Table::fmt(100 * rt_gain, 1) + "%"});
    }
    table.print();
    json.add(table);
    std::printf("\n");
  }
  std::printf(
      "Shape check: MEM+LLC idle < buddy everywhere; idle gain >= runtime\n"
      "gain for most benchmarks, with equake the exception.\n");
  return 0;
}

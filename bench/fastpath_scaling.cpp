// Scaling of the fast-path allocation caches, 1..32 threads.
//
// Two hot paths, each measured with its cache off and on:
//   * PageChurn -- the kernel's colored page alloc/free round-trip, off
//     (every op crosses the color shards) vs. with per-task page
//     magazines + batched Algorithm-2 refill (steady state touches only
//     the task's own magazine).
//   * HeapChurn -- TintHeap malloc/free of size-class blocks with every
//     thread hammering ONE shared heap, off (every op takes the arena
//     lock) vs. with per-thread tcaches (steady state is lock-free).
//
// Reported counters: ops/sec (items_per_second), magazine_hit_frac /
// tcache_hit_frac. The interesting shape is ops/sec at 8+ threads:
// cached variants should scale, uncached ones flatline on the shared
// locks.
#include <benchmark/benchmark.h>

#include <atomic>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "bench/common.h"
#include "core/session.h"

using namespace tint;

namespace {

// Shared per-benchmark state; same first-arrival-wins setup / last-out
// teardown discipline as concurrent_alloc.cpp.
struct Shared {
  std::unique_ptr<core::Session> session;
  std::vector<os::TaskId> tasks;
};
Shared g;
std::mutex g_mu;
std::atomic<int> g_done{0};

void setup(benchmark::State& state, unsigned magazine_cap,
           unsigned refill_batch, unsigned tcache_depth) {
  std::lock_guard<std::mutex> lk(g_mu);
  if (g.session) return;
  core::MachineConfig mc = core::MachineConfig::opteron6128();
  mc.topo.dram_bytes_per_node = 256ULL << 20;
  mc.kernel.magazine_capacity = magazine_cap;
  mc.kernel.refill_batch_blocks = refill_batch;
  mc.heap.tcache_depth = tcache_depth;
  g.session = std::make_unique<core::Session>(mc);
  g.tasks.clear();
  const unsigned ncores = g.session->topology().num_cores();
  const unsigned nb = g.session->mapping().num_bank_colors();
  const unsigned nl = g.session->mapping().num_llc_colors();
  for (int t = 0; t < state.threads(); ++t) {
    const os::TaskId id =
        g.session->create_task(static_cast<unsigned>(t) % ncores);
    const unsigned b0 = (2 * t) % nb;
    core::ThreadColorPlan plan{{static_cast<uint16_t>(b0),
                                static_cast<uint16_t>((b0 + 1) % nb)},
                               {static_cast<uint8_t>(t % nl)}};
    g.session->apply_colors(id, plan);
    g.tasks.push_back(id);
  }
}

void report(benchmark::State& state, uint64_t thread_ops, bool heap_bench) {
  state.SetItemsProcessed(static_cast<int64_t>(thread_ops));
  g_done.fetch_add(1, std::memory_order_acq_rel);
  if (state.thread_index() != 0) return;
  while (g_done.load(std::memory_order_acquire) < state.threads())
    std::this_thread::yield();
  if (heap_bench) {
    const core::HeapStats hs = g.session->heap(g.tasks[0]).stats();
    if (hs.mallocs > 0)
      state.counters["tcache_hit_frac"] =
          static_cast<double>(hs.tcache_hits) /
          static_cast<double>(hs.mallocs);
  } else {
    const auto s = g.session->kernel().stats().snapshot();
    const double lookups =
        static_cast<double>(s.magazine_hits + s.magazine_misses);
    if (lookups > 0)
      state.counters["magazine_hit_frac"] =
          static_cast<double>(s.magazine_hits) / lookups;
  }
  g.session.reset();
  g_done.store(0, std::memory_order_release);
}

// Colored page alloc/free round-trips on the task's own pages.
void BM_PageChurn(benchmark::State& state, unsigned magazine_cap,
                  unsigned refill_batch) {
  setup(state, magazine_cap, refill_batch, 0);
  os::Kernel& k = g.session->kernel();
  const os::TaskId task = g.tasks[static_cast<size_t>(state.thread_index())];
  std::vector<os::Pfn> held;
  held.reserve(64);
  uint64_t ops = 0;
  for (auto _ : state) {
    while (held.size() < 64) {
      const auto out = k.alloc_pages(task, 0);
      if (out.pfn == os::kNoPage) break;
      held.push_back(out.pfn);
      ++ops;
    }
    while (!held.empty()) {
      k.free_pages(held.back(), 0);
      held.pop_back();
      ++ops;
    }
  }
  report(state, ops, /*heap_bench=*/false);
}

// Size-class malloc/free round-trips, all threads on ONE shared heap.
void BM_HeapChurn(benchmark::State& state, unsigned tcache_depth) {
  setup(state, 0, 1, tcache_depth);
  core::TintHeap& heap = g.session->heap(g.tasks[0]);
  constexpr uint64_t kSizes[] = {64, 256, 1024};
  std::vector<os::VirtAddr> held;
  held.reserve(48);
  uint64_t ops = 0;
  for (auto _ : state) {
    for (unsigned i = 0; i < 48; ++i) {
      const os::VirtAddr p = heap.malloc(kSizes[i % 3]);
      if (p == 0) break;
      held.push_back(p);
      ++ops;
    }
    while (!held.empty()) {
      heap.free(held.back());
      held.pop_back();
      ++ops;
    }
  }
  report(state, ops, /*heap_bench=*/true);
}

void BM_PageChurn_NoMagazine(benchmark::State& s) { BM_PageChurn(s, 0, 1); }
void BM_PageChurn_Magazine(benchmark::State& s) { BM_PageChurn(s, 64, 8); }
void BM_HeapChurn_NoTcache(benchmark::State& s) { BM_HeapChurn(s, 0); }
void BM_HeapChurn_Tcache(benchmark::State& s) { BM_HeapChurn(s, 64); }

}  // namespace

BENCHMARK(BM_PageChurn_NoMagazine)->ThreadRange(1, 32)->UseRealTime();
BENCHMARK(BM_PageChurn_Magazine)->ThreadRange(1, 32)->UseRealTime();
BENCHMARK(BM_HeapChurn_NoTcache)->ThreadRange(1, 32)->UseRealTime();
BENCHMARK(BM_HeapChurn_Tcache)->ThreadRange(1, 32)->UseRealTime();

int main(int argc, char** argv) {
  return tint::bench::run_gbench_main(argc, argv);
}

// Scaling of the fast-path allocation caches, 1..32 threads.
//
// Two hot paths, each measured with its cache off and on:
//   * PageChurn -- the kernel's colored page alloc/free round-trip, off
//     (every op crosses the color shards) vs. with per-task page
//     magazines + batched Algorithm-2 refill (steady state touches only
//     the task's own magazine) vs. with the allocation offload engine
//     on top (steady state pops a background-stocked SPSC ring; refill
//     and free absorption happen off the critical path).
//   * HeapChurn -- TintHeap malloc/free of size-class blocks with every
//     thread hammering ONE shared heap, off (every op takes the arena
//     lock) vs. with per-thread tcaches (steady state is lock-free).
//
// Reported counters: ops/sec (items_per_second), magazine_hit_frac /
// tcache_hit_frac, and for the offload variant offload_hit_frac (ring
// pops per colored alloc) plus the engine's absolute ring counters.
// The interesting shape is ops/sec at 8+ threads: cached variants
// should scale, uncached ones flatline on the shared locks.
#include <benchmark/benchmark.h>

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.h"
#include "core/session.h"
#include "runtime/offload.h"

using namespace tint;

namespace {

// Shared per-benchmark state; same first-arrival-wins setup / last-out
// teardown discipline as concurrent_alloc.cpp.
struct Shared {
  std::unique_ptr<core::Session> session;
  std::vector<os::TaskId> tasks;
  std::unique_ptr<runtime::OffloadEngine> engine;
};
Shared g;
std::mutex g_mu;
std::atomic<int> g_done{0};

void setup(benchmark::State& state, unsigned magazine_cap,
           unsigned refill_batch, unsigned tcache_depth,
           bool offload = false, unsigned workers = 1,
           bool adaptive = false) {
  std::lock_guard<std::mutex> lk(g_mu);
  if (g.session) return;
  core::MachineConfig mc = core::MachineConfig::opteron6128();
  mc.topo.dram_bytes_per_node = 256ULL << 20;
  mc.kernel.magazine_capacity = magazine_cap;
  mc.kernel.refill_batch_blocks = refill_batch;
  mc.heap.tcache_depth = tcache_depth;
  if (offload) {
    mc.kernel.offload.enabled = true;
    mc.kernel.offload.ring_depth = 256;
    mc.kernel.offload.min_stock = 64;
    mc.kernel.offload.drain_batch = 128;
    mc.kernel.offload.workers = workers;  // 0 = auto (one per node)
    mc.kernel.offload.adaptive_ring = adaptive;
  }
  g.session = std::make_unique<core::Session>(mc);
  g.tasks.clear();
  const unsigned ncores = g.session->topology().num_cores();
  const unsigned nb = g.session->mapping().num_bank_colors();
  const unsigned nl = g.session->mapping().num_llc_colors();
  for (int t = 0; t < state.threads(); ++t) {
    const os::TaskId id =
        g.session->create_task(static_cast<unsigned>(t) % ncores);
    const unsigned b0 = (2 * t) % nb;
    core::ThreadColorPlan plan{{static_cast<uint16_t>(b0),
                                static_cast<uint16_t>((b0 + 1) % nb)},
                               {static_cast<uint8_t>(t % nl)}};
    g.session->apply_colors(id, plan);
    g.tasks.push_back(id);
  }
  if (offload) {
    runtime::OffloadEngineConfig ecfg;
    ecfg.idle_sleep = std::chrono::microseconds(20);
    g.engine =
        std::make_unique<runtime::OffloadEngine>(g.session->kernel(), ecfg);
    for (const os::TaskId id : g.tasks) g.engine->watch(id);
    g.engine->start();
  }
}

void report(benchmark::State& state, uint64_t thread_ops, bool heap_bench) {
  state.SetItemsProcessed(static_cast<int64_t>(thread_ops));
  g_done.fetch_add(1, std::memory_order_acq_rel);
  if (state.thread_index() != 0) return;
  while (g_done.load(std::memory_order_acquire) < state.threads())
    std::this_thread::yield();
  if (heap_bench) {
    const core::HeapStats hs = g.session->heap(g.tasks[0]).stats();
    if (hs.mallocs > 0)
      state.counters["tcache_hit_frac"] =
          static_cast<double>(hs.tcache_hits) /
          static_cast<double>(hs.mallocs);
  } else {
    const auto s = g.session->kernel().stats().snapshot();
    const double lookups =
        static_cast<double>(s.magazine_hits + s.magazine_misses);
    if (lookups > 0)
      state.counters["magazine_hit_frac"] =
          static_cast<double>(s.magazine_hits) / lookups;
    // Ring probes happen on every colored alloc when offload is on: a
    // hit popped the completion ring, an empty stall fell through to
    // the magazine. hits/(hits+stalls) is the ring's service fraction.
    const double probes =
        static_cast<double>(s.ring_alloc_hits + s.ring_empty_stalls);
    if (probes > 0) {
      state.counters["offload_hit_frac"] =
          static_cast<double>(s.ring_alloc_hits) / probes;
      state.counters["prefault_pages"] =
          static_cast<double>(s.prefault_pages);
      state.counters["ring_full_stalls"] =
          static_cast<double>(s.ring_full_stalls);
      state.counters["batches_drained"] =
          static_cast<double>(s.batches_drained);
    }
  }
  // Per-node engine counters (one rollup per worker, named w<idx>_*) so
  // a multi-engine JSON diff can match node against node by name, plus
  // the tuner's resize totals for the adaptive cells.
  if (g.engine) {
    state.counters["engine_workers"] =
        static_cast<double>(g.engine->num_workers());
    for (size_t w = 0; w < g.engine->num_workers(); ++w) {
      const auto ws = g.engine->worker_snapshot(w);
      const std::string p = "w" + std::to_string(w) + "_";
      state.counters[p + "rounds"] = static_cast<double>(ws.rounds_run);
      state.counters[p + "restocked"] =
          static_cast<double>(ws.frames_restocked);
      state.counters[p + "recycled"] =
          static_cast<double>(ws.frames_recycled);
    }
    const auto es = g.engine->stats().snapshot();
    state.counters["ring_grows"] = static_cast<double>(es.ring_grows);
    state.counters["ring_shrinks"] = static_cast<double>(es.ring_shrinks);
  }
  g.engine.reset();  // stops the thread and drains before the kernel dies
  g.session.reset();
  g_done.store(0, std::memory_order_release);
}

// Colored page alloc/free round-trips on the task's own pages.
void BM_PageChurn(benchmark::State& state, unsigned magazine_cap,
                  unsigned refill_batch, bool offload = false,
                  unsigned workers = 1, bool adaptive = false) {
  setup(state, magazine_cap, refill_batch, 0, offload, workers, adaptive);
  os::Kernel& k = g.session->kernel();
  const os::TaskId task = g.tasks[static_cast<size_t>(state.thread_index())];
  std::vector<os::Pfn> held;
  held.reserve(64);
  uint64_t ops = 0;
  for (auto _ : state) {
    while (held.size() < 64) {
      const auto out = k.alloc_pages(task, 0);
      if (out.pfn == os::kNoPage) break;
      held.push_back(out.pfn);
      ++ops;
    }
    while (!held.empty()) {
      k.free_pages(held.back(), 0);
      held.pop_back();
      ++ops;
    }
  }
  report(state, ops, /*heap_bench=*/false);
}

// Size-class malloc/free round-trips, all threads on ONE shared heap.
void BM_HeapChurn(benchmark::State& state, unsigned tcache_depth) {
  setup(state, 0, 1, tcache_depth);
  core::TintHeap& heap = g.session->heap(g.tasks[0]);
  constexpr uint64_t kSizes[] = {64, 256, 1024};
  std::vector<os::VirtAddr> held;
  held.reserve(48);
  uint64_t ops = 0;
  for (auto _ : state) {
    for (unsigned i = 0; i < 48; ++i) {
      const os::VirtAddr p = heap.malloc(kSizes[i % 3]);
      if (p == 0) break;
      held.push_back(p);
      ++ops;
    }
    while (!held.empty()) {
      heap.free(held.back());
      held.pop_back();
      ++ops;
    }
  }
  report(state, ops, /*heap_bench=*/true);
}

void BM_PageChurn_NoMagazine(benchmark::State& s) { BM_PageChurn(s, 0, 1); }
void BM_PageChurn_Magazine(benchmark::State& s) { BM_PageChurn(s, 64, 8); }
// Pure offload tier: no magazine, every round-trip is a try-CAS guard
// plus an SPSC ring op, with the engine recycling frees back into the
// completion ring in the background.
void BM_PageChurn_Offload(benchmark::State& s) {
  BM_PageChurn(s, 0, 8, /*offload=*/true);
}
// NUMA-sharded engine cells: 2 and 4 allocator workers on the 4-node
// opteron topology (4 == auto there), and the 4-worker engine with the
// adaptive ring-depth tuner armed. The relative guard in
// bench/diff_baselines.py compares these against the single-worker
// cell at 8+ threads within one fresh run.
void BM_PageChurn_OffloadW2(benchmark::State& s) {
  BM_PageChurn(s, 0, 8, /*offload=*/true, /*workers=*/2);
}
void BM_PageChurn_OffloadW4(benchmark::State& s) {
  BM_PageChurn(s, 0, 8, /*offload=*/true, /*workers=*/4);
}
void BM_PageChurn_OffloadW4Adaptive(benchmark::State& s) {
  BM_PageChurn(s, 0, 8, /*offload=*/true, /*workers=*/4, /*adaptive=*/true);
}
void BM_HeapChurn_NoTcache(benchmark::State& s) { BM_HeapChurn(s, 0); }
void BM_HeapChurn_Tcache(benchmark::State& s) { BM_HeapChurn(s, 64); }

}  // namespace

BENCHMARK(BM_PageChurn_NoMagazine)->ThreadRange(1, 32)->UseRealTime();
BENCHMARK(BM_PageChurn_Magazine)->ThreadRange(1, 32)->UseRealTime();
BENCHMARK(BM_PageChurn_Offload)->ThreadRange(1, 32)->UseRealTime();
BENCHMARK(BM_PageChurn_OffloadW2)->ThreadRange(1, 32)->UseRealTime();
BENCHMARK(BM_PageChurn_OffloadW4)->ThreadRange(1, 32)->UseRealTime();
BENCHMARK(BM_PageChurn_OffloadW4Adaptive)->ThreadRange(1, 32)->UseRealTime();
BENCHMARK(BM_HeapChurn_NoTcache)->ThreadRange(1, 32)->UseRealTime();
BENCHMARK(BM_HeapChurn_Tcache)->ThreadRange(1, 32)->UseRealTime();

int main(int argc, char** argv) {
  return tint::bench::run_gbench_main(argc, argv);
}

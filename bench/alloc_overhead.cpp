// Section III.C: allocation overhead of TintMalloc vs. the default
// buddy path, measured with google-benchmark.
//
// Two things are measured at once:
//   * host time per operation (the simulator's own allocator speed), and
//   * the *simulated* fault cost in cycles, reported as the
//     "sim_cycles/fault" counter -- this is the number the paper's claim
//     is about: colored allocation is expensive while the kernel is
//     still colorizing buddy blocks (cold), and settles to a constant
//     once the color lists are populated (warm).
#include <benchmark/benchmark.h>

#include "bench/common.h"
#include "core/session.h"

using namespace tint;

namespace {

core::MachineConfig machine() {
  auto mc = core::MachineConfig::opteron6128();
  // A smaller machine keeps per-iteration kernel rebuilds cheap.
  mc.topo.dram_bytes_per_node = 256ULL << 20;
  return mc;
}

// Faults `pages` fresh pages, returns accumulated simulated cycles.
uint64_t fault_pages(core::Session& s, os::TaskId t, uint64_t pages) {
  const os::VirtAddr base = s.kernel().mmap(t, 0, pages * 4096, 0);
  uint64_t cycles = 0;
  for (uint64_t i = 0; i < pages; ++i)
    cycles += s.kernel().touch(t, base + i * 4096, true).fault_cycles;
  return cycles;
}

void BM_DefaultFault(benchmark::State& state) {
  uint64_t sim_cycles = 0, faults = 0;
  for (auto _ : state) {
    state.PauseTiming();
    core::Session s(machine());
    const os::TaskId t = s.create_task(0);
    state.ResumeTiming();
    sim_cycles += fault_pages(s, t, 1024);
    faults += 1024;
    state.PauseTiming();
    state.ResumeTiming();
  }
  state.counters["sim_cycles/fault"] =
      static_cast<double>(sim_cycles) / static_cast<double>(faults);
  state.SetItemsProcessed(static_cast<int64_t>(faults));
}
BENCHMARK(BM_DefaultFault)->Unit(benchmark::kMillisecond);

void BM_ColoredFaultCold(benchmark::State& state) {
  // Restrictive color set; every batch starts from a fresh kernel whose
  // color lists are empty, so Algorithm 1 must refill from buddy.
  uint64_t sim_cycles = 0, faults = 0;
  for (auto _ : state) {
    state.PauseTiming();
    core::Session s(machine());
    const os::TaskId t = s.create_task(0);
    s.apply_colors(t, core::ThreadColorPlan{{0, 1, 2, 3}, {0, 1}});
    state.ResumeTiming();
    sim_cycles += fault_pages(s, t, 1024);
    faults += 1024;
  }
  state.counters["sim_cycles/fault"] =
      static_cast<double>(sim_cycles) / static_cast<double>(faults);
  state.SetItemsProcessed(static_cast<int64_t>(faults));
}
BENCHMARK(BM_ColoredFaultCold)->Unit(benchmark::kMillisecond);

void BM_ColoredFaultWarm(benchmark::State& state) {
  // Same colors, but the session's color lists were populated by a
  // previous allocate/free cycle: faults pop straight off the lists.
  core::Session s(machine());
  const os::TaskId t = s.create_task(0);
  s.apply_colors(t, core::ThreadColorPlan{{0, 1, 2, 3}, {0, 1}});
  // Prime: allocate and free once so the lists hold matching pages.
  const os::VirtAddr prime = s.kernel().mmap(t, 0, 1024 * 4096, 0);
  for (uint64_t i = 0; i < 1024; ++i)
    s.kernel().touch(t, prime + i * 4096, true);
  s.kernel().munmap(t, prime, 1024 * 4096);

  uint64_t sim_cycles = 0, faults = 0;
  for (auto _ : state) {
    const os::VirtAddr base = s.kernel().mmap(t, 0, 1024 * 4096, 0);
    for (uint64_t i = 0; i < 1024; ++i)
      sim_cycles += s.kernel().touch(t, base + i * 4096, true).fault_cycles;
    faults += 1024;
    s.kernel().munmap(t, base, 1024 * 4096);  // balanced alloc/free
  }
  state.counters["sim_cycles/fault"] =
      static_cast<double>(sim_cycles) / static_cast<double>(faults);
  state.SetItemsProcessed(static_cast<int64_t>(faults));
}
BENCHMARK(BM_ColoredFaultWarm)->Unit(benchmark::kMillisecond);

void BM_HeapMallocFree(benchmark::State& state) {
  // User-level TintHeap throughput for small blocks (host time only).
  core::Session s(machine());
  const os::TaskId t = s.create_task(0);
  auto& heap = s.heap(t);
  const uint64_t size = static_cast<uint64_t>(state.range(0));
  for (auto _ : state) {
    const os::VirtAddr p = heap.malloc(size);
    benchmark::DoNotOptimize(p);
    heap.free(p);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_HeapMallocFree)->Arg(16)->Arg(256)->Arg(4096);

void BM_ColorControlMmap(benchmark::State& state) {
  // The one-line opt-in itself (a TCB update) is cheap.
  core::Session s(machine());
  const os::TaskId t = s.create_task(0);
  unsigned c = 0;
  for (auto _ : state) {
    s.kernel().mmap(t, (c % 32) | os::SET_LLC_COLOR, 0, os::PROT_COLOR_ALLOC);
    s.kernel().mmap(t, (c % 32) | os::CLEAR_LLC_COLOR, 0,
                    os::PROT_COLOR_ALLOC);
    ++c;
  }
}
BENCHMARK(BM_ColorControlMmap);

}  // namespace

int main(int argc, char** argv) {
  return tint::bench::run_gbench_main(argc, argv);
}

// Fig. 11: normalized benchmark runtimes of the six SPEC/Parsec proxies
// under buddy, BPM, MEM+LLC, and the best other coloring, across the
// five thread/node configurations of Section V.B.
//
// Paper results this bench reproduces in shape:
//   * MEM+LLC < buddy for all six benchmarks in every configuration
//     (up to ~29.8% for lbm at 16 threads / 4 nodes),
//   * BPM >= buddy everywhere (controller-oblivious banks go remote),
//   * blackscholes improves least (MEM+LLC(part) its best coloring),
//   * buddy's error bars (min/max over reps) exceed MEM+LLC's.
#include "bench/common.h"

using namespace tint;

int main(int argc, char** argv) {
  bench::print_banner("Fig. 11", "normalized benchmark runtime");
  bench::JsonSink json(argc, argv);

  const double scale_env = bench::env_scale();
  const auto machine = bench::machine_for_scale(scale_env);
  runtime::ExperimentDriver driver(machine, bench::env_reps(), 2026);
  const auto configs = runtime::standard_configs(machine.topo);
  const auto suite = runtime::standard_suite();
  const double scale = scale_env;

  for (const auto& config : configs) {
    Table table("runtime normalized to buddy -- " + config.name);
    table.set_header({"benchmark", "buddy", "buddy minmax", "BPM", "MEM+LLC",
                      "best other", "(which)"});
    for (const auto& spec : suite) {
      const auto cell = bench::run_cell(driver, spec.scaled(scale), config);
      const double base = cell.buddy.runtime.mean();
      table.add_row(
          {spec.name, "1.000",
           Table::fmt(cell.buddy.runtime.min() / base, 3) + "/" +
               Table::fmt(cell.buddy.runtime.max() / base, 3),
           bench::norm(cell.bpm.runtime.mean(), base),
           bench::norm(cell.memllc.runtime.mean(), base),
           bench::norm(cell.best_other.result.runtime.mean(), base),
           std::string(core::to_string(cell.best_other.policy))});
    }
    table.print();
    json.add(table);
    std::printf("\n");
  }
  std::printf(
      "Shape check: MEM+LLC < 1 everywhere, BPM >= 1, lbm largest gain at\n"
      "16_threads_4_nodes, blackscholes smallest.\n");
  return 0;
}

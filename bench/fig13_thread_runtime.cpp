// Fig. 13: per-thread runtime in parallel sections, 16 threads / 4
// nodes, for each benchmark and policy.
//
// Paper exemplar reproduced in shape: for lbm, the max-min thread
// runtime spread under buddy is several times (paper: 4.38x) the spread
// under MEM+LLC, and the *maximum* thread runtime drops (~30.8%).
#include "bench/common.h"

using namespace tint;

int main(int argc, char** argv) {
  bench::print_banner("Fig. 13", "per-thread runtime (16_threads_4_nodes)");
  bench::JsonSink json(argc, argv);

  const double scale_env = bench::env_scale();
  const auto machine = bench::machine_for_scale(scale_env);
  runtime::ExperimentDriver driver(machine, bench::env_reps(), 2026);
  const auto config = runtime::make_config(machine.topo, 16, 4);
  const double scale = scale_env;

  for (const auto& spec : runtime::standard_suite()) {
    const auto cell = bench::run_cell(driver, spec.scaled(scale), config);

    Table table(spec.name + " -- per-thread runtime [Mcycles]");
    std::vector<std::string> header = {"policy"};
    for (unsigned t = 0; t < config.threads(); ++t)
      header.push_back("t" + std::to_string(t));
    header.push_back("max/min");
    table.set_header(header);

    const auto row = [&](const char* name,
                         const runtime::AggregateResult& r) {
      std::vector<std::string> cells = {name};
      double mn = 1e300, mx = 0;
      for (const double b : r.thread_busy_mean) {
        cells.push_back(Table::fmt(b / 1e6, 1));
        mn = std::min(mn, b);
        mx = std::max(mx, b);
      }
      cells.push_back(Table::fmt(mx / std::max(mn, 1.0), 2));
      table.add_row(std::move(cells));
    };
    row("buddy", cell.buddy);
    row("BPM", cell.bpm);
    row("MEM+LLC", cell.memllc);
    row(std::string(core::to_string(cell.best_other.policy)).c_str(),
        cell.best_other.result);
    table.print();
    json.add(table);

    const double spread_ratio =
        cell.buddy.busy_spread.mean() /
        std::max(cell.memllc.busy_spread.mean(), 1.0);
    const double max_drop = 1.0 - cell.memllc.max_thread_busy.mean() /
                                      cell.buddy.max_thread_busy.mean();
    std::printf("  buddy spread / MEM+LLC spread = %.2fx ; max thread "
                "runtime drop = %.1f%%\n\n",
                spread_ratio, 100 * max_drop);
  }
  std::printf(
      "Shape check (paper, lbm): spread ratio well above 1 (paper 4.38x),\n"
      "max thread runtime drop around a third.\n");
  return 0;
}

// Fig. 10: execution time of the synthetic benchmark (Section V.A) under
// different coloring policies, normalized to standard buddy allocation.
//
// The benchmark allocates a large space per thread and writes it with
// the alternating stride M, M+1C, M-1C, M+2C, ... so each cache line is
// touched exactly once and every reference punches through to DRAM.
// Paper result: MEM, LLC and MEM/LLC all reduce execution time; MEM/LLC
// is fastest (up to ~17% over buddy on their testbed).
#include "bench/common.h"

using namespace tint;

int main(int argc, char** argv) {
  bench::print_banner("Fig. 10", "synthetic stride benchmark runtime");
  bench::JsonSink json(argc, argv);

  const auto machine = core::MachineConfig::opteron6128();
  const auto config = runtime::make_config(machine.topo, 16, 4);
  const uint64_t bytes =
      static_cast<uint64_t>(bench::env_scale() * (24ULL << 20));
  const unsigned reps = bench::env_reps();

  std::printf("16 threads, %llu MB per thread, every line written once\n\n",
              static_cast<unsigned long long>(bytes >> 20));

  Table table("synthetic benchmark (normalized runtime, buddy = 1)");
  table.set_header({"policy", "cycles[M]", "norm", "remote%", "rowhit%",
                    "avg lat[cyc]"});

  double base = 0;
  for (const core::Policy p :
       {core::Policy::kBuddy, core::Policy::kBpm, core::Policy::kLlc,
        core::Policy::kMem, core::Policy::kMemLlc}) {
    Summary cycles;
    double remote = 0, rowhit = 0, lat = 0;
    for (unsigned rep = 0; rep < reps; ++rep) {
      const auto r = runtime::run_synthetic(machine, p, config.cores, bytes,
                                            1000 + rep);
      cycles.add(static_cast<double>(r.cycles));
      remote += r.dram_remote_fraction / reps;
      rowhit += r.row_hit_rate / reps;
      lat += r.avg_access_latency / reps;
    }
    if (p == core::Policy::kBuddy) base = cycles.mean();
    table.add_row({std::string(core::to_string(p)),
                   Table::fmt(cycles.mean() / 1e6, 1),
                   bench::norm(cycles.mean(), base),
                   Table::fmt(100 * remote, 1), Table::fmt(100 * rowhit, 1),
                   Table::fmt(lat, 0)});
  }
  table.print();
  json.add(table);
  std::printf(
      "\nExpected shape (paper): MEM/LLC < MEM < buddy; LLC near buddy for\n"
      "this zero-reuse pattern; all coloring gains come from controller\n"
      "locality and bank isolation, not cache hits.\n");
  return 0;
}

// Shared helpers for the figure-reproduction benches.
//
// Every bench accepts two environment knobs:
//   TINT_SCALE  workload scale factor (default 0.25; 1.0 = paper-size)
//   TINT_REPS   repetitions per cell   (default 2; paper used 10)
// so `for b in build/bench/*; do $b; done` stays fast by default while a
// full-fidelity run is one env var away.
//
// Benches built on Google Benchmark use run_gbench_main() instead of
// BENCHMARK_MAIN(): it adds a `--json <path>` flag that mirrors the full
// machine-readable report (per-benchmark timings + counters) to a file
// while keeping the console output, so CI can diff runs without scraping
// stdout.
#pragma once

#include <benchmark/benchmark.h>

#include <bit>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "runtime/experiment.h"
#include "runtime/workload.h"
#include "util/table.h"

namespace tint::bench {

inline double env_scale() {
  const char* s = std::getenv("TINT_SCALE");
  return s ? std::atof(s) : 0.25;
}

inline unsigned env_reps() {
  const char* s = std::getenv("TINT_REPS");
  return s ? static_cast<unsigned>(std::atoi(s)) : 2;
}

// Machine whose DRAM scales with the workload scale. Scaling the zones
// together with the heaps preserves the *capacity relationships* between
// a policy's colored pool and the benchmark's footprint -- crucial for
// the freqmine overflow mechanism (Section V.B) which depends on
// heap > banks x LLC-colors x pages-per-combo. Node size is rounded to a
// power of two (the contiguous base/limit decode requires it).
inline core::MachineConfig machine_for_scale(double scale) {
  core::MachineConfig mc = core::MachineConfig::opteron6128();
  const uint64_t want = static_cast<uint64_t>(
      static_cast<double>(mc.topo.dram_bytes_per_node) * scale);
  mc.topo.dram_bytes_per_node = std::max<uint64_t>(
      std::bit_ceil(want), 128ULL << 20);
  mc.topo.validate();
  return mc;
}

inline void print_banner(const char* figure, const char* what) {
  std::printf("=============================================================\n");
  std::printf("%s -- %s\n", figure, what);
  std::printf("machine: simulated dual-socket AMD Opteron 6128 "
              "(16 cores, 4 nodes, 128 banks, 32 LLC colors)\n");
  std::printf("scale=%.2f reps=%u (TINT_SCALE / TINT_REPS to change)\n",
              env_scale(), env_reps());
  std::printf("=============================================================\n\n");
}

// The four bars of Figs. 11-14: buddy, BPM, MEM+LLC, and the best of the
// remaining colorings (evaluated per cell, like the paper).
struct FigureCell {
  runtime::AggregateResult buddy;
  runtime::AggregateResult bpm;
  runtime::AggregateResult memllc;
  runtime::BestOther best_other;
};

inline FigureCell run_cell(runtime::ExperimentDriver& driver,
                           const runtime::WorkloadSpec& spec,
                           const runtime::ThreadConfig& config) {
  FigureCell cell;
  cell.buddy = driver.run(spec, core::Policy::kBuddy, config);
  cell.bpm = driver.run(spec, core::Policy::kBpm, config);
  cell.memllc = driver.run(spec, core::Policy::kMemLlc, config);
  cell.best_other = runtime::best_other_coloring(driver, spec, config);
  return cell;
}

inline std::string norm(double value, double base, int precision = 3) {
  return base > 0 ? Table::fmt(value / base, precision) : "-";
}

// Mirrors the tables (and scalar metrics) a figure bench prints to the
// file named by `--json <path>`; without the flag it is inert. The file
// holds one object: {"tables": [...], "metrics": {...}} -- the same
// rows the console shows, machine-readable for CI diffing.
class JsonSink {
 public:
  JsonSink(int argc, char** argv) {
    for (int i = 1; i + 1 < argc; ++i)
      if (std::string(argv[i]) == "--json") path_ = argv[i + 1];
  }
  void add(const Table& t) {
    if (!path_.empty()) tables_.push_back(t.to_json());
  }
  void metric(const std::string& name, double value) {
    if (!path_.empty()) metrics_.emplace_back(name, value);
  }
  ~JsonSink() {
    if (path_.empty()) return;
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "cannot write --json file %s\n", path_.c_str());
      return;
    }
    std::fputs("{\"tables\":[\n", f);
    for (size_t i = 0; i < tables_.size(); ++i)
      std::fprintf(f, "%s%s\n", tables_[i].c_str(),
                   i + 1 < tables_.size() ? "," : "");
    std::fputs("],\"metrics\":{", f);
    for (size_t i = 0; i < metrics_.size(); ++i)
      std::fprintf(f, "%s\"%s\":%.17g", i ? "," : "",
                   metrics_[i].first.c_str(), metrics_[i].second);
    std::fputs("}}\n", f);
    std::fclose(f);
  }

 private:
  std::string path_;
  std::vector<std::string> tables_;
  std::vector<std::pair<std::string, double>> metrics_;
};

// Rewrites `--json <path>` into Google Benchmark's own output flags
// (`--benchmark_out=<path> --benchmark_out_format=json`), then runs the
// registered benchmarks: console output stays on stdout, and the full
// machine-readable report (timings + counters) lands in <path>.
inline int run_gbench_main(int argc, char** argv) {
  std::vector<std::string> storage(argv, argv + argc);
  for (auto it = storage.begin(); it != storage.end();) {
    if (*it == "--json" && it + 1 != storage.end()) {
      const std::string path = *(it + 1);
      it = storage.erase(it, it + 2);
      it = storage.insert(it, "--benchmark_out=" + path);
      it = storage.insert(it + 1, "--benchmark_out_format=json");
      ++it;
    } else {
      ++it;
    }
  }
  std::vector<char*> args;
  args.reserve(storage.size());
  for (std::string& s : storage) args.push_back(s.data());
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace tint::bench

// Finding (1) of Section V: "The latency of local memory controller
// accesses is much lower than that of remote memory controller
// accesses." Prints the full core-node latency matrix, uncontended and
// under streaming load, plus the LLC/bank contention microcosms of
// Figs. 8 and 9.
#include <memory>

#include "bench/common.h"
#include "core/session.h"

using namespace tint;

namespace {

// Uncontended single-access latency from `core` to `node`.
hw::Cycles probe(core::Session& s, unsigned core, unsigned node,
                 hw::Cycles& now, uint64_t salt) {
  hw::DramCoord c;
  c.node = node;
  c.row = 100 + salt;  // fresh row each probe: row_empty timing
  c.bank = static_cast<unsigned>(salt % 8);
  now += 1000000;
  return s.memsys().access(core, s.mapping().compose(c), false, now);
}

}  // namespace

int main(int argc, char** argv) {
  bench::print_banner("latency map", "local vs. remote controller latency");
  bench::JsonSink json(argc, argv);

  core::Session s(core::MachineConfig::opteron6128());
  hw::Cycles now = 0;

  Table matrix("uncontended DRAM latency [cycles] (rows: core, cols: node)");
  matrix.set_header({"core", "node0", "node1", "node2", "node3", "hops"});
  uint64_t salt = 0;
  for (const unsigned core : {0u, 4u, 8u, 12u}) {
    std::vector<std::string> row = {"core" + std::to_string(core)};
    std::string hops;
    for (unsigned node = 0; node < 4; ++node) {
      row.push_back(Table::fmt(
          static_cast<double>(probe(s, core, node, now, ++salt)), 0));
      hops += std::to_string(s.topology().hops(core, node));
    }
    row.push_back(hops);
    matrix.add_row(std::move(row));
  }
  matrix.print();
  json.add(matrix);

  // Fig. 8 microcosm: two tasks ping-pong on one bank vs. private banks.
  {
    std::printf("\nFig. 8 -- bank sharing (two write streams):\n");
    for (const bool shared : {true, false}) {
      core::Session sess(core::MachineConfig::opteron6128());
      hw::Cycles t = 0;
      uint64_t total = 0;
      const unsigned n = 4000;
      for (unsigned i = 0; i < n; ++i) {
        // Two interleaved write streams over fresh lines. Shared: both
        // streams on bank 0 in distant row ranges, so every access
        // replaces the other stream's open row (Fig. 8). Private: one
        // bank each, so each stream keeps its row open.
        const unsigned stream = i % 2;
        const uint64_t j = i / 2;
        hw::DramCoord a;
        a.bank = shared ? 0 : stream;
        a.row = 10 + stream * 200 + j / 32;
        a.column = (j % 32) * 128;
        const hw::Cycles lat =
            sess.memsys().access(stream, sess.mapping().compose(a), true, t);
        t += lat / 2 + 1;  // interleaved issue
        total += lat;
      }
      std::printf("  %-22s avg %5.1f cycles/access\n",
                  shared ? "same bank (conflict):" : "private banks:",
                  static_cast<double>(total) / n);
      json.metric(shared ? "fig8_same_bank_cycles_per_access"
                         : "fig8_private_banks_cycles_per_access",
                  static_cast<double>(total) / n);
    }
  }

  // Fig. 9 microcosm: LLC eviction interference vs. colored isolation.
  {
    std::printf("\nFig. 9 -- LLC interference (victim's hit rate):\n");
    for (const bool colored : {false, true}) {
      core::Session sess(core::MachineConfig::opteron6128());
      const os::TaskId victim = sess.create_task(0);
      const os::TaskId bully = sess.create_task(1);
      if (colored) {
        // Victim: 8 LLC colors = a 3 MB private slice that holds its
        // working set. Bully: a disjoint slice.
        core::ThreadColorPlan vp, bp;
        for (uint8_t c = 0; c < 8; ++c) vp.llc_colors.push_back(c);
        for (uint8_t c = 16; c < 24; ++c) bp.llc_colors.push_back(c);
        sess.apply_colors(victim, vp);
        sess.apply_colors(bully, bp);
      }
      // Victim working set: 2.5 MB -- larger than its private L2, small
      // enough for an LLC slice. Bully: 32 MB streaming writes.
      const uint64_t vic_ws = (2560ULL << 10);
      const uint64_t bully_ws = (32ULL << 20);
      const os::VirtAddr vh = sess.heap(victim).malloc(vic_ws);
      const os::VirtAddr bh = sess.heap(bully).malloc(bully_ws);
      hw::Cycles t = 0;
      // Warm the victim's working set, then interleave 1:7.
      for (uint64_t off = 0; off < vic_ws; off += 128)
        t += sess.touch_and_access(victim, vh + off, false, t);
      Rng rng(7);
      uint64_t vic_hits = 0, vic_n = 0;
      uint64_t bully_cursor = 0;
      for (unsigned i = 0; i < 160000; ++i) {
        if (i % 8 == 0) {
          const os::VirtAddr va = vh + rng.next_below(vic_ws / 128) * 128;
          const hw::Cycles lat = sess.touch_and_access(victim, va, false, t);
          vic_hits += lat <= sess.config().timing.llc_hit ? 1 : 0;
          ++vic_n;
          t += lat;
        } else {
          const os::VirtAddr va =
              bh + (bully_cursor++ % (bully_ws / 128)) * 128;
          t += sess.touch_and_access(bully, va, true, t);
        }
      }
      std::printf("  %-22s victim cache-hit rate %5.1f%%\n",
                  colored ? "LLC colored:" : "shared LLC:",
                  100.0 * static_cast<double>(vic_hits) /
                      static_cast<double>(vic_n));
      json.metric(colored ? "fig9_colored_victim_hit_rate"
                          : "fig9_shared_victim_hit_rate",
                  static_cast<double>(vic_hits) /
                      static_cast<double>(vic_n));
    }
  }
  return 0;
}

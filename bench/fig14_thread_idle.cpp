// Fig. 14: per-thread idle time at barriers, 16 threads / 4 nodes.
//
// Paper exemplar reproduced in shape: the maximum thread idle time of
// lbm drops by ~75% under MEM+LLC relative to buddy, and the idle
// profile flattens across threads.
#include "bench/common.h"

using namespace tint;

int main(int argc, char** argv) {
  bench::print_banner("Fig. 14", "per-thread idle time (16_threads_4_nodes)");
  bench::JsonSink json(argc, argv);

  const double scale_env = bench::env_scale();
  const auto machine = bench::machine_for_scale(scale_env);
  runtime::ExperimentDriver driver(machine, bench::env_reps(), 2026);
  const auto config = runtime::make_config(machine.topo, 16, 4);
  const double scale = scale_env;

  for (const auto& spec : runtime::standard_suite()) {
    const auto cell = bench::run_cell(driver, spec.scaled(scale), config);

    Table table(spec.name + " -- per-thread idle [Mcycles]");
    std::vector<std::string> header = {"policy"};
    for (unsigned t = 0; t < config.threads(); ++t)
      header.push_back("t" + std::to_string(t));
    header.push_back("max");
    table.set_header(header);

    const auto row = [&](const char* name,
                         const runtime::AggregateResult& r) {
      std::vector<std::string> cells = {name};
      double mx = 0;
      for (const double b : r.thread_idle_mean) {
        cells.push_back(Table::fmt(b / 1e6, 2));
        mx = std::max(mx, b);
      }
      cells.push_back(Table::fmt(mx / 1e6, 2));
      table.add_row(std::move(cells));
    };
    row("buddy", cell.buddy);
    row("BPM", cell.bpm);
    row("MEM+LLC", cell.memllc);
    row(std::string(core::to_string(cell.best_other.policy)).c_str(),
        cell.best_other.result);
    table.print();
    json.add(table);

    const double max_idle_drop =
        1.0 - cell.memllc.max_thread_idle.mean() /
                  std::max(cell.buddy.max_thread_idle.mean(), 1.0);
    std::printf("  max thread idle drop under MEM+LLC = %.1f%%\n\n",
                100 * max_idle_drop);
  }
  std::printf("Shape check (paper, lbm): max thread idle drop ~75%%.\n");
  return 0;
}

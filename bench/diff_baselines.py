#!/usr/bin/env python3
"""Diff fresh Google-Benchmark JSON results against committed baselines.

CI perf-smoke runs every bench with --json into a scratch directory and
then calls this script to compare *named counters* against the
BENCH_*.json files committed at the repo root. Wall-clock throughput on
a shared runner is pure noise, so times and items_per_second are never
compared; the guarded counters are simulation-deterministic costs
(simulated cycles, heal epochs, isolation violations) that only move
when the code's behaviour moves.

A counter regresses when it worsens by more than --tolerance (default
25%) in its bad direction: 'max' counters (costs) fail when the fresh
value exceeds baseline * (1 + tolerance); 'min' counters (hit rates)
fail when it falls below baseline * (1 - tolerance). A zero baseline
cost fails on *any* nonzero fresh value -- an isolation violation
appearing at all is a regression, not a 25% one.

Exit status: 0 clean, 1 on any regression or a missing/unreadable
fresh result for a file that has a committed baseline.
"""

import argparse
import json
import os
import sys

# file stem -> {counter name -> bad direction}. Only counters listed
# here are compared; everything else in the JSON is informational.
GUARDED = {
    "BENCH_recolor_latency": {
        "sim_cycles/page": "max",  # simulated migration cost per page
        "epochs/heal": "max",      # heal convergence (budget dribble)
        "pages/heal": "max",       # pages a heal has to move
    },
    "BENCH_tenant_churn": {
        "guaranteed_violations": "max",   # isolation promise, class by class
        "burstable_violations": "max",
        "best_effort_violations": "max",
        "guaranteed_p99_cycles": "max",   # simulated tail latency
    },
    "BENCH_concurrent_alloc": {
        "colored_frac": "min",  # colored-allocation success rate
        "shards": "max",        # resolved color-shard count (freeze cost)
    },
    "BENCH_fastpath_scaling": {
        "magazine_hit_frac": "min",
        "tcache_hit_frac": "min",
        "offload_hit_frac": "min",  # ring pops per colored alloc probe
    },
}


def load(path):
    with open(path) as f:
        return json.load(f)


def counters_by_bench(doc):
    out = {}
    for b in doc.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        out[b["name"]] = b
    return out


def compare(stem, base_doc, fresh_doc, tolerance):
    """Returns a list of (bench, counter, base, fresh, verdict) rows and
    whether any row regressed."""
    guarded = GUARDED.get(stem, {})
    rows, regressed = [], False
    base_benches = counters_by_bench(base_doc)
    fresh_benches = counters_by_bench(fresh_doc)
    for name, base_b in sorted(base_benches.items()):
        fresh_b = fresh_benches.get(name)
        if fresh_b is None:
            # A bench that vanished is bit-rot, not a perf regression --
            # but it silently un-guards its counters, so fail loudly.
            rows.append((name, "<benchmark missing>", "-", "-", "FAIL"))
            regressed = True
            continue
        for counter, direction in sorted(guarded.items()):
            if counter not in base_b:
                continue  # not measured in this cell of the family
            base_v = float(base_b[counter])
            if counter not in fresh_b:
                rows.append((name, counter, base_v, "<missing>", "FAIL"))
                regressed = True
                continue
            fresh_v = float(fresh_b[counter])
            if direction == "max":
                bad = fresh_v > base_v * (1.0 + tolerance) if base_v > 0 \
                    else fresh_v > 0
            else:
                bad = fresh_v < base_v * (1.0 - tolerance)
            rows.append((name, counter, base_v, fresh_v,
                         "FAIL" if bad else "ok"))
            regressed |= bad
    # Benches present only in the fresh output are new cells whose
    # baseline lands with (or after) the PR introducing them: warn and
    # skip rather than inventing a zero baseline to violate.
    for name in sorted(set(fresh_benches) - set(base_benches)):
        rows.append((name, "<no baseline: new bench, skipped>",
                     "-", "-", "warn"))
    return rows, regressed


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--baseline-dir", default=".",
                    help="directory with committed BENCH_*.json baselines")
    ap.add_argument("--fresh-dir", required=True,
                    help="directory with freshly produced BENCH_*.json")
    ap.add_argument("--tolerance", type=float, default=0.25,
                    help="allowed relative worsening (default 0.25 = 25%%)")
    ap.add_argument("stems", nargs="*", default=[],
                    help="bench file stems to diff (default: all guarded "
                         "stems with a committed baseline)")
    args = ap.parse_args()

    stems = args.stems or [
        s for s in sorted(GUARDED)
        if os.path.exists(os.path.join(args.baseline_dir, s + ".json"))
    ]
    any_regressed = False
    for stem in stems:
        base_path = os.path.join(args.baseline_dir, stem + ".json")
        fresh_path = os.path.join(args.fresh_dir, stem + ".json")
        if not os.path.exists(base_path):
            print(f"{stem}: no committed baseline, skipping")
            continue
        if not os.path.exists(fresh_path):
            print(f"{stem}: FRESH RESULT MISSING ({fresh_path})")
            any_regressed = True
            continue
        rows, regressed = compare(stem, load(base_path), load(fresh_path),
                                  args.tolerance)
        any_regressed |= regressed
        print(f"\n{stem} (tolerance {args.tolerance:.0%}):")
        if not rows:
            print("  no guarded counters present")
        for name, counter, base_v, fresh_v, verdict in rows:
            print(f"  [{verdict:>4}] {name} :: {counter}: "
                  f"{base_v} -> {fresh_v}")

    if any_regressed:
        print("\nFAIL: guarded counters regressed beyond tolerance "
              "(or results went missing).")
        return 1
    print("\nOK: all guarded counters within tolerance.")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Diff fresh Google-Benchmark JSON results against committed baselines.

CI perf-smoke runs every bench with --json into a scratch directory and
then calls this script to compare *named counters* against the
BENCH_*.json files committed at the repo root. Wall-clock throughput on
a shared runner is pure noise, so times and items_per_second are never
compared; the guarded counters are simulation-deterministic costs
(simulated cycles, heal epochs, isolation violations) that only move
when the code's behaviour moves.

A counter regresses when it worsens by more than --tolerance (default
25%) in its bad direction: 'max' counters (costs) fail when the fresh
value exceeds baseline * (1 + tolerance); 'min' counters (hit rates)
fail when it falls below baseline * (1 - tolerance). A zero baseline
cost fails on *any* nonzero fresh value -- an isolation violation
appearing at all is a regression, not a 25% one.

Exit status: 0 clean, 1 on any regression or a missing/unreadable
fresh result for a file that has a committed baseline.
"""

import argparse
import json
import os
import re
import sys

# file stem -> {counter name -> bad direction}. Only counters listed
# here are compared; everything else in the JSON is informational.
GUARDED = {
    "BENCH_recolor_latency": {
        "sim_cycles/page": "max",  # simulated migration cost per page
        "epochs/heal": "max",      # heal convergence (budget dribble)
        "pages/heal": "max",       # pages a heal has to move
    },
    "BENCH_tenant_churn": {
        "guaranteed_violations": "max",   # isolation promise, class by class
        "burstable_violations": "max",
        "best_effort_violations": "max",
        "guaranteed_p99_cycles": "max",   # simulated tail latency
    },
    "BENCH_concurrent_alloc": {
        "colored_frac": "min",  # colored-allocation success rate
        "shards": "max",        # resolved color-shard count (freeze cost)
    },
    "BENCH_fastpath_scaling": {
        "magazine_hit_frac": "min",
        "tcache_hit_frac": "min",
        "offload_hit_frac": "min",  # ring pops per colored alloc probe
    },
}

# Per-node engine counters (w<idx>_rounds, w<idx>_restocked, ...) are
# emitted one set per allocator worker by the multi-worker offload
# cells. Their absolute values are scheduling noise, so they are diffed
# by *name* only -- matched worker-against-worker in stable sorted
# order (never positionally) and reported informationally, which keeps
# multi-engine JSON diffs deterministic without inventing a counter
# threshold that would flake.
PER_NODE_RE = re.compile(r"^w\d+_")

# Relative guards compare two benchmark families *within one fresh
# run* (same machine, same moment -- wall-clock is fair game there,
# unlike against a committed baseline): stem -> list of
# (candidate family, reference family, min threads, min ratio). The
# candidate regresses when its items_per_second falls below
# ratio * reference at any shared thread count >= min threads. This is
# the multi-worker safety net: an engine sharded across NUMA nodes must
# never lose to the single-worker engine once the machine is loaded.
# The guard only fires when the host has at least min-threads CPUs
# (benchmark JSON context.num_cpus): with fewer, the app threads and
# the extra allocator workers time-share cores and the ratio measures
# scheduler luck, not the engine -- measured swings of 0.67x..1.93x
# between back-to-back runs on a 1-CPU container.
RELATIVE = {
    "BENCH_fastpath_scaling": [
        ("BM_PageChurn_OffloadW2", "BM_PageChurn_Offload", 8, 0.8),
        ("BM_PageChurn_OffloadW4", "BM_PageChurn_Offload", 8, 0.8),
    ],
}


def load(path):
    with open(path) as f:
        return json.load(f)


def counters_by_bench(doc):
    out = {}
    for b in doc.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        out[b["name"]] = b
    return out


def compare(stem, base_doc, fresh_doc, tolerance):
    """Returns a list of (bench, counter, base, fresh, verdict) rows and
    whether any row regressed."""
    guarded = GUARDED.get(stem, {})
    rows, regressed = [], False
    base_benches = counters_by_bench(base_doc)
    fresh_benches = counters_by_bench(fresh_doc)
    for name, base_b in sorted(base_benches.items()):
        fresh_b = fresh_benches.get(name)
        if fresh_b is None:
            # A bench that vanished is bit-rot, not a perf regression --
            # but it silently un-guards its counters, so fail loudly.
            rows.append((name, "<benchmark missing>", "-", "-", "FAIL"))
            regressed = True
            continue
        for counter, direction in sorted(guarded.items()):
            if counter not in base_b:
                continue  # not measured in this cell of the family
            base_v = float(base_b[counter])
            if counter not in fresh_b:
                rows.append((name, counter, base_v, "<missing>", "FAIL"))
                regressed = True
                continue
            fresh_v = float(fresh_b[counter])
            if direction == "max":
                bad = fresh_v > base_v * (1.0 + tolerance) if base_v > 0 \
                    else fresh_v > 0
            else:
                bad = fresh_v < base_v * (1.0 - tolerance)
            rows.append((name, counter, base_v, fresh_v,
                         "FAIL" if bad else "ok"))
            regressed |= bad
        # Per-node engine counters: union of both sides, stable sort by
        # name so worker 0 always lines up with worker 0 regardless of
        # JSON emission order. Informational only.
        per_node = sorted(c for c in set(base_b) | set(fresh_b)
                          if PER_NODE_RE.match(c))
        for counter in per_node:
            rows.append((name, counter, base_b.get(counter, "<absent>"),
                         fresh_b.get(counter, "<absent>"), "info"))
    # Benches present only in the fresh output are new cells whose
    # baseline lands with (or after) the PR introducing them: warn and
    # skip rather than inventing a zero baseline to violate.
    for name in sorted(set(fresh_benches) - set(base_benches)):
        rows.append((name, "<no baseline: new bench, skipped>",
                     "-", "-", "warn"))
    return rows, regressed


def bench_family_and_threads(name):
    """"BM_X/real_time/threads:8" -> ("BM_X", 8); no threads tag -> 1."""
    family = name.split("/")[0]
    m = re.search(r"threads:(\d+)$", name)
    return family, int(m.group(1)) if m else 1


def check_relative(stem, fresh_doc):
    """Intra-run family-vs-family throughput guard (see RELATIVE)."""
    rows, regressed = [], False
    num_cpus = int(fresh_doc.get("context", {}).get("num_cpus", 0))
    by_family = {}
    for name, b in counters_by_bench(fresh_doc).items():
        family, threads = bench_family_and_threads(name)
        if "items_per_second" in b:
            by_family.setdefault(family, {})[threads] = \
                float(b["items_per_second"])
    for cand, ref, min_threads, min_ratio in RELATIVE.get(stem, []):
        if num_cpus and num_cpus < min_threads:
            rows.append((f"{cand} vs {ref}",
                         f"<skipped: {num_cpus} cpus < {min_threads} "
                         "threads, ratio would be scheduler noise>",
                         "-", "-", "warn"))
            continue
        shared = sorted(set(by_family.get(cand, {}))
                        & set(by_family.get(ref, {})))
        shared = [t for t in shared if t >= min_threads]
        if not shared:
            # Neither family ran at a guarded thread count (e.g. a
            # filtered smoke run): nothing to compare, say so.
            rows.append((f"{cand} vs {ref}",
                         f"<no shared cells at >= {min_threads} threads>",
                         "-", "-", "warn"))
            continue
        for threads in shared:
            cv, rv = by_family[cand][threads], by_family[ref][threads]
            bad = cv < rv * min_ratio
            rows.append((f"{cand} vs {ref} @ threads:{threads}",
                         f"items_per_second ratio (floor {min_ratio})",
                         rv, cv, "FAIL" if bad else "ok"))
            regressed |= bad
    return rows, regressed


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--baseline-dir", default=".",
                    help="directory with committed BENCH_*.json baselines")
    ap.add_argument("--fresh-dir", required=True,
                    help="directory with freshly produced BENCH_*.json")
    ap.add_argument("--tolerance", type=float, default=0.25,
                    help="allowed relative worsening (default 0.25 = 25%%)")
    ap.add_argument("stems", nargs="*", default=[],
                    help="bench file stems to diff (default: all guarded "
                         "stems with a committed baseline)")
    args = ap.parse_args()

    stems = args.stems or [
        s for s in sorted(GUARDED)
        if os.path.exists(os.path.join(args.baseline_dir, s + ".json"))
    ]
    any_regressed = False
    for stem in stems:
        base_path = os.path.join(args.baseline_dir, stem + ".json")
        fresh_path = os.path.join(args.fresh_dir, stem + ".json")
        if not os.path.exists(base_path):
            print(f"{stem}: no committed baseline, skipping")
            continue
        if not os.path.exists(fresh_path):
            print(f"{stem}: FRESH RESULT MISSING ({fresh_path})")
            any_regressed = True
            continue
        fresh_doc = load(fresh_path)
        rows, regressed = compare(stem, load(base_path), fresh_doc,
                                  args.tolerance)
        rel_rows, rel_regressed = check_relative(stem, fresh_doc)
        rows += rel_rows
        regressed |= rel_regressed
        any_regressed |= regressed
        print(f"\n{stem} (tolerance {args.tolerance:.0%}):")
        if not rows:
            print("  no guarded counters present")
        for name, counter, base_v, fresh_v, verdict in rows:
            print(f"  [{verdict:>4}] {name} :: {counter}: "
                  f"{base_v} -> {fresh_v}")

    if any_regressed:
        print("\nFAIL: guarded counters regressed beyond tolerance "
              "(or results went missing).")
        return 1
    print("\nOK: all guarded counters within tolerance.")
    return 0


if __name__ == "__main__":
    sys.exit(main())

// Self-healing cost model (DESIGN.md section 13): what a live re-color
// actually costs, layer by layer, measured with google-benchmark.
//
//   * BM_RecolorSwap      -- the atomic color-set swap alone (the part
//                            tenants observe synchronously: one pointer
//                            publish + magazine drain, no page moves);
//   * BM_MigratePage      -- one page migration, the heal's unit of work
//                            (also reports the *simulated* copy cost as
//                            the "sim_cycles/page" counter);
//   * BM_GuardEpochIdle   -- one watchdog epoch with nothing to do: the
//                            standing tax of running the guard at all;
//   * BM_HealEndToEnd/N   -- a full heal of an N-page tenant: swap +
//                            enumerate + migrate until complete, driven
//                            through ColorGuard::run_epoch like
//                            production heals.
//
// CI runs this as part of the perf-smoke job and lands the JSON report
// in-repo (BENCH_recolor_latency.json) for run-over-run diffing.
#include <benchmark/benchmark.h>

#include "bench/common.h"
#include "core/session.h"
#include "runtime/color_guard.h"

using namespace tint;

namespace {

core::MachineConfig machine() {
  auto mc = core::MachineConfig::opteron6128();
  // A smaller machine keeps per-iteration session rebuilds cheap.
  mc.topo.dram_bytes_per_node = 256ULL << 20;
  return mc;
}

runtime::GuardConfig manual_guard_config() {
  runtime::GuardConfig g;
  g.enabled = true;
  g.min_epoch_accesses = ~0ull;  // heals start manually, never from noise
  g.migration_budget = 1u << 20;
  return g;
}

void BM_RecolorSwap(benchmark::State& state) {
  core::Session s(machine());
  const os::TaskId t = s.create_task(0);
  s.apply_colors(t, core::ThreadColorPlan{{0}, {}});
  // Touch a few pages so the swap drains a non-trivial magazine, like a
  // live tenant's would.
  const os::VirtAddr base = s.kernel().mmap(t, 0, 16 * 4096, 0);
  for (uint64_t i = 0; i < 16; ++i)
    s.kernel().touch(t, base + i * 4096, true);

  uint16_t from = 0, to = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.kernel().recolor_task(t, {from}, {to}));
    std::swap(from, to);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_RecolorSwap);

void BM_MigratePage(benchmark::State& state) {
  core::Session s(machine());
  const os::TaskId t = s.create_task(0);
  s.apply_colors(t, core::ThreadColorPlan{{0, 1}, {}});
  const os::VirtAddr va = s.kernel().mmap(t, 0, 4096, 0);
  s.kernel().touch(t, va, true);

  uint64_t sim_cycles = 0, pages = 0;
  for (auto _ : state) {
    const auto mig = s.kernel().migrate_page(va);
    benchmark::DoNotOptimize(mig.ok);
    sim_cycles += mig.cycles;
    ++pages;
  }
  state.counters["sim_cycles/page"] =
      static_cast<double>(sim_cycles) / static_cast<double>(pages);
  state.SetItemsProcessed(static_cast<int64_t>(pages));
}
BENCHMARK(BM_MigratePage);

void BM_GuardEpochIdle(benchmark::State& state) {
  // The watchdog's standing cost: sample every controller and LLC
  // counter, find nothing hot, heal nothing. This is what the background
  // thread spends per period on a healthy machine.
  core::Session s(machine());
  const os::TaskId t = s.create_task(0);
  s.apply_colors(t, core::ThreadColorPlan{{0, 1}, {}});
  runtime::ColorGuard guard(s.kernel(), s.memsys(), manual_guard_config());
  for (auto _ : state) guard.run_epoch();
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_GuardEpochIdle);

void BM_HealEndToEnd(benchmark::State& state) {
  const uint64_t pages = static_cast<uint64_t>(state.range(0));
  uint64_t healed_pages = 0, epochs = 0;
  for (auto _ : state) {
    state.PauseTiming();
    core::Session s(machine());
    const os::TaskId t = s.create_task(0);
    s.apply_colors(t, core::ThreadColorPlan{{0}, {}});
    const os::VirtAddr base = s.kernel().mmap(t, 0, pages * 4096, 0);
    for (uint64_t i = 0; i < pages; ++i)
      s.kernel().touch(t, base + i * 4096, true);
    runtime::ColorGuard guard(s.kernel(), s.memsys(), manual_guard_config());
    state.ResumeTiming();

    guard.start_heal(t, 0);
    do {
      guard.run_epoch();
      ++epochs;
    } while (guard.tenant_phase(t) ==
             runtime::ColorGuard::TenantPhase::kMigrating);
    healed_pages += pages;
  }
  state.counters["pages/heal"] = static_cast<double>(pages);
  state.counters["epochs/heal"] =
      static_cast<double>(epochs) / static_cast<double>(state.iterations());
  state.SetItemsProcessed(static_cast<int64_t>(healed_pages));
}
BENCHMARK(BM_HealEndToEnd)
    ->Arg(64)
    ->Arg(256)
    ->Arg(1024)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return tint::bench::run_gbench_main(argc, argv);
}

// Colo-scale tenant churn bench: thousands of short-lived tenants
// admitted, placed, touched and reaped through the AdmissionController,
// clean vs. under chaos (buddy/migration failpoints, a sick DIMM, the
// ColorGuard healing on its background thread). Two questions:
//   * what does tenant lifecycle cost? -- items/s is admit->touch->reap
//     lifetimes per second, per class admission counts alongside;
//   * what do the classes actually get? -- per-class p50/p99 touch
//     latency (simulated cycles) and isolation-violation counts are
//     first-class counters, so `--json` runs can be diffed for SLO
//     regressions, not just throughput.
// Every iteration ends with a stop-the-world check_invariants() walk and
// aborts the bench on a single unaccounted frame.
#include <benchmark/benchmark.h>

#include <memory>

#include "bench/common.h"
#include "hw/pci_config.h"
#include "runtime/admission.h"
#include "runtime/churn.h"
#include "runtime/color_guard.h"
#include "sim/dram_fault.h"

using namespace tint;

namespace {

void BM_TenantChurn(benchmark::State& state) {
  const bool chaos = state.range(0) != 0;
  const auto topo = hw::Topology::tiny();
  const auto pci = hw::PciConfig::program_bios(topo);
  const hw::AddressMapping map(pci, topo);
  const uint64_t lifetimes = std::max<uint64_t>(
      400, static_cast<uint64_t>(2000 * bench::env_scale()));

  uint64_t total_lifetimes = 0;
  double admitted = 0, rejected = 0, downgraded = 0, touch_errors = 0;
  runtime::SloReport last_slo{};
  for (auto _ : state) {
    state.PauseTiming();
    os::KernelConfig kcfg;
    if (chaos) {
      kcfg.failpoints.emplace_back(os::FailPoint::kBuddyAlloc,
                                   os::FailSpec::probability(0.01));
      kcfg.failpoints.emplace_back(os::FailPoint::kMigrateTarget,
                                   os::FailSpec::probability(0.05));
    }
    os::Kernel kernel(topo, map, kcfg, /*seed=*/7);
    sim::MemorySystem memsys(topo, map);
    sim::DramFaultModel faults(map);
    if (chaos) {
      kernel.attach_fault_model(&faults);
      sim::DramFaultRegion flaky;
      flaky.node = 0;
      flaky.bank = 2;
      flaky.severity = sim::FrameHealth::kFlaky;
      faults.inject(flaky);
    }
    runtime::GuardConfig gcfg;
    gcfg.enabled = chaos;
    gcfg.migration_budget = 64;
    gcfg.cooldown_epochs = 1;
    runtime::ColorGuard guard(kernel, memsys, gcfg);
    runtime::AdmissionConfig acfg;
    acfg.guaranteed = {3, 2};
    acfg.burstable = {2, 1};
    runtime::AdmissionController adm(kernel, memsys, acfg);
    adm.bind_guard(&guard);
    runtime::ChurnConfig ccfg;
    ccfg.lifetimes = lifetimes;
    ccfg.threads = 2;
    ccfg.concurrency = 6;
    runtime::ChurnEngine churn(kernel, adm, ccfg);
    if (chaos) guard.start(std::chrono::milliseconds(1));
    state.ResumeTiming();

    const runtime::ChurnResult r = churn.run();

    state.PauseTiming();
    if (chaos) guard.stop();
    total_lifetimes += r.lifetimes;
    admitted += static_cast<double>(r.admitted);
    rejected += static_cast<double>(r.rejected);
    downgraded += static_cast<double>(r.downgraded);
    touch_errors += static_cast<double>(r.touch_errors);
    last_slo = adm.report();
    if (!last_slo.ladder_conserved) {
      state.SkipWithError("per-class ladder counters do not conserve");
      return;
    }
    const auto rep = kernel.check_invariants(0, /*stop_the_world=*/true);
    if (!rep.ok) {
      state.SkipWithError(rep.detail.c_str());
      return;
    }
    if (rep.mapped != 0 || rep.magazine_cached != 0 || rep.loose != 0) {
      state.SkipWithError("tenant teardown leaked frames");
      return;
    }
    state.ResumeTiming();
  }

  const double iters = static_cast<double>(state.iterations());
  state.counters["admitted"] = admitted / iters;
  state.counters["rejected"] = rejected / iters;
  state.counters["downgraded"] = downgraded / iters;
  state.counters["touch_errors"] = touch_errors / iters;
  // Per-class SLO output (last iteration's rollup): the numbers a colo
  // operator would alert on.
  static constexpr const char* kClass[] = {"guaranteed", "burstable",
                                           "best_effort"};
  for (unsigned c = 0; c < runtime::kNumTenantClasses; ++c) {
    const runtime::ClassSlo& slo = last_slo.cls[c];
    state.counters[std::string(kClass[c]) + "_p50_cycles"] = slo.p50_latency;
    state.counters[std::string(kClass[c]) + "_p99_cycles"] = slo.p99_latency;
    state.counters[std::string(kClass[c]) + "_violations"] =
        static_cast<double>(slo.isolation_violations);
  }
  state.SetItemsProcessed(static_cast<int64_t>(total_lifetimes));
}
BENCHMARK(BM_TenantChurn)
    ->ArgName("chaos")
    ->Arg(0)  // clean machine: pure lifecycle cost, zero violations
    ->Arg(1)  // failpoints + sick DIMM + live guard
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return tint::bench::run_gbench_main(argc, argv);
}

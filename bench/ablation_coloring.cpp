// Ablation studies for the design choices called out in DESIGN.md:
//
//  A. Axis decomposition -- what each coloring dimension contributes
//     (controller locality is isolated by the MEM vs. BPM gap: both
//     partition banks, only MEM keeps them local).
//  B. LLC group-size sweep -- between fully private LLC colors (group
//     size 1 = MEM+LLC) and fully shared (group = all threads ~ MEM),
//     how much sharing does a group tolerate? (the "(part)" tradeoff of
//     Section V.B).
//  C. Buddy-baseline sensitivity -- how the headline gap depends on the
//     recycled-placement probability of the default path (the one
//     calibration knob this reproduction introduces).
//  D. Warmed-up vs. pristine buddy -- fragmentation's effect on the
//     baseline's physical contiguity and row-buffer behaviour.
#include "bench/common.h"
#include "core/session.h"

using namespace tint;

namespace {

// Runs lbm-like work with an explicit per-thread color plan.
runtime::RunResult run_with_plans(
    const core::MachineConfig& machine, const runtime::ThreadConfig& config,
    const runtime::WorkloadSpec& spec,
    const std::vector<core::ThreadColorPlan>& plans, uint64_t seed) {
  // WorkloadRunner applies policies by enum; for custom plans we inline
  // the same phases through the public Session API.
  core::MachineConfig mc = machine;
  mc.seed = seed;
  core::Session session(mc);
  std::vector<os::TaskId> tasks;
  for (const unsigned c : config.cores) tasks.push_back(session.create_task(c));
  for (size_t i = 0; i < tasks.size(); ++i)
    session.apply_colors(tasks[i], plans[i]);

  runtime::ParallelEngine engine(session);
  runtime::BarrierLedger ledger(config.threads());
  hw::Cycles now = 0;
  std::vector<os::VirtAddr> priv(tasks.size());
  for (size_t i = 0; i < tasks.size(); ++i)
    priv[i] = session.heap(tasks[i]).malloc(spec.private_bytes);
  {
    std::vector<std::unique_ptr<runtime::OpStream>> streams;
    std::vector<runtime::OpStream*> ptrs;
    for (size_t i = 0; i < tasks.size(); ++i) {
      streams.push_back(std::make_unique<runtime::StreamingPassStream>(
          priv[i], spec.private_bytes, 128, true, 0));
      ptrs.push_back(streams.back().get());
    }
    const auto st = engine.run_parallel(tasks, ptrs, now);
    ledger.add_section(st);
    now = st.max_end();
  }
  for (unsigned r = 0; r < spec.rounds; ++r) {
    std::vector<std::unique_ptr<runtime::OpStream>> streams;
    std::vector<runtime::OpStream*> ptrs;
    for (size_t i = 0; i < tasks.size(); ++i) {
      runtime::MixedKernelParams mp;
      mp.private_base = priv[i];
      mp.private_bytes = spec.private_bytes;
      mp.hot_bytes = spec.hot_bytes;
      mp.hot_fraction = spec.hot_fraction;
      mp.write_fraction = spec.write_fraction;
      mp.compute_per_access = spec.compute_per_access;
      mp.accesses = spec.accesses_per_round;
      streams.push_back(std::make_unique<runtime::MixedKernelStream>(
          mp, mix64(seed ^ (r * 1000 + i))));
      ptrs.push_back(streams.back().get());
    }
    const auto st = engine.run_parallel(tasks, ptrs, now);
    ledger.add_section(st);
    now = st.max_end();
  }
  runtime::RunResult res;
  res.total_runtime = now;
  res.total_idle = ledger.total_idle();
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  bench::print_banner("ablations", "design-choice studies (DESIGN.md #6)");
  bench::JsonSink json(argc, argv);
  const auto machine = core::MachineConfig::opteron6128();
  const auto config = runtime::make_config(machine.topo, 16, 4);
  const double scale = bench::env_scale();
  const unsigned reps = bench::env_reps();

  // ---- A: axis decomposition ----
  {
    runtime::ExperimentDriver driver(machine, reps, 99);
    Table table("A. axis decomposition, lbm @ 16t/4n (runtime norm. buddy)");
    table.set_header({"policy", "norm runtime", "remote%", "what it shows"});
    const auto spec = runtime::lbm_spec().scaled(scale);
    const auto base = driver.run(spec, core::Policy::kBuddy, config);
    const auto show = [&](core::Policy p, const char* note) {
      const auto r = driver.run(spec, p, config);
      table.add_row({std::string(core::to_string(p)),
                     bench::norm(r.runtime.mean(), base.runtime.mean()),
                     Table::fmt(100 * r.remote_fraction, 1), note});
    };
    table.add_row({"buddy", "1.000",
                   Table::fmt(100 * base.remote_fraction, 1), "baseline"});
    show(core::Policy::kBpm, "banks+LLC private, NOT local");
    show(core::Policy::kLlc, "LLC isolation only");
    show(core::Policy::kMem, "local + private banks");
    show(core::Policy::kMemLlc, "all three axes");
    table.print();
    json.add(table);
    std::printf("  controller-awareness = MEM vs BPM gap\n\n");
  }

  // ---- B: LLC group-size sweep ----
  {
    Table table("B. LLC color group size, art-like reuse @ 16t/4n");
    table.set_header({"group size", "llc colors/thread", "runtime[M]",
                      "idle[M]"});
    auto spec = runtime::art_spec().scaled(scale);
    const auto& topo = machine.topo;
    for (const unsigned group : {1u, 2u, 4u, 8u, 16u}) {
      Summary rt, idle;
      for (unsigned rep = 0; rep < reps; ++rep) {
        // Banks: private per thread (as MEM). LLC: 32 colors split over
        // ceil(16/group) groups; threads of one group share its slice.
        std::vector<core::ThreadColorPlan> plans(16);
        for (unsigned i = 0; i < 16; ++i) {
          const unsigned node = topo.node_of_core(config.cores[i]);
          const unsigned j = i % 4;  // index within node
          for (unsigned b = j * 8; b < (j + 1) * 8; ++b)
            plans[i].mem_colors.push_back(
                static_cast<uint16_t>(node * 32 + b));
          const unsigned groups = (16 + group - 1) / group;
          const unsigned g = i / group;
          const unsigned per = 32 / groups;
          for (unsigned c = g * per; c < (g + 1) * per && c < 32; ++c)
            plans[i].llc_colors.push_back(static_cast<uint8_t>(c));
        }
        const auto r =
            run_with_plans(machine, config, spec, plans, 500 + rep);
        rt.add(static_cast<double>(r.total_runtime));
        idle.add(static_cast<double>(r.total_idle));
      }
      table.add_row({std::to_string(group), std::to_string(32 / (16 / group)),
                     Table::fmt(rt.mean() / 1e6, 1),
                     Table::fmt(idle.mean() / 1e6, 1)});
    }
    table.print();
    json.add(table);
    std::printf("  group=1 is MEM+LLC, group=4 is MEM+LLC(part), group=16\n"
                "  shares the whole LLC (like MEM).\n\n");
  }

  // ---- C: buddy-baseline sensitivity ----
  {
    Table table("C. recycled-placement probability vs. headline gap (lbm)");
    table.set_header({"reuse_p", "buddy remote%", "buddy rt[M]",
                      "MEM+LLC rt[M]", "gain%"});
    const auto spec = runtime::lbm_spec().scaled(scale);
    for (const double p : {0.0, 0.2, 0.35, 0.5, 0.8}) {
      core::MachineConfig mc = machine;
      mc.kernel.reuse_probability = p;
      runtime::ExperimentDriver driver(mc, reps, 7);
      const auto buddy = driver.run(spec, core::Policy::kBuddy, config);
      const auto memllc = driver.run(spec, core::Policy::kMemLlc, config);
      table.add_row(
          {Table::fmt(p, 2), Table::fmt(100 * buddy.remote_fraction, 1),
           Table::fmt(buddy.runtime.mean() / 1e6, 1),
           Table::fmt(memllc.runtime.mean() / 1e6, 1),
           Table::fmt(100 * (1 - memllc.runtime.mean() /
                                     buddy.runtime.mean()), 1)});
    }
    table.print();
    json.add(table);
    std::printf("  even with perfect first touch (p=0) coloring wins via\n"
                "  bank/LLC isolation; the paper's remote-access effect\n"
                "  rides on top.\n\n");
  }

  // ---- D: pristine vs. fragmented buddy ----
  {
    Table table("D. buddy free-list state vs. baseline behaviour (lbm)");
    table.set_header({"warm-up", "buddy rt[M]", "rowhit%", "MEM+LLC rt[M]"});
    const auto spec = runtime::lbm_spec().scaled(scale);
    for (const bool fragmented : {false, true}) {
      core::MachineConfig mc = machine;
      mc.kernel.warmup_episodes = fragmented ? 512 : 0;
      mc.kernel.warmup_frag_shift = fragmented ? 6 : 0;
      runtime::ExperimentDriver driver(mc, reps, 7);
      const auto buddy = driver.run(spec, core::Policy::kBuddy, config);
      const auto memllc = driver.run(spec, core::Policy::kMemLlc, config);
      table.add_row({fragmented ? "fragmented (default)" : "pristine boot",
                     Table::fmt(buddy.runtime.mean() / 1e6, 1),
                     Table::fmt(100 * buddy.row_hit_rate, 1),
                     Table::fmt(memllc.runtime.mean() / 1e6, 1)});
    }
    table.print();
    json.add(table);
    std::printf("  a pristine buddy hands out physically contiguous runs\n"
                "  (long row-buffer streaks); no long-running system looks\n"
                "  like that, which is why warm-up is the default.\n\n");
  }

  // ---- E: colored 4 KB pages vs. node-local 2 MB huge pages ----
  {
    Table table("E. colored 4K vs node-local huge pages (1 thread/node)");
    table.set_header({"backing", "stream rt[M]", "reuse rt[M]", "faults"});
    // One thread per node; each sweeps (stream) or re-reads (reuse) a
    // 16 MB array. Colored 4K: full color isolation, scattered rows,
    // 4096 faults. Huge: contiguous rows + one fault per 2 MB, but no
    // bank/LLC isolation.
    for (const bool huge : {false, true}) {
      core::MachineConfig mc = machine;
      mc.kernel.huge_pool_blocks_per_node = huge ? 16 : 0;
      mc.seed = 7;
      Summary stream_rt, reuse_rt;
      uint64_t faults = 0;
      core::Session session(mc);
      const auto cfg4 = runtime::make_config(mc.topo, 4, 4);
      std::vector<os::TaskId> tasks;
      for (unsigned c : cfg4.cores) tasks.push_back(session.create_task(c));
      if (!huge) session.apply_policy(core::Policy::kMemLlc, tasks);
      runtime::ParallelEngine engine(session);
      std::vector<os::VirtAddr> bases;
      for (const os::TaskId t : tasks)
        bases.push_back(huge ? session.heap(t).malloc_huge(16ULL << 20)
                             : session.heap(t).malloc(16ULL << 20));
      hw::Cycles now = 0;
      {  // streaming pass (includes the faults)
        std::vector<std::unique_ptr<runtime::OpStream>> ss;
        std::vector<runtime::OpStream*> ps;
        for (const os::VirtAddr b : bases) {
          ss.push_back(std::make_unique<runtime::StreamingPassStream>(
              b, 16ULL << 20, 128, true, 0));
          ps.push_back(ss.back().get());
        }
        const auto st = engine.run_parallel(tasks, ps, now);
        stream_rt.add(static_cast<double>(st.duration()));
        now = st.max_end();
      }
      {  // reuse pass over a 2 MB hot window
        std::vector<std::unique_ptr<runtime::OpStream>> ss;
        std::vector<runtime::OpStream*> ps;
        for (size_t i = 0; i < tasks.size(); ++i) {
          runtime::MixedKernelParams mp;
          mp.private_base = bases[i];
          mp.private_bytes = 16ULL << 20;
          mp.hot_bytes = 2ULL << 20;
          mp.hot_fraction = 0.9;
          mp.accesses = 100000;
          ss.push_back(std::make_unique<runtime::MixedKernelStream>(mp, i));
          ps.push_back(ss.back().get());
        }
        const auto st = engine.run_parallel(tasks, ps, now);
        reuse_rt.add(static_cast<double>(st.duration()));
      }
      faults = session.kernel().stats().page_faults;
      table.add_row({huge ? "2 MB huge (node-local)" : "4 KB colored",
                     Table::fmt(stream_rt.mean() / 1e6, 1),
                     Table::fmt(reuse_rt.mean() / 1e6, 1),
                     std::to_string(faults)});
    }
    table.print();
    json.add(table);
    std::printf("  huge pages trade color isolation for fault count and\n"
                "  row-buffer locality (the paper leaves them future work).\n");
  }
  return 0;
}

#include "util/table.h"

#include <gtest/gtest.h>

namespace tint {
namespace {

TEST(Table, RendersTitleHeaderAndRows) {
  Table t("My Table");
  t.set_header({"a", "bb", "ccc"});
  t.add_row({"1", "2", "3"});
  t.add_row({"1000", "2", "3"});
  const std::string out = t.render();
  EXPECT_NE(out.find("== My Table =="), std::string::npos);
  EXPECT_NE(out.find("a"), std::string::npos);
  EXPECT_NE(out.find("1000"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(Table, ColumnsAligned) {
  Table t;
  t.set_header({"x", "y"});
  t.add_row({"longvalue", "1"});
  const std::string out = t.render();
  // Header row is padded to the widest cell of each column.
  const size_t header_end = out.find('\n');
  const size_t rule_end = out.find('\n', header_end + 1);
  const size_t row_end = out.find('\n', rule_end + 1);
  const std::string header = out.substr(0, header_end);
  const std::string row = out.substr(rule_end + 1, row_end - rule_end - 1);
  EXPECT_EQ(header.size(), row.size());
}

TEST(Table, FmtPrecision) {
  EXPECT_EQ(Table::fmt(1.23456, 2), "1.23");
  EXPECT_EQ(Table::fmt(1.0, 0), "1");
  EXPECT_EQ(Table::fmt(-0.5, 1), "-0.5");
}

TEST(Table, NoHeaderStillRenders) {
  Table t;
  t.add_row({"a", "b"});
  EXPECT_NE(t.render().find("a  b"), std::string::npos);
}

TEST(Table, CsvExport) {
  Table t("ignored title");
  t.set_header({"a", "b"});
  t.add_row({"1", "x,y"});
  t.add_row({"2", "with \"quote\""});
  const std::string csv = t.to_csv();
  EXPECT_EQ(csv,
            "a,b\n"
            "1,\"x,y\"\n"
            "2,\"with \"\"quote\"\"\"\n");
}

TEST(Table, CsvWithoutHeader) {
  Table t;
  t.add_row({"p", "q"});
  EXPECT_EQ(t.to_csv(), "p,q\n");
}

TEST(Table, RowCount) {
  Table t;
  EXPECT_EQ(t.row_count(), 0u);
  t.add_row({"a"});
  t.add_row({"b"});
  EXPECT_EQ(t.row_count(), 2u);
}

}  // namespace
}  // namespace tint

// The lock-rank checker itself: ascending acquisition is legal, a
// descending acquisition aborts (debug builds), and the ranked wrappers
// behave as plain lockables otherwise.
#include "util/lock_rank.h"

#include <gtest/gtest.h>

#include <mutex>
#include <shared_mutex>
#include <thread>

namespace tint::util {
namespace {

TEST(LockRank, AscendingOrderIsLegal) {
  RankedMutex<lock_rank::kMm> mm;
  RankedMutex<lock_rank::kPageTable> pt;
  RankedMutex<lock_rank::kBuddyZone> zone;
  std::lock_guard<RankedMutex<lock_rank::kMm>> a(mm);
  std::lock_guard<RankedMutex<lock_rank::kPageTable>> b(pt);
  std::lock_guard<RankedMutex<lock_rank::kBuddyZone>> c(zone);
  SUCCEED();
}

TEST(LockRank, EqualRankIsLegal) {
  // Stop-the-world freezes take many same-rank locks (shard 0, 1, ...).
  RankedMutex<lock_rank::kColorShard> s0, s1;
  std::lock_guard<RankedMutex<lock_rank::kColorShard>> a(s0);
  std::lock_guard<RankedMutex<lock_rank::kColorShard>> b(s1);
  SUCCEED();
}

TEST(LockRank, ReacquireAfterReleaseIsLegal) {
  RankedMutex<lock_rank::kBuddyZone> zone;
  RankedMutex<lock_rank::kMm> mm;
  zone.lock();
  zone.unlock();
  // Dropping back to an empty held-set makes any rank legal again.
  mm.lock();
  mm.unlock();
  SUCCEED();
}

TEST(LockRank, SharedHoldsParticipate) {
  RankedSharedMutex<lock_rank::kMm> mm;
  RankedSharedMutex<lock_rank::kPageTable> pt;
  std::shared_lock<RankedSharedMutex<lock_rank::kMm>> a(mm);
  std::shared_lock<RankedSharedMutex<lock_rank::kPageTable>> b(pt);
  SUCCEED();
}

TEST(LockRank, HeldSetIsPerThread) {
  // A high rank held on one thread must not constrain another thread.
  RankedMutex<lock_rank::kFailPoint> leaf;
  leaf.lock();
  std::thread other([] {
    RankedMutex<lock_rank::kMm> mm;
    mm.lock();
    mm.unlock();
  });
  other.join();
  leaf.unlock();
  SUCCEED();
}

#ifdef TINT_DEBUG_CHECKS
using LockRankDeathTest = ::testing::Test;

TEST(LockRankDeathTest, DescendingAcquisitionAborts) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  EXPECT_DEATH(
      {
        RankedMutex<lock_rank::kBuddyZone> zone;
        RankedMutex<lock_rank::kMm> mm;
        zone.lock();
        mm.lock();  // rank 10 under rank 70: ordering violation
      },
      "lock-rank violation");
}

TEST(LockRankDeathTest, UnlockingUnheldRankAborts) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  EXPECT_DEATH(
      {
        RankedMutex<lock_rank::kMm> mm;
        mm.unlock();  // never locked on this thread
      },
      "lock-rank violation");
}
#endif  // TINT_DEBUG_CHECKS

}  // namespace
}  // namespace tint::util

#include "util/rng.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace tint {
namespace {

TEST(SplitMix64, DeterministicSequence) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next() == b.next()) ++equal;
  EXPECT_EQ(equal, 0);
}

TEST(Mix64, StatelessAndStable) {
  EXPECT_EQ(mix64(123), mix64(123));
  EXPECT_NE(mix64(123), mix64(124));
}

TEST(Rng, ReproducibleAfterReseed) {
  Rng r(7);
  std::vector<uint64_t> first;
  for (int i = 0; i < 32; ++i) first.push_back(r.next_u64());
  r.reseed(7);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(r.next_u64(), first[i]);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng r(11);
  for (uint64_t bound : {1ULL, 2ULL, 3ULL, 17ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(r.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowOneAlwaysZero) {
  Rng r(3);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(r.next_below(1), 0u);
}

TEST(Rng, NextRangeInclusiveBounds) {
  Rng r(13);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const uint64_t v = r.next_range(5, 8);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 8u);
    saw_lo |= v == 5;
    saw_hi |= v == 8;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(17);
  for (int i = 0; i < 1000; ++i) {
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, DoubleMeanNearHalf) {
  Rng r(19);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += r.next_double();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, BoolProbabilityRoughlyHonored) {
  Rng r(23);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += r.next_bool(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, BoolDegenerateProbabilities) {
  Rng r(29);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.next_bool(0.0));
    EXPECT_TRUE(r.next_bool(1.0));
  }
}

TEST(Rng, UniformityOverSmallRange) {
  Rng r(31);
  std::vector<int> counts(8, 0);
  const int n = 80000;
  for (int i = 0; i < n; ++i) ++counts[r.next_below(8)];
  for (int c : counts) EXPECT_NEAR(c, n / 8, n / 8 * 0.1);
}

TEST(Rng, NoShortCycle) {
  Rng r(37);
  std::set<uint64_t> seen;
  for (int i = 0; i < 10000; ++i) seen.insert(r.next_u64());
  EXPECT_EQ(seen.size(), 10000u);
}

}  // namespace
}  // namespace tint

#include "util/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace tint {
namespace {

TEST(SplitMix64, DeterministicSequence) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next() == b.next()) ++equal;
  EXPECT_EQ(equal, 0);
}

TEST(Mix64, StatelessAndStable) {
  EXPECT_EQ(mix64(123), mix64(123));
  EXPECT_NE(mix64(123), mix64(124));
}

TEST(Rng, ReproducibleAfterReseed) {
  Rng r(7);
  std::vector<uint64_t> first;
  for (int i = 0; i < 32; ++i) first.push_back(r.next_u64());
  r.reseed(7);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(r.next_u64(), first[i]);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng r(11);
  for (uint64_t bound : {1ULL, 2ULL, 3ULL, 17ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(r.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowOneAlwaysZero) {
  Rng r(3);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(r.next_below(1), 0u);
}

TEST(Rng, NextRangeInclusiveBounds) {
  Rng r(13);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const uint64_t v = r.next_range(5, 8);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 8u);
    saw_lo |= v == 5;
    saw_hi |= v == 8;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(17);
  for (int i = 0; i < 1000; ++i) {
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, DoubleMeanNearHalf) {
  Rng r(19);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += r.next_double();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, BoolProbabilityRoughlyHonored) {
  Rng r(23);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += r.next_bool(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, BoolDegenerateProbabilities) {
  Rng r(29);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.next_bool(0.0));
    EXPECT_TRUE(r.next_bool(1.0));
  }
}

TEST(Rng, UniformityOverSmallRange) {
  Rng r(31);
  std::vector<int> counts(8, 0);
  const int n = 80000;
  for (int i = 0; i < n; ++i) ++counts[r.next_below(8)];
  for (int c : counts) EXPECT_NEAR(c, n / 8, n / 8 * 0.1);
}

TEST(Rng, NoShortCycle) {
  Rng r(37);
  std::set<uint64_t> seen;
  for (int i = 0; i < 10000; ++i) seen.insert(r.next_u64());
  EXPECT_EQ(seen.size(), 10000u);
}

// The distribution draws feed the churn engine's timing models; their
// determinism contract (same seed -> same sequence, draw for draw) is
// what makes a soak with Poisson arrivals and log-normal lifetimes
// replayable.

TEST(Rng, DistributionsAreDeterministicPerSeed) {
  Rng a(4242), b(4242), c(99);
  bool diverged = false;
  for (int i = 0; i < 256; ++i) {
    const double na = a.next_normal();
    EXPECT_EQ(na, b.next_normal());
    if (na != c.next_normal()) diverged = true;
    EXPECT_EQ(a.next_lognormal(2.0, 0.75), b.next_lognormal(2.0, 0.75));
    c.next_lognormal(2.0, 0.75);
    EXPECT_EQ(a.next_poisson(1.5), b.next_poisson(1.5));
    c.next_poisson(1.5);
  }
  EXPECT_TRUE(diverged);  // a different seed is a different sequence
}

TEST(Rng, NormalMomentsAndSymmetry) {
  Rng r(1234);
  const int n = 40000;
  double sum = 0.0, sumsq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = r.next_normal();
    sum += x;
    sumsq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sumsq / n, 1.0, 0.03);
}

TEST(Rng, LognormalIsPositiveWithMedianExpMu) {
  Rng r(55);
  const int n = 20000;
  int below = 0;
  const double median = std::exp(2.0);
  for (int i = 0; i < n; ++i) {
    const double x = r.next_lognormal(2.0, 0.75);
    ASSERT_GT(x, 0.0);
    if (x < median) ++below;
  }
  EXPECT_NEAR(static_cast<double>(below) / n, 0.5, 0.02);
}

TEST(Rng, PoissonMatchesItsMeanAndHandlesDegenerateInput) {
  Rng r(77);
  EXPECT_EQ(r.next_poisson(0.0), 0u);
  EXPECT_EQ(r.next_poisson(-3.0), 0u);
  const int n = 40000;
  uint64_t total = 0;
  for (int i = 0; i < n; ++i) total += r.next_poisson(1.5);
  EXPECT_NEAR(static_cast<double>(total) / n, 1.5, 0.05);
}

}  // namespace
}  // namespace tint

#include "util/stats.h"

#include <gtest/gtest.h>

#include <vector>

namespace tint {
namespace {

TEST(Summary, EmptyIsZero) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.spread(), 0.0);
}

TEST(Summary, SingleSample) {
  Summary s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.min(), 5.0);
  EXPECT_EQ(s.max(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(Summary, KnownMoments) {
  Summary s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // classic example set
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_EQ(s.spread(), 7.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(Summary, MergeMatchesConcatenation) {
  Summary a, b, all;
  const std::vector<double> xs = {1, 2, 3, 4, 5, 6, 100, -3};
  for (size_t i = 0; i < xs.size(); ++i) {
    (i < 3 ? a : b).add(xs[i]);
    all.add(xs[i]);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(Summary, MergeWithEmptyIsIdentity) {
  Summary a, empty;
  a.add(3);
  a.add(7);
  const double mean = a.mean();
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.mean(), mean);
  Summary e2;
  e2.merge(a);
  EXPECT_EQ(e2.count(), 2u);
  EXPECT_EQ(e2.mean(), mean);
}

TEST(Percentile, EdgesAndMiddle) {
  const std::vector<double> xs = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 5.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 3.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 25), 2.0);
}

TEST(Percentile, InterpolatesBetweenRanks) {
  const std::vector<double> xs = {0, 10};
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 5.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 90), 9.0);
}

TEST(Percentile, EmptyReturnsZero) {
  EXPECT_EQ(percentile({}, 50), 0.0);
}

TEST(MeanOf, Basic) {
  const std::vector<double> xs = {1, 2, 3};
  EXPECT_DOUBLE_EQ(mean_of(xs), 2.0);
  EXPECT_EQ(mean_of({}), 0.0);
}

TEST(Histogram, BucketsAndEdges) {
  Histogram h(0, 10, 5);
  h.add(-1);           // underflow
  h.add(0);            // bucket 0
  h.add(1.99);         // bucket 0
  h.add(2);            // bucket 1
  h.add(9.99);         // bucket 4
  h.add(10);           // overflow (hi is exclusive)
  h.add(100);          // overflow
  EXPECT_EQ(h.total(), 7u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.count_at(0), 2u);
  EXPECT_EQ(h.count_at(1), 1u);
  EXPECT_EQ(h.count_at(4), 1u);
  EXPECT_DOUBLE_EQ(h.bucket_lo(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(1), 4.0);
}

}  // namespace
}  // namespace tint

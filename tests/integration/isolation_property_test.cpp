// Property-based checks of the paper's central isolation invariants,
// swept over policies and thread configurations (parameterized gtest):
//
//  P1. Every page a colored task touches matches the task's color sets.
//  P2. Under private-bank policies, two tasks never share a DRAM bank.
//  P3. Under private-LLC policies, two tasks never evict each other from
//      the LLC (no cross-requester evictions).
//  P4. Under MEM-family policies every page is local to its task's node.
//  P5. Page accounting: touched = colored + default, fallbacks counted.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "runtime/experiment.h"
#include "runtime/sim_thread.h"
#include "runtime/workload.h"

namespace tint::runtime {
namespace {

using core::Policy;

struct Case {
  Policy policy;
  unsigned threads;
  unsigned nodes;
};

std::string case_name(const ::testing::TestParamInfo<Case>& info) {
  std::string p(core::to_string(info.param.policy));
  for (auto& ch : p)
    if (!isalnum(static_cast<unsigned char>(ch))) ch = '_';
  return p + "_" + std::to_string(info.param.threads) + "t" +
         std::to_string(info.param.nodes) + "n";
}

class IsolationProperty : public ::testing::TestWithParam<Case> {
 protected:
  // Runs a small mixed workload and returns the session for inspection.
  struct RunState {
    std::unique_ptr<core::Session> session;
    std::vector<os::TaskId> tasks;
    core::ColorPlan plan;
  };

  RunState run_small() {
    auto mc = core::MachineConfig::tiny();
    mc.seed = 1234;
    RunState st;
    st.session = std::make_unique<core::Session>(mc);
    const ThreadConfig cfg =
        make_config(mc.topo, GetParam().threads, GetParam().nodes);
    for (const unsigned c : cfg.cores)
      st.tasks.push_back(st.session->create_task(c));
    st.plan = st.session->apply_policy(GetParam().policy, st.tasks);

    ParallelEngine engine(*st.session);
    std::vector<std::unique_ptr<OpStream>> streams;
    std::vector<OpStream*> ptrs;
    std::vector<os::VirtAddr> bases;
    for (const os::TaskId t : st.tasks)
      bases.push_back(st.session->heap(t).malloc(96 << 10));
    for (size_t i = 0; i < st.tasks.size(); ++i) {
      MixedKernelParams p;
      p.private_base = bases[i];
      p.private_bytes = 96 << 10;
      p.hot_bytes = 16 << 10;
      p.hot_fraction = 0.4;
      p.write_fraction = 0.5;
      p.accesses = 3000;
      streams.push_back(std::make_unique<MixedKernelStream>(p, 100 + i));
      ptrs.push_back(streams.back().get());
    }
    engine.run_parallel(st.tasks, ptrs, 0);
    return st;
  }
};

TEST_P(IsolationProperty, P1_TouchedPagesMatchTaskColors) {
  const RunState st = run_small();
  const auto& pages = st.session->kernel().pages();
  for (size_t i = 0; i < st.tasks.size(); ++i) {
    const os::Task& task = st.session->kernel().task(st.tasks[i]);
    if (!task.using_bank() && !task.using_llc()) continue;
    for (const os::PageInfo& pi : pages) {
      if (pi.owner != st.tasks[i] || !pi.colored_alloc) continue;
      if (task.using_bank()) {
        EXPECT_TRUE(task.has_mem_color(pi.bank_color));
      }
      if (task.using_llc()) {
        EXPECT_TRUE(task.has_llc_color(pi.llc_color));
      }
    }
  }
}

TEST_P(IsolationProperty, P2_PrivateBankPoliciesDisjointBanks) {
  const Policy p = GetParam().policy;
  if (p != Policy::kMem && p != Policy::kMemLlc && p != Policy::kMemLlcPart &&
      p != Policy::kBpm)
    GTEST_SKIP() << "policy does not promise private banks";
  const RunState st = run_small();
  const auto& pages = st.session->kernel().pages();
  std::map<unsigned, std::set<os::TaskId>> bank_users;
  for (const os::PageInfo& pi : pages)
    if (pi.owner != os::kNoTask && pi.colored_alloc)
      bank_users[pi.bank_color].insert(pi.owner);
  for (const auto& [bank, users] : bank_users)
    EXPECT_LE(users.size(), 1u) << "bank " << bank << " shared";
}

TEST_P(IsolationProperty, P3_PrivateLlcPoliciesNoCrossEvictions) {
  const Policy p = GetParam().policy;
  if (p != Policy::kLlc && p != Policy::kMemLlc && p != Policy::kLlcMemPart &&
      p != Policy::kBpm)
    GTEST_SKIP() << "policy does not promise private LLC colors";
  const RunState st = run_small();
  // Fallback pages void the guarantee; this workload must not fall back.
  for (const os::TaskId t : st.tasks)
    ASSERT_EQ(st.session->kernel().task(t).alloc_stats().fallback_pages, 0u);
  EXPECT_EQ(st.session->memsys().llc().stats().cross_requester_evictions, 0u);
}

TEST_P(IsolationProperty, P4_MemFamilyKeepsPagesLocal) {
  const Policy p = GetParam().policy;
  if (p != Policy::kMem && p != Policy::kMemLlc && p != Policy::kMemLlcPart &&
      p != Policy::kLlcMemPart)
    GTEST_SKIP() << "policy does not promise controller locality";
  const RunState st = run_small();
  for (const os::TaskId t : st.tasks) {
    const auto& as = st.session->kernel().task(t).alloc_stats();
    EXPECT_EQ(as.remote_pages, 0u)
        << "task " << t << " got remote pages under " << core::to_string(p);
  }
}

TEST_P(IsolationProperty, P5_PageAccountingConsistent) {
  const RunState st = run_small();
  for (const os::TaskId t : st.tasks) {
    const auto& as = st.session->kernel().task(t).alloc_stats();
    EXPECT_EQ(as.page_faults, as.colored_pages + as.default_pages);
    EXPECT_LE(as.fallback_pages, as.default_pages);
    EXPECT_GT(as.page_faults, 0u);
  }
}

std::vector<Case> all_cases() {
  std::vector<Case> cases;
  for (const Policy p : core::all_policies()) {
    cases.push_back({p, 4, 2});
    cases.push_back({p, 2, 2});
    cases.push_back({p, 2, 1});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, IsolationProperty,
                         ::testing::ValuesIn(all_cases()), case_name);

}  // namespace
}  // namespace tint::runtime

// Churn-chaos soak (the ISSUE's acceptance scenario): >= 2000 tenant
// lifetimes stream through the AdmissionController from four worker
// threads while everything the earlier PRs built misbehaves at once --
// armed failpoints on the buddy allocator and migration targets, an
// attached DRAM fault model with flaky and dead regions, a hotplug
// thread yanking node 1, periodic scrubs and stop-the-world invariant
// walks, and a live ColorGuard healing collisions on its background
// thread. Survival means: zero invariant violations at any point, zero
// leaked frames after the last tenant departs (mapped == magazine ==
// loose == 0), and the per-class SLO ledger still conserves the
// degradation-ladder identity. Runs under the `qos` ctest label.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "hw/pci_config.h"
#include "os/kernel.h"
#include "runtime/admission.h"
#include "runtime/churn.h"
#include "runtime/color_guard.h"
#include "sim/dram_fault.h"
#include "sim/memory_system.h"

namespace tint::runtime {
namespace {

TEST(TenantChurnTest, ColoScaleChurnSurvivesChaosWithoutLeaks) {
  const hw::Topology topo = hw::Topology::tiny();
  const hw::PciConfig pci = hw::PciConfig::program_bios(topo);
  const hw::AddressMapping map(pci, topo);
  os::Kernel k(topo, map, {}, 42);
  sim::MemorySystem memsys(topo, map);

  // Chaos layer 1: a sick DIMM. One flaky bank on node 0 (soft-offline
  // path) and one dead bank on node 1 (hard-offline, kEccUncorrected).
  sim::DramFaultModel faults(map);
  k.attach_fault_model(&faults);
  {
    sim::DramFaultRegion flaky;
    flaky.node = 0;
    flaky.bank = 2;
    flaky.severity = sim::FrameHealth::kFlaky;
    faults.inject(flaky);
    sim::DramFaultRegion dead;
    dead.node = 1;
    dead.bank = 5;
    dead.severity = sim::FrameHealth::kDead;
    faults.inject(dead);
  }

  // Chaos layer 2: probabilistic allocation / migration failpoints.
  k.failpoints().arm(os::FailPoint::kBuddyAlloc, os::FailSpec::probability(0.01));
  k.failpoints().arm(os::FailPoint::kMigrateTarget,
                     os::FailSpec::probability(0.05));

  // Chaos layer 3: the self-healing watchdog on its background thread,
  // with the measured-cheapest victim policy QoS classes feed into.
  GuardConfig gcfg;
  gcfg.enabled = true;
  gcfg.migration_budget = 64;
  gcfg.cooldown_epochs = 1;
  ColorGuard guard(k, memsys, gcfg);

  AdmissionConfig acfg;
  acfg.guaranteed = {3, 2};
  acfg.burstable = {2, 1};
  AdmissionController adm(k, memsys, acfg);
  adm.bind_guard(&guard);

  ChurnConfig ccfg;
  ccfg.lifetimes = 2200;
  ccfg.threads = 4;
  ccfg.concurrency = 6;
  ccfg.min_pages = 2;
  ccfg.max_pages = 12;
  ChurnEngine churn(k, adm, ccfg);

  guard.start(std::chrono::milliseconds(1));

  // Chaos layer 4: node 1 flaps, the scrubber repairs, and a watcher
  // audits frame conservation stop-the-world *while tenants churn*.
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> invariant_checks{0};
  std::thread hotplug([&] {
    while (!stop.load(std::memory_order_acquire)) {
      k.set_node_online(1, false);
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      k.set_node_online(1, true);
      std::this_thread::sleep_for(std::chrono::milliseconds(3));
    }
  });
  std::thread auditor([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const auto rep = k.check_invariants(0, /*stop_the_world=*/true);
      ASSERT_TRUE(rep.ok) << rep.detail;
      invariant_checks.fetch_add(1, std::memory_order_relaxed);
      k.scrub();
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });

  const ChurnResult result = churn.run();

  stop.store(true, std::memory_order_release);
  hotplug.join();
  auditor.join();
  guard.stop();
  k.failpoints().disarm_all();
  k.set_node_online(1, true);

  // The soak really exercised the scenario.
  EXPECT_GE(result.lifetimes, 2200u);
  EXPECT_GT(result.admitted, 1000u);
  EXPECT_GT(result.pages_mapped, 0u);
  EXPECT_EQ(result.torn_down, result.admitted);  // no lifetime left behind
  EXPECT_GT(invariant_checks.load(), 0u);

  // Every tenant departed: the registry is empty and *nothing* leaked --
  // no mapped frames, no magazine-parked frames, no loose frames, no
  // color claims -- despite tenants dying mid-fault, mid-heal and
  // mid-hotplug the whole run.
  EXPECT_EQ(adm.live_tenants(), 0u);
  const auto inv = k.check_invariants(0, /*stop_the_world=*/true);
  EXPECT_TRUE(inv.ok) << inv.detail;
  EXPECT_EQ(inv.mapped, 0u);
  EXPECT_EQ(inv.magazine_cached, 0u);
  EXPECT_EQ(inv.loose, 0u);
  for (os::TaskId id = 0; id < k.num_tasks(); ++id) {
    EXPECT_FALSE(k.task_alive(id));
    EXPECT_TRUE(k.task(id).mem_color_list().empty()) << "task " << id;
  }

  // The SLO ledger survived the chaos arithmetically intact.
  const SloReport slo = adm.report();
  EXPECT_TRUE(slo.ladder_conserved);
  uint64_t completed = 0;
  for (unsigned c = 0; c < kNumTenantClasses; ++c)
    completed += slo.cls[c].completed;
  EXPECT_EQ(completed, result.torn_down);

  // The guard ran through the storm; any stale-tenant encounters were
  // skipped, not dereferenced (reaching this line without a crash or an
  // invariant trip is the real assertion).
  EXPECT_GT(guard.stats().snapshot().epochs_run, 0u);
}

// The elastic soak: the same machine churned with *realistic* timing --
// Poisson arrival bursts and heavy-tailed log-normal lifetimes -- and
// every elastic switched on at once (shrink-on-admit, deadline
// waitlist, burstable promotion), with migration failpoints forcing
// shrink rollbacks along the way. The bar is the same as the chaos
// soak: no invariant trip ever, nothing leaked after the last tenant
// departs, and the waitlist ledger accounts every parked arrival.
TEST(TenantChurnTest, ElasticSoakWithRealisticTimingLeaksNothing) {
  const hw::Topology topo = hw::Topology::tiny();
  const hw::PciConfig pci = hw::PciConfig::program_bios(topo);
  const hw::AddressMapping map(pci, topo);
  os::Kernel k(topo, map, {}, 77);
  sim::MemorySystem memsys(topo, map);

  k.failpoints().arm(os::FailPoint::kMigrateTarget,
                     os::FailSpec::probability(0.05));

  GuardConfig gcfg;
  gcfg.enabled = true;
  gcfg.migration_budget = 64;
  gcfg.cooldown_epochs = 1;
  gcfg.max_heal_failures = 2;
  ColorGuard guard(k, memsys, gcfg);

  AdmissionConfig acfg;
  acfg.guaranteed = {3, 2};
  acfg.burstable = {2, 1};
  acfg.elastic_shrink = true;
  acfg.waitlist = true;
  acfg.waitlist_deadline_ticks = 8;
  acfg.promote_downgraded = true;
  AdmissionController adm(k, memsys, acfg);
  adm.bind_guard(&guard);

  ChurnConfig ccfg;
  ccfg.lifetimes = 2000;
  ccfg.threads = 4;
  ccfg.concurrency = 6;
  ccfg.min_pages = 2;
  ccfg.max_pages = 12;
  ccfg.observe_every = 4;
  ccfg.arrival_model = ArrivalModel::kPoissonBurst;
  ccfg.poisson_burst_mean = 1.5;
  ccfg.lifetime_model = LifetimeModel::kLogNormal;
  ccfg.lognormal_mu = 2.0;
  ccfg.lognormal_sigma = 0.75;
  ChurnEngine churn(k, adm, ccfg);

  guard.start(std::chrono::milliseconds(1));
  const ChurnResult result = churn.run();
  guard.stop();
  k.failpoints().disarm_all();

  EXPECT_GE(result.lifetimes, 2000u);
  EXPECT_GT(result.admitted, 800u);
  EXPECT_EQ(result.torn_down, result.admitted);  // no lifetime left behind
  // The scarce palette really drove the waitlist, and every parked
  // arrival was resolved exactly once -- admitted, expired or cancelled
  // at drain. (A claim/cancel race against a concurrent expiry can at
  // worst under-count, never double-count or leak.)
  EXPECT_GT(result.waitlisted, 0u);
  EXPECT_LE(result.wait_admitted + result.wait_expired + result.wait_cancelled,
            result.waitlisted);
  EXPECT_GT(result.wait_admitted + result.wait_expired + result.wait_cancelled,
            0u);

  EXPECT_EQ(adm.live_tenants(), 0u);
  const auto inv = k.check_invariants(0, /*stop_the_world=*/true);
  EXPECT_TRUE(inv.ok) << inv.detail;
  EXPECT_EQ(inv.mapped, 0u);
  EXPECT_EQ(inv.magazine_cached, 0u);
  EXPECT_EQ(inv.loose, 0u);
  for (os::TaskId id = 0; id < k.num_tasks(); ++id) {
    EXPECT_FALSE(k.task_alive(id));
    EXPECT_TRUE(k.task(id).mem_color_list().empty()) << "task " << id;
    EXPECT_TRUE(k.task(id).llc_color_list().empty()) << "task " << id;
  }

  const SloReport slo = adm.report();
  EXPECT_TRUE(slo.ladder_conserved);
  uint64_t completed = 0, waitlisted = 0;
  for (unsigned c = 0; c < kNumTenantClasses; ++c) {
    completed += slo.cls[c].completed;
    waitlisted += slo.cls[c].waitlisted;
  }
  EXPECT_EQ(completed, result.torn_down);
  EXPECT_EQ(waitlisted, result.waitlisted);
}

}  // namespace
}  // namespace tint::runtime

// End-to-end self-healing (the ISSUE's acceptance scenario): a two-tenant
// bank collision injected into the mixed_tenants setup is healed by the
// ColorGuard without restarting anything -- the service's absolute
// bank-conflict load drops by at least 30% within the epoch budget, no
// frame is leaked (check_invariants), and a forced-failure run either
// converges through the backoff or rolls back cleanly, again without
// leaks. The deterministic unit mechanics live in color_guard_test.cpp.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/session.h"
#include "runtime/color_guard.h"
#include "runtime/sim_thread.h"
#include "runtime/workload.h"

namespace tint::runtime {
namespace {

// Conflicts suffered on the service's banks (colors 0..7, node 0) since
// the previous call -- the interference metric the heal must shrink.
// (The conflicts/access *ratio* is the wrong metric here: healing removes
// the intruder's row-local streams, which makes the service's own
// accesses conflict more per access even as the absolute load collapses.)
uint64_t service_conflicts(const sim::MemorySystem& memsys,
                           uint64_t& prev_conf) {
  const sim::MemoryController& mc = memsys.controller(0);
  uint64_t conf = 0;
  for (unsigned b = 0; b < 8; ++b) conf += mc.bank_conflicts(b);
  const uint64_t dc = conf - prev_conf;
  prev_conf = conf;
  return dc;
}

struct HealRig {
  core::Session session{core::MachineConfig::opteron6128()};
  os::TaskId service = 0;
  os::TaskId intruder = 0;
  MixedKernelParams svc_params;
  MixedKernelParams intr_params;
  core::ThreadColorPlan service_plan;

  HealRig() {
    service = session.create_task(0);
    for (uint16_t b = 0; b < 8; ++b) service_plan.mem_colors.push_back(b);
    for (uint8_t l = 0; l < 8; ++l) service_plan.llc_colors.push_back(l);
    session.apply_colors(service, service_plan);

    const os::VirtAddr svc_heap = session.heap(service).malloc(2 << 20);
    svc_params.private_base = svc_heap;
    svc_params.private_bytes = 2 << 20;
    svc_params.hot_bytes = 1 << 20;
    svc_params.hot_fraction = 0.9;
    svc_params.write_fraction = 0.1;
    svc_params.compute_per_access = 50;
    svc_params.accesses = 30000;

    // The injected collision: the intruder claims the service's banks.
    intruder = session.create_task(1);
    session.apply_colors(intruder,
                         core::ThreadColorPlan{service_plan.mem_colors, {}});
    const os::VirtAddr intr_heap = session.heap(intruder).malloc(8 << 20);
    intr_params.private_base = intr_heap;
    intr_params.private_bytes = 8 << 20;
    intr_params.write_fraction = 0.8;
    intr_params.compute_per_access = 5;
    intr_params.accesses = 60000;
  }

  // Same workload-tuned thresholds as the mixed_tenants demo.
  static GuardConfig guard_config() {
    GuardConfig g;
    g.enabled = true;
    g.min_epoch_accesses = 256;
    g.migration_budget = 512;
    g.hot_enter = 0.03;
    g.hot_exit = 0.01;
    g.cooldown_epochs = 1;
    return g;
  }

  // One epoch of both tenants on the shared simulated clock.
  hw::Cycles run_section(unsigned epoch, hw::Cycles clock) {
    std::vector<os::TaskId> tasks = {service, intruder};
    MixedKernelStream s1(svc_params, 1 + epoch);
    MixedKernelStream s2(intr_params, 100 + epoch);
    std::vector<OpStream*> ptrs = {&s1, &s2};
    ParallelEngine engine(session);
    return engine.run_parallel(tasks, ptrs, clock).max_end();
  }

  // True while the intruder still holds any of the service's banks.
  bool collided() const {
    for (const uint16_t c : service_plan.mem_colors)
      if (session.kernel().task(intruder).has_mem_color(c)) return true;
    return false;
  }
};

TEST(RecolorHealTest, GuardHealsInjectedCollisionWithoutRestart) {
  HealRig rig;
  os::Kernel& kernel = rig.session.kernel();
  ColorGuard guard(kernel, rig.session.memsys(), HealRig::guard_config());
  // The service is the promised (guaranteed-class) tenant: under the
  // measured-cheapest victim policy its priority pins it in place, so
  // every heal must move the intruder -- which is what this scenario
  // asserts. This mirrors what AdmissionController::bind_guard does.
  guard.set_tenant_priority(rig.service, 2);

  constexpr unsigned kEpochBudget = 14;
  hw::Cycles clock = 0;
  uint64_t prev_conf = 0;
  uint64_t collided_conf = 0, healed_conf = 0;
  for (unsigned epoch = 0; epoch < kEpochBudget; ++epoch) {
    clock = rig.run_section(epoch, clock);
    const uint64_t conf = service_conflicts(rig.session.memsys(), prev_conf);
    if (epoch == 0) collided_conf = conf;
    healed_conf = conf;
    guard.run_epoch();
  }

  // The collision is fully healed: the intruder holds none of the
  // service's banks, the service was never touched.
  EXPECT_FALSE(rig.collided());
  for (const uint16_t c : rig.service_plan.mem_colors)
    EXPECT_TRUE(kernel.task(rig.service).has_mem_color(c));

  // Absolute interference on the service's banks dropped >= 30% within
  // the epoch budget (the demo measures ~80%).
  ASSERT_GT(collided_conf, 0u);
  EXPECT_LE(healed_conf, collided_conf * 7 / 10)
      << "collided " << collided_conf << " healed " << healed_conf;

  const auto gs = guard.stats().snapshot();
  EXPECT_GE(gs.heals_started, 1u);
  EXPECT_GE(gs.heals_completed, 1u);
  EXPECT_GT(gs.pages_recolored, 0u);
  EXPECT_EQ(gs.rollbacks, 0u);
  EXPECT_EQ(gs.guard_suppressed_epochs, 0u);

  // Zero frames leaked across all the swaps and migrations.
  const auto rep = kernel.check_invariants();
  EXPECT_TRUE(rep.ok) << rep.detail;
}

TEST(RecolorHealTest, ForcedMigrationFailuresConvergeOrRollBackCleanly) {
  HealRig rig;
  os::Kernel& kernel = rig.session.kernel();
  ColorGuard guard(kernel, rig.session.memsys(), HealRig::guard_config());
  guard.set_tenant_priority(rig.service, 2);

  // Every third replacement allocation fails: each heal limps through
  // backoff; a tenant that burns its allowance must roll back to a
  // consistent color set instead of stranding pages between two colors.
  kernel.failpoints().arm(os::FailPoint::kMigrateTarget,
                          os::FailSpec::every_nth(3));
  hw::Cycles clock = 0;
  for (unsigned epoch = 0; epoch < 24; ++epoch) {
    clock = rig.run_section(epoch, clock);
    guard.run_epoch();
  }
  kernel.failpoints().disarm_all();

  const auto gs = guard.stats().snapshot();
  EXPECT_GT(gs.migrations_failed, 0u);  // the failures really fired
  // Converged through the backoff (heals completed) and/or rolled back;
  // either way the guard made progress decisions, not silent spinning.
  EXPECT_GE(gs.heals_completed + gs.rollbacks, 1u);

  // Whatever mix of completions and rollbacks happened, the intruder's
  // color set is consistent -- it still holds exactly its original count
  // of banks -- and every page is accounted for.
  EXPECT_EQ(kernel.task(rig.intruder).mem_color_list().size(),
            rig.service_plan.mem_colors.size());
  const auto rep = kernel.check_invariants();
  EXPECT_TRUE(rep.ok) << rep.detail;

  // After the fault clears, the system is still healable: remaining
  // collisions keep draining with no failpoint in the way.
  for (unsigned epoch = 24; epoch < 34 && rig.collided(); ++epoch) {
    clock = rig.run_section(epoch, clock);
    guard.run_epoch();
  }
  const auto rep2 = kernel.check_invariants();
  EXPECT_TRUE(rep2.ok) << rep2.detail;
}

}  // namespace
}  // namespace tint::runtime

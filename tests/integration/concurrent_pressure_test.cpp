// Concurrent memory pressure through the user-level allocator: one
// TintHeap per real thread (the glibc-arena model -- heaps themselves
// are single-owner, the *kernel underneath* is the shared concurrent
// system), populate-at-malloc so every allocation drives the kernel's
// degradation ladder, with failpoints armed and a node offlined
// mid-storm. Labeled both `concurrency` and `pressure`: it is the
// intersection workload for the tsan-torture and asan-pressure presets.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/tintmalloc.h"
#include "hw/pci_config.h"
#include "util/rng.h"

namespace tint::core {
namespace {

using os::AllocError;
using os::FailPoint;
using os::FailSpec;
using os::Kernel;
using os::TaskId;

constexpr unsigned kThreads = 8;

class ConcurrentPressureTest : public ::testing::Test {
 protected:
  ConcurrentPressureTest()
      : topo_(hw::Topology::tiny()),
        pci_(hw::PciConfig::program_bios(topo_)),
        map_(pci_, topo_) {}

  hw::Topology topo_;
  hw::PciConfig pci_;
  hw::AddressMapping map_;
};

// Per-thread colored heaps churning malloc/free against the shared
// kernel. Every byte is faulted at malloc time (populate), so the whole
// ladder -- colored, widened, default, scavenged -- runs under real
// contention; afterwards the frame pools must balance exactly.
TEST_F(ConcurrentPressureTest, PerThreadHeapChurnBalances) {
  Kernel k(topo_, map_, {}, 42);
  std::vector<TaskId> tasks;
  for (unsigned i = 0; i < kThreads; ++i) {
    const TaskId t = k.create_task(i % topo_.num_cores());
    // Colors assigned before the threads start (TCB single-owner rule);
    // neighbouring threads share banks, so the color shards see both
    // disjoint and contended traffic.
    k.mmap(t, (i % map_.num_bank_colors()) | os::SET_MEM_COLOR, 0,
           os::PROT_COLOR_ALLOC);
    k.mmap(t, (i % map_.num_llc_colors()) | os::SET_LLC_COLOR, 0,
           os::PROT_COLOR_ALLOC);
    tasks.push_back(t);
  }

  std::atomic<uint64_t> total_mallocs{0};
  std::vector<std::thread> threads;
  for (unsigned ti = 0; ti < kThreads; ++ti) {
    threads.emplace_back([&, ti] {
      HeapConfig hc;
      hc.populate = true;
      hc.chunk_pages = 32;
      TintHeap heap(k, tasks[ti], hc);
      Rng rng(900 + ti);
      std::vector<os::VirtAddr> live;
      for (unsigned op = 0; op < 600; ++op) {
        if (live.size() < 48 && (live.empty() || rng.next_bool(0.6))) {
          const uint64_t size = 64 + rng.next_below(16 << 10);
          const os::VirtAddr p = heap.malloc(size);
          ASSERT_NE(p, 0u) << os::to_string(heap.last_error());
          live.push_back(p);
        } else {
          const size_t i = rng.next_below(live.size());
          heap.free(live[i]);
          live[i] = live.back();
          live.pop_back();
        }
      }
      const HeapStats& hs = heap.stats();
      EXPECT_EQ(hs.failed_mallocs, 0u);
      EXPECT_EQ(hs.invalid_frees, 0u);
      total_mallocs.fetch_add(hs.mallocs, std::memory_order_relaxed);
      heap.release_all();  // heap teardown races the other heaps' churn
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_GT(total_mallocs.load(), uint64_t{kThreads} * 300);
  EXPECT_EQ(k.page_table().mapped_pages(), 0u);
  const auto rep = k.check_invariants();
  EXPECT_TRUE(rep.ok) << rep.detail;
  // Per-task fault accounting survived the storm: the ladder identity
  // holds for every task (widened/scavenged also count as default).
  for (const TaskId t : tasks) {
    const auto s = k.task(t).alloc_stats().snapshot();
    EXPECT_EQ(s.page_faults, s.colored_pages + s.default_pages) << t;
  }
}

// The same churn with the machine degrading underneath it: probability
// failpoints on the buddy and the refill path, plus a node flapping
// offline/online. Heaps tolerate failed mallocs (populate surfaces the
// ladder verdict as malloc() == 0) but nothing may leak or corrupt.
TEST_F(ConcurrentPressureTest, HeapChurnUnderFailpointsAndHotplug) {
  Kernel k(topo_, map_, {}, 7);
  std::vector<TaskId> tasks;
  for (unsigned i = 0; i < kThreads; ++i)
    tasks.push_back(k.create_task(i % topo_.num_cores()));

  std::atomic<bool> stop{false};
  std::thread chaos([&] {
    while (!stop.load(std::memory_order_acquire)) {
      k.failpoints().arm(FailPoint::kBuddyAlloc, FailSpec::probability(0.3));
      k.failpoints().arm(FailPoint::kColorRefill, FailSpec::every_nth(5));
      k.set_node_online(0, false);
      std::this_thread::yield();
      k.set_node_online(0, true);
      k.failpoints().disarm_all();
      std::this_thread::yield();
    }
  });

  std::atomic<uint64_t> failed{0};
  std::vector<std::thread> threads;
  for (unsigned ti = 0; ti < kThreads; ++ti) {
    threads.emplace_back([&, ti] {
      HeapConfig hc;
      hc.populate = true;
      hc.chunk_pages = 16;
      TintHeap heap(k, tasks[ti], hc);
      Rng rng(77 + ti);
      std::vector<os::VirtAddr> live;
      for (unsigned op = 0; op < 400; ++op) {
        if (live.size() < 32 && (live.empty() || rng.next_bool(0.6))) {
          const os::VirtAddr p = heap.malloc(128 + rng.next_below(8 << 10));
          if (p == 0) {
            failed.fetch_add(1, std::memory_order_relaxed);
            EXPECT_NE(heap.last_error(), AllocError::kOk);
          } else {
            live.push_back(p);
          }
        } else {
          const size_t i = rng.next_below(live.size());
          heap.free(live[i]);
          live[i] = live.back();
          live.pop_back();
        }
      }
      heap.release_all();
    });
  }
  for (auto& t : threads) t.join();
  stop.store(true, std::memory_order_release);
  chaos.join();
  k.failpoints().disarm_all();
  k.set_node_online(0, true);

  EXPECT_EQ(k.page_table().mapped_pages(), 0u);
  const auto rep = k.check_invariants();
  EXPECT_TRUE(rep.ok) << rep.detail;
  // A failed populate unwinds its partial frames; failures must have
  // been *reported*, never silently swallowed.
  const auto s = k.stats().snapshot();
  EXPECT_GE(s.alloc_failures, failed.load() > 0 ? 1u : 0u);
}

// Stop-the-world invariant walks interleaved with populate-heavy heap
// traffic from other threads: the walk drains in-flight faults via the
// mm lock and must always see a balanced machine.
TEST_F(ConcurrentPressureTest, StopTheWorldWalksDuringHeapTraffic) {
  Kernel k(topo_, map_, {}, 21);
  std::vector<TaskId> tasks;
  for (unsigned i = 0; i < kThreads; ++i)
    tasks.push_back(k.create_task(i % topo_.num_cores()));

  std::atomic<bool> stop{false};
  std::atomic<unsigned> walks{0};
  std::thread checker([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const auto rep = k.check_invariants(0, /*stop_the_world=*/true);
      EXPECT_TRUE(rep.ok) << rep.detail;
      walks.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> threads;
  for (unsigned ti = 0; ti < kThreads; ++ti) {
    threads.emplace_back([&, ti] {
      HeapConfig hc;
      hc.populate = true;
      TintHeap heap(k, tasks[ti], hc);
      Rng rng(5 + ti);
      for (unsigned round = 0; round < 12; ++round) {
        std::vector<os::VirtAddr> ptrs;
        for (unsigned i = 0; i < 24; ++i) {
          const os::VirtAddr p = heap.malloc(512 + rng.next_below(4096));
          ASSERT_NE(p, 0u);
          ptrs.push_back(p);
        }
        for (const os::VirtAddr p : ptrs) heap.free(p);
      }
      heap.release_all();
    });
  }
  for (auto& t : threads) t.join();
  stop.store(true, std::memory_order_release);
  checker.join();

  EXPECT_GT(walks.load(), 0u);
  const auto rep = k.check_invariants();
  EXPECT_TRUE(rep.ok) << rep.detail;
}

}  // namespace
}  // namespace tint::core

// Every failure machinery at once: node hotplug flapping, probability /
// every-Nth failpoints on the allocation ladder AND the new ECC family,
// random frame poisoning plus scrubbing with a live DRAM fault model --
// all concurrently with colored worker churn. The machine may degrade
// (failed touches are legal verdicts) but must never corrupt: frame
// accounting balances with the quarantine accounted, and the snapshot
// identities across the ladder and RAS counters hold.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "hw/pci_config.h"
#include "os/kernel.h"
#include "sim/dram_fault.h"
#include "util/rng.h"

namespace tint::os {
namespace {

using sim::DramFaultModel;
using sim::FrameHealth;

constexpr unsigned kWorkers = 5;

class MixedFailureTest : public ::testing::Test {
 protected:
  MixedFailureTest()
      : topo_(hw::Topology::tiny()),
        pci_(hw::PciConfig::program_bios(topo_)),
        map_(pci_, topo_) {}

  hw::Topology topo_;
  hw::PciConfig pci_;
  hw::AddressMapping map_;
};

TEST_F(MixedFailureTest, HotplugFailpointsAndPoisoningConcurrently) {
  KernelConfig cfg;
  cfg.ras.retire_threshold = 24;
  Kernel k(topo_, map_, cfg, 1234);
  DramFaultModel model(map_);
  k.attach_fault_model(&model);
  const uint64_t page = topo_.page_bytes();

  std::vector<TaskId> tasks;
  for (unsigned i = 0; i < kWorkers; ++i) {
    const TaskId t = k.create_task(i % topo_.num_cores());
    k.mmap(t, (i % map_.num_bank_colors()) | SET_MEM_COLOR, 0,
           PROT_COLOR_ALLOC);
    tasks.push_back(t);
  }

  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (unsigned ti = 0; ti < kWorkers; ++ti) {
    threads.emplace_back([&, ti] {
      const TaskId task = tasks[ti];
      Rng rng(40 + ti);
      for (unsigned iter = 0; iter < 10; ++iter) {
        const uint64_t pages = 8 + rng.next_below(16);
        const VirtAddr base = k.mmap(task, 0, pages * page, 0);
        ASSERT_NE(base, kMmapFailed);
        for (unsigned round = 0; round < 3; ++round) {
          for (uint64_t p = 0; p < pages; ++p) {
            const auto tr = k.touch(task, base + p * page, true);
            // Degradation is legal under the storm (ladder exhausted,
            // node offline, uncorrectable error); corruption is not --
            // success must come with a physical address, failure without.
            if (tr.error == AllocError::kOk)
              ASSERT_NE(tr.pa, 0u);
            else
              ASSERT_EQ(tr.pa, 0u);
          }
        }
        ASSERT_TRUE(k.munmap(task, base, pages * page));
      }
    });
  }
  threads.emplace_back([&] {  // hotplug + failpoint chaos
    while (!stop.load(std::memory_order_acquire)) {
      k.failpoints().arm(FailPoint::kBuddyAlloc, FailSpec::probability(0.2));
      k.failpoints().arm(FailPoint::kEccCorrected, FailSpec::probability(0.05));
      k.failpoints().arm(FailPoint::kEccUncorrected, FailSpec::every_nth(97));
      k.failpoints().arm(FailPoint::kMigrateTarget, FailSpec::every_nth(13));
      k.set_node_online(1, false);
      std::this_thread::yield();
      k.set_node_online(1, true);
      k.failpoints().disarm_all();
      std::this_thread::yield();
    }
  });
  threads.emplace_back([&] {  // poisoner + scrubber
    Rng rng(88);
    const Pfn total = static_cast<Pfn>(topo_.total_pages());
    while (!stop.load(std::memory_order_acquire)) {
      for (unsigned i = 0; i < 8; ++i)
        k.poison_frame(static_cast<Pfn>(rng.next_below(total)));
      model.inject_row_of(
          static_cast<hw::PhysAddr>(rng.next_below(total)) * page,
          rng.next_bool(0.7) ? FrameHealth::kFlaky : FrameHealth::kDead);
      k.scrub();
      if (model.num_regions() > 32) model.clear();
      std::this_thread::yield();
    }
  });

  for (unsigned ti = 0; ti < kWorkers; ++ti) threads[ti].join();
  stop.store(true, std::memory_order_release);
  threads[kWorkers].join();
  threads[kWorkers + 1].join();
  k.failpoints().disarm_all();
  k.set_node_online(1, true);

  // Workers unmapped everything; only quarantined frames stay withheld.
  EXPECT_EQ(k.page_table().mapped_pages(), 0u);
  const auto rep = k.check_invariants();
  ASSERT_TRUE(rep.ok) << rep.detail;
  EXPECT_EQ(rep.mapped, 0u);

  const auto s = k.stats().snapshot();
  // Snapshot identities.
  // (1) The quarantine never leaks: every frame ever poisoned is still
  //     accounted, in the set, in kPoisoned state (cross-checked by the
  //     invariant walk), and nowhere else.
  EXPECT_EQ(rep.poisoned, s.frames_poisoned);
  EXPECT_EQ(k.poisoned_frames(), s.frames_poisoned);
  // (2) Retirement bookkeeping matches the flag array.
  EXPECT_EQ(k.retired_colors().size(), s.colors_retired);
  // (3) Every soft offline was a successful migration, and offline kinds
  //     decompose the quarantine together with direct poisonings and
  //     screening rejections.
  EXPECT_LE(s.soft_offlines, s.pages_migrated);
  EXPECT_GE(s.frames_poisoned,
            s.soft_offlines + s.hard_offlines + s.ras_screened_frames);
  // (4) Per-task ladder identity survived the storm.
  for (const TaskId t : tasks) {
    const auto ts = k.task(t).alloc_stats().snapshot();
    EXPECT_EQ(ts.page_faults, ts.colored_pages + ts.default_pages) << t;
  }
  // (5) Extended conservation law: ladder-served order-0 allocations are
  //     consumed by winning faults, lost fault races, migrations and
  //     screening -- plus at most one per migration race (only remap-
  //     point losers consumed an allocation).
  const uint64_t ladder = s.ladder_colored + s.ladder_widened +
                          s.ladder_default + s.scavenged_pages;
  const uint64_t floor = (s.page_faults - s.huge_faults) +
                         s.fault_races_lost + s.pages_migrated +
                         s.ras_screened_frames;
  EXPECT_GE(ladder, floor);
  EXPECT_LE(ladder, floor + s.migration_races);
}

}  // namespace
}  // namespace tint::os

// End-to-end shape tests on the paper's machine: scaled-down versions of
// the Section V experiments, asserting the *orderings* the paper reports
// (not absolute numbers).
#include <gtest/gtest.h>

#include "runtime/experiment.h"
#include "runtime/workload.h"

namespace tint::runtime {
namespace {

using core::MachineConfig;
using core::Policy;

constexpr double kScale = 0.25;  // keep each run around a second

class EndToEnd : public ::testing::Test {
 protected:
  static MachineConfig machine() { return MachineConfig::opteron6128(); }
};

TEST_F(EndToEnd, LatencyLocalBelowRemote) {
  // Finding (1) of Section V: local controller accesses are much
  // cheaper than remote ones.
  core::Session s(machine());
  auto& ms = s.memsys();
  const auto& map = s.mapping();
  hw::Cycles now = 0;
  hw::Cycles lat[4] = {};
  for (unsigned node = 0; node < 4; ++node) {
    hw::DramCoord c;
    c.node = node;
    c.row = 7;
    now += 100000;
    lat[node] = ms.access(0, map.compose(c), false, now);
  }
  EXPECT_LT(lat[0], lat[1]);  // 1 hop < 2 hops
  EXPECT_LT(lat[1], lat[2]);  // 2 hops < 3 hops
  EXPECT_EQ(lat[2], lat[3]);  // both cross-socket
}

TEST_F(EndToEnd, SyntheticFig10Ordering) {
  // Fig. 10: MEM/LLC is fastest; MEM and MEM/LLC clearly beat buddy.
  const auto cfg = make_config(machine().topo, 16, 4);
  const uint64_t bytes = 4ULL << 20;
  const auto buddy = run_synthetic(machine(), Policy::kBuddy, cfg.cores,
                                   bytes, 7);
  const auto mem = run_synthetic(machine(), Policy::kMem, cfg.cores, bytes, 7);
  const auto memllc =
      run_synthetic(machine(), Policy::kMemLlc, cfg.cores, bytes, 7);
  EXPECT_LT(memllc.cycles, buddy.cycles);
  EXPECT_LT(mem.cycles, buddy.cycles);
  EXPECT_LE(memllc.cycles, mem.cycles * 1.10);  // MEM/LLC at least on par
  // Mechanism: coloring removes remote accesses entirely.
  EXPECT_GT(buddy.dram_remote_fraction, 0.1);
  EXPECT_LT(memllc.dram_remote_fraction, 0.02);
}

TEST_F(EndToEnd, Fig11MemLlcBeatsBuddyAndBpmLoses) {
  // Fig. 11 at 16_threads_4_nodes for the most memory-bound proxy:
  // MEM+LLC < buddy < BPM.
  ExperimentDriver driver(machine(), /*reps=*/1, /*seed=*/42);
  const auto cfg = make_config(machine().topo, 16, 4);
  const auto spec = lbm_spec().scaled(kScale);
  const auto buddy = driver.run(spec, Policy::kBuddy, cfg);
  const auto bpm = driver.run(spec, Policy::kBpm, cfg);
  const auto memllc = driver.run(spec, Policy::kMemLlc, cfg);
  EXPECT_LT(memllc.runtime.mean(), buddy.runtime.mean());
  EXPECT_GT(bpm.runtime.mean(), buddy.runtime.mean());
  // BPM's loss comes from remote banks (Section V.B's explanation).
  EXPECT_GT(bpm.remote_fraction, buddy.remote_fraction);
  EXPECT_LT(memllc.remote_fraction, 0.05);
}

TEST_F(EndToEnd, Fig12IdleTimeReduced) {
  ExperimentDriver driver(machine(), 1, 42);
  const auto cfg = make_config(machine().topo, 16, 4);
  const auto spec = lbm_spec().scaled(kScale);
  const auto buddy = driver.run(spec, Policy::kBuddy, cfg);
  const auto memllc = driver.run(spec, Policy::kMemLlc, cfg);
  EXPECT_LT(memllc.total_idle.mean(), buddy.total_idle.mean());
}

TEST_F(EndToEnd, Fig13ThreadRuntimeSpreadShrinks) {
  // Fig. 13: the max-min thread runtime spread under buddy is a multiple
  // of MEM+LLC's.
  ExperimentDriver driver(machine(), 2, 42);
  const auto cfg = make_config(machine().topo, 16, 4);
  const auto spec = lbm_spec().scaled(kScale);
  const auto buddy = driver.run(spec, Policy::kBuddy, cfg);
  const auto memllc = driver.run(spec, Policy::kMemLlc, cfg);
  EXPECT_GT(buddy.busy_spread.mean(), 1.5 * memllc.busy_spread.mean());
  EXPECT_LT(memllc.max_thread_busy.mean(), buddy.max_thread_busy.mean());
}

TEST_F(EndToEnd, Fig14MaxThreadIdleShrinks) {
  ExperimentDriver driver(machine(), 1, 42);
  const auto cfg = make_config(machine().topo, 16, 4);
  const auto spec = lbm_spec().scaled(kScale);
  const auto buddy = driver.run(spec, Policy::kBuddy, cfg);
  const auto memllc = driver.run(spec, Policy::kMemLlc, cfg);
  EXPECT_LT(memllc.max_thread_idle.mean(), buddy.max_thread_idle.mean());
}

TEST_F(EndToEnd, BlackscholesGainsLessThanLbm) {
  // Section V.B: blackscholes shows the least improvement (input-bound,
  // master-heavy); lbm the most.
  ExperimentDriver driver(machine(), 1, 42);
  const auto cfg = make_config(machine().topo, 16, 4);
  const auto lbm_b = driver.run(lbm_spec().scaled(kScale), Policy::kBuddy, cfg);
  const auto lbm_c =
      driver.run(lbm_spec().scaled(kScale), Policy::kMemLlc, cfg);
  const auto bs_b =
      driver.run(blackscholes_spec().scaled(kScale), Policy::kBuddy, cfg);
  const auto bs_c =
      driver.run(blackscholes_spec().scaled(kScale), Policy::kMemLlc, cfg);
  const double lbm_gain = 1.0 - lbm_c.runtime.mean() / lbm_b.runtime.mean();
  const double bs_gain = 1.0 - bs_c.runtime.mean() / bs_b.runtime.mean();
  EXPECT_GT(lbm_gain, bs_gain);
  EXPECT_GT(lbm_gain, 0.1);
}

TEST_F(EndToEnd, FreqmineFullPartitionOverflowsAndPartWins) {
  // Section V.B's freqmine anomaly, reproduced on a machine small enough
  // that the full MEM+LLC partition cannot hold the heap: the colored
  // pool overflows (fallback pages), while LLC+MEM(part) -- which shares
  // the node's banks within a group -- fits and wins.
  MachineConfig mc = machine();
  mc.topo.dram_bytes_per_node = 256ULL << 20;
  mc.topo.validate();
  ExperimentDriver driver(mc, 1, 42);
  const auto cfg = make_config(mc.topo, 16, 4);
  const auto spec = freqmine_spec().scaled(0.15);  // ~6 MB/thread heap
  const auto full = driver.run(spec, Policy::kMemLlc, cfg);
  const auto part = driver.run(spec, Policy::kLlcMemPart, cfg);
  EXPECT_GT(full.fallback_fraction, 0.05);
  EXPECT_LT(part.fallback_fraction, 0.01);
  EXPECT_LT(part.runtime.mean(), full.runtime.mean());
}

TEST_F(EndToEnd, GainsPresentAcrossThreadCounts) {
  // Section V.B reports the largest boost at 16_threads_4_nodes. In this
  // model the 16-thread gain adds bank/LLC contention relief on top of
  // the remote-access elimination that already helps at 4 threads, but
  // the two effects land within noise of each other at a single seed
  // (the remote fraction of the buddy baseline is thread-count
  // independent here, see DESIGN.md). We assert that both configurations
  // improve substantially and that 16 threads is at least in the same
  // band; the benches report the full trend.
  ExperimentDriver driver(machine(), 1, 42);
  const auto spec = lbm_spec().scaled(kScale);
  const auto c16 = make_config(machine().topo, 16, 4);
  const auto c4 = make_config(machine().topo, 4, 4);
  const auto b16 = driver.run(spec, Policy::kBuddy, c16);
  const auto m16 = driver.run(spec, Policy::kMemLlc, c16);
  const auto b4 = driver.run(spec, Policy::kBuddy, c4);
  const auto m4 = driver.run(spec, Policy::kMemLlc, c4);
  const double gain16 = 1.0 - m16.runtime.mean() / b16.runtime.mean();
  const double gain4 = 1.0 - m4.runtime.mean() / b4.runtime.mean();
  EXPECT_GT(gain16, 0.15);
  EXPECT_GT(gain4, 0.05);
  EXPECT_GT(gain16, 0.75 * gain4);
}

TEST_F(EndToEnd, AllocOverheadFrontLoaded) {
  // Section III.C: colored allocation is expensive while the kernel
  // still has to traverse the buddy free lists and colorize blocks
  // (Algorithm 2); "once the colored free list has been populated with
  // pages, the overhead becomes constant ... even for dynamic
  // allocations/deallocations assuming they are balanced in size".
  MachineConfig mc = machine();
  core::Session s(mc);
  const os::TaskId t = s.create_task(0);
  // A restrictive color set so the first pass genuinely has to hunt.
  s.apply_colors(t, core::ThreadColorPlan{{0, 1}, {0, 1}});
  const uint64_t pages = 256;
  const os::VirtAddr a = s.kernel().mmap(t, 0, pages * 4096, 0);
  hw::Cycles cold = 0;
  for (uint64_t i = 0; i < pages; ++i)
    cold += s.kernel().touch(t, a + i * 4096, true).fault_cycles;
  s.kernel().munmap(t, a, pages * 4096);  // frames go back to color lists
  const os::VirtAddr b = s.kernel().mmap(t, 0, pages * 4096, 0);
  hw::Cycles warm = 0;
  for (uint64_t i = 0; i < pages; ++i)
    warm += s.kernel().touch(t, b + i * 4096, true).fault_cycles;
  EXPECT_GT(cold, 2 * warm);
  // Warm faults are pure fault cost: the lists are already populated.
  EXPECT_EQ(warm, pages * s.kernel().config().fault_base_cycles);
}

}  // namespace
}  // namespace tint::runtime

// Whole-stack determinism: identical seeds must reproduce results
// bit-for-bit -- the foundation of every comparison in the benches.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/session.h"
#include "runtime/color_guard.h"
#include "runtime/experiment.h"
#include "runtime/sim_thread.h"
#include "runtime/workload.h"

namespace tint::runtime {
namespace {

WorkloadSpec spec() {
  WorkloadSpec s;
  s.name = "det";
  s.private_bytes = 256 << 10;
  s.shared_bytes = 64 << 10;
  s.hot_bytes = 32 << 10;
  s.hot_fraction = 0.5;
  s.shared_fraction = 0.1;
  s.write_fraction = 0.3;
  s.compute_per_access = 15;
  s.rounds = 2;
  s.accesses_per_round = 2500;
  s.imbalance = 0.2;
  s.serial_accesses_per_round = 300;
  return s;
}

TEST(Determinism, IdenticalSeedsIdenticalRuns) {
  WorkloadRunner runner(core::MachineConfig::tiny());
  const std::vector<unsigned> cores = {0, 1, 2, 3};
  for (const core::Policy p :
       {core::Policy::kBuddy, core::Policy::kBpm, core::Policy::kMemLlc}) {
    const RunResult a = runner.run(spec(), p, cores, 99);
    const RunResult b = runner.run(spec(), p, cores, 99);
    EXPECT_EQ(a.total_runtime, b.total_runtime) << core::to_string(p);
    EXPECT_EQ(a.total_idle, b.total_idle);
    EXPECT_EQ(a.thread_busy, b.thread_busy);
    EXPECT_EQ(a.thread_idle, b.thread_idle);
    EXPECT_EQ(a.remote_pages, b.remote_pages);
    EXPECT_EQ(a.pages_touched, b.pages_touched);
    EXPECT_DOUBLE_EQ(a.avg_access_latency, b.avg_access_latency);
  }
}

// Pinned golden results from the serial engine, captured before the
// allocation stack grew its locks. Any change to lock placement, stat
// atomics or the TLB must leave the single-threaded simulation
// *bit-for-bit* identical -- not merely self-consistent -- so the values
// are asserted against these literals, not against a second run.
// avg_access_latency is compared through its IEEE-754 bit pattern.
TEST(Determinism, SerialResultsMatchPreLockingGoldens) {
  struct Golden {
    core::Policy policy;
    uint64_t total_runtime;
    uint64_t total_idle;
    uint64_t pages_touched;
    uint64_t remote_pages;
    uint64_t avg_latency_bits;
  };
  const Golden goldens[] = {
      {core::Policy::kBuddy, 1082261ull, 401864ull, 272ull, 144ull,
       0x40557d116b835c7full},
      {core::Policy::kBpm, 1040799ull, 240303ull, 272ull, 176ull,
       0x4054edbabed17707ull},
      {core::Policy::kMemLlc, 766193ull, 141616ull, 272ull, 0ull,
       0x404ca98ac98c5b88ull},
  };
  WorkloadRunner runner(core::MachineConfig::tiny());
  const std::vector<unsigned> cores = {0, 1, 2, 3};
  for (const Golden& g : goldens) {
    const RunResult r = runner.run(spec(), g.policy, cores, 99);
    EXPECT_EQ(r.total_runtime, g.total_runtime) << core::to_string(g.policy);
    EXPECT_EQ(r.total_idle, g.total_idle) << core::to_string(g.policy);
    EXPECT_EQ(r.pages_touched, g.pages_touched) << core::to_string(g.policy);
    EXPECT_EQ(r.remote_pages, g.remote_pages) << core::to_string(g.policy);
    EXPECT_EQ(std::bit_cast<uint64_t>(r.avg_access_latency),
              g.avg_latency_bits)
        << core::to_string(g.policy);
  }
}

// The ColorGuard's default-off contract: constructing a guard and running
// its epochs between sections must leave the serial engine *bit-for-bit*
// where a guard-free run lands -- same section end times, same core
// counters, zero kernel mutations. This is what lets the guard ship
// attached-by-default without re-pinning the goldens above.
TEST(Determinism, DefaultOffGuardLeavesSerialEngineBitIdentical) {
  struct Observed {
    std::vector<hw::Cycles> section_ends;
    uint64_t accesses = 0;
    uint64_t total_latency = 0;
    uint64_t recolor_calls = 0;
    uint64_t pages_migrated = 0;
  };
  const auto run = [](bool with_guard) {
    core::Session session(core::MachineConfig::tiny());
    const os::TaskId t = session.create_task(0);
    core::ThreadColorPlan plan;
    plan.mem_colors = {0, 1};
    session.apply_colors(t, plan);

    const os::VirtAddr heap = session.heap(t).malloc(256 << 10);
    MixedKernelParams p;
    p.private_base = heap;
    p.private_bytes = 256 << 10;
    p.hot_bytes = 32 << 10;
    p.hot_fraction = 0.5;
    p.write_fraction = 0.3;
    p.compute_per_access = 10;
    p.accesses = 5000;

    std::unique_ptr<ColorGuard> guard;
    if (with_guard)
      guard = std::make_unique<ColorGuard>(session.kernel(), session.memsys());

    ParallelEngine engine(session);
    Observed o;
    hw::Cycles clock = 0;
    for (unsigned epoch = 0; epoch < 3; ++epoch) {
      std::vector<os::TaskId> tasks = {t};
      MixedKernelStream s(p, 7 + epoch);
      std::vector<OpStream*> ptrs = {&s};
      clock = engine.run_parallel(tasks, ptrs, clock).max_end();
      o.section_ends.push_back(clock);
      if (guard) guard->run_epoch();
    }
    const sim::CoreStats& cs = session.memsys().core_stats(0);
    o.accesses = cs.accesses;
    o.total_latency = cs.total_latency;
    const auto ks = session.kernel().stats().snapshot();
    o.recolor_calls = ks.recolor_calls;
    o.pages_migrated = ks.pages_migrated;
    return o;
  };

  const Observed bare = run(false);
  const Observed guarded = run(true);
  EXPECT_EQ(bare.section_ends, guarded.section_ends);
  EXPECT_EQ(bare.accesses, guarded.accesses);
  EXPECT_EQ(bare.total_latency, guarded.total_latency);
  EXPECT_EQ(guarded.recolor_calls, 0u);
  EXPECT_EQ(guarded.pages_migrated, 0u);
}

TEST(Determinism, DifferentSeedsDifferForBuddy) {
  WorkloadRunner runner(core::MachineConfig::tiny());
  const std::vector<unsigned> cores = {0, 1, 2, 3};
  const RunResult a = runner.run(spec(), core::Policy::kBuddy, cores, 1);
  const RunResult b = runner.run(spec(), core::Policy::kBuddy, cores, 2);
  EXPECT_NE(a.total_runtime, b.total_runtime);
}

TEST(Determinism, SyntheticReproducible) {
  const auto mc = core::MachineConfig::tiny();
  const std::vector<unsigned> cores = {0, 1, 2, 3};
  const auto a = run_synthetic(mc, core::Policy::kMem, cores, 64 << 10, 11);
  const auto b = run_synthetic(mc, core::Policy::kMem, cores, 64 << 10, 11);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_DOUBLE_EQ(a.row_hit_rate, b.row_hit_rate);
}

TEST(Determinism, DriverAggregatesReproducible) {
  ExperimentDriver d1(core::MachineConfig::tiny(), 2, 5);
  ExperimentDriver d2(core::MachineConfig::tiny(), 2, 5);
  const ThreadConfig cfg = make_config(hw::Topology::tiny(), 4, 2);
  const auto a = d1.run(spec(), core::Policy::kLlc, cfg);
  const auto b = d2.run(spec(), core::Policy::kLlc, cfg);
  EXPECT_DOUBLE_EQ(a.runtime.mean(), b.runtime.mean());
  EXPECT_DOUBLE_EQ(a.total_idle.mean(), b.total_idle.mean());
}

}  // namespace
}  // namespace tint::runtime

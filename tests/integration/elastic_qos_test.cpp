// Acceptance tests for the elastic color runtime (DESIGN.md section
// 15): an injected two-tenant LLC collision heals *live* -- the guard
// detects the thrashing slice, moves the cheaper tenant's LLC set and
// dribble-migrates its pages with no restart and a measured drop in
// cross-requester evictions; under palette scarcity a waitlisted
// guaranteed arrival is admitted before its deadline via a shrink of a
// lower-class tenant; and with every elastic off the churn engine's
// tallies stay bit-identical run to run (the determinism contract).
// Runs under the `qos` ctest label.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "hw/pci_config.h"
#include "os/kernel.h"
#include "runtime/admission.h"
#include "runtime/churn.h"
#include "runtime/color_guard.h"
#include "sim/memory_system.h"

namespace tint::runtime {
namespace {

class ElasticQosTest : public ::testing::Test {
 protected:
  ElasticQosTest()
      : topo_(hw::Topology::tiny()),
        pci_(hw::PciConfig::program_bios(topo_)),
        map_(pci_, topo_),
        memsys_(topo_, map_) {}

  os::Kernel make_kernel() { return os::Kernel(topo_, map_, {}, 42); }

  void claim_bank(os::Kernel& k, os::TaskId t, unsigned color) {
    ASSERT_NE(k.mmap(t, color | os::SET_MEM_COLOR, 0, os::PROT_COLOR_ALLOC),
              os::kMmapFailed);
  }
  void claim_llc(os::Kernel& k, os::TaskId t, unsigned color) {
    ASSERT_NE(k.mmap(t, color | os::SET_LLC_COLOR, 0, os::PROT_COLOR_ALLOC),
              os::kMmapFailed);
  }

  hw::Topology topo_;
  hw::PciConfig pci_;
  hw::AddressMapping map_;
  sim::MemorySystem memsys_;
};

TEST_F(ElasticQosTest, InjectedLlcCollisionHealsLiveWithNoRestart) {
  os::Kernel k = make_kernel();
  GuardConfig cfg;
  cfg.enabled = true;
  cfg.migration_budget = 512;  // let the heal finish within one epoch
  ColorGuard guard(k, memsys_, cfg);
  const uint64_t page = topo_.page_bytes();
  const unsigned kPages = 32;
  const unsigned shared_llc = 2;

  // Two tenants collide on one LLC slice. Their bank palettes are
  // disjoint (one node each), so every bank color has a single holder
  // and only the LLC axis can heal. The service outranks the intruder:
  // under the kCheapest policy the intruder is the one that moves.
  const os::TaskId service = k.create_task(0);
  const os::TaskId intruder = k.create_task(1);
  for (unsigned i = 0; i < 4; ++i) {
    claim_bank(k, service, map_.make_bank_color(0, i));
    claim_bank(k, intruder, map_.make_bank_color(1, i));
  }
  claim_llc(k, service, shared_llc);
  claim_llc(k, intruder, shared_llc);
  guard.set_tenant_priority(service, 2);

  const auto map_in = [&](os::TaskId t) {
    const os::VirtAddr base = k.mmap(t, 0, kPages * page, 0);
    EXPECT_NE(base, os::kMmapFailed);
    for (unsigned p = 0; p < kPages; ++p)
      EXPECT_EQ(k.touch(t, base + p * page, true).error, os::AllocError::kOk);
    return base;
  };
  const os::VirtAddr sbase = map_in(service);
  const os::VirtAddr ibase = map_in(intruder);
  ASSERT_EQ(k.pages_of_task_llc_color(service, shared_llc).size(), kPages);
  ASSERT_EQ(k.pages_of_task_llc_color(intruder, shared_llc).size(), kPages);

  // Both tenants stream their working sets in alternating passes,
  // service from core 0 and intruder from core 1 -- pages of one LLC
  // color share the same handful of base sets, so each pass evicts
  // lines the *other* core inserted. The line offset rotates per round
  // so repeated rounds miss the private L1/L2 and reach the LLC; pages
  // are re-translated every round because the heal migrates them.
  const sim::Cache& llc = memsys_.llc();
  const unsigned lines_in_page = static_cast<unsigned>(page / llc.line_bytes());
  unsigned rot = 0;
  hw::Cycles now = 0;
  const auto traffic = [&](unsigned rounds) {
    for (unsigned r = 0; r < rounds; ++r, ++rot) {
      const uint64_t off = (rot % lines_in_page) * llc.line_bytes();
      for (unsigned p = 0; p < kPages; ++p) {
        const auto pa = k.translate(sbase + p * page);
        ASSERT_TRUE(pa.has_value());
        now += memsys_.access(0, *pa + off, false, now);
      }
      for (unsigned p = 0; p < kPages; ++p) {
        const auto pa = k.translate(ibase + p * page);
        ASSERT_TRUE(pa.has_value());
        now += memsys_.access(1, *pa + off, false, now);
      }
    }
  };
  const auto cross = [&] { return llc.stats().cross_requester_evictions; };

  // Phase 1: measure the collision.
  const uint64_t before_pre = cross();
  traffic(32);
  const uint64_t pre = cross() - before_pre;
  ASSERT_GT(pre, 100u) << "the injected collision produced no thrash";

  // Phase 2: one guard epoch sees the thrash, flags the slice hot, and
  // heals the cheaper holder live -- swap first, pages dribbling under
  // the budget. A couple of idle epochs close the migration.
  guard.run_epoch();
  guard.run_epoch();
  guard.run_epoch();
  const auto gs = guard.stats().snapshot();
  EXPECT_GE(gs.llc_hot_colors_detected, 1u);
  EXPECT_EQ(gs.llc_heals_started, 1u);
  EXPECT_EQ(gs.llc_heals_completed, 1u);
  EXPECT_EQ(gs.rollbacks, 0u);
  // The service kept the slice it was promised; the intruder moved.
  EXPECT_TRUE(k.task(service).has_llc_color(shared_llc));
  EXPECT_FALSE(k.task(intruder).has_llc_color(shared_llc));
  const auto moved = k.task(intruder).llc_color_list();
  ASSERT_EQ(moved.size(), 1u);
  EXPECT_EQ(k.pages_of_task_llc_color(intruder, moved[0]).size(), kPages);
  // No restart: both tenants stayed live with their full working sets.
  EXPECT_TRUE(k.task_alive(service));
  EXPECT_TRUE(k.task_alive(intruder));
  EXPECT_EQ(k.pages_of_task_llc_color(service, shared_llc).size(), kPages);

  // Phase 3: the same traffic, measurably quieter. One unmeasured pass
  // first: the migration left the intruder's *old* lines stranded in
  // the shared sets, and the service's first re-walk evicts that
  // residue -- a one-time flush, not steady-state interference. The
  // acceptance bar is a >= 30% drop in cross-requester evictions.
  traffic(32);
  const uint64_t before_post = cross();
  traffic(32);
  const uint64_t post = cross() - before_post;
  EXPECT_LE(post, (pre * 7) / 10)
      << "pre=" << pre << " post=" << post;

  const auto rep = k.check_invariants();
  EXPECT_TRUE(rep.ok) << rep.detail;
}

TEST_F(ElasticQosTest, WaitlistedGuaranteedAdmitLandsViaShrinkBeforeDeadline) {
  os::Kernel k = make_kernel();
  GuardConfig gcfg;
  gcfg.enabled = true;
  gcfg.min_epoch_accesses = ~0ull;  // no auto-heals: elastics only
  gcfg.migration_budget = 512;
  ColorGuard guard(k, memsys_, gcfg);

  AdmissionConfig cfg;
  cfg.elastic_shrink = true;
  cfg.waitlist = true;
  cfg.burstable = {8, 2};  // two burstables swallow all 16 banks
  AdmissionController adm(k, memsys_, cfg);
  adm.bind_guard(&guard);
  const uint64_t page = topo_.page_bytes();

  const AdmissionTicket b0 = adm.admit(TenantClass::kBurstable);
  const AdmissionTicket b1 = adm.admit(TenantClass::kBurstable);
  ASSERT_TRUE(b0.admitted && b1.admitted);
  for (const AdmissionTicket& b : {b0, b1}) {
    const os::VirtAddr base = k.mmap(b.task, 0, 8 * page, 0);
    ASSERT_NE(base, os::kMmapFailed);
    for (unsigned p = 0; p < 8; ++p)
      ASSERT_EQ(k.touch(b.task, base + p * page, true).error,
                os::AllocError::kOk);
  }

  // An outside task hogs every remaining LLC color. Shrinks free banks
  // only -- with the guaranteed LLC budget unservable, the admit cannot
  // be unblocked by a shrink and must park on the waitlist instead.
  const os::TaskId hog = k.create_task(2);
  std::vector<bool> llc_used(map_.num_llc_colors(), false);
  for (const uint8_t c : b0.llcs) llc_used[c] = true;
  for (const uint8_t c : b1.llcs) llc_used[c] = true;
  for (unsigned c = 0; c < map_.num_llc_colors(); ++c)
    if (!llc_used[c]) claim_llc(k, hog, c);

  const AdmissionTicket g = adm.admit(TenantClass::kGuaranteed, 50);
  EXPECT_FALSE(g.admitted);
  ASSERT_TRUE(g.waitlisted);
  EXPECT_EQ(adm.waitlist_depth(), 1u);
  EXPECT_EQ(adm.stats().snapshot().shrink_requests, 0u);
  EXPECT_EQ(adm.claim(g.wait_id).state,
            AdmissionController::WaitOutcome::State::kPending);

  // The LLC palette frees (the hog departs). The next palette scan
  // finds the waitlisted guaranteed arrival blocked on banks alone,
  // shrinks the measured-cheapest burstable down to the floor it needs,
  // and retries the waitlist in deadline order -- the arrival is live
  // well before its 50-tick deadline.
  ASSERT_TRUE(k.reap_task(hog).was_alive);
  adm.observe();
  const AdmissionController::WaitOutcome w = adm.claim(g.wait_id);
  ASSERT_EQ(w.state, AdmissionController::WaitOutcome::State::kReady);
  EXPECT_TRUE(w.ticket.admitted);
  EXPECT_EQ(w.ticket.granted, TenantClass::kGuaranteed);
  EXPECT_EQ(w.ticket.banks.size(), 4u);
  EXPECT_EQ(w.ticket.llcs.size(), 2u);

  const auto ast = adm.stats().snapshot();
  EXPECT_EQ(ast.shrink_requests, 1u);
  EXPECT_EQ(ast.shrink_banks_freed, 4u);
  EXPECT_EQ(ast.waitlist_admitted, 1u);
  EXPECT_EQ(ast.waitlist_expired, 0u);
  const ClassSlo& slo = adm.report().cls[unsigned(TenantClass::kGuaranteed)];
  EXPECT_EQ(slo.admitted_from_waitlist, 1u);
  EXPECT_EQ(slo.deadline_missed, 0u);
  // The victim survived above the floor and keeps running.
  const os::TaskId victim =
      k.task(b0.task).mem_color_list().size() < 8 ? b0.task : b1.task;
  EXPECT_EQ(k.task(victim).mem_color_list().size(), 4u);
  EXPECT_TRUE(k.task_alive(victim));

  // Let the shrink's page dribble finish, then tear the floor down and
  // audit: every frame, magazine page and color claim comes back.
  guard.run_epoch();
  guard.run_epoch();
  EXPECT_EQ(guard.stats().snapshot().shrinks_completed, 1u);
  for (const os::TaskId t : {b0.task, b1.task, w.ticket.task})
    ASSERT_TRUE(adm.teardown(t).known);
  EXPECT_EQ(adm.live_tenants(), 0u);
  const auto inv = k.check_invariants(0, /*stop_the_world=*/true);
  EXPECT_TRUE(inv.ok) << inv.detail;
  EXPECT_EQ(inv.mapped, 0u);
  EXPECT_EQ(inv.magazine_cached, 0u);
  EXPECT_EQ(inv.loose, 0u);
}

TEST_F(ElasticQosTest, ChurnTalliesAreBitIdenticalWithElasticsOff) {
  // The elastic machinery is default-off; two single-threaded churn
  // runs over identical fresh kernels must produce identical tallies,
  // draw for draw -- the determinism golden the elastics must not move.
  ChurnResult results[2];
  for (int run = 0; run < 2; ++run) {
    os::Kernel k = make_kernel();
    AdmissionController adm(k, memsys_);
    ChurnConfig cfg;
    cfg.threads = 1;
    cfg.lifetimes = 400;
    ChurnEngine engine(k, adm, cfg);
    results[run] = engine.run();
    EXPECT_EQ(adm.live_tenants(), 0u);
    const auto inv = k.check_invariants(0, /*stop_the_world=*/true);
    EXPECT_TRUE(inv.ok) << inv.detail;
    EXPECT_EQ(inv.mapped, 0u);
  }
  const ChurnResult& a = results[0];
  const ChurnResult& b = results[1];
  EXPECT_EQ(a.lifetimes, b.lifetimes);
  EXPECT_EQ(a.admitted, b.admitted);
  EXPECT_EQ(a.rejected, b.rejected);
  EXPECT_EQ(a.downgraded, b.downgraded);
  EXPECT_EQ(a.torn_down, b.torn_down);
  EXPECT_EQ(a.pages_mapped, b.pages_mapped);
  EXPECT_EQ(a.touches, b.touches);
  EXPECT_EQ(a.touch_errors, b.touch_errors);
  EXPECT_EQ(a.vmas_unmapped, b.vmas_unmapped);
  EXPECT_EQ(a.colors_cleared, b.colors_cleared);
  EXPECT_GT(a.admitted, 0u);
  // No elastic ever fired: the waitlist ledger is all zero.
  EXPECT_EQ(a.waitlisted, 0u);
  EXPECT_EQ(a.wait_admitted, 0u);
  EXPECT_EQ(a.wait_expired, 0u);
  EXPECT_EQ(a.wait_cancelled, 0u);
}

}  // namespace
}  // namespace tint::runtime

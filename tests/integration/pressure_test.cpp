// Near-OOM soak of the whole allocation stack (heap -> kernel ladder ->
// buddy/color pools) with faults injected mid-run: probabilistic buddy
// hiccups, refill failures, transient and real node offlining. The
// contract under test (see DESIGN.md "Error handling & degradation
// contract"):
//   - no abort, ever, on a recoverable path;
//   - malloc returns 0 only once the ladder is genuinely exhausted;
//   - per-stage counters stay consistent with per-task accounting;
//   - frame accounting balances before, during, and after, and teardown
//     leaks nothing.
#include <gtest/gtest.h>

#include <vector>

#include "core/tintmalloc.h"
#include "hw/pci_config.h"

namespace tint::core {
namespace {

using os::AllocError;
using os::FailPoint;
using os::FailSpec;

class PressureTest : public ::testing::Test {
 protected:
  PressureTest()
      : topo_(hw::Topology::tiny()),
        pci_(hw::PciConfig::program_bios(topo_)),
        map_(pci_, topo_) {}

  hw::Topology topo_;
  hw::PciConfig pci_;
  hw::AddressMapping map_;
};

TEST_F(PressureTest, SoakNearOomWithMidRunFaultsAndHotplug) {
  os::KernelConfig kcfg;
  kcfg.huge_pool_blocks_per_node = 1;
  // Faults armed from boot: a buddy hiccup every 50th zone probe and a
  // refill failure every 7th refill attempt.
  kcfg.failpoints.emplace_back(FailPoint::kBuddyAlloc,
                               FailSpec::probability(0.02));
  kcfg.failpoints.emplace_back(FailPoint::kColorRefill,
                               FailSpec::every_nth(7));
  os::Kernel kernel(topo_, map_, kcfg, /*seed=*/1234);

  const os::TaskId t0 = kernel.create_task(0);  // node 0, bank-colored
  const os::TaskId t1 = kernel.create_task(2);  // node 1, uncolored
  ASSERT_NE(kernel.mmap(t0, map_.make_bank_color(0, 0) | os::SET_MEM_COLOR, 0,
                        os::PROT_COLOR_ALLOC),
            os::kMmapFailed);

  HeapConfig hcfg;
  hcfg.populate = true;  // surface ladder failures through malloc()
  TintHeap h0(kernel, t0, hcfg);
  TintHeap h1(kernel, t1, hcfg);

  const auto check = [&](const char* when) {
    const auto rep = kernel.check_invariants();
    ASSERT_TRUE(rep.ok) << when << ": " << rep.detail;
    ASSERT_EQ(rep.loose, 0u) << when;  // populate maps every frame
  };

  // --- Phase 1: mixed allocation churn under injected faults ---------
  std::vector<std::pair<TintHeap*, os::VirtAddr>> live;
  const uint64_t sizes[] = {64, 384, 4096, 16 << 10, 64 << 10};
  for (int i = 0; i < 400; ++i) {
    TintHeap& h = (i % 3 == 0) ? h1 : h0;
    const os::VirtAddr p = h.malloc(sizes[i % 5]);
    ASSERT_NE(p, 0u) << "far from OOM, fault must be absorbed (i=" << i
                     << ", err=" << to_string(h.last_error()) << ")";
    live.emplace_back(&h, p);
    if (i % 3 == 2) {  // churn: free every third allocation
      auto [heap, ptr] = live[live.size() / 2];
      heap->free(ptr);
      live.erase(live.begin() + static_cast<long>(live.size() / 2));
    }
  }
  EXPECT_GT(kernel.failpoints().stats(FailPoint::kBuddyAlloc).fires, 0u);
  EXPECT_GT(kernel.failpoints().stats(FailPoint::kColorRefill).fires, 0u);
  check("after churn phase");

  // --- Phase 2: node 1 drops offline mid-run -------------------------
  // h1's task lives on node 1, which just died: its faults must route
  // around it. Large allocations mmap fresh VMAs, so every frame behind
  // them is faulted while node 1 is down and must land on the survivor.
  kernel.set_node_online(1, false);
  const uint64_t page = topo_.page_bytes();
  for (int i = 0; i < 50; ++i) {
    const os::VirtAddr p = h1.malloc(64 << 10);
    ASSERT_NE(p, 0u) << "node 0 alone still has memory (i=" << i << ")";
    for (uint64_t off = 0; off < (64u << 10); off += page) {
      const auto pa = kernel.translate(p + off);
      ASSERT_TRUE(pa.has_value());
      EXPECT_EQ(kernel.pages()[*pa >> 12].node, 0u);
    }
    live.emplace_back(&h1, p);
  }
  EXPECT_GT(kernel.stats().offline_node_skips, 0u);
  kernel.set_node_online(1, true);
  check("after offline phase");

  // --- Phase 3: transient single-allocation node loss -----------------
  kernel.failpoints().arm(FailPoint::kNodeOffline, FailSpec::probability(0.2));
  for (int i = 0; i < 100; ++i) {
    const os::VirtAddr p = h1.malloc(4096);
    ASSERT_NE(p, 0u);
    live.emplace_back(&h1, p);
  }
  check("after transient-offline phase");

  // --- Phase 4: drive to genuine OOM with injection off ---------------
  // Disarm everything so the only reason malloc may return 0 is a truly
  // exhausted ladder.
  kernel.failpoints().disarm_all();
  uint64_t oom_mallocs = 0;
  for (;;) {
    const os::VirtAddr p = h0.malloc(4096);
    if (p == 0) break;
    live.emplace_back(&h0, p);
    ++oom_mallocs;
    ASSERT_LT(oom_mallocs, topo_.total_pages() + 1);  // runaway guard
  }
  EXPECT_GT(oom_mallocs, 0u);
  EXPECT_EQ(h0.last_error(), AllocError::kOutOfMemory);
  EXPECT_GE(h0.stats().failed_mallocs, 1u);
  // 0 only after the ladder is exhausted: nothing reachable remains.
  EXPECT_EQ(kernel.buddy().total_free_pages(), 0u);
  EXPECT_EQ(kernel.color_lists().total_parked(), 0u);
  check("at OOM");

  // --- Counter consistency --------------------------------------------
  const os::KernelStats& s = kernel.stats();
  EXPECT_GT(s.ladder_colored, 0u);
  EXPECT_GT(s.ladder_default, 0u);
  EXPECT_GT(s.alloc_failures, 0u);
  for (const os::TaskId t : {t0, t1}) {
    const os::TaskAllocStats& as = kernel.task(t).alloc_stats();
    EXPECT_EQ(as.page_faults, as.colored_pages + as.default_pages) << t;
    EXPECT_LE(as.fallback_pages, as.default_pages) << t;
    EXPECT_LE(as.widened_pages + as.scavenged_pages, as.default_pages) << t;
  }
  // Every page fault was served by exactly one ladder stage.
  EXPECT_EQ(s.page_faults - s.huge_faults,
            s.ladder_colored + s.ladder_widened + s.ladder_default +
                s.scavenged_pages);

  // --- Teardown leaks nothing -----------------------------------------
  h0.release_all();
  h1.release_all();
  const auto rep = kernel.check_invariants();
  ASSERT_TRUE(rep.ok) << rep.detail;
  EXPECT_EQ(rep.mapped, 0u);
  EXPECT_EQ(rep.loose, 0u);
  // All frames are back in a reusable pool (buddy, color lists, or the
  // huge reservation); only the warm-up pins stay out.
  EXPECT_EQ(rep.buddy_free + rep.color_parked + rep.huge_pool_pages +
                rep.pinned,
            rep.total);
}

TEST_F(PressureTest, RepeatedPressureCyclesAreStableAndDeterministic) {
  // Exhaust-and-release twice on one kernel: the second cycle must see
  // exactly the same amount of memory (zero cumulative leak), and a
  // fresh kernel with the same seed must reproduce the same counters.
  const auto run_cycles = [&](uint64_t seed) -> uint64_t {
    os::KernelConfig kcfg;
    kcfg.failpoints.emplace_back(FailPoint::kBuddyAlloc,
                                 FailSpec::probability(0.01));
    os::Kernel kernel(topo_, map_, kcfg, seed);
    const os::TaskId t = kernel.create_task(1);
    EXPECT_NE(kernel.mmap(t, map_.make_bank_color(0, 1) | os::SET_MEM_COLOR,
                          0, os::PROT_COLOR_ALLOC),
              os::kMmapFailed)
        << "color opt-in failed";
    HeapConfig hcfg;
    hcfg.populate = true;
    uint64_t first_cycle = 0;
    for (int cycle = 0; cycle < 2; ++cycle) {
      TintHeap heap(kernel, t, hcfg);
      // Churn with the buddy hiccup armed: transient faults get absorbed.
      kernel.failpoints().arm(FailPoint::kBuddyAlloc,
                              FailSpec::probability(0.01));
      for (int i = 0; i < 64; ++i) {
        const os::VirtAddr p = heap.malloc(4096);
        EXPECT_NE(p, 0u) << "churn i=" << i;
        if (i % 2 == 1) heap.free(p);
      }
      // Exhaust with injection off, so a 0 return can only mean the
      // ladder is truly dry -- making the served count a capacity
      // measurement (equal across cycles iff nothing leaked).
      kernel.failpoints().disarm_all();
      uint64_t served = 0;
      while (heap.malloc(8192) != 0 && served <= topo_.total_pages())
        ++served;
      EXPECT_LE(served, topo_.total_pages()) << "runaway allocation loop";
      EXPECT_EQ(heap.last_error(), AllocError::kOutOfMemory);
      if (cycle == 0)
        first_cycle = served;
      else
        EXPECT_EQ(served, first_cycle) << "cycle " << cycle << " leaked";
      heap.release_all();
      const auto rep = kernel.check_invariants();
      EXPECT_TRUE(rep.ok) << rep.detail;
      EXPECT_EQ(rep.mapped, 0u);
    }
    return kernel.stats().page_faults;
  };
  uint64_t a = 0, b = 0;
  { SCOPED_TRACE("first kernel"); a = run_cycles(99); }
  { SCOPED_TRACE("second kernel"); b = run_cycles(99); }
  EXPECT_EQ(a, b);  // injected faults are part of the deterministic run
}

}  // namespace
}  // namespace tint::core

#include "runtime/experiment.h"

#include <gtest/gtest.h>

#include <set>

namespace tint::runtime {
namespace {

TEST(MakeConfig, PaperPinnings) {
  const hw::Topology topo = hw::Topology::opteron6128();
  // Section V.B lists the exact core choices.
  EXPECT_EQ(make_config(topo, 16, 4).cores,
            (std::vector<unsigned>{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12,
                                   13, 14, 15}));
  EXPECT_EQ(make_config(topo, 8, 4).cores,
            (std::vector<unsigned>{0, 1, 4, 5, 8, 9, 12, 13}));
  EXPECT_EQ(make_config(topo, 8, 2).cores,
            (std::vector<unsigned>{0, 1, 2, 3, 4, 5, 6, 7}));
  EXPECT_EQ(make_config(topo, 4, 4).cores,
            (std::vector<unsigned>{0, 4, 8, 12}));
  EXPECT_EQ(make_config(topo, 4, 1).cores, (std::vector<unsigned>{0, 1, 2, 3}));
}

TEST(MakeConfig, NamesMatchPaperStyle) {
  const hw::Topology topo = hw::Topology::opteron6128();
  EXPECT_EQ(make_config(topo, 16, 4).name, "16_threads_4_nodes");
  EXPECT_EQ(make_config(topo, 4, 1).name, "4_threads_1_nodes");
}

TEST(MakeConfig, StandardConfigsAreTheFive) {
  const auto configs = standard_configs(hw::Topology::opteron6128());
  ASSERT_EQ(configs.size(), 5u);
  EXPECT_EQ(configs[0].name, "16_threads_4_nodes");
  EXPECT_EQ(configs[1].name, "8_threads_4_nodes");
  EXPECT_EQ(configs[2].name, "8_threads_2_nodes");
  EXPECT_EQ(configs[3].name, "4_threads_4_nodes");
  EXPECT_EQ(configs[4].name, "4_threads_1_nodes");
}

TEST(MakeConfigDeathTest, RejectsUnevenSplit) {
  const hw::Topology topo = hw::Topology::opteron6128();
  EXPECT_DEATH(make_config(topo, 6, 4), "evenly");
}

WorkloadSpec tiny_spec() {
  WorkloadSpec s;
  s.name = "tiny";
  s.private_bytes = 128 << 10;
  s.shared_bytes = 32 << 10;
  s.hot_bytes = 16 << 10;
  s.hot_fraction = 0.4;
  s.shared_fraction = 0.1;
  s.compute_per_access = 20;
  s.rounds = 2;
  s.accesses_per_round = 1500;
  return s;
}

TEST(ExperimentDriver, AggregatesReps) {
  ExperimentDriver driver(core::MachineConfig::tiny(), /*reps=*/3,
                          /*base_seed=*/77);
  const ThreadConfig cfg = make_config(hw::Topology::tiny(), 4, 2);
  const AggregateResult r = driver.run(tiny_spec(), core::Policy::kBuddy, cfg);
  EXPECT_EQ(r.runtime.count(), 3u);
  EXPECT_EQ(r.total_idle.count(), 3u);
  EXPECT_EQ(r.thread_busy_mean.size(), 4u);
  EXPECT_GT(r.runtime.mean(), 0.0);
  EXPECT_GE(r.runtime.max(), r.runtime.min());
  EXPECT_EQ(r.workload, "tiny");
  EXPECT_EQ(r.config, "4_threads_2_nodes");
}

TEST(ExperimentDriver, BuddyVariesAcrossSeedsColoredLess) {
  // The paper's error bars: buddy placement is random per run while
  // MEM+LLC placement is deterministic, so buddy's runtime spread across
  // seeds should exceed MEM+LLC's.
  ExperimentDriver driver(core::MachineConfig::tiny(), 3, 123);
  const ThreadConfig cfg = make_config(hw::Topology::tiny(), 4, 2);
  const auto buddy = driver.run(tiny_spec(), core::Policy::kBuddy, cfg);
  const auto memllc = driver.run(tiny_spec(), core::Policy::kMemLlc, cfg);
  EXPECT_GT(buddy.runtime.spread() / buddy.runtime.mean(),
            memllc.runtime.spread() / memllc.runtime.mean());
}

TEST(ExperimentDriver, BestOtherPicksMinimum) {
  ExperimentDriver driver(core::MachineConfig::tiny(), 1, 5);
  const ThreadConfig cfg = make_config(hw::Topology::tiny(), 4, 2);
  const BestOther best = best_other_coloring(driver, tiny_spec(), cfg);
  // Must be one of the four non-headline colorings.
  const std::set<core::Policy> allowed = {
      core::Policy::kLlc, core::Policy::kMem, core::Policy::kMemLlcPart,
      core::Policy::kLlcMemPart};
  EXPECT_EQ(allowed.count(best.policy), 1u);
  // And no allowed policy beats it.
  for (const core::Policy p : allowed) {
    const auto r = driver.run(tiny_spec(), p, cfg);
    EXPECT_GE(r.runtime.mean() * 1.0000001, best.result.runtime.mean());
  }
}

TEST(ExperimentDriver, DiagnosticsPopulated) {
  ExperimentDriver driver(core::MachineConfig::tiny(), 1, 5);
  const ThreadConfig cfg = make_config(hw::Topology::tiny(), 4, 2);
  const auto r = driver.run(tiny_spec(), core::Policy::kMemLlc, cfg);
  EXPECT_GE(r.row_hit_rate, 0.0);
  EXPECT_LE(r.row_hit_rate, 1.0);
  EXPECT_GE(r.llc_miss_rate, 0.0);
  EXPECT_LE(r.llc_miss_rate, 1.0);
  EXPECT_GT(r.avg_access_latency, 0.0);
}

}  // namespace
}  // namespace tint::runtime

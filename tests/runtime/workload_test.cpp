#include "runtime/workload.h"

#include "runtime/sim_thread.h"

#include <gtest/gtest.h>

#include <set>

namespace tint::runtime {
namespace {

// ---------------- stream unit tests ----------------

TEST(AlternatingStrideStream, FollowsPaperPattern) {
  // Section V.A: "starts with a write in the middle of our allocation,
  // M, followed by a write to M+1C, M-1C, M+2C, M-2C, ..."
  const unsigned C = 128;
  AlternatingStrideStream s(/*base=*/0, /*bytes=*/16 * C, C);
  const uint64_t M = 8 * C;
  std::vector<os::VirtAddr> seq;
  Op op;
  while (s.next(op)) {
    EXPECT_EQ(op.kind, Op::Kind::kAccess);
    EXPECT_TRUE(op.write);
    seq.push_back(op.va);
  }
  ASSERT_GE(seq.size(), 5u);
  EXPECT_EQ(seq[0], M);
  EXPECT_EQ(seq[1], M + C);
  EXPECT_EQ(seq[2], M - C);
  EXPECT_EQ(seq[3], M + 2 * C);
  EXPECT_EQ(seq[4], M - 2 * C);
}

TEST(AlternatingStrideStream, EachLineExactlyOnce) {
  const unsigned C = 128;
  AlternatingStrideStream s(0, 64 * C, C);
  std::set<os::VirtAddr> seen;
  Op op;
  while (s.next(op)) EXPECT_TRUE(seen.insert(op.va).second);
  EXPECT_EQ(seen.size(), 63u);  // 2*half - 1 lines
}

TEST(AlternatingStrideStream, StaysInBounds) {
  const unsigned C = 128;
  const uint64_t base = 1 << 20, bytes = 32 * C;
  AlternatingStrideStream s(base, bytes, C);
  Op op;
  while (s.next(op)) {
    EXPECT_GE(op.va, base);
    EXPECT_LT(op.va, base + bytes);
  }
}

TEST(StreamingPassStream, SequentialLines) {
  StreamingPassStream s(1000 * 128, 4 * 128, 128, true, 7);
  Op op;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(s.next(op));
    EXPECT_EQ(op.va, (1000 + i) * 128u);
    EXPECT_EQ(op.cycles, 7u);
    EXPECT_TRUE(op.write);
  }
  EXPECT_FALSE(s.next(op));
}

TEST(ComputeStream, SlicesTotal) {
  ComputeStream s(2500, 1000);
  Cycles total = 0;
  Op op;
  while (s.next(op)) {
    EXPECT_EQ(op.kind, Op::Kind::kCompute);
    total += op.cycles;
  }
  EXPECT_EQ(total, 2500u);
}

TEST(MixedKernelStream, IssuesExactBudget) {
  MixedKernelParams p;
  p.private_base = 0;
  p.private_bytes = 1 << 20;
  p.accesses = 1000;
  MixedKernelStream s(p, 1);
  Op op;
  uint64_t n = 0;
  while (s.next(op)) ++n;
  EXPECT_EQ(n, 1000u);
}

TEST(MixedKernelStream, RespectsRegionBounds) {
  MixedKernelParams p;
  p.private_base = 1 << 30;
  p.private_bytes = 1 << 20;
  p.shared_base = 1 << 28;
  p.shared_bytes = 1 << 19;
  p.hot_bytes = 1 << 16;
  p.hot_fraction = 0.3;
  p.shared_fraction = 0.2;
  p.accesses = 5000;
  MixedKernelStream s(p, 2);
  Op op;
  while (s.next(op)) {
    const bool in_priv =
        op.va >= p.private_base && op.va < p.private_base + p.private_bytes;
    const bool in_shared =
        op.va >= p.shared_base && op.va < p.shared_base + p.shared_bytes;
    EXPECT_TRUE(in_priv || in_shared);
    if (in_shared) {
      EXPECT_FALSE(op.write);  // shared input is read-only
    }
  }
}

TEST(MixedKernelStream, SharedFractionRoughlyHonored) {
  MixedKernelParams p;
  p.private_base = 0;
  p.private_bytes = 1 << 20;
  p.shared_base = 1 << 30;
  p.shared_bytes = 1 << 20;
  p.shared_fraction = 0.25;
  p.accesses = 20000;
  MixedKernelStream s(p, 3);
  Op op;
  uint64_t shared = 0;
  while (s.next(op)) shared += op.va >= (1ULL << 30) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(shared) / 20000.0, 0.25, 0.02);
}

TEST(MixedKernelStream, WriteFractionRoughlyHonored) {
  MixedKernelParams p;
  p.private_base = 0;
  p.private_bytes = 1 << 20;
  p.write_fraction = 0.4;
  p.accesses = 20000;
  MixedKernelStream s(p, 4);
  Op op;
  uint64_t writes = 0;
  while (s.next(op)) writes += op.write ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(writes) / 20000.0, 0.4, 0.02);
}

TEST(MixedKernelStream, DeterministicPerSeed) {
  MixedKernelParams p;
  p.private_base = 0;
  p.private_bytes = 1 << 20;
  p.hot_bytes = 1 << 16;
  p.hot_fraction = 0.5;
  p.accesses = 500;
  MixedKernelStream a(p, 42), b(p, 42), c(p, 43);
  Op oa, ob, oc;
  bool diverged = false;
  for (int i = 0; i < 500; ++i) {
    a.next(oa);
    b.next(ob);
    c.next(oc);
    EXPECT_EQ(oa.va, ob.va);
    EXPECT_EQ(oa.write, ob.write);
    diverged |= oa.va != oc.va;
  }
  EXPECT_TRUE(diverged);
}

TEST(PointerChaseStream, VisitsManyDistinctLinesDeterministically) {
  PointerChaseStream a(0, 64 << 10, 128, 1000, 5);
  PointerChaseStream b(0, 64 << 10, 128, 1000, 5);
  PointerChaseStream c(0, 64 << 10, 128, 1000, 6);
  std::set<os::VirtAddr> seen;
  Op oa, ob, oc;
  bool diverged = false;
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(a.next(oa));
    ASSERT_TRUE(b.next(ob));
    ASSERT_TRUE(c.next(oc));
    EXPECT_EQ(oa.va, ob.va);
    EXPECT_FALSE(oa.write);
    EXPECT_LT(oa.va, 64u << 10);
    seen.insert(oa.va);
    diverged |= oa.va != oc.va;
  }
  EXPECT_FALSE(a.next(oa));  // budget exhausted
  EXPECT_GT(seen.size(), 200u);  // long orbit, not a short cycle
  EXPECT_TRUE(diverged);
}

TEST(PointerChaseStream, DependentLoadsExposeFullLatency) {
  // A chase over a DRAM-resident region has higher average latency than
  // a sequential stream of the same length (no row-buffer streaks).
  core::Session s(core::MachineConfig::tiny());
  const os::TaskId t = s.create_task(0);
  const os::VirtAddr p = s.heap(t).malloc(2 << 20);
  // Fault everything in first.
  hw::Cycles now = 0;
  for (uint64_t off = 0; off < (2ULL << 20); off += 4096)
    now += s.touch_and_access(t, p + off, true, now);
  ParallelEngine engine(s);
  const os::TaskId tasks[] = {t};
  PointerChaseStream chase(p, 2 << 20, 128, 4000, 3);
  OpStream* cp = &chase;
  const auto chase_time =
      engine.run_parallel({tasks, 1}, {&cp, 1}, now).duration();
  StreamingPassStream stream(p, 4000 * 128, 128, false, 0);
  OpStream* sp = &stream;
  const auto stream_time =
      engine.run_parallel({tasks, 1}, {&sp, 1}, now + chase_time).duration();
  EXPECT_GT(chase_time, stream_time);
}

// ---------------- spec sanity ----------------

TEST(WorkloadSpecs, SuiteHasPaperBenchmarks) {
  const auto suite = standard_suite();
  ASSERT_EQ(suite.size(), 6u);
  std::set<std::string> names;
  for (const auto& s : suite) names.insert(s.name);
  for (const char* expect : {"lbm", "art", "equake", "bodytrack", "freqmine",
                             "blackscholes"})
    EXPECT_EQ(names.count(expect), 1u) << expect;
}

TEST(WorkloadSpecs, TraitsMatchPaperCharacterization) {
  // lbm: most memory-intensive (lowest compute per access, no hot set).
  for (const auto& s : standard_suite()) {
    EXPECT_GE(lbm_spec().accesses_per_round, 1000u);
    EXPECT_LE(lbm_spec().compute_per_access, s.compute_per_access)
        << s.name << " should not be more memory-bound than lbm";
  }
  // blackscholes: least memory intensive, master-heavy.
  EXPECT_GT(blackscholes_spec().compute_per_access,
            2 * lbm_spec().compute_per_access);
  EXPECT_GT(blackscholes_spec().serial_accesses_per_round, 0u);
  // freqmine: biggest per-thread heap (overflow mechanism).
  for (const auto& s : standard_suite())
    EXPECT_LE(s.private_bytes, freqmine_spec().private_bytes);
  // equake: intrinsic imbalance.
  EXPECT_GT(equake_spec().imbalance, 0.0);
}

TEST(WorkloadSpecs, ScaledShrinksWork) {
  const WorkloadSpec s = lbm_spec().scaled(0.1);
  EXPECT_LT(s.private_bytes, lbm_spec().private_bytes);
  EXPECT_LT(s.accesses_per_round, lbm_spec().accesses_per_round);
  EXPECT_EQ(s.rounds, lbm_spec().rounds);
  EXPECT_EQ(s.private_bytes % 4096, 0u);
}

TEST(WorkloadSpecs, ScaledClampsHotToPrivate) {
  WorkloadSpec s = art_spec();
  s.hot_bytes = s.private_bytes;
  const WorkloadSpec t = s.scaled(0.03);
  EXPECT_LE(t.hot_bytes, t.private_bytes);
}

// ---------------- runner smoke (tiny machine, tiny spec) ----------------

WorkloadSpec tiny_spec() {
  WorkloadSpec s;
  s.name = "tiny";
  s.private_bytes = 256 << 10;
  s.shared_bytes = 64 << 10;
  s.hot_bytes = 32 << 10;
  s.hot_fraction = 0.5;
  s.shared_fraction = 0.1;
  s.write_fraction = 0.3;
  s.compute_per_access = 20;
  s.rounds = 2;
  s.accesses_per_round = 2000;
  return s;
}

TEST(WorkloadRunner, ProducesConsistentResult) {
  WorkloadRunner runner(core::MachineConfig::tiny());
  const std::vector<unsigned> cores = {0, 1, 2, 3};
  const RunResult r = runner.run(tiny_spec(), core::Policy::kBuddy, cores, 7);
  EXPECT_EQ(r.threads, 4u);
  EXPECT_GT(r.total_runtime, 0u);
  EXPECT_EQ(r.thread_busy.size(), 4u);
  EXPECT_EQ(r.thread_idle.size(), 4u);
  EXPECT_GT(r.pages_touched, 4 * (256u << 10) / 4096 - 8);
  for (unsigned t = 0; t < 4; ++t)
    EXPECT_LE(r.thread_busy[t], r.total_runtime);
}

TEST(WorkloadRunner, ColoredRunHasColoredPages) {
  WorkloadRunner runner(core::MachineConfig::tiny());
  const std::vector<unsigned> cores = {0, 1, 2, 3};
  const RunResult r = runner.run(tiny_spec(), core::Policy::kMemLlc, cores, 7);
  EXPECT_GT(r.colored_pages, r.pages_touched / 2);
  EXPECT_LT(r.dram_remote_fraction, 0.2);
}

TEST(WorkloadRunner, BuddyHasRemoteTraffic) {
  WorkloadRunner runner(core::MachineConfig::tiny());
  const std::vector<unsigned> cores = {0, 1, 2, 3};
  const RunResult r = runner.run(tiny_spec(), core::Policy::kBuddy, cores, 7);
  EXPECT_GT(r.dram_remote_fraction, 0.03);
  EXPECT_EQ(r.colored_pages, 0u);
}

TEST(RunSynthetic, ReturnsPositiveAndColoredIsLocal) {
  const auto mc = core::MachineConfig::tiny();
  const std::vector<unsigned> cores = {0, 1, 2, 3};
  const auto buddy =
      run_synthetic(mc, core::Policy::kBuddy, cores, 128 << 10, 5);
  const auto colored =
      run_synthetic(mc, core::Policy::kMemLlc, cores, 128 << 10, 5);
  EXPECT_GT(buddy.cycles, 0u);
  EXPECT_GT(colored.cycles, 0u);
  EXPECT_LT(colored.dram_remote_fraction, 0.05);
}

}  // namespace
}  // namespace tint::runtime

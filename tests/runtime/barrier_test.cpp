#include "runtime/barrier.h"

#include <gtest/gtest.h>

namespace tint::runtime {
namespace {

SectionTiming section(Cycles start, std::vector<Cycles> ends) {
  SectionTiming s;
  s.start = start;
  s.end = std::move(ends);
  return s;
}

TEST(SectionTiming, MaxMinAndDuration) {
  const SectionTiming s = section(100, {150, 200, 180});
  EXPECT_EQ(s.max_end(), 200u);
  EXPECT_EQ(s.min_end(), 150u);
  EXPECT_EQ(s.duration(), 100u);
}

TEST(SectionTiming, IdlePerAlgorithm3) {
  // Algorithm 3 line 10: idle[tid] = max - end[tid].
  const SectionTiming s = section(0, {150, 200, 180});
  EXPECT_EQ(s.idle(0), 50u);
  EXPECT_EQ(s.idle(1), 0u);  // last arriver never waits
  EXPECT_EQ(s.idle(2), 20u);
}

TEST(SectionTiming, BusyIsEndMinusStart) {
  const SectionTiming s = section(100, {150, 200});
  EXPECT_EQ(s.busy(0), 50u);
  EXPECT_EQ(s.busy(1), 100u);
}

TEST(BarrierLedger, AccumulatesAcrossSections) {
  BarrierLedger ledger(2);
  ledger.add_section(section(0, {100, 150}));
  ledger.add_section(section(150, {250, 170}));
  EXPECT_EQ(ledger.sections(), 2u);
  EXPECT_EQ(ledger.thread_busy(0), 100u + 100u);
  EXPECT_EQ(ledger.thread_busy(1), 150u + 20u);
  EXPECT_EQ(ledger.thread_idle(0), 50u + 0u);
  EXPECT_EQ(ledger.thread_idle(1), 0u + 80u);
  EXPECT_EQ(ledger.total_idle(), 130u);
  EXPECT_EQ(ledger.total_parallel_time(), 150u + 100u);
}

TEST(BarrierLedger, MaxMinQueries) {
  BarrierLedger ledger(3);
  ledger.add_section(section(0, {10, 30, 20}));
  EXPECT_EQ(ledger.max_thread_busy(), 30u);
  EXPECT_EQ(ledger.min_thread_busy(), 10u);
  EXPECT_EQ(ledger.max_thread_idle(), 20u);
}

TEST(BarrierLedger, BalancedSectionHasZeroIdle) {
  BarrierLedger ledger(4);
  ledger.add_section(section(10, {110, 110, 110, 110}));
  EXPECT_EQ(ledger.total_idle(), 0u);
  EXPECT_EQ(ledger.max_thread_idle(), 0u);
}

TEST(BarrierLedger, TotalIdleEqualsSumOverThreads) {
  BarrierLedger ledger(3);
  ledger.add_section(section(0, {5, 9, 7}));
  Cycles sum = 0;
  for (unsigned t = 0; t < 3; ++t) sum += ledger.thread_idle(t);
  EXPECT_EQ(ledger.total_idle(), sum);
}

TEST(BarrierLedgerDeathTest, MismatchedWidthAborts) {
  BarrierLedger ledger(2);
  EXPECT_DEATH(ledger.add_section(section(0, {1, 2, 3})), "");
}

TEST(BarrierLedgerDeathTest, EndBeforeStartAborts) {
  BarrierLedger ledger(1);
  EXPECT_DEATH(ledger.add_section(section(100, {50})), "");
}

}  // namespace
}  // namespace tint::runtime

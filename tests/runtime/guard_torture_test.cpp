// Real-thread torture of the ColorGuard: the watchdog runs on its
// background thread (start/stop) while workers fault, migrate and unmap
// colored VMAs, a healer forces re-color storms through start_heal, and
// a chaos thread alternates stop-the-world invariant walks, node
// offline/online toggles and migration failpoints. The guard must never
// deadlock against the kernel's lock order (kGuard is the outermost
// rank), never strand a tenant between two color sets, and leave frame
// accounting exact. Runs under the TSan preset via the `concurrency`
// label (ctest -L concurrency).
#include "runtime/color_guard.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "hw/pci_config.h"
#include "os/kernel.h"
#include "sim/memory_system.h"
#include "util/rng.h"

namespace tint::runtime {
namespace {

constexpr unsigned kWorkers = 4;

TEST(GuardTortureTest, RecolorStormVsFaultsStwAndHotplug) {
  const hw::Topology topo = hw::Topology::tiny();
  const hw::PciConfig pci = hw::PciConfig::program_bios(topo);
  const hw::AddressMapping map(pci, topo);
  os::Kernel k(topo, map, {}, 42);
  // The simulation is idle for the whole storm (nothing advances it), so
  // the guard's background sampling only ever reads quiescent counters;
  // heals are forced through start_heal instead of the detector.
  sim::MemorySystem memsys(topo, map);

  GuardConfig gcfg;
  gcfg.enabled = true;
  gcfg.migration_budget = 64;
  gcfg.cooldown_epochs = 1;
  gcfg.max_heal_failures = 2;
  // A single failed allocation anywhere would suppress epochs for good
  // measure -- leave the defaults; suppression running concurrently with
  // the node toggles is part of the point.
  ColorGuard guard(k, memsys, gcfg);

  const uint64_t page = topo.page_bytes();
  std::vector<os::TaskId> tasks;
  for (unsigned i = 0; i < kWorkers; ++i) {
    const os::TaskId t = k.create_task(i % topo.num_cores());
    const unsigned node = topo.node_of_core(i % topo.num_cores());
    const unsigned bpn = map.banks_per_node();
    // Two local banks each, overlapping the neighbour's pair, so forced
    // heals always have real collisions to chew on.
    k.mmap(t, map.make_bank_color(node, (2 * i) % bpn) | os::SET_MEM_COLOR, 0,
           os::PROT_COLOR_ALLOC);
    k.mmap(t,
           map.make_bank_color(node, (2 * i + 1) % bpn) | os::SET_MEM_COLOR,
           0, os::PROT_COLOR_ALLOC);
    tasks.push_back(t);
  }

  guard.start(std::chrono::milliseconds(1));

  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (unsigned ti = 0; ti < kWorkers; ++ti) {
    threads.emplace_back([&, ti] {
      const os::TaskId task = tasks[ti];
      Rng rng(4200 + ti);
      for (unsigned iter = 0; iter < 10; ++iter) {
        const uint64_t pages = 8 + rng.next_below(16);
        const os::VirtAddr base = k.mmap(task, 0, pages * page, 0);
        ASSERT_NE(base, os::kMmapFailed);
        for (unsigned round = 0; round < 4; ++round) {
          for (uint64_t p = 0; p < pages; ++p)
            k.touch(task, base + p * page, rng.next_bool(0.5));
          // Worker-side migrations race the guard's heal migrations on
          // the same VMAs; kMigrationRace on either side is the benign
          // outcome.
          k.migrate_page(base + rng.next_below(pages) * page);
        }
        ASSERT_TRUE(k.munmap(task, base, pages * page));
      }
    });
  }
  threads.emplace_back([&] {  // healer: forced re-color storm
    Rng rng(77);
    while (!stop.load(std::memory_order_acquire)) {
      const os::TaskId t = tasks[rng.next_below(kWorkers)];
      const auto colors = k.task(t).mem_color_list();
      if (!colors.empty())
        guard.start_heal(t, colors[rng.next_below(colors.size())]);
      guard.tenant_phase(t);  // concurrent observer
      std::this_thread::yield();
    }
  });
  threads.emplace_back([&] {  // chaos: STW walks, hotplug, failpoints
    Rng rng(99);
    while (!stop.load(std::memory_order_acquire)) {
      switch (rng.next_below(4)) {
        case 0: {
          const auto rep = k.check_invariants(0, /*stop_the_world=*/true);
          ASSERT_TRUE(rep.ok) << rep.detail;
          break;
        }
        case 1:
          k.set_node_online(1, false);
          std::this_thread::yield();
          k.set_node_online(1, true);
          break;
        case 2:
          k.failpoints().arm(os::FailPoint::kMigrateTarget,
                             os::FailSpec::probability(0.3));
          std::this_thread::yield();
          k.failpoints().disarm(os::FailPoint::kMigrateTarget);
          break;
        default:
          k.scrub();
          break;
      }
    }
  });

  for (unsigned ti = 0; ti < kWorkers; ++ti) threads[ti].join();
  stop.store(true, std::memory_order_release);
  threads[kWorkers].join();
  threads[kWorkers + 1].join();
  guard.stop();
  k.failpoints().disarm_all();
  k.set_node_online(1, true);

  // No tenant is stranded mid-swap: every surviving colored mapping's
  // bank color is in its owner's *current* set.
  for (const auto& [vpn, pfn] : k.page_table().mappings()) {
    const os::PageInfo& pi = k.pages()[pfn];
    if (pi.colored_alloc && pi.owner != os::kNoTask)
      EXPECT_TRUE(k.task(pi.owner).has_mem_color(pi.bank_color)) << vpn;
  }
  // Guard-internal books are consistent with themselves.
  const auto gs = guard.stats().snapshot();
  EXPECT_GE(gs.heals_started, gs.heals_completed + gs.rollbacks);
  EXPECT_GT(gs.epochs_run, 0u);

  // Frame conservation holds after the storm.
  const auto rep = k.check_invariants();
  EXPECT_TRUE(rep.ok) << rep.detail;
}

}  // namespace
}  // namespace tint::runtime

// Real-thread torture of the ColorGuard: the watchdog runs on its
// background thread (start/stop) while workers fault, migrate and unmap
// colored VMAs, a healer forces re-color storms through start_heal, and
// a chaos thread alternates stop-the-world invariant walks, node
// offline/online toggles and migration failpoints. The guard must never
// deadlock against the kernel's lock order (kGuard is the outermost
// rank), never strand a tenant between two color sets, and leave frame
// accounting exact. Runs under the TSan preset via the `concurrency`
// label (ctest -L concurrency).
#include "runtime/color_guard.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "hw/pci_config.h"
#include "os/kernel.h"
#include "runtime/admission.h"
#include "sim/memory_system.h"
#include "util/rng.h"

namespace tint::runtime {
namespace {

constexpr unsigned kWorkers = 4;

TEST(GuardTortureTest, RecolorStormVsFaultsStwAndHotplug) {
  const hw::Topology topo = hw::Topology::tiny();
  const hw::PciConfig pci = hw::PciConfig::program_bios(topo);
  const hw::AddressMapping map(pci, topo);
  os::Kernel k(topo, map, {}, 42);
  // The simulation is idle for the whole storm (nothing advances it), so
  // the guard's background sampling only ever reads quiescent counters;
  // heals are forced through start_heal instead of the detector.
  sim::MemorySystem memsys(topo, map);

  GuardConfig gcfg;
  gcfg.enabled = true;
  gcfg.migration_budget = 64;
  gcfg.cooldown_epochs = 1;
  gcfg.max_heal_failures = 2;
  // A single failed allocation anywhere would suppress epochs for good
  // measure -- leave the defaults; suppression running concurrently with
  // the node toggles is part of the point.
  ColorGuard guard(k, memsys, gcfg);

  const uint64_t page = topo.page_bytes();
  std::vector<os::TaskId> tasks;
  for (unsigned i = 0; i < kWorkers; ++i) {
    const os::TaskId t = k.create_task(i % topo.num_cores());
    const unsigned node = topo.node_of_core(i % topo.num_cores());
    const unsigned bpn = map.banks_per_node();
    // Two local banks each, overlapping the neighbour's pair, so forced
    // heals always have real collisions to chew on.
    k.mmap(t, map.make_bank_color(node, (2 * i) % bpn) | os::SET_MEM_COLOR, 0,
           os::PROT_COLOR_ALLOC);
    k.mmap(t,
           map.make_bank_color(node, (2 * i + 1) % bpn) | os::SET_MEM_COLOR,
           0, os::PROT_COLOR_ALLOC);
    tasks.push_back(t);
  }

  guard.start(std::chrono::milliseconds(1));

  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (unsigned ti = 0; ti < kWorkers; ++ti) {
    threads.emplace_back([&, ti] {
      const os::TaskId task = tasks[ti];
      Rng rng(4200 + ti);
      for (unsigned iter = 0; iter < 10; ++iter) {
        const uint64_t pages = 8 + rng.next_below(16);
        const os::VirtAddr base = k.mmap(task, 0, pages * page, 0);
        ASSERT_NE(base, os::kMmapFailed);
        for (unsigned round = 0; round < 4; ++round) {
          for (uint64_t p = 0; p < pages; ++p)
            k.touch(task, base + p * page, rng.next_bool(0.5));
          // Worker-side migrations race the guard's heal migrations on
          // the same VMAs; kMigrationRace on either side is the benign
          // outcome.
          k.migrate_page(base + rng.next_below(pages) * page);
        }
        ASSERT_TRUE(k.munmap(task, base, pages * page));
      }
    });
  }
  threads.emplace_back([&] {  // healer: forced re-color storm
    Rng rng(77);
    while (!stop.load(std::memory_order_acquire)) {
      const os::TaskId t = tasks[rng.next_below(kWorkers)];
      const auto colors = k.task(t).mem_color_list();
      if (!colors.empty())
        guard.start_heal(t, colors[rng.next_below(colors.size())]);
      guard.tenant_phase(t);  // concurrent observer
      std::this_thread::yield();
    }
  });
  threads.emplace_back([&] {  // chaos: STW walks, hotplug, failpoints
    Rng rng(99);
    while (!stop.load(std::memory_order_acquire)) {
      switch (rng.next_below(4)) {
        case 0: {
          const auto rep = k.check_invariants(0, /*stop_the_world=*/true);
          ASSERT_TRUE(rep.ok) << rep.detail;
          break;
        }
        case 1:
          k.set_node_online(1, false);
          std::this_thread::yield();
          k.set_node_online(1, true);
          break;
        case 2:
          k.failpoints().arm(os::FailPoint::kMigrateTarget,
                             os::FailSpec::probability(0.3));
          std::this_thread::yield();
          k.failpoints().disarm(os::FailPoint::kMigrateTarget);
          break;
        default:
          k.scrub();
          break;
      }
    }
  });

  for (unsigned ti = 0; ti < kWorkers; ++ti) threads[ti].join();
  stop.store(true, std::memory_order_release);
  threads[kWorkers].join();
  threads[kWorkers + 1].join();
  guard.stop();
  k.failpoints().disarm_all();
  k.set_node_online(1, true);

  // No tenant is stranded mid-swap: every surviving colored mapping's
  // bank color is in its owner's *current* set.
  for (const auto& [vpn, pfn] : k.page_table().mappings()) {
    const os::PageInfo& pi = k.pages()[pfn];
    if (pi.colored_alloc && pi.owner != os::kNoTask) {
      EXPECT_TRUE(k.task(pi.owner).has_mem_color(pi.bank_color)) << vpn;
    }
  }
  // Guard-internal books are consistent with themselves.
  const auto gs = guard.stats().snapshot();
  EXPECT_GE(gs.heals_started, gs.heals_completed + gs.rollbacks);
  EXPECT_GT(gs.epochs_run, 0u);

  // Frame conservation holds after the storm.
  const auto rep = k.check_invariants();
  EXPECT_TRUE(rep.ok) << rep.detail;
}

// Shrink storm through the full elastic stack: workers churn tenants
// through an AdmissionController with every elastic on (shrink-on-
// admit, deadline waitlist, promotion) while a shrinker thread fires
// guard.start_shrink at *arbitrary* TaskIds -- live, dead and never-
// allocated alike -- and the background watchdog advances the page
// dribbles. A dedicated reader thread hammers the lock-free stats
// snapshots the whole time and asserts per-counter monotonicity: under
// TSan this is the torn-read audit for GuardStats and AdmissionStats.
TEST(GuardTortureTest, ShrinkStormKeepsSnapshotsMonotonicAndFramesExact) {
  const hw::Topology topo = hw::Topology::tiny();
  const hw::PciConfig pci = hw::PciConfig::program_bios(topo);
  const hw::AddressMapping map(pci, topo);
  os::Kernel k(topo, map, {}, 43);
  sim::MemorySystem memsys(topo, map);

  GuardConfig gcfg;
  gcfg.enabled = true;
  gcfg.min_epoch_accesses = ~0ull;  // no detector: every op is forced
  gcfg.migration_budget = 64;
  gcfg.cooldown_epochs = 1;
  ColorGuard guard(k, memsys, gcfg);

  AdmissionConfig acfg;
  acfg.elastic_shrink = true;
  acfg.waitlist = true;
  acfg.waitlist_deadline_ticks = 6;
  acfg.promote_downgraded = true;
  AdmissionController adm(k, memsys, acfg);
  adm.bind_guard(&guard);

  guard.start(std::chrono::milliseconds(1));
  const uint64_t page = topo.page_bytes();
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;

  for (unsigned ti = 0; ti < kWorkers; ++ti) {
    threads.emplace_back([&, ti] {
      Rng rng(8800 + ti);
      for (unsigned iter = 0; iter < 40; ++iter) {
        const double draw = rng.next_double();
        const TenantClass cls = draw < 0.4 ? TenantClass::kGuaranteed
                                : draw < 0.7 ? TenantClass::kBurstable
                                             : TenantClass::kBestEffort;
        AdmissionTicket t = adm.admit(cls, 4);
        if (t.waitlisted) {
          // Poll a few times; whatever has not landed is abandoned --
          // cancel_wait must clean up pending *and* ready states.
          bool claimed = false;
          for (unsigned poll = 0; poll < 4 && !claimed; ++poll) {
            const auto w = adm.claim(t.wait_id);
            if (w.state == AdmissionController::WaitOutcome::State::kReady) {
              t = w.ticket;
              claimed = true;
            } else if (w.state ==
                       AdmissionController::WaitOutcome::State::kGone) {
              break;
            } else {
              adm.observe();  // drive retries + expiries forward
              std::this_thread::yield();
            }
          }
          if (!claimed) {
            adm.cancel_wait(t.wait_id);
            continue;
          }
        }
        if (!t.admitted) continue;
        const uint64_t pages = 2 + rng.next_below(6);
        const os::VirtAddr base = k.mmap(t.task, 0, pages * page, 0);
        if (base != os::kMmapFailed) {
          for (uint64_t p = 0; p < pages; ++p)
            k.touch(t.task, base + p * page, rng.next_bool(0.5));
        }
        if (rng.next_bool(0.25)) adm.observe();
        EXPECT_TRUE(adm.teardown(t.task).known);
      }
    });
  }
  threads.emplace_back([&] {  // shrinker: arbitrary TaskIds, no courtesy
    Rng rng(171);
    while (!stop.load(std::memory_order_acquire)) {
      const os::TaskId t = static_cast<os::TaskId>(
          rng.next_below(std::max<uint64_t>(1, k.num_tasks() + 2)));
      guard.start_shrink(t, 1 + rng.next_below(3), 1);
      guard.tenant_phase(t);  // concurrent observer
      std::this_thread::yield();
    }
  });
  threads.emplace_back([&] {  // snapshot reader: the torn-read audit
    GuardStats::Snapshot g0 = guard.stats().snapshot();
    AdmissionStats::Snapshot a0 = adm.stats().snapshot();
    while (!stop.load(std::memory_order_acquire)) {
      const GuardStats::Snapshot g1 = guard.stats().snapshot();
      const AdmissionStats::Snapshot a1 = adm.stats().snapshot();
      EXPECT_GE(g1.epochs_run, g0.epochs_run);
      EXPECT_GE(g1.heals_started, g0.heals_started);
      EXPECT_GE(g1.shrinks_started, g0.shrinks_started);
      EXPECT_GE(g1.shrinks_completed, g0.shrinks_completed);
      EXPECT_GE(g1.shrink_colors_dropped, g0.shrink_colors_dropped);
      EXPECT_GE(g1.shrink_rollbacks, g0.shrink_rollbacks);
      EXPECT_GE(g1.stale_tenant_skips, g0.stale_tenant_skips);
      EXPECT_GE(g1.pages_recolored, g0.pages_recolored);
      EXPECT_GE(a1.admits, a0.admits);
      EXPECT_GE(a1.rejects, a0.rejects);
      EXPECT_GE(a1.downgrades, a0.downgrades);
      EXPECT_GE(a1.waitlist_enqueued, a0.waitlist_enqueued);
      EXPECT_GE(a1.waitlist_admitted, a0.waitlist_admitted);
      EXPECT_GE(a1.waitlist_expired, a0.waitlist_expired);
      EXPECT_GE(a1.waitlist_cancelled, a0.waitlist_cancelled);
      EXPECT_GE(a1.promotions, a0.promotions);
      EXPECT_GE(a1.shrink_requests, a0.shrink_requests);
      EXPECT_GE(a1.shrink_banks_freed, a0.shrink_banks_freed);
      g0 = g1;
      a0 = a1;
      std::this_thread::yield();
    }
  });

  for (unsigned ti = 0; ti < kWorkers; ++ti) threads[ti].join();
  stop.store(true, std::memory_order_release);
  threads[kWorkers].join();
  threads[kWorkers + 1].join();
  guard.stop();

  // Workers cancelled or tore down everything they admitted; nothing
  // the elastics touched may leak a frame, page or color claim.
  EXPECT_EQ(adm.live_tenants(), 0u);
  const auto gs = guard.stats().snapshot();
  EXPECT_GE(gs.shrinks_started,
            gs.shrinks_completed + gs.shrink_rollbacks);
  const auto inv = k.check_invariants(0, /*stop_the_world=*/true);
  EXPECT_TRUE(inv.ok) << inv.detail;
  EXPECT_EQ(inv.mapped, 0u);
  EXPECT_EQ(inv.loose, 0u);
}

}  // namespace
}  // namespace tint::runtime

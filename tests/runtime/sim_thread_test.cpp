#include "runtime/sim_thread.h"

#include <gtest/gtest.h>

#include <memory>

namespace tint::runtime {
namespace {

// Scripted stream for engine tests.
class ScriptStream final : public OpStream {
 public:
  explicit ScriptStream(std::vector<Op> ops) : ops_(std::move(ops)) {}
  bool next(Op& op) override {
    if (i_ >= ops_.size()) return false;
    op = ops_[i_++];
    return true;
  }

 private:
  std::vector<Op> ops_;
  size_t i_ = 0;
};

Op compute(Cycles c) {
  Op op;
  op.kind = Op::Kind::kCompute;
  op.cycles = c;
  return op;
}

Op access(os::VirtAddr va, bool write = false, Cycles pre = 0) {
  Op op;
  op.kind = Op::Kind::kAccess;
  op.va = va;
  op.write = write;
  op.cycles = pre;
  return op;
}

class EngineTest : public ::testing::Test {
 protected:
  EngineTest() : session_(core::MachineConfig::tiny()), engine_(session_) {}

  core::Session session_;
  ParallelEngine engine_;
};

TEST_F(EngineTest, ComputeOnlyThreadTakesExactCycles) {
  const os::TaskId t = session_.create_task(0);
  ScriptStream s({compute(100), compute(50)});
  OpStream* ptr = &s;
  const os::TaskId tasks[] = {t};
  const SectionTiming st = engine_.run_parallel({tasks, 1}, {&ptr, 1}, 1000);
  EXPECT_EQ(st.start, 1000u);
  EXPECT_EQ(st.end[0], 1150u);
}

TEST_F(EngineTest, AccessAddsMemoryLatency) {
  const os::TaskId t = session_.create_task(0);
  const os::VirtAddr p = session_.heap(t).malloc(4096);
  ScriptStream s({access(p, true)});
  OpStream* ptr = &s;
  const os::TaskId tasks[] = {t};
  const SectionTiming st = engine_.run_parallel({tasks, 1}, {&ptr, 1}, 0);
  EXPECT_GT(st.end[0], 0u);  // fault + DRAM latency
  EXPECT_EQ(engine_.ops_executed(), 1u);
}

TEST_F(EngineTest, PreComputeCyclesCharged) {
  const os::TaskId t = session_.create_task(0);
  const os::VirtAddr p = session_.heap(t).malloc(4096);
  session_.touch_and_access(t, p, true, 0);  // pre-fault and warm caches
  ScriptStream s({access(p, false, 500)});
  OpStream* ptr = &s;
  const os::TaskId tasks[] = {t};
  const SectionTiming st = engine_.run_parallel({tasks, 1}, {&ptr, 1}, 10000);
  // L1 hit after warm-up: 500 compute + l1 latency.
  EXPECT_EQ(st.end[0], 10000 + 500 + session_.config().timing.l1_hit);
}

TEST_F(EngineTest, ThreadsRunConcurrentlyNotSequentially) {
  const os::TaskId a = session_.create_task(0);
  const os::TaskId b = session_.create_task(1);
  ScriptStream sa({compute(1000)});
  ScriptStream sb({compute(1000)});
  OpStream* ptrs[] = {&sa, &sb};
  const os::TaskId tasks[] = {a, b};
  const SectionTiming st = engine_.run_parallel({tasks, 2}, {ptrs, 2}, 0);
  EXPECT_EQ(st.end[0], 1000u);
  EXPECT_EQ(st.end[1], 1000u);
  EXPECT_EQ(st.duration(), 1000u);  // parallel, not 2000
}

TEST_F(EngineTest, InterleavingIsEarliestFirst) {
  // Thread B's accesses at early times must be processed before thread
  // A's later ones; we verify via bank contention: two threads hammering
  // the same line serialize at the bank, so the slower thread's end time
  // exceeds the solo run.
  const os::TaskId a = session_.create_task(0);
  const os::TaskId b = session_.create_task(1);
  const os::VirtAddr pa = session_.heap(a).malloc(4096);

  std::vector<Op> ops_a, ops_b;
  for (int i = 0; i < 64; ++i) {
    ops_a.push_back(access(pa, false));
    ops_b.push_back(access(pa, false));
  }
  ScriptStream sa(ops_a), sb(ops_b);
  OpStream* ptrs[] = {&sa, &sb};
  const os::TaskId tasks[] = {a, b};
  const SectionTiming st = engine_.run_parallel({tasks, 2}, {ptrs, 2}, 0);
  EXPECT_GT(st.max_end(), 0u);
  EXPECT_EQ(engine_.ops_executed(), 128u);
}

TEST_F(EngineTest, RunSerialAdvancesSingleThread) {
  const os::TaskId t = session_.create_task(0);
  ScriptStream s({compute(10), compute(20), compute(30)});
  const Cycles end = engine_.run_serial(t, s, 500);
  EXPECT_EQ(end, 560u);
}

TEST_F(EngineTest, EmptyStreamFinishesImmediately) {
  const os::TaskId t = session_.create_task(0);
  ScriptStream s({});
  OpStream* ptr = &s;
  const os::TaskId tasks[] = {t};
  const SectionTiming st = engine_.run_parallel({tasks, 1}, {&ptr, 1}, 42);
  EXPECT_EQ(st.end[0], 42u);
}

TEST_F(EngineTest, UnevenStreamsYieldIdle) {
  const os::TaskId a = session_.create_task(0);
  const os::TaskId b = session_.create_task(1);
  ScriptStream sa({compute(100)});
  ScriptStream sb({compute(300)});
  OpStream* ptrs[] = {&sa, &sb};
  const os::TaskId tasks[] = {a, b};
  const SectionTiming st = engine_.run_parallel({tasks, 2}, {ptrs, 2}, 0);
  EXPECT_EQ(st.idle(0), 200u);
  EXPECT_EQ(st.idle(1), 0u);
}

}  // namespace
}  // namespace tint::runtime

// Unit tests for the ColorGuard watchdog (runtime/color_guard.h):
// detector hysteresis, the manual heal path, migration budgets, backoff
// and rollback after hard failures, pressure suppression, the collision
// rules (>= 2 live holders, victim by policy: measured-cheapest with
// priority shielding, or legacy newest), and the stale-tenant hardening
// (a holder that exits between sample and heal is skipped, an in-flight
// heal of an exiting tenant is cancelled). Everything here drives
// run_epoch() by hand for determinism; the background-thread mode is
// exercised by guard_torture_test.cpp, and the end-to-end two-tenant
// heal by integration/recolor_heal_test.cpp.
#include "runtime/color_guard.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "hw/pci_config.h"
#include "os/kernel.h"
#include "sim/memory_system.h"

namespace tint::runtime {
namespace {

class ColorGuardTest : public ::testing::Test {
 protected:
  ColorGuardTest()
      : topo_(hw::Topology::tiny()),
        pci_(hw::PciConfig::program_bios(topo_)),
        map_(pci_, topo_),
        memsys_(topo_, map_) {}

  os::Kernel make_kernel(os::KernelConfig cfg = {}, uint64_t seed = 42) {
    return os::Kernel(topo_, map_, cfg, seed);
  }

  // Claims `color` for `task` (the planner's SET_MEM_COLOR protocol).
  static void claim(os::Kernel& k, os::TaskId t, unsigned color) {
    ASSERT_NE(k.mmap(t, color | os::SET_MEM_COLOR, 0, os::PROT_COLOR_ALLOC),
              os::kMmapFailed);
  }

  // Maps and touches `n` pages for `task`; they land on its claimed color.
  static os::VirtAddr touch_pages(os::Kernel& k, os::TaskId t, unsigned n) {
    const os::VirtAddr base = k.mmap(t, 0, n * 4096ull, 0);
    EXPECT_NE(base, os::kMmapFailed);
    for (unsigned i = 0; i < n; ++i)
      EXPECT_EQ(k.touch(t, base + i * 4096ull, true).error,
                os::AllocError::kOk);
    return base;
  }

  // Row-conflict storm on one bank color: walks that bank's frames in
  // row-alternating order (each access opens a different row than the
  // previous one), on a fresh cache line per round, so every access
  // reaches DRAM and (almost) every one is a precharge conflict -- the
  // epoch's conflict rate approaches 1.0.
  hw::Cycles heat_bank(unsigned color, unsigned accesses, hw::Cycles now) {
    std::vector<hw::PhysAddr>& fs = heat_frames_[color];
    if (fs.empty()) {
      const uint64_t total = map_.num_nodes() * map_.node_bytes();
      std::map<uint64_t, std::vector<hw::PhysAddr>> by_row;
      for (hw::PhysAddr pa = 0; pa < total; pa += map_.page_bytes())
        if (map_.bank_color(pa) == color)
          by_row[map_.decode(pa).row].push_back(pa);
      // Round-robin across the rows so consecutive accesses always open
      // a different row than the one the bank has active.
      for (size_t i = 0, more = 1; more; ++i) {
        more = 0;
        for (auto& [row, v] : by_row)
          if (i < v.size()) {
            fs.push_back(v[i]);
            more = 1;
          }
      }
    }
    EXPECT_GE(fs.size(), accesses);  // one fresh address per access
    const uint64_t line = 256ull * heat_round_[color]++;  // uncached lines
    for (unsigned i = 0; i < accesses && i < fs.size(); ++i)
      now += memsys_.access(0, fs[i] + line % 4096, false, now);
    return now;
  }

  hw::Topology topo_;
  hw::PciConfig pci_;
  hw::AddressMapping map_;
  sim::MemorySystem memsys_;
  std::map<unsigned, std::vector<hw::PhysAddr>> heat_frames_;
  std::map<unsigned, unsigned> heat_round_;
};

// --- detector ---

TEST_F(ColorGuardTest, HysteresisEntersAndExitsThroughTheBands) {
  os::Kernel k = make_kernel();
  ColorGuard guard(k, memsys_);  // default config: observe-only
  const unsigned color = map_.make_bank_color(0, 0);

  // Epoch 1: ~all-conflict traffic. EWMA = 0.4 * ~1.0 crosses hot_enter.
  heat_bank(color, 200, 0);
  guard.run_epoch();
  EXPECT_GT(guard.bank_ewma(color), 0.35);
  EXPECT_TRUE(guard.bank_hot(color));
  EXPECT_EQ(guard.stats().snapshot().hot_colors_detected, 1u);

  // Idle epoch decays to ~0.24: inside the band, so the color STAYS hot
  // (no flapping between the thresholds).
  guard.run_epoch();
  EXPECT_GT(guard.bank_ewma(color), 0.15);
  EXPECT_TRUE(guard.bank_hot(color));

  // Second idle epoch decays to ~0.14, through hot_exit: cools.
  guard.run_epoch();
  EXPECT_LT(guard.bank_ewma(color), 0.15);
  EXPECT_FALSE(guard.bank_hot(color));
  // Cooling is not a second detection.
  EXPECT_EQ(guard.stats().snapshot().hot_colors_detected, 1u);
}

TEST_F(ColorGuardTest, SparseEpochsContributeDecayNotNoise) {
  os::Kernel k = make_kernel();
  GuardConfig cfg;
  cfg.min_epoch_accesses = 64;
  ColorGuard guard(k, memsys_, cfg);
  const unsigned color = map_.make_bank_color(0, 0);

  // 20 conflicting accesses: a 1.0 conflict *ratio* on a sample far too
  // small to trust. The epoch must decay the EWMA, not spike it.
  heat_bank(color, 20, 0);
  guard.run_epoch();
  EXPECT_EQ(guard.bank_ewma(color), 0.0);
  EXPECT_FALSE(guard.bank_hot(color));
}

// --- default-off contract ---

TEST_F(ColorGuardTest, DisabledGuardObservesButNeverMutates) {
  os::Kernel k = make_kernel();
  const os::TaskId t0 = k.create_task(0);
  const os::TaskId t1 = k.create_task(1);
  const unsigned c0 = map_.make_bank_color(0, 0);
  claim(k, t0, c0);
  claim(k, t1, c0);  // genuine collision, hot bank: everything says heal
  touch_pages(k, t1, 4);

  ColorGuard guard(k, memsys_);  // enabled = false
  hw::Cycles now = 0;
  for (unsigned e = 0; e < 4; ++e) {
    now = heat_bank(c0, 200, now);
    guard.run_epoch();
  }
  EXPECT_TRUE(guard.bank_hot(c0));  // the detector saw it...
  const auto gs = guard.stats().snapshot();
  EXPECT_EQ(gs.heals_started, 0u);  // ...and did nothing about it
  EXPECT_EQ(gs.pages_recolored, 0u);
  EXPECT_EQ(k.stats().recolor_calls, 0u);
  EXPECT_TRUE(k.task(t0).has_mem_color(c0));
  EXPECT_TRUE(k.task(t1).has_mem_color(c0));
}

// --- manual heal path ---

TEST_F(ColorGuardTest, ManualHealMigratesPagesThenCoolsDown) {
  os::Kernel k = make_kernel();
  GuardConfig cfg;
  cfg.enabled = true;
  cfg.min_epoch_accesses = ~0ull;  // detector can never fire on its own
  cfg.cooldown_epochs = 2;
  ColorGuard guard(k, memsys_, cfg);

  const os::TaskId t = k.create_task(0);
  const unsigned c0 = map_.make_bank_color(0, 0);
  claim(k, t, c0);
  touch_pages(k, t, 4);

  ASSERT_TRUE(guard.start_heal(t, c0));
  // The swap is immediate and atomic; the pages move in epochs.
  EXPECT_FALSE(k.task(t).has_mem_color(c0));
  EXPECT_EQ(guard.stats().snapshot().heals_started, 1u);
  EXPECT_EQ(guard.tenant_phase(t), ColorGuard::TenantPhase::kMigrating);
  EXPECT_EQ(k.pages_of_task_color(t, c0).size(), 4u);

  // A tenant mid-heal cannot start another.
  EXPECT_FALSE(guard.start_heal(t, c0));

  guard.run_epoch();  // epoch 0: migrates all 4 within the budget
  auto gs = guard.stats().snapshot();
  EXPECT_EQ(gs.pages_recolored, 4u);
  EXPECT_EQ(gs.heals_completed, 1u);
  EXPECT_EQ(gs.migrations_failed, 0u);
  EXPECT_TRUE(k.pages_of_task_color(t, c0).empty());
  const auto colors = k.task(t).mem_color_list();
  ASSERT_EQ(colors.size(), 1u);
  EXPECT_NE(colors[0], c0);
  EXPECT_EQ(k.pages_of_task_color(t, colors[0]).size(), 4u);

  // Cooldown: untouchable for cooldown_epochs after completion.
  EXPECT_EQ(guard.tenant_phase(t), ColorGuard::TenantPhase::kCooldown);
  EXPECT_FALSE(guard.start_heal(t, colors[0]));
  EXPECT_GE(guard.stats().snapshot().cooldown_skips, 1u);
  guard.run_epoch();  // epoch 1: still cooling (until epoch 2)
  EXPECT_EQ(guard.tenant_phase(t), ColorGuard::TenantPhase::kCooldown);
  guard.run_epoch();  // epoch 2: expires
  EXPECT_EQ(guard.tenant_phase(t), ColorGuard::TenantPhase::kIdle);

  const auto rep = k.check_invariants();
  EXPECT_TRUE(rep.ok) << rep.detail;
}

TEST_F(ColorGuardTest, MigrationBudgetDribblesTheHealAcrossEpochs) {
  os::Kernel k = make_kernel();
  GuardConfig cfg;
  cfg.enabled = true;
  cfg.min_epoch_accesses = ~0ull;
  cfg.migration_budget = 2;  // 5 pages: 2 + 2 + 1
  ColorGuard guard(k, memsys_, cfg);

  const os::TaskId t = k.create_task(0);
  const unsigned c0 = map_.make_bank_color(0, 1);
  claim(k, t, c0);
  touch_pages(k, t, 5);
  ASSERT_TRUE(guard.start_heal(t, c0));

  guard.run_epoch();
  EXPECT_EQ(guard.stats().snapshot().pages_recolored, 2u);
  EXPECT_EQ(guard.stats().snapshot().heals_completed, 0u);
  guard.run_epoch();
  EXPECT_EQ(guard.stats().snapshot().pages_recolored, 4u);
  guard.run_epoch();
  const auto gs = guard.stats().snapshot();
  EXPECT_EQ(gs.pages_recolored, 5u);
  EXPECT_EQ(gs.heals_completed, 1u);
  const auto rep = k.check_invariants();
  EXPECT_TRUE(rep.ok) << rep.detail;
}

// --- failure envelope ---

TEST_F(ColorGuardTest, FailedMigrationsBackOffThenRollBack) {
  os::Kernel k = make_kernel();
  GuardConfig cfg;
  cfg.enabled = true;
  cfg.min_epoch_accesses = ~0ull;
  cfg.max_heal_failures = 1;  // second hard failure rolls back
  cfg.backoff_base_epochs = 1;
  cfg.cooldown_epochs = 2;
  ColorGuard guard(k, memsys_, cfg);

  const os::TaskId t = k.create_task(0);
  const unsigned c0 = map_.make_bank_color(0, 0);
  claim(k, t, c0);
  touch_pages(k, t, 3);
  ASSERT_TRUE(guard.start_heal(t, c0));
  const auto healed = k.task(t).mem_color_list();
  ASSERT_EQ(healed.size(), 1u);
  const unsigned c1 = healed[0];

  k.failpoints().arm(os::FailPoint::kMigrateTarget, os::FailSpec::always());
  guard.run_epoch();  // epoch 0: first attempt fails -> backoff to epoch 2
  auto gs = guard.stats().snapshot();
  EXPECT_EQ(gs.migrations_failed, 1u);
  EXPECT_EQ(gs.rollbacks, 0u);
  EXPECT_EQ(guard.tenant_phase(t), ColorGuard::TenantPhase::kMigrating);

  guard.run_epoch();  // epoch 1: gated by the backoff -- no new attempt
  EXPECT_EQ(guard.stats().snapshot().migrations_failed, 1u);

  guard.run_epoch();  // epoch 2: retry fails -> allowance burned -> rollback
  gs = guard.stats().snapshot();
  EXPECT_EQ(gs.migrations_failed, 2u);
  EXPECT_EQ(gs.rollbacks, 1u);
  // Rolled back to a consistent state: original color restored, the
  // replacement released, nothing had moved so nothing migrates back.
  EXPECT_TRUE(k.task(t).has_mem_color(c0));
  EXPECT_FALSE(k.task(t).has_mem_color(c1));
  EXPECT_EQ(gs.rollback_pages, 0u);
  EXPECT_EQ(k.pages_of_task_color(t, c0).size(), 3u);
  // Doubled cooldown after a rollback.
  EXPECT_EQ(guard.tenant_phase(t), ColorGuard::TenantPhase::kCooldown);

  k.failpoints().disarm(os::FailPoint::kMigrateTarget);
  const auto rep = k.check_invariants();
  EXPECT_TRUE(rep.ok) << rep.detail;
}

TEST_F(ColorGuardTest, PressureSuppressesHealingUntilItClears) {
  os::Kernel k = make_kernel();
  GuardConfig cfg;
  cfg.enabled = true;
  cfg.min_epoch_accesses = ~0ull;
  ColorGuard guard(k, memsys_, cfg);

  const os::TaskId t = k.create_task(0);
  const unsigned c0 = map_.make_bank_color(0, 0);
  claim(k, t, c0);
  touch_pages(k, t, 4);
  ASSERT_TRUE(guard.start_heal(t, c0));

  // A node goes offline: the guard must not inject migration traffic
  // into a degraded system. Observe-only, pages stay put.
  k.set_node_online(1, false);
  guard.run_epoch();
  EXPECT_EQ(guard.stats().snapshot().guard_suppressed_epochs, 1u);
  EXPECT_EQ(guard.stats().snapshot().pages_recolored, 0u);
  EXPECT_EQ(k.pages_of_task_color(t, c0).size(), 4u);
  EXPECT_EQ(guard.tenant_phase(t), ColorGuard::TenantPhase::kMigrating);

  // Node back: the pending heal resumes and completes.
  k.set_node_online(1, true);
  guard.run_epoch();
  const auto gs = guard.stats().snapshot();
  EXPECT_EQ(gs.guard_suppressed_epochs, 1u);
  EXPECT_EQ(gs.pages_recolored, 4u);
  EXPECT_EQ(gs.heals_completed, 1u);
  const auto rep = k.check_invariants();
  EXPECT_TRUE(rep.ok) << rep.detail;
}

TEST_F(ColorGuardTest, AllocFailurePressureSuppressesForTheEpoch) {
  os::Kernel k = make_kernel();
  GuardConfig cfg;
  cfg.enabled = true;
  cfg.min_epoch_accesses = ~0ull;
  ColorGuard guard(k, memsys_, cfg);

  const os::TaskId t = k.create_task(0);
  const unsigned c0 = map_.make_bank_color(0, 0);
  claim(k, t, c0);
  touch_pages(k, t, 4);
  ASSERT_TRUE(guard.start_heal(t, c0));

  // Drive the machine to OOM from a second tenant: the ladder records
  // alloc failures (and scavenges), which the next epoch must read as
  // "do not add migration load now".
  const os::TaskId hog = k.create_task(2);
  const uint64_t span = 40ull << 20;  // > the tiny machine's 32 MB
  const os::VirtAddr big = k.mmap(hog, 0, span, 0);
  ASSERT_NE(big, os::kMmapFailed);
  uint64_t mapped = 0;
  for (uint64_t off = 0; off < span; off += 4096) {
    if (k.touch(hog, big + off, true).error != os::AllocError::kOk) break;
    mapped += 4096;
  }
  ASSERT_GT(k.stats().alloc_failures, 0u);

  guard.run_epoch();
  EXPECT_EQ(guard.stats().snapshot().guard_suppressed_epochs, 1u);
  EXPECT_EQ(k.pages_of_task_color(t, c0).size(), 4u);

  // The hog exits; the counters go quiet; healing resumes.
  ASSERT_TRUE(k.munmap(hog, big, span));
  guard.run_epoch();
  const auto gs = guard.stats().snapshot();
  EXPECT_EQ(gs.guard_suppressed_epochs, 1u);
  EXPECT_EQ(gs.heals_completed, 1u);
  const auto rep = k.check_invariants();
  EXPECT_TRUE(rep.ok) << rep.detail;
}

// --- collision rules ---

TEST_F(ColorGuardTest, AutoHealMovesTheNewestHolderOfACollision) {
  os::Kernel k = make_kernel();
  GuardConfig cfg;
  cfg.enabled = true;
  cfg.victim_policy = VictimPolicy::kNewest;  // legacy PR-5 behaviour
  ColorGuard guard(k, memsys_, cfg);

  const unsigned c0 = map_.make_bank_color(0, 0);
  const os::TaskId first = k.create_task(0);  // was promised the layout
  const os::TaskId second = k.create_task(1);  // arrived later: moves
  claim(k, first, c0);
  claim(k, second, c0);
  touch_pages(k, first, 2);
  touch_pages(k, second, 3);

  heat_bank(c0, 200, 0);
  guard.run_epoch();

  const auto gs = guard.stats().snapshot();
  EXPECT_EQ(gs.heals_started, 1u);
  EXPECT_TRUE(k.task(first).has_mem_color(c0));
  EXPECT_FALSE(k.task(second).has_mem_color(c0));
  EXPECT_EQ(k.pages_of_task_color(first, c0).size(), 2u);
  EXPECT_EQ(gs.pages_recolored, 3u);  // only the newcomer's pages moved
  const auto rep = k.check_invariants();
  EXPECT_TRUE(rep.ok) << rep.detail;
}

TEST_F(ColorGuardTest, CheapestPolicyMovesTheLowTrafficHolderNotTheNewest) {
  os::Kernel k = make_kernel();
  GuardConfig cfg;
  cfg.enabled = true;  // victim_policy defaults to kCheapest
  ColorGuard guard(k, memsys_, cfg);

  const unsigned c0 = map_.make_bank_color(0, 0);
  // The *older* tenant is the cheap one: 2 resident pages, pinned to
  // core 1 which sends no DRAM traffic this epoch. The newer tenant has
  // more resident pages AND sits on core 0, where heat_bank() drives
  // the storm -- under the legacy policy it would move; under kCheapest
  // the measured counters say the older tenant is the cheaper eviction.
  const os::TaskId cheap = k.create_task(1);
  const os::TaskId expensive = k.create_task(0);
  claim(k, cheap, c0);
  claim(k, expensive, c0);
  touch_pages(k, cheap, 2);
  touch_pages(k, expensive, 5);

  heat_bank(c0, 200, 0);
  guard.run_epoch();

  const auto gs = guard.stats().snapshot();
  EXPECT_EQ(gs.heals_started, 1u);
  EXPECT_FALSE(k.task(cheap).has_mem_color(c0));
  EXPECT_TRUE(k.task(expensive).has_mem_color(c0));
  EXPECT_EQ(k.pages_of_task_color(expensive, c0).size(), 5u);
  EXPECT_EQ(gs.pages_recolored, 2u);  // only the cheap tenant's pages
  const auto rep = k.check_invariants();
  EXPECT_TRUE(rep.ok) << rep.detail;
}

TEST_F(ColorGuardTest, PriorityShieldsATenantFromCheapestEviction) {
  os::Kernel k = make_kernel();
  GuardConfig cfg;
  cfg.enabled = true;
  ColorGuard guard(k, memsys_, cfg);

  const unsigned c0 = map_.make_bank_color(0, 0);
  // By cost alone `shielded` (2 pages, quiet core) would move. Its
  // priority -- the admission controller's "guaranteed class" marker --
  // overrides cost, so the heavier low-priority tenant moves instead.
  const os::TaskId shielded = k.create_task(1);
  const os::TaskId mover = k.create_task(0);
  claim(k, shielded, c0);
  claim(k, mover, c0);
  touch_pages(k, shielded, 2);
  touch_pages(k, mover, 5);
  guard.set_tenant_priority(shielded, 2);
  EXPECT_EQ(guard.tenant_priority(shielded), 2u);
  EXPECT_EQ(guard.tenant_priority(mover), 0u);

  heat_bank(c0, 200, 0);
  guard.run_epoch();

  const auto gs = guard.stats().snapshot();
  EXPECT_EQ(gs.heals_started, 1u);
  EXPECT_TRUE(k.task(shielded).has_mem_color(c0));
  EXPECT_FALSE(k.task(mover).has_mem_color(c0));
  EXPECT_EQ(gs.pages_recolored, 5u);
  const auto rep = k.check_invariants();
  EXPECT_TRUE(rep.ok) << rep.detail;
}

// --- stale tenants (exit between sample and heal) ---

TEST_F(ColorGuardTest, ExitedHolderIsSkippedAndCountedNeverHealed) {
  os::Kernel k = make_kernel();
  GuardConfig cfg;
  cfg.enabled = true;
  ColorGuard guard(k, memsys_, cfg);

  const unsigned c0 = map_.make_bank_color(0, 0);
  const os::TaskId alive_a = k.create_task(0);
  const os::TaskId alive_b = k.create_task(1);
  const os::TaskId ghost = k.create_task(2);
  claim(k, alive_a, c0);
  claim(k, alive_b, c0);
  claim(k, ghost, c0);
  touch_pages(k, alive_a, 2);
  touch_pages(k, alive_b, 2);
  touch_pages(k, ghost, 2);
  // exit_task marks the tenant dead but (unlike reap_task) leaves its
  // TCB color claim in place: exactly the window the guard must skip.
  k.exit_task(ghost);

  heat_bank(c0, 200, 0);
  guard.run_epoch();

  const auto gs = guard.stats().snapshot();
  EXPECT_GE(gs.stale_tenant_skips, 1u);
  EXPECT_EQ(gs.heals_started, 1u);  // the two live holders still collide
  EXPECT_TRUE(k.task(ghost).has_mem_color(c0));  // ghost never touched
  EXPECT_EQ(guard.tenant_phase(ghost), ColorGuard::TenantPhase::kIdle);
  const auto rep = k.check_invariants();
  EXPECT_TRUE(rep.ok) << rep.detail;
}

TEST_F(ColorGuardTest, TenantExitingMidHealIsCancelledNotMigrated) {
  os::Kernel k = make_kernel();
  GuardConfig cfg;
  cfg.enabled = true;
  cfg.min_epoch_accesses = ~0ull;
  ColorGuard guard(k, memsys_, cfg);

  const os::TaskId t = k.create_task(0);
  const unsigned c0 = map_.make_bank_color(0, 0);
  claim(k, t, c0);
  touch_pages(k, t, 4);
  ASSERT_TRUE(guard.start_heal(t, c0));
  EXPECT_EQ(guard.tenant_phase(t), ColorGuard::TenantPhase::kMigrating);

  // The tenant departs (crash-consistent reap) while its heal is
  // mid-flight. The next epoch must cancel -- not migrate, not roll
  // back, not dereference.
  k.reap_task(t);
  guard.run_epoch();

  const auto gs = guard.stats().snapshot();
  EXPECT_EQ(gs.stale_tenant_skips, 1u);
  EXPECT_EQ(gs.pages_recolored, 0u);
  EXPECT_EQ(gs.heals_completed, 0u);
  EXPECT_EQ(gs.rollbacks, 0u);
  EXPECT_EQ(guard.tenant_phase(t), ColorGuard::TenantPhase::kIdle);

  // And a stale TaskId handed to the manual path is refused outright.
  EXPECT_FALSE(guard.start_heal(t, c0));
  EXPECT_EQ(guard.stats().snapshot().stale_tenant_skips, 2u);
  const auto rep = k.check_invariants(0, true);
  EXPECT_TRUE(rep.ok) << rep.detail;
}

// --- LLC heals (same pipeline, other axis) ---

TEST_F(ColorGuardTest, ManualLlcHealSwapsTheSliceThenMigrates) {
  os::Kernel k = make_kernel();
  GuardConfig cfg;
  cfg.enabled = true;
  cfg.min_epoch_accesses = ~0ull;
  ColorGuard guard(k, memsys_, cfg);

  const os::TaskId t = k.create_task(0);
  const unsigned l0 = 3;
  ASSERT_NE(k.mmap(t, l0 | os::SET_LLC_COLOR, 0, os::PROT_COLOR_ALLOC),
            os::kMmapFailed);
  touch_pages(k, t, 4);
  ASSERT_EQ(k.pages_of_task_llc_color(t, l0).size(), 4u);

  ASSERT_TRUE(guard.start_heal(t, l0, core::ColorDim::kLlc));
  // The swap is immediate; the pages still sit on the old slice.
  EXPECT_FALSE(k.task(t).has_llc_color(l0));
  const auto llcs = k.task(t).llc_color_list();
  ASSERT_EQ(llcs.size(), 1u);
  const unsigned l1 = llcs[0];
  EXPECT_NE(l1, l0);
  auto gs = guard.stats().snapshot();
  EXPECT_EQ(gs.llc_heals_started, 1u);
  EXPECT_EQ(gs.heals_started, 1u);  // the shared counters cover both axes
  EXPECT_EQ(k.pages_of_task_llc_color(t, l0).size(), 4u);

  guard.run_epoch();
  gs = guard.stats().snapshot();
  EXPECT_EQ(gs.pages_recolored, 4u);
  EXPECT_EQ(gs.llc_heals_completed, 1u);
  EXPECT_EQ(gs.heals_completed, 1u);
  EXPECT_TRUE(k.pages_of_task_llc_color(t, l0).empty());
  EXPECT_EQ(k.pages_of_task_llc_color(t, l1).size(), 4u);
  EXPECT_EQ(guard.tenant_phase(t), ColorGuard::TenantPhase::kCooldown);
  const auto rep = k.check_invariants();
  EXPECT_TRUE(rep.ok) << rep.detail;
}

TEST_F(ColorGuardTest, FailedLlcHealRollsBackToTheOriginalSlice) {
  os::Kernel k = make_kernel();
  GuardConfig cfg;
  cfg.enabled = true;
  cfg.min_epoch_accesses = ~0ull;
  cfg.max_heal_failures = 1;
  cfg.backoff_base_epochs = 1;
  ColorGuard guard(k, memsys_, cfg);

  const os::TaskId t = k.create_task(0);
  const unsigned l0 = 2;
  ASSERT_NE(k.mmap(t, l0 | os::SET_LLC_COLOR, 0, os::PROT_COLOR_ALLOC),
            os::kMmapFailed);
  touch_pages(k, t, 3);
  ASSERT_TRUE(guard.start_heal(t, l0, core::ColorDim::kLlc));
  const unsigned l1 = k.task(t).llc_color_list()[0];

  k.failpoints().arm(os::FailPoint::kMigrateTarget, os::FailSpec::always());
  guard.run_epoch();  // fails -> backoff
  guard.run_epoch();  // gated
  guard.run_epoch();  // retry fails -> rollback
  k.failpoints().disarm(os::FailPoint::kMigrateTarget);

  const auto gs = guard.stats().snapshot();
  EXPECT_EQ(gs.rollbacks, 1u);
  EXPECT_TRUE(k.task(t).has_llc_color(l0));
  EXPECT_FALSE(k.task(t).has_llc_color(l1));
  EXPECT_EQ(k.pages_of_task_llc_color(t, l0).size(), 3u);
  EXPECT_EQ(guard.tenant_phase(t), ColorGuard::TenantPhase::kCooldown);
  const auto rep = k.check_invariants();
  EXPECT_TRUE(rep.ok) << rep.detail;
}

// --- elastic shrink ---

TEST_F(ColorGuardTest, ShrinkFreesColdestColorsImmediatelyThenMigrates) {
  os::Kernel k = make_kernel();
  GuardConfig cfg;
  cfg.enabled = true;
  cfg.min_epoch_accesses = ~0ull;
  ColorGuard guard(k, memsys_, cfg);

  const os::TaskId t = k.create_task(0);
  const unsigned c0 = map_.make_bank_color(0, 0);
  const unsigned c1 = map_.make_bank_color(0, 1);
  const unsigned c2 = map_.make_bank_color(0, 2);
  claim(k, t, c0);
  claim(k, t, c1);
  claim(k, t, c2);
  touch_pages(k, t, 6);
  const size_t before = k.pages_of_task_color(t, c0).size() +
                        k.pages_of_task_color(t, c1).size() +
                        k.pages_of_task_color(t, c2).size();
  EXPECT_EQ(before, 6u);

  // Drop two of three: the swap publishes instantly -- the freed colors
  // are grantable before a single page has moved.
  EXPECT_EQ(guard.start_shrink(t, 2, 1), 2u);
  const auto held = k.task(t).mem_color_list();
  ASSERT_EQ(held.size(), 1u);
  const unsigned survivor = held[0];
  auto gs = guard.stats().snapshot();
  EXPECT_EQ(gs.shrinks_started, 1u);
  EXPECT_EQ(gs.shrink_colors_dropped, 2u);
  EXPECT_EQ(guard.tenant_phase(t), ColorGuard::TenantPhase::kMigrating);

  // A tenant mid-shrink can start nothing else.
  EXPECT_EQ(guard.start_shrink(t, 1, 1), 0u);
  EXPECT_FALSE(guard.start_heal(t, survivor));

  guard.run_epoch();  // all dropped-color pages dribble to the survivor
  gs = guard.stats().snapshot();
  EXPECT_EQ(gs.shrinks_completed, 1u);
  EXPECT_EQ(k.pages_of_task_color(t, survivor).size(), 6u);
  for (const unsigned c : {c0, c1, c2}) {
    if (c != survivor) {
      EXPECT_TRUE(k.pages_of_task_color(t, c).empty());
    }
  }
  const auto rep = k.check_invariants();
  EXPECT_TRUE(rep.ok) << rep.detail;
}

TEST_F(ColorGuardTest, ShrinkNeverDropsBelowTheFloor) {
  os::Kernel k = make_kernel();
  GuardConfig cfg;
  cfg.enabled = true;
  cfg.min_epoch_accesses = ~0ull;
  ColorGuard guard(k, memsys_, cfg);

  const os::TaskId t = k.create_task(0);
  claim(k, t, map_.make_bank_color(0, 0));
  claim(k, t, map_.make_bank_color(0, 1));
  touch_pages(k, t, 2);

  // Already at a floor of two colors: refused outright.
  EXPECT_EQ(guard.start_shrink(t, 5, 2), 0u);
  EXPECT_EQ(k.task(t).mem_color_list().size(), 2u);
  // An oversized request is clamped to the floor, not refused.
  EXPECT_EQ(guard.start_shrink(t, 5, 1), 1u);
  EXPECT_EQ(k.task(t).mem_color_list().size(), 1u);
  // A dead task is refused and counted, never dereferenced.
  const os::TaskId ghost = k.create_task(1);
  k.reap_task(ghost);
  EXPECT_EQ(guard.start_shrink(ghost, 1, 1), 0u);
  EXPECT_GE(guard.stats().snapshot().stale_tenant_skips, 1u);
}

TEST_F(ColorGuardTest, FailedShrinkRollsBackAndReclaimsDroppedColors) {
  os::Kernel k = make_kernel();
  GuardConfig cfg;
  cfg.enabled = true;
  cfg.min_epoch_accesses = ~0ull;
  cfg.max_heal_failures = 1;
  cfg.backoff_base_epochs = 1;
  cfg.cooldown_epochs = 2;
  ColorGuard guard(k, memsys_, cfg);

  const os::TaskId t = k.create_task(0);
  const unsigned c0 = map_.make_bank_color(0, 0);
  const unsigned c1 = map_.make_bank_color(0, 1);
  claim(k, t, c0);
  claim(k, t, c1);
  touch_pages(k, t, 4);
  ASSERT_EQ(guard.start_shrink(t, 1, 1), 1u);
  ASSERT_EQ(k.task(t).mem_color_list().size(), 1u);

  // Migration can never land: the tenant burns its allowance and the
  // rollback re-adds the dropped color (nobody claimed it meanwhile).
  k.failpoints().arm(os::FailPoint::kMigrateTarget, os::FailSpec::always());
  guard.run_epoch();  // fails -> backoff
  guard.run_epoch();  // gated
  guard.run_epoch();  // retry fails -> rollback
  k.failpoints().disarm(os::FailPoint::kMigrateTarget);

  const auto gs = guard.stats().snapshot();
  EXPECT_EQ(gs.shrink_rollbacks, 1u);
  EXPECT_EQ(gs.shrink_colors_lost, 0u);
  EXPECT_EQ(k.task(t).mem_color_list().size(), 2u);
  EXPECT_TRUE(k.task(t).has_mem_color(c0));
  EXPECT_TRUE(k.task(t).has_mem_color(c1));
  // Doubled cooldown, like a heal rollback.
  EXPECT_EQ(guard.tenant_phase(t), ColorGuard::TenantPhase::kCooldown);
  const auto rep = k.check_invariants();
  EXPECT_TRUE(rep.ok) << rep.detail;
}

TEST_F(ColorGuardTest, ShrinkRollbackCountsColorsGrantedAwayAsLost) {
  os::Kernel k = make_kernel();
  GuardConfig cfg;
  cfg.enabled = true;
  cfg.min_epoch_accesses = ~0ull;
  cfg.max_heal_failures = 1;
  cfg.backoff_base_epochs = 1;
  ColorGuard guard(k, memsys_, cfg);

  const os::TaskId t = k.create_task(0);
  const unsigned c0 = map_.make_bank_color(0, 0);
  const unsigned c1 = map_.make_bank_color(0, 1);
  claim(k, t, c0);
  claim(k, t, c1);
  touch_pages(k, t, 4);
  ASSERT_EQ(guard.start_shrink(t, 1, 1), 1u);
  const auto held = k.task(t).mem_color_list();
  ASSERT_EQ(held.size(), 1u);
  const unsigned dropped = held[0] == c0 ? c1 : c0;

  // The point of the shrink: the freed color is grantable *now*. A new
  // tenant takes it before the migration gives up.
  const os::TaskId newcomer = k.create_task(1);
  claim(k, newcomer, dropped);

  k.failpoints().arm(os::FailPoint::kMigrateTarget, os::FailSpec::always());
  guard.run_epoch();
  guard.run_epoch();
  guard.run_epoch();
  k.failpoints().disarm(os::FailPoint::kMigrateTarget);

  // The rollback must NOT steal the color back: the newcomer keeps it,
  // the shrunk tenant stays smaller, the loss is counted.
  const auto gs = guard.stats().snapshot();
  EXPECT_EQ(gs.shrink_rollbacks, 1u);
  EXPECT_EQ(gs.shrink_colors_lost, 1u);
  EXPECT_EQ(k.task(t).mem_color_list().size(), 1u);
  EXPECT_FALSE(k.task(t).has_mem_color(dropped));
  EXPECT_TRUE(k.task(newcomer).has_mem_color(dropped));
  const auto rep = k.check_invariants();
  EXPECT_TRUE(rep.ok) << rep.detail;
}

TEST_F(ColorGuardTest, SelfConflictingSingleHolderIsNeverHealed) {
  os::Kernel k = make_kernel();
  GuardConfig cfg;
  cfg.enabled = true;
  ColorGuard guard(k, memsys_, cfg);

  const unsigned c0 = map_.make_bank_color(0, 0);
  const os::TaskId t = k.create_task(0);
  claim(k, t, c0);
  touch_pages(k, t, 4);

  // The tenant's own streams thrash its own bank. Re-coloring cannot
  // help (the traffic follows the tenant), so the guard must hold fire
  // no matter how hot the detector runs.
  hw::Cycles now = 0;
  for (unsigned e = 0; e < 6; ++e) {
    now = heat_bank(c0, 200, now);
    guard.run_epoch();
  }
  EXPECT_TRUE(guard.bank_hot(c0));
  EXPECT_EQ(guard.stats().snapshot().heals_started, 0u);
  EXPECT_TRUE(k.task(t).has_mem_color(c0));
}

}  // namespace
}  // namespace tint::runtime

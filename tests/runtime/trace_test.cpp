#include "runtime/trace.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace tint::runtime {
namespace {

class TraceTest : public ::testing::Test {
 protected:
  TraceTest() : session_(core::MachineConfig::tiny()) {}

  core::Session session_;
};

TEST_F(TraceTest, RecordsCarryTranslationAndColors) {
  const os::TaskId t = session_.create_task(0);
  session_.apply_colors(t, core::ThreadColorPlan{{2}, {3}});
  TraceRecorder rec(session_);
  const os::VirtAddr p = session_.heap(t).malloc(32 << 10);
  Cycles now = 0;
  for (unsigned i = 0; i < 8; ++i)
    now += rec.access(t, p + i * 4096ULL, i % 2, now);
  ASSERT_EQ(rec.records().size(), 8u);
  for (const TraceRecord& r : rec.records()) {
    EXPECT_EQ(r.task, t);
    EXPECT_EQ(r.bank_color, 2u);
    EXPECT_EQ(r.llc_color, 3u);
    EXPECT_TRUE(r.faulted);  // every page touched once
    EXPECT_GT(r.latency, 0u);
  }
  EXPECT_EQ(rec.records()[1].write, true);
  EXPECT_EQ(rec.records()[0].write, false);
}

TEST_F(TraceTest, LatencyMatchesSessionPath) {
  // A recorded access must cost the same as Session::touch_and_access
  // on an identical fresh machine.
  core::Session other(core::MachineConfig::tiny());
  const os::TaskId t1 = session_.create_task(0);
  const os::TaskId t2 = other.create_task(0);
  TraceRecorder rec(session_);
  const os::VirtAddr p1 = session_.heap(t1).malloc(4096);
  const os::VirtAddr p2 = other.heap(t2).malloc(4096);
  const Cycles a = rec.access(t1, p1, true, 0);
  const Cycles b = other.touch_and_access(t2, p2, true, 0);
  EXPECT_EQ(a, b);
}

TEST_F(TraceTest, CapacityBoundsAndDropCount) {
  const os::TaskId t = session_.create_task(0);
  TraceRecorder rec(session_, /*capacity=*/4);
  const os::VirtAddr p = session_.heap(t).malloc(64 << 10);
  Cycles now = 0;
  for (unsigned i = 0; i < 10; ++i)
    now += rec.access(t, p + i * 4096ULL, true, now);
  EXPECT_EQ(rec.records().size(), 4u);
  EXPECT_EQ(rec.dropped(), 6u);
  rec.clear();
  EXPECT_EQ(rec.records().size(), 0u);
  EXPECT_EQ(rec.dropped(), 0u);
}

TEST_F(TraceTest, CsvHasHeaderAndRows) {
  const os::TaskId t = session_.create_task(0);
  TraceRecorder rec(session_);
  const os::VirtAddr p = session_.heap(t).malloc(4096);
  rec.access(t, p, true, 0);
  const std::string csv = rec.to_csv();
  EXPECT_NE(csv.find("va,pa,start,latency"), std::string::npos);
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 2);
}

TEST_F(TraceTest, AnalysisAggregates) {
  const os::TaskId t = session_.create_task(0);  // node 0
  session_.apply_colors(t, core::ThreadColorPlan{{1}, {}});
  TraceRecorder rec(session_);
  const os::VirtAddr p = session_.heap(t).malloc(32 << 10);
  Cycles now = 0;
  for (unsigned i = 0; i < 8; ++i)
    now += rec.access(t, p + i * 4096ULL, i < 4, now);
  const TraceAnalysis a = analyze_trace(rec.records(), session_);
  EXPECT_EQ(a.latency.count(), 8u);
  EXPECT_EQ(a.writes, 4u);
  EXPECT_EQ(a.faults, 8u);
  EXPECT_EQ(a.accesses_per_node[0], 8u);  // bank color 1 is node 0
  EXPECT_EQ(a.remote, 0u);
  EXPECT_EQ(a.accesses_per_bank[1], 8u);
  EXPECT_DOUBLE_EQ(a.remote_fraction(), 0.0);
}

TEST_F(TraceTest, ReplayPreservesStreamShape) {
  const os::TaskId t = session_.create_task(0);
  TraceRecorder rec(session_);
  const os::VirtAddr p = session_.heap(t).malloc(16 << 10);
  Cycles now = 0;
  for (unsigned i = 0; i < 12; ++i)
    now += rec.access(t, p + (i % 4) * 4096ULL + i * 8, i % 3 == 0, now);

  // Replay into a different session at a different base.
  core::Session target(core::MachineConfig::tiny());
  const os::TaskId t2 = target.create_task(0);
  const os::VirtAddr q = target.heap(t2).malloc(16 << 10);
  TraceReplayStream replay(rec.records(), t, p, q);
  EXPECT_EQ(replay.length(), 12u);
  Op op;
  size_t n = 0;
  while (replay.next(op)) {
    EXPECT_EQ(op.va - q, rec.records()[n].va - p);
    EXPECT_EQ(op.write, rec.records()[n].write);
    ++n;
  }
  EXPECT_EQ(n, 12u);
}

TEST_F(TraceTest, ReplayAcrossPoliciesChangesPlacementNotStream) {
  // Record under buddy, replay the identical stream under MEM+LLC: the
  // replay touches the same virtual offsets but lands in colored frames.
  const os::TaskId t = session_.create_task(0);
  TraceRecorder rec(session_);
  const os::VirtAddr p = session_.heap(t).malloc(32 << 10);
  Cycles now = 0;
  for (unsigned i = 0; i < 8; ++i)
    now += rec.access(t, p + i * 4096ULL, true, now);

  core::Session colored(core::MachineConfig::tiny());
  const os::TaskId tc = colored.create_task(0);
  std::vector<os::TaskId> tasks = {tc};
  colored.apply_policy(core::Policy::kMemLlc, tasks);
  const os::VirtAddr q = colored.heap(tc).malloc(32 << 10);
  TraceReplayStream replay(rec.records(), t, p, q);
  ParallelEngine engine(colored);
  engine.run_serial(tc, replay, 0);
  const auto& as = colored.kernel().task(tc).alloc_stats();
  EXPECT_EQ(as.colored_pages, 8u);
}

}  // namespace
}  // namespace tint::runtime

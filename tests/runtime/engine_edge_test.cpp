// Edge cases of the parallel engine and workload runner: many threads,
// degenerate streams, section chaining, and determinism under heavy
// bank contention.
#include <gtest/gtest.h>

#include <memory>

#include "runtime/experiment.h"
#include "runtime/sim_thread.h"
#include "runtime/workload.h"

namespace tint::runtime {
namespace {

class CountingStream final : public OpStream {
 public:
  CountingStream(os::VirtAddr base, uint64_t n, Cycles compute)
      : base_(base), n_(n), compute_(compute) {}
  bool next(Op& op) override {
    if (i_ >= n_) return false;
    op.kind = Op::Kind::kAccess;
    op.va = base_ + (i_ % 32) * 128;
    op.write = true;
    op.cycles = compute_;
    ++i_;
    return true;
  }

 private:
  os::VirtAddr base_;
  uint64_t n_, i_ = 0;
  Cycles compute_;
};

TEST(EngineEdge, SixteenThreadsAllFinish) {
  core::Session s(core::MachineConfig::opteron6128());
  std::vector<os::TaskId> tasks;
  std::vector<std::unique_ptr<OpStream>> streams;
  std::vector<OpStream*> ptrs;
  for (unsigned c = 0; c < 16; ++c) {
    tasks.push_back(s.create_task(c));
    const os::VirtAddr p = s.heap(tasks.back()).malloc(4096);
    streams.push_back(std::make_unique<CountingStream>(p, 100 + c * 10, 5));
    ptrs.push_back(streams.back().get());
  }
  ParallelEngine engine(s);
  const SectionTiming st = engine.run_parallel(tasks, ptrs, 0);
  ASSERT_EQ(st.end.size(), 16u);
  for (unsigned i = 0; i < 16; ++i) EXPECT_GT(st.end[i], 0u);
  // Threads with more work finish later (same per-access cost profile).
  EXPECT_GT(st.end[15], st.end[0]);
  EXPECT_EQ(engine.ops_executed(), [&] {
    uint64_t sum = 0;
    for (unsigned c = 0; c < 16; ++c) sum += 100 + c * 10;
    return sum;
  }());
}

TEST(EngineEdge, SectionsChainMonotonically) {
  core::Session s(core::MachineConfig::tiny());
  const os::TaskId t = s.create_task(0);
  const os::VirtAddr p = s.heap(t).malloc(4096);
  ParallelEngine engine(s);
  Cycles now = 0;
  const os::TaskId tasks[] = {t};
  for (int round = 0; round < 5; ++round) {
    CountingStream cs(p, 50, 10);
    OpStream* ptr = &cs;
    const SectionTiming st = engine.run_parallel({tasks, 1}, {&ptr, 1}, now);
    EXPECT_EQ(st.start, now);
    EXPECT_GT(st.max_end(), now);
    now = st.max_end();
  }
}

TEST(EngineEdge, MixedEmptyAndBusyStreams) {
  core::Session s(core::MachineConfig::tiny());
  const os::TaskId a = s.create_task(0);
  const os::TaskId b = s.create_task(1);
  const os::VirtAddr p = s.heap(b).malloc(4096);
  CountingStream empty(0, 0, 0);
  CountingStream busy(p, 200, 3);
  OpStream* ptrs[] = {&empty, &busy};
  const os::TaskId tasks[] = {a, b};
  ParallelEngine engine(s);
  const SectionTiming st = engine.run_parallel({tasks, 2}, {ptrs, 2}, 100);
  EXPECT_EQ(st.end[0], 100u);     // empty thread arrives immediately
  EXPECT_GT(st.end[1], 100u);
  EXPECT_EQ(st.idle(1), 0u);      // last arriver
  EXPECT_EQ(st.idle(0), st.end[1] - 100);
}

TEST(EngineEdge, ContendedRunsAreDeterministic) {
  // 4 threads hammering the same bank: scheduling ties and shared state
  // must still resolve identically across executions.
  const auto run_once = [] {
    core::Session s(core::MachineConfig::tiny());
    std::vector<os::TaskId> tasks;
    std::vector<std::unique_ptr<OpStream>> streams;
    std::vector<OpStream*> ptrs;
    const os::TaskId t0 = s.create_task(0);
    const os::VirtAddr shared_page = s.heap(t0).malloc(4096);
    tasks.push_back(t0);
    streams.push_back(std::make_unique<CountingStream>(shared_page, 500, 2));
    ptrs.push_back(streams.back().get());
    for (unsigned c = 1; c < 4; ++c) {
      tasks.push_back(s.create_task(c));
      streams.push_back(
          std::make_unique<CountingStream>(shared_page, 500, 2));
      ptrs.push_back(streams.back().get());
    }
    ParallelEngine engine(s);
    return engine.run_parallel(tasks, ptrs, 0).end;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(EngineEdge, RunnerHandlesSingleThread) {
  WorkloadSpec spec;
  spec.name = "solo";
  spec.private_bytes = 64 << 10;
  spec.rounds = 2;
  spec.accesses_per_round = 500;
  spec.compute_per_access = 10;
  WorkloadRunner runner(core::MachineConfig::tiny());
  const std::vector<unsigned> cores = {2};
  const RunResult r = runner.run(spec, core::Policy::kMemLlc, cores, 3);
  EXPECT_EQ(r.threads, 1u);
  EXPECT_EQ(r.total_idle, 0u);  // nobody to wait for
  EXPECT_GT(r.total_runtime, 0u);
}

TEST(EngineEdge, RunnerWithoutSharedRegion) {
  WorkloadSpec spec;
  spec.name = "noshared";
  spec.private_bytes = 64 << 10;
  spec.shared_bytes = 0;
  spec.rounds = 1;
  spec.accesses_per_round = 300;
  WorkloadRunner runner(core::MachineConfig::tiny());
  const std::vector<unsigned> cores = {0, 1};
  const RunResult r = runner.run(spec, core::Policy::kBuddy, cores, 3);
  EXPECT_GT(r.pages_touched, 0u);
}

TEST(EngineEdge, RunnerDistributedSharedFirstTouchSpreadsNodes) {
  WorkloadSpec spec;
  spec.name = "dist";
  spec.private_bytes = 32 << 10;
  spec.shared_bytes = 512 << 10;
  spec.shared_first_touch_distributed = true;
  spec.shared_fraction = 0.2;
  spec.rounds = 1;
  spec.accesses_per_round = 500;
  WorkloadRunner runner(core::MachineConfig::tiny());
  // 4 threads over both nodes with MEM coloring: the shared region must
  // land on *both* nodes (slice per toucher), unlike master-touch.
  const std::vector<unsigned> cores = {0, 1, 2, 3};
  const RunResult dist = runner.run(spec, core::Policy::kMem, cores, 9);
  spec.shared_first_touch_distributed = false;
  const RunResult master = runner.run(spec, core::Policy::kMem, cores, 9);
  // Distributed touch halves the remote traffic to shared data.
  EXPECT_LT(dist.dram_remote_fraction, master.dram_remote_fraction + 0.3);
  EXPECT_GT(master.pages_touched, 0u);
}

}  // namespace
}  // namespace tint::runtime

// Unit tests for the ColorGuard's LLC observe path alone (the heal
// mechanics live in color_guard_test.cpp, the end-to-end collision in
// integration/elastic_qos_test.cpp): each LLC color's EWMA tracks its
// *share* of the epoch's cross-requester eviction delta, hot flags pass
// through the same hysteresis band as banks, sparse epochs decay
// instead of spiking, a disabled guard only watches, and the hot flags
// feed the avoid-set so a manual LLC heal never lands on another
// thrashing slice.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "hw/pci_config.h"
#include "os/kernel.h"
#include "runtime/color_guard.h"
#include "sim/memory_system.h"

namespace tint::runtime {
namespace {

class LlcObserveTest : public ::testing::Test {
 protected:
  LlcObserveTest()
      : topo_(hw::Topology::tiny()),
        pci_(hw::PciConfig::program_bios(topo_)),
        map_(pci_, topo_),
        memsys_(topo_, map_) {}

  os::Kernel make_kernel() { return os::Kernel(topo_, map_, {}, 42); }

  // Cross-requester thrash on one LLC color: group the color's pages by
  // the LLC set their base line indexes, then have core 0 fill the ways
  // and core 1 walk the *next* `ways` pages of the same sets -- every
  // eviction removes a line the other core inserted, and every victim
  // set folds onto `color` (the guard's set -> color attribution). Each
  // call walks a fresh line offset within the pages so repeated rounds
  // miss the private L1/L2 and actually reach the LLC (the line offset
  // stays below the page-index bits, so the victim color is unchanged).
  hw::Cycles heat_llc(unsigned color, hw::Cycles now,
                      unsigned lines_per_page = 4) {
    const sim::Cache& llc = memsys_.llc();
    std::vector<hw::PhysAddr>& pages = pages_of_[color];
    if (pages.empty()) {
      const uint64_t total = map_.num_nodes() * map_.node_bytes();
      for (hw::PhysAddr pa = 0; pa < total; pa += map_.page_bytes())
        if (map_.llc_color(pa) == color) pages.push_back(pa);
    }
    std::map<unsigned, std::vector<hw::PhysAddr>> by_set;
    for (const hw::PhysAddr pa : pages) by_set[llc.set_of(pa)].push_back(pa);
    const unsigned w = llc.ways();
    const unsigned lines_in_page =
        static_cast<unsigned>(map_.page_bytes() / llc.line_bytes());
    const unsigned base_j = (round_[color]++ * lines_per_page) % lines_in_page;
    for (const auto& [set, v] : by_set) {
      if (v.size() < 2ull * w) continue;
      for (unsigned phase = 0; phase < 2; ++phase)
        for (unsigned t = 0; t < w; ++t) {
          const hw::PhysAddr page = v[phase * w + t];
          for (unsigned j = 0; j < lines_per_page; ++j)
            now += memsys_.access(
                phase, page + ((base_j + j) % lines_in_page) * llc.line_bytes(),
                false, now);
        }
    }
    return now;
  }

  hw::Topology topo_;
  hw::PciConfig pci_;
  hw::AddressMapping map_;
  sim::MemorySystem memsys_;
  std::map<unsigned, std::vector<hw::PhysAddr>> pages_of_;
  std::map<unsigned, unsigned> round_;
};

TEST_F(LlcObserveTest, ShareEwmaEntersAndExitsThroughTheHysteresisBand) {
  os::Kernel k = make_kernel();
  ColorGuard guard(k, memsys_);  // default config: observe-only
  const unsigned color = 5;
  ASSERT_LT(color, map_.num_llc_colors());

  // All cross-requester evictions this epoch land on one color: its
  // share is 1.0, EWMA = 0.4 * 1.0 crosses hot_enter (0.35).
  heat_llc(color, 0);
  guard.run_epoch();
  EXPECT_GT(guard.llc_ewma(color), 0.35);
  EXPECT_TRUE(guard.llc_hot(color));
  EXPECT_EQ(guard.stats().snapshot().llc_hot_colors_detected, 1u);
  // No other color was credited with the thrash.
  for (unsigned c = 0; c < map_.num_llc_colors(); ++c) {
    if (c != color) {
      EXPECT_FALSE(guard.llc_hot(c)) << "color " << c;
    }
  }

  // Idle epoch decays to ~0.24: inside the band, so the color STAYS
  // hot -- no flapping between the thresholds.
  guard.run_epoch();
  EXPECT_GT(guard.llc_ewma(color), 0.15);
  EXPECT_TRUE(guard.llc_hot(color));

  // Second idle epoch decays through hot_exit (0.15): cools. Cooling is
  // not a second detection.
  guard.run_epoch();
  EXPECT_LT(guard.llc_ewma(color), 0.15);
  EXPECT_FALSE(guard.llc_hot(color));
  EXPECT_EQ(guard.stats().snapshot().llc_hot_colors_detected, 1u);
}

TEST_F(LlcObserveTest, SparseEvictionEpochsContributeDecayNotNoise) {
  os::Kernel k = make_kernel();
  GuardConfig cfg;
  cfg.min_epoch_accesses = ~0ull;  // no epoch total can ever be trusted
  ColorGuard guard(k, memsys_, cfg);
  const unsigned color = 3;

  // A 100% share on a sample below the gate must decay the EWMA to
  // zero, not spike a color hot off a handful of evictions.
  heat_llc(color, 0);
  guard.run_epoch();
  EXPECT_EQ(guard.llc_ewma(color), 0.0);
  EXPECT_FALSE(guard.llc_hot(color));
  EXPECT_EQ(guard.stats().snapshot().llc_hot_colors_detected, 0u);
}

TEST_F(LlcObserveTest, SharesSplitAcrossColorsAndDecayIndependently) {
  os::Kernel k = make_kernel();
  GuardConfig cfg;
  cfg.hot_enter = 0.10;  // three-way split: each share lands near 1/3
  cfg.hot_exit = 0.05;
  ColorGuard guard(k, memsys_, cfg);

  hw::Cycles now = 0;
  now = heat_llc(0, now);
  now = heat_llc(1, now);
  heat_llc(6, now);
  guard.run_epoch();
  EXPECT_TRUE(guard.llc_hot(0));
  EXPECT_TRUE(guard.llc_hot(1));
  EXPECT_TRUE(guard.llc_hot(6));
  EXPECT_FALSE(guard.llc_hot(2));
  EXPECT_EQ(guard.stats().snapshot().llc_hot_colors_detected, 3u);
  // Shares are a partition of the epoch's thrash: each near 1/3, none
  // anywhere near the whole.
  EXPECT_LT(guard.llc_ewma(0), 0.25);
  EXPECT_GT(guard.llc_ewma(0), 0.08);

  // Heat only one of them next epoch: it climbs while the others decay.
  heat_llc(6, now);
  guard.run_epoch();
  EXPECT_GT(guard.llc_ewma(6), guard.llc_ewma(0));
  EXPECT_TRUE(guard.llc_hot(6));
}

TEST_F(LlcObserveTest, DisabledGuardObservesTheLlcButNeverMutates) {
  os::Kernel k = make_kernel();
  const os::TaskId t0 = k.create_task(0);
  const os::TaskId t1 = k.create_task(1);
  const unsigned color = 2;
  // A genuine two-holder LLC collision, detector saturated: with the
  // master switch off nothing may move.
  ASSERT_NE(k.mmap(t0, color | os::SET_LLC_COLOR, 0, os::PROT_COLOR_ALLOC),
            os::kMmapFailed);
  ASSERT_NE(k.mmap(t1, color | os::SET_LLC_COLOR, 0, os::PROT_COLOR_ALLOC),
            os::kMmapFailed);

  ColorGuard guard(k, memsys_);  // enabled = false
  hw::Cycles now = 0;
  for (unsigned e = 0; e < 3; ++e) {
    now = heat_llc(color, now);
    guard.run_epoch();
  }
  EXPECT_TRUE(guard.llc_hot(color));  // seen...
  const auto gs = guard.stats().snapshot();
  EXPECT_EQ(gs.llc_heals_started, 0u);  // ...and left alone
  EXPECT_EQ(gs.heals_started, 0u);
  EXPECT_EQ(k.stats().recolor_calls, 0u);
  EXPECT_TRUE(k.task(t0).has_llc_color(color));
  EXPECT_TRUE(k.task(t1).has_llc_color(color));
}

TEST_F(LlcObserveTest, HotFlagsFeedTheAvoidSetOfAnLlcHeal) {
  os::Kernel k = make_kernel();
  GuardConfig cfg;
  cfg.enabled = true;
  cfg.hot_enter = 0.10;  // the thrash is split three ways below
  cfg.hot_exit = 0.05;
  ColorGuard guard(k, memsys_, cfg);

  // The tenant holds LLC color 2; colors 0, 1 and 3 are thrashing. A
  // heal of color 2 must skip every hot slice and every held color --
  // the lowest clean unclaimed color is 4.
  const os::TaskId t = k.create_task(0);
  ASSERT_NE(k.mmap(t, 2u | os::SET_LLC_COLOR, 0, os::PROT_COLOR_ALLOC),
            os::kMmapFailed);

  hw::Cycles now = 0;
  now = heat_llc(0, now);
  now = heat_llc(1, now);
  heat_llc(3, now);
  guard.run_epoch();
  ASSERT_TRUE(guard.llc_hot(0));
  ASSERT_TRUE(guard.llc_hot(1));
  ASSERT_TRUE(guard.llc_hot(3));
  ASSERT_FALSE(guard.llc_hot(4));

  ASSERT_TRUE(guard.start_heal(t, 2, core::ColorDim::kLlc));
  EXPECT_FALSE(k.task(t).has_llc_color(2));
  EXPECT_FALSE(k.task(t).has_llc_color(0));
  EXPECT_FALSE(k.task(t).has_llc_color(1));
  EXPECT_FALSE(k.task(t).has_llc_color(3));
  EXPECT_TRUE(k.task(t).has_llc_color(4));
  EXPECT_EQ(guard.stats().snapshot().llc_heals_started, 1u);
}

}  // namespace
}  // namespace tint::runtime

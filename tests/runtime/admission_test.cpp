// Unit tests for the AdmissionController (runtime/admission.h): class
// budgets (guaranteed all-or-nothing, burstable partial grants and
// downgrades, best-effort pass-through), deterministic behaviour at
// color exhaustion, bandwidth-aware node placement, crash-consistent
// teardown that returns the palette for re-admission, and the per-class
// SLO rollup with ladder-counter conservation. Runs under the `qos`
// ctest label.
#include "runtime/admission.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "hw/pci_config.h"
#include "os/kernel.h"
#include "sim/memory_system.h"

namespace tint::runtime {
namespace {

// The tiny machine: 2 nodes x 8 bank colors (16 total), 16 LLC colors.
// With the default guaranteed budget {4 banks, 2 llcs}, four guaranteed
// tenants (two per node) exhaust every bank color.
class AdmissionTest : public ::testing::Test {
 protected:
  AdmissionTest()
      : topo_(hw::Topology::tiny()),
        pci_(hw::PciConfig::program_bios(topo_)),
        map_(pci_, topo_),
        memsys_(topo_, map_) {}

  os::Kernel make_kernel(os::KernelConfig cfg = {}, uint64_t seed = 42) {
    return os::Kernel(topo_, map_, cfg, seed);
  }

  hw::Topology topo_;
  hw::PciConfig pci_;
  hw::AddressMapping map_;
  sim::MemorySystem memsys_;
};

TEST_F(AdmissionTest, GuaranteedGetsFullBudgetOnOneNodeOrNothing) {
  os::Kernel k = make_kernel();
  AdmissionController adm(k, memsys_);

  const AdmissionTicket t = adm.admit(TenantClass::kGuaranteed);
  ASSERT_TRUE(t.admitted) << t.reason;
  EXPECT_EQ(t.granted, TenantClass::kGuaranteed);
  EXPECT_FALSE(t.downgraded);
  ASSERT_EQ(t.banks.size(), 4u);
  EXPECT_EQ(t.llcs.size(), 2u);
  // The whole bank grant lives on the placement node -- a guaranteed
  // palette is never split across controllers.
  for (const uint16_t b : t.banks)
    EXPECT_EQ(map_.node_of_bank_color(b), t.node);
  // And the TCB already carries the claim.
  for (const uint16_t b : t.banks)
    EXPECT_TRUE(k.task(t.task).has_mem_color(b));
  EXPECT_EQ(adm.live_tenants(), 1u);
}

TEST_F(AdmissionTest, ExhaustionRejectsGuaranteedDeterministically) {
  // Two identical machines must make identical decisions: admission is
  // a pure function of kernel + tenant state, with no hidden randomness.
  for (int run = 0; run < 2; ++run) {
    os::Kernel k = make_kernel();
    AdmissionController adm(k, memsys_);

    std::vector<AdmissionTicket> admitted;
    for (int i = 0; i < 4; ++i) {
      const AdmissionTicket t = adm.admit(TenantClass::kGuaranteed);
      ASSERT_TRUE(t.admitted) << "tenant " << i << ": " << t.reason;
      admitted.push_back(t);
    }
    // 4 tenants x 4 banks == all 16 bank colors of the tiny machine.
    const AdmissionTicket fifth = adm.admit(TenantClass::kGuaranteed);
    EXPECT_FALSE(fifth.admitted);
    EXPECT_STREQ(fifth.reason, "bank colors exhausted");

    // The reject changed nothing: the same call keeps rejecting, and
    // the live population is unchanged.
    EXPECT_FALSE(adm.admit(TenantClass::kGuaranteed).admitted);
    EXPECT_EQ(adm.live_tenants(), 4u);

    // Placement alternated nodes (equal palette, equal headroom): two
    // tenants per node, never three.
    unsigned per_node[2] = {0, 0};
    for (const AdmissionTicket& t : admitted) per_node[t.node]++;
    EXPECT_EQ(per_node[0], 2u);
    EXPECT_EQ(per_node[1], 2u);

    const auto rep = k.check_invariants();
    EXPECT_TRUE(rep.ok) << rep.detail;
  }
}

TEST_F(AdmissionTest, BurstableTakesPartialGrantThenDowngrades) {
  os::Kernel k = make_kernel();
  AdmissionConfig cfg;
  cfg.burstable = {2, 1};
  AdmissionController adm(k, memsys_, cfg);

  AdmissionTicket first_guaranteed;
  for (int i = 0; i < 4; ++i) {
    const AdmissionTicket t = adm.admit(TenantClass::kGuaranteed);
    ASSERT_TRUE(t.admitted);
    if (i == 0) first_guaranteed = t;
  }
  // 16 banks taken: a burstable arrival cannot get colors, but with
  // downgrades allowed it still runs -- uncolored, and *accounted* as a
  // downgrade, not silently admitted at its requested class.
  const AdmissionTicket b = adm.admit(TenantClass::kBurstable);
  ASSERT_TRUE(b.admitted);
  EXPECT_TRUE(b.downgraded);
  EXPECT_EQ(b.requested, TenantClass::kBurstable);
  EXPECT_EQ(b.granted, TenantClass::kBestEffort);
  EXPECT_TRUE(b.banks.empty());

  // Free one guaranteed palette: the next burstable gets real colors
  // again (partial grant at most its budget).
  adm.teardown(b.task);
  ASSERT_TRUE(adm.teardown(first_guaranteed.task).known);
  const AdmissionTicket b2 = adm.admit(TenantClass::kBurstable);
  ASSERT_TRUE(b2.admitted) << b2.reason;
  EXPECT_FALSE(b2.downgraded);
  EXPECT_EQ(b2.banks.size(), 2u);
  EXPECT_EQ(b2.llcs.size(), 1u);

  const SloReport rep = adm.report();
  EXPECT_EQ(rep.cls[unsigned(TenantClass::kBurstable)].downgraded_away, 1u);
}

TEST_F(AdmissionTest, DowngradeDisabledMeansHardReject) {
  os::Kernel k = make_kernel();
  AdmissionConfig cfg;
  cfg.allow_downgrade = false;
  AdmissionController adm(k, memsys_, cfg);

  for (int i = 0; i < 4; ++i)
    ASSERT_TRUE(adm.admit(TenantClass::kGuaranteed).admitted);
  const AdmissionTicket b = adm.admit(TenantClass::kBurstable);
  EXPECT_FALSE(b.admitted);
  EXPECT_STREQ(b.reason, "bank colors exhausted");
}

TEST_F(AdmissionTest, BestEffortRunsUncoloredAndNeedsOnlyAnOnlineNode) {
  os::Kernel k = make_kernel();
  AdmissionController adm(k, memsys_);

  const AdmissionTicket t = adm.admit(TenantClass::kBestEffort);
  ASSERT_TRUE(t.admitted);
  EXPECT_TRUE(t.banks.empty());
  EXPECT_TRUE(t.llcs.empty());

  // Every node down: even best-effort has nowhere to run.
  k.set_node_online(0, false);
  k.set_node_online(1, false);
  const AdmissionTicket none = adm.admit(TenantClass::kBestEffort);
  EXPECT_FALSE(none.admitted);
  EXPECT_STREQ(none.reason, "no node online");
  k.set_node_online(0, true);
  k.set_node_online(1, true);
  EXPECT_TRUE(adm.admit(TenantClass::kBestEffort).admitted);
}

TEST_F(AdmissionTest, TeardownReturnsThePaletteAndLeaksNothing) {
  os::Kernel k = make_kernel();
  AdmissionController adm(k, memsys_);
  const uint64_t page = topo_.page_bytes();

  // Fill the machine, give every tenant a live working set.
  std::vector<AdmissionTicket> tenants;
  for (int i = 0; i < 4; ++i) {
    const AdmissionTicket t = adm.admit(TenantClass::kGuaranteed);
    ASSERT_TRUE(t.admitted);
    const os::VirtAddr base = k.mmap(t.task, 0, 8 * page, 0);
    ASSERT_NE(base, os::kMmapFailed);
    for (int p = 0; p < 8; ++p)
      ASSERT_EQ(k.touch(t.task, base + p * page, true).error,
                os::AllocError::kOk);
    tenants.push_back(t);
  }
  ASSERT_FALSE(adm.admit(TenantClass::kGuaranteed).admitted);

  // Mass teardown mid-life: every VMA, frame, magazine page and color
  // claim must come back without the tenants unmapping anything
  // themselves.
  for (const AdmissionTicket& t : tenants) {
    const auto rep = adm.teardown(t.task);
    ASSERT_TRUE(rep.known);
    EXPECT_TRUE(rep.reap.was_alive);
    EXPECT_EQ(rep.reap.vmas_unmapped, 1u);
    EXPECT_EQ(rep.reap.colors_cleared, 6u);  // 4 banks + 2 llcs
  }
  EXPECT_EQ(adm.live_tenants(), 0u);
  // Teardown is idempotent.
  EXPECT_FALSE(adm.teardown(tenants[0].task).known);

  // Exact frame accounting: nothing mapped, nothing parked, nothing
  // loose.
  const auto inv = k.check_invariants(0, /*stop_the_world=*/true);
  EXPECT_TRUE(inv.ok) << inv.detail;
  EXPECT_EQ(inv.mapped, 0u);
  EXPECT_EQ(inv.magazine_cached, 0u);
  EXPECT_EQ(inv.loose, 0u);

  // And the full palette is admittable again.
  for (int i = 0; i < 4; ++i)
    EXPECT_TRUE(adm.admit(TenantClass::kGuaranteed).admitted);
}

TEST_F(AdmissionTest, SloRollupConservesLadderCountersPerClass) {
  os::Kernel k = make_kernel();
  AdmissionController adm(k, memsys_);
  const uint64_t page = topo_.page_bytes();

  const TenantClass classes[] = {TenantClass::kGuaranteed,
                                 TenantClass::kBurstable,
                                 TenantClass::kBestEffort};
  for (const TenantClass cls : classes) {
    const AdmissionTicket t = adm.admit(cls);
    ASSERT_TRUE(t.admitted);
    const os::VirtAddr base = k.mmap(t.task, 0, 6 * page, 0);
    ASSERT_NE(base, os::kMmapFailed);
    std::vector<double> lat;
    for (int p = 0; p < 6; ++p) {
      const auto r = k.touch(t.task, base + p * page, true);
      ASSERT_EQ(r.error, os::AllocError::kOk);
      lat.push_back(static_cast<double>(r.fault_cycles));
    }
    adm.teardown(t.task, lat);
  }

  const SloReport rep = adm.report();
  EXPECT_TRUE(rep.ladder_conserved);
  for (unsigned c = 0; c < kNumTenantClasses; ++c) {
    const ClassSlo& slo = rep.cls[c];
    EXPECT_EQ(slo.completed, 1u);
    EXPECT_EQ(slo.page_faults, 6u);
    EXPECT_EQ(slo.page_faults, slo.colored_pages + slo.default_pages);
    EXPECT_EQ(slo.latency_samples, 6u);
    EXPECT_GT(slo.p50_latency, 0.0);
    EXPECT_GE(slo.p99_latency, slo.p50_latency);
    // A clean machine violates no one's isolation.
    EXPECT_EQ(slo.isolation_violations, 0u);
  }
  // Colored tenants allocated on their granted banks; the best-effort
  // tenant went down the default path.
  EXPECT_EQ(rep.cls[unsigned(TenantClass::kGuaranteed)].colored_pages, 6u);
  EXPECT_EQ(rep.cls[unsigned(TenantClass::kBestEffort)].colored_pages, 0u);
  EXPECT_EQ(rep.cls[unsigned(TenantClass::kBestEffort)].default_pages, 6u);
}

TEST_F(AdmissionTest, PlacementAvoidsTheBandwidthSaturatedNode) {
  os::Kernel k = make_kernel();
  AdmissionConfig cfg;
  cfg.channel_capacity = 64;  // saturate easily: 2 channels -> cap 128
  AdmissionController adm(k, memsys_, cfg);

  // Node 0's controller soaks up a streaming storm (distinct lines, so
  // every access reaches DRAM); node 1 stays idle.
  hw::Cycles now = 0;
  for (unsigned i = 0; i < 2000; ++i)
    now += memsys_.access(0, (i * 64) % map_.node_bytes(), false, now);
  adm.observe();
  EXPECT_LT(adm.node_headroom(0), 0.5);
  EXPECT_GT(adm.node_headroom(1), 0.9);

  // Equal free palettes, unequal headroom: tenants land on node 1.
  const AdmissionTicket t = adm.admit(TenantClass::kGuaranteed);
  ASSERT_TRUE(t.admitted);
  EXPECT_EQ(t.node, 1u);

  const AdmissionTicket b = adm.admit(TenantClass::kBurstable);
  ASSERT_TRUE(b.admitted);
  EXPECT_EQ(b.node, 1u);
}

TEST_F(AdmissionTest, GuardPrioritiesFollowGrantedClass) {
  os::Kernel k = make_kernel();
  ColorGuard guard(k, memsys_);
  AdmissionController adm(k, memsys_);
  adm.bind_guard(&guard);

  const AdmissionTicket g = adm.admit(TenantClass::kGuaranteed);
  const AdmissionTicket bu = adm.admit(TenantClass::kBurstable);
  const AdmissionTicket be = adm.admit(TenantClass::kBestEffort);
  ASSERT_TRUE(g.admitted && bu.admitted && be.admitted);
  EXPECT_EQ(guard.tenant_priority(g.task), 2u);
  EXPECT_EQ(guard.tenant_priority(bu.task), 1u);
  EXPECT_EQ(guard.tenant_priority(be.task), 0u);

  // Teardown resets the slot: the TaskId's next owner starts unshielded.
  adm.teardown(g.task);
  EXPECT_EQ(guard.tenant_priority(g.task), 0u);
}

// --- deadline-aware waitlist ---

TEST_F(AdmissionTest, WaitlistParksARejectUntilTeardownFreesThePalette) {
  os::Kernel k = make_kernel();
  AdmissionConfig cfg;
  cfg.waitlist = true;
  AdmissionController adm(k, memsys_, cfg);

  std::vector<AdmissionTicket> tenants;
  for (int i = 0; i < 4; ++i) {
    const AdmissionTicket t = adm.admit(TenantClass::kGuaranteed);
    ASSERT_TRUE(t.admitted);
    tenants.push_back(t);
  }
  // The palette is dry: the fifth arrival parks instead of bouncing.
  const AdmissionTicket fifth = adm.admit(TenantClass::kGuaranteed);
  EXPECT_FALSE(fifth.admitted);
  ASSERT_TRUE(fifth.waitlisted);
  EXPECT_NE(fifth.wait_id, 0u);
  EXPECT_STREQ(fifth.reason, "waitlisted");
  EXPECT_EQ(adm.waitlist_depth(), 1u);
  EXPECT_EQ(adm.claim(fifth.wait_id).state,
            AdmissionController::WaitOutcome::State::kPending);

  // A departure frees a full guaranteed palette: the teardown itself
  // retries the waitlist, so by the next poll the arrival is live.
  ASSERT_TRUE(adm.teardown(tenants[0].task).known);
  const AdmissionController::WaitOutcome w = adm.claim(fifth.wait_id);
  ASSERT_EQ(w.state, AdmissionController::WaitOutcome::State::kReady);
  EXPECT_TRUE(w.ticket.admitted);
  EXPECT_EQ(w.ticket.granted, TenantClass::kGuaranteed);
  EXPECT_EQ(w.ticket.banks.size(), 4u);
  EXPECT_EQ(w.ticket.wait_id, fifth.wait_id);
  EXPECT_EQ(adm.live_tenants(), 4u);
  // The handover is exactly-once.
  EXPECT_EQ(adm.claim(fifth.wait_id).state,
            AdmissionController::WaitOutcome::State::kGone);

  const SloReport rep = adm.report();
  const ClassSlo& slo = rep.cls[unsigned(TenantClass::kGuaranteed)];
  EXPECT_EQ(slo.waitlisted, 1u);
  EXPECT_EQ(slo.admitted_from_waitlist, 1u);
  EXPECT_EQ(slo.deadline_missed, 0u);
  const auto st = adm.stats().snapshot();
  EXPECT_EQ(st.waitlist_enqueued, 1u);
  EXPECT_EQ(st.waitlist_admitted, 1u);
}

TEST_F(AdmissionTest, WaitlistRetriesInDeadlineOrderNotArrivalOrder) {
  os::Kernel k = make_kernel();
  AdmissionConfig cfg;
  cfg.waitlist = true;
  AdmissionController adm(k, memsys_, cfg);

  std::vector<AdmissionTicket> tenants;
  for (int i = 0; i < 4; ++i)
    tenants.push_back(adm.admit(TenantClass::kGuaranteed));
  // Two parked arrivals; the *later* one is more urgent (EDF).
  const AdmissionTicket lax = adm.admit(TenantClass::kGuaranteed, 1000);
  const AdmissionTicket urgent = adm.admit(TenantClass::kGuaranteed, 10);
  ASSERT_TRUE(lax.waitlisted);
  ASSERT_TRUE(urgent.waitlisted);

  // One palette frees: it must go to the earlier deadline.
  adm.teardown(tenants[0].task);
  EXPECT_EQ(adm.claim(urgent.wait_id).state,
            AdmissionController::WaitOutcome::State::kReady);
  EXPECT_EQ(adm.claim(lax.wait_id).state,
            AdmissionController::WaitOutcome::State::kPending);
}

TEST_F(AdmissionTest, WaitlistDeadlineExpiryIsAMissAndAReject) {
  os::Kernel k = make_kernel();
  AdmissionConfig cfg;
  cfg.waitlist = true;
  AdmissionController adm(k, memsys_, cfg);

  for (int i = 0; i < 4; ++i)
    ASSERT_TRUE(adm.admit(TenantClass::kGuaranteed).admitted);
  const AdmissionTicket t = adm.admit(TenantClass::kGuaranteed, 2);
  ASSERT_TRUE(t.waitlisted);

  // The logical clock ticks once per admit/teardown/observe; three
  // observes push it past the two-tick deadline with no palette free.
  for (int i = 0; i < 3; ++i) adm.observe();
  EXPECT_EQ(adm.claim(t.wait_id).state,
            AdmissionController::WaitOutcome::State::kGone);
  EXPECT_EQ(adm.waitlist_depth(), 0u);

  const ClassSlo& slo = adm.report().cls[unsigned(TenantClass::kGuaranteed)];
  EXPECT_EQ(slo.deadline_missed, 1u);
  EXPECT_EQ(slo.rejected, 1u);  // a miss is a reject, just deferred
  EXPECT_EQ(adm.stats().snapshot().waitlist_expired, 1u);
}

TEST_F(AdmissionTest, CancelWaitDropsPendingAndTearsDownReadyOrphans) {
  os::Kernel k = make_kernel();
  AdmissionConfig cfg;
  cfg.waitlist = true;
  AdmissionController adm(k, memsys_, cfg);

  std::vector<AdmissionTicket> tenants;
  for (int i = 0; i < 4; ++i)
    tenants.push_back(adm.admit(TenantClass::kGuaranteed));

  // Cancel while still pending: the entry just disappears.
  const AdmissionTicket a = adm.admit(TenantClass::kGuaranteed);
  ASSERT_TRUE(a.waitlisted);
  EXPECT_TRUE(adm.cancel_wait(a.wait_id));
  EXPECT_FALSE(adm.cancel_wait(a.wait_id));  // idempotent
  EXPECT_EQ(adm.claim(a.wait_id).state,
            AdmissionController::WaitOutcome::State::kGone);

  // Cancel after the retry admitted it but before anyone claimed: the
  // orphan tenant is torn down, not leaked.
  const AdmissionTicket b = adm.admit(TenantClass::kGuaranteed);
  ASSERT_TRUE(b.waitlisted);
  adm.teardown(tenants[0].task);  // b is now live in ready_, unclaimed
  EXPECT_EQ(adm.live_tenants(), 4u);
  EXPECT_TRUE(adm.cancel_wait(b.wait_id));
  EXPECT_EQ(adm.live_tenants(), 3u);
  // Both cancels count: the pending drop and the ready-orphan teardown.
  EXPECT_EQ(adm.stats().snapshot().waitlist_cancelled, 2u);

  const auto inv = k.check_invariants(0, /*stop_the_world=*/true);
  EXPECT_TRUE(inv.ok) << inv.detail;
}

// --- pressure-driven elastic shrink ---

TEST_F(AdmissionTest, ElasticShrinkFreesALowerClassPaletteForAGuaranteedAdmit) {
  os::Kernel k = make_kernel();
  ColorGuard guard(k, memsys_, [] {
    GuardConfig g;
    g.enabled = true;
    g.min_epoch_accesses = ~0ull;
    return g;
  }());
  AdmissionConfig cfg;
  cfg.elastic_shrink = true;
  cfg.burstable = {8, 2};  // two burstables swallow all 16 banks
  AdmissionController adm(k, memsys_, cfg);
  adm.bind_guard(&guard);

  const AdmissionTicket b0 = adm.admit(TenantClass::kBurstable);
  const AdmissionTicket b1 = adm.admit(TenantClass::kBurstable);
  ASSERT_TRUE(b0.admitted && b1.admitted);
  ASSERT_EQ(b0.banks.size() + b1.banks.size(), 16u);

  // A guaranteed arrival finds zero free banks -- but a lower-class
  // tenant has spare colors above the floor, so the admit shrinks it
  // (immediate swap) and retries rather than bouncing.
  const AdmissionTicket g = adm.admit(TenantClass::kGuaranteed);
  ASSERT_TRUE(g.admitted) << g.reason;
  EXPECT_FALSE(g.downgraded);
  EXPECT_EQ(g.granted, TenantClass::kGuaranteed);
  EXPECT_EQ(g.banks.size(), 4u);

  const auto st = adm.stats().snapshot();
  EXPECT_EQ(st.shrink_requests, 1u);
  EXPECT_EQ(st.shrink_banks_freed, 4u);
  EXPECT_EQ(guard.stats().snapshot().shrinks_started, 1u);
  // The victim kept the floor and then some: 8 - 4 = 4 banks.
  const os::TaskId victim =
      k.task(b0.task).mem_color_list().size() == 4 ? b0.task : b1.task;
  EXPECT_EQ(k.task(victim).mem_color_list().size(), 4u);

  guard.run_epoch();  // drain the (empty) migration, close the shrink
  EXPECT_EQ(guard.stats().snapshot().shrinks_completed, 1u);
  const auto rep = k.check_invariants();
  EXPECT_TRUE(rep.ok) << rep.detail;
}

TEST_F(AdmissionTest, PriorityShieldNeverShrinksAnEqualOrHigherClass) {
  os::Kernel k = make_kernel();
  ColorGuard guard(k, memsys_, [] {
    GuardConfig g;
    g.enabled = true;
    g.min_epoch_accesses = ~0ull;
    return g;
  }());
  AdmissionConfig cfg;
  cfg.elastic_shrink = true;
  AdmissionController adm(k, memsys_, cfg);
  adm.bind_guard(&guard);

  for (int i = 0; i < 4; ++i)
    ASSERT_TRUE(adm.admit(TenantClass::kGuaranteed).admitted);

  // Guaranteed vs guaranteed: equal class, shielded -- hard reject, no
  // shrink attempted.
  const AdmissionTicket g = adm.admit(TenantClass::kGuaranteed);
  EXPECT_FALSE(g.admitted);
  EXPECT_STREQ(g.reason, "bank colors exhausted");
  // Burstable vs guaranteed: higher class holds the palette -- the
  // burstable downgrades (default policy) instead of robbing it.
  const AdmissionTicket b = adm.admit(TenantClass::kBurstable);
  ASSERT_TRUE(b.admitted);
  EXPECT_TRUE(b.downgraded);
  EXPECT_EQ(adm.stats().snapshot().shrink_requests, 0u);
  EXPECT_EQ(guard.stats().snapshot().shrinks_started, 0u);
}

// --- burstable re-promotion ---

TEST_F(AdmissionTest, PromotionRestoresAFullBurstableGrantWhenPaletteFrees) {
  os::Kernel k = make_kernel();
  AdmissionConfig cfg;
  cfg.promote_downgraded = true;
  AdmissionController adm(k, memsys_, cfg);

  std::vector<AdmissionTicket> tenants;
  for (int i = 0; i < 4; ++i)
    tenants.push_back(adm.admit(TenantClass::kGuaranteed));
  const AdmissionTicket b = adm.admit(TenantClass::kBurstable);
  ASSERT_TRUE(b.admitted);
  ASSERT_TRUE(b.downgraded);
  ASSERT_TRUE(k.task(b.task).mem_color_list().empty());

  // Space opens on the node the burstable already runs on (promotion
  // never moves a tenant cross-node): the next lifecycle event
  // re-promotes it to the full grant, all-or-nothing.
  const auto victim = std::find_if(
      tenants.begin(), tenants.end(),
      [&](const AdmissionTicket& t) { return t.node == b.node; });
  ASSERT_NE(victim, tenants.end());
  ASSERT_TRUE(adm.teardown(victim->task).known);
  EXPECT_EQ(k.task(b.task).mem_color_list().size(), 2u);
  EXPECT_EQ(k.task(b.task).llc_color_list().size(), 1u);
  const ClassSlo& slo = adm.report().cls[unsigned(TenantClass::kBurstable)];
  EXPECT_EQ(slo.promoted, 1u);
  EXPECT_EQ(adm.stats().snapshot().promotions, 1u);

  // The promotion is visible to a teardown audit: the grant comes back.
  const auto rep = adm.teardown(b.task);
  ASSERT_TRUE(rep.known);
  EXPECT_EQ(rep.reap.colors_cleared, 3u);  // 2 banks + 1 llc
  const auto inv = k.check_invariants(0, /*stop_the_world=*/true);
  EXPECT_TRUE(inv.ok) << inv.detail;
}

}  // namespace
}  // namespace tint::runtime

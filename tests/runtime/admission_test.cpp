// Unit tests for the AdmissionController (runtime/admission.h): class
// budgets (guaranteed all-or-nothing, burstable partial grants and
// downgrades, best-effort pass-through), deterministic behaviour at
// color exhaustion, bandwidth-aware node placement, crash-consistent
// teardown that returns the palette for re-admission, and the per-class
// SLO rollup with ladder-counter conservation. Runs under the `qos`
// ctest label.
#include "runtime/admission.h"

#include <gtest/gtest.h>

#include <vector>

#include "hw/pci_config.h"
#include "os/kernel.h"
#include "sim/memory_system.h"

namespace tint::runtime {
namespace {

// The tiny machine: 2 nodes x 8 bank colors (16 total), 16 LLC colors.
// With the default guaranteed budget {4 banks, 2 llcs}, four guaranteed
// tenants (two per node) exhaust every bank color.
class AdmissionTest : public ::testing::Test {
 protected:
  AdmissionTest()
      : topo_(hw::Topology::tiny()),
        pci_(hw::PciConfig::program_bios(topo_)),
        map_(pci_, topo_),
        memsys_(topo_, map_) {}

  os::Kernel make_kernel(os::KernelConfig cfg = {}, uint64_t seed = 42) {
    return os::Kernel(topo_, map_, cfg, seed);
  }

  hw::Topology topo_;
  hw::PciConfig pci_;
  hw::AddressMapping map_;
  sim::MemorySystem memsys_;
};

TEST_F(AdmissionTest, GuaranteedGetsFullBudgetOnOneNodeOrNothing) {
  os::Kernel k = make_kernel();
  AdmissionController adm(k, memsys_);

  const AdmissionTicket t = adm.admit(TenantClass::kGuaranteed);
  ASSERT_TRUE(t.admitted) << t.reason;
  EXPECT_EQ(t.granted, TenantClass::kGuaranteed);
  EXPECT_FALSE(t.downgraded);
  ASSERT_EQ(t.banks.size(), 4u);
  EXPECT_EQ(t.llcs.size(), 2u);
  // The whole bank grant lives on the placement node -- a guaranteed
  // palette is never split across controllers.
  for (const uint16_t b : t.banks)
    EXPECT_EQ(map_.node_of_bank_color(b), t.node);
  // And the TCB already carries the claim.
  for (const uint16_t b : t.banks)
    EXPECT_TRUE(k.task(t.task).has_mem_color(b));
  EXPECT_EQ(adm.live_tenants(), 1u);
}

TEST_F(AdmissionTest, ExhaustionRejectsGuaranteedDeterministically) {
  // Two identical machines must make identical decisions: admission is
  // a pure function of kernel + tenant state, with no hidden randomness.
  for (int run = 0; run < 2; ++run) {
    os::Kernel k = make_kernel();
    AdmissionController adm(k, memsys_);

    std::vector<AdmissionTicket> admitted;
    for (int i = 0; i < 4; ++i) {
      const AdmissionTicket t = adm.admit(TenantClass::kGuaranteed);
      ASSERT_TRUE(t.admitted) << "tenant " << i << ": " << t.reason;
      admitted.push_back(t);
    }
    // 4 tenants x 4 banks == all 16 bank colors of the tiny machine.
    const AdmissionTicket fifth = adm.admit(TenantClass::kGuaranteed);
    EXPECT_FALSE(fifth.admitted);
    EXPECT_STREQ(fifth.reason, "bank colors exhausted");

    // The reject changed nothing: the same call keeps rejecting, and
    // the live population is unchanged.
    EXPECT_FALSE(adm.admit(TenantClass::kGuaranteed).admitted);
    EXPECT_EQ(adm.live_tenants(), 4u);

    // Placement alternated nodes (equal palette, equal headroom): two
    // tenants per node, never three.
    unsigned per_node[2] = {0, 0};
    for (const AdmissionTicket& t : admitted) per_node[t.node]++;
    EXPECT_EQ(per_node[0], 2u);
    EXPECT_EQ(per_node[1], 2u);

    const auto rep = k.check_invariants();
    EXPECT_TRUE(rep.ok) << rep.detail;
  }
}

TEST_F(AdmissionTest, BurstableTakesPartialGrantThenDowngrades) {
  os::Kernel k = make_kernel();
  AdmissionConfig cfg;
  cfg.burstable = {2, 1};
  AdmissionController adm(k, memsys_, cfg);

  AdmissionTicket first_guaranteed;
  for (int i = 0; i < 4; ++i) {
    const AdmissionTicket t = adm.admit(TenantClass::kGuaranteed);
    ASSERT_TRUE(t.admitted);
    if (i == 0) first_guaranteed = t;
  }
  // 16 banks taken: a burstable arrival cannot get colors, but with
  // downgrades allowed it still runs -- uncolored, and *accounted* as a
  // downgrade, not silently admitted at its requested class.
  const AdmissionTicket b = adm.admit(TenantClass::kBurstable);
  ASSERT_TRUE(b.admitted);
  EXPECT_TRUE(b.downgraded);
  EXPECT_EQ(b.requested, TenantClass::kBurstable);
  EXPECT_EQ(b.granted, TenantClass::kBestEffort);
  EXPECT_TRUE(b.banks.empty());

  // Free one guaranteed palette: the next burstable gets real colors
  // again (partial grant at most its budget).
  adm.teardown(b.task);
  ASSERT_TRUE(adm.teardown(first_guaranteed.task).known);
  const AdmissionTicket b2 = adm.admit(TenantClass::kBurstable);
  ASSERT_TRUE(b2.admitted) << b2.reason;
  EXPECT_FALSE(b2.downgraded);
  EXPECT_EQ(b2.banks.size(), 2u);
  EXPECT_EQ(b2.llcs.size(), 1u);

  const SloReport rep = adm.report();
  EXPECT_EQ(rep.cls[unsigned(TenantClass::kBurstable)].downgraded_away, 1u);
}

TEST_F(AdmissionTest, DowngradeDisabledMeansHardReject) {
  os::Kernel k = make_kernel();
  AdmissionConfig cfg;
  cfg.allow_downgrade = false;
  AdmissionController adm(k, memsys_, cfg);

  for (int i = 0; i < 4; ++i)
    ASSERT_TRUE(adm.admit(TenantClass::kGuaranteed).admitted);
  const AdmissionTicket b = adm.admit(TenantClass::kBurstable);
  EXPECT_FALSE(b.admitted);
  EXPECT_STREQ(b.reason, "bank colors exhausted");
}

TEST_F(AdmissionTest, BestEffortRunsUncoloredAndNeedsOnlyAnOnlineNode) {
  os::Kernel k = make_kernel();
  AdmissionController adm(k, memsys_);

  const AdmissionTicket t = adm.admit(TenantClass::kBestEffort);
  ASSERT_TRUE(t.admitted);
  EXPECT_TRUE(t.banks.empty());
  EXPECT_TRUE(t.llcs.empty());

  // Every node down: even best-effort has nowhere to run.
  k.set_node_online(0, false);
  k.set_node_online(1, false);
  const AdmissionTicket none = adm.admit(TenantClass::kBestEffort);
  EXPECT_FALSE(none.admitted);
  EXPECT_STREQ(none.reason, "no node online");
  k.set_node_online(0, true);
  k.set_node_online(1, true);
  EXPECT_TRUE(adm.admit(TenantClass::kBestEffort).admitted);
}

TEST_F(AdmissionTest, TeardownReturnsThePaletteAndLeaksNothing) {
  os::Kernel k = make_kernel();
  AdmissionController adm(k, memsys_);
  const uint64_t page = topo_.page_bytes();

  // Fill the machine, give every tenant a live working set.
  std::vector<AdmissionTicket> tenants;
  for (int i = 0; i < 4; ++i) {
    const AdmissionTicket t = adm.admit(TenantClass::kGuaranteed);
    ASSERT_TRUE(t.admitted);
    const os::VirtAddr base = k.mmap(t.task, 0, 8 * page, 0);
    ASSERT_NE(base, os::kMmapFailed);
    for (int p = 0; p < 8; ++p)
      ASSERT_EQ(k.touch(t.task, base + p * page, true).error,
                os::AllocError::kOk);
    tenants.push_back(t);
  }
  ASSERT_FALSE(adm.admit(TenantClass::kGuaranteed).admitted);

  // Mass teardown mid-life: every VMA, frame, magazine page and color
  // claim must come back without the tenants unmapping anything
  // themselves.
  for (const AdmissionTicket& t : tenants) {
    const auto rep = adm.teardown(t.task);
    ASSERT_TRUE(rep.known);
    EXPECT_TRUE(rep.reap.was_alive);
    EXPECT_EQ(rep.reap.vmas_unmapped, 1u);
    EXPECT_EQ(rep.reap.colors_cleared, 6u);  // 4 banks + 2 llcs
  }
  EXPECT_EQ(adm.live_tenants(), 0u);
  // Teardown is idempotent.
  EXPECT_FALSE(adm.teardown(tenants[0].task).known);

  // Exact frame accounting: nothing mapped, nothing parked, nothing
  // loose.
  const auto inv = k.check_invariants(0, /*stop_the_world=*/true);
  EXPECT_TRUE(inv.ok) << inv.detail;
  EXPECT_EQ(inv.mapped, 0u);
  EXPECT_EQ(inv.magazine_cached, 0u);
  EXPECT_EQ(inv.loose, 0u);

  // And the full palette is admittable again.
  for (int i = 0; i < 4; ++i)
    EXPECT_TRUE(adm.admit(TenantClass::kGuaranteed).admitted);
}

TEST_F(AdmissionTest, SloRollupConservesLadderCountersPerClass) {
  os::Kernel k = make_kernel();
  AdmissionController adm(k, memsys_);
  const uint64_t page = topo_.page_bytes();

  const TenantClass classes[] = {TenantClass::kGuaranteed,
                                 TenantClass::kBurstable,
                                 TenantClass::kBestEffort};
  for (const TenantClass cls : classes) {
    const AdmissionTicket t = adm.admit(cls);
    ASSERT_TRUE(t.admitted);
    const os::VirtAddr base = k.mmap(t.task, 0, 6 * page, 0);
    ASSERT_NE(base, os::kMmapFailed);
    std::vector<double> lat;
    for (int p = 0; p < 6; ++p) {
      const auto r = k.touch(t.task, base + p * page, true);
      ASSERT_EQ(r.error, os::AllocError::kOk);
      lat.push_back(static_cast<double>(r.fault_cycles));
    }
    adm.teardown(t.task, lat);
  }

  const SloReport rep = adm.report();
  EXPECT_TRUE(rep.ladder_conserved);
  for (unsigned c = 0; c < kNumTenantClasses; ++c) {
    const ClassSlo& slo = rep.cls[c];
    EXPECT_EQ(slo.completed, 1u);
    EXPECT_EQ(slo.page_faults, 6u);
    EXPECT_EQ(slo.page_faults, slo.colored_pages + slo.default_pages);
    EXPECT_EQ(slo.latency_samples, 6u);
    EXPECT_GT(slo.p50_latency, 0.0);
    EXPECT_GE(slo.p99_latency, slo.p50_latency);
    // A clean machine violates no one's isolation.
    EXPECT_EQ(slo.isolation_violations, 0u);
  }
  // Colored tenants allocated on their granted banks; the best-effort
  // tenant went down the default path.
  EXPECT_EQ(rep.cls[unsigned(TenantClass::kGuaranteed)].colored_pages, 6u);
  EXPECT_EQ(rep.cls[unsigned(TenantClass::kBestEffort)].colored_pages, 0u);
  EXPECT_EQ(rep.cls[unsigned(TenantClass::kBestEffort)].default_pages, 6u);
}

TEST_F(AdmissionTest, PlacementAvoidsTheBandwidthSaturatedNode) {
  os::Kernel k = make_kernel();
  AdmissionConfig cfg;
  cfg.channel_capacity = 64;  // saturate easily: 2 channels -> cap 128
  AdmissionController adm(k, memsys_, cfg);

  // Node 0's controller soaks up a streaming storm (distinct lines, so
  // every access reaches DRAM); node 1 stays idle.
  hw::Cycles now = 0;
  for (unsigned i = 0; i < 2000; ++i)
    now += memsys_.access(0, (i * 64) % map_.node_bytes(), false, now);
  adm.observe();
  EXPECT_LT(adm.node_headroom(0), 0.5);
  EXPECT_GT(adm.node_headroom(1), 0.9);

  // Equal free palettes, unequal headroom: tenants land on node 1.
  const AdmissionTicket t = adm.admit(TenantClass::kGuaranteed);
  ASSERT_TRUE(t.admitted);
  EXPECT_EQ(t.node, 1u);

  const AdmissionTicket b = adm.admit(TenantClass::kBurstable);
  ASSERT_TRUE(b.admitted);
  EXPECT_EQ(b.node, 1u);
}

TEST_F(AdmissionTest, GuardPrioritiesFollowGrantedClass) {
  os::Kernel k = make_kernel();
  ColorGuard guard(k, memsys_);
  AdmissionController adm(k, memsys_);
  adm.bind_guard(&guard);

  const AdmissionTicket g = adm.admit(TenantClass::kGuaranteed);
  const AdmissionTicket bu = adm.admit(TenantClass::kBurstable);
  const AdmissionTicket be = adm.admit(TenantClass::kBestEffort);
  ASSERT_TRUE(g.admitted && bu.admitted && be.admitted);
  EXPECT_EQ(guard.tenant_priority(g.task), 2u);
  EXPECT_EQ(guard.tenant_priority(bu.task), 1u);
  EXPECT_EQ(guard.tenant_priority(be.task), 0u);

  // Teardown resets the slot: the TaskId's next owner starts unshielded.
  adm.teardown(g.task);
  EXPECT_EQ(guard.tenant_priority(g.task), 0u);
}

}  // namespace
}  // namespace tint::runtime

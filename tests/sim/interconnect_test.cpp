#include "sim/interconnect.h"

#include <gtest/gtest.h>

namespace tint::sim {
namespace {

class InterconnectTest : public ::testing::Test {
 protected:
  InterconnectTest()
      : topo_(hw::Topology::opteron6128()), ic_(topo_, timing_) {}
  hw::Topology topo_;
  hw::Timing timing_;
  Interconnect ic_;
};

TEST_F(InterconnectTest, LocalDeliveryIsImmediate) {
  EXPECT_EQ(ic_.deliver_request(1000, /*core=*/0, /*mem_node=*/0), 1000u);
  EXPECT_EQ(ic_.stats().local_transfers, 1u);
}

TEST_F(InterconnectTest, OnChipRemoteAddsHop2) {
  EXPECT_EQ(ic_.deliver_request(1000, 0, 1), 1000 + timing_.hop2_extra);
  EXPECT_EQ(ic_.stats().onchip_transfers, 1u);
}

TEST_F(InterconnectTest, CrossSocketAddsHop3) {
  EXPECT_EQ(ic_.deliver_request(1000, 0, 2), 1000 + timing_.hop3_extra);
  EXPECT_EQ(ic_.deliver_request(1000, 0, 3), 1000 + timing_.hop3_extra);
  EXPECT_EQ(ic_.stats().offchip_transfers, 2u);
}

TEST_F(InterconnectTest, ResponseSymmetric) {
  const Cycles t1 = ic_.deliver_response(500, /*mem_node=*/2, /*core=*/0);
  EXPECT_EQ(t1, 500 + timing_.hop3_extra);
  const Cycles t2 = ic_.deliver_response(500, 0, 0);
  EXPECT_EQ(t2, 500u);
}

TEST_F(InterconnectTest, LatencyOrderingLocalOnchipOffchip) {
  const Cycles local = ic_.deliver_request(0, 0, 0);
  const Cycles onchip = ic_.deliver_request(0, 0, 1);
  const Cycles offchip = ic_.deliver_request(0, 0, 2);
  EXPECT_LT(local, onchip);
  EXPECT_LT(onchip, offchip);
}

TEST_F(InterconnectTest, LinkWaitTracksWouldHaveQueued) {
  // Two simultaneous off-chip transfers: the second records would-have-
  // waited cycles in the stats (latency itself is fixed per hop).
  ic_.deliver_request(0, 0, 2);
  ic_.deliver_request(0, 0, 2);
  EXPECT_GT(ic_.stats().link_wait, 0u);
}

TEST_F(InterconnectTest, LocalTrafficNeverTouchesLink) {
  for (int i = 0; i < 10; ++i) ic_.deliver_request(i * 10, 0, 0);
  EXPECT_EQ(ic_.stats().link_wait, 0u);
  EXPECT_EQ(ic_.stats().offchip_transfers, 0u);
}

TEST_F(InterconnectTest, ResetStats) {
  ic_.deliver_request(0, 0, 2);
  ic_.reset_stats();
  EXPECT_EQ(ic_.stats().offchip_transfers, 0u);
  EXPECT_EQ(ic_.stats().link_wait, 0u);
}

TEST(InterconnectSingleSocket, NoOffchipPossible) {
  hw::Topology t = hw::Topology::tiny();  // one socket, two nodes
  hw::Timing tm;
  Interconnect ic(t, tm);
  // Node 1 from core 0 is on-chip (2 hops), never 3.
  EXPECT_EQ(ic.deliver_request(0, 0, 1), tm.hop2_extra);
  EXPECT_EQ(ic.stats().offchip_transfers, 0u);
}

}  // namespace
}  // namespace tint::sim

// Parameterized contention properties of the timing model: the
// first-order effects the paper's coloring removes must appear (and
// scale) in the simulator for any topology.
//
//  C1. Two interleaved streams on ONE bank are slower than on private
//      banks (row-buffer interference, Fig. 8).
//  C2. Aggregate throughput saturates: N streams on one channel take
//      longer per access than N streams spread over channels.
//  C3. Remote streams are slower than local streams by at least the
//      round-trip hop latency.
//  C4. Contention effects are monotone in thread count.
#include <gtest/gtest.h>

#include <functional>
#include <memory>

#include "sim/memory_system.h"

namespace tint::sim {
namespace {

struct MachineCase {
  const char* name;
  hw::Topology (*make)();
};

std::string case_name(const ::testing::TestParamInfo<MachineCase>& info) {
  return info.param.name;
}

class ContentionProperty : public ::testing::TestWithParam<MachineCase> {
 protected:
  ContentionProperty()
      : topo_(GetParam().make()),
        pci_(hw::PciConfig::program_bios(topo_)),
        map_(pci_, topo_) {}

  // Average latency of `streams` interleaved line-write streams, each on
  // its own core, each over fresh rows; bank/channel chosen per stream
  // by the callback.
  double interleaved_latency(
      unsigned streams, unsigned accesses,
      const std::function<hw::DramCoord(unsigned stream, uint64_t j)>& place) {
    MemorySystem ms(topo_, map_, timing_);
    std::vector<Cycles> clock(streams, 0);
    uint64_t total = 0, n = 0;
    std::vector<uint64_t> issued(streams, 0);
    for (unsigned k = 0; k < streams * accesses; ++k) {
      // earliest-first interleaving, like the engine
      unsigned pick = 0;
      for (unsigned s = 1; s < streams; ++s)
        if (clock[s] < clock[pick]) pick = s;
      const hw::DramCoord c = place(pick, issued[pick]++);
      const Cycles lat =
          ms.access(pick % topo_.num_cores(), map_.compose(c), true,
                    clock[pick]);
      clock[pick] += lat;
      total += lat;
      ++n;
    }
    return static_cast<double>(total) / static_cast<double>(n);
  }

  // A fresh line for stream s's j-th access within bank `bank`,
  // spreading over the LLC-color dimension first so even small machines
  // (few rows per node) never revisit a line or escape the node range.
  hw::DramCoord fresh(unsigned s, uint64_t j, unsigned bank) const {
    const unsigned colors = topo_.num_llc_colors();
    const uint64_t lines_per_row_color = topo_.page_bytes() / topo_.line_bytes;
    hw::DramCoord c;
    c.bank = bank;
    c.column = (j % lines_per_row_color) * topo_.line_bytes;
    c.llc_color = static_cast<unsigned>((j / lines_per_row_color) % colors);
    const uint64_t span = std::max<uint64_t>(map_.rows_per_node() / 4, 2);
    c.row = 1 + s * span + (j / (lines_per_row_color * colors)) % (span - 1);
    return c;
  }

  hw::Topology topo_;
  hw::PciConfig pci_;
  hw::AddressMapping map_;
  hw::Timing timing_;
};

TEST_P(ContentionProperty, C1_BankSharingSlower) {
  const auto shared = [&](unsigned s, uint64_t j) { return fresh(s, j, 0); };
  const auto priv = [&](unsigned s, uint64_t j) {
    return fresh(s, j, s % topo_.banks_per_rank);
  };
  const double lat_shared = interleaved_latency(2, 2000, shared);
  const double lat_priv = interleaved_latency(2, 2000, priv);
  EXPECT_GT(lat_shared, 1.5 * lat_priv);
}

TEST_P(ContentionProperty, C2_ChannelSpreadingHelps) {
  if (topo_.channels_per_node < 2) GTEST_SKIP();
  const unsigned streams = 4;
  const auto one_channel = [&](unsigned s, uint64_t j) {
    hw::DramCoord c = fresh(s, j, s % topo_.banks_per_rank);
    c.channel = 0;
    return c;
  };
  const auto spread = [&](unsigned s, uint64_t j) {
    hw::DramCoord c = one_channel(s, j);
    c.channel = s % topo_.channels_per_node;
    return c;
  };
  EXPECT_GT(interleaved_latency(streams, 2000, one_channel),
            interleaved_latency(streams, 2000, spread));
}

TEST_P(ContentionProperty, C3_RemoteCostsAtLeastRoundTrip) {
  if (topo_.num_nodes() < 2) GTEST_SKIP();
  const auto at_node = [&](unsigned node) {
    return [&, node](unsigned, uint64_t j) {
      hw::DramCoord c = fresh(0, j, 0);
      c.node = node;
      return c;
    };
  };
  const double local = interleaved_latency(1, 1000, at_node(0));
  const double remote = interleaved_latency(1, 1000, at_node(1));
  const unsigned hops = topo_.hops(0, 1);
  EXPECT_GE(remote, local + 2 * timing_.interconnect_extra(hops) - 1);
}

TEST_P(ContentionProperty, C4_MonotoneInStreamCount) {
  // All streams on one bank: per-access latency must not decrease as
  // streams are added.
  const auto shared = [&](unsigned s, uint64_t j) { return fresh(s, j, 0); };
  double prev = 0;
  for (unsigned streams = 1; streams <= 4; ++streams) {
    const double lat = interleaved_latency(streams, 1500, shared);
    EXPECT_GE(lat, prev * 0.999) << streams << " streams";
    prev = lat;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Machines, ContentionProperty,
    ::testing::Values(MachineCase{"opteron", &hw::Topology::opteron6128},
                      MachineCase{"tiny", &hw::Topology::tiny}),
    case_name);

}  // namespace
}  // namespace tint::sim

// DramFaultModel: faults live in DRAM coordinates and are decoded
// through the same PCI-derived AddressMapping the coloring kernel uses,
// so an injected bank fault covers exactly one Eq. 1 bank color.
#include "sim/dram_fault.h"

#include <gtest/gtest.h>

#include "hw/pci_config.h"

namespace tint::sim {
namespace {

class DramFaultTest : public ::testing::Test {
 protected:
  DramFaultTest()
      : topo_(hw::Topology::tiny()),
        pci_(hw::PciConfig::program_bios(topo_)),
        map_(pci_, topo_) {}

  hw::Topology topo_;
  hw::PciConfig pci_;
  hw::AddressMapping map_;
};

TEST_F(DramFaultTest, EmptyModelIsHealthyAndFree) {
  DramFaultModel m(map_);
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.frame_health(0), FrameHealth::kHealthy);
  // The empty fast path never touches the stats (one atomic load).
  EXPECT_EQ(m.stats().snapshot().probes, 0u);
}

TEST_F(DramFaultTest, BankFaultCoversExactlyOneBankColor) {
  DramFaultModel m(map_);
  const uint64_t page = topo_.page_bytes();
  m.inject_bank_of(/*frame_base=*/0, FrameHealth::kFlaky);
  EXPECT_FALSE(m.empty());
  const unsigned target = map_.bank_color(0);

  // Every frame of the machine agrees with the Eq. 1 color decode:
  // faulty iff it shares the injected frame's bank color.
  for (uint64_t pfn = 0; pfn < topo_.total_pages(); ++pfn) {
    const hw::PhysAddr base = pfn * page;
    const bool faulty = m.frame_health(base) != FrameHealth::kHealthy;
    EXPECT_EQ(faulty, map_.bank_color(base) == target) << pfn;
  }
}

TEST_F(DramFaultTest, RowFaultSelectsSingleRowStripe) {
  DramFaultModel m(map_);
  const uint64_t page = topo_.page_bytes();
  const hw::PhysAddr target = 5 * page;
  m.inject_row_of(target, FrameHealth::kDead);
  const auto want = map_.decode(target);

  EXPECT_EQ(m.frame_health(target), FrameHealth::kDead);
  for (uint64_t pfn = 0; pfn < topo_.total_pages(); ++pfn) {
    const hw::PhysAddr base = pfn * page;
    const auto c = map_.decode(base);
    const bool same_row = c.node == want.node && c.channel == want.channel &&
                          c.rank == want.rank && c.bank == want.bank &&
                          c.row == want.row;
    EXPECT_EQ(m.frame_health(base) == FrameHealth::kDead, same_row) << pfn;
  }
}

TEST_F(DramFaultTest, WorstSeverityWinsOnOverlap) {
  DramFaultModel m(map_);
  const uint64_t page = topo_.page_bytes();
  // Whole bank flaky, one row of it dead.
  m.inject_bank_of(0, FrameHealth::kFlaky);
  m.inject_row_of(0, FrameHealth::kDead);
  EXPECT_EQ(m.frame_health(0), FrameHealth::kDead);

  // Another frame of the same bank (different row) stays flaky.
  const unsigned target = map_.bank_color(0);
  const uint64_t row0 = map_.decode(0).row;
  for (uint64_t pfn = 1; pfn < topo_.total_pages(); ++pfn) {
    const hw::PhysAddr base = pfn * page;
    if (map_.bank_color(base) == target && map_.decode(base).row != row0) {
      EXPECT_EQ(m.frame_health(base), FrameHealth::kFlaky);
      break;
    }
  }
}

TEST_F(DramFaultTest, WildcardRegionCoversWholeNode) {
  DramFaultModel m(map_);
  DramFaultRegion region;
  region.node = 1;
  region.severity = FrameHealth::kFlaky;  // channel/rank/bank/row wildcard
  m.inject(region);

  const uint64_t page = topo_.page_bytes();
  for (uint64_t pfn = 0; pfn < topo_.total_pages(); ++pfn) {
    const hw::PhysAddr base = pfn * page;
    EXPECT_EQ(m.frame_health(base) == FrameHealth::kFlaky,
              map_.node_of(base) == 1u)
        << pfn;
  }
}

TEST_F(DramFaultTest, ClearRestoresHealthAndCountsProbes) {
  DramFaultModel m(map_);
  m.inject_bank_of(0, FrameHealth::kDead);
  ASSERT_EQ(m.frame_health(0), FrameHealth::kDead);
  const auto s = m.stats().snapshot();
  EXPECT_EQ(s.probes, 1u);
  EXPECT_EQ(s.hits, 1u);

  m.clear();
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.num_regions(), 0u);
  EXPECT_EQ(m.frame_health(0), FrameHealth::kHealthy);
}

}  // namespace
}  // namespace tint::sim

// Per-socket LLC organization (Topology::llc_per_socket): the paper's
// Fig. 1/2 draw one L3 per socket while its text treats the 12 MB as
// globally shared; both organizations are supported and must behave.
#include <gtest/gtest.h>

#include <memory>

#include "sim/memory_system.h"

namespace tint::sim {
namespace {

class SocketLlcTest : public ::testing::Test {
 protected:
  SocketLlcTest() {
    topo_ = hw::Topology::opteron6128();
    topo_.llc_per_socket = true;
    pci_ = std::make_unique<hw::PciConfig>(hw::PciConfig::program_bios(topo_));
    map_ = std::make_unique<hw::AddressMapping>(*pci_, topo_);
    ms_ = std::make_unique<MemorySystem>(topo_, *map_, timing_);
  }

  hw::PhysAddr addr(unsigned node, uint64_t row) {
    hw::DramCoord c;
    c.node = node;
    c.row = row;
    return map_->compose(c);
  }

  hw::Topology topo_;
  std::unique_ptr<hw::PciConfig> pci_;
  std::unique_ptr<hw::AddressMapping> map_;
  hw::Timing timing_;
  std::unique_ptr<MemorySystem> ms_;
};

TEST_F(SocketLlcTest, SameSocketCoresShareAnLlc) {
  const auto a = addr(0, 1);
  ms_->access(0, a, false, 0);  // core 0, socket 0
  // Core 5 is node 1, still socket 0: its LLC lookup hits.
  const Cycles lat = ms_->access(5, a, false, 100000);
  EXPECT_EQ(lat, timing_.llc_hit);
}

TEST_F(SocketLlcTest, CrossSocketCoresDoNotShareLlc) {
  const auto a = addr(0, 1);
  ms_->access(0, a, false, 0);  // fills socket-0 LLC
  // Core 8 is socket 1: its own LLC misses, goes to DRAM.
  const Cycles lat = ms_->access(8, a, false, 100000);
  EXPECT_GT(lat, timing_.llc_hit);
  EXPECT_EQ(ms_->core_stats(8).llc_hits, 0u);
  EXPECT_EQ(ms_->core_stats(8).dram_accesses, 1u);
}

TEST_F(SocketLlcTest, LlcAccessorReturnsSocketInstance) {
  const auto a = addr(0, 1);
  ms_->access(0, a, false, 0);
  EXPECT_TRUE(ms_->llc(0).contains(a));
  EXPECT_TRUE(ms_->llc(7).contains(a));   // same socket
  EXPECT_FALSE(ms_->llc(8).contains(a));  // other socket
}

TEST_F(SocketLlcTest, SocketIsolationRemovesCrossSocketInterference) {
  // A socket-1 thrasher cannot evict a socket-0 resident line.
  const auto victim = addr(0, 1);
  ms_->access(0, victim, false, 0);
  Cycles now = 1000000;
  for (uint64_t i = 0; i < 20000; ++i)
    now += ms_->access(8, addr(2, 1 + (i / 32) % 500) + (i % 32) * 128, true, now);
  EXPECT_TRUE(ms_->llc(0).contains(victim));
  EXPECT_EQ(ms_->llc(0).stats().cross_requester_evictions, 0u);
}

TEST_F(SocketLlcTest, DefaultTopologyIsGloballyShared) {
  hw::Topology t = hw::Topology::opteron6128();
  EXPECT_FALSE(t.llc_per_socket);
  hw::PciConfig pci = hw::PciConfig::program_bios(t);
  hw::AddressMapping map(pci, t);
  MemorySystem ms(t, map, timing_);
  hw::DramCoord c;
  c.node = 0;
  c.row = 1;
  const auto a = map.compose(c);
  ms.access(0, a, false, 0);
  const Cycles lat = ms.access(8, a, false, 100000);  // other socket: hit
  EXPECT_EQ(lat, timing_.llc_hit);
}

}  // namespace
}  // namespace tint::sim

#include "sim/cache.h"

#include <gtest/gtest.h>

namespace tint::sim {
namespace {

constexpr unsigned kLine = 128;

TEST(Cache, ColdMissThenHit) {
  Cache c(16, 2, kLine);
  EXPECT_FALSE(c.access(0x1000, false).hit);
  EXPECT_TRUE(c.access(0x1000, false).hit);
  EXPECT_TRUE(c.access(0x1000 + kLine - 1, false).hit);  // same line
  EXPECT_EQ(c.stats().accesses, 3u);
  EXPECT_EQ(c.stats().hits, 2u);
  EXPECT_EQ(c.stats().misses, 1u);
}

TEST(Cache, SetIndexingByLine) {
  Cache c(16, 1, kLine);
  EXPECT_EQ(c.set_of(0), 0u);
  EXPECT_EQ(c.set_of(kLine), 1u);
  EXPECT_EQ(c.set_of(16 * kLine), 0u);  // wraps
}

TEST(Cache, LruEvictionOrder) {
  Cache c(1, 2, kLine);  // one set, two ways
  c.access(0 * kLine, false);
  c.access(1 * kLine, false);
  c.access(0 * kLine, false);           // 0 is now MRU
  const auto r = c.access(2 * kLine, false);  // evicts 1 (LRU)
  EXPECT_TRUE(r.evicted);
  EXPECT_EQ(r.evicted_line, 1u * kLine);
  EXPECT_TRUE(c.contains(0 * kLine));
  EXPECT_TRUE(c.contains(2 * kLine));
  EXPECT_FALSE(c.contains(1 * kLine));
}

TEST(Cache, WriteMakesLineDirtyAndEvictionReportsIt) {
  Cache c(1, 1, kLine);
  c.access(0, true);
  const auto r = c.access(kLine * 1, false);  // conflict in the single way
  EXPECT_TRUE(r.evicted);
  EXPECT_TRUE(r.evicted_dirty);
  EXPECT_EQ(c.stats().dirty_evictions, 1u);
}

TEST(Cache, ReadOnlyEvictionIsClean) {
  Cache c(1, 1, kLine);
  c.access(0, false);
  const auto r = c.access(kLine, false);
  EXPECT_TRUE(r.evicted);
  EXPECT_FALSE(r.evicted_dirty);
}

TEST(Cache, HitOnCleanLineThenWriteDirties) {
  Cache c(1, 1, kLine);
  c.access(0, false);
  c.access(0, true);  // hit, marks dirty
  const auto r = c.access(kLine, false);
  EXPECT_TRUE(r.evicted_dirty);
}

TEST(Cache, PerRequesterAttribution) {
  Cache c(1, 1, kLine, /*requesters=*/2);
  c.access(0, false, 0);          // requester 0 installs
  const auto r = c.access(kLine, false, 1);  // requester 1 evicts it
  EXPECT_TRUE(r.evicted);
  EXPECT_EQ(c.stats().cross_requester_evictions, 1u);
  EXPECT_EQ(c.requester_stats(0).misses, 1u);
  EXPECT_EQ(c.requester_stats(1).misses, 1u);
  EXPECT_EQ(c.requester_stats(1).cross_requester_evictions, 1u);
}

TEST(Cache, SameRequesterEvictionNotCross) {
  Cache c(1, 1, kLine, 2);
  c.access(0, false, 1);
  c.access(kLine, false, 1);
  EXPECT_EQ(c.stats().cross_requester_evictions, 0u);
}

TEST(Cache, InstallDoesNotCountAccess) {
  Cache c(4, 2, kLine);
  const auto r = c.install(0, true);
  EXPECT_FALSE(r.hit);
  EXPECT_EQ(c.stats().accesses, 0u);
  EXPECT_TRUE(c.contains(0));
  // Installing again marks hit, still no access counted.
  EXPECT_TRUE(c.install(0, false).hit);
  EXPECT_EQ(c.stats().accesses, 0u);
}

TEST(Cache, InstallDirtyCascades) {
  Cache c(1, 1, kLine);
  c.install(0, true);
  const auto r = c.install(kLine, false);
  EXPECT_TRUE(r.evicted);
  EXPECT_TRUE(r.evicted_dirty);
  EXPECT_EQ(r.evicted_line, 0u);
}

TEST(Cache, InvalidateRemovesAndReportsDirty) {
  Cache c(4, 2, kLine);
  c.access(0, true);
  EXPECT_TRUE(c.invalidate(0));   // was dirty
  EXPECT_FALSE(c.contains(0));
  EXPECT_FALSE(c.invalidate(0));  // already gone
  c.access(kLine, false);
  EXPECT_FALSE(c.invalidate(kLine));  // clean
}

TEST(Cache, ClearResetsContentsAndStats) {
  Cache c(4, 2, kLine);
  c.access(0, true);
  c.clear();
  EXPECT_FALSE(c.contains(0));
  EXPECT_EQ(c.stats().accesses, 0u);
}

TEST(Cache, ClearCanPreserveStats) {
  Cache c(4, 2, kLine);
  c.access(0, true);
  c.clear(/*clear_stats=*/false);
  EXPECT_FALSE(c.contains(0));
  EXPECT_EQ(c.stats().accesses, 1u);
}

TEST(Cache, HitRateComputation) {
  Cache c(4, 2, kLine);
  c.access(0, false);
  c.access(0, false);
  c.access(0, false);
  c.access(0, false);
  EXPECT_DOUBLE_EQ(c.stats().hit_rate(), 0.75);
}

TEST(Cache, FullAssociativitySweepNoFalseEvictions) {
  // Fill a 4-way set exactly; no eviction until the 5th distinct line.
  Cache c(8, 4, kLine);
  const uint64_t stride = 8 * kLine;  // same set each time
  for (int i = 0; i < 4; ++i) EXPECT_FALSE(c.access(i * stride, false).evicted);
  EXPECT_TRUE(c.access(4 * stride, false).evicted);
  // All other sets untouched.
  EXPECT_EQ(c.stats().evictions, 1u);
}

TEST(Cache, DistinctTagsPerSetKeptApart) {
  Cache c(2, 1, kLine);
  c.access(0 * kLine, false);  // set 0
  c.access(1 * kLine, false);  // set 1
  EXPECT_TRUE(c.contains(0));
  EXPECT_TRUE(c.contains(kLine));
  EXPECT_EQ(c.stats().evictions, 0u);
}

TEST(CacheDeathTest, RejectsNonPow2Sets) {
  EXPECT_DEATH(Cache(3, 2, kLine), "power of two");
}

}  // namespace
}  // namespace tint::sim

#include "sim/memory_system.h"

#include <gtest/gtest.h>

#include <memory>

namespace tint::sim {
namespace {

class MemorySystemTest : public ::testing::Test {
 protected:
  MemorySystemTest()
      : topo_(hw::Topology::opteron6128()),
        pci_(hw::PciConfig::program_bios(topo_)),
        map_(pci_, topo_),
        ms_(std::make_unique<MemorySystem>(topo_, map_, timing_)) {}

  // Composes a line address in a given node/bank/row.
  hw::PhysAddr addr(unsigned node, unsigned bank, uint64_t row,
                    uint64_t column = 0) {
    hw::DramCoord c;
    c.node = node;
    c.bank = bank;
    c.row = row;
    c.column = column;
    return map_.compose(c);
  }

  hw::Topology topo_;
  hw::PciConfig pci_;
  hw::AddressMapping map_;
  hw::Timing timing_;
  std::unique_ptr<MemorySystem> ms_;
};

TEST_F(MemorySystemTest, SecondAccessHitsL1) {
  const auto a = addr(0, 0, 1);
  const Cycles miss = ms_->access(0, a, false, 0);
  EXPECT_GT(miss, timing_.llc_hit);
  const Cycles hit = ms_->access(0, a, false, 10000);
  EXPECT_EQ(hit, timing_.l1_hit);
  EXPECT_EQ(ms_->core_stats(0).l1_hits, 1u);
}

TEST_F(MemorySystemTest, SameLineDifferentOffsetHits) {
  const auto a = addr(0, 0, 1);
  ms_->access(0, a, false, 0);
  EXPECT_EQ(ms_->access(0, a + 64, false, 10000), timing_.l1_hit);
}

TEST_F(MemorySystemTest, LocalFasterThanRemote) {
  const Cycles local = ms_->access(0, addr(0, 0, 1), false, 0);
  const Cycles onchip = ms_->access(0, addr(1, 0, 1), false, 100000);
  const Cycles offchip = ms_->access(0, addr(2, 0, 1), false, 200000);
  EXPECT_LT(local, onchip);
  EXPECT_LT(onchip, offchip);
  // Round trip pays the hop latency twice.
  EXPECT_EQ(offchip - local, 2 * timing_.hop3_extra);
}

TEST_F(MemorySystemTest, RemoteAccessCounted) {
  ms_->access(0, addr(0, 0, 1), false, 0);
  ms_->access(0, addr(3, 0, 1), false, 100000);
  EXPECT_EQ(ms_->core_stats(0).dram_accesses, 2u);
  EXPECT_EQ(ms_->core_stats(0).remote_dram_accesses, 1u);
  EXPECT_DOUBLE_EQ(ms_->core_stats(0).dram_remote_fraction(), 0.5);
}

TEST_F(MemorySystemTest, DramRowHitAfterL2EvictionPressure) {
  // Access enough distinct lines in one row to punch through L1/L2 but
  // keep the DRAM row open: later lines are row hits.
  Cycles now = 0;
  for (uint64_t col = 0; col < 16; ++col) {
    now += ms_->access(0, addr(0, 0, 1, col * 128), false, now) + 1;
  }
  const DramStats& ds = ms_->controller(0).stats();
  EXPECT_EQ(ds.accesses, 16u);
  EXPECT_EQ(ds.row_hits, 15u);  // first was row_empty
}

TEST_F(MemorySystemTest, LlcHitBetweenL2AndDram) {
  // Evict the line from private L1/L2 but not from the LLC, then
  // re-access: it must be served by the LLC. The aliasing lines share
  // the victim's L1/L2 set (same address bits 7..15) but use *even* LLC
  // colors != 0, so they land in different LLC sets.
  const auto compose_even_color = [&](unsigned color, uint64_t row) {
    hw::DramCoord c;
    c.node = 0;
    c.bank = 0;
    c.row = row;
    c.llc_color = color;
    return map_.compose(c);
  };
  const auto victim = addr(0, 0, 1);  // LLC color 0
  Cycles now = ms_->access(0, victim, false, 0);
  for (uint64_t i = 0; i < 64; ++i) {
    const unsigned color = 2 + 2 * static_cast<unsigned>(i % 15);
    now += ms_->access(0, compose_even_color(color, 1 + i / 15), false, now);
  }
  const Cycles lat = ms_->access(0, victim, false, now + 1000);
  EXPECT_EQ(lat, timing_.llc_hit);
}

TEST_F(MemorySystemTest, SharedLlcVisibleToOtherCore) {
  const auto a = addr(0, 0, 1);
  ms_->access(0, a, false, 0);
  // Core 1's private caches miss, but the shared LLC hits.
  const Cycles lat = ms_->access(1, a, false, 10000);
  EXPECT_EQ(lat, timing_.llc_hit);
  EXPECT_EQ(ms_->core_stats(1).llc_hits, 1u);
}

TEST_F(MemorySystemTest, DirtyLlcEvictionGeneratesWriteback) {
  // Fill one LLC set with writes, then overflow it: the dirty victim
  // must reach its home controller as a writeback.
  const unsigned assoc = topo_.llc_ways;
  Cycles now = 0;
  // All in LLC color 0 / same set: vary row (bits 22+) only.
  for (unsigned i = 0; i <= assoc + 2; ++i) {
    now += ms_->access(0, addr(0, 0, 100 + i), true, now) + 1;
  }
  uint64_t wbs = 0;
  for (unsigned n = 0; n < topo_.num_nodes(); ++n)
    wbs += ms_->controller(n).stats().writebacks;
  EXPECT_GT(wbs, 0u);
}

TEST_F(MemorySystemTest, StatsPerCoreIndependent) {
  ms_->access(0, addr(0, 0, 1), false, 0);
  ms_->access(5, addr(1, 0, 1), false, 1000);
  EXPECT_EQ(ms_->core_stats(0).accesses, 1u);
  EXPECT_EQ(ms_->core_stats(5).accesses, 1u);
  EXPECT_EQ(ms_->core_stats(3).accesses, 0u);
}

TEST_F(MemorySystemTest, AvgLatencyTracksTotals) {
  ms_->access(0, addr(0, 0, 1), false, 0);
  ms_->access(0, addr(0, 0, 1), false, 10000);
  const CoreStats& cs = ms_->core_stats(0);
  EXPECT_EQ(cs.accesses, 2u);
  EXPECT_GT(cs.avg_latency(), 0.0);
  EXPECT_EQ(cs.total_latency,
            static_cast<Cycles>(cs.avg_latency() * 2));
}

TEST_F(MemorySystemTest, ResetClearsCachesAndStats) {
  const auto a = addr(0, 0, 1);
  ms_->access(0, a, false, 0);
  ms_->reset();
  EXPECT_EQ(ms_->core_stats(0).accesses, 0u);
  // After reset the access misses again (caches dropped).
  EXPECT_GT(ms_->access(0, a, false, 1000000), timing_.llc_hit);
}

TEST_F(MemorySystemTest, WriteMarksLlcDirtyThroughHierarchy) {
  const auto a = addr(0, 0, 7);
  ms_->access(0, a, true, 0);
  EXPECT_TRUE(ms_->llc().contains(a));
}

TEST_F(MemorySystemTest, LatencyNeverZero) {
  Cycles now = 0;
  for (int i = 0; i < 100; ++i) {
    const Cycles lat =
        ms_->access(static_cast<unsigned>(i % 16), addr(0, 0, 1 + i), i % 2,
                    now);
    EXPECT_GE(lat, timing_.l1_hit);
    now += lat;
  }
}

}  // namespace
}  // namespace tint::sim

#include "sim/dram.h"

#include <gtest/gtest.h>

namespace tint::sim {
namespace {

hw::Timing timing() {
  hw::Timing t;
  t.refresh_interval = 0;  // disable unless a test wants it
  return t;
}

TEST(Bank, FirstAccessIsRowEmpty) {
  Bank b;
  DramStats s;
  const auto t = timing();
  EXPECT_EQ(b.access_row(5, 100, t, s), t.row_empty);
  EXPECT_EQ(s.row_empties, 1u);
  EXPECT_TRUE(b.row_open());
  EXPECT_EQ(b.open_row(), 5u);
}

TEST(Bank, SameRowIsHit) {
  Bank b;
  DramStats s;
  const auto t = timing();
  b.access_row(5, 100, t, s);
  EXPECT_EQ(b.access_row(5, 200, t, s), t.row_hit);
  EXPECT_EQ(s.row_hits, 1u);
}

TEST(Bank, DifferentRowIsConflict) {
  Bank b;
  DramStats s;
  const auto t = timing();
  b.access_row(5, 100, t, s);
  EXPECT_EQ(b.access_row(6, 200, t, s), t.row_conflict);
  EXPECT_EQ(s.row_conflicts, 1u);
  EXPECT_EQ(b.open_row(), 6u);
}

TEST(Bank, InterleavedRowsAllConflict) {
  // The paper's motivating case (Fig. 8): two tasks ping-pong on one
  // bank, each evicting the other's row.
  Bank b;
  DramStats s;
  const auto t = timing();
  b.access_row(1, 0, t, s);
  for (int i = 1; i <= 10; ++i) b.access_row(i % 2 ? 2 : 1, i * 100, t, s);
  EXPECT_EQ(s.row_conflicts, 10u);
  EXPECT_EQ(s.row_hits, 0u);
}

TEST(Bank, RefreshClosesRow) {
  Bank b;
  DramStats s;
  hw::Timing t = timing();
  t.refresh_interval = 1000;
  b.access_row(5, 100, t, s);
  // Crossing the next refresh epoch closes the open row => row_empty.
  EXPECT_EQ(b.access_row(5, 1100, t, s), t.row_empty);
  EXPECT_EQ(s.refresh_closures, 1u);
}

TEST(Bank, NoRefreshWithinEpoch) {
  Bank b;
  DramStats s;
  hw::Timing t = timing();
  t.refresh_interval = 100000;
  b.access_row(5, 100, t, s);
  EXPECT_EQ(b.access_row(5, 200, t, s), t.row_hit);
  EXPECT_EQ(s.refresh_closures, 0u);
}

TEST(Bank, CloseRowForcesActivate) {
  Bank b;
  DramStats s;
  const auto t = timing();
  b.access_row(5, 100, t, s);
  b.close_row();
  EXPECT_EQ(b.access_row(5, 200, t, s), t.row_empty);
}

TEST(Bank, ReadyAtBookkeeping) {
  Bank b;
  EXPECT_EQ(b.ready_at(), 0u);
  b.set_ready_at(123);
  EXPECT_EQ(b.ready_at(), 123u);
}

TEST(BankArray, IndexingDistinctBanks) {
  BankArray arr(2, 2, 8);
  EXPECT_EQ(arr.size(), 32u);
  hw::DramCoord a, b;
  a.channel = 0;
  a.rank = 0;
  a.bank = 0;
  b.channel = 1;
  b.rank = 1;
  b.bank = 7;
  DramStats s;
  const auto t = timing();
  arr.bank(a).access_row(1, 0, t, s);
  EXPECT_FALSE(arr.bank(b).row_open());  // untouched
  EXPECT_TRUE(arr.bank(a).row_open());
}

TEST(BankArray, AllCoordinatesDistinct) {
  BankArray arr(2, 2, 4);
  DramStats s;
  const auto t = timing();
  // Open a unique row in every bank; verify none clobbers another.
  unsigned row = 1;
  for (unsigned ch = 0; ch < 2; ++ch)
    for (unsigned rk = 0; rk < 2; ++rk)
      for (unsigned bk = 0; bk < 4; ++bk) {
        hw::DramCoord c;
        c.channel = ch;
        c.rank = rk;
        c.bank = bk;
        arr.bank(c).access_row(row++, 0, t, s);
      }
  row = 1;
  for (unsigned ch = 0; ch < 2; ++ch)
    for (unsigned rk = 0; rk < 2; ++rk)
      for (unsigned bk = 0; bk < 4; ++bk) {
        hw::DramCoord c;
        c.channel = ch;
        c.rank = rk;
        c.bank = bk;
        EXPECT_EQ(arr.bank(c).open_row(), row++);
      }
}

TEST(DramStats, RowHitRate) {
  DramStats s;
  s.accesses = 10;
  s.row_hits = 7;
  EXPECT_DOUBLE_EQ(s.row_hit_rate(), 0.7);
  EXPECT_DOUBLE_EQ(DramStats{}.row_hit_rate(), 0.0);
}

}  // namespace
}  // namespace tint::sim

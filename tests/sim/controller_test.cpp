#include "sim/controller.h"

#include <gtest/gtest.h>

namespace tint::sim {
namespace {

hw::Timing timing() {
  hw::Timing t;
  t.refresh_interval = 0;
  return t;
}

hw::DramCoord coord(unsigned ch, unsigned bank, uint64_t row) {
  hw::DramCoord c;
  c.node = 0;
  c.channel = ch;
  c.rank = 0;
  c.bank = bank;
  c.row = row;
  return c;
}

TEST(MemoryController, UncontendedLatencyIsEmptyRowPlusBurst) {
  const auto t = timing();
  MemoryController mc(0, 2, 1, 8, t);
  const Cycles done = mc.service(1000, coord(0, 0, 5), false);
  EXPECT_EQ(done, 1000 + t.row_empty + t.burst);
  EXPECT_EQ(mc.stats().queue_wait, 0u);
}

TEST(MemoryController, RowHitFasterThanConflict) {
  const auto t = timing();
  MemoryController mc(0, 2, 1, 8, t);
  Cycles now = 1000;
  now = mc.service(now, coord(0, 0, 5), false);
  const Cycles hit_done = mc.service(now, coord(0, 0, 5), false);
  const Cycles hit_lat = hit_done - now;
  now = hit_done;
  const Cycles conf_done = mc.service(now, coord(0, 0, 6), false);
  EXPECT_LT(hit_lat, conf_done - now);
}

TEST(MemoryController, SameBankSerializes) {
  const auto t = timing();
  MemoryController mc(0, 2, 1, 8, t);
  const Cycles d1 = mc.service(0, coord(0, 0, 1), false);
  // Second request to the same bank at time 0 waits for d1.
  const Cycles d2 = mc.service(0, coord(0, 0, 1), false);
  EXPECT_GE(d2, d1 + t.row_hit + t.burst);
  EXPECT_GT(mc.stats().queue_wait, 0u);
  EXPECT_GT(mc.stats().bank_wait, 0u);
}

TEST(MemoryController, DifferentBanksOverlapExceptChannel) {
  const auto t = timing();
  MemoryController mc(0, 2, 1, 8, t);
  const Cycles d1 = mc.service(0, coord(0, 0, 1), false);
  const Cycles d2 = mc.service(0, coord(0, 1, 1), false);  // same channel
  // Bank phases overlap; only the burst serializes on the channel.
  EXPECT_EQ(d2, d1 + t.burst);
  EXPECT_EQ(mc.stats().bank_wait, 0u);
  EXPECT_GT(mc.stats().channel_wait, 0u);
}

TEST(MemoryController, DifferentChannelsFullyParallel) {
  const auto t = timing();
  MemoryController mc(0, 2, 1, 8, t);
  const Cycles d1 = mc.service(0, coord(0, 0, 1), false);
  const Cycles d2 = mc.service(0, coord(1, 0, 1), false);
  EXPECT_EQ(d1, d2);
  EXPECT_EQ(mc.stats().queue_wait, 0u);
}

TEST(MemoryController, WritebackConsumesChannelOnly) {
  const auto t = timing();
  MemoryController mc(0, 2, 1, 8, t);
  mc.enqueue_writeback(0, coord(0, 0, 1));
  EXPECT_EQ(mc.stats().writebacks, 1u);
  EXPECT_EQ(mc.stats().accesses, 0u);  // not a demand access
  // A demand read right after finds its bank/row state untouched (row
  // still closed -> row_empty); the writeback burst (done by cycle 30)
  // ends before the demand's data phase, so no extra wait either.
  const Cycles done = mc.service(0, coord(0, 0, 1), false);
  EXPECT_EQ(done, t.row_empty + t.burst);
  EXPECT_EQ(mc.stats().row_empties, 1u);
  // But a writeback whose burst overlaps a demand's data phase delays
  // that demand: wb occupies [done+100, done+130), demand data would
  // start at done+110 -> pushed to done+130, finishing at done+160.
  mc.enqueue_writeback(done + 100, coord(0, 1, 9));
  const Cycles done2 = mc.service(done, coord(0, 2, 1), false);
  EXPECT_EQ(done2, done + 100 + t.burst + t.burst);
}

TEST(MemoryController, StatsAccumulateAndReset) {
  const auto t = timing();
  MemoryController mc(0, 2, 1, 8, t);
  mc.service(0, coord(0, 0, 1), false);
  mc.service(10000, coord(0, 0, 1), false);
  EXPECT_EQ(mc.stats().accesses, 2u);
  EXPECT_EQ(mc.stats().row_hits, 1u);
  mc.reset_stats();
  EXPECT_EQ(mc.stats().accesses, 0u);
}

TEST(MemoryController, NodeIdStored) {
  MemoryController mc(3, 2, 2, 8, timing());
  EXPECT_EQ(mc.node_id(), 3u);
}

}  // namespace
}  // namespace tint::sim

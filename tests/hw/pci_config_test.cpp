#include "hw/pci_config.h"

#include <gtest/gtest.h>

namespace tint::hw {
namespace {

TEST(PciConfig, NodeRangesAreContiguousAndDisjoint) {
  const Topology t = Topology::opteron6128();
  const PciConfig cfg = PciConfig::program_bios(t);
  const auto& ranges = cfg.dram_ranges();
  ASSERT_EQ(ranges.size(), 4u);
  uint64_t expected_base = 0;
  for (unsigned n = 0; n < 4; ++n) {
    EXPECT_TRUE(ranges[n].enabled);
    EXPECT_EQ(ranges[n].dst_node, n);
    EXPECT_EQ(ranges[n].base_64k << 16, expected_base);
    expected_base += t.dram_bytes_per_node;
    EXPECT_EQ((ranges[n].limit_64k << 16) + (1 << 16), expected_base);
  }
}

TEST(PciConfig, FieldLayoutIsPageColorable) {
  // Every color-determining field must sit at or above the page offset
  // so a 4 KB frame has exactly one color (Algorithm 2 requirement).
  const Topology t = Topology::opteron6128();
  const PciConfig cfg = PciConfig::program_bios(t);
  EXPECT_GE(cfg.bank_address_mapping().lo, t.page_bits);
  EXPECT_GE(cfg.llc_color_field().lo, t.page_bits);
  EXPECT_GE(cfg.controller_select_low().lo, t.page_bits);
  EXPECT_GE(cfg.cs_base_rank().lo, t.page_bits);
}

TEST(PciConfig, OpteronFieldPositions) {
  // Documented default layout: bank 12..14, LLC 15..19, channel 20,
  // rank 21, row 22+.
  const PciConfig cfg = PciConfig::program_bios(Topology::opteron6128());
  EXPECT_EQ(cfg.bank_address_mapping().lo, 12);
  EXPECT_EQ(cfg.bank_address_mapping().width, 3);
  EXPECT_EQ(cfg.llc_color_field().lo, 15);
  EXPECT_EQ(cfg.llc_color_field().width, 5);
  EXPECT_EQ(cfg.controller_select_low().lo, 20);
  EXPECT_EQ(cfg.controller_select_low().width, 1);
  EXPECT_EQ(cfg.cs_base_rank().lo, 21);
  EXPECT_EQ(cfg.cs_base_rank().width, 1);
  EXPECT_EQ(cfg.row_lo_bit(), 22);
}

TEST(PciConfig, FieldsDoNotOverlap) {
  const PciConfig cfg = PciConfig::program_bios(Topology::opteron6128());
  const BitField fields[] = {cfg.bank_address_mapping(), cfg.llc_color_field(),
                             cfg.controller_select_low(), cfg.cs_base_rank()};
  uint64_t used = 0;
  for (const BitField& f : fields) {
    const uint64_t mask = ((1ULL << f.width) - 1) << f.lo;
    EXPECT_EQ(used & mask, 0u) << "field overlap at lo=" << unsigned(f.lo);
    used |= mask;
  }
  // Row bits start right above the last field.
  EXPECT_EQ(used >> cfg.row_lo_bit(), 0u);
}

TEST(PciConfig, BitFieldExtractInsertRoundTrip) {
  const BitField f{15, 5};
  for (uint64_t v = 0; v < 32; ++v) {
    EXPECT_EQ(f.extract(f.insert(v)), v);
  }
  // Extract ignores unrelated bits.
  EXPECT_EQ(f.extract(f.insert(21) | 0xFFF), 21u);
}

TEST(PciConfig, SingleRankConsumesNoBits) {
  Topology t = Topology::tiny();
  ASSERT_EQ(t.ranks_per_channel, 1u);
  const PciConfig cfg = PciConfig::program_bios(t);
  EXPECT_EQ(cfg.cs_base_rank().width, 0);
  // Zero-width extract is always 0.
  EXPECT_EQ(cfg.cs_base_rank().extract(~0ULL), 0u);
}

TEST(PciConfigDeathTest, RejectsZeroRowBits) {
  Topology t = Topology::tiny();
  t.dram_bytes_per_node = 512 << 10;  // 512 KB: no row bits above geometry
  EXPECT_DEATH(PciConfig::program_bios(t), "");
}

}  // namespace
}  // namespace tint::hw

#include "hw/address_mapping.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace tint::hw {
namespace {

class AddressMappingTest : public ::testing::Test {
 protected:
  AddressMappingTest()
      : topo_(Topology::opteron6128()),
        pci_(PciConfig::program_bios(topo_)),
        map_(pci_, topo_) {}

  Topology topo_;
  PciConfig pci_;
  AddressMapping map_;
};

TEST_F(AddressMappingTest, GeometryFromRegisters) {
  EXPECT_EQ(map_.num_nodes(), 4u);
  EXPECT_EQ(map_.num_bank_colors(), 128u);
  EXPECT_EQ(map_.num_llc_colors(), 32u);
  EXPECT_EQ(map_.banks_per_node(), 32u);
}

TEST_F(AddressMappingTest, NodeOfFollowsBaseLimitRanges) {
  const uint64_t nb = topo_.dram_bytes_per_node;
  EXPECT_EQ(map_.node_of(0), 0u);
  EXPECT_EQ(map_.node_of(nb - 1), 0u);
  EXPECT_EQ(map_.node_of(nb), 1u);
  EXPECT_EQ(map_.node_of(3 * nb + 12345), 3u);
}

TEST_F(AddressMappingTest, ComposeDecodeRoundTrip) {
  for (unsigned node = 0; node < 4; ++node) {
    for (unsigned ch = 0; ch < 2; ++ch) {
      for (unsigned rank = 0; rank < 2; ++rank) {
        for (unsigned bank = 0; bank < 8; bank += 3) {
          DramCoord c;
          c.node = node;
          c.channel = ch;
          c.rank = rank;
          c.bank = bank;
          c.row = 37;
          c.column = 0x123;
          c.llc_color = 21;
          const DramCoord d = map_.decode(map_.compose(c));
          EXPECT_EQ(d.node, c.node);
          EXPECT_EQ(d.channel, c.channel);
          EXPECT_EQ(d.rank, c.rank);
          EXPECT_EQ(d.bank, c.bank);
          EXPECT_EQ(d.row, c.row);
          EXPECT_EQ(d.column, c.column);
          EXPECT_EQ(d.llc_color, c.llc_color);
        }
      }
    }
  }
}

TEST_F(AddressMappingTest, Eq1BankColorIsDenseAndComplete) {
  // Eq. 1: bc = ((node*NC + channel)*NR + rank)*NB + bank must cover
  // 0..127 exactly once over all coordinate combinations.
  std::set<unsigned> colors;
  for (unsigned node = 0; node < 4; ++node)
    for (unsigned ch = 0; ch < 2; ++ch)
      for (unsigned rank = 0; rank < 2; ++rank)
        for (unsigned bank = 0; bank < 8; ++bank) {
          DramCoord c;
          c.node = node;
          c.channel = ch;
          c.rank = rank;
          c.bank = bank;
          colors.insert(map_.bank_color(map_.compose(c)));
        }
  EXPECT_EQ(colors.size(), 128u);
  EXPECT_EQ(*colors.begin(), 0u);
  EXPECT_EQ(*colors.rbegin(), 127u);
}

TEST_F(AddressMappingTest, BankColorNodeMajor) {
  // Node n owns the dense color range [n*32, (n+1)*32).
  DramCoord c;
  c.node = 2;
  c.channel = 1;
  c.rank = 1;
  c.bank = 7;
  const unsigned bc = map_.bank_color(map_.compose(c));
  EXPECT_EQ(map_.node_of_bank_color(bc), 2u);
  EXPECT_GE(bc, 64u);
  EXPECT_LT(bc, 96u);
  EXPECT_EQ(map_.make_bank_color(2, map_.local_bank_index(bc)), bc);
}

TEST_F(AddressMappingTest, ColorsConstantWithinFrame) {
  const uint64_t frame = 777 * map_.page_bytes();
  const FrameColors fc = map_.frame_colors(frame);
  for (uint64_t off = 0; off < map_.page_bytes(); off += 64) {
    EXPECT_EQ(map_.bank_color(frame + off), fc.bank_color);
    EXPECT_EQ(map_.llc_color(frame + off), fc.llc_color);
  }
}

TEST_F(AddressMappingTest, LlcColorUsesConfiguredBits) {
  // Default layout: LLC color = bits 15..19.
  EXPECT_EQ(map_.llc_color(0), 0u);
  EXPECT_EQ(map_.llc_color(1ULL << 15), 1u);
  EXPECT_EQ(map_.llc_color(21ULL << 15), 21u);
  EXPECT_EQ(map_.llc_color((1ULL << 20)), 0u);  // channel bit, not color
}

TEST_F(AddressMappingTest, ConsecutiveFramesInterleaveBanks) {
  // The bank field sits directly above the page offset: consecutive
  // frames must cycle through the banks (fine-grained interleave).
  for (uint64_t pfn = 0; pfn < 16; ++pfn) {
    const FrameColors fc = map_.frame_colors_of_pfn(pfn);
    EXPECT_EQ(fc.bank_color % 8, pfn % 8);
  }
}

TEST_F(AddressMappingTest, EveryBankLlcComboRealizable) {
  // The color_list matrix of Algorithm 1 is dense: every (bank, LLC)
  // pair exists in physical memory. Scan one node's worth of frames.
  std::set<std::pair<unsigned, unsigned>> combos;
  const uint64_t frames_per_node = topo_.pages_per_node();
  for (uint64_t pfn = 0; pfn < frames_per_node && combos.size() < 32u * 32u;
       ++pfn) {
    const FrameColors fc = map_.frame_colors_of_pfn(pfn);
    combos.insert({fc.bank_color, fc.llc_color});
  }
  EXPECT_EQ(combos.size(), 32u * 32u);  // all node-0 banks x all LLC colors
}

TEST_F(AddressMappingTest, LlcSetWithinRange) {
  const unsigned sets = topo_.llc_sets();
  for (uint64_t a = 0; a < (1 << 22); a += 12345)
    EXPECT_LT(map_.llc_set(a, sets, topo_.line_bytes), sets);
}

TEST_F(AddressMappingTest, LlcColorPartitionsSets) {
  // Two addresses with different LLC colors can never map to the same
  // LLC set (colors are disjoint set groups).
  const unsigned sets = topo_.llc_sets();
  for (uint64_t a = 0; a < (1 << 21); a += 4096 + 128) {
    for (uint64_t b = a + 4096; b < a + (1 << 18); b += 8192 + 256) {
      if (map_.llc_color(a) != map_.llc_color(b)) {
        EXPECT_NE(map_.llc_set(a, sets, topo_.line_bytes),
                  map_.llc_set(b, sets, topo_.line_bytes))
            << "a=" << a << " b=" << b;
      }
    }
  }
}

TEST_F(AddressMappingTest, FrameColorsOfPfnMatchesByteAddress) {
  for (uint64_t pfn : {0ULL, 1ULL, 4095ULL, 123456ULL}) {
    const FrameColors a = map_.frame_colors_of_pfn(pfn);
    const FrameColors b = map_.frame_colors(pfn * map_.page_bytes());
    EXPECT_EQ(a.bank_color, b.bank_color);
    EXPECT_EQ(a.llc_color, b.llc_color);
    EXPECT_EQ(a.node, b.node);
  }
}

TEST(AddressMappingTiny, TinyMachineDecodes) {
  const Topology t = Topology::tiny();
  const PciConfig pci = PciConfig::program_bios(t);
  const AddressMapping map(pci, t);
  EXPECT_EQ(map.num_nodes(), 2u);
  EXPECT_EQ(map.num_bank_colors(), t.num_bank_colors());
  EXPECT_EQ(map.num_llc_colors(), 16u);
  // Round trip on the second node.
  DramCoord c;
  c.node = 1;
  c.channel = 1;
  c.bank = 3;
  c.row = 5;
  const DramCoord d = map.decode(map.compose(c));
  EXPECT_EQ(d.node, 1u);
  EXPECT_EQ(d.channel, 1u);
  EXPECT_EQ(d.bank, 3u);
  EXPECT_EQ(d.row, 5u);
}

TEST(AddressMappingDeathTest, FrameColorsRequiresAlignment) {
  const Topology t = Topology::tiny();
  const PciConfig pci = PciConfig::program_bios(t);
  const AddressMapping map(pci, t);
  EXPECT_DEATH(map.frame_colors(123), "aligned");
}

}  // namespace
}  // namespace tint::hw

#include "hw/topology.h"

#include <gtest/gtest.h>

namespace tint::hw {
namespace {

TEST(Topology, Opteron6128MatchesPaperPlatform) {
  // Section IV: dual socket, 16 cores, 4 memory nodes; Section III.A:
  // 128 bank colors (2^7) and 32 LLC colors (2^5).
  const Topology t = Topology::opteron6128();
  EXPECT_EQ(t.num_cores(), 16u);
  EXPECT_EQ(t.num_nodes(), 4u);
  EXPECT_EQ(t.cores_per_node, 4u);
  EXPECT_EQ(t.num_bank_colors(), 128u);
  EXPECT_EQ(t.num_llc_colors(), 32u);
  EXPECT_EQ(t.banks_per_node(), 32u);
  EXPECT_EQ(t.line_bytes, 128u);
  EXPECT_EQ(t.page_bytes(), 4096u);
}

TEST(Topology, TinyIsValidAndSmall) {
  const Topology t = Topology::tiny();
  EXPECT_EQ(t.num_cores(), 4u);
  EXPECT_EQ(t.num_nodes(), 2u);
  EXPECT_LE(t.total_dram_bytes(), 64ULL << 20);
}

TEST(Topology, DerivedQuantitiesConsistent) {
  const Topology t = Topology::opteron6128();
  EXPECT_EQ(t.total_pages(), t.total_dram_bytes() / t.page_bytes());
  EXPECT_EQ(t.pages_per_node() * t.num_nodes(), t.total_pages());
  EXPECT_EQ(t.num_bank_colors(), t.banks_per_node() * t.num_nodes());
  EXPECT_EQ(t.llc_sets() * t.llc_ways * t.line_bytes, t.llc_bytes);
}

TEST(Topology, NodeOfCoreMapping) {
  const Topology t = Topology::opteron6128();
  EXPECT_EQ(t.node_of_core(0), 0u);
  EXPECT_EQ(t.node_of_core(3), 0u);
  EXPECT_EQ(t.node_of_core(4), 1u);
  EXPECT_EQ(t.node_of_core(15), 3u);
}

TEST(Topology, SocketMapping) {
  const Topology t = Topology::opteron6128();
  EXPECT_EQ(t.socket_of_node(0), 0u);
  EXPECT_EQ(t.socket_of_node(1), 0u);
  EXPECT_EQ(t.socket_of_node(2), 1u);
  EXPECT_EQ(t.socket_of_node(3), 1u);
  EXPECT_EQ(t.socket_of_core(0), 0u);
  EXPECT_EQ(t.socket_of_core(8), 1u);
}

TEST(Topology, HopDistancesPerSectionIV) {
  // 1 hop within a node, 2 hops across nodes of a socket, 3 across
  // sockets.
  const Topology t = Topology::opteron6128();
  EXPECT_EQ(t.hops(0, 0), 1u);
  EXPECT_EQ(t.hops(0, 1), 2u);
  EXPECT_EQ(t.hops(0, 2), 3u);
  EXPECT_EQ(t.hops(0, 3), 3u);
  EXPECT_EQ(t.hops(15, 3), 1u);
  EXPECT_EQ(t.hops(15, 2), 2u);
  EXPECT_EQ(t.hops(15, 0), 3u);
}

TEST(Topology, TimingOrderingSane) {
  const Timing tm;
  EXPECT_LT(tm.l1_hit, tm.l2_hit);
  EXPECT_LT(tm.l2_hit, tm.llc_hit);
  EXPECT_LT(tm.llc_hit, tm.row_hit + tm.burst);
  EXPECT_LT(tm.row_hit, tm.row_empty);
  EXPECT_LT(tm.row_empty, tm.row_conflict);
  EXPECT_LT(tm.hop2_extra, tm.hop3_extra);
  EXPECT_EQ(tm.interconnect_extra(1), 0u);
  EXPECT_EQ(tm.interconnect_extra(2), tm.hop2_extra);
  EXPECT_EQ(tm.interconnect_extra(3), tm.hop3_extra);
}

TEST(TopologyDeathTest, ValidateRejectsNonPow2Banks) {
  Topology t = Topology::opteron6128();
  t.banks_per_rank = 3;
  EXPECT_DEATH(t.validate(), "powers of two");
}

TEST(TopologyDeathTest, ValidateRejectsTinyLlc) {
  Topology t = Topology::opteron6128();
  t.llc_bytes = 64 << 10;  // 64 KB cannot host 32 page colors
  t.llc_ways = 4;
  EXPECT_DEATH(t.validate(), "");
}

TEST(Topology, DescribeMentionsGeometry) {
  const std::string d = Topology::opteron6128().describe();
  EXPECT_NE(d.find("128 bank colors"), std::string::npos);
}

}  // namespace
}  // namespace tint::hw

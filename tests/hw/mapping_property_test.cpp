// Address-mapping invariants swept over varied machine geometries
// (parameterized): the coloring machinery must be correct for any
// power-of-two DRAM organization, not just the Opteron profile.
//
//  M1. compose/decode round-trips for every coordinate.
//  M2. Eq. 1 is a bijection onto [0, NN*NC*NR*NB).
//  M3. colors are frame-constant (page-coloring precondition).
//  M4. distinct LLC colors never share an LLC set.
//  M5. the dense color matrix is fully realizable in physical memory.
#include <gtest/gtest.h>

#include <set>

#include "hw/address_mapping.h"

namespace tint::hw {
namespace {

struct Geometry {
  const char* name;
  unsigned sockets, nodes_per_socket, cores_per_node;
  unsigned channels, ranks, banks;
  uint64_t node_mb;
  unsigned llc_mb, llc_ways, llc_color_bits;
};

std::string geom_name(const ::testing::TestParamInfo<Geometry>& info) {
  return info.param.name;
}

Topology make(const Geometry& g) {
  Topology t;
  t.sockets = g.sockets;
  t.nodes_per_socket = g.nodes_per_socket;
  t.cores_per_node = g.cores_per_node;
  t.channels_per_node = g.channels;
  t.ranks_per_channel = g.ranks;
  t.banks_per_rank = g.banks;
  t.dram_bytes_per_node = g.node_mb << 20;
  t.llc_bytes = static_cast<uint64_t>(g.llc_mb) << 20;
  t.llc_ways = g.llc_ways;
  t.llc_color_bits = g.llc_color_bits;
  t.l1_bytes = 16 << 10;
  t.l2_bytes = 64 << 10;
  t.validate();
  return t;
}

class MappingProperty : public ::testing::TestWithParam<Geometry> {
 protected:
  MappingProperty()
      : topo_(make(GetParam())),
        pci_(PciConfig::program_bios(topo_)),
        map_(pci_, topo_) {}

  Topology topo_;
  PciConfig pci_;
  AddressMapping map_;
};

TEST_P(MappingProperty, M1_ComposeDecodeRoundTrip) {
  for (unsigned node = 0; node < topo_.num_nodes(); ++node)
    for (unsigned ch = 0; ch < topo_.channels_per_node; ++ch)
      for (unsigned rank = 0; rank < topo_.ranks_per_channel; ++rank)
        for (unsigned bank = 0; bank < topo_.banks_per_rank; ++bank) {
          DramCoord c;
          c.node = node;
          c.channel = ch;
          c.rank = rank;
          c.bank = bank;
          c.row = map_.rows_per_node() / 2;
          c.column = 128;
          c.llc_color = map_.num_llc_colors() - 1;
          const DramCoord d = map_.decode(map_.compose(c));
          ASSERT_EQ(d.node, c.node);
          ASSERT_EQ(d.channel, c.channel);
          ASSERT_EQ(d.rank, c.rank);
          ASSERT_EQ(d.bank, c.bank);
          ASSERT_EQ(d.row, c.row);
          ASSERT_EQ(d.llc_color, c.llc_color);
        }
}

TEST_P(MappingProperty, M2_Eq1Bijection) {
  std::set<unsigned> colors;
  for (unsigned node = 0; node < topo_.num_nodes(); ++node)
    for (unsigned ch = 0; ch < topo_.channels_per_node; ++ch)
      for (unsigned rank = 0; rank < topo_.ranks_per_channel; ++rank)
        for (unsigned bank = 0; bank < topo_.banks_per_rank; ++bank) {
          DramCoord c;
          c.node = node;
          c.channel = ch;
          c.rank = rank;
          c.bank = bank;
          const unsigned bc = map_.bank_color(map_.compose(c));
          ASSERT_LT(bc, map_.num_bank_colors());
          ASSERT_TRUE(colors.insert(bc).second) << "duplicate color " << bc;
        }
  EXPECT_EQ(colors.size(), map_.num_bank_colors());
}

TEST_P(MappingProperty, M3_FrameConstantColors) {
  for (uint64_t pfn = 0; pfn < 64; ++pfn) {
    const uint64_t base = pfn * topo_.page_bytes();
    const unsigned bc = map_.bank_color(base);
    const unsigned lc = map_.llc_color(base);
    for (uint64_t off = 0; off < topo_.page_bytes(); off += 1024) {
      ASSERT_EQ(map_.bank_color(base + off), bc);
      ASSERT_EQ(map_.llc_color(base + off), lc);
    }
  }
}

TEST_P(MappingProperty, M4_LlcColorsPartitionSets) {
  const unsigned sets = topo_.llc_sets();
  std::vector<int> set_color(sets, -1);
  for (uint64_t a = 0; a < (4ULL << 20); a += topo_.line_bytes * 3) {
    const unsigned s = map_.llc_set(a, sets, topo_.line_bytes);
    const int c = static_cast<int>(map_.llc_color(a));
    if (set_color[s] == -1)
      set_color[s] = c;
    else
      ASSERT_EQ(set_color[s], c) << "set " << s << " spans colors";
  }
}

TEST_P(MappingProperty, M5_DenseMatrixRealizable) {
  // Within one node, every (local bank index, LLC color) pair occurs.
  std::set<std::pair<unsigned, unsigned>> combos;
  const unsigned want = map_.banks_per_node() * map_.num_llc_colors();
  for (uint64_t pfn = 0; pfn < topo_.pages_per_node() && combos.size() < want;
       ++pfn) {
    const FrameColors fc = map_.frame_colors_of_pfn(pfn);
    combos.insert({map_.local_bank_index(fc.bank_color), fc.llc_color});
  }
  EXPECT_EQ(combos.size(), want);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, MappingProperty,
    ::testing::Values(
        Geometry{"opteron_like", 2, 2, 4, 2, 2, 8, 512, 12, 12, 5},
        Geometry{"one_socket_wide", 1, 4, 2, 4, 1, 8, 256, 8, 16, 4},
        Geometry{"single_channel", 1, 2, 2, 1, 1, 4, 128, 4, 8, 4},
        Geometry{"many_ranks", 1, 1, 4, 2, 4, 4, 256, 4, 8, 3},
        Geometry{"big_nodes", 2, 1, 8, 2, 2, 16, 1024, 16, 8, 5}),
    geom_name);

}  // namespace
}  // namespace tint::hw
